// Condor-pool: synthesize a cycle-harvesting pool, measure it with
// occupancy monitors (§4 of the paper), fit all four availability
// models to one machine, and compare the checkpoint schedules and
// network loads the models produce on that machine's held-out trace.
package main

import (
	"fmt"
	"log"

	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func main() {
	// A 40-machine desktop pool, monitored for six virtual months.
	machines, err := condor.SyntheticPool(condor.SyntheticPoolConfig{Machines: 40, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := condor.NewPool(machines, 7)
	if err != nil {
		log.Fatal(err)
	}
	history, err := condor.CollectTraces(pool, condor.MonitorConfig{
		Monitors: 40,
		Duration: condor.MonthsSeconds(6),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitored %d machines; pool saw %d evictions\n\n", len(history.Traces), pool.Evictions)

	// Pick the best-observed machine and split its trace the way the
	// paper does: first 25 observations train, the rest evaluate.
	var best *trace.Trace
	for _, tr := range history.WithAtLeast(60) {
		if best == nil || tr.Len() > best.Len() {
			best = tr
		}
	}
	if best == nil {
		log.Fatal("no machine observed often enough")
	}
	train, test, err := best.Split(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine %s: %d observations (25 train / %d test)\n\n", best.Machine, best.Len(), len(test))

	// Goodness of fit of the four families on the training prefix.
	fits, err := fit.All(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model fits on the training prefix:")
	for _, f := range fits {
		fmt.Printf("  %-12s AIC=%8.1f  KS=%.3f  %v\n", f.Model, f.AIC, f.KS, f.Dist)
	}
	fmt.Println()

	// Replay the held-out trace under each model's schedule with the
	// paper's parameters: C = R = 110 s (campus network), 500 MB
	// images.
	cfg := sim.Config{
		Costs:        markov.Costs{C: 110, R: 110, L: 110},
		CheckpointMB: 500,
	}
	fmt.Println("held-out replay (C=R=110 s, 500 MB checkpoints):")
	fmt.Printf("  %-12s %10s %12s %9s %9s\n", "model", "efficiency", "network MB", "commits", "failures")
	for _, m := range fit.Models {
		run, err := sim.RunModel(train, test, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		r := run.Result
		fmt.Printf("  %-12s %10.3f %12.0f %9d %9d\n",
			m, r.Efficiency(), r.MBTransferred, r.Commits,
			r.FailedIntervals+r.FailedCheckpoints+r.FailedRecoveries)
	}
}
