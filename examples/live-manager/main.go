// Live-manager: run the real TCP checkpoint-manager protocol (§5.2) on
// loopback — a manager that assigns models and stores checkpoints, and
// three test processes that measure their transfers, heartbeat, and
// recompute T_opt every interval. Virtual time is compressed 1000×, so
// the whole demonstration takes a couple of seconds; one process is
// "evicted" mid-run to show the terminate-on-eviction path.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/fit"
)

func main() {
	// The manager assigns everyone a 2-phase hyperexponential fitted
	// offline (e.g. by ckpt-fit) and 2 MB images (stand-ins for the
	// paper's 500 MB; only timing scales).
	mgr, err := ckptnet.NewManager(ckptnet.StaticAssigner(
		fit.ModelHyperexp2,
		[]float64{0.7, 0.3, 1.0 / 400, 1.0 / 20000},
		2*ckptnet.MB,
	))
	if err != nil {
		log.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manager listening on %s\n\n", addr)

	// Two well-behaved processes plus one that gets evicted.
	for i := 1; i <= 2; i++ {
		rep, err := ckptnet.RunProcess(context.Background(), ckptnet.ProcessConfig{
			Addr:         addr.String(),
			JobID:        fmt.Sprintf("desktop%04d/%d", i, i),
			TElapsed:     float64(i) * 300,
			TimeScale:    1e-3,
			MaxIntervals: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("process %d: recovery %.1f s, intervals %v, work %.0f s, %d heartbeats\n",
			i, rep.RecoverySec, round(rep.Topts), rep.WorkSec, rep.Heartbeats)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	rep, err := ckptnet.RunProcess(ctx, ckptnet.ProcessConfig{
		Addr:      addr.String(),
		JobID:     "desktop9999/3",
		TimeScale: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process 3: evicted=%v after %.0f s of work\n\n", rep.Evicted, rep.WorkSec)

	if err := mgr.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("manager session logs:")
	for _, s := range mgr.Sessions() {
		sum := s.Summarize()
		fmt.Printf("  %-16s recoveries=%d checkpoints=%d interrupted=%d heartbeats=%d bytes=%d\n",
			s.JobID, sum.Recoveries, sum.Checkpoints, sum.Interrupted, sum.Heartbeats, sum.BytesMoved)
	}
}

func round(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x + 0.5)
	}
	return out
}
