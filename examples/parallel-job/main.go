// Parallel-job: the paper's future-work scenario (§5.2) — a parallel
// application with one process per desktop machine, all checkpointing
// through the same shared link. Concurrent checkpoints collide and
// stretch each other (processor-sharing), so a model that checkpoints
// more often than necessary hurts not just the network but the whole
// job. Compares an exponential-based schedule against a heavy-tailed
// one on the same volatile machines.
package main

import (
	"fmt"
	"log"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/parallel"
)

func main() {
	// Machines follow the paper's measured heavy-tailed law; the
	// exponential schedule is what an MLE exponential fit would
	// converge to on the same data (matching means).
	avail := dist.NewWeibull(0.43, 3409)
	expFit := dist.NewExponential(1 / avail.Mean())

	base := parallel.Config{
		Workers:      16,
		Avail:        avail,
		LinkMBps:     5,   // one campus-class link shared by everyone
		CheckpointMB: 500, // the paper's image size
		Duration:     72 * 3600,
		Seed:         42,
	}

	fmt.Printf("parallel job: %d processes, %g MB checkpoints over a shared %g MB/s link\n",
		base.Workers, base.CheckpointMB, base.LinkMBps)
	fmt.Printf("solo transfer time: %.0f s\n\n", base.CheckpointMB/base.LinkMBps)
	fmt.Printf("%-22s %10s %10s %12s %10s %12s %8s\n",
		"schedule model", "efficiency", "commits", "network MB", "stretch", "collisions", "maxconc")

	for _, sc := range []struct {
		name string
		d    dist.Distribution
	}{
		{"exponential", expFit},
		{"weibull (true law)", avail},
	} {
		cfg := base
		cfg.ScheduleDist = sc.d
		res, err := parallel.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.3f %10d %12.0f %9.2fx %12d %8d\n",
			sc.name, res.Efficiency, res.Commits, res.MBMoved,
			res.CollisionStretch(), res.Collisions, res.MaxConcurrent)
	}

	fmt.Println("\nThe heavy-tailed schedule checkpoints less often: less data crosses")
	fmt.Println("the shared link, transfers collide less, and each checkpoint stays")
	fmt.Println("closer to its solo duration — the interaction the paper flags as the")
	fmt.Println("reason network-parsimonious models matter for parallel jobs.")

	// Coordination policies on top of the correct model: token-passing
	// removes collisions entirely (at a queueing cost); per-interval
	// jitter desynchronizes the herd with no coordination channel.
	fmt.Printf("\n%-22s %10s %10s %10s %12s\n",
		"stagger policy", "efficiency", "stretch", "collisions", "queue wait s")
	for _, pol := range []parallel.StaggerPolicy{
		parallel.StaggerNone, parallel.StaggerToken, parallel.StaggerJitter,
	} {
		cfg := base
		cfg.ScheduleDist = avail
		cfg.Stagger = pol
		res, err := parallel.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.3f %9.2fx %10d %12.0f\n",
			pol, res.Efficiency, res.CollisionStretch(), res.Collisions, res.QueueWaitSec)
	}
}
