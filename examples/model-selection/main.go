// Model-selection: why the choice of availability distribution
// matters. Fits all four families to traces of three different
// characters — memoryless, heavy-tailed, and bimodal desktop-style —
// and shows how goodness of fit translates into scheduling behavior
// (the fitted model's mean residual life drives interval growth).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	scenarios := []struct {
		name  string
		truth dist.Distribution
	}{
		{"memoryless server", dist.NewExponential(1.0 / 7200)},
		{"heavy-tailed desktop", dist.NewWeibull(0.43, 3409)},
		{"bimodal desktop", dist.NewMixture(
			[]float64{0.6, 0.4},
			[]dist.Distribution{
				dist.NewExponential(1.0 / 240),
				dist.NewWeibull(0.7, 4*3600),
			})},
	}

	for _, sc := range scenarios {
		sample := make([]float64, 500)
		for i := range sample {
			sample[i] = sc.truth.Rand(rng)
		}
		fits, err := fit.All(sample)
		if err != nil {
			log.Fatal(err)
		}
		// The lognormal is a fifth comparator from the broader
		// availability-modeling literature (not one of the paper's
		// tabulated four).
		if ln, err := fit.LogNormal(sample); err == nil {
			ll := fit.LogLikelihood(ln, sample)
			fits = append(fits, fit.Fitted{
				Dist:   ln, // rows below print the distribution's own name
				LogLik: ll,
				AIC:    fit.AIC(ll, fit.NumParams(ln)),
				KS:     fit.KS(ln, sample),
			})
		}
		fmt.Printf("=== %s (true law: %s) ===\n", sc.name, sc.truth.Name())
		fmt.Printf("%-12s %10s %8s %8s %14s %14s\n",
			"model", "AIC", "KS", "fit ok?", "T_opt @ age 0", "T_opt @ age 2h")
		crit := stats.KSCriticalValue(len(sample), 0.05)
		for _, f := range fits {
			ok := "yes"
			if f.KS > crit {
				ok = "no" // KS test rejects at the 5% level
			}
			m := markov.Model{Avail: f.Dist, Costs: markov.Costs{C: 110, R: 110, L: 110}}
			t0, _, err := m.Topt(0, markov.OptimizeOptions{})
			if err != nil {
				log.Fatal(err)
			}
			t2h, _, err := m.Topt(7200, markov.OptimizeOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %10.1f %8.3f %8s %14.0f %14.0f\n", f.Dist.Name(), f.AIC, f.KS, ok, t0, t2h)
		}
		best, err := fit.BestByAIC(fits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("AIC winner: %s — memoryless models keep T_opt flat; heavy-tailed fits stretch it with age\n\n", best.Dist.Name())
	}
}
