// Censored-fitting: what a short monitoring campaign does to your
// availability model, and how censoring-aware estimation fixes it
// (§5.3 of the paper discusses exactly this right-censoring).
//
// A pool is monitored for just one day; occupancies still running at
// campaign end are recorded as right-censored. The example compares
// naive fits (censored values treated as exact lifetimes) against
// censoring-aware maximum likelihood, with the nonparametric
// Kaplan-Meier curve as referee, and shows the effect on the resulting
// checkpoint interval.
package main

import (
	"fmt"
	"log"

	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/stats"
)

func main() {
	machines, err := condor.SyntheticPool(condor.SyntheticPoolConfig{Machines: 30, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := condor.NewPool(machines, 17)
	if err != nil {
		log.Fatal(err)
	}
	set, err := condor.CollectTraces(pool, condor.MonitorConfig{
		Monitors:        30,
		Duration:        24 * 3600, // one day — short enough to censor the long stretches
		IncludeCensored: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pool all observations.
	var durations []float64
	var flags []bool
	for _, name := range set.Machines() {
		d, c := set.Traces[name].Observations()
		durations = append(durations, d...)
		flags = append(flags, c...)
	}
	censored := 0
	for _, c := range flags {
		if c {
			censored++
		}
	}
	fmt.Printf("one-day campaign: %d observations, %d right-censored (%.1f%%)\n\n",
		len(durations), censored, 100*float64(censored)/float64(len(durations)))

	// Nonparametric referee.
	km, err := stats.NewKaplanMeier(durations, flags)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kaplan-Meier:     median %5.0f s, S(1h) = %.3f\n\n", km.Median(), km.Survival(3600))

	// Naive vs censoring-aware Weibull fits, and what they do to the
	// schedule (C = R = 110 s, fresh resource).
	obs := make([]fit.Observation, len(durations))
	for i := range durations {
		obs[i] = fit.Observation{Value: durations[i], Censored: flags[i]}
	}
	naive, err := fit.Weibull(durations)
	if err != nil {
		log.Fatal(err)
	}
	aware, err := fit.WeibullCensored(obs)
	if err != nil {
		log.Fatal(err)
	}
	costs := markov.Costs{C: 110, R: 110, L: 110}
	for _, c := range []struct {
		name string
		d    dist.Distribution
	}{
		{"naive Weibull", naive},
		{"censoring-aware", aware},
	} {
		m := markov.Model{Avail: c.d, Costs: costs}
		T, _, err := m.Topt(0, markov.OptimizeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s S(1h) = %.3f   T_opt = %5.0f s\n", c.name, c.d.Survival(3600), T)
	}
	fmt.Println("\nThe naive fit, believing censored stretches ended when the campaign")
	fmt.Println("did, underestimates survival and checkpoints more aggressively than")
	fmt.Println("the machine warrants; the censoring-aware fit tracks Kaplan-Meier.")
}
