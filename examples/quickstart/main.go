// Quickstart: fit an availability model to a resource's history and
// compute its checkpoint schedule — the library's core loop in ~40
// lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ckptsched "github.com/cycleharvest/ckptsched"
)

func main() {
	// 25 observed availability durations (seconds) for the resource —
	// here drawn from the heavy-tailed Weibull the paper measured on a
	// real Condor machine; in production these come from your
	// occupancy monitor.
	rng := rand.New(rand.NewSource(1))
	truth := ckptsched.Weibull(0.43, 3409)
	history := make([]float64, 25)
	for i := range history {
		history[i] = truth.Rand(rng)
	}

	// Fit a 2-phase hyperexponential (the paper's most
	// network-parsimonious model) and build a scheduler.
	s, err := ckptsched.Fit(ckptsched.ModelHyperexp2, history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: %v\n\n", s.Dist)

	// A 500 MB checkpoint takes ~110 s on our campus network; recovery
	// costs the same (the paper's convention).
	costs, err := ckptsched.NewCosts(110, -1, -1)
	if err != nil {
		log.Fatal(err)
	}

	// The resource has already been up 10 minutes. Plan the next two
	// hours.
	sched, err := s.Schedule(600, costs, ckptsched.ScheduleOptions{Horizon: 600 + 2*3600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aperiodic checkpoint schedule:")
	for i := range sched.Intervals {
		fmt.Printf("  interval %d: work %6.0f s starting at resource age %6.0f s, then checkpoint %3.0f s\n",
			i, sched.Intervals[i], sched.Ages[i], costs.C)
	}

	// One-shot interface (the paper's §3.5 "portable routine"):
	// explicit family + parameter vector, no fitting step.
	T, eff, err := ckptsched.Topt(ckptsched.ModelWeibull, []float64{0.43, 3409}, 600, 110, 110)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nportable routine: T_opt = %.0f s (expected efficiency %.1f%%)\n", T, 100*eff)
}
