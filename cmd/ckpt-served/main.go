// Command ckpt-served runs the scheduling service: an HTTP server
// that fits availability models, builds checkpoint schedules, and
// answers interval lookups at fleet rate (DESIGN.md §15). It is the
// long-running counterpart to the one-shot ckpt-sched pipeline —
// drive it with cmd/ckpt-load to measure sustained throughput.
//
// Usage:
//
//	ckpt-served -addr 127.0.0.1:7420
//	ckpt-served -addr :7420 -max-schedules 100000 -trace served.json
//
// The API (all JSON):
//
//	POST /v1/fit                          {"key","model","data":[...]}
//	POST /v1/schedule                     {"key","model","data"|"params","c","r","telapsed","horizon","replace"}
//	GET  /v1/schedule/{key}               full stored schedule
//	GET  /v1/schedule/{key}/interval?age= current work interval, O(1)
//	GET  /healthz, /metrics, /metrics/history, /debug/vars, /debug/trace/snapshot
//	GET  /debug/pprof/* (with -pprof)
//
// Overloaded routes shed with 429 + Retry-After; SIGINT/SIGTERM drains
// gracefully and, with -trace, writes the request timeline on the way
// out.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cycleharvest/ckptsched/internal/cliflag"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "listen address")
	fastAddr := flag.String("fast-addr", "", "also serve the interval-only fast path on this address (e.g. 127.0.0.1:7421)")
	maxSchedules := flag.Int("max-schedules", 1<<16, "resident schedule bound (0 = unbounded)")
	maxFits := flag.Int("max-fits", 1<<17, "fit-cache entry bound (0 = unbounded)")
	intervalInflight := flag.Int("interval-inflight", 256, "interval-route admission: max in-flight requests")
	intervalQueue := flag.Int("interval-queue", 1024, "interval-route admission: max queued requests")
	intervalWait := flag.Duration("interval-wait", 5*time.Millisecond, "interval-route admission: max queue wait")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After advised on 429 responses")
	historyWindow := flag.Duration("history-window", time.Second, "windowed-metrics scrape cadence for /metrics/history (0 disables)")
	historyWindows := flag.Int("history-windows", 512, "windows retained by /metrics/history")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	tracePath := flag.String("trace", "", "write the request timeline here on shutdown (.json Chrome trace, .jsonl compact)")
	flag.Parse()

	var ck cliflag.Checker
	ck.NonNegativeInt("max-schedules", *maxSchedules)
	ck.NonNegativeInt("max-fits", *maxFits)
	ck.PositiveInt("interval-inflight", *intervalInflight)
	ck.NonNegativeInt("interval-queue", *intervalQueue)
	ck.PositiveInt("history-windows", *historyWindows)
	if err := ck.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-served:", err)
		os.Exit(1)
	}

	cfg := serviceConfig{
		maxSchedules:     *maxSchedules,
		maxFits:          *maxFits,
		intervalInflight: *intervalInflight,
		intervalQueue:    *intervalQueue,
		intervalWait:     *intervalWait,
		retryAfter:       *retryAfter,
		historyWindow:    *historyWindow,
		historyWindows:   *historyWindows,
		pprof:            *pprofOn,
		fullTrace:        *tracePath != "",
	}
	if err := run(*addr, *fastAddr, cfg, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-served:", err)
		os.Exit(1)
	}
}

// serviceConfig is the wiring knob set newService consumes.
type serviceConfig struct {
	maxSchedules, maxFits           int
	intervalInflight, intervalQueue int
	intervalWait, retryAfter        time.Duration
	historyWindow                   time.Duration // 0 disables /metrics/history
	historyWindows                  int
	pprof                           bool
	fullTrace                       bool
}

// newService wires the observability stack and builds the server —
// split from run so the smoke test can start one without signals.
func newService(cfg serviceConfig) (*serve.Server, *obs.Tracer, *obs.History) {
	reg := obs.NewRegistry()
	fit.Instrument(reg)
	markov.Instrument(reg)
	if expvar.Get("ckptsched") == nil {
		obs.PublishExpvar("ckptsched", reg)
	}
	tracer := obs.NewTracer(obs.TracerOptions{
		FullFidelity: cfg.fullTrace,
		Metrics:      reg,
	})
	var hist *obs.History
	if cfg.historyWindow > 0 {
		hist = obs.NewHistory(obs.HistoryOptions{
			Registry: reg,
			Window:   cfg.historyWindow.Seconds(),
			Capacity: cfg.historyWindows,
		})
		obs.NewRuntimeCollector(reg).Attach(hist)
	}

	maxSchedules, maxFits := cfg.maxSchedules, cfg.maxFits
	if maxSchedules == 0 {
		maxSchedules = -1 // serve: negative means unbounded
	}
	if maxFits == 0 {
		maxFits = -1
	}
	s := serve.New(serve.Options{
		Registry:     reg,
		Tracer:       tracer,
		History:      hist,
		Pprof:        cfg.pprof,
		MaxFits:      maxFits,
		MaxSchedules: maxSchedules,
		Interval: serve.RouteLimit{
			MaxInFlight: cfg.intervalInflight,
			MaxQueued:   cfg.intervalQueue,
			MaxWait:     cfg.intervalWait,
		},
		RetryAfter: cfg.retryAfter,
	})
	return s, tracer, hist
}

func run(addr, fastAddr string, cfg serviceConfig, tracePath string) error {
	s, tracer, hist := newService(cfg)
	stopScraper := hist.StartScraper()
	defer stopScraper()
	rn, err := s.Start(addr)
	if err != nil {
		return err
	}
	fmt.Printf("scheduling service on http://%s (API at /v1, metrics at /metrics); Ctrl-C to stop\n", rn.Addr())
	var fr *serve.FastRunning
	if fastAddr != "" {
		fr, err = s.StartFast(fastAddr)
		if err != nil {
			return err
		}
		fmt.Printf("interval fast path on http://%s\n", fr.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = rn.Shutdown(sctx)
	if err == nil && fr != nil {
		err = fr.Shutdown(sctx)
	}
	cancel()
	if err != nil {
		return err
	}
	if tracePath != "" {
		if err := tracer.WriteFile(tracePath); err != nil {
			return err
		}
	}
	fmt.Printf("drained: %d schedules resident\n", s.Schedules())
	return nil
}
