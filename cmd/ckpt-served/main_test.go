package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServiceSmoke boots the wired service on an ephemeral port and
// walks the API over real HTTP: build a schedule, look up an interval,
// scrape metrics, drain.
func TestServiceSmoke(t *testing.T) {
	s, _, _ := newService(serviceConfig{
		maxSchedules: 1 << 10, maxFits: 1 << 10,
		intervalInflight: 256, intervalQueue: 1024,
		intervalWait: 5 * time.Millisecond, retryAfter: time.Second,
		historyWindow: time.Second, historyWindows: 64,
	})
	rn, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rn.Shutdown(ctx)
	}()
	base := "http://" + rn.Addr().String()

	body := `{"key":"m1","model":"exp","params":[0.000277],"c":60}`
	resp, err := http.Post(base+"/v1/schedule", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/schedule/m1/interval?age=42")
	if err != nil {
		t.Fatalf("interval: %v", err)
	}
	var iv struct {
		T     float64 `json:"t"`
		Index int     `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&iv); err != nil {
		t.Fatalf("decode interval: %v", err)
	}
	resp.Body.Close()
	if iv.T <= 0 {
		t.Fatalf("interval T = %g, want > 0", iv.T)
	}

	for _, path := range []string{"/healthz", "/metrics", "/metrics/history", "/debug/vars", "/debug/trace/snapshot"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rn.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after Shutdown")
	}
}
