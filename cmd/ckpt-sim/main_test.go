package main

import (
	"path/filepath"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func writeSimTraces(t *testing.T) string {
	t.Helper()
	set := trace.NewSet()
	for _, machine := range []string{"m1", "m2"} {
		tr, err := trace.Generate(trace.GenerateOptions{
			Machine: machine, N: 80, Avail: dist.NewWeibull(0.5, 2500),
			Seed: int64(len(machine)) + 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Records {
			set.Add(machine, r)
		}
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	if err := trace.SaveCSV(path, set); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSim(t *testing.T) {
	path := writeSimTraces(t)
	if err := run(path, 110, 500, 25, 50, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 500, 500, 25, 50, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimErrors(t *testing.T) {
	if err := run("", 110, 500, 25, 50, false); err == nil {
		t.Error("missing trace should error")
	}
	path := writeSimTraces(t)
	if err := run(path, 110, 500, 25, 1000, false); err == nil {
		t.Error("impossible record filter should error")
	}
}
