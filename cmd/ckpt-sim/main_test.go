package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func writeSimTraces(t *testing.T) string {
	t.Helper()
	set := trace.NewSet()
	for _, machine := range []string{"m1", "m2"} {
		tr, err := trace.Generate(trace.GenerateOptions{
			Machine: machine, N: 80, Avail: dist.NewWeibull(0.5, 2500),
			Seed: int64(len(machine)) + 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Records {
			set.Add(machine, r)
		}
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	if err := trace.SaveCSV(path, set); err != nil {
		t.Fatal(err)
	}
	return path
}

func simOpts(availPath string, c float64, perMachine bool) options {
	return options{
		availPath: availPath, c: c, size: 500,
		train: 25, minRec: 50, perMachine: perMachine, seed: 1,
	}
}

func TestRunSim(t *testing.T) {
	path := writeSimTraces(t)
	if err := run(simOpts(path, 110, false)); err != nil {
		t.Fatal(err)
	}
	if err := run(simOpts(path, 500, true)); err != nil {
		t.Fatal(err)
	}
}

// TestRunSimSyntheticDefault exercises the no--avail path: a
// reproducible synthetic pool drawn from -seed.
func TestRunSimSyntheticDefault(t *testing.T) {
	opts := simOpts("", 500, false)
	opts.minRec = 60
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
}

// TestRunSimTraceDeterministic pins the acceptance contract: ckpt-sim
// -trace on the default workload emits a valid Chrome trace that is
// byte-identical across GOMAXPROCS settings at the same seed.
func TestRunSimTraceDeterministic(t *testing.T) {
	render := func(procs int) []byte {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		opts := simOpts("", 500, false)
		opts.minRec = 60
		opts.tracePath = filepath.Join(t.TempDir(), "out.json")
		if err := run(opts); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(opts.tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial, wide := render(1), render(8)
	if !bytes.Equal(serial, wide) {
		t.Error("trace output depends on GOMAXPROCS")
	}

	events, err := obs.ReadTrace(bytes.NewReader(serial))
	if err != nil {
		t.Fatalf("trace is not readable Chrome JSON: %v", err)
	}
	var periods, transfers, builds int
	for _, ev := range events {
		switch ev.Name {
		case "period":
			periods++
		case "transfer.checkpoint", "transfer.recovery":
			transfers++
		case "markov.build_schedule":
			builds++
		}
	}
	if periods == 0 || transfers == 0 || builds == 0 {
		t.Fatalf("trace missing expected records: periods=%d transfers=%d builds=%d",
			periods, transfers, builds)
	}
}

func TestRunSimErrors(t *testing.T) {
	bad := simOpts(filepath.Join(t.TempDir(), "missing.csv"), 110, false)
	if err := run(bad); err == nil {
		t.Error("missing trace file should error")
	}
	path := writeSimTraces(t)
	impossible := simOpts(path, 110, false)
	impossible.minRec = 1000
	if err := run(impossible); err == nil {
		t.Error("impossible record filter should error")
	}
}
