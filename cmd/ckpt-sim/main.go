// Command ckpt-sim replays availability traces through the
// discrete-event checkpoint simulator and reports per-machine and
// aggregate efficiency and network load for each availability model.
//
// Usage:
//
//	ckpt-sim -trace traces.csv -c 500 [-size 500] [-train 25] [-min 60] [-permachine]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/stats"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func main() {
	path := flag.String("trace", "", "trace CSV file")
	c := flag.Float64("c", 500, "checkpoint/recovery cost, seconds")
	size := flag.Float64("size", 500, "checkpoint image size, MB")
	train := flag.Int("train", trace.DefaultTrainingSize, "training-prefix length")
	minRec := flag.Int("min", 60, "minimum records per machine")
	perMachine := flag.Bool("permachine", false, "print per-machine rows")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	statsDump := flag.Bool("stats", false, "print the final metrics-registry snapshot as JSON on stderr")
	flag.Parse()

	var reg *obs.Registry
	if *statsDump {
		reg = obs.NewRegistry()
		fit.Instrument(reg)
		markov.Instrument(reg)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err == nil {
		err = run(*path, *c, *size, *train, *minRec, *perMachine)
	}
	stopProfiles()
	if *statsDump {
		if serr := json.NewEncoder(os.Stderr).Encode(reg.Snapshot()); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-sim:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges a heap snapshot; the
// returned stop function must run before exit (os.Exit skips defers,
// so main sequences it explicitly).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ckpt-sim: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ckpt-sim: memprofile:", err)
			}
			f.Close()
		}
	}
	return stop, nil
}

func run(path string, c, size float64, train, minRec int, perMachine bool) error {
	if path == "" {
		return fmt.Errorf("missing -trace")
	}
	set, err := trace.LoadCSV(path)
	if err != nil {
		return err
	}
	traces := set.WithAtLeast(minRec)
	if len(traces) == 0 {
		return fmt.Errorf("no machine has >= %d records", minRec)
	}
	cfg := sim.Config{
		Costs:        markov.Costs{C: c, R: c, L: c},
		CheckpointMB: size,
	}
	fmt.Printf("simulating %d machines, C=R=%g s, %g MB checkpoints\n\n", len(traces), c, size)

	for _, model := range fit.Models {
		var effs, mbs []float64
		if perMachine {
			fmt.Printf("--- %v ---\n", model)
		}
		for _, tr := range traces {
			tdata, test, err := tr.Split(train)
			if err != nil {
				return err
			}
			run, err := sim.RunModel(tdata, test, model, cfg)
			if err != nil {
				return fmt.Errorf("%s under %v: %w", tr.Machine, model, err)
			}
			effs = append(effs, run.Result.Efficiency())
			mbs = append(mbs, run.Result.MBTransferred)
			if perMachine {
				fmt.Printf("  %-16s eff=%.3f MB=%.0f commits=%d failures=%d\n",
					tr.Machine, run.Result.Efficiency(), run.Result.MBTransferred,
					run.Result.Commits, run.Result.FailedIntervals+run.Result.FailedCheckpoints)
			}
		}
		effCI, err := stats.MeanCI(effs, 0.95)
		if err != nil {
			return err
		}
		mbCI, err := stats.MeanCI(mbs, 0.95)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s efficiency %.3f ± %.3f   bandwidth %.0f ± %.0f MB\n",
			model, effCI.Mean, effCI.HalfWidth, mbCI.Mean, mbCI.HalfWidth)
	}
	return nil
}
