// Command ckpt-sim replays availability traces through the
// discrete-event checkpoint simulator and reports per-machine and
// aggregate efficiency and network load for each availability model.
//
// With no -avail file it simulates a synthetic pool drawn from the
// paper's Table 2 law (Weibull k=0.43, λ=3409), reproducible via
// -seed. With -trace it writes a Chrome-trace (Perfetto-loadable)
// timeline of every period, transfer and eviction; a .jsonl suffix
// selects the compact line format that ckpt-report timeline replays.
//
// Usage:
//
//	ckpt-sim [-avail traces.csv] [-seed 1] -c 500 [-size 500] [-train 25] [-min 60] [-permachine] [-trace out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/stats"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// options collects the run parameters of one ckpt-sim invocation.
type options struct {
	availPath   string
	tracePath   string
	historyPath string
	historyWin  float64
	historyCap  int
	c, size     float64
	train       int
	minRec      int
	perMachine  bool
	seed        int64
}

func main() {
	var opts options
	flag.StringVar(&opts.availPath, "avail", "", "availability trace CSV (default: synthetic pool from -seed)")
	flag.StringVar(&opts.tracePath, "trace", "", "write an execution timeline to this file (.json Chrome trace, .jsonl compact)")
	flag.StringVar(&opts.historyPath, "history", "", "write per-run windowed metric history (virtual clock) to this JSON file")
	flag.Float64Var(&opts.historyWin, "history-window", 3600, "history window width, simulated seconds")
	flag.IntVar(&opts.historyCap, "history-windows", 512, "history ring capacity, windows")
	flag.Float64Var(&opts.c, "c", 500, "checkpoint/recovery cost, seconds")
	flag.Float64Var(&opts.size, "size", 500, "checkpoint image size, MB")
	flag.IntVar(&opts.train, "train", trace.DefaultTrainingSize, "training-prefix length")
	flag.IntVar(&opts.minRec, "min", 60, "minimum records per machine")
	flag.BoolVar(&opts.perMachine, "permachine", false, "print per-machine rows")
	flag.Int64Var(&opts.seed, "seed", 1, "seed for the synthetic pool when -avail is absent")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	statsDump := flag.Bool("stats", false, "print the final metrics-registry snapshot as JSON on stderr")
	flag.Parse()

	var reg *obs.Registry
	if *statsDump {
		reg = obs.NewRegistry()
		fit.Instrument(reg)
		markov.Instrument(reg)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err == nil {
		err = run(opts)
	}
	stopProfiles()
	if *statsDump {
		if serr := json.NewEncoder(os.Stderr).Encode(reg.Snapshot()); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-sim:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges a heap snapshot; the
// returned stop function must run before exit (os.Exit skips defers,
// so main sequences it explicitly).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ckpt-sim: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ckpt-sim: memprofile:", err)
			}
			f.Close()
		}
	}
	return stop, nil
}

// loadWorkload returns the availability set: the -avail CSV when
// given, otherwise a synthetic pool drawn from the paper's Table 2 law
// (Weibull k=0.43, λ=3409 s) with per-machine seeds derived from seed.
func loadWorkload(availPath string, seed int64) (*trace.Set, error) {
	if availPath != "" {
		return trace.LoadCSV(availPath)
	}
	set := trace.NewSet()
	for i := 0; i < 4; i++ {
		machine := fmt.Sprintf("synth%02d", i)
		tr, err := trace.Generate(trace.GenerateOptions{
			Machine: machine,
			N:       150,
			Avail:   dist.NewWeibull(0.43, 3409),
			Seed:    seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		for _, r := range tr.Records {
			set.Add(machine, r)
		}
	}
	return set, nil
}

func run(opts options) error {
	set, err := loadWorkload(opts.availPath, opts.seed)
	if err != nil {
		return err
	}
	traces := set.WithAtLeast(opts.minRec)
	if len(traces) == 0 {
		return fmt.Errorf("no machine has >= %d records", opts.minRec)
	}
	var tracer *obs.Tracer
	if opts.tracePath != "" {
		tracer = obs.NewTracer(obs.TracerOptions{FullFidelity: true})
		markov.Trace(tracer)
		defer markov.Trace(nil)
	}
	cfg := sim.Config{
		Costs:        markov.Costs{C: opts.c, R: opts.c, L: opts.c},
		CheckpointMB: opts.size,
		Trace:        tracer,
	}
	fmt.Printf("simulating %d machines, C=R=%g s, %g MB checkpoints\n\n", len(traces), opts.c, opts.size)

	// Each (model, machine) replay starts its virtual clock at zero, so
	// every run gets its own history ring; the export maps run keys to
	// DESIGN.md §17 snapshots.
	var histories map[string]obs.HistorySnapshot
	if opts.historyPath != "" {
		histories = make(map[string]obs.HistorySnapshot)
	}

	for mi, model := range fit.Models {
		var effs, mbs []float64
		if opts.perMachine {
			fmt.Printf("--- %v ---\n", model)
		}
		for ti, tr := range traces {
			tdata, test, err := tr.Split(opts.train)
			if err != nil {
				return err
			}
			// One trace lane per (model, machine): the replay loop is
			// sequential, so the export is deterministic for a fixed
			// workload at any GOMAXPROCS.
			cfg.TracePid = uint64(mi*len(traces)+ti) + 1
			var hist *obs.History
			if histories != nil {
				hist = obs.NewHistory(obs.HistoryOptions{
					Registry: obs.NewRegistry(),
					Window:   opts.historyWin,
					Capacity: opts.historyCap,
				})
			}
			cfg.History = hist
			run, err := sim.RunModel(tdata, test, model, cfg)
			if err != nil {
				return fmt.Errorf("%s under %v: %w", tr.Machine, model, err)
			}
			if hist != nil {
				histories[fmt.Sprintf("%v/%s", model, tr.Machine)] = hist.Snapshot()
			}
			effs = append(effs, run.Result.Efficiency())
			mbs = append(mbs, run.Result.MBTransferred)
			if opts.perMachine {
				fmt.Printf("  %-16s eff=%.3f MB=%.0f commits=%d failures=%d\n",
					tr.Machine, run.Result.Efficiency(), run.Result.MBTransferred,
					run.Result.Commits, run.Result.FailedIntervals+run.Result.FailedCheckpoints)
			}
		}
		effCI, err := stats.MeanCI(effs, 0.95)
		if err != nil {
			return err
		}
		mbCI, err := stats.MeanCI(mbs, 0.95)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s efficiency %.3f ± %.3f   bandwidth %.0f ± %.0f MB\n",
			model, effCI.Mean, effCI.HalfWidth, mbCI.Mean, mbCI.HalfWidth)
	}
	if histories != nil {
		if err := writeHistories(opts.historyPath, histories); err != nil {
			return err
		}
	}
	return tracer.WriteFile(opts.tracePath)
}

// writeHistories dumps the per-run history snapshots as one JSON
// object keyed by "model/machine".
func writeHistories(path string, histories map[string]obs.HistorySnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(histories); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
