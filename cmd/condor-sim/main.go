// Command condor-sim synthesizes a Condor-style desktop pool, runs an
// occupancy-monitor campaign over it, and writes the collected
// availability traces as CSV — the dataset every other tool consumes.
//
// Usage:
//
//	condor-sim -machines 80 -months 18 [-monitors 80] [-seed 2005] -out traces.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func main() {
	machines := flag.Int("machines", 80, "pool size")
	monitors := flag.Int("monitors", 0, "occupancy monitors (0 = one per machine)")
	months := flag.Float64("months", 18, "campaign length, 30-day months")
	seed := flag.Int64("seed", 2005, "generation seed")
	out := flag.String("out", "traces.csv", "output CSV path")
	censored := flag.Bool("censored", false, "record in-progress occupancies at campaign end as right-censored")
	flag.Parse()

	if err := run(*machines, *monitors, *months, *seed, *out, *censored); err != nil {
		fmt.Fprintln(os.Stderr, "condor-sim:", err)
		os.Exit(1)
	}
}

func run(machines, monitors int, months float64, seed int64, out string, censored bool) error {
	specs, err := condor.SyntheticPool(condor.SyntheticPoolConfig{
		Machines: machines,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	pool, err := condor.NewPool(specs, seed)
	if err != nil {
		return err
	}
	if monitors <= 0 {
		monitors = machines
	}
	set, err := condor.CollectTraces(pool, condor.MonitorConfig{
		Monitors:        monitors,
		Duration:        condor.MonthsSeconds(months),
		IncludeCensored: censored,
	})
	if err != nil {
		return err
	}
	if err := trace.SaveCSV(out, set); err != nil {
		return err
	}
	records := 0
	for _, name := range set.Machines() {
		records += set.Traces[name].Len()
	}
	fmt.Printf("wrote %s: %d machines observed, %d occupancy records, %d evictions, %d job starts\n",
		out, len(set.Traces), records, pool.Evictions, pool.Starts)
	return nil
}
