package main

import (
	"path/filepath"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/trace"
)

func TestRunCondorSim(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traces.csv")
	if err := run(8, 0, 1, 7, out, true); err != nil {
		t.Fatal(err)
	}
	set, err := trace.LoadCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) == 0 {
		t.Fatal("no traces written")
	}
	censored := 0
	for _, name := range set.Machines() {
		_, flags := set.Traces[name].Observations()
		for _, c := range flags {
			if c {
				censored++
			}
		}
	}
	if censored == 0 {
		t.Error("censored flag requested but no censored records written")
	}
}

func TestRunCondorSimErrors(t *testing.T) {
	if err := run(0, 0, 1, 7, filepath.Join(t.TempDir(), "x.csv"), false); err == nil {
		t.Error("zero machines should error")
	}
	if err := run(3, 0, 1, 7, "/nonexistent-dir/x.csv", false); err == nil {
		t.Error("unwritable output should error")
	}
}
