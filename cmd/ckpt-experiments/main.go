// Command ckpt-experiments regenerates the paper's evaluation: every
// table and figure of "Minimizing the Network Overhead of
// Checkpointing in Cycle-harvesting Cluster Environments" (CLUSTER
// 2005), over a simulated Condor pool.
//
// Usage:
//
//	ckpt-experiments [-run all|table1|table2|table3|table4|table5|figure3|figure4|validate|chaos|predict|delta] \
//	    [-machines 80] [-months 18] [-samples 85] [-seed 2005] [-trace out.json] \
//	    [-chaos-tear 0.10] [-chaos-stall 0.05] [-chaos-stall-sec 30] [-chaos-outage 0.10] \
//	    [-predict-precision 0.85] [-predict-recall 0.8] [-predict-lead 240] [-policy migrate] \
//	    [-delta-dirty-rate 0.001]
//
// Results print to stdout in the paper's layouts. -trace writes a
// Chrome-trace (Perfetto-loadable) timeline of every live-campaign
// session and every schedule build; a .jsonl suffix selects the
// compact line format that ckpt-report timeline replays. Flag values
// are validated up front: contradictory settings (a negative drop
// probability, a zero machine count) exit non-zero with a per-flag
// error instead of being silently clamped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/cliflag"
	"github.com/cycleharvest/ckptsched/internal/experiments"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/parallel"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// options collects the parsed, validated flag set.
type options struct {
	which       string
	machines    int
	months      float64
	samples     int
	seed        int64
	csvDir      string
	concurrency int
	tracePath   string
	faults      ckptnet.LinkFaultConfig
	predict     predict.Config
	policy      predict.Policy
	dirtyRate   float64
}

func main() {
	run := flag.String("run", "all", "experiment to run: all, table1, table2, table3, table4, table5, figure3, figure4, validate, censoring, sensitivity, chaos, predict, delta")
	machines := flag.Int("machines", 80, "synthetic pool size")
	months := flag.Float64("months", 18, "monitor campaign length (30-day months)")
	samples := flag.Int("samples", 85, "live-experiment samples per model")
	seed := flag.Int64("seed", 2005, "workload seed")
	csvDir := flag.String("csv", "", "also write figure series as CSV files into this directory")
	concurrency := flag.Int("concurrency", 1, "concurrent live-experiment test processes (paper total times suggest ~4)")
	tracePath := flag.String("trace", "", "write an execution timeline to this file (.json Chrome trace, .jsonl compact)")
	chaos := flag.Bool("chaos", false, "shorthand for -run chaos: one live campaign under fault injection vs its clean and predicted twins")
	chaosTear := flag.Float64("chaos-tear", 0.10, "chaos: probability a transfer tears mid-flight")
	chaosStall := flag.Float64("chaos-stall", 0.05, "chaos: probability a transfer stalls")
	chaosStallSec := flag.Float64("chaos-stall-sec", 30, "chaos: stall duration, seconds")
	chaosOutage := flag.Float64("chaos-outage", 0.10, "chaos: probability the manager is unreachable at transfer start")
	predPrecision := flag.Float64("predict-precision", 0.85, "fault predictor precision (fraction of alarms that are true)")
	predRecall := flag.Float64("predict-recall", 0.8, "fault predictor recall (fraction of failures predicted)")
	predLead := flag.Float64("predict-lead", 240, "fault predictor lead time before failure, seconds")
	dirtyRate := flag.Float64("delta-dirty-rate", 0.001, "delta: per-chunk dirtying rate, 1/seconds")
	policy := flag.String("policy", "migrate", "prediction policy for the chaos experiment: reactive, proactive, migrate")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	statsDump := flag.Bool("stats", false, "print the final metrics-registry snapshot as JSON on stderr")
	flag.Parse()

	opts := options{
		which:       *run,
		machines:    *machines,
		months:      *months,
		samples:     *samples,
		seed:        *seed,
		csvDir:      *csvDir,
		concurrency: *concurrency,
		tracePath:   *tracePath,
		faults: ckptnet.LinkFaultConfig{
			TearProb:   *chaosTear,
			StallProb:  *chaosStall,
			StallSec:   *chaosStallSec,
			OutageProb: *chaosOutage,
		},
		predict: predict.Config{
			Precision: *predPrecision,
			Recall:    *predRecall,
			LeadSec:   *predLead,
		},
		dirtyRate: *dirtyRate,
	}
	if *chaos {
		opts.which = "chaos"
	}

	var check cliflag.Checker
	check.PositiveInt("-machines", opts.machines)
	check.Positive("-months", opts.months)
	check.PositiveInt("-samples", opts.samples)
	check.PositiveInt("-concurrency", opts.concurrency)
	check.Probability("-chaos-tear", opts.faults.TearProb)
	check.Probability("-chaos-stall", opts.faults.StallProb)
	check.NonNegative("-chaos-stall-sec", opts.faults.StallSec)
	check.Probability("-chaos-outage", opts.faults.OutageProb)
	check.Check("-predict-precision/-predict-recall/-predict-lead", opts.predict.Validate())
	check.Positive("-delta-dirty-rate", opts.dirtyRate)
	pol, perr := predict.ParsePolicy(*policy)
	check.Check("-policy", perr)
	opts.policy = pol
	if err := check.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-experiments: invalid flags:")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *statsDump {
		reg = obs.NewRegistry()
		fit.Instrument(reg)
		markov.Instrument(reg)
		parallel.Instrument(reg)
		predict.Instrument(reg)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err == nil {
		err = runExperiments(opts)
	}
	stopProfiles()
	if *statsDump {
		if serr := json.NewEncoder(os.Stderr).Encode(reg.Snapshot()); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-experiments:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges a heap snapshot; the
// returned stop function must run before exit (os.Exit skips defers,
// so main sequences it explicitly).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ckpt-experiments: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ckpt-experiments: memprofile:", err)
			}
			f.Close()
		}
	}
	return stop, nil
}

func runExperiments(opts options) error {
	which := strings.ToLower(opts.which)
	machines, months, samples := opts.machines, opts.months, opts.samples
	seed, csvDir, concurrency, tracePath := opts.seed, opts.csvDir, opts.concurrency, opts.tracePath
	// One tracer serves the whole invocation: schedule builds claim
	// lanes in markov's reserved band, and each live campaign gets its
	// own TraceCampaignStride-wide block of sample lanes.
	var tracer *obs.Tracer
	var nextTraceBase uint64
	traceBase := func(slots uint64) uint64 {
		b := nextTraceBase
		nextTraceBase += slots * experiments.TraceCampaignStride
		return b
	}
	if tracePath != "" {
		tracer = obs.NewTracer(obs.TracerOptions{FullFidelity: true})
		markov.Trace(tracer)
		defer markov.Trace(nil)
	}
	want := func(names ...string) bool {
		if which == "all" {
			return true
		}
		for _, n := range names {
			if which == n {
				return true
			}
		}
		return false
	}

	needWorkload := want("table1", "table3", "figure3", "figure4", "table4", "table5", "validate", "chaos", "delta")
	var w *experiments.Workload
	if needWorkload {
		start := time.Now()
		fmt.Printf("# building workload: %d machines, %.3g-month campaign (seed %d)\n", machines, months, seed)
		var err error
		w, err = experiments.NewWorkload(experiments.WorkloadConfig{
			Machines: machines,
			Months:   months,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("# %d machines passed the record filter (%.1fs)\n\n", len(w.Data), time.Since(start).Seconds())
	}

	if want("table1", "table3", "figure3", "figure4") {
		start := time.Now()
		sweep, err := experiments.RunSweep(w, experiments.PaperCTimes, experiments.PaperCheckpointMB)
		if err != nil {
			return err
		}
		fmt.Printf("# sweep complete (%.1fs)\n\n", time.Since(start).Seconds())
		if want("figure3") {
			fmt.Println(experiments.RenderFigure("Figure 3: mean machine utilization vs checkpoint duration",
				sweep.CTimes, sweep.Figure3(), 3))
			if err := writeCSV(csvDir, "figure3.csv",
				experiments.FigureCSV(sweep.CTimes, sweep.Figure3())); err != nil {
				return err
			}
		}
		if want("table1") {
			t1, err := sweep.Table1()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTable(t1, 3))
		}
		if want("figure4") {
			fmt.Println(experiments.RenderFigure("Figure 4: mean network load (MB, 500 MB checkpoints) vs checkpoint duration",
				sweep.CTimes, sweep.Figure4(), 0))
			if err := writeCSV(csvDir, "figure4.csv",
				experiments.FigureCSV(sweep.CTimes, sweep.Figure4())); err != nil {
				return err
			}
		}
		if want("table3") {
			t3, err := sweep.Table3()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTable(t3, 0))
		}
	}

	if want("table2") {
		res, err := experiments.RunTable2(experiments.Table2Config{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(res))
	}

	if want("table4", "validate") {
		t4, camp, err := experiments.RunLiveTable("Table 4: checkpoint manager on the campus network",
			experiments.LiveCampaignConfig{
				Workload:        w,
				Link:            ckptnet.CampusLink(),
				SamplesPerModel: samples,
				Concurrency:     concurrency,
				Seed:            seed + 4,
				Tracer:          tracer,
				TracePidBase:    traceBase(1),
			})
		if err != nil {
			return err
		}
		if want("table4") {
			fmt.Println(experiments.RenderLiveTable(t4))
		}
		if want("validate") {
			v, err := experiments.RunValidation(w, camp)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderValidation(v))
		}
	}

	if want("chaos") {
		res, err := experiments.RunChaos(experiments.ChaosConfig{
			Workload:     w,
			Link:         ckptnet.CampusLink(),
			Faults:       opts.faults,
			Seed:         seed + 6,
			Tracer:       tracer,
			TracePidBase: traceBase(3),
			Predict:      opts.predict,
			Policy:       opts.policy,
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderChaos(res))
	}

	if want("delta") {
		res, err := experiments.RunDelta(experiments.DeltaConfig{
			Workload:     w,
			Link:         ckptnet.CampusLink(),
			DirtyRate:    opts.dirtyRate,
			Seed:         seed + 8,
			Tracer:       tracer,
			TracePidBase: traceBase(3),
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderDelta(res))
	}

	if want("predict") {
		start := time.Now()
		res, err := experiments.RunPrediction(experiments.PredictionConfig{
			Seed:   seed + 7,
			Tracer: tracer,
		})
		if err != nil {
			return err
		}
		fmt.Printf("# prediction sweep complete (%.1fs)\n\n", time.Since(start).Seconds())
		out, err := experiments.RenderPrediction(res)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}

	if want("sensitivity") {
		res, err := experiments.RunSensitivity(experiments.SensitivityConfig{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSensitivity(res))
	}

	if want("censoring") {
		res, err := experiments.RunCensoring(experiments.CensoringConfig{
			Machines: machines / 2,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderCensoring(res))
	}

	if want("table5") {
		t5, _, err := experiments.RunLiveTable("Table 5: checkpoint manager across the wide area",
			experiments.LiveCampaignConfig{
				Workload:        w,
				Link:            ckptnet.WideAreaLink(),
				SamplesPerModel: samples / 2, // the paper's WAN table has ~half the samples
				Concurrency:     concurrency,
				Seed:            seed + 5,
				Tracer:          tracer,
				TracePidBase:    traceBase(1),
			})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderLiveTable(t5))
	}
	return tracer.WriteFile(tracePath)
}

// writeCSV writes content into dir/name, creating dir; empty dir means
// CSV export is off.
func writeCSV(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n\n", path)
	return nil
}
