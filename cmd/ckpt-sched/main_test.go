package main

import (
	"path/filepath"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func writeTraces(t *testing.T) string {
	t.Helper()
	tr, err := trace.Generate(trace.GenerateOptions{
		Machine: "m1", N: 60, Avail: dist.NewWeibull(0.5, 2000), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := trace.NewSet()
	for _, r := range tr.Records {
		set.Add(tr.Machine, r)
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	if err := trace.SaveCSV(path, set); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSchedExplicitParams(t *testing.T) {
	if err := run("weibull", "0.43,3409", "", "", "", 110, -1, 600, 7200); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedFromTrace(t *testing.T) {
	path := writeTraces(t)
	if err := run("", "", path, "m1", "hyperexp2", 110, 110, 0, 3600); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedErrors(t *testing.T) {
	if err := run("", "", "", "", "", 110, -1, 0, 3600); err == nil {
		t.Error("no input mode should error")
	}
	if err := run("weibull", "", "", "", "", 110, -1, 0, 3600); err == nil {
		t.Error("missing params should error")
	}
	if err := run("weibull", "a,b", "", "", "", 110, -1, 0, 3600); err == nil {
		t.Error("bad params should error")
	}
	if err := run("bogus", "1", "", "", "", 110, -1, 0, 3600); err == nil {
		t.Error("bad model should error")
	}
	path := writeTraces(t)
	if err := run("", "", path, "nope", "weibull", 110, -1, 0, 3600); err == nil {
		t.Error("unknown machine should error")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 1, 2.5 ,3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 2.5 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats(""); err == nil {
		t.Error("empty should error")
	}
}
