// Command ckpt-sched prints an optimal checkpoint schedule.
//
// Two input modes:
//
//	ckpt-sched -model weibull -params 0.43,3409 -c 110 [-r 110] [-telapsed 0] [-horizon 86400]
//	ckpt-sched -trace traces.csv -machine desktop0001 -fit hyperexp2 -c 110
//
// The first uses explicit distribution parameters (the paper's §3.5
// portable-routine interface); the second fits the named model family
// to a machine's recorded availability history first.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	ckptsched "github.com/cycleharvest/ckptsched"
	"github.com/cycleharvest/ckptsched/internal/core"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func main() {
	model := flag.String("model", "", "model family with explicit -params")
	params := flag.String("params", "", "comma-separated parameters (exp: λ; weibull: shape,scale; hyperexpK: p1..pK,λ1..λK)")
	tracePath := flag.String("trace", "", "trace CSV to fit from")
	machine := flag.String("machine", "", "machine in -trace to fit")
	fitModel := flag.String("fit", "weibull", "family to fit when using -trace")
	c := flag.Float64("c", 110, "checkpoint cost, seconds")
	r := flag.Float64("r", -1, "recovery cost, seconds (-1 = same as -c)")
	telapsed := flag.Float64("telapsed", 0, "seconds the resource has already been available")
	horizon := flag.Float64("horizon", 24*3600, "plan this far into the resource's future, seconds")
	flag.Parse()

	if err := run(*model, *params, *tracePath, *machine, *fitModel, *c, *r, *telapsed, *horizon); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-sched:", err)
		os.Exit(1)
	}
}

func run(model, params, tracePath, machine, fitModel string, c, r, telapsed, horizon float64) error {
	var s *ckptsched.Scheduler
	switch {
	case model != "":
		m, err := ckptsched.ParseModel(model)
		if err != nil {
			return err
		}
		vals, err := parseFloats(params)
		if err != nil {
			return err
		}
		d, err := core.DistFromParams(m, vals)
		if err != nil {
			return err
		}
		s, err = ckptsched.New(d)
		if err != nil {
			return err
		}
	case tracePath != "":
		set, err := trace.LoadCSV(tracePath)
		if err != nil {
			return err
		}
		tr, ok := set.Traces[machine]
		if !ok {
			return fmt.Errorf("machine %q not found (have %v)", machine, set.Machines())
		}
		m, err := ckptsched.ParseModel(fitModel)
		if err != nil {
			return err
		}
		s, err = ckptsched.Fit(m, tr.Durations())
		if err != nil {
			return err
		}
		fmt.Printf("fitted %v to %d observations: %v\n\n", m, tr.Len(), s.Dist)
	default:
		return fmt.Errorf("need either -model/-params or -trace/-machine")
	}

	costs, err := ckptsched.NewCosts(c, r, -1)
	if err != nil {
		return err
	}
	sched, err := s.Schedule(telapsed, costs, ckptsched.ScheduleOptions{Horizon: telapsed + horizon})
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint schedule (C=%g s, R=%g s, T_elapsed=%g s):\n\n", costs.C, costs.R, telapsed)
	fmt.Printf("%-4s %14s %14s %14s\n", "#", "age (s)", "T_opt (s)", "efficiency")
	for i := range sched.Intervals {
		fmt.Printf("%-4d %14.1f %14.1f %14.3f\n",
			i, sched.Ages[i], sched.Intervals[i], 1/sched.Ratios[i])
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -params")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
