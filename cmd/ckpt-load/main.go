// Command ckpt-load is the open-loop load harness for ckpt-served: it
// installs a key space of schedules, then drives interval lookups at a
// fixed arrival rate and reports the latency distribution and shed
// rate the server actually delivered (DESIGN.md §15).
//
// Usage:
//
//	ckpt-load -addr 127.0.0.1:7420 -rate 100000 -duration 10s
//	ckpt-load -self -rate 120000 -duration 5s -zipf 1.2 -cold 0.01
//
// The generator is open-loop: request k is *scheduled* at k/rate
// seconds and its latency is measured from that scheduled arrival, not
// from when the client got around to writing it — so a server that
// falls behind shows the queueing delay it inflicted, instead of the
// closed-loop mirage where a slow server throttles its own offered
// load. Requests are pipelined over a few persistent connections with
// batched writes, which is what lets one box offer 100k+ req/s to a
// server sharing the same cores.
//
// Key choice is Zipf-skewed (-zipf, 0 = uniform) over -keys installed
// schedules, with a -cold fraction aimed at keys that were never
// installed (the fleet's "unknown machine" lookups, answered 404).
// With -self the harness boots an in-process ckpt-served-equivalent on
// a loopback port first — the mode the -short CI smoke runs.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cycleharvest/ckptsched/internal/cliflag"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/serve"
)

type config struct {
	addr     string
	fastAddr string
	self     bool
	rate     float64
	duration time.Duration
	conns    int
	keys     int
	zipf     float64
	cold     float64
	seed     int64
	c        float64
	mtbf     float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "ckpt-served main API address (host:port); empty requires -self")
	flag.StringVar(&cfg.fastAddr, "fast-addr", "", "ckpt-served fast-path address; measured lookups go here when set")
	flag.BoolVar(&cfg.self, "self", false, "boot an in-process server (main + fast path) on loopback and load that")
	flag.Float64Var(&cfg.rate, "rate", 100000, "offered arrival rate, requests/sec")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "measured load duration")
	flag.IntVar(&cfg.conns, "conns", 4, "persistent pipelined connections")
	flag.IntVar(&cfg.keys, "keys", 512, "installed schedule keys")
	flag.Float64Var(&cfg.zipf, "zipf", 1.1, "Zipf skew s for key choice (0 = uniform, else s > 1)")
	flag.Float64Var(&cfg.cold, "cold", 0, "fraction of lookups aimed at never-installed keys")
	flag.Int64Var(&cfg.seed, "seed", 1, "deterministic seed for key choice")
	flag.Float64Var(&cfg.c, "c", 60, "checkpoint cost (seconds) for the installed schedules")
	flag.Float64Var(&cfg.mtbf, "mtbf", 3600, "mean availability (seconds) for the installed schedules")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured phase here")
	flag.Parse()

	var ck cliflag.Checker
	ck.Positive("rate", cfg.rate)
	ck.PositiveInt("conns", cfg.conns)
	ck.PositiveInt("keys", cfg.keys)
	ck.Probability("cold", cfg.cold)
	ck.NonNegative("zipf", cfg.zipf)
	ck.Positive("c", cfg.c)
	ck.Positive("mtbf", cfg.mtbf)
	if cfg.zipf != 0 && cfg.zipf <= 1 {
		ck.Check("zipf", fmt.Errorf("must be 0 (uniform) or > 1, got %g", cfg.zipf))
	}
	if cfg.addr == "" && !cfg.self {
		ck.Check("addr", fmt.Errorf("required unless -self"))
	}
	if err := ck.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-load:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-load:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-load:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	res, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-load:", err)
		os.Exit(1)
	}
	fmt.Print(res.report())
}

// result aggregates one load run.
type result struct {
	offered             float64 // configured arrival rate
	achieved            float64 // completed responses per second of wall time
	completed           int
	ok                  int
	shed                int // 429
	notFound            int // 404 (cold keys)
	other               int
	p50, p99, p999, max time.Duration
	// series is the per-second breakdown: completions binned by the wall
	// second (relative to the common epoch) each response came back in.
	series []second
}

// second is one wall-second of the measured phase.
type second struct {
	done     int // responses completed in this second
	p50, p99 time.Duration
}

func (r result) report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %.0f req/s, achieved %.0f req/s (%d responses)\n", r.offered, r.achieved, r.completed)
	fmt.Fprintf(&b, "  ok %d, shed %d (%.2f%%), cold-miss %d, other %d\n",
		r.ok, r.shed, 100*float64(r.shed)/float64(max(r.completed, 1)), r.notFound, r.other)
	fmt.Fprintf(&b, "  latency from scheduled arrival: p50 %v  p99 %v  p999 %v  max %v\n",
		r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond),
		r.p999.Round(time.Microsecond), r.max.Round(time.Microsecond))
	if len(r.series) > 1 {
		rates := make([]float64, len(r.series))
		for i, s := range r.series {
			rates[i] = float64(s.done)
		}
		fmt.Fprintf(&b, "  per-second throughput: %s\n", obs.Sparkline(rates, len(rates)))
		fmt.Fprintf(&b, "  %4s %10s %12s %12s\n", "sec", "done", "p50", "p99")
		for i, s := range r.series {
			fmt.Fprintf(&b, "  %4d %10d %12v %12v\n", i, s.done,
				s.p50.Round(time.Microsecond), s.p99.Round(time.Microsecond))
		}
	}
	return b.String()
}

// buildSeries bins completion times (offset from the common epoch) into
// whole seconds and computes each second's latency quantiles. doneAt
// and lats are parallel.
func buildSeries(doneAt []time.Duration, lats []time.Duration) []second {
	if len(doneAt) == 0 {
		return nil
	}
	maxAt := doneAt[0]
	for _, d := range doneAt {
		if d > maxAt {
			maxAt = d
		}
	}
	bins := make([][]time.Duration, int(maxAt/time.Second)+1)
	for i, d := range doneAt {
		b := int(d / time.Second)
		if b < 0 {
			b = 0
		}
		bins[b] = append(bins[b], lats[i])
	}
	out := make([]second, len(bins))
	for i, lat := range bins {
		out[i].done = len(lat)
		if len(lat) == 0 {
			continue
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		q := func(p float64) time.Duration { return lat[min(int(p*float64(len(lat))), len(lat)-1)] }
		out[i].p50, out[i].p99 = q(0.50), q(0.99)
	}
	return out
}

func run(cfg config) (result, error) {
	addr, fastAddr := cfg.addr, cfg.fastAddr
	if cfg.self {
		s := serve.New(serve.Options{})
		rn, err := s.Start("127.0.0.1:0")
		if err != nil {
			return result{}, fmt.Errorf("self server: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			rn.Shutdown(ctx)
		}()
		fr, err := s.StartFast("127.0.0.1:0")
		if err != nil {
			return result{}, fmt.Errorf("self fast path: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			fr.Shutdown(ctx)
		}()
		addr, fastAddr = rn.Addr().String(), fr.Addr().String()
	}
	if err := install(addr, cfg); err != nil {
		return result{}, err
	}
	// Installs go to the main API; the measured lookups hit the fast
	// path when one is available.
	target := fastAddr
	if target == "" {
		target = addr
	}
	return load(target, cfg)
}

// install populates the server's key space: one memoryless schedule
// per key, built from explicit parameters so setup is cheap.
func install(addr string, cfg config) error {
	client := &http.Client{Timeout: 30 * time.Second}
	url := "http://" + addr + "/v1/schedule"
	for i := 0; i < cfg.keys; i++ {
		body := fmt.Sprintf(`{"key":"w%d","model":"exp","params":[%g],"c":%g}`,
			i, 1/cfg.mtbf, cfg.c)
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return fmt.Errorf("install key %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("install key %d: %d %s", i, resp.StatusCode, msg)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return nil
}

// pickKeys draws the per-request key index sequence: Zipf or uniform
// over the installed keys, with a cold fraction redirected to
// never-installed ones (negative index).
func pickKeys(cfg config, n int) []int32 {
	rng := rand.New(rand.NewSource(cfg.seed))
	var zipf *rand.Zipf
	if cfg.zipf > 1 {
		zipf = rand.NewZipf(rng, cfg.zipf, 1, uint64(cfg.keys-1))
	}
	idx := make([]int32, n)
	for i := range idx {
		if cfg.cold > 0 && rng.Float64() < cfg.cold {
			idx[i] = int32(-1 - rng.Intn(cfg.keys)) // cold key c<n>, never installed
			continue
		}
		if zipf != nil {
			idx[i] = int32(zipf.Uint64())
		} else {
			idx[i] = int32(rng.Intn(cfg.keys))
		}
	}
	return idx
}

// requestBytes pre-renders the pipelined GET for each warm (and, on
// demand, cold) key so the hot loop only copies bytes.
func requestBytes(key string) []byte {
	return []byte("GET /v1/schedule/" + key + "/interval?age=137.5 HTTP/1.1\r\nHost: l\r\n\r\n")
}

// load drives the measured open-loop phase.
func load(addr string, cfg config) (result, error) {
	total := int(cfg.rate * cfg.duration.Seconds())
	if total < cfg.conns {
		total = cfg.conns
	}
	keyIdx := pickKeys(cfg, total)
	warm := make([][]byte, cfg.keys)
	for i := range warm {
		warm[i] = requestBytes("w" + strconv.Itoa(i))
	}
	cold := map[int32][]byte{}
	reqOf := func(k int32) []byte {
		if k >= 0 {
			return warm[k]
		}
		b, ok := cold[k]
		if !ok {
			b = requestBytes("c" + strconv.Itoa(int(-1-k)))
			cold[k] = b
		}
		return b
	}

	// Interleave: request k goes to connection k%conns, keeping each
	// connection's sub-stream at the same rate and its arrival offsets
	// strictly increasing (pipelined responses return in order).
	type connWork struct {
		reqs [][]byte
		offs []time.Duration // scheduled arrival offsets from the common start
	}
	work := make([]connWork, cfg.conns)
	gap := time.Duration(float64(time.Second) / cfg.rate)
	for k := 0; k < total; k++ {
		c := k % cfg.conns
		work[c].reqs = append(work[c].reqs, reqOf(keyIdx[k]))
		work[c].offs = append(work[c].offs, time.Duration(k)*gap)
	}

	conns := make([]net.Conn, cfg.conns)
	for i := range conns {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return result{}, fmt.Errorf("dial %s: %w", addr, err)
		}
		defer c.Close()
		conns[i] = c
	}

	results := make([]connResult, cfg.conns)
	start := time.Now().Add(50 * time.Millisecond) // common epoch, after all goroutines are up
	var wg sync.WaitGroup
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveConn(conns[i], work[i].reqs, work[i].offs, start)
		}(i)
	}
	wg.Wait()

	var res result
	res.offered = cfg.rate
	var all, doneAt []time.Duration
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return result{}, fmt.Errorf("connection %d: %w", i, r.err)
		}
		res.ok += r.ok
		res.shed += r.shed
		res.notFound += r.nf
		res.other += r.other
		// A response's completion offset from the epoch is its scheduled
		// arrival plus its measured latency.
		for j, l := range r.lat {
			doneAt = append(doneAt, work[i].offs[j]+l)
		}
		all = append(all, r.lat...)
	}
	res.completed = len(all)
	if res.completed == 0 {
		return result{}, fmt.Errorf("no responses completed")
	}
	// Wall time of the measured phase: the schedule spans total/rate
	// seconds; completions past that are the backlog draining.
	res.achieved = float64(res.completed) / time.Since(start).Seconds()
	res.series = buildSeries(doneAt, all)
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	q := func(p float64) time.Duration { return all[min(int(p*float64(len(all))), len(all)-1)] }
	res.p50, res.p99, res.p999, res.max = q(0.50), q(0.99), q(0.999), all[len(all)-1]
	return res, nil
}

// connResult is one connection's share of the run.
type connResult struct {
	lat                 []time.Duration
	ok, shed, nf, other int
	err                 error
}

// driveConn runs one pipelined connection: a writer that releases each
// request at its scheduled offset (batching everything already due
// into one flush) and a reader that attributes each response's latency
// to that scheduled arrival.
func driveConn(conn net.Conn, reqs [][]byte, offs []time.Duration, start time.Time) connResult {
	res := connResult{lat: make([]time.Duration, 0, len(reqs))}
	writeErr := make(chan error, 1)
	go func() {
		bw := bufio.NewWriterSize(conn, 64<<10)
		for i, req := range reqs {
			if d := time.Until(start.Add(offs[i])); d > 0 {
				// Everything due has been buffered; ship it, then sleep
				// until the next arrival.
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
				time.Sleep(d)
			}
			if _, err := bw.Write(req); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- bw.Flush()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	for i := range reqs {
		code, err := readResponse(br)
		if err != nil {
			res.err = fmt.Errorf("response %d: %w", i, err)
			break
		}
		res.lat = append(res.lat, time.Since(start.Add(offs[i])))
		switch code {
		case http.StatusOK:
			res.ok++
		case http.StatusTooManyRequests:
			res.shed++
		case http.StatusNotFound:
			res.nf++
		default:
			res.other++
		}
	}
	if err := <-writeErr; err != nil && res.err == nil {
		res.err = fmt.Errorf("write: %w", err)
	}
	return res
}

// readResponse parses one HTTP/1.1 response off the pipelined stream
// — status code, headers for the body length, body discarded — without
// net/http's per-response allocations.
func readResponse(br *bufio.Reader) (code int, err error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return 0, err
	}
	// "HTTP/1.1 NNN ..."
	if len(line) < 12 {
		return 0, fmt.Errorf("short status line %q", line)
	}
	code, err = strconv.Atoi(string(line[9:12]))
	if err != nil {
		return 0, fmt.Errorf("status line %q", line)
	}
	contentLen := -1
	chunked := false
	for {
		line, err = br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		if len(line) <= 2 { // bare CRLF: end of headers
			break
		}
		if v, ok := headerValue(line, "Content-Length:"); ok {
			contentLen, err = strconv.Atoi(v)
			if err != nil {
				return 0, fmt.Errorf("content-length %q", v)
			}
		} else if v, ok := headerValue(line, "Transfer-Encoding:"); ok && strings.Contains(v, "chunked") {
			chunked = true
		}
	}
	switch {
	case chunked:
		if err := discardChunked(br); err != nil {
			return 0, err
		}
	case contentLen > 0:
		if _, err := br.Discard(contentLen); err != nil {
			return 0, err
		}
	}
	return code, nil
}

// headerValue matches a header line against a canonical "Name:" prefix
// (ASCII case-insensitive) and returns the trimmed value.
func headerValue(line []byte, name string) (string, bool) {
	if len(line) < len(name) {
		return "", false
	}
	for i := 0; i < len(name); i++ {
		c, n := line[i], name[i]
		if c != n && c|0x20 != n|0x20 {
			return "", false
		}
	}
	return strings.TrimSpace(string(line[len(name) : len(line)-2])), true
}

// discardChunked consumes a chunked body (ckpt-served answers with
// Content-Length, but a proxy in between may re-frame).
func discardChunked(br *bufio.Reader) error {
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(strings.TrimSpace(string(line)), 16, 64)
		if err != nil {
			return fmt.Errorf("chunk size %q", line)
		}
		if _, err := br.Discard(int(n) + 2); err != nil { // chunk + CRLF
			return err
		}
		if n == 0 {
			return nil
		}
	}
}
