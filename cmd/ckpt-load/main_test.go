package main

import (
	"strings"
	"testing"
	"time"
)

// TestLoadSmoke runs the full harness — in-process server (main API +
// fast path), install phase, open-loop measured phase with skew and
// cold keys — at a rate small enough for CI, and checks the run's
// accounting adds up.
func TestLoadSmoke(t *testing.T) {
	cfg := config{
		self:     true,
		rate:     2000,
		duration: 500 * time.Millisecond,
		conns:    2,
		keys:     16,
		zipf:     1.1,
		cold:     0.05,
		seed:     1,
		c:        60,
		mtbf:     3600,
	}
	res, err := run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.completed != 1000 {
		t.Fatalf("completed = %d, want 1000", res.completed)
	}
	if res.ok+res.notFound != res.completed || res.other != 0 {
		t.Fatalf("accounting: ok %d + cold-miss %d != completed %d (other %d)",
			res.ok, res.notFound, res.completed, res.other)
	}
	if res.notFound == 0 {
		t.Error("cold fraction 0.05 produced no cold misses")
	}
	if res.achieved <= 0 || res.p50 <= 0 || res.p99 < res.p50 || res.max < res.p999 {
		t.Errorf("implausible stats: achieved %g p50 %v p99 %v p999 %v max %v",
			res.achieved, res.p50, res.p99, res.p999, res.max)
	}
	rep := res.report()
	for _, want := range []string{"offered", "p50", "p99", "p999", "shed"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	// The per-second series accounts for every completion.
	sum := 0
	for _, s := range res.series {
		sum += s.done
		if s.done > 0 && (s.p50 <= 0 || s.p99 < s.p50) {
			t.Errorf("second quantiles implausible: %+v", s)
		}
	}
	if sum != res.completed {
		t.Errorf("series sums to %d completions, want %d", sum, res.completed)
	}
}

// TestBuildSeries pins the binning: completions land in the wall
// second they finished in, and each bin's quantiles come from that
// bin alone.
func TestBuildSeries(t *testing.T) {
	ms := time.Millisecond
	doneAt := []time.Duration{100 * ms, 900 * ms, 1100 * ms, 2500 * ms, 2600 * ms}
	lats := []time.Duration{1 * ms, 2 * ms, 3 * ms, 10 * ms, 20 * ms}
	s := buildSeries(doneAt, lats)
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	if s[0].done != 2 || s[1].done != 1 || s[2].done != 2 {
		t.Fatalf("bin counts = %d,%d,%d", s[0].done, s[1].done, s[2].done)
	}
	// Quantile convention matches the aggregate report: index int(p*n),
	// so p50 of a 2-element bin is the upper element.
	if s[2].p50 != 20*ms || s[2].p99 != 20*ms {
		t.Errorf("bin 2 quantiles p50=%v p99=%v", s[2].p50, s[2].p99)
	}
	if s[1].p50 != 3*ms {
		t.Errorf("bin 1 p50=%v", s[1].p50)
	}
	if buildSeries(nil, nil) != nil {
		t.Error("empty input should give a nil series")
	}
}

// TestPickKeysDeterministic pins the key sequence to the seed so load
// runs are reproducible.
func TestPickKeysDeterministic(t *testing.T) {
	cfg := config{keys: 32, zipf: 1.3, cold: 0.1, seed: 7}
	a := pickKeys(cfg, 1000)
	b := pickKeys(cfg, 1000)
	cold := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 {
			cold++
			if -1-a[i] >= int32(cfg.keys) {
				t.Fatalf("cold index %d out of range", a[i])
			}
		} else if a[i] >= int32(cfg.keys) {
			t.Fatalf("warm index %d out of range", a[i])
		}
	}
	if cold == 0 || cold > 250 {
		t.Errorf("cold draws = %d, want roughly 100 of 1000", cold)
	}
}
