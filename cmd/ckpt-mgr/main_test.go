package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	rsp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer rsp.Body.Close()
	body, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rsp.StatusCode, string(body)
}

// TestMetricsServerEndpoints covers the observability mux: /healthz
// liveness, Prometheus /metrics, expvar /debug/vars, and the flight
// recorder snapshot — then a graceful shutdown.
func TestMetricsServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ckptnet_test_total", "test counter").Add(3)
	tracer := obs.NewTracer(obs.TracerOptions{Metrics: reg})
	tracer.Event(1, 1, "probe")

	hist := obs.NewHistory(obs.HistoryOptions{Registry: reg, Window: 0.01, Capacity: 32})
	obs.NewRuntimeCollector(reg).Attach(hist)
	ms, err := startMetricsServer("127.0.0.1:0", reg, tracer, hist, false)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ms.Addr().String()

	// The self-scraper needs one baseline plus one window before the
	// history carries series.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, base+"/metrics/history")
		var snap obs.HistorySnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/metrics/history is not a snapshot: %v\n%s", err, body)
		}
		if snap.Windows > 0 {
			if _, ok := snap.Counters["ckptnet_test_total"]; !ok {
				t.Errorf("history missing ckptnet_test_total: %s", body)
			}
			if _, ok := snap.Gauges["go_goroutines"]; !ok {
				t.Errorf("history missing runtime metrics: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("history never accumulated a window")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || !strings.Contains(body, "ckptnet_test_total 3") {
		t.Errorf("/metrics = %d, missing counter:\n%s", code, body)
	}
	if code, _ := get(t, base+"/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars = %d", code)
	}
	_, body := get(t, base+"/debug/trace/snapshot")
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("snapshot is not a Chrome trace array: %v\n%s", err, body)
	}
	if len(events) != 1 || events[0]["name"] != "probe" {
		t.Errorf("snapshot = %v, want the probe event", events)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ms.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The listener must actually be released.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after Shutdown")
	}
	ln, err := net.Listen("tcp", ms.Addr().String())
	if err != nil {
		t.Fatalf("address not released after Shutdown: %v", err)
	}
	ln.Close()
}

// TestMetricsServerNoTracer pins the degraded mux: without a tracer
// the snapshot route 404s while the rest stays up.
func TestMetricsServerNoTracer(t *testing.T) {
	ms, err := startMetricsServer("127.0.0.1:0", obs.NewRegistry(), nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		ms.Shutdown(ctx)
	}()
	base := "http://" + ms.Addr().String()
	if code, _ := get(t, base+"/debug/trace/snapshot"); code != http.StatusNotFound {
		t.Errorf("/debug/trace/snapshot without tracer = %d, want 404", code)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
}

func TestParseFloats(t *testing.T) {
	vals, err := parseFloats(" 0.6, 0.4,0.01 ,0.0001")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 || vals[0] != 0.6 || vals[3] != 0.0001 {
		t.Fatalf("parseFloats = %v", vals)
	}
	if _, err := parseFloats("1,x"); err == nil {
		t.Error("bad parameter should error")
	}
}
