// Command ckpt-mgr runs the checkpoint manager: a TCP server that
// assigns availability models to connecting test processes, serves
// recovery images, receives checkpoints, and logs every session
// (§5.2 of the paper).
//
// Usage:
//
//	ckpt-mgr -addr 127.0.0.1:7419 -model hyperexp2 -params 0.6,0.4,0.01,0.0001 [-mb 500]
//	ckpt-mgr -addr :7419 -archive traces.csv -model weibull
//	ckpt-mgr -addr :7419 -archive traces.csv -model weibull -metrics 127.0.0.1:9090 -trace out.json
//
// With -metrics, the manager serves its live counters as a Prometheus
// text page at /metrics, as JSON at /debug/vars (see DESIGN.md §11
// for the metric-name contract), a liveness probe at /healthz, and
// the flight recorder's last-N trace events as Chrome-trace JSON at
// /debug/trace/snapshot. The HTTP server shuts down gracefully when
// the manager closes.
//
// With -trace, every session's timeline (transfers, retries, torn
// frames, heartbeats, chaos injections) is written to the file on
// shutdown as a Chrome trace (Perfetto-loadable); a .jsonl suffix
// selects the compact line format that ckpt-report timeline replays.
//
// With -archive, parameters are fitted per connecting job: the job ID
// is expected to be "<machine>/<n>" and the machine's recorded history
// is used (pooled history when the machine is unknown). The manager
// runs until interrupted, then prints per-session summaries.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ckptsched "github.com/cycleharvest/ckptsched"
	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/core"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/imagestore"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7419", "listen address")
	model := flag.String("model", "weibull", "model family to assign")
	params := flag.String("params", "", "explicit comma-separated parameters (omit to fit from -archive)")
	archivePath := flag.String("archive", "", "trace CSV to fit per-machine parameters from")
	tracePath := flag.String("trace", "", "write an execution timeline to this file on shutdown (.json Chrome trace, .jsonl compact)")
	mb := flag.Float64("mb", 500, "checkpoint image size, MB")
	out := flag.String("out", "", "write session logs (JSON lines) here on shutdown")
	helloTO := flag.Duration("hello-timeout", 30*time.Second, "deadline for a new connection's first frame")
	idleTO := flag.Duration("idle-timeout", 5*time.Minute, "per-frame deadline for clients that announce no time scale")
	grace := flag.Float64("heartbeat-grace", 4, "per-frame deadline in heartbeat periods")
	faultDrop := flag.Float64("fault-drop", 0, "fault injection: per-frame drop probability")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "fault injection: per-buffer corruption probability")
	faultReset := flag.Int64("fault-reset-bytes", 0, "fault injection: reset each armed connection after N bytes")
	faultEvery := flag.Int("fault-reset-every", 1, "fault injection: arm the reset on every Nth connection")
	faultSeed := flag.Int64("fault-seed", 1, "fault injection: deterministic seed")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics, expvar /debug/vars, /healthz and /debug/trace/snapshot on this address (e.g. 127.0.0.1:9090)")
	historyWindow := flag.Duration("history-window", time.Second, "windowed-metrics scrape cadence for /metrics/history (0 disables; needs -metrics)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the -metrics address")
	flag.Parse()

	opts := ckptnet.Options{
		HelloTimeout:   *helloTO,
		IdleTimeout:    *idleTO,
		HeartbeatGrace: *grace,
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		fit.Instrument(reg)
		imagestore.Instrument(reg)
		if expvar.Get("ckptsched") == nil {
			obs.PublishExpvar("ckptsched", reg)
		}
	}
	// The flight recorder runs whenever anyone can see it: with -trace
	// (full-fidelity file sink) or with -metrics (ring snapshot at
	// /debug/trace/snapshot).
	if *tracePath != "" || *metricsAddr != "" {
		opts.Tracer = obs.NewTracer(obs.TracerOptions{
			FullFidelity: *tracePath != "",
			Metrics:      reg,
		})
	}
	var ms *metricsServer
	if *metricsAddr != "" {
		var hist *obs.History
		if *historyWindow > 0 {
			hist = obs.NewHistory(obs.HistoryOptions{
				Registry: reg,
				Window:   historyWindow.Seconds(),
			})
			obs.NewRuntimeCollector(reg).Attach(hist)
		}
		var err error
		ms, err = startMetricsServer(*metricsAddr, reg, opts.Tracer, hist, *pprofOn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-mgr: metrics listener:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics (windowed history at /metrics/history, expvar at /debug/vars, liveness at /healthz, flight recorder at /debug/trace/snapshot)\n", ms.Addr())
	}
	if *faultDrop > 0 || *faultCorrupt > 0 || *faultReset > 0 {
		fi := ckptnet.NewFaultInjector(ckptnet.FaultConfig{
			Seed:            *faultSeed,
			DropProb:        *faultDrop,
			CorruptProb:     *faultCorrupt,
			ResetAfterBytes: *faultReset,
			ResetEvery:      *faultEvery,
			Tracer:          opts.Tracer,
		})
		opts.WrapConn = fi.Wrap
	}
	if err := run(*addr, *model, *params, *archivePath, *mb, *out, *tracePath, opts, ms); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-mgr:", err)
		os.Exit(1)
	}
}

// metricsServer is the optional observability HTTP server; it lives
// until Shutdown, which drains in-flight scrapes (and the history
// self-scraper) before returning.
type metricsServer struct {
	srv         *http.Server
	ln          net.Listener
	done        chan struct{}
	stopScraper func()
}

// startMetricsServer binds addr and serves the observability mux:
// Prometheus /metrics, windowed series at /metrics/history (when a
// history is attached — its wall-clock self-scraper starts here and
// stops with the server), expvar /debug/vars, a /healthz liveness
// probe, (when a tracer is attached) the flight recorder's ring as
// Chrome-trace JSON at /debug/trace/snapshot, and optionally
// net/http/pprof under /debug/pprof/.
func startMetricsServer(addr string, reg *obs.Registry, tracer *obs.Tracer, hist *obs.History, pprofOn bool) (*metricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if tracer != nil {
		mux.Handle("/debug/trace/snapshot", tracer.SnapshotHandler())
	}
	var stopScraper func()
	if hist != nil {
		mux.Handle("/metrics/history", hist.Handler())
		stopScraper = hist.StartScraper()
	}
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if stopScraper != nil {
			stopScraper()
		}
		return nil, err
	}
	ms := &metricsServer{
		srv:         &http.Server{Handler: mux},
		ln:          ln,
		done:        make(chan struct{}),
		stopScraper: stopScraper,
	}
	go func() {
		defer close(ms.done)
		if err := ms.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ckpt-mgr: metrics server:", err)
		}
	}()
	return ms, nil
}

// Addr is the bound listen address (useful with ":0").
func (ms *metricsServer) Addr() net.Addr { return ms.ln.Addr() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drain until ctx expires, and the serve goroutine has exited
// by the time it returns.
func (ms *metricsServer) Shutdown(ctx context.Context) error {
	if ms.stopScraper != nil {
		ms.stopScraper()
	}
	err := ms.srv.Shutdown(ctx)
	<-ms.done
	return err
}

func run(addr, modelName, params, archivePath string, mb float64, out, traceOut string, opts ckptnet.Options, ms *metricsServer) error {
	m, err := ckptsched.ParseModel(modelName)
	if err != nil {
		return err
	}
	bytes := int64(mb * ckptnet.MB)

	var assigner ckptnet.Assigner
	switch {
	case params != "":
		vals, err := parseFloats(params)
		if err != nil {
			return err
		}
		if _, err := core.DistFromParams(m, vals); err != nil {
			return err
		}
		assigner = ckptnet.StaticAssigner(m, vals, bytes)
	case archivePath != "":
		set, err := trace.LoadCSV(archivePath)
		if err != nil {
			return err
		}
		var pooled []float64
		for _, name := range set.Machines() {
			pooled = append(pooled, set.Traces[name].Durations()...)
		}
		assigner = ckptnet.AssignerFunc(func(h ckptnet.Hello) (ckptnet.Assign, error) {
			data := pooled
			machine, _, _ := strings.Cut(h.JobID, "/")
			if tr, ok := set.Traces[machine]; ok && tr.Len() >= trace.DefaultTrainingSize {
				data = tr.Durations()
			}
			d, err := fit.Fit(m, data)
			if err != nil {
				return ckptnet.Assign{}, err
			}
			_, fitted, err := core.ParamsOf(d)
			if err != nil {
				return ckptnet.Assign{}, err
			}
			return ckptnet.Assign{Model: m, Params: fitted, CheckpointBytes: bytes, HeartbeatSec: 10}, nil
		})
	default:
		return fmt.Errorf("need -params or -archive")
	}

	mgr, err := ckptnet.NewManagerOpts(assigner, opts)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	bound, err := mgr.ListenContext(ctx, addr)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint manager listening on %s (model %v, %g MB images); Ctrl-C to stop\n", bound, m, mb)

	// The signal cancels ctx, which closes the manager; Close here both
	// handles the non-signal path and waits for sessions to drain.
	<-ctx.Done()
	if err := mgr.Close(); err != nil {
		return err
	}
	if ms != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := ms.Shutdown(sctx)
		cancel()
		if err != nil {
			return err
		}
	}
	if err := opts.Tracer.WriteFile(traceOut); err != nil {
		return err
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := ckptnet.WriteSessions(f, mgr.Sessions()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d session logs to %s (post-process with ckpt-report)\n", len(mgr.Sessions()), out)
	}

	fmt.Printf("\n%d sessions:\n", len(mgr.Sessions()))
	for _, s := range mgr.Sessions() {
		sum := s.Summarize()
		fmt.Printf("  %-24s model=%-10v recoveries=%d checkpoints=%d interrupted=%d heartbeats=%d bytes=%d retries=%d torn=%d fallbacks=%d\n",
			s.JobID, s.Model, sum.Recoveries, sum.Checkpoints, sum.Interrupted, sum.Heartbeats, sum.BytesMoved,
			sum.Retries, sum.TornFrames, sum.Fallbacks)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &out[i]); err != nil {
			return nil, fmt.Errorf("bad parameter %q: %w", p, err)
		}
	}
	return out, nil
}
