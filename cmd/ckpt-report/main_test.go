package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/fit"
)

func writeTestLog(t *testing.T) string {
	t.Helper()
	a := &ckptnet.SessionLog{
		JobID:           "m1/1",
		Model:           fit.ModelHyperexp2,
		Params:          []float64{0.5, 0.5, 0.01, 0.001},
		CheckpointBytes: 10 * ckptnet.MB,
	}
	a.Add(ckptnet.EvConnected, 0)
	a.Add(ckptnet.EvRecoveryDone, 0)
	a.Add(ckptnet.EvTopt, 500)
	a.Add(ckptnet.EvHeartbeat, 490)
	a.Add(ckptnet.EvCheckpointDone, 0)
	a.Add(ckptnet.EvDisconnected, 0)
	b := &ckptnet.SessionLog{JobID: "m2/2", Model: fit.ModelExponential, Params: []float64{0.001}}
	b.Add(ckptnet.EvConnected, 0)
	b.Add(ckptnet.EvRecoveryInterrupted, 1024)
	b.Add(ckptnet.EvDisconnected, 0)

	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckptnet.WriteSessions(f, []*ckptnet.SessionLog{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	path := writeTestLog(t)
	if err := run(path, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportErrors(t *testing.T) {
	if err := run("", false); err == nil {
		t.Error("missing -log should error")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.jsonl"), false); err == nil {
		t.Error("missing file should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, false); err == nil {
		t.Error("empty log should error")
	}
}
