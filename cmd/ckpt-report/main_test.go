package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

func writeTestLog(t *testing.T) string {
	t.Helper()
	a := &ckptnet.SessionLog{
		JobID:           "m1/1",
		Model:           fit.ModelHyperexp2,
		Params:          []float64{0.5, 0.5, 0.01, 0.001},
		CheckpointBytes: 10 * ckptnet.MB,
	}
	a.Add(ckptnet.EvConnected, 0)
	a.Add(ckptnet.EvRecoveryDone, 0)
	a.Add(ckptnet.EvTopt, 500)
	a.Add(ckptnet.EvHeartbeat, 490)
	a.Add(ckptnet.EvCheckpointDone, 0)
	a.Add(ckptnet.EvDisconnected, 0)
	b := &ckptnet.SessionLog{JobID: "m2/2", Model: fit.ModelExponential, Params: []float64{0.001}}
	b.Add(ckptnet.EvConnected, 0)
	b.Add(ckptnet.EvRecoveryInterrupted, 1024)
	b.Add(ckptnet.EvDisconnected, 0)

	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckptnet.WriteSessions(f, []*ckptnet.SessionLog{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	path := writeTestLog(t)
	if err := run(path, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportErrors(t *testing.T) {
	if err := run("", false); err == nil {
		t.Error("missing -log should error")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.jsonl"), false); err == nil {
		t.Error("missing file should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, false); err == nil {
		t.Error("empty log should error")
	}
}

// writeTestTrace records a two-lane trace through the real tracer and
// serializes it with the given extension (".json" or ".jsonl").
func writeTestTrace(t *testing.T, ext string) string {
	t.Helper()
	tr := obs.NewTracer(obs.TracerOptions{FullFidelity: true})
	tr.SpanAt(1, 1, "session", 0, 900,
		obs.AttrStr("job", "m1/1"), obs.AttrStr("model", "weibull"))
	tr.SpanAt(1, 1, "transfer.recovery", 0, 100,
		obs.AttrStr("outcome", "done"), obs.AttrFloat("mb", 500))
	tr.EventAt(1, 1, "topt", 100, obs.AttrFloat("t_opt", 350))
	tr.SpanAt(1, 1, "transfer.checkpoint", 450, 110,
		obs.AttrStr("outcome", "done"), obs.AttrFloat("mb", 500))
	tr.EventAt(1, 1, "torn_frame", 600, obs.AttrStr("cause", "crc"))
	tr.EventAt(1, 1, "retry", 610, obs.AttrInt("attempt", 2))
	tr.EventAt(1, 1, "heartbeat.gap", 700, obs.AttrFloat("gap_s", 45))
	tr.SpanAt(2, 1, "session", 0, 300, obs.AttrStr("job", "m2/2"))
	tr.EventAt(2, 1, "fallback", 120, obs.AttrStr("cause", "unreachable"))
	// Predictor lane (tid 2): a true alarm, a false alarm, and the
	// hit settled at eviction, plus the migration transfer it drove.
	tr.EventAt(2, 2, "predict.fired", 150, obs.AttrBool("true", true))
	tr.EventAt(2, 2, "predict.fired", 200, obs.AttrBool("true", false))
	tr.EventAt(2, 2, "predict.false", 200)
	tr.SpanAt(2, 1, "transfer.migrate", 210, 90,
		obs.AttrStr("outcome", "done"), obs.AttrFloat("mb", 500))
	tr.EventAt(2, 2, "predict.hit", 300)

	path := filepath.Join(t.TempDir(), "trace"+ext)
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunTimeline pins the acceptance contract: the timeline renders
// transfer, retry and heartbeat-gap events, one lane per pid, from
// both serialization formats.
func TestRunTimeline(t *testing.T) {
	for _, ext := range []string{".json", ".jsonl"} {
		path := writeTestTrace(t, ext)
		var buf bytes.Buffer
		if err := runTimeline(timelineOptions{tracePath: path, width: 40}, &buf); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		out := buf.String()
		for _, want := range []string{
			"lane 1:", "lane 2:",
			"transfer.recovery", "transfer.checkpoint",
			"retry attempt=2", "heartbeat.gap gap_s=45",
			"torn_frame cause=crc", "fallback cause=unreachable",
			"topt t_opt=350",
			"transfers=2", "retries=1", "hb-gaps=1",
			"predict.fired true=true", "predict.fired true=false",
			"transfer.migrate",
			"pred-fired=2", "pred-hits=1", "pred-false=1", "migrations=1",
			"!", // predictor alarms carry their own bar glyph
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%s timeline missing %q:\n%s", ext, want, out)
			}
		}
	}
}

// TestRunTimelineMarkdownAndFilter covers the -markdown table shape
// and the -pid lane filter.
func TestRunTimelineMarkdownAndFilter(t *testing.T) {
	path := writeTestTrace(t, ".json")
	var buf bytes.Buffer
	err := runTimeline(timelineOptions{tracePath: path, pid: 2, markdown: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Lane 2:") || strings.Contains(out, "Lane 1:") {
		t.Errorf("pid filter broken:\n%s", out)
	}
	if !strings.Contains(out, "| t (s) | dur (s) | event | detail |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if err := runTimeline(timelineOptions{tracePath: path, pid: 99}, &buf); err == nil {
		t.Error("unknown lane should error")
	}
}

func TestRunTimelineErrors(t *testing.T) {
	if err := runTimeline(timelineOptions{}, io.Discard); err == nil {
		t.Error("missing -trace should error")
	}
	missing := filepath.Join(t.TempDir(), "missing.json")
	if err := runTimeline(timelineOptions{tracePath: missing}, io.Discard); err == nil {
		t.Error("missing file should error")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTimeline(timelineOptions{tracePath: garbage}, io.Discard); err == nil {
		t.Error("garbage trace should error")
	}
}
