// Command ckpt-report post-processes checkpoint-manager session logs
// (JSON lines written by the manager) into the paper's per-model
// aggregates: overhead ratio, work time, and network volume — "the
// manager keeps a log file for each test process from which the
// overhead ratio can be calculated post facto" (§5.2).
//
// Usage:
//
//	ckpt-report -log sessions.jsonl [-persession]
//	ckpt-report timeline -trace out.json [-pid 3] [-width 60] [-markdown]
//	ckpt-report watch -url http://127.0.0.1:7420 [-interval 1s] [-width 60] [-once]
//
// The watch subcommand is a live terminal dashboard: it polls the
// server's /metrics/history endpoint (ckpt-served, or ckpt-mgr with
// -metrics) and renders request rate, p99 latency, bytes-on-wire,
// goroutines and SLO error-budget burn as sparklines, refreshed each
// poll. -once prints a single frame and exits (scripts, tests).
//
// The timeline subcommand replays an execution trace (Chrome-trace
// JSON or compact JSONL, as written by the -trace flag of ckpt-mgr,
// ckpt-sim, ckpt-parallel and ckpt-experiments) into per-lane
// timelines of transfers, retries, torn frames, heartbeat gaps,
// fallbacks and T_opt recomputations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/fit"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		fs := flag.NewFlagSet("timeline", flag.ExitOnError)
		var opts timelineOptions
		fs.StringVar(&opts.tracePath, "trace", "", "execution trace file (.json Chrome trace or .jsonl)")
		fs.Uint64Var(&opts.pid, "pid", 0, "render only this lane (0 = all)")
		fs.IntVar(&opts.width, "width", 60, "timeline bar width, columns")
		fs.BoolVar(&opts.markdown, "markdown", false, "emit markdown tables instead of ASCII bars")
		fs.Parse(os.Args[2:])
		if err := runTimeline(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-report timeline:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		var opts watchOptions
		fs.StringVar(&opts.url, "url", "", "base URL of a server exposing /metrics/history")
		fs.DurationVar(&opts.interval, "interval", time.Second, "poll cadence")
		fs.IntVar(&opts.width, "width", 60, "sparkline width, columns")
		fs.BoolVar(&opts.once, "once", false, "print one frame and exit")
		fs.Parse(os.Args[2:])
		if err := runWatch(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-report watch:", err)
			os.Exit(1)
		}
		return
	}

	path := flag.String("log", "", "JSON-lines session log")
	perSession := flag.Bool("persession", false, "print one row per session")
	flag.Parse()

	if err := run(*path, *perSession); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-report:", err)
		os.Exit(1)
	}
}

func run(path string, perSession bool) error {
	if path == "" {
		return fmt.Errorf("missing -log")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sessions, err := ckptnet.ReadSessions(f)
	if err != nil {
		return err
	}
	if len(sessions) == 0 {
		return fmt.Errorf("no sessions in %s", path)
	}

	if perSession {
		fmt.Printf("%-24s %-12s %10s %10s %10s %8s %6s %8s %8s %6s %6s\n",
			"job", "model", "wall s", "work s", "ratio", "ckpts", "delta", "wire MB", "retries", "torn", "fback")
		for _, s := range sessions {
			sum := s.Summarize()
			wall := s.WallSeconds()
			ratio := 0.0
			if wall > 0 {
				ratio = sum.LastHeartbeat / wall
			}
			fmt.Printf("%-24s %-12s %10.1f %10.1f %10.3f %8d %6d %8.1f %8d %6d %6d\n",
				s.JobID, s.Model, wall, sum.LastHeartbeat, ratio,
				sum.Checkpoints, sum.DeltaCheckpoints, float64(sum.BytesMoved)/ckptnet.MB,
				sum.Retries, sum.TornFrames, sum.Fallbacks)
		}
		fmt.Println()
	}

	type agg struct {
		wall, work               float64
		bytes                    int64
		ckpts, deltas, n         int
		retries, torn, fallbacks int
	}
	byModel := make(map[fit.Model]*agg)
	for _, s := range sessions {
		a, ok := byModel[s.Model]
		if !ok {
			a = &agg{}
			byModel[s.Model] = a
		}
		sum := s.Summarize()
		a.wall += s.WallSeconds()
		a.work += sum.LastHeartbeat
		a.bytes += sum.BytesMoved
		a.ckpts += sum.Checkpoints
		a.deltas += sum.DeltaCheckpoints
		a.retries += sum.Retries
		a.torn += sum.TornFrames
		a.fallbacks += sum.Fallbacks
		a.n++
	}
	fmt.Printf("%-12s %8s %12s %12s %10s %6s %10s %8s %6s %6s\n",
		"model", "sessions", "wall s", "work s", "ratio", "delta", "wire MB", "retries", "torn", "fback")
	for _, m := range fit.Models {
		a, ok := byModel[m]
		if !ok {
			continue
		}
		ratio := 0.0
		if a.wall > 0 {
			ratio = a.work / a.wall
		}
		fmt.Printf("%-12s %8d %12.1f %12.1f %10.3f %6d %10.1f %8d %6d %6d\n",
			m, a.n, a.wall, a.work, ratio, a.deltas, float64(a.bytes)/ckptnet.MB,
			a.retries, a.torn, a.fallbacks)
	}
	return nil
}
