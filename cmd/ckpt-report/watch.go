package main

// The watch subcommand is the live half of ckpt-report: where timeline
// replays a finished trace, watch polls a running server's
// /metrics/history endpoint (ckpt-served or ckpt-mgr -metrics) and
// renders the windowed series as a terminal dashboard — request rate,
// tail latency, bytes on the wire, runtime health, and error-budget
// burn, each as a sparkline with the newest window on the right. It
// reads only the public history JSON, so anything that serves the
// DESIGN.md §17 schema can be watched.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

type watchOptions struct {
	url      string
	interval time.Duration
	width    int
	once     bool
}

// watchPanel names one dashboard row: a label, where to find the
// series, and how to scale it for display.
type watchPanel struct {
	label string
	// candidates are metric names tried in order — the dashboard works
	// against both the scheduling service and the checkpoint manager,
	// which register different planes.
	candidates []string
	kind       watchKind
	scale      float64 // display = value * scale
	unit       string
}

type watchKind int

const (
	watchCounter watchKind = iota // rate series
	watchGauge
	watchHistP99
)

// watchPanels is the fixed dashboard layout. Panels whose metrics the
// server does not register are skipped, and whatever SLO burn gauges
// exist are appended dynamically.
var watchPanels = []watchPanel{
	{label: "req/s", candidates: []string{"serve_requests_total", "ckptnet_frames_total"}, kind: watchCounter, scale: 1, unit: ""},
	{label: "interval p99", candidates: []string{"serve_interval_latency_seconds"}, kind: watchHistP99, scale: 1e3, unit: "ms"},
	{label: "wire MB/s", candidates: []string{"ckptnet_bytes_moved_total"}, kind: watchCounter, scale: 1.0 / (1 << 20), unit: ""},
	{label: "goroutines", candidates: []string{"go_goroutines"}, kind: watchGauge, scale: 1, unit: ""},
	{label: "heap MB", candidates: []string{"go_heap_alloc_bytes"}, kind: watchGauge, scale: 1.0 / (1 << 20), unit: ""},
}

func runWatch(opts watchOptions, w io.Writer) error {
	if opts.url == "" {
		return fmt.Errorf("missing -url")
	}
	url := strings.TrimSuffix(opts.url, "/") + "/metrics/history"
	for {
		snap, err := fetchHistory(url)
		if err != nil {
			return err
		}
		frame := renderWatch(snap, opts.width, opts.url)
		if !opts.once {
			// Home the cursor and clear below rather than wiping the whole
			// screen — no flicker at 1 Hz.
			fmt.Fprint(w, "\x1b[H\x1b[2J")
		}
		io.WriteString(w, frame)
		if opts.once {
			return nil
		}
		time.Sleep(opts.interval)
	}
}

func fetchHistory(url string) (obs.HistorySnapshot, error) {
	var snap obs.HistorySnapshot
	resp, err := http.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode %s: %w", url, err)
	}
	return snap, nil
}

// renderWatch lays out one dashboard frame from a history snapshot.
func renderWatch(snap obs.HistorySnapshot, width int, source string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s · %d windows × %gs · total %d\n\n",
		source, snap.Windows, snap.WindowSeconds, snap.Total)
	if snap.Windows == 0 {
		b.WriteString("waiting for the first completed window...\n")
		return b.String()
	}
	for _, p := range watchPanels {
		series, ok := lookupSeries(snap, p)
		if !ok {
			continue
		}
		writePanel(&b, p.label, p.unit, series, p.scale, width)
	}
	// Every slo_*_burn_* gauge the server exports gets a row, sorted so
	// the layout is stable frame to frame.
	var burns []string
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "slo_") && strings.Contains(name, "_burn_") {
			burns = append(burns, name)
		}
	}
	sort.Strings(burns)
	for _, name := range burns {
		label := strings.ReplaceAll(strings.TrimPrefix(name, "slo_"), "_", " ")
		writePanel(&b, label, "", snap.Gauges[name], 1, width)
	}
	return b.String()
}

func lookupSeries(snap obs.HistorySnapshot, p watchPanel) ([]float64, bool) {
	for _, name := range p.candidates {
		switch p.kind {
		case watchCounter:
			if s, ok := snap.Counters[name]; ok {
				return s, true
			}
		case watchGauge:
			if s, ok := snap.Gauges[name]; ok {
				return s, true
			}
		case watchHistP99:
			if h, ok := snap.Histograms[name]; ok {
				return h.P99, true
			}
		}
	}
	return nil, false
}

// writePanel renders one row: label, sparkline, and the newest value.
func writePanel(b *strings.Builder, label, unit string, series []float64, scale float64, width int) {
	scaled := make([]float64, len(series))
	var lo, hi float64
	for i, v := range series {
		sv := v * scale
		scaled[i] = sv
		if i == 0 || sv < lo {
			lo = sv
		}
		if i == 0 || sv > hi {
			hi = sv
		}
	}
	cur := 0.0
	if len(scaled) > 0 {
		cur = scaled[len(scaled)-1]
	}
	fmt.Fprintf(b, "%-22s %s %10.3g%s  (min %.3g, max %.3g)\n",
		label, obs.Sparkline(scaled, width), cur, unit, lo, hi)
}
