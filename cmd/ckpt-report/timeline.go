package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

// timelineOptions parameterizes the timeline subcommand.
type timelineOptions struct {
	tracePath string
	pid       uint64 // 0 = all lanes
	width     int    // bar width in columns
	markdown  bool
}

// lane is one pid's worth of trace events: a session, a live sample, a
// grid replicate, or a schedule build — the tracer's unit of isolation.
type lane struct {
	pid    uint64
	events []obs.TraceEvent
	lo, hi float64
}

// runTimeline renders the per-lane timelines of a trace file
// (Chrome-trace JSON or compact JSONL; obs.ReadTrace sniffs which)
// onto w: a time-scaled bar per record in ASCII mode, a table in
// markdown mode, plus a per-lane event census.
func runTimeline(opts timelineOptions, w io.Writer) error {
	if opts.tracePath == "" {
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(opts.tracePath)
	if err != nil {
		return err
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	lanes := groupLanes(events, opts.pid)
	if len(lanes) == 0 {
		if opts.pid != 0 {
			return fmt.Errorf("no events on lane %d in %s", opts.pid, opts.tracePath)
		}
		return fmt.Errorf("no events in %s", opts.tracePath)
	}
	if opts.width < 16 {
		opts.width = 60
	}
	for _, ln := range lanes {
		if opts.markdown {
			renderLaneMarkdown(w, ln)
		} else {
			renderLaneASCII(w, ln, opts.width)
		}
	}
	return nil
}

// groupLanes buckets events by pid in canonical order. pid 0 keeps
// every lane.
func groupLanes(events []obs.TraceEvent, pid uint64) []lane {
	byPid := make(map[uint64]*lane)
	var order []uint64
	for _, ev := range events {
		if pid != 0 && ev.Pid != pid {
			continue
		}
		ln, ok := byPid[ev.Pid]
		if !ok {
			ln = &lane{pid: ev.Pid, lo: ev.Ts, hi: ev.Ts}
			byPid[ev.Pid] = ln
			order = append(order, ev.Pid)
		}
		ln.events = append(ln.events, ev)
		if ev.Ts < ln.lo {
			ln.lo = ev.Ts
		}
		if end := ev.Ts + ev.Dur; end > ln.hi {
			ln.hi = end
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	lanes := make([]lane, 0, len(order))
	for _, p := range order {
		ln := byPid[p]
		sort.SliceStable(ln.events, func(i, j int) bool {
			a, b := ln.events[i], ln.events[j]
			if a.Ts != b.Ts {
				return a.Ts < b.Ts
			}
			return a.Tid < b.Tid
		})
		lanes = append(lanes, *ln)
	}
	return lanes
}

// laneTitle is the lane's root record: its longest span, falling back
// to the first event.
func laneTitle(ln lane) string {
	best := ln.events[0]
	for _, ev := range ln.events {
		if ev.Phase == obs.PhaseSpan && ev.Dur > best.Dur {
			best = ev
		}
	}
	title := best.Name
	if d := attrsString(best.Attrs); d != "" {
		title += " " + d
	}
	return title
}

// census counts the record kinds the timeline is read for.
func census(ln lane) string {
	counts := map[string]int{}
	for _, ev := range ln.events {
		switch ev.Name {
		case "transfer.checkpoint", "transfer.recovery":
			counts["transfers"]++
		case "transfer.migrate":
			counts["transfers"]++
			counts["migrations"]++
		case "retry":
			counts["retries"]++
		case "torn_frame":
			counts["torn"]++
		case "heartbeat.gap":
			counts["hb-gaps"]++
		case "fallback":
			counts["fallbacks"]++
		case "topt", "markov.topt":
			counts["topt"]++
		case "chaos.drop", "chaos.partial", "chaos.corrupt", "chaos.reset", "chaos.stall":
			counts["chaos"]++
		case "evicted", "fail":
			counts["evictions"]++
		case "predict.fired":
			counts["pred-fired"]++
		case "predict.false":
			counts["pred-false"]++
		case "predict.hit":
			counts["pred-hits"]++
		case "predict.miss":
			counts["pred-missed"]++
		}
	}
	keys := []string{"transfers", "migrations", "topt", "retries", "torn", "hb-gaps", "fallbacks", "chaos",
		"pred-fired", "pred-hits", "pred-false", "pred-missed", "evictions"}
	var parts []string
	for _, k := range keys {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, " ")
}

func renderLaneASCII(w io.Writer, ln lane, width int) {
	fmt.Fprintf(w, "lane %d: %s  [%s, %s]\n", ln.pid, laneTitle(ln),
		fmtSeconds(ln.lo), fmtSeconds(ln.hi))
	span := ln.hi - ln.lo
	for _, ev := range ln.events {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		pos := func(t float64) int {
			if span <= 0 {
				return 0
			}
			p := int(float64(width) * (t - ln.lo) / span)
			if p >= width {
				p = width - 1
			}
			if p < 0 {
				p = 0
			}
			return p
		}
		detail := ev.Name
		if d := attrsString(ev.Attrs); d != "" {
			detail += " " + d
		}
		if ev.Phase == obs.PhaseSpan {
			s, e := pos(ev.Ts), pos(ev.Ts+ev.Dur)
			if e <= s {
				e = s + 1
			}
			for i := s; i < e && i < width; i++ {
				bar[i] = '='
			}
			fmt.Fprintf(w, "  %12s %8s |%s| %s\n",
				fmtSeconds(ev.Ts), fmtSeconds(ev.Dur), bar, detail)
		} else {
			// Predictor alarms get their own glyph so warnings stand out
			// from the work/transfer machinery at a glance.
			mark := byte('*')
			if strings.HasPrefix(ev.Name, "predict.") {
				mark = '!'
			}
			bar[pos(ev.Ts)] = mark
			fmt.Fprintf(w, "  %12s %8s |%s| %s\n", fmtSeconds(ev.Ts), "", bar, detail)
		}
	}
	if c := census(ln); c != "" {
		fmt.Fprintf(w, "  -- %s\n", c)
	}
	fmt.Fprintln(w)
}

func renderLaneMarkdown(w io.Writer, ln lane) {
	fmt.Fprintf(w, "### Lane %d: %s\n\n", ln.pid, laneTitle(ln))
	fmt.Fprintln(w, "| t (s) | dur (s) | event | detail |")
	fmt.Fprintln(w, "|---:|---:|---|---|")
	for _, ev := range ln.events {
		dur := ""
		if ev.Phase == obs.PhaseSpan {
			dur = fmtSeconds(ev.Dur)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			fmtSeconds(ev.Ts), dur, ev.Name, attrsString(ev.Attrs))
	}
	if c := census(ln); c != "" {
		fmt.Fprintf(w, "\n%s\n", c)
	}
	fmt.Fprintln(w)
}

// attrsString renders attributes as space-separated k=v pairs in
// emission order.
func attrsString(attrs []obs.Attr) string {
	parts := make([]string, 0, len(attrs))
	for _, a := range attrs {
		var v string
		switch x := a.Value().(type) {
		case string:
			v = x
		case bool:
			v = strconv.FormatBool(x)
		case float64:
			// Integer-valued attrs (bytes, attempts, seq) read better
			// undecorated than in %g scientific notation.
			if x == math.Trunc(x) && math.Abs(x) < 1e15 {
				v = strconv.FormatInt(int64(x), 10)
			} else {
				v = strconv.FormatFloat(x, 'g', -1, 64)
			}
		default:
			v = fmt.Sprint(x)
		}
		parts = append(parts, a.Key+"="+v)
	}
	return strings.Join(parts, " ")
}

// fmtSeconds renders a timestamp or duration compactly.
func fmtSeconds(s float64) string {
	return strconv.FormatFloat(s, 'f', 1, 64) + "s"
}
