package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func writeTraceFile(t *testing.T, censorSome bool) string {
	t.Helper()
	tr, err := trace.Generate(trace.GenerateOptions{
		Machine: "m1",
		N:       120,
		Avail:   dist.NewWeibull(0.5, 2000),
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if censorSome {
		for i := range tr.Records {
			if i%10 == 0 {
				tr.Records[i].Censored = true
			}
		}
	}
	set := trace.NewSet()
	for _, r := range tr.Records {
		set.Add(tr.Machine, r)
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	if err := trace.SaveCSV(path, set); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFit(t *testing.T) {
	path := writeTraceFile(t, false)
	if err := run(path, "m1", 0, false); err != nil {
		t.Fatal(err)
	}
	// Pooled + training prefix.
	if err := run(path, "", 25, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFitCensored(t *testing.T) {
	path := writeTraceFile(t, true)
	if err := run(path, "m1", 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunFitErrors(t *testing.T) {
	if err := run("", "", 0, false); err == nil {
		t.Error("missing -trace should error")
	}
	path := writeTraceFile(t, false)
	if err := run(path, "nope", 0, false); err == nil {
		t.Error("unknown machine should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, []byte("machine,start_unix,duration_s,censored\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, "", 0, false); err == nil {
		t.Error("empty trace should error")
	}
}
