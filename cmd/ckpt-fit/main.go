// Command ckpt-fit fits the four availability models to a machine's
// trace and reports parameters and goodness of fit.
//
// Usage:
//
//	ckpt-fit -trace traces.csv [-machine name] [-train 25] [-censored]
//
// With -machine it fits one machine's durations; otherwise it fits the
// pooled durations of every machine in the file. -train N restricts
// fitting to the first N observations (0 = all), mirroring the paper's
// training-prefix protocol. -censored switches to the censoring-aware
// estimators (and a Kaplan-Meier summary) for traces that carry
// right-censored records.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/stats"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

func main() {
	path := flag.String("trace", "", "trace CSV file (machine,start_unix,duration_s[,censored])")
	machine := flag.String("machine", "", "machine to fit (default: pool all machines)")
	train := flag.Int("train", 0, "fit only the first N observations (0 = all)")
	censored := flag.Bool("censored", false, "use censoring-aware estimators")
	flag.Parse()

	if err := run(*path, *machine, *train, *censored); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-fit:", err)
		os.Exit(1)
	}
}

func run(path, machine string, train int, censored bool) error {
	if path == "" {
		return fmt.Errorf("missing -trace")
	}
	set, err := trace.LoadCSV(path)
	if err != nil {
		return err
	}
	var data []float64
	var flags []bool
	if machine != "" {
		tr, ok := set.Traces[machine]
		if !ok {
			return fmt.Errorf("machine %q not in %s (have %v)", machine, path, set.Machines())
		}
		data, flags = tr.Observations()
	} else {
		for _, name := range set.Machines() {
			d, c := set.Traces[name].Observations()
			data = append(data, d...)
			flags = append(flags, c...)
		}
	}
	if train > 0 && train < len(data) {
		data, flags = data[:train], flags[:train]
	}
	if len(data) == 0 {
		return fmt.Errorf("no observations")
	}

	if censored {
		return runCensored(data, flags)
	}
	fits, err := fit.All(data)
	if err != nil {
		return err
	}
	fmt.Printf("fitting %d availability durations\n\n", len(data))
	fmt.Printf("%-12s %-50s %12s %12s %12s %8s\n", "model", "parameters", "logLik", "AIC", "BIC", "KS")
	for _, f := range fits {
		fmt.Printf("%-12s %-50v %12.1f %12.1f %12.1f %8.4f\n",
			f.Model, f.Dist, f.LogLik, f.AIC, f.BIC, f.KS)
	}
	best, err := fit.BestByAIC(fits)
	if err != nil {
		return err
	}
	fmt.Printf("\nbest by AIC: %v\n", best.Model)
	bestKS, err := fit.BestByKS(fits)
	if err != nil {
		return err
	}
	fmt.Printf("best by KS:  %v\n", bestKS.Model)
	return nil
}

func runCensored(data []float64, flags []bool) error {
	obs := make([]fit.Observation, len(data))
	nc := 0
	for i := range data {
		obs[i] = fit.Observation{Value: data[i], Censored: flags[i]}
		if flags[i] {
			nc++
		}
	}
	fmt.Printf("fitting %d observations (%d right-censored) with censoring-aware estimators\n\n",
		len(data), nc)
	fmt.Printf("%-12s %-50s %14s\n", "model", "parameters", "censored logLik")
	for _, m := range fit.Models {
		d, err := fit.FitCensored(m, obs)
		if err != nil {
			return fmt.Errorf("%v: %w", m, err)
		}
		fmt.Printf("%-12s %-50v %14.1f\n", m, d, fit.CensoredLogLikelihood(d, obs))
	}
	km, err := stats.NewKaplanMeier(data, flags)
	if err != nil {
		return err
	}
	fmt.Printf("\nKaplan-Meier: median lifetime %.0f s, S(1h) = %.3f, S(8h) = %.3f\n",
		km.Median(), km.Survival(3600), km.Survival(8*3600))
	return nil
}
