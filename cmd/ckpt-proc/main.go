// Command ckpt-proc runs one instrumented test process against a
// checkpoint manager (§5.2): it times the initial recovery transfer,
// computes T_opt from the measured cost and the manager-assigned
// model, spins while heart-beating, checkpoints, and repeats.
//
// Usage:
//
//	ckpt-proc -addr 127.0.0.1:7419 -job desktop0001/1 [-telapsed 0] \
//	    [-scale 1] [-intervals 0] [-lifetime 0] \
//	    [-retries 1] [-backoff 200ms] [-frame-timeout 0] \
//	    [-delta] [-delta-dirty-rate 0.002] [-delta-chunk-kb 64] [-delta-compress]
//
// -scale compresses virtual time (0.001 → a 10 s heartbeat every
// 10 ms). -intervals stops voluntarily after N checkpoints; -lifetime
// kills the process after that many wall seconds, emulating an
// eviction. -retries enables session-level recovery from transport
// failures: the process reconnects with exponential backoff and
// resumes from the manager's last good checkpoint image. -delta
// switches to content-addressed checkpoints (DESIGN.md §16): the
// first checkpoint ships the full image, later ones only the chunks
// dirtied since the last commit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7419", "manager address")
	job := flag.String("job", "proc/1", "job identifier (machine/n)")
	telapsed := flag.Float64("telapsed", 0, "resource age at start, seconds")
	scale := flag.Float64("scale", 1, "wall seconds per virtual second")
	intervals := flag.Int("intervals", 0, "stop after N committed checkpoints (0 = run until killed)")
	lifetime := flag.Float64("lifetime", 0, "kill the process after this many wall seconds (0 = never)")
	retries := flag.Int("retries", 1, "total session attempts on transport failure (1 = fail fast)")
	backoff := flag.Duration("backoff", 200*time.Millisecond, "base delay before the first session retry")
	frameTO := flag.Duration("frame-timeout", 0, "per-frame read deadline (0 = derive from the heartbeat cadence)")
	delta := flag.Bool("delta", false, "content-addressed checkpoints: full image first, dirty-chunk deltas afterwards")
	dirtyRate := flag.Float64("delta-dirty-rate", 0.002, "delta: per-chunk dirtying rate, 1/virtual-second")
	chunkKB := flag.Int("delta-chunk-kb", 64, "delta: dedup chunk size, KiB")
	compress := flag.Bool("delta-compress", false, "delta: DEFLATE payloads when that shrinks them")
	flag.Parse()

	ctx := context.Background()
	if *lifetime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(*lifetime*float64(time.Second)))
		defer cancel()
	}
	cfg := ckptnet.ProcessConfig{
		Addr:         *addr,
		JobID:        *job,
		TElapsed:     *telapsed,
		TimeScale:    *scale,
		MaxIntervals: *intervals,
		FrameTimeout: *frameTO,
	}
	if *retries > 1 {
		cfg.Retry = ckptnet.RetryPolicy{MaxAttempts: *retries, BackoffBase: *backoff}
	}
	if *delta {
		cfg.Delta = &ckptnet.DeltaConfig{
			ChunkSize: *chunkKB << 10,
			DirtyRate: *dirtyRate,
			Compress:  *compress,
		}
	}
	rep, err := ckptnet.RunProcess(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-proc:", err)
		os.Exit(1)
	}
	fmt.Printf("assigned model:   %v %v\n", rep.Assign.Model, rep.Assign.Params)
	fmt.Printf("recovery:         %.2f virtual s\n", rep.RecoverySec)
	for i, t := range rep.Topts {
		fmt.Printf("interval %-3d      T_opt=%.1f s", i, t)
		if i < len(rep.CheckpointSecs) {
			fmt.Printf("  checkpoint=%.2f s", rep.CheckpointSecs[i])
		}
		fmt.Println()
	}
	fmt.Printf("work performed:   %.1f virtual s over %d heartbeats\n", rep.WorkSec, rep.Heartbeats)
	if *delta {
		fmt.Printf("delta transfers:  %d of %d checkpoints as deltas, %.1f MB on the wire\n",
			rep.DeltaCheckpoints, len(rep.CheckpointSecs), float64(rep.WireBytes)/ckptnet.MB)
	}
	if rep.Retries+rep.CkptRetries+rep.TornFrames+rep.Fallbacks > 0 {
		fmt.Printf("resilience:       %d session retries, %d checkpoint retransmits, %d torn frames, %d fallback intervals\n",
			rep.Retries, rep.CkptRetries, rep.TornFrames, rep.Fallbacks)
	}
	if rep.Evicted {
		fmt.Println("ended by:         eviction")
	} else {
		fmt.Println("ended by:         voluntary completion")
	}
}
