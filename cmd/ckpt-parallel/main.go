// Command ckpt-parallel simulates a parallel job whose processes share
// one network path to the checkpoint manager — the paper's §5.2
// future-work scenario of colliding checkpoints — comparing
// availability models and coordination policies.
//
// Cells of the (model × stagger) grid run concurrently on a bounded
// worker pool, and -seeds replicates each cell on independent
// splitmix64-derived RNG streams so the efficiency column carries a
// 95% confidence half-width instead of a single-seed point estimate.
// Output is byte-identical for a fixed flag set regardless of
// -maxprocs or GOMAXPROCS.
//
// -policies adds a fault-prediction axis: a comma-separated subset of
// reactive, proactive and migrate, every non-reactive entry driven by
// the -predict-* predictor quality. The policy column appears whenever
// the axis is explicit.
//
// Usage:
//
//	ckpt-parallel [-workers 16] [-shards 0] [-link 5] [-mb 500] [-hours 72] \
//	    [-shape 0.43] [-scale 3409] [-seed 42] [-seeds 1] [-maxprocs N] \
//	    [-policies reactive,proactive,migrate] \
//	    [-predict-precision 0.85] [-predict-recall 0.8] [-predict-lead 240] \
//	    [-trace out.json]
//
// -trace writes a Chrome-trace (Perfetto-loadable) timeline of every
// cell's transfers, failures and per-run summary, one lane per
// (model, stagger, replicate) task; a .jsonl suffix selects the
// compact line format that ckpt-report timeline replays. The trace,
// like the table, is byte-identical at any pool width.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/cycleharvest/ckptsched/internal/cliflag"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/parallel"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

func main() {
	workers := flag.Int("workers", 16, "processes (one per machine)")
	shards := flag.Int("shards", 0, "event-calendar sub-engines (0 = auto from worker count; results are identical for any value)")
	link := flag.Float64("link", 5, "shared link capacity, MB/s")
	mb := flag.Float64("mb", 500, "checkpoint image size, MB")
	hours := flag.Float64("hours", 72, "simulated horizon, hours")
	shape := flag.Float64("shape", 0.43, "machine availability Weibull shape")
	scale := flag.Float64("scale", 3409, "machine availability Weibull scale, s")
	seed := flag.Int64("seed", 42, "base simulation seed")
	seeds := flag.Int("seeds", 1, "independent replicates per cell (95% CI when > 1)")
	maxprocs := flag.Int("maxprocs", runtime.GOMAXPROCS(0), "concurrent simulation cells")
	policiesFlag := flag.String("policies", "", "comma-separated prediction-policy axis (reactive, proactive, migrate); empty runs the reactive baseline only")
	predPrecision := flag.Float64("predict-precision", 0.85, "fault predictor precision for non-reactive policies")
	predRecall := flag.Float64("predict-recall", 0.8, "fault predictor recall for non-reactive policies")
	predLead := flag.Float64("predict-lead", 240, "fault predictor lead time, seconds")
	tracePath := flag.String("trace", "", "write an execution timeline to this file (.json Chrome trace, .jsonl compact)")
	statsDump := flag.Bool("stats", false, "print the final metrics-registry snapshot as JSON on stderr")
	flag.Parse()

	pcfg := predict.Config{Precision: *predPrecision, Recall: *predRecall, LeadSec: *predLead}
	var check cliflag.Checker
	check.PositiveInt("-workers", *workers)
	check.NonNegativeInt("-shards", *shards)
	check.Positive("-link", *link)
	check.Positive("-mb", *mb)
	check.Positive("-hours", *hours)
	check.Positive("-shape", *shape)
	check.Positive("-scale", *scale)
	check.PositiveInt("-seeds", *seeds)
	check.Check("-predict-precision/-predict-recall/-predict-lead", pcfg.Validate())
	policies, perr := parsePolicies(*policiesFlag, pcfg)
	check.Check("-policies", perr)
	if err := check.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-parallel: invalid flags:")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *statsDump {
		reg = obs.NewRegistry()
		parallel.Instrument(reg)
		markov.Instrument(reg)
		predict.Instrument(reg)
	}
	err := run(*workers, *shards, *link, *mb, *hours, *shape, *scale, *seed, *seeds, *maxprocs, policies, *tracePath)
	if *statsDump {
		if serr := json.NewEncoder(os.Stderr).Encode(reg.Snapshot()); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-parallel:", err)
		os.Exit(1)
	}
}

// parsePolicies turns the -policies list into a grid axis; every
// non-reactive entry is driven by the shared -predict-* quality. An
// empty flag returns nil, keeping the implicit reactive baseline (and
// the no-axis table layout).
func parsePolicies(list string, pcfg predict.Config) ([]parallel.GridPolicy, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var out []parallel.GridPolicy
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		pol, err := predict.ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		gp := parallel.GridPolicy{Name: name, Policy: pol}
		if pol != predict.PolicyReactive {
			gp.Predict = pcfg
		}
		out = append(out, gp)
	}
	return out, nil
}

func run(workers, shards int, link, mb, hours, shape, scale float64, seed int64, seeds, maxprocs int, policies []parallel.GridPolicy, tracePath string) error {
	avail := dist.NewWeibull(shape, scale)
	expFit := dist.NewExponential(1 / avail.Mean())
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer(obs.TracerOptions{FullFidelity: true})
		markov.Trace(tracer)
		defer markov.Trace(nil)
	}
	grid, err := parallel.RunGrid(parallel.GridConfig{
		Base: parallel.Config{
			Workers:      workers,
			Shards:       shards,
			Avail:        avail,
			LinkMBps:     link,
			CheckpointMB: mb,
			Duration:     hours * 3600,
			Trace:        tracer,
		},
		Models: []parallel.GridModel{
			{Name: "exponential", Dist: expFit},
			{Name: "weibull", Dist: avail},
		},
		Staggers: []parallel.StaggerPolicy{
			parallel.StaggerNone, parallel.StaggerToken, parallel.StaggerJitter,
		},
		Policies: policies,
		Seeds:    seeds,
		Seed:     seed,
		MaxProcs: maxprocs,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%d processes, %g MB images, shared %g MB/s link (solo transfer %.0f s), %g h horizon",
		workers, mb, link, mb/link, hours)
	if seeds > 1 {
		fmt.Printf(", %d seeds (±95%% CI)", seeds)
	}
	fmt.Printf("\n\n")
	effWidth := 10
	if seeds > 1 {
		effWidth = 16
	}
	// The policy column only appears when the axis is explicit, so the
	// default table stays byte-identical to the pre-axis layout.
	withPolicy := len(policies) > 0
	if withPolicy {
		fmt.Printf("%-12s %-10s %-8s %*s %10s %12s %9s %12s %12s %6s %8s\n",
			"model", "policy", "stagger", effWidth, "efficiency", "commits", "network MB", "stretch", "collisions", "queue-wait s", "migr", "migr MB")
	} else {
		fmt.Printf("%-12s %-8s %*s %10s %12s %9s %12s %12s\n",
			"model", "stagger", effWidth, "efficiency", "commits", "network MB", "stretch", "collisions", "queue-wait s")
	}
	for i := range grid.Cells {
		c := &grid.Cells[i]
		eff := c.Efficiency()
		effCol := fmt.Sprintf("%.3f", eff.Mean)
		if seeds > 1 {
			effCol = fmt.Sprintf("%.3f±%.3f", eff.Mean, eff.HalfWidth)
		}
		mean := func(f func(parallel.Result) float64) float64 { return c.Metric(f).Mean }
		if withPolicy {
			fmt.Printf("%-12s %-10s %-8s %*s %10.0f %12.0f %8.2fx %12.0f %12.0f %6.0f %8.0f\n",
				c.Model, c.Policy, c.Stagger, effWidth, effCol,
				mean(func(r parallel.Result) float64 { return float64(r.Commits) }),
				mean(func(r parallel.Result) float64 { return r.MBMoved }),
				mean(parallel.Result.CollisionStretch),
				mean(func(r parallel.Result) float64 { return float64(r.Collisions) }),
				mean(func(r parallel.Result) float64 { return r.QueueWaitSec }),
				mean(func(r parallel.Result) float64 { return float64(r.Migrations) }),
				mean(func(r parallel.Result) float64 { return r.MigrationMB }),
			)
		} else {
			fmt.Printf("%-12s %-8s %*s %10.0f %12.0f %8.2fx %12.0f %12.0f\n",
				c.Model, c.Stagger, effWidth, effCol,
				mean(func(r parallel.Result) float64 { return float64(r.Commits) }),
				mean(func(r parallel.Result) float64 { return r.MBMoved }),
				mean(parallel.Result.CollisionStretch),
				mean(func(r parallel.Result) float64 { return float64(r.Collisions) }),
				mean(func(r parallel.Result) float64 { return r.QueueWaitSec }),
			)
		}
	}
	if fb := sumFallbacks(grid); fb > 0 {
		fmt.Printf("\nschedule fallbacks: %d intervals served beyond the planned schedule\n", fb)
	}
	return tracer.WriteFile(tracePath)
}

func sumFallbacks(g *parallel.Grid) int {
	n := 0
	for _, c := range g.Cells {
		for _, r := range c.Results {
			n += r.ScheduleFallbacks
		}
	}
	return n
}
