// Command ckpt-parallel simulates a parallel job whose processes share
// one network path to the checkpoint manager — the paper's §5.2
// future-work scenario of colliding checkpoints — comparing
// availability models and coordination policies.
//
// Usage:
//
//	ckpt-parallel [-workers 16] [-link 5] [-mb 500] [-hours 72] \
//	    [-shape 0.43] [-scale 3409] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/parallel"
)

func main() {
	workers := flag.Int("workers", 16, "processes (one per machine)")
	link := flag.Float64("link", 5, "shared link capacity, MB/s")
	mb := flag.Float64("mb", 500, "checkpoint image size, MB")
	hours := flag.Float64("hours", 72, "simulated horizon, hours")
	shape := flag.Float64("shape", 0.43, "machine availability Weibull shape")
	scale := flag.Float64("scale", 3409, "machine availability Weibull scale, s")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	if err := run(*workers, *link, *mb, *hours, *shape, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-parallel:", err)
		os.Exit(1)
	}
}

func run(workers int, link, mb, hours, shape, scale float64, seed int64) error {
	avail := dist.NewWeibull(shape, scale)
	expFit := dist.NewExponential(1 / avail.Mean())
	base := parallel.Config{
		Workers:      workers,
		Avail:        avail,
		LinkMBps:     link,
		CheckpointMB: mb,
		Duration:     hours * 3600,
		Seed:         seed,
	}
	fmt.Printf("%d processes, %g MB images, shared %g MB/s link (solo transfer %.0f s), %g h horizon\n\n",
		workers, mb, link, mb/link, hours)
	fmt.Printf("%-12s %-8s %10s %10s %12s %9s %12s %12s\n",
		"model", "stagger", "efficiency", "commits", "network MB", "stretch", "collisions", "queue-wait s")
	for _, sc := range []struct {
		name string
		d    dist.Distribution
	}{
		{"exponential", expFit},
		{"weibull", avail},
	} {
		for _, pol := range []parallel.StaggerPolicy{
			parallel.StaggerNone, parallel.StaggerToken, parallel.StaggerJitter,
		} {
			cfg := base
			cfg.ScheduleDist = sc.d
			cfg.Stagger = pol
			res, err := parallel.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-8s %10.3f %10d %12.0f %8.2fx %12d %12.0f\n",
				sc.name, pol, res.Efficiency, res.Commits, res.MBMoved,
				res.CollisionStretch(), res.Collisions, res.QueueWaitSec)
		}
	}
	return nil
}
