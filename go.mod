module github.com/cycleharvest/ckptsched

go 1.22
