// Package ckptsched computes efficient checkpoint schedules for
// opportunistic jobs running in cycle-harvesting cluster environments
// such as Condor, reproducing the system of Nurmi, Brevik and Wolski,
// "Minimizing the Network Overhead of Checkpointing in
// Cycle-harvesting Cluster Environments" (IEEE CLUSTER 2005).
//
// The library fits a statistical model — exponential, Weibull, or
// 2-/3-phase hyperexponential — to a resource's historical
// availability durations, parameterizes a three-state Markov model of
// the recovery/compute/checkpoint cycle in which failures may strike
// during checkpoints and recoveries, and numerically minimizes the
// expected overhead ratio Γ(T)/T to produce an optimal (and, for
// non-memoryless models, aperiodic) checkpoint schedule.
//
// # Quick start
//
//	history := []float64{ /* availability durations, seconds */ }
//	s, err := ckptsched.Fit(ckptsched.ModelHyperexp2, history)
//	if err != nil { ... }
//	costs, _ := ckptsched.NewCosts(110, -1, -1) // C=110s, R=L default to C
//	T, err := s.Topt(telapsed, costs)           // next work interval
//
// The deeper machinery — distributions, fitting, the Markov model,
// trace-driven simulation, the simulated Condor pool, and the
// checkpoint-manager network protocol — lives in the internal/
// packages and is exercised by the cmd/ tools and examples/.
package ckptsched

import (
	"github.com/cycleharvest/ckptsched/internal/core"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
)

// Model identifies one of the four availability-model families the
// paper compares.
type Model = fit.Model

// The four model families.
const (
	ModelExponential = fit.ModelExponential
	ModelWeibull     = fit.ModelWeibull
	ModelHyperexp2   = fit.ModelHyperexp2
	ModelHyperexp3   = fit.ModelHyperexp3
)

// Models lists all four families in the paper's column order.
var Models = fit.Models

// ParseModel converts a model name ("exponential", "weibull",
// "hyperexp2", "hyperexp3", plus short aliases) to a Model.
func ParseModel(s string) (Model, error) { return fit.ParseModel(s) }

// Distribution is a continuous nonnegative lifetime distribution; see
// the internal/dist package for the concrete families.
type Distribution = dist.Distribution

// Costs holds the checkpoint (C), recovery (R) and checkpoint-latency
// (L) overheads of one interval, in seconds.
type Costs = markov.Costs

// NewCosts builds Costs; r < 0 defaults the recovery cost to c (the
// paper's convention) and l < 0 defaults the latency to c (sequential
// checkpointing).
func NewCosts(c, r, l float64) (Costs, error) { return markov.NewCosts(c, r, l) }

// Scheduler computes checkpoint intervals and schedules for one
// resource.
type Scheduler = core.Scheduler

// Schedule is an aperiodic sequence of optimal work intervals.
type Schedule = markov.Schedule

// ScheduleOptions tunes Scheduler.Schedule.
type ScheduleOptions = markov.ScheduleOptions

// Fit estimates the given model family from a resource's availability
// history (durations in seconds) and returns a Scheduler for it.
func Fit(m Model, history []float64) (*Scheduler, error) {
	return core.FitScheduler(m, history)
}

// New wraps an explicit availability distribution in a Scheduler.
func New(d Distribution) (*Scheduler, error) { return core.NewScheduler(d) }

// Topt is the paper's §3.5 portable routine: it evaluates and
// optimizes Γ/T for the chosen model family and flat parameter vector
// at resource age telapsed with checkpoint cost c and recovery cost r,
// returning the optimal work interval and its expected efficiency.
//
// Parameter layout: exponential [λ]; weibull [shape, scale];
// hyperexpK [p₁…p_K, λ₁…λ_K].
func Topt(m Model, params []float64, telapsed, c, r float64) (topt, efficiency float64, err error) {
	return core.Routine(m, params, telapsed, c, r)
}

// Exponential returns the exponential distribution with rate lambda.
func Exponential(lambda float64) Distribution { return dist.NewExponential(lambda) }

// Weibull returns the Weibull distribution with the given shape and
// scale.
func Weibull(shape, scale float64) Distribution { return dist.NewWeibull(shape, scale) }

// Hyperexponential returns the k-phase hyperexponential with mixing
// weights p (normalized internally) and rates lambda.
func Hyperexponential(p, lambda []float64) Distribution {
	return dist.NewHyperexponential(p, lambda)
}
