package main

import (
	"strings"
	"testing"
)

func parse(t *testing.T, text string) map[string]Entry {
	t.Helper()
	out, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseCollapsesToMin(t *testing.T) {
	out := parse(t, `
BenchmarkX-4	100	2000 ns/op	12 B/op	3 allocs/op
BenchmarkX-4	100	1500 ns/op	12 B/op	2 allocs/op
BenchmarkX-4	100	1800 ns/op	12 B/op	5 allocs/op
BenchmarkY-4	100	900 ns/op	0.5 efficiency
`)
	x := out["BenchmarkX"]
	if x.NsPerOp != 1500 || x.Runs != 3 {
		t.Fatalf("X = %+v, want min 1500 over 3 runs", x)
	}
	if x.AllocsPerOp == nil || *x.AllocsPerOp != 2 {
		t.Fatalf("X allocs = %v, want min 2", x.AllocsPerOp)
	}
	y := out["BenchmarkY"]
	if y.AllocsPerOp != nil {
		t.Fatal("Y has no ReportAllocs: allocs_per_op must stay absent")
	}
	if y.Metrics["efficiency"] != 0.5 {
		t.Fatalf("Y metrics = %v, want efficiency 0.5", y.Metrics)
	}
}

func allocs(v float64) *float64 { return &v }

func gateOnce(t *testing.T, base Baseline, text string, maxReg float64) (failed bool, table string) {
	t.Helper()
	var sb strings.Builder
	failed = gateRun(&sb, base, parse(t, text), nil, maxReg)
	return failed, sb.String()
}

func TestGateAllocRegression(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkX": {NsPerOp: 1000, AllocsPerOp: allocs(10)},
	}}
	// Within the percentage: passes even though allocs moved.
	if failed, out := gateOnce(t, base, "BenchmarkX-4\t100\t1000 ns/op\t11 allocs/op\n", 20); failed {
		t.Fatalf("11 vs 10 allocs at 20%% failed:\n%s", out)
	}
	// Beyond it: fails on allocations alone, ns/op flat.
	failed, out := gateOnce(t, base, "BenchmarkX-4\t100\t1000 ns/op\t13 allocs/op\n", 20)
	if !failed || !strings.Contains(out, "ALLOC REGRESSION") {
		t.Fatalf("13 vs 10 allocs at 20%% passed:\n%s", out)
	}
}

func TestGateZeroAllocBaselineIsContract(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkHot": {NsPerOp: 50, AllocsPerOp: allocs(0)},
	}}
	failed, out := gateOnce(t, base, "BenchmarkHot-4\t100\t50 ns/op\t1 allocs/op\n", 20)
	if !failed || !strings.Contains(out, "ALLOC REGRESSION") {
		t.Fatalf("alloc on a zero-alloc baseline passed:\n%s", out)
	}
	if failed, out := gateOnce(t, base, "BenchmarkHot-4\t100\t50 ns/op\t0 allocs/op\n", 20); failed {
		t.Fatalf("zero allocs on zero baseline failed:\n%s", out)
	}
}

func TestGateAllocsAbsentFromBaseline(t *testing.T) {
	// A baseline recorded before a benchmark grew ReportAllocs must not
	// gate the new counter (nothing to compare against).
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkX": {NsPerOp: 1000},
	}}
	if failed, out := gateOnce(t, base, "BenchmarkX-4\t100\t1000 ns/op\t99 allocs/op\n", 20); failed {
		t.Fatalf("allocs without a baseline gated:\n%s", out)
	}
}

func TestGateNsRegressionStillFails(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkX": {NsPerOp: 1000, AllocsPerOp: allocs(10)},
	}}
	failed, out := gateOnce(t, base, "BenchmarkX-4\t100\t1300 ns/op\t10 allocs/op\n", 20)
	if !failed || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("30%% ns/op regression passed:\n%s", out)
	}
}
