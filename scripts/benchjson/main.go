// Command benchjson converts `go test -bench` text output into a JSON
// baseline and gates later runs against one, with no dependency beyond
// the standard library.
//
// Record a baseline (bench text on stdin):
//
//	go test -run='^$' -bench='...' -count=5 . | go run ./scripts/benchjson -record BENCH_seed.json
//
// Gate a run against it, failing on regressions:
//
//	go test -run='^$' -bench='...' -count=5 . | \
//	    go run ./scripts/benchjson -gate BENCH_seed.json -max-regression 20 \
//	    -only 'BenchmarkGammaEval,BenchmarkTopt,BenchmarkBuildSchedule'
//
// Each benchmark's repetitions collapse to the minimum ns/op — the
// least-noise estimate of the code's true cost on the host — so a
// -count of 5 or more is recommended for both the baseline and the
// gated run. Benchmarks that b.ReportAllocs() also record allocs/op
// (again the minimum over repetitions), gated by the same percentage —
// except a zero-alloc baseline, where any allocation at all fails:
// hot paths that were allocation-free must stay allocation-free, and a
// percentage of zero grants no slack. Custom b.ReportMetric values
// (figures of merit like eff@C100) are carried into the JSON for
// reference but never gated: they are workload metrics, not
// performance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's collapsed measurement.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the minimum allocs/op, present only for
	// benchmarks that b.ReportAllocs().
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Runs is how many repetitions the minimum was taken over.
	Runs int `json:"runs"`
	// Metrics holds custom figures of merit (unit -> value, last run).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the JSON document: benchmark name (sub-benchmark path
// included, -GOMAXPROCS suffix stripped) to entry.
type Baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	record := flag.String("record", "", "write a JSON baseline to this file from bench text on stdin")
	gate := flag.String("gate", "", "compare bench text on stdin against this JSON baseline")
	maxReg := flag.Float64("max-regression", 20, "fail the gate when ns/op regresses more than this percentage")
	only := flag.String("only", "", "comma-separated benchmark name prefixes to gate (default: every baseline entry present in the input)")
	note := flag.String("note", "", "free-form note stored in a recorded baseline")
	flag.Parse()

	if (*record == "") == (*gate == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -record or -gate is required")
		os.Exit(2)
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *record != "" {
		doc := Baseline{Note: *note, Benchmarks: current}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*record, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(current), *record)
		return
	}

	data, err := os.ReadFile(*gate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *gate, err)
		os.Exit(1)
	}
	var prefixes []string
	if *only != "" {
		for _, p := range strings.Split(*only, ",") {
			if p = strings.TrimSpace(p); p != "" {
				prefixes = append(prefixes, p)
			}
		}
	}
	if gateRun(os.Stdout, base, current, prefixes, *maxReg) {
		os.Exit(1)
	}
}

// gateRun prints the comparison table and reports whether any gated
// benchmark regressed beyond maxReg percent.
func gateRun(w io.Writer, base Baseline, current map[string]Entry, prefixes []string, maxReg float64) (failed bool) {
	selected := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if name == p || strings.HasPrefix(name, p+"/") {
				return true
			}
		}
		return false
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if selected(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-50s %14s %14s %8s %12s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	compared := 0
	for _, name := range names {
		old := base.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(w, "%-50s %14.0f %14s %8s\n", name, old.NsPerOp, "missing", "-")
			continue
		}
		compared++
		delta := 100 * (cur.NsPerOp - old.NsPerOp) / old.NsPerOp
		verdict := ""
		if delta > maxReg {
			verdict = "  REGRESSION"
			failed = true
		}
		oldAllocs, newAllocs := "-", "-"
		if old.AllocsPerOp != nil {
			oldAllocs = fmt.Sprintf("%.0f", *old.AllocsPerOp)
			if cur.AllocsPerOp != nil {
				newAllocs = fmt.Sprintf("%.0f", *cur.AllocsPerOp)
				switch a, b := *old.AllocsPerOp, *cur.AllocsPerOp; {
				case a == 0 && b > 0:
					// A zero-alloc baseline is a contract, not a number a
					// percentage can grow: any allocation fails.
					verdict = "  ALLOC REGRESSION"
					failed = true
				case a > 0 && 100*(b-a)/a > maxReg:
					verdict = "  ALLOC REGRESSION"
					failed = true
				}
			}
		}
		fmt.Fprintf(w, "%-50s %14.0f %14.0f %+7.1f%% %12s %12s%s\n", name, old.NsPerOp, cur.NsPerOp, delta, oldAllocs, newAllocs, verdict)
	}
	if compared == 0 {
		fmt.Fprintln(w, "benchjson: nothing to compare — selected baseline entries absent from input")
		return true
	}
	if failed {
		fmt.Fprintf(w, "FAIL: at least one benchmark regressed more than %g%%\n", maxReg)
	} else {
		fmt.Fprintf(w, "ok: %d benchmarks within %g%% of baseline\n", compared, maxReg)
	}
	return failed
}

// parseBench reads `go test -bench` text and collapses repetitions of
// each benchmark to the minimum ns/op.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name-GOMAXPROCS, iterations, then (value, unit) pairs.
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a benchmark result line
		}
		var ns, allocs float64
		nsSeen, allocsSeen := false, false
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				ns, nsSeen = v, true
			case "allocs/op":
				allocs, allocsSeen = v, true
			case "B/op", "MB/s":
				// standard units we don't gate
			default:
				metrics[unit] = v
			}
		}
		if !nsSeen {
			continue
		}
		e, seen := out[name]
		if !seen || ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		if allocsSeen && (e.AllocsPerOp == nil || allocs < *e.AllocsPerOp) {
			a := allocs
			e.AllocsPerOp = &a
		}
		e.Runs++
		if len(metrics) > 0 {
			e.Metrics = metrics
		}
		out[name] = e
	}
	return out, sc.Err()
}
