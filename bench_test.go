// Benchmarks regenerating every table and figure of the paper (one
// bench per artifact, on reduced workloads so the suite stays fast),
// plus ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the hot paths.
//
// Quality ablations report their figure of merit (efficiency, MB) via
// b.ReportMetric alongside the usual ns/op.
package ckptsched_test

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/experiments"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/live"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/mathx"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/parallel"
	"github.com/cycleharvest/ckptsched/internal/sim"
)

// benchWorkload lazily builds one reduced workload shared by the table
// benches (12 machines, 6 virtual months).
var (
	benchOnce sync.Once
	benchW    *experiments.Workload
	benchErr  error
)

func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchOnce.Do(func() {
		benchW, benchErr = experiments.NewWorkload(experiments.WorkloadConfig{
			Machines: 12,
			Months:   6,
			Seed:     2005,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchW
}

var benchCTimes = []float64{100, 500}

// BenchmarkFigure3Efficiency regenerates Figure 3's mean-efficiency
// curves (reduced C axis).
func BenchmarkFigure3Efficiency(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for b.Loop() {
		s, err := experiments.RunSweep(w, benchCTimes, 500)
		if err != nil {
			b.Fatal(err)
		}
		series := s.Figure3()
		b.ReportMetric(series[0].Mean[0], "eff@C100")
	}
}

// BenchmarkTable1EfficiencyCI regenerates Table 1 (CIs + paired
// t-tests) from a fresh sweep.
func BenchmarkTable1EfficiencyCI(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for b.Loop() {
		s, err := experiments.RunSweep(w, benchCTimes, 500)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SyntheticWeibull regenerates Table 2 on a reduced
// synthetic trace.
func BenchmarkTable2SyntheticWeibull(b *testing.B) {
	for b.Loop() {
		res, err := experiments.RunTable2(experiments.Table2Config{N: 1000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if cell, ok := res.Cell(fit.ModelWeibull, 50, true); ok {
			b.ReportMetric(cell.Efficiency, "eff-weibull@C50")
		}
	}
}

// BenchmarkFigure4Bandwidth regenerates Figure 4's network-load
// curves.
func BenchmarkFigure4Bandwidth(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for b.Loop() {
		s, err := experiments.RunSweep(w, benchCTimes, 500)
		if err != nil {
			b.Fatal(err)
		}
		series := s.Figure4()
		b.ReportMetric(series[0].Mean[1]/1e6, "exp-TB@C500")
	}
}

// BenchmarkTable3BandwidthCI regenerates Table 3.
func BenchmarkTable3BandwidthCI(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for b.Loop() {
		s, err := experiments.RunSweep(w, benchCTimes, 500)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4LiveCampus regenerates Table 4 (campus manager) with
// a reduced sample count.
func BenchmarkTable4LiveCampus(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for b.Loop() {
		t4, _, err := experiments.RunLiveTable("bench", experiments.LiveCampaignConfig{
			Workload:        w,
			Link:            ckptnet.CampusLink(),
			SamplesPerModel: 4,
			Seed:            1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t4.MeanC, "meanC-s")
	}
}

// BenchmarkTable5LiveWAN regenerates Table 5 (wide-area manager).
func BenchmarkTable5LiveWAN(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for b.Loop() {
		t5, _, err := experiments.RunLiveTable("bench", experiments.LiveCampaignConfig{
			Workload:        w,
			Link:            ckptnet.WideAreaLink(),
			SamplesPerModel: 4,
			Seed:            2,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t5.MeanC, "meanC-s")
	}
}

// BenchmarkValidationSimVsLive regenerates the §5.3 validation from a
// pre-built campaign.
func BenchmarkValidationSimVsLive(b *testing.B) {
	w := benchWorkload(b)
	_, camp, err := experiments.RunLiveTable("bench", experiments.LiveCampaignConfig{
		Workload:        w,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 4,
		Seed:            3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		v, err := experiments.RunValidation(w, camp)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v.Rows[0].Delta(), "delta-exp")
	}
}

// BenchmarkSensitivityStudy regenerates the parameter-sensitivity
// extension (§5.2's robustness concern) on a reduced trace.
func BenchmarkSensitivityStudy(b *testing.B) {
	for b.Loop() {
		res, err := experiments.RunSensitivity(experiments.SensitivityConfig{
			N:             800,
			Perturbations: []float64{0.25},
			Seed:          2005,
		})
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := res.Cell(fit.ModelWeibull, 0.25); ok {
			b.ReportMetric(c.Loss(), "eff-loss@25%")
		}
	}
}

// BenchmarkCensoringStudy regenerates the censoring-sensitivity
// extension (§5.3 quantified) on a reduced pool.
func BenchmarkCensoringStudy(b *testing.B) {
	for b.Loop() {
		res, err := experiments.RunCensoring(experiments.CensoringConfig{
			Machines:  12,
			ShortDays: 0.5,
			Months:    4,
			Seed:      2005,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.CensoredFraction, "censored-%")
	}
}

// --- Ablations -------------------------------------------------------

// quadratureDist wraps a distribution, discarding its closed-form
// partial moment in favor of adaptive quadrature, to measure what the
// closed forms buy inside the Markov model.
type quadratureDist struct {
	dist.Distribution
}

func (q quadratureDist) PartialMoment(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return mathx.SimpsonAdaptive(func(t float64) float64 {
		return t * q.Distribution.PDF(t)
	}, 1e-9, x, 1e-9)
}

// BenchmarkAblationClosedFormVsQuadrature compares Γ evaluation using
// the closed-form partial moments against numeric quadrature.
func BenchmarkAblationClosedFormVsQuadrature(b *testing.B) {
	w := dist.NewWeibull(0.43, 3409)
	costs := markov.Costs{C: 110, R: 110, L: 110}
	b.Run("closed-form", func(b *testing.B) {
		m := markov.Model{Avail: w, Costs: costs}
		for b.Loop() {
			_ = m.Gamma(1000, 700)
		}
	})
	b.Run("quadrature", func(b *testing.B) {
		m := markov.Model{Avail: quadratureDist{w}, Costs: costs}
		for b.Loop() {
			_ = m.Gamma(1000, 700)
		}
	})
}

// BenchmarkAblationScheduleCache compares simulating with a prebuilt
// schedule (ages looked up) against recomputing T_opt at every
// interval boundary.
func BenchmarkAblationScheduleCache(b *testing.B) {
	avail := dist.NewWeibull(0.43, 3409)
	costs := markov.Costs{C: 110, R: 110, L: 110}
	m := markov.Model{Avail: avail, Costs: costs}
	rng := rand.New(rand.NewSource(5))
	durations := make([]float64, 200)
	for i := range durations {
		durations[i] = avail.Rand(rng)
	}
	cfg := sim.Config{Costs: costs, CheckpointMB: 500}
	b.Run("cached-schedule", func(b *testing.B) {
		for b.Loop() {
			sched, err := m.BuildSchedule(costs.R, markov.ScheduleOptions{Horizon: 200000})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(durations, sched, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute-every-interval", func(b *testing.B) {
		planner := sim.PlannerFunc(func(age float64) (float64, bool) {
			T, _, err := m.Topt(age, markov.OptimizeOptions{})
			if err != nil {
				return 0, false
			}
			return T, true
		})
		for b.Loop() {
			if _, err := sim.Run(durations, planner, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOptimizerBracket varies the coarse-scan grid that
// brackets the Golden Section refinement.
func BenchmarkAblationOptimizerBracket(b *testing.B) {
	m := markov.Model{
		Avail: dist.NewHyperexponential([]float64{0.6, 0.4}, []float64{1.0 / 600, 1.0 / 30000}),
		Costs: markov.Costs{C: 110, R: 110, L: 110},
	}
	for _, grid := range []int{8, 64, 256} {
		b.Run("grid-"+strconv.Itoa(grid), func(b *testing.B) {
			var lastT float64
			for b.Loop() {
				T, _, err := m.Topt(700, markov.OptimizeOptions{GridPoints: grid})
				if err != nil {
					b.Fatal(err)
				}
				lastT = T
			}
			b.ReportMetric(lastT, "Topt-s")
		})
	}
}

// BenchmarkAblationEMPhases measures hyperexponential EM fitting cost
// as the phase count grows.
func BenchmarkAblationEMPhases(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	truth := dist.NewWeibull(0.43, 3409)
	data := make([]float64, 200)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	for _, k := range []int{1, 2, 3, 4} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			var ll float64
			for b.Loop() {
				r, err := fit.Hyperexp(data, k, fit.EMOptions{})
				if err != nil {
					b.Fatal(err)
				}
				ll = r.LogLik
			}
			b.ReportMetric(-ll, "negLogLik")
		})
	}
}

// BenchmarkAblationConditioning quantifies the paper's core mechanism:
// age-conditioned (future-lifetime) scheduling versus ignoring the
// resource's age, on the same heavy-tailed trace. The reported
// efficiency metric is the figure of merit.
func BenchmarkAblationConditioning(b *testing.B) {
	avail := dist.NewWeibull(0.43, 3409)
	costs := markov.Costs{C: 500, R: 500, L: 500}
	m := markov.Model{Avail: avail, Costs: costs}
	rng := rand.New(rand.NewSource(7))
	durations := make([]float64, 400)
	for i := range durations {
		durations[i] = avail.Rand(rng)
	}
	cfg := sim.Config{Costs: costs, CheckpointMB: 500}
	b.Run("age-conditioned", func(b *testing.B) {
		sched, err := m.BuildSchedule(costs.R, markov.ScheduleOptions{Horizon: 500000})
		if err != nil {
			b.Fatal(err)
		}
		var eff, mb float64
		for b.Loop() {
			res, err := sim.Run(durations, sched, cfg)
			if err != nil {
				b.Fatal(err)
			}
			eff, mb = res.Efficiency(), res.MBTransferred
		}
		b.ReportMetric(eff, "efficiency")
		b.ReportMetric(mb/1000, "GB-moved")
	})
	b.Run("unconditioned", func(b *testing.B) {
		T0, _, err := m.Topt(0, markov.OptimizeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		planner := sim.FixedInterval(T0)
		var eff, mb float64
		for b.Loop() {
			res, err := sim.Run(durations, planner, cfg)
			if err != nil {
				b.Fatal(err)
			}
			eff, mb = res.Efficiency(), res.MBTransferred
		}
		b.ReportMetric(eff, "efficiency")
		b.ReportMetric(mb/1000, "GB-moved")
	})
}

// BenchmarkAblationStagger compares checkpoint-coordination policies
// for a 16-process parallel job on one shared link (the paper's §5.2
// future-work scenario). Efficiency and collision stretch are the
// figures of merit.
func BenchmarkAblationStagger(b *testing.B) {
	avail := dist.NewWeibull(0.43, 3409)
	for _, pol := range []parallel.StaggerPolicy{
		parallel.StaggerNone, parallel.StaggerToken, parallel.StaggerJitter,
	} {
		b.Run(pol.String(), func(b *testing.B) {
			var res parallel.Result
			for b.Loop() {
				var err error
				res, err = parallel.Run(parallel.Config{
					Workers:      16,
					Avail:        avail,
					ScheduleDist: avail,
					LinkMBps:     5,
					CheckpointMB: 500,
					Duration:     48 * 3600,
					Stagger:      pol,
					Seed:         11,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Efficiency, "efficiency")
			b.ReportMetric(res.CollisionStretch(), "stretch")
		})
	}
}

// BenchmarkAblationCostPredictor compares scheduling with the last
// measured transfer cost (the paper's live test process) against
// NWS-style forecasted costs (the paper's described system) on the
// high-variance wide-area link.
func BenchmarkAblationCostPredictor(b *testing.B) {
	w := benchWorkload(b)
	for _, useForecast := range []bool{false, true} {
		name := "last-measurement"
		if useForecast {
			name = "nws-forecast"
		}
		b.Run(name, func(b *testing.B) {
			var eff float64
			for b.Loop() {
				camp, err := live.RunCampaign(live.CampaignConfig{
					Machines:        w.Machines,
					History:         w.History,
					Link:            ckptnet.WideAreaLink(),
					SamplesPerModel: 4,
					UseForecast:     useForecast,
					Seed:            13,
				})
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for _, s := range camp.Samples {
					sum += s.Efficiency()
				}
				eff = sum / float64(len(camp.Samples))
			}
			b.ReportMetric(eff, "efficiency")
		})
	}
}

// BenchmarkAblationDiurnal measures how nonstationary (time-of-day
// modulated) availability affects the stationary fitters' schedules:
// real desktop traces violate the i.i.d. assumption exactly this way.
// Reported metric: mean hyperexp2 efficiency across machines at C=500.
func BenchmarkAblationDiurnal(b *testing.B) {
	for _, amp := range []float64{0, 2} {
		name := "stationary"
		if amp > 0 {
			name = "diurnal-A2"
		}
		b.Run(name, func(b *testing.B) {
			w, err := experiments.NewWorkload(experiments.WorkloadConfig{
				Machines:         12,
				Months:           6,
				DiurnalAmplitude: amp,
				Seed:             2005,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var eff float64
			for b.Loop() {
				s, err := experiments.RunSweep(w, []float64{500}, 500)
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for _, v := range s.Efficiency[fit.ModelHyperexp2][0] {
					sum += v
				}
				eff = sum / float64(len(s.Machines))
			}
			b.ReportMetric(eff, "efficiency")
		})
	}
}

// BenchmarkAblationLatency exercises the checkpoint-latency parameter
// L that distinguishes Vaidya's model from overhead-only formulations:
// sequential checkpointing blocks the application for the full
// transfer (C = L), while forked/copy-on-write checkpointing blocks it
// briefly (small C) although the image still takes L seconds to reach
// stable storage. The reported metric is the analytic efficiency at
// T_opt.
func BenchmarkAblationLatency(b *testing.B) {
	avail := dist.NewWeibull(0.43, 3409)
	cases := []struct {
		name string
		c, l float64
	}{
		{"sequential-C500-L500", 500, 500},
		{"forked-C50-L500", 50, 500},
		{"instant-C50-L50", 50, 50},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			m := markov.Model{Avail: avail, Costs: markov.Costs{C: tc.c, R: tc.c, L: tc.l}}
			var eff float64
			for b.Loop() {
				_, ratio, err := m.Topt(500, markov.OptimizeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				eff = 1 / ratio
			}
			b.ReportMetric(eff, "efficiency")
		})
	}
}

// --- Micro-benchmarks of the hot paths -------------------------------

func BenchmarkGammaEval(b *testing.B) {
	for _, d := range []dist.Distribution{
		dist.NewExponential(1.0 / 9000),
		dist.NewWeibull(0.43, 3409),
		dist.NewHyperexponential([]float64{0.5, 0.3, 0.2}, []float64{0.01, 0.001, 0.0001}),
	} {
		m := markov.Model{Avail: d, Costs: markov.Costs{C: 110, R: 110, L: 110}}
		b.Run(d.Name(), func(b *testing.B) {
			for b.Loop() {
				_ = m.Gamma(1000, 700)
			}
		})
	}
}

func BenchmarkTopt(b *testing.B) {
	m := markov.Model{
		Avail: dist.NewWeibull(0.43, 3409),
		Costs: markov.Costs{C: 110, R: 110, L: 110},
	}
	for b.Loop() {
		if _, _, err := m.Topt(700, markov.OptimizeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitWeibullMLE(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	truth := dist.NewWeibull(0.43, 3409)
	data := make([]float64, 25)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	for b.Loop() {
		if _, err := fit.Weibull(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSchedule(b *testing.B) {
	m := markov.Model{
		Avail: dist.NewWeibull(0.43, 3409),
		Costs: markov.Costs{C: 110, R: 110, L: 110},
	}
	for b.Loop() {
		if _, err := m.BuildSchedule(110, markov.ScheduleOptions{Horizon: 100000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelRun measures the sharded event-calendar engine of
// the §5.2 parallel-workload simulator across herd sizes. The link
// scales with the herd (constant per-worker share) and beyond w1024
// the image scales too, pinning the solo checkpoint cost — and with it
// the schedule and the events-per-worker rate — at the w1024 value, so
// the size ratios expose per-event cost rather than a drifting T_opt
// regime (a fixed image over a growing link shrinks C as 1/w and the
// event count explodes ~15× by w65536). The w1M case is a smoke over a
// one-hour horizon — enough to exercise the million-worker shard and
// wheel allocation and steady state without a full-day sweep per
// iteration — and is skipped under -short. BENCH_seed.json gates both
// time and allocations.
func BenchmarkParallelRun(b *testing.B) {
	avail := dist.NewWeibull(0.43, 3409)
	run := func(b *testing.B, workers int, duration float64) {
		cfg := parallel.Config{
			Workers:      workers,
			Avail:        avail,
			ScheduleDist: avail,
			LinkMBps:     2 * float64(workers),
			CheckpointMB: 500,
			Duration:     duration,
			Seed:         11,
		}
		var eff float64
		b.ReportAllocs()
		b.ResetTimer()
		for b.Loop() {
			res, err := parallel.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			eff = res.Efficiency
		}
		b.ReportMetric(eff, "efficiency")
	}
	for _, w := range []int{64, 1024, 65536} {
		b.Run("w"+strconv.Itoa(w), func(b *testing.B) {
			run(b, w, 24*3600)
		})
	}
	b.Run("w1M", func(b *testing.B) {
		if testing.Short() {
			b.Skip("million-worker smoke skipped under -short")
		}
		run(b, 1<<20, 3600)
	})
}

// BenchmarkObsNilRegistry pins the obs package's off switch: resolving
// metrics from a nil registry and mutating the resulting nil metrics
// must stay allocation-free and a few ns per call, because every
// instrumented subsystem runs through this path when no -metrics or
// -stats flag is given. BENCH_seed.json gates regressions.
func BenchmarkObsNilRegistry(b *testing.B) {
	var reg *obs.Registry
	c := reg.Counter("bench_nil_total", "")
	g := reg.Gauge("bench_nil_gauge", "")
	h := reg.Histogram("bench_nil_seconds", "", obs.DefBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.SetMax(9)
		h.Observe(0.25)
	}
}

// BenchmarkObsNilTracer pins the tracer's off switch the same way:
// spans, instants and attributes through a nil *obs.Tracer must stay
// allocation-free, because every traced subsystem (manager sessions,
// simulator periods, schedule builds) runs through this path when no
// -trace flag is given. BENCH_seed.json gates regressions.
func BenchmarkObsNilTracer(b *testing.B) {
	var tr *obs.Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		sp := tr.StartSpan(1, 1, "bench").SetAttr(obs.AttrStr("k", "v"))
		tr.Event(1, 1, "bench.event", obs.AttrInt("n", 42))
		tr.SpanAt(1, 1, "bench.at", 0, 1, obs.AttrFloat("f", 0.5))
		tr.EventAt(1, 1, "bench.event.at", 2, obs.AttrBool("ok", true))
		sp.End()
	}
}

// BenchmarkHyperexpEM measures the hyperexponential EM fit on a
// 2000-sample, 3-phase workload — the hot loop the flattened
// responsibility matrix (one contiguous k×n slice) speeds up.
func BenchmarkHyperexpEM(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	truth := dist.NewHyperexponential(
		[]float64{0.6, 0.3, 0.1},
		[]float64{1.0 / 300, 1.0 / 3000, 1.0 / 30000},
	)
	data := make([]float64, 2000)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := fit.Hyperexp(data, 3, fit.EMOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
