// Package cliflag validates command-line flag values before a run
// starts. Contradictory flags — a negative drop probability, a zero
// machine count — fail fast with one aggregated, per-flag error
// message instead of being silently clamped into a run the user did
// not ask for.
package cliflag

import (
	"errors"
	"fmt"
	"math"
)

// Checker accumulates flag-validation failures. The zero value is
// ready to use; call the check methods for each flag, then Err for the
// joined result (nil when every check passed).
type Checker struct {
	errs []error
}

func (c *Checker) failf(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf(format, args...))
}

// finite rejects NaN and ±Inf before any range check, so a garbage
// value never sneaks through a comparison that NaN answers false to.
func (c *Checker) finite(name string, v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		c.failf("%s must be a finite number, got %g", name, v)
		return false
	}
	return true
}

// Probability requires v in [0, 1].
func (c *Checker) Probability(name string, v float64) {
	if c.finite(name, v) && (v < 0 || v > 1) {
		c.failf("%s must be a probability in [0, 1], got %g", name, v)
	}
}

// NonNegative requires v ≥ 0.
func (c *Checker) NonNegative(name string, v float64) {
	if c.finite(name, v) && v < 0 {
		c.failf("%s must be ≥ 0, got %g", name, v)
	}
}

// Positive requires v > 0.
func (c *Checker) Positive(name string, v float64) {
	if c.finite(name, v) && v <= 0 {
		c.failf("%s must be > 0, got %g", name, v)
	}
}

// PositiveInt requires v > 0.
func (c *Checker) PositiveInt(name string, v int) {
	if v <= 0 {
		c.failf("%s must be > 0, got %d", name, v)
	}
}

// NonNegativeInt requires v ≥ 0, for count flags where zero selects an
// automatic default (e.g. -shards 0 = size from the worker count).
func (c *Checker) NonNegativeInt(name string, v int) {
	if v < 0 {
		c.failf("%s must be ≥ 0, got %d", name, v)
	}
}

// Check attaches an error produced elsewhere (a parser, a config
// Validate) under the flag's name; nil is ignored.
func (c *Checker) Check(name string, err error) {
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("%s: %w", name, err))
	}
}

// Err returns every accumulated failure joined into one error, or nil
// when all checks passed.
func (c *Checker) Err() error {
	return errors.Join(c.errs...)
}
