package cliflag

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestCheckerPasses(t *testing.T) {
	var c Checker
	c.Probability("-p", 0)
	c.Probability("-q", 1)
	c.NonNegative("-n", 0)
	c.Positive("-x", 0.001)
	c.PositiveInt("-k", 3)
	c.NonNegativeInt("-shards", 0)
	c.Check("-cfg", nil)
	if err := c.Err(); err != nil {
		t.Fatalf("all-valid checker errored: %v", err)
	}
}

func TestCheckerCollectsEveryFailure(t *testing.T) {
	var c Checker
	c.Probability("-chaos-tear", -0.1)
	c.Probability("-chaos-outage", 1.5)
	c.NonNegative("-chaos-stall-sec", -30)
	c.Positive("-months", 0)
	c.PositiveInt("-machines", 0)
	c.NonNegativeInt("-shards", -2)
	c.Check("-policy", errors.New("unknown policy \"x\""))
	err := c.Err()
	if err == nil {
		t.Fatal("invalid checker passed")
	}
	msg := err.Error()
	for _, want := range []string{
		"-chaos-tear", "-chaos-outage", "-chaos-stall-sec",
		"-months", "-machines", "-shards", "-policy",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error omits %s: %q", want, msg)
		}
	}
}

func TestCheckerRejectsNonFinite(t *testing.T) {
	var c Checker
	c.Probability("-p", math.NaN())
	c.NonNegative("-n", math.Inf(1))
	c.Positive("-x", math.Inf(-1))
	err := c.Err()
	if err == nil {
		t.Fatal("non-finite values passed")
	}
	if n := len(c.errs); n != 3 {
		t.Errorf("want 3 failures, got %d: %v", n, err)
	}
}

func TestCheckerBoundaries(t *testing.T) {
	var c Checker
	c.Positive("-x", 0)
	if c.Err() == nil {
		t.Error("Positive accepted 0")
	}
	var c2 Checker
	c2.NonNegative("-n", 0)
	if c2.Err() != nil {
		t.Error("NonNegative rejected 0")
	}
	var c3 Checker
	c3.NonNegativeInt("-shards", 0)
	if c3.Err() != nil {
		t.Error("NonNegativeInt rejected 0")
	}
}
