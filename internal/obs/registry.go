package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// kind discriminates registered metric types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindFloatGauge:
		// Prometheus has a single gauge type; the int/float split is an
		// internal storage decision, not a wire-format one.
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// metric is one registered name with its typed instance.
type metric struct {
	name, help string
	kind       kind
	c          *Counter
	g          *Gauge
	fg         *FloatGauge
	h          *Histogram
}

// Registry holds named metrics. Registration is get-or-create and
// idempotent: asking for an existing name of the same kind returns the
// same instance, so independent subsystems (or repeated simulation
// runs) can resolve their metrics without coordination. Re-registering
// a name as a different kind panics — that is a programming error, not
// a runtime condition.
//
// A nil *Registry is valid everywhere: registration returns nil
// metrics (whose methods no-op) and expositions render empty. That is
// the off switch — benchmarks and library callers simply pass nil.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup returns the metric registered under name, creating it with
// mk when absent.
func (r *Registry) lookup(name, help string, k kind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, m.kind, k))
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, k
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, func() *metric {
		return &metric{c: &Counter{}}
	}).c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a valid no-op gauge) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, func() *metric {
		return &metric{g: &Gauge{}}
	}).g
}

// FloatGauge returns the float gauge registered under name, creating
// it on first use. Returns nil (a valid no-op gauge) on a nil registry.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindFloatGauge, func() *metric {
		return &metric{fg: &FloatGauge{}}
	}).fg
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later calls reuse the
// original bounds). Returns nil (a valid no-op histogram) on a nil
// registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, func() *metric {
		return &metric{h: NewHistogram(bounds)}
	}).h
}

// sorted returns the registered metrics in name order — the canonical
// exposition order that makes snapshots deterministic.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// HistogramSnapshot is the exported state of one histogram. Counts has
// one entry per bound plus a final +Inf overflow slot; Counts[i] is
// the number of observations v with Bounds[i-1] < v <= Bounds[i]
// (per-bucket, not cumulative).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every registered metric, keyed
// by name. It JSON-encodes deterministically (Go marshals maps in key
// order), which is what the CLIs' -stats dumps rely on.
type Snapshot struct {
	Counters    map[string]uint64            `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric. A nil registry
// yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[m.name] = m.c.Value()
		case kindGauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[m.name] = m.g.Value()
		case kindFloatGauge:
			if s.FloatGauges == nil {
				s.FloatGauges = make(map[string]float64)
			}
			s.FloatGauges[m.name] = m.fg.Value()
		case kindHistogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[m.name] = m.h.snapshot()
		}
	}
	return s
}

// fmtFloat renders a float the way the Prometheus text format expects
// (shortest round-trip representation; +Inf spelled "+Inf").
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4), metrics in name order: a HELP and TYPE line
// per metric, histograms expanded into cumulative le-labelled buckets
// plus _sum and _count series. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.sorted() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value()); err != nil {
				return err
			}
		case kindFloatGauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.fg.Value())); err != nil {
				return err
			}
		case kindHistogram:
			s := m.h.snapshot()
			cum := uint64(0)
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fmtFloat(s.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.name, fmtFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.name, s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the text exposition —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// ExpvarVar adapts the registry to the expvar.Var interface: its
// String method renders the current Snapshot as JSON.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// PublishExpvar publishes the registry's snapshot under name in the
// process-wide expvar namespace (served by expvar.Handler at
// /debug/vars). Like expvar.Publish it panics on duplicate names, so
// call it once per process.
func PublishExpvar(name string, r *Registry) {
	expvar.Publish(name, r.ExpvarVar())
}
