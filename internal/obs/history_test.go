package obs

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistoryWindowSemantics pins the per-kind aggregation: counter
// deltas become rates over the actual inter-scrape interval, gauges
// record their last value, histograms report per-window observation
// rates and interpolated quantiles.
func TestHistoryWindowSemantics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "t")
	g := reg.Gauge("depth", "t")
	fg := reg.FloatGauge("frac", "t")
	hist := reg.Histogram("lat_seconds", "t", []float64{0.1, 1, 10})

	h := NewHistory(HistoryOptions{Registry: reg, Window: 2, Capacity: 8})
	c.Add(1000) // pre-existing traffic: must not spike the first window
	h.Scrape(0) // baseline

	c.Add(40)
	g.Set(7)
	fg.Set(0.25)
	for i := 0; i < 10; i++ {
		hist.Observe(0.05) // first bucket
	}
	h.Scrape(2)

	c.Add(10)
	g.Set(3)
	hist.Observe(5) // third bucket
	h.Scrape(6)     // late scrape: dt = 4, not the nominal 2

	snap := h.Snapshot()
	if snap.Windows != 2 || snap.Total != 2 {
		t.Fatalf("windows = %d, total = %d", snap.Windows, snap.Total)
	}
	if got := snap.Times; got[0] != 2 || got[1] != 6 {
		t.Fatalf("times = %v", got)
	}
	if got := snap.Counters["reqs_total"]; got[0] != 20 || got[1] != 2.5 {
		t.Errorf("counter rates = %v, want [20 2.5]", got)
	}
	if got := snap.Gauges["depth"]; got[0] != 7 || got[1] != 3 {
		t.Errorf("gauge series = %v, want [7 3]", got)
	}
	if got := snap.Gauges["frac"]; got[0] != 0.25 || got[1] != 0.25 {
		t.Errorf("float gauge series = %v, want [0.25 0.25]", got)
	}
	lat := snap.Histograms["lat_seconds"]
	if lat.Rate[0] != 5 || lat.Rate[1] != 0.25 {
		t.Errorf("histogram rates = %v, want [5 0.25]", lat.Rate)
	}
	// Window 1: all 10 observations in [0, 0.1); p50 interpolates to
	// rank 5 of 10 → 0.05.
	if lat.P50[0] != 0.05 {
		t.Errorf("p50[0] = %g, want 0.05", lat.P50[0])
	}
	// Window 2: one observation in (1, 10]; every quantile lands there.
	if lat.P99[1] <= 1 || lat.P99[1] > 10 {
		t.Errorf("p99[1] = %g, want in (1,10]", lat.P99[1])
	}
}

// TestHistoryRingWrap fills past capacity and checks the ring keeps
// the newest windows, oldest first.
func TestHistoryRingWrap(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("v", "t")
	h := NewHistory(HistoryOptions{Registry: reg, Window: 1, Capacity: 3})
	h.Scrape(0)
	for i := 1; i <= 5; i++ {
		g.Set(int64(i))
		h.Scrape(float64(i))
	}
	snap := h.Snapshot()
	if snap.Windows != 3 || snap.Total != 5 {
		t.Fatalf("windows = %d, total = %d", snap.Windows, snap.Total)
	}
	if !reflect.DeepEqual(snap.Times, []float64{3, 4, 5}) {
		t.Errorf("times = %v", snap.Times)
	}
	if !reflect.DeepEqual(snap.Gauges["v"], []float64{3, 4, 5}) {
		t.Errorf("series = %v", snap.Gauges["v"])
	}
}

// TestHistoryIgnoresNonAdvancingScrapes pins the zero/negative-dt rule.
func TestHistoryIgnoresNonAdvancingScrapes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "t").Inc()
	h := NewHistory(HistoryOptions{Registry: reg, Window: 1, Capacity: 4})
	h.Scrape(5)
	h.Scrape(5) // same instant
	h.Scrape(3) // the past
	if snap := h.Snapshot(); snap.Windows != 0 {
		t.Fatalf("non-advancing scrapes emitted %d windows", snap.Windows)
	}
	h.Scrape(6)
	if snap := h.Snapshot(); snap.Windows != 1 {
		t.Fatalf("windows = %d, want 1", snap.Windows)
	}
}

// TestHistoryNilSafe: every method on a nil history is a no-op, the
// off switch the call sites rely on.
func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Scrape(1)
	h.OnScrape(func(float64) {})
	if h.Registry() != nil || h.Window() != 0 {
		t.Error("nil history leaked state")
	}
	if snap := h.Snapshot(); snap.Windows != 0 || snap.Counters != nil {
		t.Errorf("nil snapshot = %+v", snap)
	}
	stop := h.StartScraper()
	stop()
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history", nil))
	if rec.Code != 200 {
		t.Errorf("nil handler = %d", rec.Code)
	}
}

// TestHistoryOnScrapeHook pins the ordering contract: hooks run before
// the registry snapshot, so a gauge refreshed in the hook lands in the
// very window that triggered it.
func TestHistoryOnScrapeHook(t *testing.T) {
	reg := NewRegistry()
	g := reg.FloatGauge("hooked", "t")
	h := NewHistory(HistoryOptions{Registry: reg, Window: 1, Capacity: 4})
	var stamps []float64
	h.OnScrape(func(ts float64) {
		stamps = append(stamps, ts)
		g.Set(ts * 10)
	})
	h.Scrape(1)
	h.Scrape(2)
	if !reflect.DeepEqual(stamps, []float64{1, 2}) {
		t.Fatalf("hook stamps = %v", stamps)
	}
	if got := h.Snapshot().Gauges["hooked"]; len(got) != 1 || got[0] != 20 {
		t.Errorf("hooked series = %v, want [20]", got)
	}
}

// TestHistoryConcurrentScrapeVsWrite hammers the registry from eight
// goroutines while scraping continuously — the -race coverage the
// wall-clock self-scraper needs, plus invariant checks on the result.
func TestHistoryConcurrentScrapeVsWrite(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "t")
	g := reg.Gauge("g", "t")
	hist := reg.Histogram("h_seconds", "t", []float64{0.001, 0.1, 1})
	h := NewHistory(HistoryOptions{Registry: reg, Window: 1, Capacity: 64})
	h.Scrape(0)

	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				hist.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	for ts := 1; ts <= 100; ts++ {
		h.Scrape(float64(ts))
	}
	close(stop)
	wg.Wait()

	snap := h.Snapshot()
	if snap.Windows != 64 || snap.Total != 100 {
		t.Fatalf("windows = %d, total = %d", snap.Windows, snap.Total)
	}
	var sum float64
	for i, r := range snap.Counters["c_total"] {
		if r < 0 {
			t.Fatalf("negative rate at window %d: %g", i, r)
		}
		sum += r
	}
	// Rates sum (times dt=1) to the counter increments seen across the
	// retained windows — they cannot exceed the counter's final value.
	if sum > float64(c.Value()) {
		t.Errorf("retained rates sum %.0f above counter value %d", sum, c.Value())
	}
	for i, p := range snap.Histograms["h_seconds"].P99 {
		if p < 0 || p > 1 {
			t.Errorf("p99[%d] = %g out of bucket range", i, p)
		}
	}
}

// TestHistoryJSONRoundTrip serves the snapshot over HTTP and decodes
// it back — the contract ckpt-report watch depends on.
func TestHistoryJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "t")
	hist := reg.Histogram("lat_seconds", "t", []float64{0.1, 1})
	h := NewHistory(HistoryOptions{Registry: reg, Window: 1, Capacity: 8})
	h.Scrape(0)
	c.Add(5)
	hist.Observe(0.05)
	h.Scrape(1)

	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var got HistorySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if !reflect.DeepEqual(got, h.Snapshot()) {
		t.Errorf("round trip diverged:\ngot  %+v\nwant %+v", got, h.Snapshot())
	}
}

// TestHistoryScraperLive runs the wall-clock self-scraper briefly and
// checks windows accumulate and stop() halts cleanly.
func TestHistoryScraperLive(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "t").Inc()
	h := NewHistory(HistoryOptions{Registry: reg, Window: 0.005, Capacity: 16})
	stop := h.StartScraper()
	deadline := time.Now().Add(5 * time.Second)
	for h.Snapshot().Windows == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scraper never produced a window")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	n := h.Snapshot().Total
	time.Sleep(20 * time.Millisecond)
	if got := h.Snapshot().Total; got != n {
		t.Errorf("scraper still running after stop: %d -> %d", n, got)
	}
}

// TestSLOBurn pins the burn-rate arithmetic: burn = bad-fraction over
// the window divided by the error budget, on both windows.
func TestSLOBurn(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "fit", 0.5, 0.99) // budget 0.01

	// Ten requests before the first sample: nine good, one bad (slow
	// success counts as bad).
	for i := 0; i < 8; i++ {
		s.Observe(0.01, true)
	}
	s.Observe(0.01, false) // failure
	s.Observe(2.0, true)   // slower than target
	if g, b := reg.Snapshot().Counters["slo_fit_good_total"], reg.Snapshot().Counters["slo_fit_bad_total"]; g != 8 || b != 2 {
		t.Fatalf("good/bad = %d/%d", g, b)
	}

	s.Update(0)
	// burn anchors at the oldest sample when history is shorter than
	// the window: 2 bad / 10 total / 0.01 budget — but the first sample
	// IS the anchor, so deltas are zero and burn reads 0.
	burn := func() (float64, float64) {
		snap := reg.Snapshot()
		return snap.FloatGauges["slo_fit_burn_5m"], snap.FloatGauges["slo_fit_burn_1h"]
	}
	if b5, b1 := burn(); b5 != 0 || b1 != 0 {
		t.Fatalf("first sample burn = %g/%g, want 0/0", b5, b1)
	}

	// Next window: 100 requests, 2 bad → bad fraction 0.02, burn 2.
	for i := 0; i < 98; i++ {
		s.Observe(0.01, true)
	}
	s.Observe(0.01, false)
	s.Observe(0.01, false)
	s.Update(60)
	if b5, b1 := burn(); !near(b5, 2) || !near(b1, 2) {
		t.Fatalf("burn = %g/%g, want 2/2", b5, b1)
	}

	// 400 s later the 5m window anchors at the ts=60 sample (clean
	// interval → burn 0) while the 1h window still sees the spike.
	s.Observe(0.01, true)
	s.Update(460)
	b5, b1 := burn()
	if b5 != 0 {
		t.Errorf("5m burn = %g, want 0 after the spike aged out", b5)
	}
	if b1 <= 0 {
		t.Errorf("1h burn = %g, want > 0 while the spike is in window", b1)
	}

	// Nil SLO no-ops.
	var nilSLO *SLO
	nilSLO.Observe(1, true)
	nilSLO.Update(1)
	nilSLO.Attach(nil)
}

// near compares within float rounding of the burn division chain.
func near(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}

// TestSLOObjectivePanics pins the constructor's domain check.
func TestSLOObjectivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("objective 1.0 should panic")
		}
	}()
	NewSLO(NewRegistry(), "x", 1, 1.0)
}

// TestByteSeries covers binning, clamping, totals and rate conversion.
func TestByteSeries(t *testing.T) {
	w := NewByteSeries(10, 4) // 4 bins of 10 s
	w.Add(0, 100)
	w.Add(9.99, 50)
	w.Add(25, 200)
	w.Add(-5, 7)    // clamps into the first bin
	w.Add(1000, 13) // clamps into the last bin
	if got := w.Bins(); !reflect.DeepEqual(got, []int64{157, 0, 200, 13}) {
		t.Errorf("bins = %v", got)
	}
	if w.Total() != 370 {
		t.Errorf("total = %d", w.Total())
	}
	if w.Width() != 10 {
		t.Errorf("width = %g", w.Width())
	}
	rates := w.MBPerSec()
	wantRate := 157.0 / (10 * (1 << 20))
	if rates[0] != wantRate {
		t.Errorf("rate[0] = %g, want %g", rates[0], wantRate)
	}

	var nilW *ByteSeries
	nilW.Add(1, 1)
	if nilW.Total() != 0 || nilW.Bins() != nil || nilW.MBPerSec() != nil || nilW.Width() != 0 {
		t.Error("nil ByteSeries leaked state")
	}

	defer func() {
		if recover() == nil {
			t.Error("non-positive width should panic")
		}
	}()
	NewByteSeries(0, 4)
}

// TestByteSeriesConcurrentDeterministic: integer adds commute, so the
// bins are exact whatever the writer interleaving.
func TestByteSeriesConcurrentDeterministic(t *testing.T) {
	w := NewByteSeries(1, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Add(float64(i%8), 3)
			}
		}(g)
	}
	wg.Wait()
	for i, b := range w.Bins() {
		if b != 3000 {
			t.Fatalf("bin %d = %d, want 3000", i, b)
		}
	}
}

// TestRuntimeCollectorPrometheusRoundTrip registers the runtime
// collector, forces a collection, and parses the Prometheus exposition
// back — every runtime series must appear with a plausible value, and
// the GC-pause histogram must be a well-formed cumulative histogram.
func TestRuntimeCollectorPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Collect()

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	samples := parseExposition(t, text)
	if samples["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %g", samples["go_goroutines"])
	}
	if samples["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %g", samples["go_heap_alloc_bytes"])
	}
	if _, ok := samples["go_heap_objects"]; !ok {
		t.Error("go_heap_objects missing from exposition")
	}
	if _, ok := samples["go_gc_cycles_total"]; !ok {
		t.Error("go_gc_cycles_total missing from exposition")
	}
	for _, h := range []string{"go_gc_pause_seconds", "go_sched_latency_seconds"} {
		count, okC := samples[h+"_count"]
		if !okC {
			t.Errorf("%s_count missing", h)
			continue
		}
		inf, okInf := samples[h+`_bucket{le="+Inf"}`]
		if !okInf || inf != count {
			t.Errorf("%s +Inf bucket = %g, want count %g", h, inf, count)
		}
		// Buckets are cumulative: each le bound's value never decreases.
		prev := -1.0
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, h+"_bucket") {
				parts := strings.Fields(line)
				v, err := strconv.ParseFloat(parts[len(parts)-1], 64)
				if err != nil {
					t.Fatalf("bucket line %q: %v", line, err)
				}
				if v < prev {
					t.Errorf("%s buckets not cumulative: %q", h, line)
				}
				prev = v
			}
		}
	}

	// Attached to a history, Collect runs on every scrape and the
	// series surface in the snapshot.
	h := NewHistory(HistoryOptions{Registry: reg, Window: 1, Capacity: 4})
	c.Attach(h)
	h.Scrape(0)
	h.Scrape(1)
	snap := h.Snapshot()
	if _, ok := snap.Gauges["go_goroutines"]; !ok {
		t.Error("history missing go_goroutines")
	}
	if _, ok := snap.Histograms["go_gc_pause_seconds"]; !ok {
		t.Error("history missing go_gc_pause_seconds")
	}
}

// parseExposition reads "name value" sample lines from Prometheus text
// format into a map (labels kept verbatim in the name key).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestSparkline pins the renderer: right-aligned, min-max scaled,
// all-equal series renders lowest bars.
func TestSparkline(t *testing.T) {
	if got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8); got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}, 3); got != "▁▁▁" {
		t.Errorf("flat = %q", got)
	}
	if got := Sparkline([]float64{1, 9}, 4); got != "  ▁█" {
		t.Errorf("padded = %q", got)
	}
	if got := Sparkline([]float64{0, 1, 2, 9}, 2); got != "▁█" {
		t.Errorf("truncated = %q, want newest two", got)
	}
	if got := Sparkline(nil, 0); got != "" {
		t.Errorf("empty = %q", got)
	}
}

// BenchmarkHistoryScrape gates the per-window scrape cost over a
// registry the size of a real server's (DESIGN.md §17): O(metrics)
// with a bounded constant, since the self-scraper shares cores with
// the serving hot path.
func BenchmarkHistoryScrape(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 16; i++ {
		reg.Counter("c"+string(rune('a'+i))+"_total", "b").Add(uint64(i))
		reg.Gauge("g"+string(rune('a'+i)), "b").Set(int64(i))
	}
	for i := 0; i < 4; i++ {
		h := reg.Histogram("h"+string(rune('a'+i))+"_seconds", "b", []float64{0.001, 0.01, 0.1, 1, 10})
		for j := 0; j < 100; j++ {
			h.Observe(float64(j) / 50)
		}
	}
	h := NewHistory(HistoryOptions{Registry: reg, Window: 1, Capacity: 512})
	h.Scrape(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Scrape(float64(i + 1))
	}
}

// BenchmarkHistoryNil gates the off switch: a nil history's Scrape
// must stay allocation-free (and near-zero cost), since every
// accounting site calls it unconditionally.
func BenchmarkHistoryNil(b *testing.B) {
	var h *History
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Scrape(float64(i))
	}
}
