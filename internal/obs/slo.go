package obs

// SLO tracking in the Google SRE idiom: a route promises an
// availability objective ("99.9% of requests succeed within the
// latency target"), the complement is the error budget, and the burn
// rate says how fast the budget is being spent — burn 1.0 exactly
// exhausts the budget over the objective period, burn 14.4 on the
// 5-minute window is the classic page-now threshold. Burn over a
// trailing window W is
//
//	burn_W = (bad_W / total_W) / (1 - objective)
//
// computed from cumulative good/bad counters differenced against a
// ring of (timestamp, good, bad) samples recorded once per history
// window. Two windows are tracked (5 m and 1 h — multi-window so a
// short spike and a slow leak are both visible), exported as slo_*
// float gauges so they ride the ordinary exposition and history paths.
//
// The observe path is two predictable branches and one atomic
// increment — allocation-free, safe for the serve fast path. All
// window arithmetic happens at Update time, which the server wiring
// hangs off History.OnScrape so the gauges refresh just before each
// snapshot is taken.

import "sync"

// Burn-rate windows (seconds). Both much shorter than the sample ring
// horizon at the default 1 s scrape cadence (sloRingCap windows).
const (
	sloShortWindow = 300.0
	sloLongWindow  = 3600.0
	sloRingCap     = 4096
)

// SLO tracks one route's objective. Build with NewSLO; nil no-ops.
type SLO struct {
	latencyTarget float64
	budget        float64 // 1 - objective

	good *Counter
	bad  *Counter

	objective *FloatGauge
	burnShort *FloatGauge
	burnLong  *FloatGauge

	mu      sync.Mutex
	ring    [sloRingCap]sloSample
	samples uint64 // total samples recorded
}

// sloSample is one cumulative reading.
type sloSample struct {
	ts        float64
	good, bad uint64
}

// NewSLO registers a route's SLO metrics on reg and returns the
// tracker. route becomes part of the metric names — slo_<route>_*: a
// good/bad request counter pair, the objective echoed as a gauge, and
// burn-rate gauges for the 5-minute and 1-hour windows. latencyTarget
// is the per-request latency bound in seconds (a slower success counts
// against the budget); objective is the availability target in (0,1),
// e.g. 0.999. Returns nil on a nil registry.
func NewSLO(reg *Registry, route string, latencyTarget, objective float64) *SLO {
	if reg == nil {
		return nil
	}
	if objective <= 0 || objective >= 1 {
		panic("obs: SLO objective must be in (0,1)")
	}
	s := &SLO{
		latencyTarget: latencyTarget,
		budget:        1 - objective,
		good:          reg.Counter("slo_"+route+"_good_total", "Requests within the "+route+" SLO."),
		bad:           reg.Counter("slo_"+route+"_bad_total", "Requests violating the "+route+" SLO."),
		objective:     reg.FloatGauge("slo_"+route+"_objective", "Availability objective for "+route+"."),
		burnShort:     reg.FloatGauge("slo_"+route+"_burn_5m", "Error-budget burn rate for "+route+" over 5 minutes."),
		burnLong:      reg.FloatGauge("slo_"+route+"_burn_1h", "Error-budget burn rate for "+route+" over 1 hour."),
	}
	s.objective.Set(objective)
	return s
}

// Observe classifies one request: failures and successes slower than
// the latency target burn budget, everything else honors it.
// Allocation-free and safe for concurrent use; nil-safe.
func (s *SLO) Observe(latencySeconds float64, ok bool) {
	if s == nil {
		return
	}
	if ok && latencySeconds <= s.latencyTarget {
		s.good.Inc()
	} else {
		s.bad.Inc()
	}
}

// Attach hangs Update off the history's scrape cycle so burn gauges
// refresh in the same window that snapshots them. Nil-safe.
func (s *SLO) Attach(h *History) {
	if s == nil {
		return
	}
	h.OnScrape(s.Update)
}

// Update records a cumulative sample at ts and recomputes both burn
// gauges from the trailing windows. Call once per scrape window (the
// hook Attach installs); ts shares whatever clock drives the history.
func (s *SLO) Update(ts float64) {
	if s == nil {
		return
	}
	good, bad := s.good.Value(), s.bad.Value()
	s.mu.Lock()
	s.ring[s.samples%sloRingCap] = sloSample{ts: ts, good: good, bad: bad}
	s.samples++
	s.burnShort.Set(s.burnLocked(ts, good, bad, sloShortWindow))
	s.burnLong.Set(s.burnLocked(ts, good, bad, sloLongWindow))
	s.mu.Unlock()
}

// burnLocked computes the burn rate over the trailing window: the bad
// fraction of requests since the newest sample at or before ts-window
// (the oldest retained sample when history is shorter than the
// window), divided by the error budget. Zero traffic burns nothing.
// Caller holds s.mu.
func (s *SLO) burnLocked(ts float64, good, bad uint64, window float64) float64 {
	n := s.samples
	if n == 0 {
		return 0
	}
	lo := uint64(0)
	if n > sloRingCap {
		lo = n - sloRingCap
	}
	cutoff := ts - window
	// Newest-first scan: the first sample old enough anchors the window.
	then := s.ring[lo%sloRingCap]
	for i := n; i > lo; i-- {
		smp := s.ring[(i-1)%sloRingCap]
		if smp.ts <= cutoff {
			then = smp
			break
		}
	}
	dBad := bad - then.bad
	dTotal := (good - then.good) + dBad
	if dTotal == 0 {
		return 0
	}
	return float64(dBad) / float64(dTotal) / s.budget
}
