package obs

// This file is the windowed time-series half of the metrics layer: the
// Registry answers "how much so far", the History answers "how much
// per second, over the last N windows". A History periodically scrapes
// its registry, differences the cumulative state against the previous
// scrape, and appends one fixed-width window of aggregates per metric
// to a fixed-capacity ring:
//
//   - counters    → per-second rate (delta / window duration)
//   - gauges      → last value (int and float gauges alike)
//   - histograms  → observation rate plus p50/p99/p999 estimated from
//     the window's bucket deltas by the same linear interpolation
//     Prometheus' histogram_quantile uses
//
// Two properties are contractual, mirroring the rest of the package:
//
//   - Write paths untouched. The History never hooks metric mutation;
//     counters, gauges and histograms stay single atomic operations
//     whether or not a History is attached. All cost is paid at scrape
//     time and is O(registered metrics) per window
//     (BenchmarkHistoryScrape gates it; BenchmarkHistoryNil pins the
//     nil off switch allocation-free).
//
//   - Clock-agnostic and deterministic. Scrape takes an explicit
//     timestamp: servers drive it from a wall-clock ticker
//     (StartScraper), simulators call it at virtual-time window
//     boundaries. Given deterministic metric state at each scrape, the
//     exported series is byte-identical at any GOMAXPROCS — the same
//     discipline as trace export (DESIGN.md §17 states the rules).
//
// The first scrape is a baseline: it records cumulative state and
// emits no window (a counter has no delta yet). Windows appear from
// the second scrape on. A metric that first appears mid-history reads
// zero in every window before its first scrape.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// HistoryOptions configures NewHistory. The zero value (with a
// registry) gives 1-second windows and a 512-window ring.
type HistoryOptions struct {
	// Registry is the metric source the history scrapes.
	Registry *Registry
	// Window is the nominal window width in seconds (default 1). Rates
	// are computed against the actual inter-scrape gap, so a jittery
	// ticker skews no rates; Window is the advertised cadence.
	Window float64
	// Capacity is how many windows the ring retains (default 512).
	Capacity int
}

// History is a fixed-capacity ring of windowed aggregates per metric.
// Build with NewHistory; a nil *History no-ops on every method, so
// call sites stay unconditional (the off switch, like a nil Registry).
type History struct {
	reg    *Registry
	window float64
	cap    int

	mu     sync.Mutex
	hooks  []func(ts float64) // run before each scrape, in registration order
	primed bool               // a baseline scrape has happened
	lastTs float64            // timestamp of the previous scrape
	total  uint64             // windows emitted since creation
	times  []float64
	series map[string]*histSeries
}

// histSeries is one metric's ring. vals is always allocated; the
// quantile rings only for histograms.
type histSeries struct {
	kind           kind
	vals           []float64 // counter rate, gauge last-value, histogram rate
	p50, p99, p999 []float64
	prevCounts     []uint64 // histogram bucket baseline from the previous scrape
	prevCounterVal uint64   // counter baseline from the previous scrape
}

// NewHistory builds a history over opts.Registry.
func NewHistory(opts HistoryOptions) *History {
	w := opts.Window
	if w <= 0 {
		w = 1
	}
	c := opts.Capacity
	if c <= 0 {
		c = 512
	}
	return &History{
		reg:    opts.Registry,
		window: w,
		cap:    c,
		times:  make([]float64, c),
		series: make(map[string]*histSeries),
	}
}

// Registry returns the scraped registry (nil for a nil history) — the
// hook subsystems use to register their metrics next to the history
// that will serialize them.
func (h *History) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Window returns the nominal window width in seconds (zero for nil).
func (h *History) Window() float64 {
	if h == nil {
		return 0
	}
	return h.window
}

// OnScrape registers f to run at the start of every Scrape with the
// scrape timestamp, before the registry is read — the seam runtime
// collectors and SLO burn-rate updaters use to refresh their gauges so
// the same window that triggered them also records them. Hooks run in
// registration order, outside the history lock.
func (h *History) OnScrape(f func(ts float64)) {
	if h == nil || f == nil {
		return
	}
	h.mu.Lock()
	h.hooks = append(h.hooks, f)
	h.mu.Unlock()
}

// Scrape closes one window at timestamp ts (seconds on the caller's
// clock): it runs the OnScrape hooks, snapshots the registry, and
// appends per-metric aggregates for the interval since the previous
// scrape. The first call records the baseline and emits nothing; a
// call with ts not after the previous scrape is ignored (no window of
// zero or negative width). Nil-safe.
func (h *History) Scrape(ts float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	hooks := h.hooks
	h.mu.Unlock()
	for _, f := range hooks {
		f(ts)
	}

	snap := h.reg.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.primed {
		h.lastTs, h.primed = ts, true
		h.seedBaselines(snap)
		return
	}
	dt := ts - h.lastTs
	if dt <= 0 {
		return
	}
	pos := int(h.total % uint64(h.cap))
	h.times[pos] = ts

	for name, v := range snap.Counters {
		s := h.lookupSeries(name, kindCounter)
		delta := v - s.prevCounterVal // counters are monotone; a fresh series baselines at 0
		s.prevCounterVal = v
		s.vals[pos] = float64(delta) / dt
	}
	for name, v := range snap.Gauges {
		h.lookupSeries(name, kindGauge).vals[pos] = float64(v)
	}
	for name, v := range snap.FloatGauges {
		h.lookupSeries(name, kindFloatGauge).vals[pos] = v
	}
	for name, hs := range snap.Histograms {
		s := h.lookupSeries(name, kindHistogram)
		if len(s.prevCounts) != len(hs.Counts) {
			s.prevCounts = make([]uint64, len(hs.Counts))
		}
		deltas := make([]uint64, len(hs.Counts))
		var n uint64
		for i, c := range hs.Counts {
			d := c - s.prevCounts[i]
			s.prevCounts[i] = c
			deltas[i] = d
			n += d
		}
		s.vals[pos] = float64(n) / dt
		s.p50[pos] = bucketQuantile(0.50, hs.Bounds, deltas, n)
		s.p99[pos] = bucketQuantile(0.99, hs.Bounds, deltas, n)
		s.p999[pos] = bucketQuantile(0.999, hs.Bounds, deltas, n)
	}
	h.lastTs = ts
	h.total++
}

// seedBaselines pre-registers a series for every metric in the
// baseline snapshot so counter deltas difference against the baseline
// value, not zero — a counter at 10⁹ before the first window must not
// show a 10⁹/s spike in it.
func (h *History) seedBaselines(snap Snapshot) {
	for name, v := range snap.Counters {
		h.lookupSeries(name, kindCounter).prevCounterVal = v
	}
	for name := range snap.Gauges {
		h.lookupSeries(name, kindGauge)
	}
	for name := range snap.FloatGauges {
		h.lookupSeries(name, kindFloatGauge)
	}
	for name, hs := range snap.Histograms {
		s := h.lookupSeries(name, kindHistogram)
		s.prevCounts = make([]uint64, len(hs.Counts))
		copy(s.prevCounts, hs.Counts)
	}
}

// lookupSeries returns the ring for name, creating it zero-filled on
// first sight. Caller holds h.mu.
func (h *History) lookupSeries(name string, k kind) *histSeries {
	s, ok := h.series[name]
	if ok {
		return s
	}
	s = &histSeries{kind: k, vals: make([]float64, h.cap)}
	if k == kindHistogram {
		s.p50 = make([]float64, h.cap)
		s.p99 = make([]float64, h.cap)
		s.p999 = make([]float64, h.cap)
	}
	h.series[name] = s
	return s
}

// bucketQuantile estimates quantile q from one window's bucket deltas
// by linear interpolation inside the containing bucket — the estimator
// Prometheus' histogram_quantile applies to the same data. Windows
// with no observations report 0 (NaN does not survive JSON); values in
// the +Inf overflow bucket clamp to the highest finite bound.
func bucketQuantile(q float64, bounds []float64, deltas []uint64, n uint64) float64 {
	if n == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(n)
	var cum float64
	for i, d := range deltas {
		if d == 0 {
			continue
		}
		next := cum + float64(d)
		if next >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1] // +Inf bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			return lo + (hi-lo)*(rank-cum)/float64(d)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// HistogramHistory is one histogram's windowed series: observation
// rate per second plus estimated quantiles, parallel to
// HistorySnapshot.Times.
type HistogramHistory struct {
	Rate []float64 `json:"rate"`
	P50  []float64 `json:"p50"`
	P99  []float64 `json:"p99"`
	P999 []float64 `json:"p999"`
}

// HistorySnapshot is the exported state of a History: the retained
// windows, oldest first, every series aligned with Times. It
// JSON-encodes deterministically (maps marshal in key order).
type HistorySnapshot struct {
	// WindowSeconds is the nominal scrape cadence.
	WindowSeconds float64 `json:"window_seconds"`
	// Windows is how many windows are retained (= len(Times)); Total
	// counts windows emitted since creation, so Total - Windows is how
	// much history the ring has evicted.
	Windows int    `json:"windows"`
	Total   uint64 `json:"total_windows"`
	// Times holds each retained window's end timestamp, oldest first,
	// on whatever clock drove Scrape.
	Times []float64 `json:"times"`
	// Counters maps metric name to per-second rates; Gauges to
	// last-in-window values (integer and float gauges both).
	Counters map[string][]float64 `json:"counters,omitempty"`
	Gauges   map[string][]float64 `json:"gauges,omitempty"`
	// Histograms maps metric name to rate + quantile series.
	Histograms map[string]HistogramHistory `json:"histograms,omitempty"`
}

// Snapshot copies the retained windows out, oldest first. A nil
// history yields the zero snapshot.
func (h *History) Snapshot() HistorySnapshot {
	var out HistorySnapshot
	if h == nil {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out.WindowSeconds = h.window
	out.Total = h.total
	n := h.cap
	if h.total < uint64(n) {
		n = int(h.total)
	}
	out.Windows = n
	out.Times = h.ringOut(h.times, n)
	for name, s := range h.series {
		switch s.kind {
		case kindCounter:
			if out.Counters == nil {
				out.Counters = make(map[string][]float64)
			}
			out.Counters[name] = h.ringOut(s.vals, n)
		case kindGauge, kindFloatGauge:
			if out.Gauges == nil {
				out.Gauges = make(map[string][]float64)
			}
			out.Gauges[name] = h.ringOut(s.vals, n)
		case kindHistogram:
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramHistory)
			}
			out.Histograms[name] = HistogramHistory{
				Rate: h.ringOut(s.vals, n),
				P50:  h.ringOut(s.p50, n),
				P99:  h.ringOut(s.p99, n),
				P999: h.ringOut(s.p999, n),
			}
		}
	}
	return out
}

// ringOut copies the last n windows of ring into a fresh slice, oldest
// first. Caller holds h.mu.
func (h *History) ringOut(ring []float64, n int) []float64 {
	out := make([]float64, n)
	pos := int(h.total % uint64(h.cap)) // next write slot = oldest when full
	if h.total < uint64(h.cap) {
		copy(out, ring[:n])
		return out
	}
	m := copy(out, ring[pos:])
	copy(out[m:], ring[:pos])
	return out
}

// WriteJSON writes the snapshot as one JSON document. Byte-identical
// for identical series (encoding/json sorts map keys).
func (h *History) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(h.Snapshot())
}

// Handler serves the snapshot as JSON — mount it at /metrics/history.
// Safe on a nil history (serves an empty document).
func (h *History) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = h.WriteJSON(w)
	})
}

// StartScraper drives Scrape from a wall-clock ticker at the history's
// window cadence — the self-scraper long-lived servers run. Timestamps
// are Unix seconds. The returned stop function halts the ticker and
// waits for the scrape goroutine to exit; it is safe to call once.
// Nil-safe (returns a no-op stop).
func (h *History) StartScraper() (stop func()) {
	if h == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	interval := time.Duration(h.window * float64(time.Second))
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				h.Scrape(float64(now.UnixNano()) / 1e9)
			case <-quit:
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// sparkRunes is the eight-level bar alphabet Sparkline renders with.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-width ASCII-art strip, scaling
// linearly from the series minimum (lowest bar) to its maximum (full
// bar). More values than width keeps the most recent; fewer pads the
// left with spaces so the newest sample always lands in the rightmost
// column. An all-equal series renders as lowest bars.
func Sparkline(vals []float64, width int) string {
	if width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := 0.0, 0.0
	for i, v := range vals {
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for i := len(vals); i < width; i++ {
		b.WriteByte(' ')
	}
	span := hi - lo
	for _, v := range vals {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}
