package obs

// Runtime telemetry as ordinary obs metrics: goroutine count, heap
// size, GC activity, and scheduler latency, registered under go_*
// names (DESIGN.md §17) and refreshed by an explicit Collect call —
// which the server wiring hangs off History.OnScrape so every window
// carries a fresh reading. Nothing here runs on simulator clocks:
// runtime state is inherently nondeterministic, so simulations simply
// never attach the collector and their histories stay byte-identical.

import (
	"runtime"
	"runtime/metrics"
)

// gcPauseBuckets spans stop-the-world pauses from 10µs blips to
// 100ms+ pathologies.
var gcPauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
}

// schedLatencyName is the runtime/metrics distribution of how long
// runnable goroutines waited for a thread.
const schedLatencyName = "/sched/latencies:seconds"

// RuntimeCollector mirrors Go runtime state into a Registry. Build
// with NewRuntimeCollector, refresh with Collect; a nil collector
// no-ops, so callers can pass one through unconditionally.
type RuntimeCollector struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	heapObjs   *Gauge
	gcCycles   *Counter
	gcPause    *Histogram
	schedLat   *Histogram

	lastNumGC uint32
	lastSched []uint64 // previous cumulative counts of the sched-latency distribution
	samples   []metrics.Sample
}

// NewRuntimeCollector registers the go_* metrics on reg and returns a
// collector primed against current runtime state, so the first Collect
// reports activity since construction rather than since process start.
// Returns nil on a nil registry.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	c := &RuntimeCollector{
		goroutines: reg.Gauge("go_goroutines", "Current number of goroutines."),
		heapAlloc:  reg.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects."),
		heapObjs:   reg.Gauge("go_heap_objects", "Number of allocated heap objects."),
		gcCycles:   reg.Counter("go_gc_cycles_total", "Completed GC cycles."),
		gcPause:    reg.Histogram("go_gc_pause_seconds", "Stop-the-world GC pause durations.", gcPauseBuckets),
		schedLat:   reg.Histogram("go_sched_latency_seconds", "Time goroutines spent runnable before running.", gcPauseBuckets),
		samples:    []metrics.Sample{{Name: schedLatencyName}},
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.lastNumGC = ms.NumGC
	metrics.Read(c.samples)
	if h := c.samples[0].Value; h.Kind() == metrics.KindFloat64Histogram {
		c.lastSched = append([]uint64(nil), h.Float64Histogram().Counts...)
	}
	return c
}

// Attach hangs Collect off the history's scrape cycle, so every
// window records fresh runtime state. Nil-safe on both sides.
func (c *RuntimeCollector) Attach(h *History) {
	if c == nil {
		return
	}
	h.OnScrape(func(float64) { c.Collect() })
}

// Collect refreshes every go_* metric from current runtime state:
// gauges are overwritten, GC pauses observed since the last Collect
// are folded into the pause histogram, and the runtime's own
// scheduler-latency distribution is imported by bucket delta (each
// new observation counted at its bucket midpoint via the bulk path —
// no per-observation cost). Nil-safe.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	c.goroutines.Set(int64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heapAlloc.Set(int64(ms.HeapAlloc))
	c.heapObjs.Set(int64(ms.HeapObjects))

	if n := ms.NumGC - c.lastNumGC; n > 0 {
		c.gcCycles.Add(uint64(n))
		// PauseNs is a 256-entry ring indexed by GC number; if more than
		// 256 cycles elapsed between collects only the newest 256 remain.
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		// Cycle k's pause lives at PauseNs[(k+255)%256]; the loop index i
		// spans the new cycles' predecessors, putting cycle i+1 at i%256.
		for i := ms.NumGC - n; i < ms.NumGC; i++ {
			c.gcPause.Observe(float64(ms.PauseNs[i%256]) / 1e9)
		}
		c.lastNumGC = ms.NumGC
	}

	metrics.Read(c.samples)
	if h := c.samples[0].Value; h.Kind() == metrics.KindFloat64Histogram {
		fh := h.Float64Histogram()
		if len(c.lastSched) != len(fh.Counts) {
			c.lastSched = make([]uint64, len(fh.Counts))
		}
		for i, n := range fh.Counts {
			d := n - c.lastSched[i]
			c.lastSched[i] = n
			if d == 0 {
				continue
			}
			c.schedLat.observeN(schedBucketMid(fh.Buckets, i), d)
		}
	}
}

// schedBucketMid picks a representative value for runtime/metrics
// bucket i: the midpoint of its bounds, falling back to the finite
// edge when the other is infinite (the runtime pads its distributions
// with -Inf/+Inf sentinels).
func schedBucketMid(bounds []float64, i int) float64 {
	lo, hi := bounds[i], bounds[i+1]
	loInf, hiInf := isInf(lo), isInf(hi)
	switch {
	case loInf && hiInf:
		return 0
	case loInf:
		return hi
	case hiInf:
		return lo
	}
	return (lo + hi) / 2
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }
