// Package obs is a zero-dependency metrics layer for the checkpoint
// pipeline: atomic counters, gauges, and fixed-bucket histograms
// collected in a Registry that can render a deterministic snapshot, a
// Prometheus text-format page, or an expvar variable.
//
// The package exists so the manager, the simulators, and the sweep
// engine can be observed where the cost is paid — retry storms, cache
// hit rates, heap pressure — without attaching a profiler. Two
// properties are contractual:
//
//   - Off-path cheap. Every mutation is a single atomic operation (a
//     CAS loop for the histogram sum), and every metric method is a
//     no-op on a nil receiver, so call sites stay unconditional:
//     instrumented code runs at full speed with no registry attached.
//     The nil fast path is allocation-free (benchmarked in CI).
//
//   - Deterministic exposition. Snapshot and WriteText order metrics
//     by name, so two runs that did the same work render byte-identical
//     pages — the property the golden tests and the reconciliation
//     checks against ckptnet.SessionLog.Summarize rely on.
//
// Metric names follow the Prometheus conventions (snake_case, _total
// suffix on counters, unit suffix on histograms); DESIGN.md §11 lists
// the names each subsystem registers as a stable contract.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter is valid and all methods no-op, so
// uninstrumented call sites cost one predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value. The zero value is ready to
// use; a nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// idiom for high-water marks (peak link concurrency) shared by
// concurrent writers.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value (zero for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float64 value — the shape burn rates,
// ratios, and estimated quantiles take, which the integer Gauge cannot
// carry. The zero value is ready to use; a nil *FloatGauge no-ops.
type FloatGauge struct {
	v atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Value returns the current value (zero for a nil gauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// DefBuckets is the default histogram bucket layout for durations in
// seconds: 1 ms heartbeat jitter through 5-minute idle timeouts.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram counts observations into fixed buckets with inclusive
// upper bounds (Prometheus "le" semantics) plus an implicit +Inf
// overflow bucket, and tracks the running sum. A nil *Histogram
// no-ops. Construct via Registry.Histogram (or NewHistogram for a
// detached instance); bucket bounds are fixed at construction.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last slot is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram builds a detached histogram with the given inclusive
// upper bounds, which must be strictly increasing (panics otherwise;
// bucket layouts are compile-time decisions). Empty bounds give a
// single +Inf bucket.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound is >= v (inclusive "le" bounds); misses
	// land in the +Inf slot. NaN compares false everywhere and so also
	// lands in +Inf rather than corrupting a finite bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		val := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, val) {
			return
		}
	}
}

// observeN folds n identical observations of v into the histogram in
// O(1) — the bulk-import path the runtime collector uses to mirror the
// Go runtime's own bucketed distributions (scheduler latency) without
// n individual Observe calls.
func (h *Histogram) observeN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	add := v * float64(n)
	for {
		old := h.sum.Load()
		val := math.Float64bits(math.Float64frombits(old) + add)
		if h.sum.CompareAndSwap(old, val) {
			return
		}
	}
}

// Count returns the number of observations (zero for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (zero for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot captures a consistent-enough view for exposition: buckets
// are read individually (exact totals only once writers quiesce, like
// every atomic-counter exporter).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
