package obs

// This file is the span/event tracing half of the observability layer:
// where the metrics half (obs.go, registry.go) answers "how much", the
// tracer answers "in what order, and why". It produces a causal
// timeline — spans with a start, a duration and attributes, plus point
// events — that the manager, the simulators and the schedule builder
// feed from their own clocks.
//
// Two properties are contractual, mirroring the metrics layer:
//
//   - Off-path cheap. A nil *Tracer (and the nil *Span it hands out)
//     no-ops on every method and allocates nothing, so call sites stay
//     unconditional. The nil fast path is pinned by
//     BenchmarkObsNilTracer in CI.
//
//   - Deterministic export. Events carry explicit timestamps wherever
//     the emitting subsystem runs on a simulated clock, and Events()
//     orders the full-fidelity sink by (pid, tid, ts, emission seq).
//     Within one pid events are emitted by a single goroutine, so the
//     sorted export of a deterministic simulation is byte-identical at
//     any GOMAXPROCS — the same discipline as parallel.RunGrid.
//     DESIGN.md §12 states the clock rules.
//
// Exports: Chrome trace-event JSON (an array of {name, ph, ts, pid,
// tid} objects loadable in Perfetto or chrome://tracing) and a compact
// JSONL form (the same objects, one per line) that ckpt-report
// timeline replays. A fixed-capacity ring buffer — the flight
// recorder — always retains the last-N events for live inspection
// (/debug/trace/snapshot on the manager's metrics server), with
// evictions counted in an obs metric.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr kinds. Attrs carry typed values in plain struct fields rather
// than an interface so building one never boxes (the nil-tracer path
// must not allocate).
const (
	attrFloat = iota
	attrStr
	attrBool
	attrInt
)

// Attr is one key/value span or event attribute. Construct with
// AttrFloat, AttrInt, AttrStr, or AttrBool.
type Attr struct {
	Key  string
	kind uint8
	f    float64
	i    int64
	s    string
	b    bool
}

// AttrFloat returns a numeric attribute.
func AttrFloat(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// AttrInt returns an integer attribute. Integers keep their own kind
// (not a float64 in disguise) so values beyond 2⁵³ — byte totals on a
// busy link clear it — survive export and re-import exactly.
func AttrInt(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// AttrStr returns a string attribute.
func AttrStr(key, v string) Attr { return Attr{Key: key, kind: attrStr, s: v} }

// AttrBool returns a boolean attribute.
func AttrBool(key string, v bool) Attr { return Attr{Key: key, kind: attrBool, b: v} }

// Value returns the attribute's value as an any (for rendering).
func (a Attr) Value() any {
	switch a.kind {
	case attrStr:
		return a.s
	case attrBool:
		return a.b
	case attrInt:
		return a.i
	}
	return a.f
}

// Trace-event phases (the Chrome trace-event "ph" field subset the
// tracer emits).
const (
	// PhaseSpan is a complete span: Ts start, Dur duration.
	PhaseSpan = 'X'
	// PhaseInstant is a point event: Ts only.
	PhaseInstant = 'i'
)

// TraceEvent is one completed span or instant event. Times are seconds
// on the emitting subsystem's clock (wall for the live manager,
// simulated for the simulators — see DESIGN.md §12).
type TraceEvent struct {
	// Name identifies the operation (DESIGN.md §12 lists the names
	// each subsystem emits).
	Name string
	// Phase is PhaseSpan or PhaseInstant.
	Phase byte
	// Pid and Tid place the event on a track: pid is the unit of
	// isolation (a session, a sample, a grid cell), tid a sequential
	// actor within it (a connection attempt, a worker).
	Pid, Tid uint64
	// Ts is the start time in seconds; Dur the span duration (zero
	// for instants).
	Ts, Dur float64
	// Attrs are the event's attributes, in emission order.
	Attrs []Attr

	// seq is the global emission order, assigned by the tracer. Within
	// one pid (a single emitting goroutine) it preserves program
	// order, which is what makes the sorted export deterministic.
	seq uint64
}

// TracerOptions configures NewTracer. The zero value gives a
// wall-clock tracer with a 4096-event flight recorder and no
// full-fidelity sink.
type TracerOptions struct {
	// Clock supplies "now" in seconds for the convenience methods
	// (StartSpan, Event). Defaults to wall time since tracer creation.
	// Subsystems on simulated time bypass it with the ...At variants.
	Clock func() float64
	// RingCapacity sizes the flight recorder (default 4096; negative
	// disables the ring).
	RingCapacity int
	// FullFidelity retains every event in memory for WriteFile /
	// Events() export. Leave false for long-lived servers that only
	// need the flight recorder.
	FullFidelity bool
	// Metrics, when set, registers the tracer's drop and emission
	// counters (obs_trace_events_total, obs_trace_ring_evictions_total).
	Metrics *Registry
}

// Tracer records spans and events. A nil *Tracer is the off switch:
// every method (and every method of the nil *Span it returns) is an
// allocation-free no-op.
type Tracer struct {
	clock func() float64

	emitted   *Counter // registry-backed, nil when uninstrumented
	evictions *Counter
	dropped   atomic.Uint64 // ring evictions, always tracked

	mu      sync.Mutex
	seq     uint64
	ring    []TraceEvent // capacity ringCap, oldest at ringHead once full
	ringCap int
	head    int
	full    []TraceEvent // full-fidelity sink, nil when disabled
	keep    bool
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	clock := opts.Clock
	if clock == nil {
		start := time.Now()
		clock = func() float64 { return time.Since(start).Seconds() }
	}
	ringCap := opts.RingCapacity
	if ringCap == 0 {
		ringCap = 4096
	}
	if ringCap < 0 {
		ringCap = 0
	}
	t := &Tracer{
		clock:   clock,
		ringCap: ringCap,
		keep:    opts.FullFidelity,
		emitted: opts.Metrics.Counter("obs_trace_events_total",
			"Trace spans and instant events emitted."),
		evictions: opts.Metrics.Counter("obs_trace_ring_evictions_total",
			"Trace events evicted from the flight-recorder ring (dropped from the snapshot)."),
	}
	return t
}

// Now returns the tracer's clock reading (zero for a nil tracer).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// emit records one completed event.
func (t *Tracer) emit(ev TraceEvent) {
	evicted := false
	t.mu.Lock()
	ev.seq = t.seq
	t.seq++
	if t.ringCap > 0 {
		if len(t.ring) < t.ringCap {
			t.ring = append(t.ring, ev)
		} else {
			t.ring[t.head] = ev
			t.head = (t.head + 1) % t.ringCap
			evicted = true
		}
	}
	if t.keep {
		t.full = append(t.full, ev)
	}
	t.mu.Unlock()
	t.emitted.Inc()
	if evicted {
		t.dropped.Add(1)
		t.evictions.Inc()
	}
}

// Dropped returns how many events the flight recorder has evicted
// (zero for a nil tracer). The same count feeds
// obs_trace_ring_evictions_total when the tracer is instrumented.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is an in-flight span handle. A nil *Span (what a nil tracer
// hands out) no-ops on every method.
type Span struct {
	t     *Tracer
	name  string
	pid   uint64
	tid   uint64
	start float64
	attrs []Attr
}

// StartSpan opens a span timed by the tracer's clock.
func (t *Tracer) StartSpan(pid, tid uint64, name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpanAt(pid, tid, name, t.clock())
}

// StartSpanAt opens a span with an explicit start time — the form
// simulated-time subsystems use.
func (t *Tracer) StartSpanAt(pid, tid uint64, name string, ts float64) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, pid: pid, tid: tid, start: ts}
}

// SetAttr appends attributes to the span and returns it for chaining.
func (sp *Span) SetAttr(attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, attrs...)
	return sp
}

// End closes the span at the tracer's clock reading.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.EndAt(sp.t.clock())
}

// EndAt closes the span at an explicit end time.
func (sp *Span) EndAt(ts float64) {
	if sp == nil {
		return
	}
	dur := ts - sp.start
	if dur < 0 {
		dur = 0
	}
	sp.t.emit(TraceEvent{
		Name: sp.name, Phase: PhaseSpan,
		Pid: sp.pid, Tid: sp.tid,
		Ts: sp.start, Dur: dur, Attrs: sp.attrs,
	})
}

// Event records an instant event at the tracer's clock reading.
func (t *Tracer) Event(pid, tid uint64, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.EventAt(pid, tid, name, t.clock(), attrs...)
}

// EventAt records an instant event at an explicit time.
func (t *Tracer) EventAt(pid, tid uint64, name string, ts float64, attrs ...Attr) {
	if t == nil {
		return
	}
	var as []Attr
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	t.emit(TraceEvent{
		Name: name, Phase: PhaseInstant,
		Pid: pid, Tid: tid, Ts: ts, Attrs: as,
	})
}

// SpanAt records an already-completed span with explicit start and
// duration — the form event-calendar simulators use when a span's
// bounds are only known at completion.
func (t *Tracer) SpanAt(pid, tid uint64, name string, ts, dur float64, attrs ...Attr) {
	if t == nil {
		return
	}
	var as []Attr
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	if dur < 0 {
		dur = 0
	}
	t.emit(TraceEvent{
		Name: name, Phase: PhaseSpan,
		Pid: pid, Tid: tid, Ts: ts, Dur: dur, Attrs: as,
	})
}

// eventSort is the canonical export order: by pid, then tid, then
// timestamp, with emission order breaking ties. Each pid is emitted by
// one goroutine, so this order — unlike raw emission order, which
// interleaves concurrent pids nondeterministically — depends only on
// what the program computed, not on scheduling.
func eventSort(evs []TraceEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.seq < b.seq
	})
}

// Events returns the full-fidelity sink in canonical order (empty
// unless the tracer was built with FullFidelity; nil-safe).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceEvent, len(t.full))
	copy(out, t.full)
	t.mu.Unlock()
	eventSort(out)
	return out
}

// Snapshot returns the flight recorder's current contents, oldest
// first (nil-safe). Unlike Events, the snapshot reflects live emission
// order and is bounded by RingCapacity; Dropped reports how much
// history has been evicted.
func (t *Tracer) Snapshot() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// chromeEvent is the wire form of one event: a Chrome trace-event
// object (ts and dur in microseconds). The same object is one line of
// the JSONL format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   uint64         `json:"pid"`
	Tid   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func toChrome(ev TraceEvent) chromeEvent {
	ce := chromeEvent{
		Name:  ev.Name,
		Phase: string(ev.Phase),
		Ts:    ev.Ts * 1e6,
		Pid:   ev.Pid,
		Tid:   ev.Tid,
	}
	if ev.Phase == PhaseSpan {
		d := ev.Dur * 1e6
		ce.Dur = &d
	} else {
		ce.Scope = "t"
	}
	if len(ev.Attrs) > 0 {
		// A map renders deterministically: encoding/json sorts keys.
		ce.Args = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			ce.Args[a.Key] = a.Value()
		}
	}
	return ce
}

func fromChrome(ce chromeEvent) (TraceEvent, error) {
	if ce.Phase == "" {
		return TraceEvent{}, errors.New("obs: trace event without ph")
	}
	ev := TraceEvent{
		Name: ce.Name,
		Pid:  ce.Pid,
		Tid:  ce.Tid,
		Ts:   ce.Ts / 1e6,
	}
	switch ce.Phase[0] {
	case PhaseSpan:
		ev.Phase = PhaseSpan
		if ce.Dur != nil {
			ev.Dur = *ce.Dur / 1e6
		}
	case PhaseInstant, 'I': // legacy spelling
		ev.Phase = PhaseInstant
	default:
		// Foreign phases (counters, metadata…) survive a round trip as
		// instants so a trace produced elsewhere still renders.
		ev.Phase = PhaseInstant
	}
	if len(ce.Args) > 0 {
		keys := make([]string, 0, len(ce.Args))
		for k := range ce.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := ce.Args[k].(type) {
			case string:
				ev.Attrs = append(ev.Attrs, AttrStr(k, v))
			case bool:
				ev.Attrs = append(ev.Attrs, AttrBool(k, v))
			case float64:
				ev.Attrs = append(ev.Attrs, AttrFloat(k, v))
			case int64:
				ev.Attrs = append(ev.Attrs, AttrInt(k, v))
			case json.Number:
				// Integers re-import as integers (ReadTrace decodes with
				// UseNumber so they arrive here undamaged); anything with a
				// fraction or exponent is a float.
				if i, err := v.Int64(); err == nil {
					ev.Attrs = append(ev.Attrs, AttrInt(k, i))
					continue
				}
				f, err := v.Float64()
				if err != nil {
					return TraceEvent{}, fmt.Errorf("obs: trace arg %q: %w", k, err)
				}
				ev.Attrs = append(ev.Attrs, AttrFloat(k, f))
			default:
				ev.Attrs = append(ev.Attrs, AttrStr(k, fmt.Sprint(v)))
			}
		}
	}
	return ev, nil
}

// WriteChromeTrace writes events as Chrome trace-event JSON: one array
// of event objects, loadable in Perfetto or chrome://tracing. The
// output is byte-identical for identical input.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(toChrome(ev))
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceJSONL writes events in the compact JSONL form: the same
// Chrome trace-event objects, one per line, streamable and replayable
// by ckpt-report timeline.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(toChrome(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteChromeTrace or
// WriteTraceJSONL, sniffing the format from the first byte.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	br := bufio.NewReader(r)
	var first byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, nil
			}
			return nil, err
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		first = b
		goto sniffed
	}
sniffed:
	if err := br.UnreadByte(); err != nil {
		return nil, err
	}
	switch first {
	case '[':
		var ces []chromeEvent
		dec := json.NewDecoder(br)
		// Numbers land in the any-typed Args as json.Number, not float64,
		// so integer attributes re-import exactly (fromChrome splits the
		// kinds back apart).
		dec.UseNumber()
		if err := dec.Decode(&ces); err != nil {
			return nil, fmt.Errorf("obs: chrome trace: %w", err)
		}
		out := make([]TraceEvent, 0, len(ces))
		for i, ce := range ces {
			ev, err := fromChrome(ce)
			if err != nil {
				return nil, fmt.Errorf("obs: chrome trace event %d: %w", i, err)
			}
			out = append(out, ev)
		}
		return out, nil
	case '{':
		dec := json.NewDecoder(br)
		dec.UseNumber()
		var out []TraceEvent
		for i := 0; ; i++ {
			var ce chromeEvent
			if err := dec.Decode(&ce); err != nil {
				if errors.Is(err, io.EOF) {
					return out, nil
				}
				return nil, fmt.Errorf("obs: trace jsonl line %d: %w", i+1, err)
			}
			ev, err := fromChrome(ce)
			if err != nil {
				return nil, fmt.Errorf("obs: trace jsonl line %d: %w", i+1, err)
			}
			out = append(out, ev)
		}
	}
	return nil, fmt.Errorf("obs: unrecognized trace format (starts with %q)", first)
}

// WriteFile exports the full-fidelity sink in canonical order to path:
// JSONL when the extension is .jsonl, Chrome trace JSON otherwise.
// Writing is atomic (temp file + rename). A nil tracer or empty path
// no-ops, so CLIs can call it unconditionally.
func (t *Tracer) WriteFile(path string) error {
	if t == nil || path == "" {
		return nil
	}
	events := t.Events()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".trace-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if strings.HasSuffix(path, ".jsonl") {
		err = WriteTraceJSONL(tmp, events)
	} else {
		err = WriteChromeTrace(tmp, events)
	}
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SnapshotHandler serves the flight recorder as Chrome trace-event
// JSON — mount it at /debug/trace/snapshot. Safe on a nil tracer
// (serves an empty trace).
func (t *Tracer) SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteChromeTrace(w, t.Snapshot())
	})
}
