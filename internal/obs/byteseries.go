package obs

// ByteSeries is the bytes-on-wire accumulator for parallel replays:
// fixed-width time bins of exact int64 byte counts on a caller-supplied
// clock (virtual in campaigns, wall in servers). Unlike History — which
// scrapes shared cumulative state and therefore needs a sequential
// clock to stay deterministic — a ByteSeries is written at event time
// by many goroutines at once, and stays bit-identical at any
// GOMAXPROCS because each Add is a single atomic integer addition and
// integer adds commute: the bins hold the same totals no matter how
// the scheduler interleaves the writers. That is why the bins are
// int64 bytes, not float64 megabytes — float addition does not commute
// in rounding, integer addition does.

import "sync/atomic"

// ByteSeries accumulates byte counts into fixed-width time bins. The
// nil *ByteSeries no-ops, matching the rest of the package.
type ByteSeries struct {
	width float64
	bins  []atomic.Int64
}

// NewByteSeries builds a series of n bins, each width seconds wide,
// covering [0, n*width) on the caller's clock. Panics if width <= 0 or
// n <= 0 (bin layouts are compile-time decisions, like histogram
// bounds).
func NewByteSeries(width float64, n int) *ByteSeries {
	if width <= 0 || n <= 0 {
		panic("obs: ByteSeries needs positive width and bin count")
	}
	return &ByteSeries{width: width, bins: make([]atomic.Int64, n)}
}

// Add records n bytes at timestamp ts. Timestamps before the first bin
// clamp to it and timestamps past the last clamp to it, so totals stay
// exact even when an event lands outside the configured horizon.
// Safe for concurrent use; allocation-free; nil-safe.
func (b *ByteSeries) Add(ts float64, n int64) {
	if b == nil {
		return
	}
	i := int(ts / b.width)
	if i < 0 {
		i = 0
	}
	if i >= len(b.bins) {
		i = len(b.bins) - 1
	}
	b.bins[i].Add(n)
}

// Width returns the bin width in seconds (zero for nil).
func (b *ByteSeries) Width() float64 {
	if b == nil {
		return 0
	}
	return b.width
}

// Bins copies the current bin totals out (nil slice for a nil series).
func (b *ByteSeries) Bins() []int64 {
	if b == nil {
		return nil
	}
	out := make([]int64, len(b.bins))
	for i := range b.bins {
		out[i] = b.bins[i].Load()
	}
	return out
}

// Total returns the sum over all bins (zero for nil).
func (b *ByteSeries) Total() int64 {
	if b == nil {
		return 0
	}
	var t int64
	for i := range b.bins {
		t += b.bins[i].Load()
	}
	return t
}

// MBPerSec renders the bins as a megabytes-per-second series — the
// unit the delta-vs-full overhead plots use.
func (b *ByteSeries) MBPerSec() []float64 {
	if b == nil {
		return nil
	}
	out := make([]float64, len(b.bins))
	for i := range b.bins {
		out[i] = float64(b.bins[i].Load()) / (1 << 20) / b.width
	}
	return out
}
