package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("jobs_total", "jobs"); again != c {
		t.Error("re-registration did not return the same counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 5 {
		t.Error("SetMax lowered the gauge")
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Errorf("SetMax = %d, want 11", g.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound ("le")
// semantics, including observations landing exactly on a bound and in
// the +Inf overflow slot.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.0000001, 5, 7, 10, 11, math.Inf(1)} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 2, 2, 2} // (-inf,1], (1,5], (5,10], (10,+inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if !math.IsInf(s.Sum, 1) {
		t.Errorf("sum = %g, want +Inf", s.Sum)
	}

	// NaN must not corrupt a finite bucket: it lands in +Inf.
	h2 := NewHistogram([]float64{1})
	h2.Observe(math.NaN())
	if s2 := h2.snapshot(); s2.Counts[0] != 0 || s2.Counts[1] != 1 {
		t.Errorf("NaN bucketed as %v", s2.Counts)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestSnapshotDeterminism requires two registries populated in
// different orders to JSON-encode byte-identically.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "help for "+name)
		}
		r.Gauge("zz_gauge", "").Set(3)
		r.Histogram("hh_seconds", "", []float64{1, 2}).Observe(1.5)
		r.Counter(order[0], "").Add(2)
		return r
	}
	a := build([]string{"b_total", "a_total", "c_total"})
	b := build([]string{"c_total", "b_total", "a_total"})
	// Equalize the values (order[0] differs above).
	a.Counter("c_total", "").Add(2)
	b.Counter("b_total", "").Add(2)

	ja, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("snapshots differ:\n%s\n%s", ja, jb)
	}

	var ta, tb bytes.Buffer
	if err := a.WriteText(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Errorf("text expositions differ:\n%s\n%s", ta.String(), tb.String())
	}
}

// TestWriteTextGolden pins the Prometheus text format byte-for-byte —
// the exposition is a stable contract (DESIGN.md §11).
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ckpt_retries_total", "Session resumptions.").Add(3)
	r.Gauge("ckpt_active_sessions", "Live sessions.").Set(2)
	h := r.Histogram("ckpt_gap_seconds", "Heartbeat gaps.", []float64{0.5, 2.5})
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(100)

	const want = `# HELP ckpt_active_sessions Live sessions.
# TYPE ckpt_active_sessions gauge
ckpt_active_sessions 2
# HELP ckpt_gap_seconds Heartbeat gaps.
# TYPE ckpt_gap_seconds histogram
ckpt_gap_seconds_bucket{le="0.5"} 2
ckpt_gap_seconds_bucket{le="2.5"} 3
ckpt_gap_seconds_bucket{le="+Inf"} 4
ckpt_gap_seconds_sum 101.5
ckpt_gap_seconds_count 4
# HELP ckpt_retries_total Session resumptions.
# TYPE ckpt_retries_total counter
ckpt_retries_total 3
`
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Errorf("text exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestExpvarVar(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(9)
	var snap Snapshot
	if err := json.Unmarshal([]byte(r.ExpvarVar().String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["n_total"] != 9 {
		t.Errorf("expvar snapshot = %+v", snap)
	}
}

// TestNilRegistryAndMetrics pins the off switch: every operation on a
// nil registry or nil metric is a safe no-op and expositions render
// empty.
func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c_seconds", "", DefBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live metrics")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	g.SetMax(9)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics accumulated state")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteText = %q, %v", buf.String(), err)
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil Snapshot = %+v", s)
	}
}

// TestNilFastPathAllocationFree proves the contractual property the
// gated benchmarks depend on: instrumentation against a nil registry
// allocates nothing.
func TestNilFastPathAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c_seconds", "", DefBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.SetMax(2)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Errorf("nil fast path allocates %.1f objects per op", allocs)
	}
}

func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("peak", "")
	h := r.Histogram("v", "", []float64{10, 100})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Errorf("gauge max = %d, want %d", g.Value(), workers*per-1)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d", h.Count())
	}
	s := h.snapshot()
	var total uint64
	for _, n := range s.Counts {
		total += n
	}
	if total != h.Count() {
		t.Errorf("bucket sum %d != count %d", total, h.Count())
	}
}

// TestPrometheusExposition round-trips the text exposition: parse
// every sample line back and check the histogram's cumulative +Inf
// bucket, _count and _sum agree with the Snapshot of the same
// registry.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ckpt_exp_total", "a counter").Add(7)
	r.Gauge("ckpt_exp_gauge", "a gauge").Set(-3)
	h := r.Histogram("ckpt_exp_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparsable sample line %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		samples[name] = f
	}

	snap := r.Snapshot()
	if got := samples["ckpt_exp_total"]; got != float64(snap.Counters["ckpt_exp_total"]) || got != 7 {
		t.Errorf("counter sample %g, snapshot %d", got, snap.Counters["ckpt_exp_total"])
	}
	if got := samples["ckpt_exp_gauge"]; got != -3 {
		t.Errorf("gauge sample %g, want -3", got)
	}

	hs := snap.Histograms["ckpt_exp_seconds"]
	// The +Inf bucket is cumulative: it must equal _count and the
	// total observation count.
	inf := samples[`ckpt_exp_seconds_bucket{le="+Inf"}`]
	if inf != float64(hs.Count) || samples["ckpt_exp_seconds_count"] != float64(hs.Count) || hs.Count != 5 {
		t.Errorf("+Inf bucket %g, _count %g, snapshot count %d",
			inf, samples["ckpt_exp_seconds_count"], hs.Count)
	}
	if got := samples["ckpt_exp_seconds_sum"]; math.Abs(got-hs.Sum) > 1e-9 || math.Abs(got-56.05) > 1e-9 {
		t.Errorf("_sum %g, snapshot %g, want 56.05", got, hs.Sum)
	}
	// Cumulative buckets must be monotone and match the per-bucket
	// snapshot counts when re-differenced.
	cum := uint64(0)
	for i, le := range []string{"0.1", "1", "10", "+Inf"} {
		got := samples[`ckpt_exp_seconds_bucket{le="`+le+`"}`]
		cum += hs.Counts[i]
		if got != float64(cum) {
			t.Errorf("bucket le=%s: exposition %g, snapshot cumulative %d", le, got, cum)
		}
	}
}

// TestExpvarBridgeShape pins the expvar output shape: the published
// Var renders as one JSON object with counters/gauges/histograms maps
// identical to Snapshot's encoding.
func TestExpvarBridgeShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("ckpt_expvar_total", "").Inc()
	r.Histogram("ckpt_expvar_seconds", "", []float64{1}).Observe(0.5)

	var got map[string]json.RawMessage
	if err := json.Unmarshal([]byte(r.ExpvarVar().String()), &got); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	for _, key := range []string{"counters", "histograms"} {
		if _, ok := got[key]; !ok {
			t.Errorf("expvar output missing %q: %v", key, got)
		}
	}
	if _, ok := got["gauges"]; ok {
		t.Error("empty gauge map should be omitted")
	}

	want, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	gotRaw := r.ExpvarVar().String()
	if string(want) != gotRaw {
		t.Errorf("expvar bridge diverges from Snapshot:\nexpvar:   %s\nsnapshot: %s", gotRaw, want)
	}
	var hist struct {
		H map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(gotRaw), &hist); err != nil {
		t.Fatal(err)
	}
	hs := hist.H["ckpt_expvar_seconds"]
	if hs.Count != 1 || len(hs.Counts) != len(hs.Bounds)+1 {
		t.Errorf("histogram shape: %+v (want count 1, len(counts)=len(bounds)+1)", hs)
	}
}
