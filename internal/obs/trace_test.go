package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// manualClock is a deterministic test clock advanced by hand.
type manualClock struct{ now float64 }

func (c *manualClock) clock() func() float64 { return func() float64 { return c.now } }

func TestTracerSpansAndEvents(t *testing.T) {
	clk := &manualClock{}
	tr := NewTracer(TracerOptions{Clock: clk.clock(), FullFidelity: true})

	sp := tr.StartSpan(1, 1, "session").SetAttr(AttrStr("job", "m1/0"))
	clk.now = 2.5
	tr.Event(1, 1, "heartbeat", AttrFloat("gap_s", 2.5))
	clk.now = 4
	sp.End()
	tr.SpanAt(2, 1, "transfer", 1, 3, AttrInt("mb", 500), AttrBool("torn", false))
	tr.EventAt(2, 1, "fail", 9)

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Canonical order: pid 1 (heartbeat@2.5, session span@0), pid 2.
	if evs[0].Name != "session" || evs[0].Ts != 0 || evs[0].Dur != 4 {
		t.Errorf("first event = %+v, want session span [0,4]", evs[0])
	}
	if evs[1].Name != "heartbeat" || evs[1].Phase != PhaseInstant {
		t.Errorf("second event = %+v, want heartbeat instant", evs[1])
	}
	if evs[2].Name != "transfer" || evs[2].Dur != 3 {
		t.Errorf("third event = %+v, want transfer span dur 3", evs[2])
	}
	if got := evs[0].Attrs[0]; got.Key != "job" || got.Value() != "m1/0" {
		t.Errorf("session attr = %+v", got)
	}
}

func TestTracerRingEviction(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{RingCapacity: 3, Metrics: reg})
	for i := range 5 {
		tr.EventAt(1, 1, "e", float64(i))
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(snap))
	}
	// Oldest first: timestamps 2, 3, 4 survive.
	for i, want := range []float64{2, 3, 4} {
		if snap[i].Ts != want {
			t.Errorf("snap[%d].Ts = %g, want %g", i, snap[i].Ts, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
	s := reg.Snapshot()
	if got := s.Counters["obs_trace_ring_evictions_total"]; got != 2 {
		t.Errorf("eviction counter = %d, want 2", got)
	}
	if got := s.Counters["obs_trace_events_total"]; got != 5 {
		t.Errorf("emitted counter = %d, want 5", got)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(TracerOptions{FullFidelity: true, Clock: func() float64 { return 0 }})
	tr.SpanAt(1, 2, "work", 0.5, 1.5, AttrFloat("t_opt", 1000))
	tr.EventAt(1, 2, "mark", 2)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	// Must be a JSON array of objects with name/ph/ts/pid/tid.
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("not valid JSON array: %v\n%s", err, buf.String())
	}
	if len(raw) != 2 {
		t.Fatalf("got %d objects, want 2", len(raw))
	}
	for i, obj := range raw {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("event %d missing %q: %v", i, key, obj)
			}
		}
	}
	if raw[0]["ph"] != "X" || raw[0]["dur"] != 1.5e6 || raw[0]["ts"] != 0.5e6 {
		t.Errorf("span object = %v", raw[0])
	}
	if raw[1]["ph"] != "i" || raw[1]["s"] != "t" {
		t.Errorf("instant object = %v", raw[1])
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTracer(TracerOptions{FullFidelity: true, Clock: func() float64 { return 0 }})
	tr.SpanAt(3, 1, "transfer", 10, 110, AttrInt("seq", 7), AttrStr("kind", "recovery"))
	tr.EventAt(3, 1, "retry", 120, AttrBool("resumed", true))
	want := tr.Events()

	for _, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return WriteChromeTrace(b, want) },
		func(b *bytes.Buffer) error { return WriteTraceJSONL(b, want) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round trip: %d events, want %d", len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Name != w.Name || g.Phase != w.Phase || g.Pid != w.Pid || g.Tid != w.Tid ||
				g.Ts != w.Ts || g.Dur != w.Dur || len(g.Attrs) != len(w.Attrs) {
				t.Errorf("event %d: got %+v, want %+v", i, g, w)
			}
		}
	}

	if _, err := ReadTrace(strings.NewReader("nonsense")); err == nil {
		t.Error("garbage input should error")
	}
	if evs, err := ReadTrace(strings.NewReader("  \n")); err != nil || len(evs) != 0 {
		t.Errorf("blank input: evs=%v err=%v", evs, err)
	}
}

// TestTracerDeterministicExport pins the export-order contract: events
// emitted from concurrent goroutines (one pid each, as the simulators
// do) serialize byte-identically regardless of interleaving.
func TestTracerDeterministicExport(t *testing.T) {
	render := func() []byte {
		tr := NewTracer(TracerOptions{FullFidelity: true, Clock: func() float64 { return 0 }})
		var wg sync.WaitGroup
		for pid := uint64(1); pid <= 8; pid++ {
			wg.Add(1)
			go func(pid uint64) {
				defer wg.Done()
				for i := range 50 {
					tr.SpanAt(pid, 1, "op", float64(i), 0.5, AttrInt("i", int64(i)))
				}
			}(pid)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("concurrent emission produced different exports")
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(1, 1, "x").SetAttr(AttrStr("k", "v"))
	sp.End()
	sp.EndAt(3)
	tr.Event(1, 1, "e", AttrFloat("v", 1))
	tr.EventAt(1, 1, "e", 2)
	tr.SpanAt(1, 1, "s", 0, 1)
	if tr.Events() != nil || tr.Snapshot() != nil || tr.Dropped() != 0 || tr.Now() != 0 {
		t.Error("nil tracer leaked state")
	}
	if err := tr.WriteFile("should-not-exist.json"); err != nil {
		t.Errorf("nil WriteFile: %v", err)
	}
	rec := httptest.NewRecorder()
	tr.SnapshotHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/snapshot", nil))
	var raw []any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil || len(raw) != 0 {
		t.Errorf("nil snapshot handler body = %q", rec.Body.String())
	}
}

func TestNilTracerAllocationFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan(1, 1, "session")
		sp.SetAttr(AttrFloat("t_opt", 1036), AttrStr("model", "weibull"))
		sp.End()
		tr.Event(1, 1, "heartbeat", AttrFloat("gap_s", 10))
		tr.SpanAt(1, 1, "transfer", 0, 110, AttrInt("mb", 500))
	})
	if allocs != 0 {
		t.Errorf("nil tracer path allocates %.1f/op, want 0", allocs)
	}
}

func TestSnapshotHandlerServesRing(t *testing.T) {
	tr := NewTracer(TracerOptions{RingCapacity: 8})
	tr.EventAt(1, 1, "boot", 0, AttrStr("v", "1"))
	rec := httptest.NewRecorder()
	tr.SnapshotHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/snapshot", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	evs, err := ReadTrace(rec.Body)
	if err != nil || len(evs) != 1 || evs[0].Name != "boot" {
		t.Errorf("snapshot round trip: evs=%v err=%v", evs, err)
	}
}

// TestAttrIntExactRoundTrip pins that integer attributes survive both
// export formats exactly, including values a float64 cannot represent
// (above 2^53 — the bug this test regresses: AttrInt used to store its
// value as a float).
func TestAttrIntExactRoundTrip(t *testing.T) {
	const big = int64(1)<<60 + 1 // rounds if it ever passes through float64
	tr := NewTracer(TracerOptions{FullFidelity: true, Clock: func() float64 { return 0 }})
	tr.SpanAt(1, 1, "transfer", 0, 1,
		AttrInt("bytes", big), AttrInt("neg", -big), AttrFloat("ratio", 0.25))
	want := tr.Events()
	if got := want[0].Attrs[0].Value(); got != any(big) {
		t.Fatalf("in-memory attr = %v (%T), want %d (int64)", got, got, big)
	}

	for name, write := range map[string]func(*bytes.Buffer) error{
		"chrome": func(b *bytes.Buffer) error { return WriteChromeTrace(b, want) },
		"jsonl":  func(b *bytes.Buffer) error { return WriteTraceJSONL(b, want) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		if s := buf.String(); strings.Contains(s, "e+") || strings.Contains(s, "E+") {
			t.Errorf("%s: integer attr rendered with an exponent: %s", name, s)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		attrs := got[0].Attrs // fromChrome sorts by key: bytes, neg, ratio
		if v := attrs[0].Value(); v != any(big) {
			t.Errorf("%s: bytes = %v (%T), want %d (int64)", name, v, v, big)
		}
		if v := attrs[1].Value(); v != any(-big) {
			t.Errorf("%s: neg = %v (%T), want %d (int64)", name, v, v, -big)
		}
		if v := attrs[2].Value(); v != any(0.25) {
			t.Errorf("%s: ratio = %v (%T), want 0.25 (float64)", name, v, v)
		}
	}
}
