package markov

import (
	"encoding/json"
	"sync"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// TestDecodedScheduleConcurrentLookup is the regression test for the
// lazy boundary-rebuild race: a JSON-decoded schedule arrives with an
// empty bounds cache, and before the sync.Once guard two goroutines
// calling Lookup simultaneously both saw len(s.bounds) != n and raced
// on the rebuild (caught by -race, and capable of serving a lookup
// from a half-written slice). Eight goroutines hammer one decoded
// schedule and every answer must match a warmed reference.
func TestDecodedScheduleConcurrentLookup(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	built, err := m.BuildSchedule(0, ScheduleOptions{Horizon: 24 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if built.Len() < 3 {
		t.Fatalf("want an aperiodic schedule with several intervals, got %d", built.Len())
	}

	blob, err := json.Marshal(built)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Schedule
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}

	// Reference answers from the already-warmed builder output.
	horizon := built.Horizon()
	ages := make([]float64, 0, 512)
	for i := 0; i < 512; i++ {
		ages = append(ages, horizon*1.25*float64(i)/511)
	}
	want := make([]float64, len(ages))
	for i, age := range ages {
		T, ok := built.IntervalAt(age)
		if !ok {
			t.Fatalf("reference lookup failed at age %g", age)
		}
		want[i] = T
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				// Stagger the starting index so the goroutines hit the
				// first (cache-building) lookup at different ages.
				for i := range ages {
					j := (i + g*len(ages)/goroutines) % len(ages)
					T, extended, ok := decoded.Lookup(ages[j])
					if !ok || T != want[j] {
						errs <- "lookup mismatch"
						return
					}
					if wantExt := ages[j] >= horizon; extended != wantExt {
						errs <- "extended flag mismatch"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
