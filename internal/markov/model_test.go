package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func mustCosts(t *testing.T, c, r, l float64) Costs {
	t.Helper()
	cs, err := NewCosts(c, r, l)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func testModels(t *testing.T) []Model {
	t.Helper()
	costs := mustCosts(t, 100, 100, 100)
	return []Model{
		{Avail: dist.NewExponential(1.0 / 9000), Costs: costs},
		{Avail: dist.NewWeibull(0.43, 3409), Costs: costs},
		{Avail: dist.NewHyperexponential([]float64{0.6, 0.4}, []float64{1.0 / 600, 1.0 / 30000}), Costs: costs},
	}
}

func TestNewCostsDefaults(t *testing.T) {
	c, err := NewCosts(120, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if c.R != 120 || c.L != 120 {
		t.Errorf("defaults not applied: %+v", c)
	}
	if _, err := NewCosts(-1, 0, 0); err == nil {
		t.Error("negative C should error")
	}
	c2, err := NewCosts(50, 75, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.R != 75 || c2.L != 0 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestTransitionsAreProbabilities(t *testing.T) {
	for _, m := range testModels(t) {
		m := m
		f := func(T, age float64) bool {
			T = 1 + math.Abs(math.Mod(T, 50000))
			age = math.Abs(math.Mod(age, 100000))
			tr := m.At(T, age)
			ok := almostEqual(tr.P01+tr.P02, 1, 1e-10) &&
				almostEqual(tr.P21+tr.P22, 1, 1e-10) &&
				tr.P01 >= 0 && tr.P02 >= 0 && tr.P21 >= 0 && tr.P22 >= 0
			// Conditional failure times cannot exceed the interval span.
			if tr.P02 > 1e-12 {
				ok = ok && tr.K02 <= tr.K01+1e-9 && tr.K02 >= 0
			}
			if tr.P22 > 1e-12 {
				ok = ok && tr.K22 <= tr.K21+1e-9 && tr.K22 >= 0
			}
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", m.Avail.Name(), err)
		}
	}
}

func TestGammaLowerBound(t *testing.T) {
	// Committing an interval takes at least C+T, so Γ >= C+T and the
	// efficiency never exceeds T/(T+C).
	for _, m := range testModels(t) {
		m := m
		f := func(T, age float64) bool {
			T = 1 + math.Abs(math.Mod(T, 20000))
			age = math.Abs(math.Mod(age, 50000))
			g := m.Gamma(T, age)
			if g < m.Costs.C+T-1e-9 {
				return false
			}
			eff := m.Efficiency(T, age)
			return eff > 0 && eff <= T/(T+m.Costs.C)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", m.Avail.Name(), err)
		}
	}
}

func TestGammaInvalidT(t *testing.T) {
	m := testModels(t)[0]
	if !math.IsInf(m.Gamma(0, 0), 1) || !math.IsInf(m.Gamma(-5, 0), 1) {
		t.Error("Gamma at non-positive T should be +Inf")
	}
}

// monteCarloGamma estimates the expected time to commit one interval
// by direct simulation of the chain the equations describe: the first
// attempt needs C+T uninterrupted under the age-conditioned law; each
// retry needs L+R+T uninterrupted under the unconditional law.
func monteCarloGamma(m Model, T, age float64, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	cond := dist.NewConditional(m.Avail, age)
	span0 := m.Costs.C + T
	span2 := m.Costs.L + m.Costs.R + T
	total := 0.0
	for range n {
		life := cond.Rand(rng)
		if life >= span0 {
			total += span0
			continue
		}
		total += life
		for {
			life = m.Avail.Rand(rng)
			if life >= span2 {
				total += span2
				break
			}
			total += life
		}
	}
	return total / float64(n)
}

func TestGammaMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo validation skipped in -short mode")
	}
	for _, m := range testModels(t) {
		for _, tc := range []struct{ T, age float64 }{
			{500, 0}, {500, 700}, {2000, 5000}, {50, 0},
		} {
			want := m.Gamma(tc.T, tc.age)
			got := monteCarloGamma(m, tc.T, tc.age, 400000, 99)
			if !almostEqual(got, want, 0.02) {
				t.Errorf("%s T=%g age=%g: Γ=%g, Monte Carlo %g",
					m.Avail.Name(), tc.T, tc.age, want, got)
			}
		}
	}
}

func TestExponentialToptIsAgeIndependent(t *testing.T) {
	m := Model{Avail: dist.NewExponential(1.0 / 9000), Costs: mustCosts(t, 100, 100, 100)}
	t0, _, err := m.Topt(0, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range []float64{10, 1000, 50000} {
		ti, _, err := m.Topt(age, OptimizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(ti, t0, 1e-3) {
			t.Errorf("memoryless T_opt drifted with age %g: %g vs %g", age, ti, t0)
		}
	}
}

func TestToptIsALocalMinimum(t *testing.T) {
	for _, m := range testModels(t) {
		for _, age := range []float64{0, 300, 8000} {
			T, ratio, err := m.Topt(age, OptimizeOptions{})
			if err != nil {
				t.Fatalf("%s: %v", m.Avail.Name(), err)
			}
			for _, factor := range []float64{0.5, 0.8, 1.25, 2} {
				other := m.OverheadRatio(T*factor, age)
				if other < ratio-1e-9 {
					t.Errorf("%s age=%g: ratio(%g·T_opt)=%g < ratio(T_opt)=%g",
						m.Avail.Name(), age, factor, other, ratio)
				}
			}
		}
	}
}

func TestToptIncreasesWithCheckpointCost(t *testing.T) {
	// Costlier checkpoints must push the optimizer toward longer work
	// intervals (classic checkpoint-interval behavior).
	avail := dist.NewExponential(1.0 / 9000)
	prev := 0.0
	for _, c := range []float64{10, 50, 200, 800} {
		m := Model{Avail: avail, Costs: mustCosts(t, c, c, c)}
		T, _, err := m.Topt(0, OptimizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if T <= prev {
			t.Errorf("T_opt(%g) = %g not greater than %g", c, T, prev)
		}
		prev = T
	}
}

func TestToptGrowsWithAgeForHeavyTail(t *testing.T) {
	// Decreasing hazard: the longer the machine has been up, the
	// longer it will stay up, so intervals stretch — the paper's core
	// aperiodic-schedule mechanism. (At very small ages the infant-
	// mortality spike makes T_opt non-monotone — failure is likely no
	// matter what, so longer T amortizes C better — hence this test
	// starts in the asymptotic regime.)
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	prevT := 0.0
	for _, age := range []float64{1000, 10000, 100000, 1000000} {
		T, _, err := m.Topt(age, OptimizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if T <= prevT {
			t.Errorf("heavy-tail T_opt not increasing: age %g gives %g (prev %g)", age, T, prevT)
		}
		prevT = T
	}
}

func TestToptYoungApproximation(t *testing.T) {
	// For C much smaller than the MTBF and exponential failures, the
	// classical first-order optimum is sqrt(2·C·MTBF). The full model
	// (failures during C and R allowed) must land in its vicinity.
	mtbf := 100000.0
	c := 10.0
	m := Model{Avail: dist.NewExponential(1 / mtbf), Costs: mustCosts(t, c, c, c)}
	T, _, err := m.Topt(0, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	young := math.Sqrt(2 * c * mtbf)
	if T < 0.7*young || T > 1.4*young {
		t.Errorf("T_opt = %g, Young approximation %g", T, young)
	}
}

func TestToptDegenerate(t *testing.T) {
	// A resource whose lifetime is (almost) never longer than L+R+T
	// for any T in range cannot complete a restart: the optimizer must
	// report degeneracy rather than return a bogus interval.
	m := Model{
		Avail: dist.NewWeibull(8, 10), // lifetimes tightly around 10 s
		Costs: mustCosts(t, 500, 500, 500),
	}
	_, _, err := m.Topt(0, OptimizeOptions{TMin: 1, TMax: 1000})
	if err == nil {
		t.Error("expected ErrDegenerate for impossible restart")
	}
}

func TestGammaMonotoneInCosts(t *testing.T) {
	// Costlier checkpoints and recoveries can only slow the chain
	// down: Γ is nondecreasing in C and in R at fixed T and age.
	avail := dist.NewWeibull(0.43, 3409)
	f := func(T, age, c1, c2 float64) bool {
		T = 10 + math.Abs(math.Mod(T, 5000))
		age = math.Abs(math.Mod(age, 20000))
		c1 = 1 + math.Abs(math.Mod(c1, 2000))
		c2 = 1 + math.Abs(math.Mod(c2, 2000))
		lo, hi := math.Min(c1, c2), math.Max(c1, c2)
		// In C (R fixed).
		gLo := Model{Avail: avail, Costs: Costs{C: lo, R: 100, L: 100}}.Gamma(T, age)
		gHi := Model{Avail: avail, Costs: Costs{C: hi, R: 100, L: 100}}.Gamma(T, age)
		if gLo > gHi+1e-6 {
			return false
		}
		// In R (C fixed).
		gLo = Model{Avail: avail, Costs: Costs{C: 100, R: lo, L: 100}}.Gamma(T, age)
		gHi = Model{Avail: avail, Costs: Costs{C: 100, R: hi, L: 100}}.Gamma(T, age)
		return gLo <= gHi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOptimalRatioMonotoneInC(t *testing.T) {
	// The optimized overhead ratio (cost per unit work) can only grow
	// with the checkpoint cost.
	avail := dist.NewHyperexponential([]float64{0.6, 0.4}, []float64{1.0 / 600, 1.0 / 30000})
	prev := 0.0
	for _, c := range []float64{25, 100, 400, 1600} {
		m := Model{Avail: avail, Costs: Costs{C: c, R: c, L: c}}
		_, ratio, err := m.Topt(200, OptimizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ratio < prev {
			t.Errorf("optimal ratio fell when C rose to %g: %g < %g", c, ratio, prev)
		}
		prev = ratio
	}
}

func TestEfficiencyMatchesReciprocalRatio(t *testing.T) {
	m := testModels(t)[1]
	f := func(T, age float64) bool {
		T = 1 + math.Abs(math.Mod(T, 10000))
		age = math.Abs(math.Mod(age, 10000))
		return almostEqual(m.Efficiency(T, age)*m.OverheadRatio(T, age), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGammaEvaluatorMatchesModel pins the hoisting invariant: the
// per-search evaluator, which precomputes the age-constant
// special-function terms, must reproduce Model.Gamma bitwise — the
// warm-start optimizer's bit-identity argument depends on it.
func TestGammaEvaluatorMatchesModel(t *testing.T) {
	costs := mustCosts(t, 100, 150, 120)
	dists := []dist.Distribution{
		dist.NewExponential(1.0 / 9000),
		dist.NewWeibull(0.43, 3409),
		dist.NewHyperexponential([]float64{0.6, 0.3, 0.1}, []float64{1.0 / 500, 1.0 / 5000, 1.0 / 50000}),
	}
	for _, d := range dists {
		m := Model{Avail: d, Costs: costs}
		for _, age := range []float64{0, 1, 250, 3409, 20000} {
			e := m.evaluator(age)
			for _, T := range []float64{1, 30, 500, 2500, 50000} {
				want := m.Gamma(T, age)
				got := e.gamma(T)
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Errorf("%s: gamma(T=%g, age=%g) evaluator %v != model %v",
						d.Name(), T, age, got, want)
				}
				wantR := want / T
				if gotR := e.ratio(T); gotR != wantR && !(math.IsNaN(gotR) && math.IsNaN(wantR)) {
					t.Errorf("%s: ratio(T=%g, age=%g) evaluator %v != model %v",
						d.Name(), T, age, gotR, wantR)
				}
			}
		}
	}
}

// TestToptWarmMatchesCold pins the warm-start contract: wherever the
// warm window accepts, its result is bitwise identical to the cold
// full-grid search.
func TestToptWarmMatchesCold(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	var opts OptimizeOptions
	opts.setDefaults()
	prevT := 0.0
	age := 0.0
	warmHits := 0
	for i := 0; i < 40; i++ {
		coldT, coldR, err := m.Topt(age, opts)
		if err != nil {
			t.Fatal(err)
		}
		if prevT > 0 {
			if T, ratio, _, ok := m.toptWarm(age, prevT, opts); ok {
				warmHits++
				if T != coldT || ratio != coldR {
					t.Fatalf("interval %d (age %g): warm (%v, %v) != cold (%v, %v)",
						i, age, T, ratio, coldT, coldR)
				}
			}
		}
		prevT = coldT
		age += coldT + m.Costs.C
	}
	if warmHits < 30 {
		t.Errorf("warm start accepted only %d/39 times; expected it to carry nearly every interval", warmHits)
	}
}

// TestToptWarmDeclinesDeepTail pins the survival guard: once the
// conditioning mass S(age) vanishes, the objective is numerical noise
// and the warm window must hand back to the cold full-grid scan.
func TestToptWarmDeclinesDeepTail(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 50, 50, 50)}
	var opts OptimizeOptions
	opts.setDefaults()
	// S(2e6) for Weibull(0.43, 3409) is ~1e-7, below warmMinSurvival.
	if s := m.Avail.Survival(2e6); s >= warmMinSurvival {
		t.Fatalf("test premise broken: S(2e6) = %g", s)
	}
	if _, _, _, ok := m.toptWarm(2e6, 5000, opts); ok {
		t.Error("warm start accepted an age deep in the availability tail")
	}
	// Cold Topt still answers there.
	if _, _, err := m.Topt(2e6, opts); err != nil {
		t.Errorf("cold Topt failed in the tail: %v", err)
	}
}
