package markov

import "github.com/cycleharvest/ckptsched/internal/obs"

// metrics holds the package's observability hooks. All fields are
// nil-safe obs metrics, so the zero value (instrumentation off) costs
// one predictable branch per schedule build and nothing per Γ probe.
var metrics struct {
	// builds counts BuildSchedule completions; warmHits and coldScans
	// partition its per-interval T_opt searches into warm-start
	// successes and full 64-point geometric rescans.
	builds, warmHits, coldScans *obs.Counter
	// goldenEvals counts objective (Γ(T)/T) evaluations performed by
	// the coarse-scan + golden-section optimizers — the unit of work
	// behind every T_opt search.
	goldenEvals *obs.Counter
}

// Instrument points the package's schedule-search metrics at r
// (DESIGN.md §11 lists the names). Call it before any scheduling work
// begins — typically from main — and do not call it concurrently with
// BuildSchedule or Topt. Instrument(nil) turns instrumentation off.
func Instrument(r *obs.Registry) {
	metrics.builds = r.Counter("markov_schedule_builds_total",
		"Aperiodic schedules built by BuildSchedule.")
	metrics.warmHits = r.Counter("markov_warm_hits_total",
		"Schedule intervals solved by the warm-start window search.")
	metrics.coldScans = r.Counter("markov_cold_scans_total",
		"Schedule intervals solved by the full geometric rescan (first interval or warm-start fallback).")
	metrics.goldenEvals = r.Counter("markov_golden_evals_total",
		"Overhead-ratio objective evaluations during T_opt searches.")
}

// countedRatio wraps f, counting evaluations into *n. The optimizer
// sees the identical function values, so abscissae and ratios are
// unchanged; the count is flushed to the registry in one atomic add
// when the search finishes.
func countedRatio(f func(float64) float64, n *uint64) func(float64) float64 {
	return func(T float64) float64 {
		*n++
		return f(T)
	}
}
