package markov

import (
	"sync/atomic"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

// metrics holds the package's observability hooks. All fields are
// nil-safe obs metrics, so the zero value (instrumentation off) costs
// one predictable branch per schedule build and nothing per Γ probe.
var metrics struct {
	// builds counts BuildSchedule completions; warmHits and coldScans
	// partition its per-interval T_opt searches into warm-start
	// successes and full 64-point geometric rescans.
	builds, warmHits, coldScans *obs.Counter
	// goldenEvals counts objective (Γ(T)/T) evaluations performed by
	// the coarse-scan + golden-section optimizers — the unit of work
	// behind every T_opt search.
	goldenEvals *obs.Counter
}

// Instrument points the package's schedule-search metrics at r
// (DESIGN.md §11 lists the names). Call it before any scheduling work
// begins — typically from main — and do not call it concurrently with
// BuildSchedule or Topt. Instrument(nil) turns instrumentation off.
func Instrument(r *obs.Registry) {
	metrics.builds = r.Counter("markov_schedule_builds_total",
		"Aperiodic schedules built by BuildSchedule.")
	metrics.warmHits = r.Counter("markov_warm_hits_total",
		"Schedule intervals solved by the warm-start window search.")
	metrics.coldScans = r.Counter("markov_cold_scans_total",
		"Schedule intervals solved by the full geometric rescan (first interval or warm-start fallback).")
	metrics.goldenEvals = r.Counter("markov_golden_evals_total",
		"Overhead-ratio objective evaluations during T_opt searches.")
}

// countedRatio wraps f, counting evaluations into *n. The optimizer
// sees the identical function values, so abscissae and ratios are
// unchanged; the count is flushed to the registry in one atomic add
// when the search finishes.
func countedRatio(f func(float64) float64, n *uint64) func(float64) float64 {
	return func(T float64) float64 {
		*n++
		return f(T)
	}
}

// tracePidBase offsets every schedule-build pid lane into a band of
// its own, so callers that hand out small per-session or per-run pids
// (ckpt-sim lanes, campaign sample indices) never collide with the
// lanes BuildSchedule claims from the global counter.
const tracePidBase = 1 << 20

// traceState holds the package's tracing hooks. tracer follows the
// same set-before-work contract as Instrument; buildIDs allocates one
// trace pid per BuildSchedule call (offset by tracePidBase).
var traceState struct {
	tracer   *obs.Tracer
	buildIDs atomic.Uint64
}

// Trace points the package's schedule-search tracing at t: every
// BuildSchedule call claims a fresh pid and emits one
// "markov.build_schedule" span containing per-interval "markov.topt"
// child spans, all on a virtual time axis of cumulative objective
// evaluations within the build (wall time would make deterministic CLI
// traces irreproducible — DESIGN.md §12). Like Instrument, call it
// before scheduling work begins and not concurrently with BuildSchedule
// or Topt; Trace(nil) turns tracing off. Attaching a tracer restarts
// the pid lane counter, so builds against a fresh tracer always claim
// the same lanes regardless of what ran earlier in the process.
func Trace(t *obs.Tracer) {
	traceState.tracer = t
	traceState.buildIDs.Store(0)
}

// countEvals reports whether the T_opt searches should pay for the
// objective-eval counting wrapper: either the eval counter or the
// tracer (whose span axis is the eval count) is live.
func countEvals() bool {
	return metrics.goldenEvals != nil || traceState.tracer != nil
}
