package markov

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

func TestBuildScheduleExponentialIsPeriodic(t *testing.T) {
	m := Model{Avail: dist.NewExponential(1.0 / 9000), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("memoryless schedule should have one interval, got %d", s.Len())
	}
	// IntervalAt extends the single interval to any age.
	T0 := s.Intervals[0]
	for _, age := range []float64{0, T0 + 150, 10 * T0} {
		T, ok := s.IntervalAt(age)
		if !ok || T != T0 {
			t.Errorf("IntervalAt(%g) = %g, %v; want %g", age, T, ok, T0)
		}
	}
}

func TestBuildScheduleWeibullIsAperiodic(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 3 {
		t.Fatalf("expected several intervals, got %d", s.Len())
	}
	// Ages accrue work + checkpoint time.
	for i := 1; i < s.Len(); i++ {
		want := s.Ages[i-1] + s.Intervals[i-1] + s.Costs.C
		if !almostEqual(s.Ages[i], want, 1e-9) {
			t.Errorf("age[%d] = %g, want %g", i, s.Ages[i], want)
		}
		if s.Intervals[i] <= 0 {
			t.Errorf("interval[%d] = %g not positive", i, s.Intervals[i])
		}
		// Past the infant-mortality region the decreasing hazard must
		// stretch successive intervals.
		if s.Ages[i-1] > 2000 && s.Intervals[i] <= s.Intervals[i-1] {
			t.Errorf("interval[%d] = %g did not grow from %g (age %g)",
				i, s.Intervals[i], s.Intervals[i-1], s.Ages[i-1])
		}
	}
	// The schedule's late intervals dwarf its early ones.
	if s.Intervals[s.Len()-1] <= 2*s.Intervals[0] {
		t.Errorf("final interval %g not ≫ first %g", s.Intervals[s.Len()-1], s.Intervals[0])
	}
	if s.Horizon() <= 0 {
		t.Error("horizon should be positive")
	}
}

func TestBuildScheduleRespectsStartAge(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s0, err := m.BuildSchedule(0, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m.BuildSchedule(20000, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Ages[0] != 20000 {
		t.Errorf("start age = %g, want 20000", s1.Ages[0])
	}
	if s1.Intervals[0] <= s0.Intervals[0] {
		t.Errorf("T_opt at age 20000 (%g) should exceed T_opt at age 0 (%g)",
			s1.Intervals[0], s0.Intervals[0])
	}
	// Negative start age clamps to zero.
	s2, err := m.BuildSchedule(-7, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Ages[0] != 0 {
		t.Errorf("negative start age not clamped: %g", s2.Ages[0])
	}
}

func TestBuildScheduleHorizonAndCap(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{Horizon: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Planning stops once the accrued age crosses the horizon.
	if s.Len() == 0 {
		t.Fatal("empty schedule")
	}
	if s.Ages[s.Len()-1] >= 5000+s.Intervals[s.Len()-1]+2*m.Costs.C {
		t.Errorf("planned far past horizon: last age %g", s.Ages[s.Len()-1])
	}
	s2, err := m.BuildSchedule(0, ScheduleOptions{MaxIntervals: 3, Horizon: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Errorf("MaxIntervals not honored: %d", s2.Len())
	}
}

func TestIntervalAtLookup(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Age inside interval i returns Intervals[i].
	for i := 0; i < s.Len() && i < 4; i++ {
		mid := s.Ages[i] + 0.5*s.Intervals[i]
		T, ok := s.IntervalAt(mid)
		if !ok || T != s.Intervals[i] {
			t.Errorf("IntervalAt(%g) = %g, want %g", mid, T, s.Intervals[i])
		}
	}
	// Beyond the horizon the final interval extends.
	T, ok := s.IntervalAt(s.Horizon() * 10)
	if !ok || T != s.Intervals[s.Len()-1] {
		t.Errorf("IntervalAt beyond horizon = %g, want %g", T, s.Intervals[s.Len()-1])
	}
	// Empty schedule.
	var empty Schedule
	if _, ok := empty.IntervalAt(5); ok {
		t.Error("empty schedule lookup should fail")
	}
	if empty.Horizon() != 0 {
		t.Error("empty schedule horizon should be 0")
	}
}

func TestScheduleString(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if !strings.Contains(str, "Schedule(") || !strings.Contains(str, "T0=") {
		t.Errorf("unexpected String: %s", str)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	// Schedules cross process boundaries (manager → test process), so
	// they must survive JSON serialization.
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(500, ScheduleOptions{Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() || back.Costs != s.Costs {
		t.Fatalf("round trip changed shape: %v vs %v", back.Len(), s.Len())
	}
	for i := range s.Intervals {
		if back.Intervals[i] != s.Intervals[i] || back.Ages[i] != s.Ages[i] {
			t.Fatalf("round trip changed interval %d", i)
		}
	}
	// The deserialized schedule still answers lookups.
	T1, ok1 := s.IntervalAt(5000)
	T2, ok2 := back.IntervalAt(5000)
	if !ok1 || !ok2 || T1 != T2 {
		t.Errorf("lookup after round trip: %g,%v vs %g,%v", T1, ok1, T2, ok2)
	}
}

func TestBuildScheduleDegenerate(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(8, 10), Costs: mustCosts(t, 500, 500, 500)}
	if _, err := m.BuildSchedule(0, ScheduleOptions{
		Optimize: OptimizeOptions{TMin: 1, TMax: 1000},
	}); err == nil {
		t.Error("expected error for degenerate model")
	}
}

// linearIntervalAt is the pre-binary-search reference implementation:
// scan intervals front to back and return the first one whose
// checkpoint has not yet completed at the given age.
func linearIntervalAt(s *Schedule, age float64) (float64, bool) {
	n := len(s.Intervals)
	if n == 0 {
		return 0, false
	}
	for i := 0; i < n; i++ {
		if age < s.Ages[i]+s.Intervals[i]+s.Costs.C {
			return s.Intervals[i], true
		}
	}
	return s.Intervals[n-1], true
}

func TestIntervalAtEdgeCases(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 3 {
		t.Fatalf("need an aperiodic schedule, got %d intervals", s.Len())
	}

	// An age exactly on an interval-end boundary belongs to the NEXT
	// interval: the boundary is the instant interval i's checkpoint
	// completes, which is also Ages[i+1].
	for i := 0; i < s.Len()-1; i++ {
		bound := s.Ages[i] + s.Intervals[i] + s.Costs.C
		if bound != s.Ages[i+1] {
			t.Fatalf("interval %d boundary %g != next age %g", i, bound, s.Ages[i+1])
		}
		T, ok := s.IntervalAt(bound)
		if !ok || T != s.Intervals[i+1] {
			t.Errorf("IntervalAt(boundary %d = %g) = %g, want next interval %g",
				i, bound, T, s.Intervals[i+1])
		}
		// Just below the boundary it is still interval i.
		T, ok = s.IntervalAt(bound * (1 - 1e-12))
		if !ok || T != s.Intervals[i] {
			t.Errorf("IntervalAt(just under boundary %d) = %g, want %g", i, T, s.Intervals[i])
		}
	}

	// At and beyond the horizon the final interval extends.
	last := s.Intervals[s.Len()-1]
	for _, age := range []float64{s.Horizon(), s.Horizon() + 1, s.Horizon() * 100} {
		if T, ok := s.IntervalAt(age); !ok || T != last {
			t.Errorf("IntervalAt(%g) = %g, %v; want extension of final interval %g", age, T, ok, last)
		}
	}

	// Empty schedule: no interval, ok=false, and no panic.
	var empty Schedule
	if T, ok := empty.IntervalAt(0); ok || T != 0 {
		t.Errorf("empty IntervalAt = %g, %v", T, ok)
	}

	// Negative age (before the schedule's frame) falls in interval 0.
	if T, ok := s.IntervalAt(-5); !ok || T != s.Intervals[0] {
		t.Errorf("IntervalAt(-5) = %g, want %g", T, s.Intervals[0])
	}
}

// TestIntervalAtMatchesLinearScan cross-checks the binary search
// against the original linear scan over many schedules and ages,
// including schedules that arrived via JSON (whose boundary cache must
// be rebuilt lazily).
func TestIntervalAtMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	costs := []float64{50, 100, 500}
	startAges := []float64{0, 100, 2500}
	for _, c := range costs {
		for _, startAge := range startAges {
			m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, c, c, c)}
			built, err := m.BuildSchedule(startAge, ScheduleOptions{Horizon: 40000})
			if err != nil {
				t.Fatal(err)
			}
			// Round-trip through JSON so one of the two schedules starts
			// with no boundary cache.
			data, err := json.Marshal(built)
			if err != nil {
				t.Fatal(err)
			}
			var decoded Schedule
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatal(err)
			}
			for _, s := range []*Schedule{built, &decoded} {
				for trial := 0; trial < 500; trial++ {
					age := rng.Float64() * 2 * s.Horizon()
					if trial%10 == 0 && s.Len() > 0 {
						// Mix in exact boundaries: the adversarial inputs
						// for an off-by-one in the search predicate.
						i := rng.Intn(s.Len())
						age = s.Ages[i] + s.Intervals[i] + s.Costs.C
					}
					gotT, gotOK := s.IntervalAt(age)
					wantT, wantOK := linearIntervalAt(s, age)
					if gotT != wantT || gotOK != wantOK {
						t.Fatalf("C=%g startAge=%g age=%g: binary search %g,%v != linear %g,%v",
							c, startAge, age, gotT, gotOK, wantT, wantOK)
					}
				}
			}
		}
	}
}

// TestLookupExtendedFlag pins the provenance Lookup adds over
// IntervalAt: the extended flag is set exactly for ages at or beyond
// the planned horizon, and the returned interval always agrees with
// IntervalAt.
func TestLookupExtendedFlag(t *testing.T) {
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{Horizon: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 3 {
		t.Fatalf("need an aperiodic schedule, got %d intervals", s.Len())
	}
	for _, tc := range []struct {
		age  float64
		want bool
	}{
		{0, false},
		{s.Ages[s.Len()-1], false},
		{s.Horizon() * (1 - 1e-12), false},
		{s.Horizon(), true},
		{s.Horizon() + 1, true},
		{s.Horizon() * 100, true},
	} {
		T, extended, ok := s.Lookup(tc.age)
		if !ok {
			t.Fatalf("Lookup(%g) not ok", tc.age)
		}
		if extended != tc.want {
			t.Errorf("Lookup(%g) extended = %v, want %v", tc.age, extended, tc.want)
		}
		if wantT, wantOK := s.IntervalAt(tc.age); T != wantT || !wantOK {
			t.Errorf("Lookup(%g) T = %g disagrees with IntervalAt %g", tc.age, T, wantT)
		}
	}

	var empty Schedule
	if T, extended, ok := empty.Lookup(0); ok || extended || T != 0 {
		t.Errorf("empty Lookup = %g, %v, %v; want 0, false, false", T, extended, ok)
	}
}

// TestLookupFromMatchesLinearScan drives the hinted, quantized-index
// lookup against the linear scan with every flavor of hint — fresh
// (the previous call's idx, the hot-loop pattern), stale, out of
// range, and absent — plus exact-boundary ages, the adversarial
// inputs for an off-by-one in the index walk. The returned idx must
// itself be the answer's interval, since callers blindly feed it back.
func TestLookupFromMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{Horizon: 40000})
	if err != nil {
		t.Fatal(err)
	}
	n := s.Len()
	if n < 3 {
		t.Fatalf("want a multi-interval schedule, got %d intervals", n)
	}
	hint := -1
	for trial := 0; trial < 4000; trial++ {
		age := rng.Float64() * 1.5 * s.Horizon()
		switch trial % 8 {
		case 1: // exact interval-end boundary
			i := rng.Intn(n)
			age = s.Ages[i] + s.Intervals[i] + s.Costs.C
		case 2: // poison the hint: stale
			hint = rng.Intn(n)
		case 3: // poison the hint: out of range
			hint = n + rng.Intn(5)
		case 4:
			hint = -1 - rng.Intn(3)
		}
		gotT, idx, extended, ok := s.LookupFrom(age, hint)
		wantT, wantOK := linearIntervalAt(s, age)
		if gotT != wantT || ok != wantOK {
			t.Fatalf("trial %d age=%g hint=%d: LookupFrom %g,%v != linear %g,%v",
				trial, age, hint, gotT, ok, wantT, wantOK)
		}
		if wantExt := age >= s.Horizon(); extended != wantExt {
			t.Fatalf("trial %d age=%g: extended=%v, want %v", trial, age, extended, wantExt)
		}
		if idx < 0 || idx >= n || s.Intervals[idx] != gotT {
			t.Fatalf("trial %d age=%g: idx %d does not name the returned interval", trial, age, idx)
		}
		hint = idx
	}
}
