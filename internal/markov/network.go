package markov

import "math"

// ExpectedImagesPerCommit returns the expected number of checkpoint-
// image-equivalents that cross the network per committed work interval
// of length T at resource age, under the chain's own semantics:
//
//   - exactly one full image for the checkpoint that commits the
//     interval (whichever attempt succeeds);
//   - a partial image when the initial attempt fails during its
//     checkpoint phase (failure time τ ∈ (T, T+C] under F_age), with
//     expected fraction (E[τ|mid-checkpoint]−T)/C;
//   - one recovery transfer per retry leg — full if the (unconditional)
//     failure time exceeds R, otherwise the prorated fraction
//     PM(R)/R·(1/F(R))·F(R) = PM(R)/R — with E[retries] = P02/P21.
//
// Retry legs in the chain span L+R+T without an explicit checkpoint
// phase, so mid-checkpoint partials on retries are not modeled; the
// discrete-event simulator accounts them and the property tests bound
// the difference. This quantity is the analytic counterpart of the
// paper's Figure 4/Table 3 measurements: heavier-tailed models choose
// longer T, committing more work per image moved.
func (m Model) ExpectedImagesPerCommit(T, age float64) float64 {
	if T <= 0 {
		return math.Inf(1)
	}
	tr := m.At(T, age)
	if tr.P21 <= 0 {
		return math.Inf(1)
	}
	images := 1.0

	// Partial checkpoint on the initial attempt. Failure times within
	// (T, C+T] under the age-conditioned law.
	if m.Costs.C > 0 {
		c := conditionalQuantities{m: m, age: age}
		pMid := c.cdf(m.Costs.C+T) - c.cdf(T)
		if pMid > 1e-300 {
			eMid := (c.partialMoment(m.Costs.C+T) - c.partialMoment(T)) / pMid
			frac := (eMid - T) / m.Costs.C
			if frac > 0 {
				images += pMid * math.Min(frac, 1)
			}
		}
	}

	// Recovery transfers over the expected retries.
	retries := tr.P02 / tr.P21
	perRetry := 1.0
	if m.Costs.R > 0 {
		perRetry = m.Avail.Survival(m.Costs.R) + m.Avail.PartialMoment(m.Costs.R)/m.Costs.R
	}
	images += retries * perRetry
	return images
}

// ExpectedBandwidthRate returns the expected long-run network rate in
// image-sizes per second of wall-clock time when checkpointing every
// T seconds at the given age: ExpectedImagesPerCommit / Γ. Multiply by
// the image size for MB/s.
func (m Model) ExpectedBandwidthRate(T, age float64) float64 {
	g := m.Gamma(T, age)
	if math.IsInf(g, 1) || g <= 0 {
		return math.Inf(1)
	}
	return m.ExpectedImagesPerCommit(T, age) / g
}

// conditionalQuantities avoids re-allocating dist.Conditional wrappers
// in the hot path.
type conditionalQuantities struct {
	m   Model
	age float64
}

func (c conditionalQuantities) cdf(x float64) float64 {
	s := c.m.Avail.Survival(c.age)
	if s <= 0 {
		return 1
	}
	return 1 - c.m.Avail.Survival(c.age+x)/s
}

func (c conditionalQuantities) partialMoment(x float64) float64 {
	if x <= 0 {
		return 0
	}
	s := c.m.Avail.Survival(c.age)
	if s <= 0 {
		return 0
	}
	dF := (c.m.Avail.CDF(c.age+x) - c.m.Avail.CDF(c.age))
	return (c.m.Avail.PartialMoment(c.age+x) - c.m.Avail.PartialMoment(c.age) - c.age*dF) / s
}
