package markov

import (
	"errors"
	"math"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// TestNewCostsRejectsZero pins the degenerate-cost guard: a zero,
// negative, or non-finite checkpoint cost breaks the optimizer's
// bracket geometry and must be rejected with ErrZeroCost rather than
// silently producing a "checkpoint for free" model.
func TestNewCostsRejectsZero(t *testing.T) {
	for _, c := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := NewCosts(c, 100, 100)
		if err == nil {
			t.Errorf("NewCosts(%g, ...) accepted a degenerate checkpoint cost", c)
			continue
		}
		if !errors.Is(err, ErrZeroCost) {
			t.Errorf("NewCosts(%g, ...) error %v is not ErrZeroCost", c, err)
		}
	}
	if _, err := NewCosts(1e-9, 100, 100); err != nil {
		t.Errorf("tiny positive cost rejected: %v", err)
	}
}

func costFnDists() []dist.Distribution {
	return []dist.Distribution{
		dist.NewExponential(1.0 / 9000),
		dist.NewWeibull(0.43, 3409),
		dist.NewHyperexponential([]float64{0.6, 0.4}, []float64{1.0 / 600, 1.0 / 30000}),
	}
}

// TestConstantCostFnMatchesNil pins the ISSUE's bit-exactness
// acceptance criterion: a cost curve that returns the constant C must
// reproduce the nil-CostFn (seed) arithmetic bit for bit — Γ values,
// T_opt abscissae, ratios, and whole schedules.
func TestConstantCostFnMatchesNil(t *testing.T) {
	costs := mustCosts(t, 100, 100, 100)
	for _, d := range costFnDists() {
		base := Model{Avail: d, Costs: costs}
		wrapped := Model{Avail: d, Costs: costs, CostFn: func(T float64) float64 { return costs.C }}

		for _, age := range []float64{0, 250, 3409, 20000} {
			for _, T := range []float64{1, 30, 500, 2500, 50000} {
				if g0, g1 := base.Gamma(T, age), wrapped.Gamma(T, age); g0 != g1 {
					t.Errorf("%s: Gamma(T=%g, age=%g) constant CostFn %v != nil %v",
						d.Name(), T, age, g1, g0)
				}
			}
			t0, r0, err0 := base.Topt(age, OptimizeOptions{})
			t1, r1, err1 := wrapped.Topt(age, OptimizeOptions{})
			if (err0 == nil) != (err1 == nil) {
				t.Fatalf("%s age=%g: Topt error mismatch: %v vs %v", d.Name(), age, err0, err1)
			}
			if t0 != t1 || r0 != r1 {
				t.Errorf("%s age=%g: Topt constant CostFn (%v, %v) != nil (%v, %v)",
					d.Name(), age, t1, r1, t0, r0)
			}
		}

		s0, err := base.BuildSchedule(0, ScheduleOptions{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		s1, err := wrapped.BuildSchedule(0, ScheduleOptions{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if len(s0.Intervals) != len(s1.Intervals) {
			t.Fatalf("%s: schedule lengths differ: %d vs %d", d.Name(), len(s0.Intervals), len(s1.Intervals))
		}
		for i := range s0.Intervals {
			if s0.Intervals[i] != s1.Intervals[i] || s0.Ages[i] != s1.Ages[i] || s0.Ratios[i] != s1.Ratios[i] {
				t.Fatalf("%s interval %d: (%v, %v, %v) != (%v, %v, %v)", d.Name(), i,
					s1.Intervals[i], s1.Ages[i], s1.Ratios[i],
					s0.Intervals[i], s0.Ages[i], s0.Ratios[i])
			}
		}
		if s0.Horizon() != s1.Horizon() {
			t.Errorf("%s: horizons differ: %v vs %v", d.Name(), s0.Horizon(), s1.Horizon())
		}
		// The constant-C schedule must stay structurally identical to the
		// seed (no per-interval cost column); the wrapped one records its
		// curve, and every recorded cost equals the constant.
		if s0.CkptCosts != nil {
			t.Errorf("%s: nil-CostFn schedule grew CkptCosts %v", d.Name(), s0.CkptCosts)
		}
		if len(s1.CkptCosts) != len(s1.Intervals) {
			t.Fatalf("%s: CostFn schedule CkptCosts length %d != %d intervals",
				d.Name(), len(s1.CkptCosts), len(s1.Intervals))
		}
		for i, c := range s1.CkptCosts {
			if c != costs.C {
				t.Errorf("%s: CkptCosts[%d] = %v, want %v", d.Name(), i, c, costs.C)
			}
		}
	}
}

// TestCostFnSanitization pins costAt's fallback ladder: non-finite and
// non-positive curve values resolve to the constant C (bitwise: the
// whole model behaves as if no curve were set), and finite positive
// values below the floor are clamped to minVariableCost.
func TestCostFnSanitization(t *testing.T) {
	costs := mustCosts(t, 100, 100, 100)
	d := dist.NewWeibull(0.43, 3409)
	base := Model{Avail: d, Costs: costs}
	for name, fn := range map[string]CostFunc{
		"nan":      func(T float64) float64 { return math.NaN() },
		"posinf":   func(T float64) float64 { return math.Inf(1) },
		"neginf":   func(T float64) float64 { return math.Inf(-1) },
		"zero":     func(T float64) float64 { return 0 },
		"negative": func(T float64) float64 { return -5 },
	} {
		m := Model{Avail: d, Costs: costs, CostFn: fn}
		for _, T := range []float64{1, 500, 20000} {
			for _, age := range []float64{0, 3409} {
				if g0, g1 := base.Gamma(T, age), m.Gamma(T, age); g0 != g1 {
					t.Errorf("%s: Gamma(T=%g, age=%g) = %v, want constant-C %v", name, T, age, g1, g0)
				}
			}
		}
	}
	// A finite positive value below the floor clamps, not falls back.
	m := Model{Avail: d, Costs: costs, CostFn: func(T float64) float64 { return 1e-9 }}
	c, l := m.costAt(500)
	if c != minVariableCost || l != minVariableCost {
		t.Errorf("costAt with sub-floor curve = (%v, %v), want (%v, %v)",
			c, l, minVariableCost, minVariableCost)
	}
}

// TestGammaEvaluatorMatchesModelWithCostFn extends the hoisting
// invariant to the variable-cost path: the per-search evaluator must
// stay bitwise identical to Model.Gamma when a cost curve is set.
func TestGammaEvaluatorMatchesModelWithCostFn(t *testing.T) {
	costs := mustCosts(t, 100, 150, 120)
	fn := func(T float64) float64 { return 20 + 0.01*T }
	for _, d := range costFnDists() {
		m := Model{Avail: d, Costs: costs, CostFn: fn}
		for _, age := range []float64{0, 1, 250, 3409, 20000} {
			e := m.evaluator(age)
			for _, T := range []float64{1, 30, 500, 2500, 50000} {
				want := m.Gamma(T, age)
				if got := e.gamma(T); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Errorf("%s: gamma(T=%g, age=%g) evaluator %v != model %v",
						d.Name(), T, age, got, want)
				}
			}
		}
	}
}

// TestVariableCostShiftsTopt checks the curve actually steers the
// optimizer: against a cost that grows with the interval (delta
// checkpoints dirty more chunks over longer intervals), the chosen
// T_opt must differ from the constant-cost optimum and land between
// the optima of the curve's two extremes.
func TestVariableCostShiftsTopt(t *testing.T) {
	d := dist.NewExponential(1.0 / 9000)
	costs := mustCosts(t, 100, 100, 100)
	fn := func(T float64) float64 { return 10 + 0.05*T } // cheap short intervals
	m := Model{Avail: d, Costs: costs, CostFn: fn}
	tVar, rVar, err := m.Topt(0, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tConst, _, err := Model{Avail: d, Costs: costs}.Topt(0, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tVar == tConst {
		t.Errorf("variable cost curve left T_opt unchanged at %v", tVar)
	}
	if !(tVar > 0 && rVar > 0 && !math.IsInf(rVar, 1)) {
		t.Errorf("degenerate variable-cost optimum: T=%v ratio=%v", tVar, rVar)
	}
	// The curve's positive slope charges extra for lengthening the
	// interval, so the variable-cost optimum must sit below the optimum
	// of the constant cost matched at that very point, fn(tVar) — the
	// marginal-cost effect that a constant-C model cannot express.
	cAt := mustCosts(t, fn(tVar), 100, fn(tVar))
	matched, _, err := Model{Avail: d, Costs: cAt}.Topt(0, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tVar >= matched {
		t.Errorf("T_opt under increasing C(T) = %v not below matched-constant optimum %v", tVar, matched)
	}

	// And the schedule records the curve at each chosen interval.
	s, err := m.BuildSchedule(0, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, T := range s.Intervals {
		want := fn(T)
		if s.CkptCosts[i] != want {
			t.Errorf("CkptCosts[%d] = %v, want fn(%v) = %v", i, s.CkptCosts[i], T, want)
		}
	}
	if h, want := s.Horizon(), s.Ages[len(s.Ages)-1]+s.Intervals[len(s.Intervals)-1]+s.CkptCosts[len(s.CkptCosts)-1]; h != want {
		t.Errorf("Horizon() = %v, want %v (per-interval cost)", h, want)
	}
}
