package markov

import (
	"fmt"
	"strings"
	"sync"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// Schedule is an aperiodic checkpoint schedule: the sequence of
// optimal work intervals T_opt(0), T_opt(1), … computed from the start
// of an uninterrupted availability period (§3.5). Interval i begins
// when the resource has age Ages[i] and lasts Intervals[i] seconds,
// followed by a checkpoint of C seconds.
//
// The schedule is valid for as long as the resource stays up; after a
// failure a new schedule must be computed (the resource's age resets).
type Schedule struct {
	// Intervals[i] is T_opt(i) in seconds.
	Intervals []float64
	// Ages[i] is the resource age at which interval i begins.
	Ages []float64
	// Ratios[i] is the expected overhead ratio Γ/T at T_opt(i).
	Ratios []float64
	// Costs echoes the overhead parameters the schedule was built for.
	Costs Costs
	// CkptCosts[i] is the per-interval checkpoint cost C(T_opt(i)), in
	// seconds. It is populated only when the model carried a variable
	// cost curve (Model.CostFn); constant-C schedules leave it nil and
	// every consumer falls back to Costs.C, keeping their structure —
	// and JSON encoding — identical to pre-CostFn schedules.
	CkptCosts []float64 `json:",omitempty"`

	// bounds caches Ages[i] + Intervals[i] + Costs.C — the age at which
	// interval i's checkpoint completes — so lookups can index instead
	// of scanning. BuildSchedule fills it eagerly; schedules arriving by
	// other routes (JSON decoding, literals) build it on first lookup,
	// guarded by boundsOnce so concurrent Lookup calls on a decoded
	// schedule never race on the rebuild. The exported fields are
	// treated as immutable once the first Lookup runs.
	//
	// lut is a quantized index over bounds: lut[q] is the first interval
	// still in effect at age q·lutStep, so a lookup lands within a
	// bucket of its answer in O(1) and walks forward at most the few
	// intervals sharing that bucket — constant time in practice where a
	// binary search pays ~log2(n) dependent probes. The table is sized
	// to roughly one bucket per interval (capped), making the average
	// walk about one step.
	boundsOnce sync.Once
	bounds     []float64
	lut        []int32
	invStep    float64 // buckets per second of age
}

// Len returns the number of planned intervals.
func (s *Schedule) Len() int { return len(s.Intervals) }

// Horizon returns the resource age at which the last planned interval
// (plus its checkpoint) completes.
func (s *Schedule) Horizon() float64 {
	n := len(s.Intervals)
	if n == 0 {
		return 0
	}
	return s.Ages[n-1] + s.Intervals[n-1] + s.ckptCost(n-1)
}

// ckptCost returns the checkpoint cost charged after interval i:
// the per-interval C(T_opt(i)) when the schedule carries a variable
// cost curve, the constant Costs.C otherwise.
func (s *Schedule) ckptCost(i int) float64 {
	if i >= 0 && i < len(s.CkptCosts) {
		return s.CkptCosts[i]
	}
	return s.Costs.C
}

// IntervalAt returns the planned work interval in effect for a
// resource of the given age, extending the schedule's final interval
// if age lies beyond the planned horizon. ok is false for an empty
// schedule.
//
// The lookup binary-searches the cached interval-end boundaries, so a
// 10⁴-interval aperiodic schedule answers in ~14 comparisons. For
// BuildSchedule output the boundaries are strictly increasing (each
// interval starts where the previous checkpoint finished), which is
// the invariant the search relies on.
func (s *Schedule) IntervalAt(age float64) (T float64, ok bool) {
	T, _, ok = s.Lookup(age)
	return T, ok
}

// Lookup is IntervalAt plus provenance: extended reports whether age
// lies beyond the planned horizon, in which case the returned interval
// is the final planned one extended indefinitely. Consumers that reuse
// one schedule across a long simulation (internal/parallel) use the
// flag to count how often they ran off the plan instead of silently
// treating extensions as planned intervals. For a memoryless model
// BuildSchedule plans a single interval on purpose, so extensions are
// the expected steady state there, not a fallback.
//
// Lookup (and IntervalAt) is safe for concurrent use on any schedule:
// BuildSchedule output carries an eagerly built boundary cache, and a
// schedule that arrived by JSON decoding or literal construction
// builds it exactly once under a sync.Once on first lookup.
func (s *Schedule) Lookup(age float64) (T float64, extended, ok bool) {
	T, _, extended, ok = s.LookupFrom(age, -1)
	return T, extended, ok
}

// LookupFrom is Lookup plus a position hint for hot loops: idx is the
// planned interval the returned T came from (n-1 when extended), and
// feeding it back as the hint on the next call serves lookups whose
// age lands in the same interval without touching the index. Any hint
// value is safe — an out-of-range or stale hint only costs the
// fast-path check — so callers can seed with -1 and then blindly
// thread idx through. Consumers simulating many workers against one
// shared schedule (internal/parallel keeps one hint per worker) serve
// the rest of their lookups from the quantized index in O(1).
func (s *Schedule) LookupFrom(age float64, hint int) (T float64, idx int, extended, ok bool) {
	n := len(s.Intervals)
	if n == 0 {
		return 0, 0, false, false
	}
	s.ensureBounds()
	b := s.bounds
	if hint >= 0 && hint < n && age < b[hint] && (hint == 0 || age >= b[hint-1]) {
		return s.Intervals[hint], hint, false, true
	}
	if age >= b[n-1] {
		return s.Intervals[n-1], n - 1, true, true
	}
	// The bucket holding age starts near the answer; the two walks make
	// the result exact regardless of the quantization arithmetic (the
	// backward one fires only when bucket rounding overshot by an ulp),
	// so the index is purely advisory — typically one step total.
	i := 0
	if age > 0 {
		if q := int(age * s.invStep); q < len(s.lut) {
			i = int(s.lut[q])
		} else {
			i = n - 1 // age*invStep rounded past the end: last bound is > age
		}
	}
	for i > 0 && age < b[i-1] {
		i--
	}
	for age >= b[i] {
		i++
	}
	return s.Intervals[i], i, false, true
}

// ensureBounds builds the boundary cache exactly once. Both
// BuildSchedule (eagerly) and Lookup (lazily, for decoded schedules)
// funnel through the same Once, so the cache is never written twice
// and never written concurrently with a read.
func (s *Schedule) ensureBounds() { s.boundsOnce.Do(s.rebuildBounds) }

// rebuildBounds recomputes the interval-end boundary cache and its
// quantized index from the exported fields.
func (s *Schedule) rebuildBounds() {
	n := len(s.Intervals)
	b := make([]float64, n)
	for i := range s.Intervals {
		b[i] = s.Ages[i] + s.Intervals[i] + s.ckptCost(i)
	}
	s.bounds = b
	if n == 0 || b[n-1] <= 0 {
		return
	}
	size := 1
	for size < n && size < 1<<16 {
		size <<= 1
	}
	s.invStep = float64(size) / b[n-1]
	step := b[n-1] / float64(size)
	lut := make([]int32, size)
	i := 0
	for q := range lut {
		for i < n-1 && b[i] <= float64(q)*step {
			i++
		}
		lut[q] = int32(i)
	}
	s.lut = lut
}

// String renders the first few intervals for human inspection.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Schedule(C=%.4g, R=%.4g; %d intervals", s.Costs.C, s.Costs.R, len(s.Intervals))
	for i := 0; i < len(s.Intervals) && i < 6; i++ {
		fmt.Fprintf(&b, "; T%d=%.4g@age=%.4g", i, s.Intervals[i], s.Ages[i])
	}
	if len(s.Intervals) > 6 {
		b.WriteString("; …")
	}
	b.WriteString(")")
	return b.String()
}

// ScheduleOptions tunes BuildSchedule.
type ScheduleOptions struct {
	// Optimize tunes each per-interval T_opt search.
	Optimize OptimizeOptions
	// Horizon stops planning once the schedule covers this resource
	// age (seconds). Default: 7 days.
	Horizon float64
	// MaxIntervals caps the schedule length. Default: 10000.
	MaxIntervals int
}

func (o *ScheduleOptions) setDefaults() {
	o.Optimize.setDefaults()
	if o.Horizon <= 0 {
		o.Horizon = 7 * 24 * 3600
	}
	if o.MaxIntervals <= 0 {
		o.MaxIntervals = 10000
	}
}

// BuildSchedule computes the aperiodic schedule of T_opt values for a
// resource whose availability follows m.Avail and that has already
// been available for startAge seconds (the paper's T_elapsed).
//
// T_opt(0) is optimized at age startAge; each successive T_opt(i) is
// optimized at the age the resource will have reached if all previous
// intervals commit (age accrues work plus checkpoint time). For a
// memoryless (exponential) model every interval is identical and the
// schedule is effectively periodic.
func (m Model) BuildSchedule(startAge float64, opts ScheduleOptions) (*Schedule, error) {
	opts.setDefaults()
	if startAge < 0 {
		startAge = 0
	}
	s := &Schedule{Costs: m.Costs}
	age := startAge
	prevT := 0.0
	warmHits, coldScans := 0, 0

	// Tracing runs on a virtual time axis of cumulative objective
	// evaluations within this build — deterministic where wall time is
	// not (DESIGN.md §12). Each build claims its own pid lane in a
	// reserved band above tracePidBase so schedule builds never share
	// a lane with the per-session/per-run pids the callers hand out.
	tr := traceState.tracer
	var pid, evalAxis uint64
	var bsp *obs.Span
	if tr != nil {
		pid = tracePidBase + traceState.buildIDs.Add(1)
		bsp = tr.StartSpanAt(pid, 1, "markov.build_schedule", 0).SetAttr(
			obs.AttrFloat("start_age", startAge),
			obs.AttrStr("model", m.Avail.Name()))
	}

	for len(s.Intervals) < opts.MaxIntervals {
		// Warm-start: T_opt drifts slowly with age, so seed the search
		// from the previous interval's optimum and evaluate only a
		// narrow grid window. The warm bracket is discarded (cold
		// rescan) whenever its best point lands on a window edge, so a
		// fast-moving or multi-modal objective falls back to the full
		// 64-point geometric scan and results never depend on the seed.
		var (
			T, ratio     float64
			warm         bool
			warmN, coldN uint64
		)
		if prevT > 0 {
			T, ratio, warmN, warm = m.toptWarm(age, prevT, opts.Optimize)
		}
		if warm {
			warmHits++
		} else {
			coldScans++
			var err error
			T, ratio, coldN, err = m.toptCount(age, opts.Optimize)
			if err != nil {
				if len(s.Intervals) > 0 {
					break // keep what we have; later ages degenerate
				}
				return nil, err
			}
		}
		if tr != nil {
			mode, n := "cold", warmN+coldN
			if warm {
				mode = "warm"
			}
			tr.SpanAt(pid, 1, "markov.topt", float64(evalAxis), float64(n),
				obs.AttrStr("mode", mode),
				obs.AttrFloat("age", age),
				obs.AttrFloat("t_opt", T),
				obs.AttrInt("evals", int64(n)))
			evalAxis += n
		}
		s.Intervals = append(s.Intervals, T)
		s.Ages = append(s.Ages, age)
		s.Ratios = append(s.Ratios, ratio)
		ckptC := m.Costs.C
		if m.CostFn != nil {
			ckptC, _ = m.costAt(T)
			s.CkptCosts = append(s.CkptCosts, ckptC)
		}
		prevT = T
		age += T + ckptC
		if age >= opts.Horizon {
			break
		}
		if dist.IsMemoryless(m.Avail) {
			// All further intervals are identical; IntervalAt extends
			// the last interval indefinitely.
			break
		}
	}
	s.ensureBounds()
	bsp.SetAttr(
		obs.AttrInt("intervals", int64(len(s.Intervals))),
		obs.AttrInt("warm_hits", int64(warmHits)),
		obs.AttrInt("cold_scans", int64(coldScans)),
	).EndAt(float64(evalAxis))
	metrics.builds.Inc()
	metrics.warmHits.Add(uint64(warmHits))
	metrics.coldScans.Add(uint64(coldScans))
	return s, nil
}
