package markov

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
)

// monteCarloImages estimates the images-per-commit by simulating the
// chain's semantics directly: the initial attempt works T then
// checkpoints C under the conditional law; each retry leg spans
// L+R+T starting with a recovery of R under the unconditional law.
func monteCarloImages(m Model, T, age float64, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	cond := dist.NewConditional(m.Avail, age)
	C, R := m.Costs.C, m.Costs.R
	span2 := m.Costs.L + R + T
	total := 0.0
	for range n {
		life := cond.Rand(rng)
		if life >= T+C {
			total += 1 // committed checkpoint
			continue
		}
		if life > T {
			total += (life - T) / C // partial checkpoint
		}
		for {
			life = m.Avail.Rand(rng)
			if life >= R {
				total += 1 // full recovery
			} else {
				total += life / R // partial recovery
			}
			if life >= span2 {
				total += 1 // the committing checkpoint of the last leg
				break
			}
		}
	}
	return total / float64(n)
}

func TestExpectedImagesMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo validation skipped in -short mode")
	}
	// Note the chain's retry leg has no checkpoint phase, so the MC
	// counts the committing image once per success — matching the
	// analytic "exactly one full image per commit".
	for _, m := range testModels(t) {
		for _, tc := range []struct{ T, age float64 }{
			{500, 0}, {1500, 700}, {4000, 5000},
		} {
			want := m.ExpectedImagesPerCommit(tc.T, tc.age)
			got := monteCarloImages(m, tc.T, tc.age, 300000, 7)
			if !almostEqual(got, want, 0.03) {
				t.Errorf("%s T=%g age=%g: analytic %g, Monte Carlo %g",
					m.Avail.Name(), tc.T, tc.age, want, got)
			}
		}
	}
}

func TestExpectedImagesBasics(t *testing.T) {
	for _, m := range testModels(t) {
		for _, T := range []float64{100, 1000, 5000} {
			img := m.ExpectedImagesPerCommit(T, 300)
			if img < 1 {
				t.Errorf("%s: images per commit %g < 1", m.Avail.Name(), img)
			}
		}
		if !math.IsInf(m.ExpectedImagesPerCommit(0, 0), 1) {
			t.Errorf("%s: T=0 should be infeasible", m.Avail.Name())
		}
	}
}

func TestBandwidthRateDecreasesWithT(t *testing.T) {
	// Longer intervals commit more work per image: the rate should
	// fall as T grows (until failures dominate).
	m := Model{Avail: dist.NewExponential(1.0 / 9000), Costs: mustCosts(t, 100, 100, 100)}
	r1 := m.ExpectedBandwidthRate(300, 0)
	r2 := m.ExpectedBandwidthRate(1200, 0)
	r3 := m.ExpectedBandwidthRate(4000, 0)
	if !(r1 > r2 && r2 > r3) {
		t.Errorf("bandwidth rate not decreasing in T: %g, %g, %g", r1, r2, r3)
	}
}

func TestAnalyticBandwidthReproducesTable3Ordering(t *testing.T) {
	// The paper's headline, analytically: on a heavy-tailed machine,
	// the exponential model (shorter T_opt) moves more images per
	// second than hyperexponential or Weibull fits of the same data.
	rng := rand.New(rand.NewSource(77))
	truth := dist.NewWeibull(0.43, 3409)
	train := make([]float64, 500)
	for i := range train {
		train[i] = truth.Rand(rng)
	}
	costs := mustCosts(t, 500, 500, 500)
	rate := func(model fit.Model) float64 {
		d, err := fit.Fit(model, train)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Avail: d, Costs: costs}
		// Steady-state-ish: evaluate at the fresh-resource optimum.
		T, _, err := m.Topt(costs.R, OptimizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return m.ExpectedBandwidthRate(T, costs.R)
	}
	exp := rate(fit.ModelExponential)
	weib := rate(fit.ModelWeibull)
	hyp2 := rate(fit.ModelHyperexp2)
	if !(exp > weib) {
		t.Errorf("analytic rate: exponential %g not above weibull %g", exp, weib)
	}
	if !(exp > hyp2) {
		t.Errorf("analytic rate: exponential %g not above hyperexp2 %g", exp, hyp2)
	}
}
