package markov_test

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/markov"
)

// ExampleModel_Topt optimizes the work interval for the machine the
// paper measured, with the campus network's 110-second checkpoint
// cost.
func ExampleModel_Topt() {
	m := markov.Model{
		Avail: dist.NewWeibull(0.43, 3409),
		Costs: markov.Costs{C: 110, R: 110, L: 110},
	}
	T, ratio, err := m.Topt(600 /* resource age */, markov.OptimizeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("T_opt = %.0f s, expected efficiency %.0f%%\n", T, 100/ratio)
	// Output:
	// T_opt = 1119 s, expected efficiency 76%
}

// ExampleModel_ExpectedImagesPerCommit shows the analytic network-load
// model: a shorter interval commits less work per checkpoint image
// moved, so its bandwidth rate is higher.
func ExampleModel_ExpectedImagesPerCommit() {
	m := markov.Model{
		Avail: dist.NewWeibull(0.43, 3409),
		Costs: markov.Costs{C: 500, R: 500, L: 500},
	}
	for _, T := range []float64{1000, 4000} {
		imgs := m.ExpectedImagesPerCommit(T, 500)
		rate := m.ExpectedBandwidthRate(T, 500) * 500 // MB/s for 500 MB images
		fmt.Printf("T = %4.0f s: %.2f images per commit, %.3f MB/s\n", T, imgs, rate)
	}
	// Output:
	// T = 1000 s: 1.52 images per commit, 0.380 MB/s
	// T = 4000 s: 2.27 images per commit, 0.167 MB/s
}
