package markov

import (
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// TestBuildScheduleMetrics pins the schedule-search accounting: every
// planned interval is either a warm-start hit or a cold scan, and the
// golden-eval counter tracks the objective probes behind them.
func TestBuildScheduleMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	m := Model{Avail: dist.NewWeibull(0.43, 3409), Costs: mustCosts(t, 100, 100, 100)}
	s, err := m.BuildSchedule(0, ScheduleOptions{Horizon: 24 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["markov_schedule_builds_total"]; got != 1 {
		t.Errorf("builds = %d, want 1", got)
	}
	warm := snap.Counters["markov_warm_hits_total"]
	cold := snap.Counters["markov_cold_scans_total"]
	if int(warm+cold) != s.Len() {
		t.Errorf("warm %d + cold %d != %d intervals", warm, cold, s.Len())
	}
	if cold < 1 {
		t.Error("the first interval always cold-scans")
	}
	if warm == 0 {
		t.Error("a slowly drifting Weibull schedule should warm-start some intervals")
	}
	if evals := snap.Counters["markov_golden_evals_total"]; evals < warm+cold {
		t.Errorf("golden evals = %d, expected at least one per search", evals)
	}

	// Instrumentation must not change the schedule itself.
	Instrument(nil)
	plain, err := m.BuildSchedule(0, ScheduleOptions{Horizon: 24 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != s.Len() {
		t.Fatalf("instrumented schedule has %d intervals, plain has %d", s.Len(), plain.Len())
	}
	for i := range plain.Intervals {
		if plain.Intervals[i] != s.Intervals[i] || plain.Ratios[i] != s.Ratios[i] {
			t.Fatalf("interval %d differs under instrumentation", i)
		}
	}
}
