// Package markov implements the paper's three-state Markov model of a
// single checkpoint interval (§3.5), generalizing Vaidya's
// checkpoint-overhead analysis (IEEE Trans. Computers, 1997) from the
// exponential to arbitrary availability distributions.
//
// States (Figure 2 of the paper):
//
//	0 — interval begins: (recover if needed,) compute for T, checkpoint for C
//	1 — interval committed: the checkpoint completed
//	2 — a failure occurred somewhere in the interval
//
// The state-0 transition quantities are evaluated under the
// future-lifetime distribution F_t conditioned on the resource's
// current age t (Eq. 8), while the state-2 quantities use the
// unconditional distribution because a failure has just reset the
// resource's age — this asymmetry is exactly what makes non-memoryless
// schedules aperiodic.
//
// Unlike the two classical simplifications the paper calls out, this
// model permits failures during both checkpointing and recovery, and
// it does not assume exponential availability.
package markov

import (
	"errors"
	"fmt"
	"math"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/mathx"
)

// Costs holds the fixed per-interval overhead parameters, all in
// seconds of (virtual) time.
type Costs struct {
	// C is the checkpoint cost: the time the application is blocked
	// while its state traverses the network to stable storage.
	C float64
	// R is the recovery cost: the time to re-fetch the last checkpoint
	// after a failure. The paper sets R = C throughout, matching its
	// Condor measurements.
	R float64
	// L is the checkpoint latency: how stale the last stable
	// checkpoint is when a failure interrupts an interval. With
	// sequential (blocking) checkpointing latency equals overhead, so
	// callers normally set L = C; NewCosts does this when L is zero
	// and C > 0.
	L float64
}

// ErrZeroCost reports a degenerate zero (or negative/non-finite)
// checkpoint cost. A zero C breaks the optimizer's bracket geometry
// (At assumes span0 = C + T has a positive cost component, and Γ/T
// degenerates toward "checkpoint continuously for free"), and in
// practice a measured zero means a fully deduped delta transfer — a
// lucky sample, not a cost model. Callers with measured costs should
// floor them (see forecast.CostModel) before building Costs.
var ErrZeroCost = errors.New("markov: checkpoint cost must be positive")

// NewCosts builds Costs with the paper's conventions: if r < 0 it
// defaults to c (the paper's "C = R" assumption), and if l < 0 it
// defaults to c (sequential checkpointing). c must be strictly
// positive and finite; zero is rejected with ErrZeroCost.
func NewCosts(c, r, l float64) (Costs, error) {
	if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
		return Costs{}, fmt.Errorf("%w: got %g", ErrZeroCost, c)
	}
	if r < 0 {
		r = c
	}
	if l < 0 {
		l = c
	}
	return Costs{C: c, R: r, L: l}, nil
}

// CostFunc maps a work-interval length T (seconds) to the checkpoint
// cost C(T) (seconds). Delta checkpointing makes the cost genuinely
// interval-dependent: a longer interval dirties more chunks, so more
// bytes cross the wire. The function must be deterministic — the
// optimizer probes it dozens of times per age and the schedule-cache
// contracts assume identical inputs give identical schedules.
type CostFunc func(T float64) float64

// minVariableCost floors sanitized CostFunc values. A measured or
// modeled cost can legitimately approach zero (a fully deduped delta),
// but the optimizer's bracket geometry needs a positive cost span —
// the same degeneracy NewCosts rejects for constant C.
const minVariableCost = 1e-3

// Model evaluates the Markov chain for one availability distribution
// and one set of overhead costs.
type Model struct {
	// Avail is the (unconditional) availability distribution of the
	// resource.
	Avail dist.Distribution
	// Costs are the checkpoint/recovery/latency overheads.
	Costs Costs
	// CostFn, when non-nil, generalizes the constant checkpoint cost
	// to C(T): every place the chain consumes Costs.C (and Costs.L,
	// since sequential checkpointing keeps latency equal to overhead)
	// evaluates CostFn(T) instead, sanitized by costAt. Costs.R is
	// untouched — recovery always re-fetches a full image, so its cost
	// does not shrink with delta encoding. A nil CostFn reproduces the
	// constant-C arithmetic bit for bit.
	CostFn CostFunc
}

// costAt resolves the checkpoint cost and latency for interval T.
// With no cost curve configured it returns the constant Costs values
// unchanged — the loads feed the exact same expressions as before, so
// the constant path stays bitwise identical to the pre-CostFn model.
// With a curve, non-finite or non-positive values fall back to the
// constant C (the curve is advisory; the constant is the contract),
// and finite positive values are floored at minVariableCost.
func (m Model) costAt(T float64) (c, l float64) {
	if m.CostFn == nil {
		return m.Costs.C, m.Costs.L
	}
	v := m.CostFn(T)
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		v = m.Costs.C
	}
	if v < minVariableCost {
		v = minVariableCost
	}
	return v, v
}

// Transitions holds the transition probabilities P_ij and expected
// sojourn costs K_ij of the three-state chain for a particular work
// interval T and resource age.
type Transitions struct {
	P01, K01 float64 // interval succeeds: survive C+T under F_age
	P02, K02 float64 // interval fails: failure time conditional mean
	P21, K21 float64 // restart succeeds: survive L+R+T (unconditional)
	P22, K22 float64 // restart fails again
}

// At computes the transition quantities for work interval T when the
// resource has been available for age seconds. T must be positive.
func (m Model) At(T, age float64) Transitions {
	var tr Transitions
	c := dist.NewConditional(m.Avail, age)
	ckptC, ckptL := m.costAt(T)

	// State 0 under the future-lifetime distribution.
	span0 := ckptC + T
	tr.P01 = c.Survival(span0)
	tr.K01 = span0
	tr.P02 = 1 - tr.P01
	if tr.P02 > 0 {
		tr.K02 = c.PartialMoment(span0) / tr.P02
	}

	// State 2 under the unconditional distribution (age has reset).
	span2 := ckptL + m.Costs.R + T
	tr.P21 = m.Avail.Survival(span2)
	tr.K21 = span2
	tr.P22 = 1 - tr.P21
	if tr.P22 > 0 {
		tr.K22 = m.Avail.PartialMoment(span2) / tr.P22
	}
	return tr
}

// Gamma returns Γ, the expected wall-clock time to advance from state
// 0 to state 1 — i.e. to commit one work interval of length T — when
// the resource has been available for age seconds (Eq. 11):
//
//	Γ = P01·K01 + P02·(K02 + K22·P22/P21 + K21)
//
// (the paper's "K20" term is a typographical slip for K21: the closed
// form follows from E2 = P21·K21 + P22·(K22 + E2)). Gamma returns +Inf
// when the restart loop cannot terminate (P21 = 0).
func (m Model) Gamma(T, age float64) float64 {
	if T <= 0 {
		return math.Inf(1)
	}
	tr := m.At(T, age)
	if tr.P02 <= 0 {
		// Failure within the interval is impossible; the interval
		// always commits in C+T.
		return tr.K01
	}
	if tr.P21 <= 0 {
		return math.Inf(1)
	}
	e2 := tr.K21 + tr.K22*tr.P22/tr.P21
	return tr.P01*tr.K01 + tr.P02*(tr.K02+e2)
}

// OverheadRatio returns Γ(T)/T, the expected wall-clock cost per unit
// of useful work. Its minimizer is the optimal work interval.
func (m Model) OverheadRatio(T, age float64) float64 {
	g := m.Gamma(T, age)
	if math.IsInf(g, 1) {
		return g
	}
	return g / T
}

// Efficiency returns T/Γ(T), the expected fraction of wall-clock time
// spent on useful work for interval length T — the quantity averaged
// in the paper's Figure 3 and Table 1.
func (m Model) Efficiency(T, age float64) float64 {
	return 1 / m.OverheadRatio(T, age)
}

// OptimizeOptions tunes the T_opt search.
type OptimizeOptions struct {
	// TMin and TMax bound the search (seconds). Defaults: 1 and 30
	// days.
	TMin, TMax float64
	// GridPoints is the size of the coarse geometric scan that
	// brackets the golden-section refinement. Default 64.
	GridPoints int
	// Tol is the relative tolerance on T_opt. Default 1e-6.
	Tol float64
}

func (o *OptimizeOptions) setDefaults() {
	if o.TMin <= 0 {
		o.TMin = 1
	}
	if o.TMax <= o.TMin {
		o.TMax = 30 * 24 * 3600
	}
	if o.GridPoints <= 0 {
		o.GridPoints = 64
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
}

// ErrDegenerate is returned when no finite-overhead work interval
// exists (e.g. the restart loop cannot complete for any T in range).
var ErrDegenerate = errors.New("markov: no feasible work interval")

// Topt finds the work interval T minimizing the overhead ratio Γ(T)/T
// for a resource of the given age, using a coarse geometric scan
// followed by Golden Section refinement (§3.5 uses Golden Section
// Search from Numerical Recipes).
func (m Model) Topt(age float64, opts OptimizeOptions) (T, ratio float64, err error) {
	T, ratio, _, err = m.toptCount(age, opts)
	return T, ratio, err
}

// toptCount is Topt plus the number of objective evaluations the
// search performed — the virtual time axis of BuildSchedule's trace
// spans. evals is 0 when neither the eval counter nor the tracer is
// live (the wrapper is skipped entirely on the disabled path).
func (m Model) toptCount(age float64, opts OptimizeOptions) (T, ratio float64, evals uint64, err error) {
	opts.setDefaults()
	e := m.evaluator(age)
	f := e.ratio
	var n uint64
	if countEvals() {
		f = countedRatio(f, &n)
	}
	T, ratio = mathx.MinimizeScanGolden(f, opts.TMin, opts.TMax, opts.GridPoints, opts.Tol)
	metrics.goldenEvals.Add(n)
	if math.IsInf(ratio, 1) || math.IsNaN(ratio) {
		return 0, 0, n, ErrDegenerate
	}
	return T, ratio, n, nil
}

// warmMinSurvival bounds where the warm-start search is trusted. Deep
// in the availability law's tail (S(age) below this), the conditional
// Γ arithmetic divides by a vanishing survival mass: the objective
// flattens into numerical noise, grows spurious basins, and its global
// argmin can jump far beyond any local window — the one regime where
// tracking the previous optimum silently diverges from the full scan.
// The cold 64-point scan is the reference there.
const warmMinSurvival = 1e-6

// toptWarm is the warm-start variant of Topt used by BuildSchedule: it
// seeds the search from prev, the optimal interval found at the
// previous (nearby) age, and evaluates only a narrow window of the
// geometric grid. ok is false when the warm bracket cannot be
// certified — the window best sat on a window edge, the window ratio
// was degenerate, or the age is so deep in the availability tail that
// the objective is numerically untrustworthy — and the caller must
// fall back to the cold Topt scan. A warm result, when ok, matches the
// cold scan bitwise whenever T_opt has drifted by less than the window
// width.
func (m Model) toptWarm(age, prev float64, opts OptimizeOptions) (T, ratio float64, evals uint64, ok bool) {
	opts.setDefaults()
	e := m.evaluator(age)
	if !(e.sAge >= warmMinSurvival) {
		return 0, 0, 0, false
	}
	f := e.ratio
	var n uint64
	if countEvals() {
		f = countedRatio(f, &n)
	}
	T, ratio, ok = mathx.MinimizeWarmScanGolden(f, opts.TMin, opts.TMax, opts.GridPoints, opts.Tol, prev)
	metrics.goldenEvals.Add(n)
	if !ok || math.IsInf(ratio, 1) || math.IsNaN(ratio) {
		return 0, 0, n, false
	}
	return T, ratio, n, true
}

// gammaEvaluator computes Γ(T) at one fixed resource age with the
// age-constant base-distribution terms — S(age), F(age), and the
// partial moment PM(age) — hoisted out of the per-T inner loop. Every
// T_opt search probes Γ dozens of times at the same age, and those
// three terms cost three of the eight special-function evaluations
// behind each probe.
//
// The arithmetic below reproduces Model.Gamma exactly: the same
// base-distribution calls combined by the same expressions in the same
// order (compare At and dist.Conditional), so optimizers driven by the
// evaluator return bit-identical abscissae and ratios. That invariant
// is what lets the caching claim "identical table and figure numbers";
// any change here must preserve it or the determinism tests fail.
type gammaEvaluator struct {
	m      Model
	age    float64
	sAge   float64 // base Survival(age)
	cdfAge float64 // base CDF(age)
	pmAge  float64 // base PartialMoment(age)
}

// evaluator precomputes the age-fixed quantities for Γ evaluation at
// the given age (clamped to zero like dist.NewConditional).
func (m Model) evaluator(age float64) gammaEvaluator {
	if age < 0 {
		age = 0
	}
	return gammaEvaluator{
		m:      m,
		age:    age,
		sAge:   m.Avail.Survival(age),
		cdfAge: m.Avail.CDF(age),
		pmAge:  m.Avail.PartialMoment(age),
	}
}

// gamma evaluates Γ(T) with the cached age terms; it mirrors
// Model.Gamma exactly.
func (e gammaEvaluator) gamma(T float64) float64 {
	if T <= 0 {
		return math.Inf(1)
	}
	m := e.m
	ckptC, ckptL := m.costAt(T)

	// State 0 under the future-lifetime distribution. span0 > 0, so
	// the x<=0 guards of dist.Conditional never fire here.
	span0 := ckptC + T
	var P01 float64
	if e.sAge > 0 {
		P01 = m.Avail.Survival(e.age+span0) / e.sAge
	}
	K01 := span0
	P02 := 1 - P01
	if P02 <= 0 {
		return K01
	}
	var K02 float64
	if e.sAge > 0 {
		dF := m.Avail.CDF(e.age+span0) - e.cdfAge
		pm := (m.Avail.PartialMoment(e.age+span0) - e.pmAge - e.age*dF) / e.sAge
		K02 = pm / P02
	}

	// State 2 under the unconditional distribution (age has reset).
	span2 := ckptL + m.Costs.R + T
	P21 := m.Avail.Survival(span2)
	if P21 <= 0 {
		return math.Inf(1)
	}
	K21 := span2
	P22 := 1 - P21
	var K22 float64
	if P22 > 0 {
		K22 = m.Avail.PartialMoment(span2) / P22
	}
	e2 := K21 + K22*P22/P21
	return P01*K01 + P02*(K02+e2)
}

// ratio evaluates Γ(T)/T, the optimization objective.
func (e gammaEvaluator) ratio(T float64) float64 {
	g := e.gamma(T)
	if math.IsInf(g, 1) {
		return g
	}
	return g / T
}
