package serve

import (
	"sync"
	"sync/atomic"

	"github.com/cycleharvest/ckptsched/internal/markov"
)

// scheduleStore holds built schedules keyed by the client's key, with
// the same shape as the sharded fit.Cache: power-of-two lock shards so
// the interval route's read path contends only within a shard, entries
// that coalesce concurrent builders (the first POST for a key builds,
// later ones wait on it), memoized build errors, and a size bound with
// oldest-finished eviction so an open-ended fleet key space cannot
// grow the store without limit.
type scheduleStore struct {
	shards      []storeShard
	mask        uint64
	maxPerShard int
	m           *serveMetrics
}

// storeShard is one lock domain. Reads take the read lock only for the
// map probe; everything else about an entry is reachable lock-free.
type storeShard struct {
	mu      sync.RWMutex
	entries map[string]*storeEntry
	order   []string
}

// storeEntry is one key's schedule. ready closes when the build
// finishes (either way); done flips first so the hot path can skip the
// channel receive once the entry is complete.
type storeEntry struct {
	ready chan struct{}
	done  atomic.Bool
	// hint is the last interval index served, fed back to LookupFrom as
	// its position hint. It is advisory and racy by design: a stale
	// hint only costs the quantized-index probe it would have saved.
	hint  atomic.Int32
	sched *markov.Schedule
	err   error
}

// wait blocks until the entry's build has finished.
func (e *storeEntry) wait() {
	if !e.done.Load() {
		<-e.ready
	}
}

func newScheduleStore(shards, maxEntries int, m *serveMetrics) *scheduleStore {
	size := 1
	for size < shards {
		size <<= 1
	}
	st := &scheduleStore{
		shards: make([]storeShard, size),
		mask:   uint64(size - 1),
		m:      m,
	}
	for i := range st.shards {
		st.shards[i].entries = make(map[string]*storeEntry)
	}
	if maxEntries > 0 {
		st.maxPerShard = maxEntries / size
		if st.maxPerShard < 1 {
			st.maxPerShard = 1
		}
	}
	return st
}

func (st *scheduleStore) shard(key string) *storeShard {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime
	}
	return &st.shards[h&st.mask]
}

// FNV-1a, duplicated from internal/fit to keep the packages
// dependency-light (the constants are universal).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// get returns the entry for key, or nil. The caller must wait() before
// touching sched/err.
func (st *scheduleStore) get(key string) *storeEntry {
	sh := st.shard(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	return e
}

// getBytes is get for a key that still aliases a network buffer (the
// fast path): the map probe's string(key) conversion is recognized by
// the compiler and does not allocate.
func (st *scheduleStore) getBytes(key []byte) *storeEntry {
	h := uint64(fnvOffset)
	for _, b := range key {
		h = (h ^ uint64(b)) * fnvPrime
	}
	sh := &st.shards[h&st.mask]
	sh.mu.RLock()
	e := sh.entries[string(key)]
	sh.mu.RUnlock()
	return e
}

// create returns key's entry and whether this caller created it (and
// therefore owns the build). With replace set, an existing finished
// entry is displaced by a fresh one; an in-flight entry is never
// displaced — the replacer joins it instead, so two concurrent
// replaces cannot build twice.
func (st *scheduleStore) create(key string, replace bool) (e *storeEntry, created bool) {
	sh := st.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		if !replace || !e.done.Load() {
			return e, false
		}
		// Displace: drop the old order slot; the append below re-adds.
		for i, k := range sh.order {
			if k == key {
				sh.order = append(sh.order[:i], sh.order[i+1:]...)
				break
			}
		}
		st.m.resident.Add(-1)
	}
	e = &storeEntry{ready: make(chan struct{})}
	sh.entries[key] = e
	sh.order = append(sh.order, key)
	st.m.resident.Add(1)
	if st.maxPerShard > 0 {
		st.evictLocked(sh)
	}
	return e, true
}

// evictLocked trims sh to its allotment, dropping the oldest finished
// entries; in-flight builds are never evicted. Caller holds sh.mu.
func (st *scheduleStore) evictLocked(sh *storeShard) {
	for len(sh.entries) > st.maxPerShard {
		evicted := false
		for i, k := range sh.order {
			if e := sh.entries[k]; e != nil && e.done.Load() {
				delete(sh.entries, k)
				sh.order = append(sh.order[:i], sh.order[i+1:]...)
				st.m.evictions.Inc()
				st.m.resident.Add(-1)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// complete publishes the build result and releases every waiter.
func (st *scheduleStore) complete(e *storeEntry, sched *markov.Schedule, err error) {
	e.sched, e.err = sched, err
	e.done.Store(true)
	close(e.ready)
	if err == nil {
		st.m.builds.Inc()
	}
}

// len reports resident entries, summing shard sizes one lock at a
// time (no global lock).
func (st *scheduleStore) len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}
