// Package serve exposes the fit→optimize→schedule pipeline as a
// long-running HTTP JSON service — the "schedule as a service" layer
// (DESIGN.md §15) that turns the one-shot CLI pipeline into something
// a fleet can query at rate.
//
// Routes:
//
//	POST /v1/fit                          fit a model family to a history (memoized per key)
//	POST /v1/schedule                     fit (or take params) and build a checkpoint schedule
//	GET  /v1/schedule/{key}               the stored schedule, in full
//	GET  /v1/schedule/{key}/interval?age= the O(1) interval lookup — the hot path
//	GET  /healthz, /metrics, /metrics/history, /debug/vars, /debug/trace/snapshot
//	GET  /debug/pprof/* (behind Options.Pprof)
//
// Three layers make it sustain load (cmd/ckpt-load drives ≥100k
// lookups/sec against one process):
//
//   - Sharded state. Fits go through the sharded single-flight
//     fit.Cache; schedules live in an equally sharded store whose
//     entries coalesce concurrent builders, so a thundering herd for
//     one cold key does the expensive work exactly once.
//
//   - Admission control. Each route has a bounded in-flight limit and
//     a bounded, deadline-capped wait queue; what doesn't fit is shed
//     with 429 + Retry-After rather than queued without bound, so
//     overload degrades throughput, not latency.
//
//   - An allocation-lean hot path. The interval route parses its own
//     query string, reuses the schedule's quantized O(1) lookup with a
//     shared position hint, and renders its response into a stack
//     buffer — no encoding/json, no url.Values.
//
// Graceful drain: Running.Shutdown stops the listener, lets in-flight
// requests finish, and returns once the serve goroutine has exited.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/cycleharvest/ckptsched/internal/cliflag"
	"github.com/cycleharvest/ckptsched/internal/core"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// Options configures a Server. The zero value is serviceable: no
// metrics, no tracing, host-sized sharding, bounded stores, default
// admission limits.
type Options struct {
	// Registry receives the serve_* metrics (DESIGN.md §15); nil turns
	// instrumentation off. The caller wires fit.Instrument and
	// markov.Instrument separately if it wants those layers observed.
	Registry *obs.Registry
	// Tracer records fit/schedule request spans and shed events on the
	// serve lane (pid 2). The interval hot path is deliberately
	// untraced. Nil disables tracing.
	Tracer *obs.Tracer
	// FitCache is the shared fit memo; nil builds a bounded sharded
	// cache (MaxFits entries).
	FitCache *fit.Cache
	// MaxFits bounds the default fit cache; 0 means 131072 entries.
	// Ignored when FitCache is supplied.
	MaxFits int
	// MaxSchedules bounds the schedule store; 0 means 65536, negative
	// means unbounded.
	MaxSchedules int
	// MaxBody caps request bodies in bytes; 0 means 8 MiB.
	MaxBody int64
	// Fit, Schedule, Interval are the per-route admission policies.
	// Zero fields take defaults: fits and schedule builds admit
	// 2×GOMAXPROCS with a 64-deep, 250 ms queue; interval lookups
	// admit 256 with a 1024-deep, 5 ms queue.
	Fit, Schedule, Interval RouteLimit
	// RetryAfter is the advisory Retry-After on 429 responses,
	// rounded up to whole seconds; 0 means 1 s.
	RetryAfter time.Duration
	// History, when set, is served at /metrics/history and receives the
	// per-route SLO burn-rate updates on its scrape cycle. Build it over
	// the same Registry so the slo_* gauges ride both expositions.
	// Starting the self-scraper remains the caller's job.
	History *obs.History
	// FitSLO, ScheduleSLO, IntervalSLO override the per-route
	// service-level objectives (zero fields keep route defaults: 2.5 s
	// at 99% for the heavy routes, 10 ms at 99.9% for interval).
	FitSLO, ScheduleSLO, IntervalSLO SLOTarget
	// Pprof mounts net/http/pprof under /debug/pprof/ — off by default
	// because profiling endpoints do not belong on an exposed port
	// unasked.
	Pprof bool
}

// SLOTarget overrides one route's service-level objective. Zero fields
// keep the route's default.
type SLOTarget struct {
	// Latency is the per-request bound in seconds; a slower success
	// still burns error budget.
	Latency float64
	// Objective is the availability target in (0,1), e.g. 0.999.
	Objective float64
}

// withDefaults fills zero fields from d.
func (t SLOTarget) withDefaults(d SLOTarget) SLOTarget {
	if t.Latency <= 0 {
		t.Latency = d.Latency
	}
	if t.Objective <= 0 || t.Objective >= 1 {
		t.Objective = d.Objective
	}
	return t
}

// Server routes and serves the scheduling API. Build with New; it is
// an http.Handler, so it can be mounted under a caller's server or run
// with Start.
type Server struct {
	opts                          Options
	fits                          *fit.Cache
	store                         *scheduleStore
	m                             serveMetrics
	limFit, limSched, limInterval *limiter
	sloFit, sloSched, sloInterval *obs.SLO
	retryAfterSec                 string

	// hookAdmitted, when set (tests only), runs after a request passes
	// admission for the named route — the seam the overload and drain
	// tests use to hold a request in flight deterministically.
	hookAdmitted func(route string)
}

// servePid is the trace lane (DESIGN.md §12) for request spans.
const servePid = 2

// New builds a Server from opts.
func New(opts Options) *Server {
	s := &Server{opts: opts}
	s.m.register(opts.Registry)
	s.fits = opts.FitCache
	if s.fits == nil {
		maxFits := opts.MaxFits
		if maxFits == 0 {
			maxFits = 1 << 17
		}
		s.fits = fit.NewCacheOpts(fit.CacheOptions{MaxEntries: maxFits})
	}
	maxSched := opts.MaxSchedules
	if maxSched == 0 {
		maxSched = 1 << 16
	}
	if maxSched < 0 {
		maxSched = 0
	}
	s.store = newScheduleStore(shardDefault(), maxSched, &s.m)

	heavy := RouteLimit{MaxInFlight: 2 * runtime.GOMAXPROCS(0), MaxQueued: 64, MaxWait: 250 * time.Millisecond}
	s.limFit = newLimiter(opts.Fit.withDefaults(heavy))
	s.limSched = newLimiter(opts.Schedule.withDefaults(heavy))
	s.limInterval = newLimiter(opts.Interval.withDefaults(
		RouteLimit{MaxInFlight: 256, MaxQueued: 1024, MaxWait: 5 * time.Millisecond}))

	ra := opts.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	s.retryAfterSec = strconv.Itoa(int((ra + time.Second - 1) / time.Second))

	heavySLO := SLOTarget{Latency: 2.5, Objective: 0.99}
	fitSLO := opts.FitSLO.withDefaults(heavySLO)
	schedSLO := opts.ScheduleSLO.withDefaults(heavySLO)
	intSLO := opts.IntervalSLO.withDefaults(SLOTarget{Latency: 0.01, Objective: 0.999})
	s.sloFit = obs.NewSLO(opts.Registry, "fit", fitSLO.Latency, fitSLO.Objective)
	s.sloSched = obs.NewSLO(opts.Registry, "schedule", schedSLO.Latency, schedSLO.Objective)
	s.sloInterval = obs.NewSLO(opts.Registry, "interval", intSLO.Latency, intSLO.Objective)
	if h := opts.History; h != nil {
		s.sloFit.Attach(h)
		s.sloSched.Attach(h)
		s.sloInterval.Attach(h)
	}
	return s
}

// shardDefault sizes the schedule store's shard count like the fit
// cache does: 8 lock domains per P, clamped to [8, 512].
func shardDefault() int {
	n := 8 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	return n
}

// FitCache returns the server's fit memo (for preloading).
func (s *Server) FitCache() *fit.Cache { return s.fits }

// Schedules reports how many schedules are resident.
func (s *Server) Schedules() int { return s.store.len() }

// ServeHTTP routes requests. The interval route is matched by hand —
// not via http.ServeMux patterns — because mux wildcard matching
// allocates per request and this path is the one that runs a hundred
// thousand times a second.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)
	path := r.URL.Path
	if strings.HasPrefix(path, "/debug/pprof") {
		if !s.opts.Pprof {
			s.errorf(w, http.StatusNotFound, "profiling is not enabled")
			return
		}
		switch path {
		case "/debug/pprof/cmdline":
			pprof.Cmdline(w, r)
		case "/debug/pprof/profile":
			pprof.Profile(w, r)
		case "/debug/pprof/symbol":
			pprof.Symbol(w, r)
		case "/debug/pprof/trace":
			pprof.Trace(w, r)
		default:
			// Index also serves the named runtime profiles
			// (/debug/pprof/heap, /goroutine, ...).
			pprof.Index(w, r)
		}
		return
	}
	if strings.HasPrefix(path, "/v1/schedule/") {
		rest := path[len("/v1/schedule/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			if rest[i+1:] == "interval" && i > 0 {
				s.handleInterval(w, r, rest[:i])
				return
			}
		} else if rest != "" {
			s.handleGetSchedule(w, r, rest)
			return
		}
		s.errorf(w, http.StatusNotFound, "no such route")
		return
	}
	switch path {
	case "/v1/fit":
		s.handleFit(w, r)
	case "/v1/schedule":
		s.handleSchedule(w, r)
	case "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	case "/metrics":
		s.opts.Registry.Handler().ServeHTTP(w, r)
	case "/metrics/history":
		if s.opts.History == nil {
			s.errorf(w, http.StatusNotFound, "history is not enabled")
			return
		}
		s.opts.History.Handler().ServeHTTP(w, r)
	case "/debug/vars":
		expvar.Handler().ServeHTTP(w, r)
	case "/debug/trace/snapshot":
		if s.opts.Tracer == nil {
			s.errorf(w, http.StatusNotFound, "tracing is not enabled")
			return
		}
		s.opts.Tracer.SnapshotHandler().ServeHTTP(w, r)
	default:
		s.errorf(w, http.StatusNotFound, "no such route")
	}
}

// errorf writes a JSON error body with the given status.
func (s *Server) errorf(w http.ResponseWriter, status int, format string, args ...any) {
	s.m.errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, `{"error":%s}`+"\n", msg)
}

// shed answers 429 with the advisory Retry-After — admission control
// turned the request away to keep the queues bounded.
func (s *Server) shed(w http.ResponseWriter, route string) {
	s.m.shed.Inc()
	if t := s.opts.Tracer; t != nil {
		t.Event(servePid, 1, "serve.shed", obs.AttrStr("route", route))
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", s.retryAfterSec)
	w.WriteHeader(http.StatusTooManyRequests)
	io.WriteString(w, `{"error":"overloaded; retry after the indicated delay"}`+"\n")
}

// decodeBody decodes a JSON request body into dst, bounding its size.
func (s *Server) decodeBody(r *http.Request, dst any) error {
	maxBody := s.opts.MaxBody
	if maxBody <= 0 {
		maxBody = 8 << 20
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBody+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("body: %w", err)
	}
	return nil
}

// fieldErr labels a request-field failure the way cliflag does, so the
// joined 400 body names every bad field at once.
func fieldErr(ck *cliflag.Checker, field, msg string) {
	ck.Check(field, errors.New(msg))
}

type fitRequest struct {
	Key   string    `json:"key"`
	Model string    `json:"model"`
	Data  []float64 `json:"data"`
}

type fitResponse struct {
	Key    string    `json:"key"`
	Model  string    `json:"model"`
	Params []float64 `json:"params"`
	N      int       `json:"n"`
}

// handleFit classifies the request against the fit SLO on every exit
// path: serveFit reports whether the client got a 2xx, and anything
// else — including a shed — burns error budget.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ok := s.serveFit(w, r, start)
	s.sloFit.Observe(time.Since(start).Seconds(), ok)
}

func (s *Server) serveFit(w http.ResponseWriter, r *http.Request, start time.Time) bool {
	s.m.fitReqs.Inc()
	if r.Method != http.MethodPost {
		s.errorf(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if !s.limFit.acquire() {
		s.shed(w, "fit")
		return false
	}
	defer s.limFit.release()
	if s.hookAdmitted != nil {
		s.hookAdmitted("fit")
	}
	var sp *obs.Span
	if t := s.opts.Tracer; t != nil {
		sp = t.StartSpan(servePid, 1, "serve.fit")
		defer sp.End()
	}

	var req fitRequest
	if err := s.decodeBody(r, &req); err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return false
	}
	var ck cliflag.Checker
	if req.Key == "" {
		fieldErr(&ck, "key", "must be non-empty")
	}
	model, err := fit.ParseModel(req.Model)
	ck.Check("model", err)
	if len(req.Data) == 0 {
		fieldErr(&ck, "data", "must be non-empty")
	}
	if err := ck.Err(); err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return false
	}
	sp.SetAttr(obs.AttrStr("key", req.Key), obs.AttrStr("model", req.Model))

	d, err := s.fits.Fit(req.Key, model, req.Data)
	switch {
	case errors.Is(err, fit.ErrKeyReuse):
		s.errorf(w, http.StatusConflict, "%v", err)
		return false
	case err != nil:
		s.errorf(w, http.StatusUnprocessableEntity, "fit: %v", err)
		return false
	}
	_, params, err := core.ParamsOf(d)
	if err != nil {
		s.errorf(w, http.StatusInternalServerError, "%v", err)
		return false
	}
	s.writeJSON(w, fitResponse{Key: req.Key, Model: model.String(), Params: params, N: len(req.Data)})
	s.m.fitLat.Observe(time.Since(start).Seconds())
	return true
}

type scheduleRequest struct {
	Key    string    `json:"key"`
	Model  string    `json:"model"`
	Data   []float64 `json:"data,omitempty"`
	Params []float64 `json:"params,omitempty"`
	// C and R are the overhead costs in seconds; omit R (or send -1)
	// for the paper's R = C convention.
	C float64  `json:"c"`
	R *float64 `json:"r,omitempty"`
	// Telapsed is how long the resource has already been available.
	Telapsed float64 `json:"telapsed"`
	// Horizon and MaxIntervals bound the plan (markov defaults apply
	// when zero).
	Horizon      float64 `json:"horizon"`
	MaxIntervals int     `json:"max_intervals"`
	// Replace rebuilds even if the key already has a schedule;
	// otherwise a POST for a stored key returns it (coalesced).
	Replace bool `json:"replace"`
}

type scheduleResponse struct {
	Key       string  `json:"key"`
	Model     string  `json:"model,omitempty"`
	Intervals int     `json:"intervals"`
	Horizon   float64 `json:"horizon"`
	T0        float64 `json:"t0"`
	Cached    bool    `json:"cached"`
}

// handleSchedule classifies the request against the schedule SLO on
// every exit path, the same wrapper shape as handleFit.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ok := s.serveSchedule(w, r, start)
	s.sloSched.Observe(time.Since(start).Seconds(), ok)
}

func (s *Server) serveSchedule(w http.ResponseWriter, r *http.Request, start time.Time) bool {
	s.m.schedReqs.Inc()
	if r.Method != http.MethodPost {
		s.errorf(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if !s.limSched.acquire() {
		s.shed(w, "schedule")
		return false
	}
	defer s.limSched.release()
	if s.hookAdmitted != nil {
		s.hookAdmitted("schedule")
	}
	var sp *obs.Span
	if t := s.opts.Tracer; t != nil {
		sp = t.StartSpan(servePid, 1, "serve.schedule")
		defer sp.End()
	}

	var req scheduleRequest
	if err := s.decodeBody(r, &req); err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return false
	}
	var ck cliflag.Checker
	if req.Key == "" {
		fieldErr(&ck, "key", "must be non-empty")
	}
	model, err := fit.ParseModel(req.Model)
	ck.Check("model", err)
	switch {
	case len(req.Data) == 0 && len(req.Params) == 0:
		fieldErr(&ck, "data", "need data (a history to fit) or params (an explicit distribution)")
	case len(req.Data) > 0 && len(req.Params) > 0:
		fieldErr(&ck, "data", "data and params are mutually exclusive")
	}
	ck.NonNegative("c", req.C)
	// A missing or negative r selects the paper's R = C convention, so
	// the only thing to validate is finiteness — and JSON cannot carry
	// NaN or ±Inf, so there is nothing left to reject.
	rCost := -1.0
	if req.R != nil {
		rCost = *req.R
	}
	ck.NonNegative("telapsed", req.Telapsed)
	ck.NonNegative("horizon", req.Horizon)
	ck.NonNegativeInt("max_intervals", req.MaxIntervals)
	if err := ck.Err(); err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return false
	}
	costs, err := markov.NewCosts(req.C, rCost, -1)
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "%v", err)
		return false
	}
	sp.SetAttr(obs.AttrStr("key", req.Key), obs.AttrStr("model", req.Model))

	e, created := s.store.create(req.Key, req.Replace)
	if !created {
		// Coalesce: join the stored (or in-flight) build.
		s.m.coalesced.Inc()
		e.wait()
		if e.err != nil {
			s.errorf(w, http.StatusUnprocessableEntity, "schedule: %v", e.err)
			return false
		}
		s.respondSchedule(w, req.Key, "", e.sched, true)
		s.m.schedLat.Observe(time.Since(start).Seconds())
		return true
	}

	sched, err := s.buildSchedule(req, model, costs)
	s.store.complete(e, sched, err)
	if err != nil {
		s.errorf(w, http.StatusUnprocessableEntity, "schedule: %v", err)
		return false
	}
	s.respondSchedule(w, req.Key, model.String(), sched, false)
	s.m.schedLat.Observe(time.Since(start).Seconds())
	return true
}

// buildSchedule resolves the availability distribution (explicit
// params, or a cached fit of the posted history) and plans from it.
func (s *Server) buildSchedule(req scheduleRequest, model fit.Model, costs markov.Costs) (*markov.Schedule, error) {
	var d dist.Distribution
	var err error
	if len(req.Params) > 0 {
		d, err = core.DistFromParams(model, req.Params)
	} else {
		d, err = s.fits.Fit(req.Key, model, req.Data)
	}
	if err != nil {
		return nil, err
	}
	m := markov.Model{Avail: d, Costs: costs}
	return m.BuildSchedule(req.Telapsed, markov.ScheduleOptions{
		Horizon:      req.Horizon,
		MaxIntervals: req.MaxIntervals,
	})
}

func (s *Server) respondSchedule(w http.ResponseWriter, key, model string, sched *markov.Schedule, cached bool) {
	resp := scheduleResponse{
		Key:       key,
		Model:     model,
		Intervals: sched.Len(),
		Horizon:   sched.Horizon(),
		Cached:    cached,
	}
	if sched.Len() > 0 {
		resp.T0 = sched.Intervals[0]
	}
	s.writeJSON(w, resp)
}

type scheduleDoc struct {
	Key       string       `json:"key"`
	Costs     markov.Costs `json:"costs"`
	Intervals []float64    `json:"intervals"`
	Ages      []float64    `json:"ages"`
	Ratios    []float64    `json:"ratios"`
}

func (s *Server) handleGetSchedule(w http.ResponseWriter, r *http.Request, key string) {
	if r.Method != http.MethodGet {
		s.errorf(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	e := s.store.get(key)
	if e == nil {
		s.errorf(w, http.StatusNotFound, "no schedule for key %q", key)
		return
	}
	e.wait()
	if e.err != nil {
		s.errorf(w, http.StatusUnprocessableEntity, "schedule: %v", e.err)
		return
	}
	s.writeJSON(w, scheduleDoc{
		Key:       key,
		Costs:     e.sched.Costs,
		Intervals: e.sched.Intervals,
		Ages:      e.sched.Ages,
		Ratios:    e.sched.Ratios,
	})
}

// handleInterval is the hot path: an O(1) quantized schedule lookup
// rendered without encoding/json or url.Values. The SLO wrapper stays
// closure-free (serveInterval returns success) so the route's
// allocation budget is untouched.
func (s *Server) handleInterval(w http.ResponseWriter, r *http.Request, key string) {
	start := time.Now()
	ok := s.serveInterval(w, r, key, start)
	s.sloInterval.Observe(time.Since(start).Seconds(), ok)
}

func (s *Server) serveInterval(w http.ResponseWriter, r *http.Request, key string, start time.Time) bool {
	s.m.intervalReqs.Inc()
	if r.Method != http.MethodGet {
		s.errorf(w, http.StatusMethodNotAllowed, "GET only")
		return false
	}
	if !s.limInterval.acquire() {
		s.shed(w, "interval")
		return false
	}
	defer s.limInterval.release()
	if s.hookAdmitted != nil {
		s.hookAdmitted("interval")
	}
	age, ok := ageFromQuery(r.URL.RawQuery)
	if !ok {
		s.errorf(w, http.StatusBadRequest, "age: must be a finite number ≥ 0")
		return false
	}
	e := s.store.get(key)
	if e == nil {
		s.errorf(w, http.StatusNotFound, "no schedule for key %q", key)
		return false
	}
	e.wait()
	if e.err != nil {
		s.errorf(w, http.StatusUnprocessableEntity, "schedule: %v", e.err)
		return false
	}
	T, idx, extended, ok := e.sched.LookupFrom(age, int(e.hint.Load()))
	if !ok {
		s.errorf(w, http.StatusUnprocessableEntity, "schedule for %q is empty", key)
		return false
	}
	e.hint.Store(int32(idx))

	var buf [96]byte
	b := appendIntervalBody(buf[:0], T, idx, extended)
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	s.m.intervalLat.Observe(time.Since(start).Seconds())
	return true
}

// ageFromQuery extracts the age parameter from a raw query string.
// Absent age means 0 (a fresh resource); a malformed, negative, or
// non-finite age is rejected.
func ageFromQuery(q string) (float64, bool) {
	for len(q) > 0 {
		kv := q
		if i := strings.IndexByte(q, '&'); i >= 0 {
			kv, q = q[:i], q[i+1:]
		} else {
			q = ""
		}
		if strings.HasPrefix(kv, "age=") {
			v, err := strconv.ParseFloat(kv[len("age="):], 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return 0, false
			}
			return v, true
		}
	}
	return 0, true
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The header is out; nothing useful left to do.
		_ = err
	}
}

// Running is a live listener serving a Server, with graceful drain.
type Running struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Start binds addr (":0" for an ephemeral port) and serves s on it.
func (s *Server) Start(addr string) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rn := &Running{
		srv: &http.Server{
			Handler: s,
			// Slowloris guard; generous because ckpt-load batches.
			ReadHeaderTimeout: 30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(rn.done)
		if err := rn.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails this way on a broken listener; the next
			// Shutdown returns the real story.
			_ = err
		}
	}()
	return rn, nil
}

// Addr is the bound listen address.
func (rn *Running) Addr() net.Addr { return rn.ln.Addr() }

// Shutdown gracefully drains: no new connections, in-flight requests
// run to completion (until ctx expires), and the serve goroutine has
// exited by the time it returns.
func (rn *Running) Shutdown(ctx context.Context) error {
	err := rn.srv.Shutdown(ctx)
	<-rn.done
	return err
}
