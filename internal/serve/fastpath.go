package serve

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The fast path is a second, optional listener that speaks just enough
// HTTP/1.1 to serve the interval route — the one that runs at fleet
// rate. net/http costs ~10 µs of single-core CPU per request here
// (request parse, header map, per-response flush); under a profiler at
// saturation that is one write(2) per response plus a third of the CPU
// in parsing, which caps a 1-core box near 100k req/s. The fast path
// removes exactly those costs and nothing else:
//
//   - requests are parsed in place from the connection's read buffer
//     (the route shape is fixed, so parsing is substring arithmetic);
//   - responses are appended to a write buffer that flushes only when
//     the read buffer has no more pipelined requests — one syscall per
//     batch instead of per response;
//   - admission control, the schedule store, metrics, and response
//     bytes are shared with the net/http handler, so both planes give
//     byte-identical JSON and the same 429/404 semantics.
//
// Anything that is not a well-formed interval GET gets a 400/404 and,
// for safety, the connection is closed — the control plane (fits,
// schedule builds, metrics scrapes) belongs on the main port.

// FastRunning is a live fast-path listener; Shutdown drains it.
type FastRunning struct {
	s        *Server
	ln       net.Listener
	done     chan struct{}
	draining atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// StartFast binds addr with the interval-only fast path. It serves the
// same GET /v1/schedule/{key}/interval?age= wire format as the main
// server, at several times the request rate.
func (s *Server) StartFast(addr string) (*FastRunning, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fr := &FastRunning{
		s:     s,
		ln:    ln,
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	go fr.acceptLoop()
	return fr, nil
}

// Addr is the bound listen address.
func (fr *FastRunning) Addr() net.Addr { return fr.ln.Addr() }

func (fr *FastRunning) acceptLoop() {
	defer close(fr.done)
	for {
		c, err := fr.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		fr.mu.Lock()
		if fr.draining.Load() {
			fr.mu.Unlock()
			c.Close()
			return
		}
		fr.conns[c] = struct{}{}
		fr.wg.Add(1)
		fr.mu.Unlock()
		go fr.serveConn(c)
	}
}

// Shutdown drains the fast path: the listener closes immediately, each
// connection finishes the batch it is serving and exits at the next
// request boundary, and connections still open when ctx expires are
// closed hard.
func (fr *FastRunning) Shutdown(ctx context.Context) error {
	fr.draining.Store(true)
	fr.ln.Close()
	<-fr.done

	drained := make(chan struct{})
	go func() {
		fr.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		fr.mu.Lock()
		for c := range fr.conns {
			c.Close()
		}
		fr.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

const (
	fastReadBuf  = 32 << 10
	fastWriteBuf = 32 << 10
	// fastIdle bounds how long an idle keep-alive connection may sit
	// between batches; fastDrainPoll is how often an idle connection
	// re-checks the draining flag, so graceful shutdown completes in
	// one poll interval instead of waiting out the idle budget.
	fastIdle      = 2 * time.Minute
	fastDrainPoll = 250 * time.Millisecond
)

// Canned response fragments. The fast path skips the optional Date
// header on purpose: formatting it is measurable at rate and no
// consumer of a scheduling lookup wants the wall clock.
var (
	fastOKPrefix  = []byte("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: ")
	fast400       = fastCanned("400 Bad Request", `{"error":"age: must be a finite number ≥ 0"}`+"\n")
	fast429Prefix = []byte("HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\nRetry-After: ")
)

// fast404 keeps the connection open: a lookup for a machine nobody
// scheduled is a normal fleet event, and closing would take the rest
// of the pipelined stream down with it.
var fast404 = func() []byte {
	body := `{"error":"no such schedule"}` + "\n"
	return []byte(fmt.Sprintf(
		"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body))
}()

// fast429Body carries its own Content-Length; the 429 keeps the
// connection open (shedding is transient, closing would make every
// retry pay a reconnect).
var fast429Body = func() []byte {
	body := `{"error":"overloaded; retry after the indicated delay"}` + "\n"
	return []byte(fmt.Sprintf("\r\nContent-Length: %d\r\n\r\n%s", len(body), body))
}()

// fastCanned renders a terminal error response; Content-Length is the
// byte length (the 400 body holds a multi-byte ≥), and the connection
// closes after it.
func fastCanned(status, body string) []byte {
	return []byte(fmt.Sprintf(
		"HTTP/1.1 %s\r\nContent-Type: application/json\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s",
		status, len(body), body))
}

func (fr *FastRunning) serveConn(c net.Conn) {
	defer func() {
		fr.mu.Lock()
		delete(fr.conns, c)
		fr.mu.Unlock()
		c.Close()
		fr.wg.Done()
	}()
	s := fr.s
	br := bufio.NewReaderSize(c, fastReadBuf)
	bw := bufio.NewWriterSize(c, fastWriteBuf)
	var scratch [96]byte
	var lenScratch [8]byte
	// keyBuf holds a copy of the request's key: the parsed slice
	// aliases the read buffer, which skipHeaders' next ReadSlice may
	// compact — the bytes must be captured before headers are consumed.
	var keyBuf [256]byte
	for {
		if br.Buffered() == 0 {
			// Batch boundary: everything parsed so far goes out in one
			// write, then block for the next batch.
			if bw.Buffered() > 0 {
				if bw.Flush() != nil {
					return
				}
			}
			if !fr.waitForBatch(c, br) {
				return
			}
		}
		start := time.Now()
		line, err := br.ReadSlice('\n')
		if err != nil {
			// A request line longer than the read buffer lands here too
			// (ErrBufferFull): nothing legitimate is that long.
			return
		}
		s.m.requests.Inc()
		s.m.intervalReqs.Inc()
		key, age, ok := parseFastRequest(line)
		if ok && len(key) <= len(keyBuf) {
			key = keyBuf[:copy(keyBuf[:], key)]
		} else {
			ok = false
		}
		if !ok || !skipHeaders(br) {
			bw.Write(fast400)
			bw.Flush()
			s.m.errors.Inc()
			s.sloInterval.Observe(time.Since(start).Seconds(), false)
			return
		}
		if !s.limInterval.acquire() {
			s.m.shed.Inc()
			bw.Write(fast429Prefix)
			bw.WriteString(s.retryAfterSec)
			bw.Write(fast429Body)
			s.sloInterval.Observe(time.Since(start).Seconds(), false)
			continue
		}
		e := s.store.getBytes(key)
		var body []byte
		if e != nil {
			e.wait()
			if e.err == nil {
				if T, idx, extended, ok := e.sched.LookupFrom(age, int(e.hint.Load())); ok {
					e.hint.Store(int32(idx))
					body = appendIntervalBody(scratch[:0], T, idx, extended)
				}
			}
		}
		s.limInterval.release()
		if body == nil {
			bw.Write(fast404)
			s.m.errors.Inc()
			s.sloInterval.Observe(time.Since(start).Seconds(), false)
			continue
		}
		bw.Write(fastOKPrefix)
		bw.Write(strconv.AppendInt(lenScratch[:0], int64(len(body)), 10))
		bw.WriteString("\r\n\r\n")
		bw.Write(body)
		elapsed := time.Since(start).Seconds()
		s.m.intervalLat.Observe(elapsed)
		s.sloInterval.Observe(elapsed, true)
	}
}

// waitForBatch blocks until the connection has bytes to serve,
// re-checking the draining flag every fastDrainPoll so shutdown does
// not wait out an idle connection. Reports false when the connection
// should close (drain, idle budget exhausted, peer gone).
func (fr *FastRunning) waitForBatch(c net.Conn, br *bufio.Reader) bool {
	idleStart := time.Now()
	for {
		if fr.draining.Load() {
			return false
		}
		c.SetReadDeadline(time.Now().Add(fastDrainPoll))
		_, err := br.Peek(1)
		if err == nil {
			c.SetReadDeadline(time.Time{})
			return true
		}
		if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
			return false
		}
		if time.Since(idleStart) > fastIdle {
			return false
		}
	}
}

// appendIntervalBody renders the interval JSON exactly as the net/http
// handler does — the two planes must stay byte-identical.
func appendIntervalBody(b []byte, T float64, idx int, extended bool) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, T, 'g', -1, 64)
	b = append(b, `,"index":`...)
	b = strconv.AppendInt(b, int64(idx), 10)
	if extended {
		b = append(b, `,"extended":true}`...)
	} else {
		b = append(b, `,"extended":false}`...)
	}
	return append(b, '\n')
}

// parseFastRequest destructures "GET /v1/schedule/<key>/interval?age=<v> HTTP/1.1\r\n"
// in place. The returned key aliases the read buffer and is only valid
// until the next ReadSlice — the caller copies it out before consuming
// headers; getBytes then looks it up without a heap allocation.
func parseFastRequest(line []byte) (key []byte, age float64, ok bool) {
	const pre = "GET /v1/schedule/"
	if len(line) < len(pre) || string(line[:len(pre)]) != pre {
		return nil, 0, false
	}
	rest := line[len(pre):]
	slash := bytes.IndexByte(rest, '/')
	if slash <= 0 {
		return nil, 0, false
	}
	key = rest[:slash]
	rest = rest[slash:]
	const route = "/interval"
	if len(rest) < len(route) || string(rest[:len(route)]) != route {
		return nil, 0, false
	}
	rest = rest[len(route):]
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, 0, false
	}
	switch {
	case sp == 0: // bare /interval — a fresh resource
		return key, 0, true
	case sp > len("?age=") && string(rest[:len("?age=")]) == "?age=":
		v, err := strconv.ParseFloat(string(rest[len("?age="):sp]), 64)
		if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, 0, false
		}
		return key, v, true
	}
	return nil, 0, false
}

// skipHeaders consumes header lines through the blank terminator (a
// pipelined GET carries no body).
func skipHeaders(br *bufio.Reader) bool {
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			return false
		}
		if len(line) <= 2 {
			return true
		}
	}
}
