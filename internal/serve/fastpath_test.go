package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

// readFastResponse parses one HTTP/1.1 response off a test connection.
func readFastResponse(t *testing.T, br *bufio.Reader) (code int, body string, headers map[string]string) {
	t.Helper()
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("status line: %v", err)
	}
	code, err = strconv.Atoi(status[9:12])
	if err != nil {
		t.Fatalf("status line %q", status)
	}
	headers = map[string]string{}
	contentLen := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("header: %v", err)
		}
		if line == "\r\n" {
			break
		}
		name, val, _ := strings.Cut(strings.TrimRight(line, "\r\n"), ": ")
		headers[name] = val
		if name == "Content-Length" {
			contentLen, _ = strconv.Atoi(val)
		}
	}
	buf := make([]byte, contentLen)
	if _, err := io.ReadFull(br, buf); err != nil {
		t.Fatalf("body: %v", err)
	}
	return code, string(buf), headers
}

// startFastTest builds a server with two schedules and a running fast
// listener, plus a connected client.
func startFastTest(t *testing.T, opts Options) (*Server, *FastRunning, net.Conn, *bufio.Reader) {
	t.Helper()
	s := New(opts)
	for _, key := range []string{"m1", "m2"} {
		w := postJSON(t, s, "/v1/schedule", scheduleRequest{
			Key: key, Model: "weibull", Data: testHistory(), C: 60,
		})
		if w.Code != 200 {
			t.Fatalf("install %s = %d, body %s", key, w.Code, w.Body)
		}
	}
	fr, err := s.StartFast("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start fast: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fr.Shutdown(ctx)
	})
	conn, err := net.Dial("tcp", fr.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return s, fr, conn, bufio.NewReader(conn)
}

// TestFastPathPipeline drives a pipelined batch — warm keys at several
// ages, a bare /interval, a cold key — and checks every response,
// including that 200 bodies are byte-identical to the net/http plane
// and that the cold-key 404 does NOT take the connection down.
func TestFastPathPipeline(t *testing.T) {
	s, _, conn, br := startFastTest(t, Options{})
	reqs := []string{
		"GET /v1/schedule/m1/interval?age=0 HTTP/1.1\r\nHost: t\r\n\r\n",
		"GET /v1/schedule/m1/interval?age=9999999 HTTP/1.1\r\nHost: t\r\n\r\n",
		"GET /v1/schedule/nobody/interval?age=5 HTTP/1.1\r\nHost: t\r\n\r\n",
		"GET /v1/schedule/m2/interval HTTP/1.1\r\nHost: t\r\n\r\n",
		"GET /v1/schedule/m2/interval?age=137.5 HTTP/1.1\r\nHost: t\r\n\r\n",
	}
	if _, err := io.WriteString(conn, strings.Join(reqs, "")); err != nil {
		t.Fatalf("write: %v", err)
	}
	wantCodes := []int{200, 200, 404, 200, 200}
	bodies := make([]string, len(reqs))
	for i, want := range wantCodes {
		code, body, _ := readFastResponse(t, br)
		if code != want {
			t.Fatalf("response %d = %d (%s), want %d", i, code, body, want)
		}
		bodies[i] = body
	}
	// Byte-identical to the main plane for the same lookups.
	for i, path := range []string{
		"/v1/schedule/m1/interval?age=0",
		"/v1/schedule/m1/interval?age=9999999",
		"", // cold key: bodies differ on purpose (no key echo on the fast path)
		"/v1/schedule/m2/interval",
		"/v1/schedule/m2/interval?age=137.5",
	} {
		if path == "" {
			continue
		}
		w := getPath(s, path)
		if w.Body.String() != bodies[i] {
			t.Errorf("plane mismatch for %s:\n  fast: %q\n  main: %q", path, bodies[i], w.Body.String())
		}
	}
	if !strings.Contains(bodies[1], `"extended":true`) {
		t.Errorf("beyond-horizon body %q lacks extended flag", bodies[1])
	}
}

// TestFastPathBadRequest pins the terminal 400: malformed age, then
// the connection closes.
func TestFastPathBadRequest(t *testing.T) {
	for _, req := range []string{
		"GET /v1/schedule/m1/interval?age=zebra HTTP/1.1\r\nHost: t\r\n\r\n",
		"GET /v1/schedule/m1/interval?age=-1 HTTP/1.1\r\nHost: t\r\n\r\n",
		"POST /v1/fit HTTP/1.1\r\nHost: t\r\n\r\n",
		"nonsense\r\n\r\n",
	} {
		_, _, conn, br := startFastTest(t, Options{})
		if _, err := io.WriteString(conn, req); err != nil {
			t.Fatalf("write: %v", err)
		}
		code, _, headers := readFastResponse(t, br)
		if code != 400 {
			t.Errorf("%q = %d, want 400", req, code)
		}
		if headers["Connection"] != "close" {
			t.Errorf("%q: Connection = %q, want close", req, headers["Connection"])
		}
		if _, err := br.ReadByte(); err != io.EOF {
			t.Errorf("%q: connection still open after 400 (err=%v)", req, err)
		}
		conn.Close()
	}
}

// TestFastPathShed fills the interval limiter and checks the fast
// path sheds with 429 + Retry-After — on a connection that stays up.
func TestFastPathShed(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, conn, br := startFastTest(t, Options{
		Registry:   reg,
		Interval:   RouteLimit{MaxInFlight: 1, MaxQueued: -1, MaxWait: -1},
		RetryAfter: 2 * time.Second,
	})
	// Occupy the only slot from the outside; the limiter is shared
	// between both planes, so the fast path must shed.
	if !s.limInterval.acquire() {
		t.Fatal("could not take the slot")
	}
	req := "GET /v1/schedule/m1/interval?age=0 HTTP/1.1\r\nHost: t\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatalf("write: %v", err)
	}
	code, _, headers := readFastResponse(t, br)
	if code != 429 {
		t.Fatalf("shed = %d, want 429", code)
	}
	if headers["Retry-After"] != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", headers["Retry-After"])
	}
	s.limInterval.release()
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatalf("write after release: %v", err)
	}
	if code, _, _ := readFastResponse(t, br); code != 200 {
		t.Fatalf("after release = %d, want 200", code)
	}
	if got := reg.Snapshot().Counters["serve_shed_total"]; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestFastPathDrain checks graceful shutdown: an idle keep-alive
// connection is released within the drain poll, the listener closes,
// and Shutdown returns without forcing the context.
func TestFastPathDrain(t *testing.T) {
	_, fr, conn, br := startFastTest(t, Options{})
	// One request proves the connection is live and then sits idle.
	req := "GET /v1/schedule/m1/interval?age=0 HTTP/1.1\r\nHost: t\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code, _, _ := readFastResponse(t, br); code != 200 {
		t.Fatalf("probe = %d, want 200", code)
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := fr.Shutdown(ctx); err != nil {
		t.Fatalf("drain of an idle connection forced the context: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("drain took %v, want about one poll interval", d)
	}
	// Listener released.
	if _, err := net.DialTimeout("tcp", fr.Addr().String(), time.Second); err == nil {
		t.Error("fast listener still accepting after Shutdown")
	}
	// The idle connection was closed.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Errorf("idle connection not closed by drain (err=%v)", err)
	}
}

// TestFastPathKeyTooLong pins the key-length bound: a key longer than
// the copy buffer is rejected as a 400, not silently truncated into
// somebody else's schedule.
func TestFastPathKeyTooLong(t *testing.T) {
	_, _, conn, br := startFastTest(t, Options{})
	long := strings.Repeat("k", 300)
	req := fmt.Sprintf("GET /v1/schedule/%s/interval?age=0 HTTP/1.1\r\nHost: t\r\n\r\n", long)
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code, _, _ := readFastResponse(t, br); code != 400 {
		t.Errorf("overlong key = %d, want 400", code)
	}
}
