package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

// testHistory is a deterministic availability history (seconds) that
// every model family fits cleanly.
func testHistory() []float64 {
	data := make([]float64, 64)
	for i := range data {
		data[i] = 900 + 250*float64(i%11) + 13*float64(i)
	}
	return data
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeInto(t *testing.T, w *httptest.ResponseRecorder, dst any) {
	t.Helper()
	if err := json.NewDecoder(w.Body).Decode(dst); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// TestServeRoundTrip walks the API end to end: fit, build a schedule,
// read it back whole, and look intervals up by age — including past
// the horizon, where the lookup reports extension.
func TestServeRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg})

	w := postJSON(t, s, "/v1/fit", fitRequest{Key: "m1", Model: "weibull", Data: testHistory()})
	if w.Code != http.StatusOK {
		t.Fatalf("fit = %d, body %s", w.Code, w.Body)
	}
	var fr fitResponse
	decodeInto(t, w, &fr)
	if fr.Model != "weibull" || len(fr.Params) != 2 || fr.N != 64 {
		t.Fatalf("fit response = %+v", fr)
	}

	w = postJSON(t, s, "/v1/schedule", scheduleRequest{
		Key: "m1", Model: "weibull", Data: testHistory(), C: 60,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("schedule = %d, body %s", w.Code, w.Body)
	}
	var sr scheduleResponse
	decodeInto(t, w, &sr)
	if sr.Cached || sr.Intervals == 0 || sr.T0 <= 0 {
		t.Fatalf("schedule response = %+v", sr)
	}
	if got := s.Schedules(); got != 1 {
		t.Fatalf("Schedules() = %d, want 1", got)
	}

	// A second POST for the same key is served by the stored build.
	w = postJSON(t, s, "/v1/schedule", scheduleRequest{
		Key: "m1", Model: "weibull", Data: testHistory(), C: 60,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("repeat schedule = %d, body %s", w.Code, w.Body)
	}
	var sr2 scheduleResponse
	decodeInto(t, w, &sr2)
	if !sr2.Cached || sr2.Intervals != sr.Intervals {
		t.Fatalf("repeat schedule response = %+v, want cached with %d intervals", sr2, sr.Intervals)
	}

	w = getPath(s, "/v1/schedule/m1")
	if w.Code != http.StatusOK {
		t.Fatalf("get schedule = %d, body %s", w.Code, w.Body)
	}
	var doc scheduleDoc
	decodeInto(t, w, &doc)
	if len(doc.Intervals) != sr.Intervals || doc.Costs.C != 60 {
		t.Fatalf("schedule doc = %d intervals C=%g", len(doc.Intervals), doc.Costs.C)
	}

	var iv struct {
		T        float64 `json:"t"`
		Index    int     `json:"index"`
		Extended bool    `json:"extended"`
	}
	w = getPath(s, "/v1/schedule/m1/interval?age=0")
	if w.Code != http.StatusOK {
		t.Fatalf("interval = %d, body %s", w.Code, w.Body)
	}
	decodeInto(t, w, &iv)
	if iv.T != doc.Intervals[0] || iv.Index != 0 || iv.Extended {
		t.Fatalf("interval(0) = %+v, want T=%g index=0", iv, doc.Intervals[0])
	}

	// Absent age means a fresh resource (age 0).
	w = getPath(s, "/v1/schedule/m1/interval")
	if w.Code != http.StatusOK {
		t.Fatalf("interval sans age = %d, body %s", w.Code, w.Body)
	}

	// Beyond the horizon the final interval extends.
	w = getPath(s, fmt.Sprintf("/v1/schedule/m1/interval?age=%g", 100*doc.Ages[len(doc.Ages)-1]+1e6))
	decodeInto(t, w, &iv)
	if !iv.Extended || iv.Index != len(doc.Intervals)-1 {
		t.Fatalf("interval(beyond) = %+v, want extended last index", iv)
	}

	snap := reg.Snapshot()
	if snap.Counters["serve_schedule_builds_total"] != 1 {
		t.Errorf("builds = %d, want 1", snap.Counters["serve_schedule_builds_total"])
	}
	if snap.Counters["serve_schedule_coalesced_total"] != 1 {
		t.Errorf("coalesced = %d, want 1", snap.Counters["serve_schedule_coalesced_total"])
	}
	if snap.Counters["serve_requests_total"] == 0 || snap.Counters["serve_errors_total"] != 0 {
		t.Errorf("requests/errors = %d/%d", snap.Counters["serve_requests_total"], snap.Counters["serve_errors_total"])
	}
}

// TestServeScheduleFromParams plans from an explicit distribution
// instead of a history, and replace=true rebuilds in place.
func TestServeScheduleFromParams(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg})
	req := scheduleRequest{Key: "p1", Model: "exp", Params: []float64{1.0 / 3600}, C: 30}
	w := postJSON(t, s, "/v1/schedule", req)
	if w.Code != http.StatusOK {
		t.Fatalf("schedule from params = %d, body %s", w.Code, w.Body)
	}
	var sr scheduleResponse
	decodeInto(t, w, &sr)
	if sr.Intervals != 1 {
		t.Fatalf("memoryless schedule has %d intervals, want 1", sr.Intervals)
	}

	req.Replace = true
	w = postJSON(t, s, "/v1/schedule", req)
	if w.Code != http.StatusOK {
		t.Fatalf("replace = %d, body %s", w.Code, w.Body)
	}
	decodeInto(t, w, &sr)
	if sr.Cached {
		t.Fatal("replace=true answered from the stored build")
	}
	if got := reg.Snapshot().Counters["serve_schedule_builds_total"]; got != 2 {
		t.Fatalf("builds after replace = %d, want 2", got)
	}
	if got := s.Schedules(); got != 1 {
		t.Fatalf("Schedules() after replace = %d, want 1", got)
	}
}

// TestServeValidation pins the failure semantics: malformed JSON and
// bad fields answer 400 with every field error joined in one body,
// fit-cache key reuse answers 409, unknown keys 404, bad age 400.
func TestServeValidation(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg})

	// Malformed JSON body.
	req := httptest.NewRequest(http.MethodPost, "/v1/fit", strings.NewReader("{nope"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want 400", w.Code)
	}

	// Every invalid field must be named in the one 400 body.
	w = postJSON(t, s, "/v1/schedule", scheduleRequest{Model: "nope", C: -1, Telapsed: -2})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("invalid schedule = %d, body %s", w.Code, w.Body)
	}
	body := w.Body.String()
	for _, want := range []string{"key", "model", "data", "c must", "telapsed must"} {
		if !strings.Contains(body, want) {
			t.Errorf("400 body missing %q: %s", want, body)
		}
	}

	// Unknown method and routes.
	if w := getPath(s, "/v1/fit"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/fit = %d, want 405", w.Code)
	}
	if w := getPath(s, "/v1/schedule/none"); w.Code != http.StatusNotFound {
		t.Errorf("unknown key = %d, want 404", w.Code)
	}
	if w := getPath(s, "/v1/schedule/none/interval?age=1"); w.Code != http.StatusNotFound {
		t.Errorf("interval for unknown key = %d, want 404", w.Code)
	}
	if w := getPath(s, "/v1/schedule//interval?age=1"); w.Code != http.StatusNotFound {
		t.Errorf("interval with empty key = %d, want 404", w.Code)
	}
	if w := getPath(s, "/nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", w.Code)
	}

	// Reusing a fit key with different data is a conflict, not a
	// silent hit (the sharded cache's keying contract).
	if w := postJSON(t, s, "/v1/fit", fitRequest{Key: "k", Model: "exp", Data: testHistory()}); w.Code != http.StatusOK {
		t.Fatalf("first fit = %d, body %s", w.Code, w.Body)
	}
	other := testHistory()
	other[0] *= 2
	if w := postJSON(t, s, "/v1/fit", fitRequest{Key: "k", Model: "exp", Data: other}); w.Code != http.StatusConflict {
		t.Errorf("key reuse = %d, want 409", w.Code)
	}

	// Malformed age values.
	postJSON(t, s, "/v1/schedule", scheduleRequest{Key: "k", Model: "exp", Data: testHistory(), C: 60})
	for _, q := range []string{"age=zebra", "age=-1", "age=Inf"} {
		if w := getPath(s, "/v1/schedule/k/interval?"+q); w.Code != http.StatusBadRequest {
			t.Errorf("interval?%s = %d, want 400", q, w.Code)
		}
	}
}

// TestServeShed pins the overload contract: with the route full and no
// queue, the next request is shed with 429 and a Retry-After header,
// and the shed counter moves.
func TestServeShed(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{
		Registry:   reg,
		Interval:   RouteLimit{MaxInFlight: 1, MaxQueued: -1, MaxWait: -1},
		RetryAfter: 3 * time.Second,
	})
	postJSON(t, s, "/v1/schedule", scheduleRequest{Key: "k", Model: "exp", Data: testHistory(), C: 60})

	hold := make(chan struct{})
	admitted := make(chan struct{})
	var once sync.Once
	s.hookAdmitted = func(route string) {
		if route == "interval" {
			once.Do(func() { close(admitted) })
			<-hold
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		getPath(s, "/v1/schedule/k/interval?age=0")
	}()
	<-admitted

	w := getPath(s, "/v1/schedule/k/interval?age=0")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second interval = %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	close(hold)
	wg.Wait()
	snap := reg.Snapshot()
	if snap.Counters["serve_shed_total"] != 1 {
		t.Errorf("shed = %d, want 1", snap.Counters["serve_shed_total"])
	}
	// Shed responses are counted as shed, not as errors.
	if snap.Counters["serve_errors_total"] != 0 {
		t.Errorf("errors = %d, want 0", snap.Counters["serve_errors_total"])
	}
	// The slot is free again.
	if w := getPath(s, "/v1/schedule/k/interval?age=0"); w.Code != http.StatusOK {
		t.Errorf("interval after release = %d, want 200", w.Code)
	}
}

// TestServeCoalesce hammers one cold key with concurrent builders:
// exactly one build runs, everyone else joins it.
func TestServeCoalesce(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg})
	const callers = 8
	var wg sync.WaitGroup
	codes := make([]int, callers)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(t, s, "/v1/schedule", scheduleRequest{
				Key: "cold", Model: "weibull", Data: testHistory(), C: 60,
			})
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("caller %d got %d", i, c)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_schedule_builds_total"]; got != 1 {
		t.Errorf("builds = %d, want 1", got)
	}
	if got := snap.Counters["serve_schedule_coalesced_total"]; got != callers-1 {
		t.Errorf("coalesced = %d, want %d", got, callers-1)
	}
}

// TestServeStoreBound pins eviction: with a one-shard, three-entry
// store, a fourth schedule evicts the oldest finished one.
func TestServeStoreBound(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg, MaxSchedules: 1})
	// MaxSchedules is split across shards (min 1 per shard), so pin the
	// behaviour through the store directly with a single shard.
	s.store = newScheduleStore(1, 3, &s.m)
	for _, k := range []string{"a", "b", "c", "d"} {
		w := postJSON(t, s, "/v1/schedule", scheduleRequest{Key: k, Model: "exp", Data: testHistory(), C: 60})
		if w.Code != http.StatusOK {
			t.Fatalf("schedule %s = %d", k, w.Code)
		}
	}
	if got := s.Schedules(); got != 3 {
		t.Fatalf("Schedules() = %d, want 3", got)
	}
	if w := getPath(s, "/v1/schedule/a"); w.Code != http.StatusNotFound {
		t.Errorf("evicted key a = %d, want 404", w.Code)
	}
	if w := getPath(s, "/v1/schedule/d"); w.Code != http.StatusOK {
		t.Errorf("resident key d = %d, want 200", w.Code)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_schedule_evictions_total"]; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := snap.Gauges["serve_schedules_resident"]; got != 3 {
		t.Errorf("resident gauge = %d, want 3", got)
	}
}

// TestServeGracefulDrain starts a real listener, holds a request in
// flight, and shuts down: the in-flight request completes, the
// listener is released (its address rebinds), and the serve goroutine
// has exited when Shutdown returns.
func TestServeGracefulDrain(t *testing.T) {
	s := New(Options{})
	postJSON(t, s, "/v1/schedule", scheduleRequest{Key: "k", Model: "exp", Data: testHistory(), C: 60})

	hold := make(chan struct{})
	admitted := make(chan struct{})
	var once sync.Once
	s.hookAdmitted = func(route string) {
		if route == "interval" {
			once.Do(func() { close(admitted) })
			<-hold
		}
	}
	rn, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + rn.Addr().String()

	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/v1/schedule/k/interval?age=0")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight request = %d", resp.StatusCode)
			}
		}
		inflight <- err
	}()
	<-admitted

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- rn.Shutdown(ctx)
	}()
	// Drain must wait for the held request, not cut it off.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(hold)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener must actually be released.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after Shutdown")
	}
	ln, err := net.Listen("tcp", rn.Addr().String())
	if err != nil {
		t.Fatalf("address not released after Shutdown: %v", err)
	}
	ln.Close()
}

// TestServeObservability exercises the side endpoints: healthz,
// Prometheus metrics, expvar, and the trace snapshot (404 without a
// tracer, JSON with one).
func TestServeObservability(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Registry: reg})
	if w := getPath(s, "/healthz"); w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Errorf("/healthz = %d %q", w.Code, w.Body)
	}
	if w := getPath(s, "/metrics"); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "serve_requests_total") {
		t.Errorf("/metrics = %d, body lacks serve_requests_total", w.Code)
	}
	if w := getPath(s, "/debug/vars"); w.Code != http.StatusOK {
		t.Errorf("/debug/vars = %d", w.Code)
	}
	if w := getPath(s, "/debug/trace/snapshot"); w.Code != http.StatusNotFound {
		t.Errorf("trace snapshot without tracer = %d, want 404", w.Code)
	}

	tr := obs.NewTracer(obs.TracerOptions{})
	st := New(Options{Tracer: tr})
	postJSON(t, st, "/v1/fit", fitRequest{Key: "m", Model: "exp", Data: testHistory()})
	if w := getPath(st, "/debug/trace/snapshot"); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "serve.fit") {
		t.Errorf("trace snapshot = %d, body lacks serve.fit span", w.Code)
	}
}
