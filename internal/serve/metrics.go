package serve

import "github.com/cycleharvest/ckptsched/internal/obs"

// latencyBuckets is the request-latency histogram layout: 50 µs floors
// (an in-process schedule lookup) through multi-second fit tails.
var latencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// serveMetrics holds one server's observability hooks. All fields are
// nil-safe obs metrics, so a server built without a registry pays one
// predictable branch per mutation (DESIGN.md §15 lists the names).
type serveMetrics struct {
	// requests counts every request that reached the router; shed the
	// ones admission control turned away with 429, and errors every
	// other non-2xx response. inflight is the live request gauge.
	requests, shed, errors *obs.Counter
	inflight               *obs.Gauge
	// Per-route request counters and latency histograms; latency is
	// observed only for requests that produced a 2xx.
	fitReqs, schedReqs, intervalReqs *obs.Counter
	fitLat, schedLat, intervalLat    *obs.Histogram
	// Schedule-store accounting: completed builds, POSTs that joined an
	// in-flight or finished build instead of rebuilding, entries
	// dropped by the size bound, and the resident-entry gauge.
	builds, coalesced, evictions *obs.Counter
	resident                     *obs.Gauge
}

func (m *serveMetrics) register(r *obs.Registry) {
	m.requests = r.Counter("serve_requests_total",
		"Requests that reached the scheduling server's router.")
	m.shed = r.Counter("serve_shed_total",
		"Requests shed by admission control (HTTP 429).")
	m.errors = r.Counter("serve_errors_total",
		"Requests answered with a non-2xx status other than 429.")
	m.inflight = r.Gauge("serve_inflight",
		"Requests currently being served.")
	m.fitReqs = r.Counter("serve_fit_requests_total",
		"POST /v1/fit requests.")
	m.schedReqs = r.Counter("serve_schedule_requests_total",
		"POST /v1/schedule requests.")
	m.intervalReqs = r.Counter("serve_interval_requests_total",
		"GET /v1/schedule/{key}/interval requests.")
	m.fitLat = r.Histogram("serve_fit_latency_seconds",
		"Successful /v1/fit latency.", latencyBuckets)
	m.schedLat = r.Histogram("serve_schedule_latency_seconds",
		"Successful /v1/schedule latency.", latencyBuckets)
	m.intervalLat = r.Histogram("serve_interval_latency_seconds",
		"Successful interval-lookup latency.", latencyBuckets)
	m.builds = r.Counter("serve_schedule_builds_total",
		"Schedules built and stored.")
	m.coalesced = r.Counter("serve_schedule_coalesced_total",
		"POST /v1/schedule requests served by an existing or in-flight build.")
	m.evictions = r.Counter("serve_schedule_evictions_total",
		"Stored schedules evicted by the size bound.")
	m.resident = r.Gauge("serve_schedules_resident",
		"Schedules currently resident in the store.")
}
