package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServeInterval measures the interval hot path through the
// full handler stack — routing, admission, store probe, quantized
// lookup, hand-rolled JSON — without the kernel's TCP stack in the
// way (ckpt-load measures that end to end). BENCH gates ns/op and
// allocs/op; the alloc budget is what keeps the hot path honest, since
// one stray fmt.Sprintf or url.Values would show up immediately.
func BenchmarkServeInterval(b *testing.B) {
	s := New(Options{})
	const nkeys = 64
	for i := 0; i < nkeys; i++ {
		w := postJSON2(s, "/v1/schedule", scheduleRequest{
			Key: fmt.Sprintf("machine%03d", i), Model: "exp",
			Params: []float64{1.0 / 3600}, C: 60,
		})
		if w.Code != http.StatusOK {
			b.Fatalf("schedule %d = %d, body %s", i, w.Code, w.Body)
		}
	}
	reqs := make([]*http.Request, nkeys)
	for i := range reqs {
		reqs[i] = httptest.NewRequest(http.MethodGet,
			fmt.Sprintf("/v1/schedule/machine%03d/interval?age=120.5", i), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &nopResponseWriter{h: make(http.Header)}
		i := 0
		for pb.Next() {
			s.ServeHTTP(w, reqs[i%nkeys])
			i++
		}
	})
}

// postJSON2 is the benchmark-side POST helper (no *testing.T).
func postJSON2(h http.Handler, path string, body any) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		panic(err)
	}
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	h.ServeHTTP(w, req)
	return w
}

// nopResponseWriter discards the response so the benchmark measures
// the handler, not httptest.ResponseRecorder's buffer growth.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}
