package serve

import (
	"sync/atomic"
	"time"
)

// RouteLimit is one route's admission-control policy: at most
// MaxInFlight requests executing, at most MaxQueued more waiting, and
// no wait longer than MaxWait. A request that cannot be admitted under
// those bounds is shed with 429 + Retry-After instead of queued — the
// bounded queue is what keeps an overloaded server's latency finite.
//
// Zero fields select per-route defaults; MaxInFlight < 0 disables
// admission control for the route entirely.
type RouteLimit struct {
	MaxInFlight int
	MaxQueued   int
	MaxWait     time.Duration
}

// withDefaults fills zero fields from d.
func (l RouteLimit) withDefaults(d RouteLimit) RouteLimit {
	if l.MaxInFlight == 0 {
		l.MaxInFlight = d.MaxInFlight
	}
	if l.MaxQueued == 0 {
		l.MaxQueued = d.MaxQueued
	}
	if l.MaxWait == 0 {
		l.MaxWait = d.MaxWait
	}
	return l
}

// limiter enforces one RouteLimit: a channel semaphore for the
// in-flight bound and an atomic waiter count for the queue bound. The
// uncontended admit is one non-blocking channel send; the timer and
// its allocation are paid only by requests that actually queue.
type limiter struct {
	sem       chan struct{}
	queued    atomic.Int64
	maxQueued int64
	maxWait   time.Duration
}

// newLimiter builds a limiter for l, or nil (admit everything) when
// the route is unlimited.
func newLimiter(l RouteLimit) *limiter {
	if l.MaxInFlight < 0 {
		return nil
	}
	return &limiter{
		sem:       make(chan struct{}, l.MaxInFlight),
		maxQueued: int64(l.MaxQueued),
		maxWait:   l.MaxWait,
	}
}

// acquire admits the caller or reports that it must be shed. Every
// true return must be paired with exactly one release.
func (l *limiter) acquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.sem <- struct{}{}:
		return true
	default:
	}
	if l.maxQueued <= 0 || l.maxWait <= 0 {
		return false
	}
	if l.queued.Add(1) > l.maxQueued {
		l.queued.Add(-1)
		return false
	}
	defer l.queued.Add(-1)
	t := time.NewTimer(l.maxWait)
	defer t.Stop()
	select {
	case l.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

// release returns the caller's in-flight slot.
func (l *limiter) release() {
	if l != nil {
		<-l.sem
	}
}
