// Package condor is a discrete-event simulation of a Condor-style
// cycle-harvesting pool: desktop machines alternate between
// owner-busy and harvestable-idle periods, a matchmaker assigns queued
// Vanilla-universe jobs (terminate-on-eviction, §4 of the paper) to
// idle machines, and an occupancy monitor — the paper's measurement
// sensor — records how long each job held each machine.
//
// The package substitutes for the live University of Wisconsin Condor
// pool the paper measured for 18 months: everything downstream
// consumes only the per-machine sequences of availability durations
// the monitor produces, plus the (machine, T_elapsed, eviction-time)
// allocations the live-experiment harness draws.
package condor

import "container/heap"

// Event is a scheduled callback in virtual time. Cancel prevents a
// pending event from firing.
type Event struct {
	at       float64
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

// At returns the virtual time the event fires.
func (e *Event) At() float64 { return e.at }

// Cancel prevents the event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a virtual-time event loop. The zero value is ready to use
// at time 0.
type Clock struct {
	now    float64
	seq    uint64
	events eventHeap
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Schedule registers fn to run after delay seconds (clamped to now for
// negative delays) and returns a cancellable handle.
func (c *Clock) Schedule(delay float64, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	e := &Event{at: c.now + delay, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, e)
	return e
}

// Step fires the next pending event, returning false when none
// remain.
func (c *Clock) Step() bool {
	for c.events.Len() > 0 {
		e := heap.Pop(&c.events).(*Event)
		if e.canceled {
			continue
		}
		c.now = e.at
		e.fn()
		return true
	}
	return false
}

// RunUntil fires events in order until virtual time would pass t (the
// clock ends at exactly t) or no events remain.
func (c *Clock) RunUntil(t float64) {
	for c.events.Len() > 0 {
		// Peek.
		next := c.events[0]
		if next.canceled {
			heap.Pop(&c.events)
			continue
		}
		if next.at > t {
			break
		}
		c.Step()
	}
	if c.now < t {
		c.now = t
	}
}

// Pending returns the number of scheduled (possibly canceled) events.
func (c *Clock) Pending() int { return c.events.Len() }
