package condor

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// degenerateDist always draws the same value — the stub that lets the
// construction probe see zero-length, negative and non-finite periods.
type degenerateDist struct{ v float64 }

func (d degenerateDist) PDF(float64) float64           { return 0 }
func (d degenerateDist) CDF(float64) float64           { return 1 }
func (d degenerateDist) Survival(float64) float64      { return 0 }
func (d degenerateDist) Quantile(float64) float64      { return d.v }
func (d degenerateDist) Mean() float64                 { return d.v }
func (d degenerateDist) PartialMoment(float64) float64 { return 0 }
func (d degenerateDist) Rand(*rand.Rand) float64       { return d.v }
func (d degenerateDist) Name() string                  { return "degenerate" }

func validMachine(name string) Machine {
	return Machine{
		Name:     name,
		MemoryMB: 1024,
		Idle:     dist.NewExponential(1.0 / 3600),
		Busy:     dist.NewExponential(1.0 / 1800),
	}
}

func TestNewPoolRejectsDegenerateIntervals(t *testing.T) {
	cases := []struct {
		name string
		idle dist.Distribution
		busy dist.Distribution
		want []string
	}{
		{
			name: "zero idle",
			idle: degenerateDist{0},
			busy: dist.NewExponential(1.0 / 1800),
			want: []string{"idle", "zero-length or negative", "non-monotonic"},
		},
		{
			name: "negative busy",
			idle: dist.NewExponential(1.0 / 3600),
			busy: degenerateDist{-5},
			want: []string{"busy", "zero-length or negative"},
		},
		{
			name: "NaN idle",
			idle: degenerateDist{math.NaN()},
			busy: dist.NewExponential(1.0 / 1800),
			want: []string{"idle", "non-finite"},
		},
		{
			name: "infinite busy",
			idle: dist.NewExponential(1.0 / 3600),
			busy: degenerateDist{math.Inf(1)},
			want: []string{"busy", "non-finite"},
		},
	}
	for _, tc := range cases {
		m := validMachine("m0")
		m.Idle, m.Busy = tc.idle, tc.busy
		_, err := NewPool([]Machine{m}, 1)
		if err == nil {
			t.Errorf("%s: degenerate machine accepted", tc.name)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, `"m0"`) {
			t.Errorf("%s: error does not name the machine: %q", tc.name, msg)
		}
		for _, w := range tc.want {
			if !strings.Contains(msg, w) {
				t.Errorf("%s: error missing %q: %q", tc.name, w, msg)
			}
		}
	}
}

// Validation must not perturb the pool's own RNG stream: two pools
// built from the same spec behave identically, and a healthy pool
// passes the probe.
func TestNewPoolValidationLeavesStreamAlone(t *testing.T) {
	build := func() *Pool {
		p, err := NewPool([]Machine{validMachine("a"), validMachine("b")}, 99)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := build(), build()
	evictions := func(p *Pool) int {
		j := &Job{Name: "probe", Requeue: true}
		if err := p.Submit(j); err != nil {
			t.Fatal(err)
		}
		p.RunUntil(30 * 24 * 3600)
		return p.Evictions
	}
	e1, e2 := evictions(p1), evictions(p2)
	if e1 != e2 {
		t.Fatalf("same-seed pools diverged: %d vs %d evictions", e1, e2)
	}
	if e1 == 0 {
		t.Error("probe job was never evicted in a month")
	}
}
