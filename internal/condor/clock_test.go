package condor

import "testing"

func TestClockOrdering(t *testing.T) {
	var c Clock
	var fired []int
	c.Schedule(30, func() { fired = append(fired, 3) })
	c.Schedule(10, func() { fired = append(fired, 1) })
	c.Schedule(20, func() { fired = append(fired, 2) })
	c.RunUntil(100)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Errorf("fired = %v", fired)
	}
	if c.Now() != 100 {
		t.Errorf("now = %g, want 100", c.Now())
	}
}

func TestClockSimultaneousEventsFIFO(t *testing.T) {
	var c Clock
	var fired []int
	for i := range 5 {
		i := i
		c.Schedule(7, func() { fired = append(fired, i) })
	}
	c.RunUntil(7)
	for i, v := range fired {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", fired)
		}
	}
}

func TestClockCancel(t *testing.T) {
	var c Clock
	fired := false
	e := c.Schedule(5, func() { fired = true })
	e.Cancel()
	c.RunUntil(10)
	if fired {
		t.Error("canceled event fired")
	}
	// Cancel after firing is a no-op.
	e2 := c.Schedule(1, func() {})
	c.RunUntil(20)
	e2.Cancel()
}

func TestClockRunUntilStopsBeforeLaterEvents(t *testing.T) {
	var c Clock
	fired := false
	c.Schedule(50, func() { fired = true })
	c.RunUntil(49)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if c.Now() != 49 {
		t.Errorf("now = %g", c.Now())
	}
	c.RunUntil(50)
	if !fired {
		t.Error("event at horizon should fire")
	}
}

func TestClockNestedScheduling(t *testing.T) {
	var c Clock
	var log []float64
	c.Schedule(10, func() {
		log = append(log, c.Now())
		c.Schedule(5, func() { log = append(log, c.Now()) })
	})
	c.RunUntil(100)
	if len(log) != 2 || log[0] != 10 || log[1] != 15 {
		t.Errorf("log = %v", log)
	}
}

func TestClockNegativeDelayClamped(t *testing.T) {
	var c Clock
	c.Schedule(10, func() {})
	c.RunUntil(10)
	fired := false
	c.Schedule(-5, func() { fired = true })
	if !c.Step() || !fired {
		t.Error("negative-delay event should fire immediately")
	}
	if c.Now() != 10 {
		t.Errorf("time went backwards: %g", c.Now())
	}
}

func TestClockStepExhaustion(t *testing.T) {
	var c Clock
	if c.Step() {
		t.Error("empty clock should not step")
	}
	c.Schedule(1, func() {})
	if !c.Step() {
		t.Error("expected one step")
	}
	if c.Step() {
		t.Error("expected exhaustion")
	}
}
