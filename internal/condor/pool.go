package condor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// Machine describes one desktop workstation contributed to the pool.
type Machine struct {
	// Name uniquely identifies the machine.
	Name string
	// MemoryMB is installed memory; jobs state a minimum (the paper's
	// test application needs 512 MB machines for its 500 MB images).
	MemoryMB int
	// Arch is the instruction-set label used in matchmaking.
	Arch string
	// Idle is the distribution of harvestable idle-period durations —
	// the availability law the paper models.
	Idle dist.Distribution
	// Busy is the distribution of owner-active periods between idle
	// periods.
	Busy dist.Distribution
	// InitiallyBusy starts the machine in an owner-active period.
	InitiallyBusy bool
	// DiurnalAmplitude, when positive, modulates idle durations by
	// time of day: periods beginning during working hours (09:00-17:00
	// on virtual weekdays, with virtual time 0 taken as Monday 00:00)
	// are scaled by 1/(1+A) and periods beginning at night or on
	// weekends by (1+A). Real desktop pools show exactly this
	// nonstationarity; it makes the recorded traces violate the
	// i.i.d. assumption the fitters make, the way measured data does.
	DiurnalAmplitude float64
}

// workingHours reports whether virtual time t falls in 09:00-17:00 on
// a weekday, with t = 0 anchored to Monday 00:00.
func workingHours(t float64) bool {
	const day = 24 * 3600
	weekSec := math.Mod(t, 7*day)
	if weekSec < 0 {
		weekSec += 7 * day
	}
	if weekSec >= 5*day {
		return false // Saturday or Sunday
	}
	hour := math.Mod(weekSec, day) / 3600
	return hour >= 9 && hour < 17
}

// diurnalFactor scales an idle duration drawn at virtual time t.
func diurnalFactor(t, amplitude float64) float64 {
	if amplitude <= 0 {
		return 1
	}
	if workingHours(t) {
		return 1 / (1 + amplitude)
	}
	return 1 + amplitude
}

// JobState is the lifecycle of a submitted job.
type JobState int

// Job lifecycle states.
const (
	JobNew JobState = iota // created but never submitted
	JobQueued
	JobRunning
	JobEvicted   // terminated by owner reclamation (Vanilla universe)
	JobCompleted // finished voluntarily
	JobRemoved   // withdrawn by the submitter
)

func (s JobState) String() string {
	switch s {
	case JobNew:
		return "new"
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobEvicted:
		return "evicted"
	case JobCompleted:
		return "completed"
	case JobRemoved:
		return "removed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Alloc describes a job placement, passed to the job's OnStart hook.
type Alloc struct {
	// Machine is the hosting machine's specification.
	Machine Machine
	// Start is the virtual time the job began executing.
	Start float64
	// TElapsed is how long the machine had already been idle when the
	// job started — the paper's T_elapsed input to the first T_opt.
	TElapsed float64
}

// Job is a Vanilla-universe (terminate-on-eviction) job. Hooks are
// invoked from the pool's event loop; they may schedule clock events
// but must not block and must not call pool methods synchronously
// (defer pool calls with Clock().Schedule(0, …) to avoid reentering
// the matchmaker).
type Job struct {
	// Name identifies the job in logs.
	Name string
	// RequiresMB is the minimum machine memory (0 = any).
	RequiresMB int
	// RequiresArch restricts matchmaking to one architecture ("" =
	// any).
	RequiresArch string
	// Requeue resubmits the job automatically after eviction — how
	// the paper keeps its occupancy monitors permanently in the queue.
	Requeue bool
	// OnStart fires when the job begins executing on a machine.
	OnStart func(a Alloc)
	// OnEvict fires when the owner reclaims the machine; the job's
	// process is terminated at this instant.
	OnEvict func(at float64)
	// OnComplete fires when the job finishes voluntarily via
	// Pool.Complete.
	OnComplete func(at float64)

	state   JobState
	machine *machineState
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return j.state }

type machineState struct {
	spec      Machine
	idle      bool
	idleSince float64
	running   *Job
	reclaim   *Event
}

// Pool is the matchmaker and event loop that binds machines and jobs.
type Pool struct {
	clock    *Clock
	rng      *rand.Rand
	machines []*machineState
	queue    []*Job

	// Evictions counts owner reclamations that terminated a job.
	Evictions int
	// Starts counts job placements.
	Starts int
}

// probeDraws is how many construction-time samples each idle/busy
// distribution must survive before NewPool accepts it.
const probeDraws = 8

// validateIntervals probes a machine's period distribution for
// degenerate draws. A zero-length or negative period would put two
// availability transitions at the same (or an earlier) instant,
// breaking the monotonicity every trace consumer assumes, so the pool
// rejects such distributions at construction with a descriptive error
// instead of generating a corrupt timeline. The probe uses its own RNG
// so the pool's event stream is untouched by validation.
func validateIntervals(machine, kind string, d dist.Distribution, probe *rand.Rand) error {
	for range probeDraws {
		v := d.Rand(probe)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("condor: machine %q: %s distribution %q drew a non-finite period (%g); availability intervals must be finite and strictly positive",
				machine, kind, d.Name(), v)
		}
		if v <= 0 {
			return fmt.Errorf("condor: machine %q: %s distribution %q drew a zero-length or negative period (%g); such intervals would make the availability timeline non-monotonic",
				machine, kind, d.Name(), v)
		}
	}
	return nil
}

// NewPool builds a pool over the given machines. Machine idle/busy
// processes are driven by rng (deterministic for a fixed seed).
func NewPool(machines []Machine, seed int64) (*Pool, error) {
	if len(machines) == 0 {
		return nil, errors.New("condor: pool needs at least one machine")
	}
	p := &Pool{clock: &Clock{}, rng: rand.New(rand.NewSource(seed))}
	// Interval validation draws from a salted probe stream, never from
	// p.rng, so a pool built from valid machines is bit-identical to
	// one built before validation existed.
	probe := rand.New(rand.NewSource(seed ^ 0x70726f6265313233))
	seen := make(map[string]bool, len(machines))
	for _, m := range machines {
		if m.Name == "" {
			return nil, errors.New("condor: machine with empty name")
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("condor: duplicate machine %q", m.Name)
		}
		seen[m.Name] = true
		if m.Idle == nil || m.Busy == nil {
			return nil, fmt.Errorf("condor: machine %q needs idle and busy distributions", m.Name)
		}
		if err := validateIntervals(m.Name, "idle", m.Idle, probe); err != nil {
			return nil, err
		}
		if err := validateIntervals(m.Name, "busy", m.Busy, probe); err != nil {
			return nil, err
		}
		ms := &machineState{spec: m}
		p.machines = append(p.machines, ms)
		if m.InitiallyBusy {
			p.scheduleBusy(ms, m.Busy.Rand(p.rng))
		} else {
			p.becomeIdle(ms)
		}
	}
	return p, nil
}

// Clock exposes the pool's virtual clock so jobs can schedule their
// own events (heartbeats, transfer completions).
func (p *Pool) Clock() *Clock { return p.clock }

// Machines returns the machine specifications.
func (p *Pool) Machines() []Machine {
	out := make([]Machine, len(p.machines))
	for i, ms := range p.machines {
		out[i] = ms.spec
	}
	return out
}

// Submit queues a job and attempts to place it immediately.
func (p *Pool) Submit(j *Job) error {
	if j == nil {
		return errors.New("condor: nil job")
	}
	if j.state == JobRunning || j.state == JobQueued {
		return fmt.Errorf("condor: job %q already submitted", j.Name)
	}
	j.state = JobQueued
	p.queue = append(p.queue, j)
	p.match()
	return nil
}

// Remove withdraws a queued job. Running jobs cannot be removed (use
// Complete).
func (p *Pool) Remove(j *Job) error {
	for i, q := range p.queue {
		if q == j {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			j.state = JobRemoved
			return nil
		}
	}
	return fmt.Errorf("condor: job %q not queued", j.Name)
}

// Complete marks a running job as voluntarily finished, freeing its
// machine for the next queued job.
func (p *Pool) Complete(j *Job) error {
	if j.state != JobRunning || j.machine == nil {
		return fmt.Errorf("condor: job %q is not running", j.Name)
	}
	ms := j.machine
	ms.running = nil
	j.machine = nil
	j.state = JobCompleted
	if j.OnComplete != nil {
		j.OnComplete(p.clock.Now())
	}
	p.match()
	return nil
}

// QueueLen returns the number of jobs waiting for a machine.
func (p *Pool) QueueLen() int { return len(p.queue) }

// RunUntil advances the pool's virtual time to t.
func (p *Pool) RunUntil(t float64) { p.clock.RunUntil(t) }

// matches reports whether machine m satisfies job j's requirements —
// the ClassAd-lite predicate.
func matches(m Machine, j *Job) bool {
	if j.RequiresMB > 0 && m.MemoryMB < j.RequiresMB {
		return false
	}
	if j.RequiresArch != "" && m.Arch != j.RequiresArch {
		return false
	}
	return true
}

// match places queued jobs on unoccupied idle machines (FIFO over the
// queue, first matching machine in declaration order).
func (p *Pool) match() {
	remaining := p.queue[:0]
	for _, j := range p.queue {
		placed := false
		for _, ms := range p.machines {
			if ms.idle && ms.running == nil && matches(ms.spec, j) {
				p.place(j, ms)
				placed = true
				break
			}
		}
		if !placed {
			remaining = append(remaining, j)
		}
	}
	p.queue = remaining
}

func (p *Pool) place(j *Job, ms *machineState) {
	ms.running = j
	j.machine = ms
	j.state = JobRunning
	p.Starts++
	if j.OnStart != nil {
		j.OnStart(Alloc{
			Machine:  ms.spec,
			Start:    p.clock.Now(),
			TElapsed: p.clock.Now() - ms.idleSince,
		})
	}
}

// becomeIdle transitions a machine into a fresh idle period and draws
// its duration (diurnally modulated when the machine asks for it).
func (p *Pool) becomeIdle(ms *machineState) {
	ms.idle = true
	ms.idleSince = p.clock.Now()
	d := ms.spec.Idle.Rand(p.rng) * diurnalFactor(p.clock.Now(), ms.spec.DiurnalAmplitude)
	ms.reclaim = p.clock.Schedule(d, func() { p.reclaimMachine(ms) })
	p.match()
}

// scheduleBusy keeps the machine owner-active for d seconds.
func (p *Pool) scheduleBusy(ms *machineState, d float64) {
	ms.idle = false
	p.clock.Schedule(d, func() { p.becomeIdle(ms) })
}

// reclaimMachine is the owner touching the keyboard: any guest job is
// terminated (Vanilla universe) and the machine goes busy.
func (p *Pool) reclaimMachine(ms *machineState) {
	if j := ms.running; j != nil {
		ms.running = nil
		j.machine = nil
		j.state = JobEvicted
		p.Evictions++
		if j.OnEvict != nil {
			j.OnEvict(p.clock.Now())
		}
		if j.Requeue {
			j.state = JobQueued
			p.queue = append(p.queue, j)
		}
	}
	p.scheduleBusy(ms, ms.spec.Busy.Rand(p.rng))
}
