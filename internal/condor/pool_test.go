package condor

import (
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// fixedMachine has deterministic-ish behavior via tight Weibulls.
func tightDist(mean float64) dist.Distribution {
	// Shape 50 concentrates mass tightly around the scale.
	return dist.NewWeibull(50, mean)
}

func testMachine(name string, mem int) Machine {
	return Machine{
		Name:     name,
		MemoryMB: mem,
		Arch:     "x86",
		Idle:     tightDist(1000),
		Busy:     tightDist(500),
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, 1); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := NewPool([]Machine{{Name: ""}}, 1); err == nil {
		t.Error("unnamed machine should error")
	}
	m := testMachine("a", 512)
	if _, err := NewPool([]Machine{m, m}, 1); err == nil {
		t.Error("duplicate machine should error")
	}
	bad := testMachine("b", 512)
	bad.Idle = nil
	if _, err := NewPool([]Machine{bad}, 1); err == nil {
		t.Error("missing idle distribution should error")
	}
}

func TestJobRunsAndIsEvicted(t *testing.T) {
	p, err := NewPool([]Machine{testMachine("m1", 1024)}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var alloc Alloc
	var evictedAt float64
	j := &Job{
		Name:    "job",
		OnStart: func(a Alloc) { alloc = a },
		OnEvict: func(at float64) { evictedAt = at },
	}
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	// Machine starts idle at t=0, so the job starts immediately with
	// TElapsed 0.
	if j.State() != JobRunning {
		t.Fatalf("state = %v", j.State())
	}
	if alloc.Machine.Name != "m1" || alloc.Start != 0 || alloc.TElapsed != 0 {
		t.Errorf("alloc = %+v", alloc)
	}
	p.RunUntil(5000)
	if j.State() != JobEvicted {
		t.Errorf("state = %v, want evicted", j.State())
	}
	// Idle duration is tightly around 1000 s.
	if evictedAt < 800 || evictedAt > 1200 {
		t.Errorf("evicted at %g, want ≈1000", evictedAt)
	}
	if p.Evictions != 1 || p.Starts != 1 {
		t.Errorf("counters: %d evictions, %d starts", p.Evictions, p.Starts)
	}
}

func TestRequeueRunsAgain(t *testing.T) {
	p, err := NewPool([]Machine{testMachine("m1", 1024)}, 7)
	if err != nil {
		t.Fatal(err)
	}
	starts := 0
	j := &Job{Name: "mon", Requeue: true, OnStart: func(Alloc) { starts++ }}
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	p.RunUntil(10000) // several idle/busy cycles of ~1500 s
	if starts < 3 {
		t.Errorf("requeued job started only %d times", starts)
	}
	if p.Evictions < 3 {
		t.Errorf("evictions = %d", p.Evictions)
	}
}

func TestTElapsedWhenJobArrivesMidIdle(t *testing.T) {
	p, err := NewPool([]Machine{testMachine("m1", 1024)}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Let the machine sit idle for 300 s before the job arrives.
	p.RunUntil(300)
	var alloc Alloc
	j := &Job{Name: "late", OnStart: func(a Alloc) { alloc = a }}
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.State() != JobRunning {
		t.Fatalf("state = %v", j.State())
	}
	if alloc.TElapsed != 300 {
		t.Errorf("TElapsed = %g, want 300", alloc.TElapsed)
	}
}

func TestMatchmakingRespectsRequirements(t *testing.T) {
	small := testMachine("small", 256)
	big := testMachine("big", 1024)
	p, err := NewPool([]Machine{small, big}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	j := &Job{Name: "needs-mem", RequiresMB: 512, OnStart: func(a Alloc) { got = a.Machine.Name }}
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	if got != "big" {
		t.Errorf("matched %q, want big", got)
	}
	// Arch requirement that nothing satisfies: job stays queued.
	j2 := &Job{Name: "needs-arm", RequiresArch: "arm64"}
	if err := p.Submit(j2); err != nil {
		t.Fatal(err)
	}
	p.RunUntil(5000)
	if j2.State() != JobQueued {
		t.Errorf("unmatchable job state = %v", j2.State())
	}
	if p.QueueLen() != 1 {
		t.Errorf("queue length = %d", p.QueueLen())
	}
}

func TestOneJobPerMachine(t *testing.T) {
	p, err := NewPool([]Machine{testMachine("m1", 1024)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	j1 := &Job{Name: "a"}
	j2 := &Job{Name: "b"}
	if err := p.Submit(j1); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(j2); err != nil {
		t.Fatal(err)
	}
	if j1.State() != JobRunning || j2.State() != JobQueued {
		t.Errorf("states = %v, %v", j1.State(), j2.State())
	}
	// Completing j1 frees the machine for j2.
	if err := p.Complete(j1); err != nil {
		t.Fatal(err)
	}
	if j1.State() != JobCompleted || j2.State() != JobRunning {
		t.Errorf("after complete: %v, %v", j1.State(), j2.State())
	}
}

func TestSubmitAndRemoveErrors(t *testing.T) {
	p, err := NewPool([]Machine{testMachine("m1", 1024)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(nil); err == nil {
		t.Error("nil job should error")
	}
	j := &Job{Name: "x"}
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(j); err == nil {
		t.Error("double submit should error")
	}
	if err := p.Remove(j); err == nil {
		t.Error("removing a running job should error")
	}
	q := &Job{Name: "q"}
	if err := p.Submit(q); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(q); err != nil {
		t.Fatal(err)
	}
	if q.State() != JobRemoved {
		t.Errorf("state = %v", q.State())
	}
	if err := p.Complete(q); err == nil {
		t.Error("completing a non-running job should error")
	}
}

func TestJobStateString(t *testing.T) {
	want := map[JobState]string{
		JobNew: "new", JobQueued: "queued", JobRunning: "running",
		JobEvicted: "evicted", JobCompleted: "completed", JobRemoved: "removed",
		JobState(9): "state(9)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d: %q, want %q", int(s), got, w)
		}
	}
}

func TestPoolDeterminism(t *testing.T) {
	run := func() (int, int) {
		machines, err := SyntheticPool(SyntheticPoolConfig{Machines: 20, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPool(machines, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range 10 {
			if err := p.Submit(&Job{Name: monitorName(i), Requeue: true}); err != nil {
				t.Fatal(err)
			}
		}
		p.RunUntil(MonthsSeconds(1))
		return p.Starts, p.Evictions
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || e1 != e2 {
		t.Errorf("pool not deterministic: (%d,%d) vs (%d,%d)", s1, e1, s2, e2)
	}
	if s1 == 0 || e1 == 0 {
		t.Errorf("nothing happened: starts=%d evictions=%d", s1, e1)
	}
}
