package condor

import (
	"errors"
	"strconv"
	"time"

	"github.com/cycleharvest/ckptsched/internal/trace"
)

// MonitorConfig drives an occupancy-measurement campaign (§4 of the
// paper: Vanilla-universe sensor processes that report elapsed time
// until eviction).
type MonitorConfig struct {
	// Monitors is how many sensor processes to keep in the queue. The
	// paper floods the pool so most idle periods are observed; fewer
	// monitors than machines leaves some machines rarely measured
	// (the paper obtained data for ~640 of 1000+ machines).
	Monitors int
	// Duration is the measurement-campaign length in virtual seconds
	// (the paper ran for 18 months).
	Duration float64
	// Epoch anchors virtual time 0 to a wall-clock instant for the
	// trace timestamps; zero means 2003-04-01 UTC.
	Epoch time.Time
	// IncludeCensored records occupancies still in progress at the end
	// of the campaign as right-censored observations instead of
	// discarding them. §5.3 of the paper discusses the censoring bias
	// that discarding (or truncating) introduces; the censoring-aware
	// estimators in internal/fit consume the flag.
	IncludeCensored bool
}

// epochOrDefault returns the configured epoch or the paper's campaign
// start.
func (c MonitorConfig) epochOrDefault() time.Time {
	if c.Epoch.IsZero() {
		return time.Date(2003, 4, 1, 0, 0, 0, 0, time.UTC)
	}
	return c.Epoch
}

// CollectTraces runs cfg.Monitors occupancy monitors in the pool for
// cfg.Duration virtual seconds and returns the per-machine
// availability traces they record. Each record is one occupancy: the
// time from job start to eviction on one machine.
//
// Occupancies still in progress when the campaign ends are discarded
// (right-censoring, which the paper's §5.3 validation discusses).
func CollectTraces(p *Pool, cfg MonitorConfig) (*trace.Set, error) {
	if p == nil {
		return nil, errors.New("condor: nil pool")
	}
	if cfg.Monitors <= 0 {
		return nil, errors.New("condor: need at least one monitor")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("condor: non-positive campaign duration")
	}
	epoch := cfg.epochOrDefault()
	set := trace.NewSet()

	type occupancy struct {
		machine string
		start   float64
	}
	currents := make([]occupancy, cfg.Monitors)
	jobs := make([]*Job, cfg.Monitors)
	for i := range cfg.Monitors {
		i := i
		j := &Job{
			Name:    monitorName(i),
			Requeue: true,
		}
		j.OnStart = func(a Alloc) {
			currents[i] = occupancy{machine: a.Machine.Name, start: a.Start}
		}
		j.OnEvict = func(at float64) {
			set.Add(currents[i].machine, trace.Record{
				Start:    epoch.Add(time.Duration(currents[i].start * float64(time.Second))),
				Duration: at - currents[i].start,
			})
		}
		if err := p.Submit(j); err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	p.RunUntil(cfg.Duration)
	if cfg.IncludeCensored {
		for i, j := range jobs {
			if j.State() != JobRunning {
				continue
			}
			cur := currents[i]
			set.Add(cur.machine, trace.Record{
				Start:    epoch.Add(time.Duration(cur.start * float64(time.Second))),
				Duration: cfg.Duration - cur.start,
				Censored: true,
			})
		}
	}
	return set, nil
}

func monitorName(i int) string {
	return "occupancy-monitor-" + strconv.Itoa(i)
}
