package condor

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// SyntheticPoolConfig parameterizes a synthetic desktop pool whose
// availability behavior is calibrated to the paper's published
// measurements of the UW–Madison Condor pool: heavy-tailed idle
// periods (the one machine the paper reports exactly fits
// Weibull(shape 0.43, scale 3409)), heterogeneous across machines,
// with most machines having at least 512 MB of memory.
type SyntheticPoolConfig struct {
	// Machines is the pool size (the paper's pool exceeded 1000).
	Machines int
	// Seed makes generation deterministic.
	Seed int64
	// MedianIdleScale centers the per-machine Weibull scale spread;
	// zero means the paper's 3409 s.
	MedianIdleScale float64
	// SmallMemoryFraction is the fraction of machines with < 512 MB
	// (unusable by the paper's 500 MB-checkpoint test application);
	// zero means 0.15.
	SmallMemoryFraction float64
	// DiurnalAmplitude, when positive, gives every machine a
	// time-of-day idle-duration modulation (see condor.Machine); zero
	// keeps the stationary pool the calibrated tables use.
	DiurnalAmplitude float64
}

func (c *SyntheticPoolConfig) setDefaults() {
	if c.MedianIdleScale <= 0 {
		c.MedianIdleScale = 3409
	}
	if c.SmallMemoryFraction <= 0 {
		c.SmallMemoryFraction = 0.15
	}
}

// SyntheticPool generates the machine specifications for a
// heterogeneous desktop pool:
//
//   - ~20% of machines draw idle periods from per-machine Weibulls
//     with shape ~ U[0.33, 0.55] and lognormal scale around
//     MedianIdleScale — the decreasing-hazard regime the paper
//     measures (its reported machine fits Weibull(0.43, 3409));
//   - ~50% draw from bimodal mixtures of short interactive-use gaps
//     (exponential, minutes) and long overnight/weekend stretches
//     (Weibull, hours) — the multi-modality that makes real desktop
//     traces fit hyperexponentials better than any single Weibull;
//   - ~30% draw from 2-phase hyperexponentials;
//   - busy (owner-active) periods are exponential with mean 0.5–4 h.
func SyntheticPool(cfg SyntheticPoolConfig) ([]Machine, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("condor: need a positive machine count, got %d", cfg.Machines)
	}
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	machines := make([]Machine, 0, cfg.Machines)
	for i := range cfg.Machines {
		var idle dist.Distribution
		switch kind := rng.Float64(); {
		case kind < 0.20:
			shape := 0.33 + 0.22*rng.Float64()
			scale := cfg.MedianIdleScale * math.Exp(0.7*rng.NormFloat64())
			idle = dist.NewWeibull(shape, scale)
		case kind < 0.70:
			// Bimodal: interactive gaps of a few minutes against
			// overnight stretches of a few hours.
			fastMean := 120 + 480*rng.Float64()
			slowScale := (1.5 + 4.5*rng.Float64()) * 3600
			slowShape := 0.5 + 0.3*rng.Float64()
			pFast := 0.50 + 0.25*rng.Float64()
			idle = dist.NewMixture(
				[]float64{pFast, 1 - pFast},
				[]dist.Distribution{
					dist.NewExponential(1 / fastMean),
					dist.NewWeibull(slowShape, slowScale),
				},
			)
		default:
			fastMean := 120 + 600*rng.Float64()
			slowMean := 3600 + 7*3600*rng.Float64()
			pFast := 0.45 + 0.3*rng.Float64()
			idle = dist.NewHyperexponential(
				[]float64{pFast, 1 - pFast},
				[]float64{1 / fastMean, 1 / slowMean},
			)
		}
		busyMean := 1800 + 12600*rng.Float64()
		mem := 512 << uint(rng.Intn(3)) // 512, 1024, 2048 MB
		if rng.Float64() < cfg.SmallMemoryFraction {
			mem = 256
		}
		arch := "x86"
		if rng.Float64() < 0.2 {
			arch = "x86_64"
		}
		machines = append(machines, Machine{
			Name:             fmt.Sprintf("desktop%04d", i),
			MemoryMB:         mem,
			Arch:             arch,
			Idle:             idle,
			Busy:             dist.NewExponential(1 / busyMean),
			InitiallyBusy:    rng.Float64() < 0.5,
			DiurnalAmplitude: cfg.DiurnalAmplitude,
		})
	}
	return machines, nil
}

// MonthsSeconds converts months (30-day) to seconds, a convenience
// for campaign durations ("18-month measurement period").
func MonthsSeconds(months float64) float64 {
	return months * 30 * 24 * 3600
}
