package condor

import (
	"math"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/stats"
)

func TestCollectTracesMatchesIdlePeriods(t *testing.T) {
	// With one monitor per machine, every idle period is fully
	// occupied, so recorded durations follow the idle distribution.
	machines := []Machine{testMachine("m1", 1024), testMachine("m2", 1024)}
	p, err := NewPool(machines, 9)
	if err != nil {
		t.Fatal(err)
	}
	set, err := CollectTraces(p, MonitorConfig{Monitors: 2, Duration: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) != 2 {
		t.Fatalf("machines observed: %v", set.Machines())
	}
	for _, name := range set.Machines() {
		tr := set.Traces[name]
		if tr.Len() < 50 {
			t.Errorf("%s: only %d occupancies", name, tr.Len())
		}
		// Idle durations are tightly concentrated around 1000 s.
		m := stats.Mean(tr.Durations())
		if math.Abs(m-1000) > 50 {
			t.Errorf("%s: mean occupancy %g, want ≈1000", name, m)
		}
		// Timestamps are anchored at the paper's epoch.
		if tr.Records[0].Start.Year() != 2003 {
			t.Errorf("%s: first record at %v", name, tr.Records[0].Start)
		}
	}
}

func TestCollectTracesFewMonitorsUndersampleMachines(t *testing.T) {
	// With far fewer monitors than machines, some machines get few or
	// no observations — the paper's "sufficient number of times"
	// filter exists for exactly this reason.
	machines, err := SyntheticPool(SyntheticPoolConfig{Machines: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(machines, 5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := CollectTraces(p, MonitorConfig{Monitors: 6, Duration: MonthsSeconds(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) >= 60 {
		t.Errorf("expected undersampling, but %d machines observed", len(set.Traces))
	}
	if len(set.Traces) == 0 {
		t.Fatal("no traces at all")
	}
}

func TestCollectTracesErrors(t *testing.T) {
	p, err := NewPool([]Machine{testMachine("m", 512)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectTraces(nil, MonitorConfig{Monitors: 1, Duration: 10}); err == nil {
		t.Error("nil pool should error")
	}
	if _, err := CollectTraces(p, MonitorConfig{Monitors: 0, Duration: 10}); err == nil {
		t.Error("zero monitors should error")
	}
	if _, err := CollectTraces(p, MonitorConfig{Monitors: 1, Duration: 0}); err == nil {
		t.Error("zero duration should error")
	}
}

func TestCollectTracesCustomEpoch(t *testing.T) {
	p, err := NewPool([]Machine{testMachine("m", 512)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	set, err := CollectTraces(p, MonitorConfig{Monitors: 1, Duration: 50000, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	tr := set.Traces["m"]
	if tr == nil || tr.Len() == 0 {
		t.Fatal("no records")
	}
	if tr.Records[0].Start.Before(epoch) {
		t.Errorf("record before epoch: %v", tr.Records[0].Start)
	}
}

func TestCollectTracesIncludeCensored(t *testing.T) {
	// End the campaign mid-occupancy: with IncludeCensored the
	// in-progress occupancies appear as censored records.
	machines := []Machine{testMachine("m1", 1024)}
	run := func(includeCensored bool) int {
		p, err := NewPool(machines, 3)
		if err != nil {
			t.Fatal(err)
		}
		set, err := CollectTraces(p, MonitorConfig{
			Monitors:        1,
			Duration:        10500, // idle ≈1000/busy ≈500 cycles: ends mid-period
			IncludeCensored: includeCensored,
		})
		if err != nil {
			t.Fatal(err)
		}
		censored := 0
		total := 0
		for _, name := range set.Machines() {
			_, flags := set.Traces[name].Observations()
			for _, c := range flags {
				total++
				if c {
					censored++
				}
			}
		}
		if !includeCensored && censored != 0 {
			t.Errorf("censored records without IncludeCensored: %d", censored)
		}
		if total == 0 {
			t.Fatal("no records")
		}
		return censored
	}
	run(false)
	// With the same seed the campaign is deterministic; the monitor is
	// mid-occupancy at t=10500 (cycles of ≈1500 s starting idle), so
	// exactly one censored record must appear.
	if got := run(true); got != 1 {
		t.Errorf("censored records = %d, want 1", got)
	}
}

func TestSyntheticPoolProperties(t *testing.T) {
	machines, err := SyntheticPool(SyntheticPoolConfig{Machines: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 200 {
		t.Fatalf("count = %d", len(machines))
	}
	names := make(map[string]bool)
	small := 0
	for _, m := range machines {
		if names[m.Name] {
			t.Fatalf("duplicate name %q", m.Name)
		}
		names[m.Name] = true
		if m.Idle == nil || m.Busy == nil {
			t.Fatalf("%s: missing distributions", m.Name)
		}
		if m.MemoryMB < 512 {
			small++
		}
		// Idle means should be in a plausible desktop range: minutes
		// to a couple of days.
		mean := m.Idle.Mean()
		if mean < 60 || mean > 6*24*3600 {
			t.Errorf("%s: idle mean %g s out of range", m.Name, mean)
		}
	}
	frac := float64(small) / 200
	if frac < 0.05 || frac > 0.30 {
		t.Errorf("small-memory fraction = %g, want ≈0.15", frac)
	}
	// Determinism.
	again, err := SyntheticPool(SyntheticPoolConfig{Machines: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range machines {
		if machines[i].Name != again[i].Name || machines[i].MemoryMB != again[i].MemoryMB {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	if _, err := SyntheticPool(SyntheticPoolConfig{Machines: 0}); err == nil {
		t.Error("zero machines should error")
	}
}

func TestDiurnalModulation(t *testing.T) {
	// Working-hours classification: virtual time 0 is Monday 00:00.
	cases := []struct {
		t    float64
		want bool
	}{
		{0, false},                   // Monday midnight
		{10 * 3600, true},            // Monday 10:00
		{17*3600 + 1, false},         // Monday 17:00+
		{24*3600 + 12*3600, true},    // Tuesday noon
		{5*24*3600 + 12*3600, false}, // Saturday noon
		{6*24*3600 + 12*3600, false}, // Sunday noon
		{7*24*3600 + 10*3600, true},  // next Monday 10:00
	}
	for _, c := range cases {
		if got := workingHours(c.t); got != c.want {
			t.Errorf("workingHours(%g) = %v, want %v", c.t, got, c.want)
		}
	}
	if diurnalFactor(10*3600, 0) != 1 {
		t.Error("amplitude 0 must not modulate")
	}
	if f := diurnalFactor(10*3600, 1); f != 0.5 {
		t.Errorf("work-hours factor = %g, want 0.5", f)
	}
	if f := diurnalFactor(0, 1); f != 2 {
		t.Errorf("night factor = %g, want 2", f)
	}
}

func TestDiurnalPoolShortensDaytimeIdle(t *testing.T) {
	// Monitor a diurnal machine and compare occupancies that begin in
	// working hours against those beginning at night: the daytime ones
	// must be shorter on average.
	m := testMachine("diurnal", 1024)
	m.DiurnalAmplitude = 2
	p, err := NewPool([]Machine{m}, 13)
	if err != nil {
		t.Fatal(err)
	}
	set, err := CollectTraces(p, MonitorConfig{Monitors: 1, Duration: MonthsSeconds(3)})
	if err != nil {
		t.Fatal(err)
	}
	tr := set.Traces["diurnal"]
	if tr == nil || tr.Len() < 100 {
		t.Fatalf("too few records: %v", tr)
	}
	epoch := MonitorConfig{}.epochOrDefault()
	var daySum, nightSum float64
	var dayN, nightN int
	for _, r := range tr.Records {
		virtual := r.Start.Sub(epoch).Seconds()
		if workingHours(virtual) {
			daySum += r.Duration
			dayN++
		} else {
			nightSum += r.Duration
			nightN++
		}
	}
	if dayN < 10 || nightN < 10 {
		t.Fatalf("unbalanced samples: day %d, night %d", dayN, nightN)
	}
	dayMean := daySum / float64(dayN)
	nightMean := nightSum / float64(nightN)
	if dayMean >= nightMean {
		t.Errorf("daytime idle mean %g not below nighttime %g", dayMean, nightMean)
	}
}

func TestMonthsSeconds(t *testing.T) {
	if got := MonthsSeconds(1); got != 30*24*3600 {
		t.Errorf("1 month = %g s", got)
	}
}
