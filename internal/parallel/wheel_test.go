package parallel

import (
	"math"
	"math/rand"
	"testing"
)

// wheelModel is the naive twin of workWheel: a flat presence/key table
// scanned linearly for the minimum, the ordering the wheel must match.
type wheelModel struct {
	key     []float64
	present []bool
}

func (m *wheelModel) min() (int, bool) {
	best := -1
	for i := range m.key {
		if !m.present[i] {
			continue
		}
		if best < 0 || m.key[i] < m.key[best] || (m.key[i] == m.key[best] && i < best) {
			best = i
		}
	}
	return best, best >= 0
}

// TestWheelOrdering pins the (key, gid) order across buckets and the
// gid tie-break within one: equal keys drain in ascending gid order.
func TestWheelOrdering(t *testing.T) {
	w := newWorkWheel(6, 100)
	w.insert(3, 40)
	w.insert(0, 10)
	w.insert(5, 40) // ties with gid 3: gid order decides
	w.insert(1, 70)
	w.insert(2, 10.0000001) // same bucket as gid 0 at this width
	w.insert(4, 25)
	want := []int32{0, 2, 4, 3, 5, 1}
	now := 0.0
	for i, wid := range want {
		gid, k, ok := w.minOf(now)
		if !ok || gid != wid {
			t.Fatalf("drain step %d: min = (%d, ok=%v), want gid %d", i, gid, ok, wid)
		}
		now = k
		w.remove(int(gid))
	}
	if _, _, ok := w.minOf(now); ok {
		t.Fatal("drained wheel still reports a minimum")
	}
}

// TestWheelCohortAppend pins the synchronized-cohort path: a wave of
// identical keys inserted in ascending gid order (the order the event
// loop produces, since simultaneous completions fire gid-ascending)
// must land as sorted tail appends and drain in gid order.
func TestWheelCohortAppend(t *testing.T) {
	const n = 500
	w := newWorkWheel(n, 1000)
	for i := range n {
		w.insert(i, 333.25)
	}
	for i := range n {
		gid, k, ok := w.minOf(300)
		if !ok || int(gid) != i || k != 333.25 {
			t.Fatalf("cohort drain step %d: min = (%d, %g, ok=%v), want (%d, 333.25)", i, gid, k, ok, i)
		}
		w.remove(int(gid))
	}
}

// TestWheelReinsertBehindCursor pins the insert-time cursor pull-back:
// after the cursor has advanced to a late bucket, a new key earlier
// than the cached minimum (a young worker's short interval) must still
// be found.
func TestWheelReinsertBehindCursor(t *testing.T) {
	w := newWorkWheel(4, 1000)
	w.insert(0, 900)
	if gid, _, _ := w.minOf(890); gid != 0 {
		t.Fatal("setup: expected gid 0 at the cursor")
	}
	w.insert(1, 895) // behind the cursor's bucket
	w.remove(0)
	if gid, k, ok := w.minOf(890); !ok || gid != 1 || k != 895 {
		t.Fatalf("min after early insert = (%d, %g, ok=%v), want (1, 895)", gid, k, ok)
	}
}

// TestWheelRandomOps drives the wheel with random insert/remove/drain
// traffic against the naive model and checks the minimum agrees after
// every step, under the wheel's operating contract: time only moves
// forward and every live key lies in [now, now+span].
func TestWheelRandomOps(t *testing.T) {
	const n = 64
	const span = 50.0
	rng := rand.New(rand.NewSource(23))
	w := newWorkWheel(n, span)
	m := &wheelModel{key: make([]float64, n), present: make([]bool, n)}
	now := 0.0

	for step := range 20000 {
		switch rng.Intn(5) {
		case 0: // remove a random live gid (a failure unfiling a worker)
			gid := rng.Intn(n)
			w.remove(gid)
			m.present[gid] = false
		case 1: // advance time to the current minimum and drain it
			if gid, k, ok := w.minOf(now); ok {
				now = k
				w.remove(int(gid))
				m.present[gid] = false
			}
		default: // file an absent gid at a key within the live window
			gid := rng.Intn(n)
			if m.present[gid] {
				break
			}
			// Coarse grid so equal keys (synchronized cohorts) are common.
			k := now + math.Floor(rng.Float64()*span/2*8)/8
			w.insert(gid, k)
			m.key[gid], m.present[gid] = k, true
		}
		wantID, wantOK := m.min()
		gid, k, ok := w.minOf(now)
		if ok != wantOK {
			t.Fatalf("step %d: minOf ok = %v, want %v", step, ok, wantOK)
		}
		if !wantOK {
			continue
		}
		if int(gid) != wantID || k != m.key[wantID] {
			t.Fatalf("step %d: minOf = (%d, %g), want (%d, %g)",
				step, gid, k, wantID, m.key[wantID])
		}
		if w.count != countTrue(m.present) {
			t.Fatalf("step %d: count = %d, want %d", step, w.count, countTrue(m.present))
		}
	}
}
