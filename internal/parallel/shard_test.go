package parallel

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// TestShardCountInvariance is the sharding determinism contract
// (DESIGN.md §14) as a property test: for every worker count that
// stresses the partition arithmetic (1, one under a shard width, exact
// widths, a ragged tail, several shards), every stagger policy and
// every predictor policy, the Result under any explicit or automatic
// shard count — and any GOMAXPROCS — is reflect.DeepEqual to the
// single-shard engine. Sharding is a data layout, not a concurrency
// knob; any divergence means a shard-boundary bug (a worker filed in
// the wrong sub-heap, a tournament miss, a base-offset slip).
func TestShardCountInvariance(t *testing.T) {
	avail := dist.NewWeibull(0.43, 3409)
	policies := []struct {
		name    string
		stagger StaggerPolicy
		predict predict.Config
		policy  predict.Policy
	}{
		{"none", StaggerNone, predict.Config{}, predict.PolicyReactive},
		{"token", StaggerToken, predict.Config{}, predict.PolicyReactive},
		{"jitter", StaggerJitter, predict.Config{}, predict.PolicyReactive},
		{"proactive", StaggerNone, predict.Config{Precision: 0.8, Recall: 0.7, LeadSec: 120}, predict.PolicyProactive},
		{"migrate", StaggerJitter, predict.Config{Precision: 0.9, Recall: 0.5, LeadSec: 300}, predict.PolicyMigrate},
	}
	maxProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(maxProcs)

	for _, workers := range []int{1, 63, 64, 1000, 4096} {
		for _, pol := range policies {
			cfg := Config{
				Workers:      workers,
				Avail:        avail,
				ScheduleDist: avail,
				LinkMBps:     2 * float64(workers),
				CheckpointMB: 500,
				Duration:     4 * 3600,
				Stagger:      pol.stagger,
				Seed:         29,
				Shards:       1,
				Predict:      pol.predict,
				Policy:       pol.policy,
			}
			want, err := Run(cfg)
			if err != nil {
				t.Fatalf("w%d/%s: single-shard run: %v", workers, pol.name, err)
			}
			for _, procs := range []int{1, 4, maxProcs} {
				runtime.GOMAXPROCS(procs)
				for _, shards := range []int{0, 2, 7, 64, workers} {
					c := cfg
					c.Shards = shards
					got, err := Run(c)
					if err != nil {
						t.Fatalf("w%d/%s shards=%d procs=%d: %v", workers, pol.name, shards, procs, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("w%d/%s shards=%d procs=%d: Result diverges from shards=1\n got %+v\nwant %+v",
							workers, pol.name, shards, procs, got, want)
					}
				}
			}
			runtime.GOMAXPROCS(maxProcs)
		}
	}
}

// TestShardWidthPartition pins the partition arithmetic: every worker
// lands in exactly one shard, bases tile the population in order, and
// an explicit shard count is honored (capped at one worker per shard).
func TestShardWidthPartition(t *testing.T) {
	for _, tc := range []struct {
		workers, shards, wantWidth int
	}{
		{1, 0, defaultShardSize},
		{256, 0, defaultShardSize},
		{1 << 20, 0, defaultShardSize},
		{1000, 1, 1024},
		{1000, 7, 256},
		{64, 64, 1},
		{64, 1 << 20, 1},
	} {
		w := shardWidth(tc.workers, tc.shards)
		if w != tc.wantWidth {
			t.Errorf("shardWidth(%d, %d) = %d, want %d", tc.workers, tc.shards, w, tc.wantWidth)
		}
		if w&(w-1) != 0 {
			t.Errorf("shardWidth(%d, %d) = %d: not a power of two", tc.workers, tc.shards, w)
		}
	}
}
