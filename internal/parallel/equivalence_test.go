package parallel

import (
	"math"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// TestHeapEngineMatchesReference pins the indexed-heap engine against
// the retained linear-scan reference implementation across a spread of
// configurations: both share event semantics and float arithmetic, so
// the same seed must yield the exact same Result — any divergence is a
// heap-bookkeeping bug.
func TestHeapEngineMatchesReference(t *testing.T) {
	weib := dist.NewWeibull(0.43, 3409)
	expo := dist.NewExponential(1.0 / 7200)
	avails := []dist.Distribution{weib, expo}
	policies := []StaggerPolicy{StaggerNone, StaggerToken, StaggerJitter}
	for _, avail := range avails {
		for _, schedDist := range avails {
			for _, pol := range policies {
				for seed := int64(1); seed <= 8; seed++ {
					cfg := Config{
						Workers:      1 + int(seed)%7,
						Avail:        avail,
						ScheduleDist: schedDist,
						LinkMBps:     5,
						CheckpointMB: 500,
						Duration:     12 * 3600,
						Stagger:      pol,
						Seed:         seed,
					}
					sched := scheduleFor(cfg)
					got, err := runScheduled(cfg, sched)
					if err != nil {
						t.Fatal(err)
					}
					want, err := runReference(cfg, sched)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("%s/%s stagger=%s seed=%d: heap engine diverged from reference:\nheap: %+v\nref:  %+v",
							avail.Name(), schedDist.Name(), pol, seed, got, want)
					}
				}
			}
		}
	}
}

// TestLegacyEquivalenceMemoryless characterizes the schedule-reuse
// engine against the retained pre-change per-interval-T_opt engine.
// For a memoryless schedule model T_opt is age-independent, so
// schedule quantization is a no-op and the two engines make identical
// random draws in identical order: every event count (commits,
// failures, collisions, peak concurrency) must match exactly, and the
// continuous accumulators must agree to ~1e-5 relative — the residual
// is golden-section tolerance noise, because the legacy engine
// re-solves T_opt at every interval's age and each solve lands within
// optimizer tolerance of the single age-0 solve the schedule reuses.
func TestLegacyEquivalenceMemoryless(t *testing.T) {
	expo := dist.NewExponential(1.0 / 7200)
	for _, pol := range []StaggerPolicy{StaggerNone, StaggerToken} {
		for seed := int64(1); seed <= 4; seed++ {
			cfg := Config{
				Workers:      6,
				Avail:        expo,
				ScheduleDist: expo,
				LinkMBps:     5,
				CheckpointMB: 500,
				Duration:     12 * 3600,
				Stagger:      pol,
				Seed:         seed,
			}
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := runLegacy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The new engine adds ScheduleFallbacks (always 0 here);
			// compare the legacy-visible fields.
			got.ScheduleFallbacks = 0
			if !resultsClose(got, want, 1e-5) {
				t.Errorf("stagger=%s seed=%d: schedule-reuse engine diverged from legacy:\nnew: %+v\nold: %+v",
					pol, seed, got, want)
			}
		}
	}
}

// TestLegacyEquivalenceAging characterizes the residual shift for an
// aging (Weibull) schedule model, where the schedule quantizes T_opt
// by interval-start age: the legacy engine re-optimized at each
// worker's exact (collision-shifted) age, the schedule serves the
// planned interval covering that age. The shift must stay small at
// the scale the old tables were produced at; CHANGES.md records the
// measured deltas.
func TestLegacyEquivalenceAging(t *testing.T) {
	if testing.Short() {
		t.Skip("legacy engine is slow")
	}
	weib := dist.NewWeibull(0.43, 3409)
	for seed := int64(1); seed <= 3; seed++ {
		cfg := Config{
			Workers:      8,
			Avail:        weib,
			ScheduleDist: weib,
			LinkMBps:     5,
			CheckpointMB: 500,
			Duration:     24 * 3600,
			Seed:         seed,
		}
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := runLegacy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got.Efficiency - want.Efficiency); d > 0.03 {
			t.Errorf("seed=%d: efficiency shifted %.4f (new %.4f, legacy %.4f)",
				seed, d, got.Efficiency, want.Efficiency)
		}
		if want.MBMoved > 0 {
			if rel := math.Abs(got.MBMoved-want.MBMoved) / want.MBMoved; rel > 0.10 {
				t.Errorf("seed=%d: MBMoved shifted %.1f%% (new %.0f, legacy %.0f)",
					seed, 100*rel, got.MBMoved, want.MBMoved)
			}
		}
	}
}

// resultsClose compares every Result field within tol (exact for the
// integer counters).
func resultsClose(a, b Result, tol float64) bool {
	closeF := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	return closeF(a.Efficiency, b.Efficiency) &&
		closeF(a.CommittedWork, b.CommittedWork) &&
		closeF(a.LostWork, b.LostWork) &&
		closeF(a.MBMoved, b.MBMoved) &&
		a.Commits == b.Commits &&
		a.Failures == b.Failures &&
		closeF(a.MeanTransferSec, b.MeanTransferSec) &&
		closeF(a.SoloTransferSec, b.SoloTransferSec) &&
		a.Collisions == b.Collisions &&
		a.MaxConcurrent == b.MaxConcurrent &&
		closeF(a.QueueWaitSec, b.QueueWaitSec) &&
		a.ScheduleFallbacks == b.ScheduleFallbacks
}
