package parallel

import (
	"math"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

func stable() dist.Distribution {
	// Exponential lifetimes with a 2-hour mean: failures happen but
	// checkpoints are frequent enough that 6 simulated hours see many
	// commits. (A near-deterministic long lifetime would be "too
	// stable": the optimizer would correctly plan a single interval
	// ending just before the predictable failure, committing nothing
	// inside a short horizon.)
	return dist.NewExponential(1.0 / 7200)
}

func TestSingleWorkerNoContention(t *testing.T) {
	cfg := Config{
		Workers:      1,
		Avail:        stable(),
		ScheduleDist: stable(),
		LinkMBps:     5,
		CheckpointMB: 500,
		Duration:     6 * 3600,
		Seed:         1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Solo transfers take exactly size/capacity.
	if math.Abs(res.SoloTransferSec-100) > 1e-9 {
		t.Errorf("solo transfer = %g, want 100", res.SoloTransferSec)
	}
	if math.Abs(res.MeanTransferSec-100) > 1 {
		t.Errorf("mean transfer = %g, want ≈100 with no contention", res.MeanTransferSec)
	}
	if res.Collisions != 0 || res.MaxConcurrent != 1 {
		t.Errorf("collisions=%d maxConcurrent=%d", res.Collisions, res.MaxConcurrent)
	}
	if res.Efficiency <= 0.5 || res.Efficiency >= 1 {
		t.Errorf("efficiency = %g", res.Efficiency)
	}
	if res.Commits == 0 {
		t.Error("no commits")
	}
}

func TestContentionStretchesTransfers(t *testing.T) {
	base := Config{
		Avail:        stable(),
		ScheduleDist: stable(),
		LinkMBps:     5,
		CheckpointMB: 500,
		Duration:     6 * 3600,
		Seed:         2,
	}
	one := base
	one.Workers = 1
	many := base
	many.Workers = 8
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	if r8.MeanTransferSec <= r1.MeanTransferSec {
		t.Errorf("8-worker transfers (%g s) not longer than solo (%g s)",
			r8.MeanTransferSec, r1.MeanTransferSec)
	}
	if r8.Collisions == 0 || r8.MaxConcurrent < 2 {
		t.Errorf("no contention observed: %+v", r8)
	}
	if r8.CollisionStretch() <= 1 {
		t.Errorf("stretch = %g, want > 1", r8.CollisionStretch())
	}
	// Per-process efficiency must fall under contention.
	if r8.Efficiency >= r1.Efficiency {
		t.Errorf("efficiency did not fall: %g vs %g", r8.Efficiency, r1.Efficiency)
	}
}

func TestHeavyTailModelCollidesLess(t *testing.T) {
	// On heavy-tailed machines, an exponential schedule checkpoints
	// more often than a (correct) heavy-tailed schedule, so it moves
	// more data and suffers more collisions — the §5.2 discussion.
	avail := dist.NewWeibull(0.43, 3409)
	expFit := dist.NewExponential(1 / avail.Mean()) // what MLE would give in the limit
	base := Config{
		Workers:      8,
		Avail:        avail,
		LinkMBps:     5,
		CheckpointMB: 500,
		Duration:     48 * 3600,
		Seed:         3,
	}
	right := base
	right.ScheduleDist = avail
	wrong := base
	wrong.ScheduleDist = expFit
	rRight, err := Run(right)
	if err != nil {
		t.Fatal(err)
	}
	rWrong, err := Run(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if rWrong.MBMoved <= rRight.MBMoved {
		t.Errorf("exponential schedule moved %g MB, heavy-tail %g — expected more",
			rWrong.MBMoved, rRight.MBMoved)
	}
	if rWrong.CollisionStretch() <= rRight.CollisionStretch() {
		t.Errorf("exponential stretch %g not above heavy-tail %g",
			rWrong.CollisionStretch(), rRight.CollisionStretch())
	}
}

func TestFailuresLoseWork(t *testing.T) {
	// Volatile machines: failures occur and lose work.
	avail := dist.NewWeibull(0.43, 3409)
	res, err := Run(Config{
		Workers:      4,
		Avail:        avail,
		ScheduleDist: avail,
		LinkMBps:     5,
		CheckpointMB: 500,
		Duration:     24 * 3600,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 || res.LostWork <= 0 {
		t.Errorf("expected failures and lost work: %+v", res)
	}
	if res.Efficiency <= 0 || res.Efficiency >= 1 {
		t.Errorf("efficiency = %g", res.Efficiency)
	}
	// Committed + lost work cannot exceed the total process-time.
	if res.CommittedWork+res.LostWork > float64(4)*24*3600 {
		t.Error("work accounting exceeds total time")
	}
}

func TestStaggerPolicyString(t *testing.T) {
	if StaggerNone.String() != "none" || StaggerToken.String() != "token" ||
		StaggerJitter.String() != "jitter" || StaggerPolicy(9).String() != "stagger(9)" {
		t.Error("stagger strings wrong")
	}
}

func TestStaggerTokenEliminatesCollisions(t *testing.T) {
	base := Config{
		Workers:      8,
		Avail:        stable(),
		ScheduleDist: stable(),
		LinkMBps:     5,
		CheckpointMB: 500,
		Duration:     12 * 3600,
		Seed:         6,
	}
	free := base
	free.Stagger = StaggerNone
	token := base
	token.Stagger = StaggerToken
	rf, err := Run(free)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(token)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Collisions != 0 || rt.MaxConcurrent > 1 {
		t.Errorf("token policy still collided: %+v", rt)
	}
	if rf.Collisions == 0 {
		t.Fatalf("baseline saw no collisions; test not exercising contention")
	}
	// Serialized transfers run at full rate.
	if rt.MeanTransferSec > rt.SoloTransferSec*1.01 {
		t.Errorf("token transfers stretched: %g vs solo %g", rt.MeanTransferSec, rt.SoloTransferSec)
	}
	// And the delay moves into the queue instead.
	if rt.QueueWaitSec <= 0 {
		t.Error("token policy recorded no queueing")
	}
	if rf.QueueWaitSec != 0 {
		t.Error("uncoordinated policy should not queue")
	}
}

func TestStaggerJitterReducesCollisionStretch(t *testing.T) {
	base := Config{
		Workers:      12,
		Avail:        stable(),
		ScheduleDist: stable(),
		LinkMBps:     5,
		CheckpointMB: 500,
		Duration:     24 * 3600,
		Seed:         8,
	}
	free := base
	jit := base
	jit.Stagger = StaggerJitter
	rf, err := Run(free)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := Run(jit)
	if err != nil {
		t.Fatal(err)
	}
	// All workers start in lockstep, so the uncoordinated baseline
	// synchronizes; jitter must reduce the average transfer stretch.
	if rj.CollisionStretch() >= rf.CollisionStretch() {
		t.Errorf("jitter stretch %g not below baseline %g",
			rj.CollisionStretch(), rf.CollisionStretch())
	}
}

func TestRunDeterminism(t *testing.T) {
	avail := dist.NewWeibull(0.43, 3409)
	cfg := Config{
		Workers: 4, Avail: avail, ScheduleDist: avail,
		LinkMBps: 5, CheckpointMB: 500, Duration: 12 * 3600, Seed: 9,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestRunErrors(t *testing.T) {
	avail := dist.NewExponential(0.001)
	cases := []Config{
		{Workers: 0, Avail: avail, ScheduleDist: avail, LinkMBps: 1, CheckpointMB: 1, Duration: 1},
		{Workers: 1, ScheduleDist: avail, LinkMBps: 1, CheckpointMB: 1, Duration: 1},
		{Workers: 1, Avail: avail, LinkMBps: 1, CheckpointMB: 1, Duration: 1},
		{Workers: 1, Avail: avail, ScheduleDist: avail, LinkMBps: 0, CheckpointMB: 1, Duration: 1},
		{Workers: 1, Avail: avail, ScheduleDist: avail, LinkMBps: 1, CheckpointMB: 0, Duration: 1},
		{Workers: 1, Avail: avail, ScheduleDist: avail, LinkMBps: 1, CheckpointMB: 1, Duration: 0},
	}
	for i, c := range cases {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}
