package parallel

import (
	"math/rand"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// benchConfig is the root BenchmarkParallelRun parameterization at the
// given herd size, reused here so the in-package numbers line up with
// the gated cross-package ones.
func benchConfig(workers int) Config {
	avail := dist.NewWeibull(0.43, 3409)
	return Config{
		Workers:      workers,
		Avail:        avail,
		ScheduleDist: avail,
		LinkMBps:     2 * float64(workers),
		CheckpointMB: 500,
		Duration:     24 * 3600,
		Seed:         11,
	}
}

// BenchmarkHeapUpdate measures the sub-heap's decrease/increase-key
// churn at the per-shard size the engine actually uses (defaultShardSize
// workers per heap), the operation every failure reschedule pays.
func BenchmarkHeapUpdate(b *testing.B) {
	const n = defaultShardSize
	rng := rand.New(rand.NewSource(7))
	keys := make([]float64, 4096)
	for i := range keys {
		keys[i] = rng.Float64() * 1e6
	}
	h := newEventHeap(n)
	for i := range n {
		h.Update(i, keys[i%len(keys)], kindFail)
	}
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		h.Update(i%n, keys[i%len(keys)], kindFail)
		i++
	}
}

// BenchmarkWheelCycle measures one insert/min/remove round trip through
// the timing wheel at engine-like density — the cost every work
// interval pays twice (filed at completion of the previous transfer,
// unfiled when the interval ends).
func BenchmarkWheelCycle(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(7))
	w := newWorkWheel(n, 1000)
	now := make([]float64, n)
	for i := range n {
		now[i] = rng.Float64() * 900
		w.insert(i, now[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		gid, k, _ := w.minOf(now[i%n])
		w.remove(int(gid))
		w.insert(int(gid), k) // same bucket: steady-state occupancy
		i++
	}
}

// BenchmarkWheelCohort measures the synchronized-cohort pattern the
// shared link's processor sharing produces — a whole wave entering the
// wheel with one identical key in ascending gid order, then draining
// one at a time. The sorted-bucket tail append keeps this linear; an
// unsorted bucket degrades to O(cohort²) per wave.
func BenchmarkWheelCohort(b *testing.B) {
	const cohort = 4096
	w := newWorkWheel(cohort, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		for i := range cohort {
			w.insert(i, 500)
		}
		for range cohort {
			gid, _, _ := w.minOf(400)
			w.remove(int(gid))
		}
	}
}

// BenchmarkEngineSteadyState measures the full event loop on a mid-size
// herd — the per-event cost of the tournament, wheel, ring and rate
// bookkeeping together, without the cross-package schedule-build cost
// the root BenchmarkParallelRun folds in (the memo cache hides it after
// the first iteration there; here the config is fixed so it always
// hits).
func BenchmarkEngineSteadyState(b *testing.B) {
	cfg := benchConfig(1024)
	var eff float64
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eff = res.Efficiency
	}
	b.ReportMetric(eff, "efficiency")
}
