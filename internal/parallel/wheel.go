package parallel

import "math/bits"

// workWheel is a timing wheel holding every working worker keyed by
// its interval completion time. Work completions are the engine's
// highest-rate wall-clock event class and have two properties the
// general sub-heaps cannot exploit: the clock only moves forward, and
// every key lies within a bounded span of now (workEnd = now + T with
// T at most the longest planned interval, known at engine start). That
// makes bucket address arithmetic sufficient for ordering across
// buckets — int64(key·invW) is monotone in key, so the earliest live
// bucket provably holds the minimum — and exact (key, id) comparisons
// are only ever needed among the few entries sharing one bucket.
// Insert and remove are O(1) pointer splices into intrusive per-bucket
// lists; finding the minimum is O(1) amortized (the cursor sweeps each
// bucket at most once per lap, and the bucket scan touches ~1 entry at
// the tuned density). The comparison sifts this replaces were the
// sharded engine's single largest cost.
//
// Exactness does not rest on the float bucket arithmetic: rounding at
// a bucket edge only shifts where an entry sits, never the order the
// scan reports, because the mapping stays monotone and ties are always
// settled by comparing the stored keys and ids themselves.
//
// Bucket lists are kept sorted by (key, gid) with a tail pointer, so
// the bucket head IS the bucket minimum and a rescan never walks a
// list. Sortedness costs nothing where it matters most: under the
// shared link's processor sharing, transfers that start together
// finish at the same instant, so whole cohorts re-enter the wheel with
// an identical key in ascending gid order — each lands exactly at its
// bucket's tail, an O(1) append. (An unsorted bucket with a scan-for-
// min rescan turns those cohorts into O(W²) per wave: every completion
// removes the minimum and rescans the tie list.) Out-of-order inserts
// into a populated bucket pay a list walk, but distinct keys rarely
// share a bucket at the tuned density — ties from synchronized
// cohorts are the only crowds, and those append.
type workWheel struct {
	head []int32   // slot -> first gid in bucket (its minimum), -1 if empty
	tail []int32   // slot -> last gid in bucket (its maximum)
	next []int32   // gid -> next in its bucket, -1 at end
	prev []int32   // gid -> previous in its bucket, -1 at head
	slot []int32   // gid -> occupied slot, -1 when absent
	key  []float64 // gid -> workEnd
	occ  []uint64  // occupancy bitmap over slots: rescans skip empty
	// buckets a word at a time instead of probing head one by one

	mask  int64
	wmask int     // len(occ) - 1
	invW  float64 // buckets per second
	cur   int64   // absolute bucket cursor; never past any live key's bucket
	count int
	min   int32 // cached min gid; -1 = unknown (rescan lazily)
}

// newWorkWheel sizes a wheel for the given herd and key span (the
// largest possible workEnd - now). The bucket count targets a few
// buckets per worker so occupied buckets hold ~1 entry, and the bucket
// width is derived from the span with slack so the live window — keys
// in [now, now+span] — can never wrap onto itself.
func newWorkWheel(workers int, span float64) *workWheel {
	n := 256
	for n < 4*workers && n < 1<<18 {
		n <<= 1
	}
	w := &workWheel{
		head:  make([]int32, n),
		tail:  make([]int32, n),
		next:  make([]int32, workers),
		prev:  make([]int32, workers),
		slot:  make([]int32, workers),
		key:   make([]float64, workers),
		occ:   make([]uint64, n/64),
		mask:  int64(n - 1),
		wmask: n/64 - 1,
		invW:  float64(n-4) / span,
		min:   -1,
	}
	for i := range w.head {
		w.head[i] = -1
	}
	for i := range w.slot {
		w.slot[i] = -1
	}
	return w
}

// insert files gid under key k, keeping the bucket list sorted by
// (key, gid). The tail check makes synchronized-cohort inserts — equal
// keys arriving in ascending gid order — O(1) appends; the cached
// minimum stays valid by direct comparison.
func (w *workWheel) insert(gid int, k float64) {
	b := int64(k * w.invW)
	if b < w.cur {
		// The cursor sits at the current minimum's bucket, which a new
		// key may undercut (a young worker's short interval finishing
		// before an old worker's long one); pull it back so the scan
		// can never start past a live entry.
		w.cur = b
	}
	s := int32(b & w.mask)
	g := int32(gid)
	if t := w.tail[s]; w.head[s] < 0 {
		// Empty bucket.
		w.head[s], w.tail[s] = g, g
		w.next[gid], w.prev[gid] = -1, -1
		w.occ[s>>6] |= 1 << (s & 63)
	} else if k > w.key[t] || (k == w.key[t] && g > t) {
		// At or past the tail — the cohort fast path.
		w.next[t], w.prev[gid], w.next[gid] = g, t, -1
		w.tail[s] = g
	} else {
		// Walk to the first entry ordered after (k, gid); rare, since
		// distinct keys seldom share a bucket at the tuned density.
		at := w.head[s]
		for w.key[at] < k || (w.key[at] == k && at < g) {
			at = w.next[at]
		}
		p := w.prev[at]
		w.next[gid], w.prev[gid], w.prev[at] = at, p, g
		if p >= 0 {
			w.next[p] = g
		} else {
			w.head[s] = g
		}
	}
	w.slot[gid] = s
	w.key[gid] = k
	w.count++
	if m := w.min; m >= 0 {
		if k < w.key[m] || (k == w.key[m] && g < m) {
			w.min = g
		}
	}
}

// remove unfiles gid; absent gids are a no-op. Removing the cached
// minimum defers the rescan to the next minOf.
func (w *workWheel) remove(gid int) {
	s := w.slot[gid]
	if s < 0 {
		return
	}
	n, p := w.next[gid], w.prev[gid]
	if n >= 0 {
		w.prev[n] = p
	} else {
		w.tail[s] = p
	}
	if p >= 0 {
		w.next[p] = n
	} else {
		w.head[s] = n
		if n < 0 {
			w.occ[s>>6] &^= 1 << (s & 63)
		}
	}
	w.slot[gid] = -1
	w.count--
	if w.min == int32(gid) {
		w.min = -1
	}
}

// minOf returns the earliest entry by (key, gid), given the current
// simulation time (every live key is ≥ now: pending completions are
// future events). On a cache miss it advances the cursor to the first
// occupied bucket — every live key's bucket is at or past the cursor,
// an invariant kept by the insert-time pull-back and the cursor only
// ever skipping empty buckets — and takes the exact minimum within it.
// Clamping the cursor up to now's bucket first keeps it fresh across
// long cache-valid stretches; without it the live window (at most
// span, i.e. under N buckets, wide) could drift a full lap past a
// stale cursor and alias into slots the scan still has to cross.
func (w *workWheel) minOf(now float64) (gid int32, k float64, ok bool) {
	if m := w.min; m >= 0 { // cache-valid fast path, inlined in the event loop
		return m, w.key[m], true
	}
	if w.count == 0 {
		return 0, 0, false
	}
	return w.rescan(now)
}

// rescan recomputes the cached minimum after the previous one left the
// wheel — once per commit cycle, against minOf's once per event.
func (w *workWheel) rescan(now float64) (gid int32, k float64, ok bool) {
	if c := int64(now * w.invW); c > w.cur {
		w.cur = c
	}
	s := int(w.cur & w.mask)
	wi := s >> 6
	if word := w.occ[wi] >> (s & 63); word != 0 {
		w.cur += int64(bits.TrailingZeros64(word))
	} else {
		w.cur += int64(64 - s&63)
		for {
			wi = (wi + 1) & w.wmask
			if word := w.occ[wi]; word != 0 {
				w.cur += int64(bits.TrailingZeros64(word))
				break
			}
			w.cur += 64
		}
	}
	best := w.head[w.cur&w.mask] // sorted bucket: head is the minimum
	w.min = best
	return best, w.key[best], true
}
