package parallel

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

func testGridConfig(seeds, maxProcs int) GridConfig {
	avail := dist.NewWeibull(0.43, 3409)
	return GridConfig{
		Base: Config{
			Workers:      6,
			Avail:        avail,
			LinkMBps:     5,
			CheckpointMB: 500,
			Duration:     12 * 3600,
		},
		Models: []GridModel{
			{Name: "exponential", Dist: dist.NewExponential(1 / avail.Mean())},
			{Name: "weibull", Dist: avail},
		},
		Staggers: []StaggerPolicy{StaggerNone, StaggerToken, StaggerJitter},
		Seeds:    seeds,
		Seed:     42,
		MaxProcs: maxProcs,
	}
}

func TestRunGridShape(t *testing.T) {
	g, err := RunGrid(testGridConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 6 || g.Seeds != 3 {
		t.Fatalf("grid shape: %d cells, %d seeds", len(g.Cells), g.Seeds)
	}
	// Model-major, stagger-minor row order (the ckpt-parallel table).
	if g.Cells[0].Model != "exponential" || g.Cells[3].Model != "weibull" ||
		g.Cells[1].Stagger != StaggerToken {
		t.Fatalf("cell order wrong: %+v", g.Cells)
	}
	for _, c := range g.Cells {
		if len(c.Results) != 3 {
			t.Fatalf("cell %s/%s has %d results", c.Model, c.Stagger, len(c.Results))
		}
		// Independent replicate streams must differ.
		if c.Results[0] == c.Results[1] && c.Results[1] == c.Results[2] {
			t.Errorf("cell %s/%s replicates identical — seed derivation broken", c.Model, c.Stagger)
		}
		ci := c.Efficiency()
		if ci.Mean <= 0 || ci.Mean >= 1 || ci.HalfWidth <= 0 || ci.N != 3 {
			t.Errorf("cell %s/%s efficiency CI %+v", c.Model, c.Stagger, ci)
		}
	}
}

// TestRunGridDeterminism pins the contract the flag name promises: a
// fixed GridConfig yields byte-identical results at any GOMAXPROCS and
// any pool width.
func TestRunGridDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	serial, err := RunGrid(testGridConfig(3, 1))
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}

	prev = runtime.GOMAXPROCS(8)
	wide, err := RunGrid(testGridConfig(3, 8))
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("grid results depend on concurrency:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

// TestRunGridMatchesRun pins schedule sharing: a grid cell's replicate
// equals a standalone Run with the same derived seed.
func TestRunGridMatchesRun(t *testing.T) {
	cfg := testGridConfig(2, 4)
	g, err := RunGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cell 4 = weibull/token; flat task index = 4*Seeds + 1.
	cell := g.Cells[4]
	c := cfg.Base
	c.ScheduleDist = cfg.Models[1].Dist
	c.Stagger = StaggerToken
	c.Seed = gridSeed(cfg.Seed, 4*cfg.Seeds+1)
	want, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Results[1] != want {
		t.Fatalf("grid cell diverged from standalone Run:\ngrid: %+v\nrun:  %+v", cell.Results[1], want)
	}
}

func TestRunGridErrors(t *testing.T) {
	avail := dist.NewExponential(0.001)
	ok := testGridConfig(1, 1)

	noModels := ok
	noModels.Models = nil
	if _, err := RunGrid(noModels); err == nil {
		t.Error("no models should error")
	}

	noStaggers := ok
	noStaggers.Staggers = nil
	if _, err := RunGrid(noStaggers); err == nil {
		t.Error("no staggers should error")
	}

	nilDist := ok
	nilDist.Models = []GridModel{{Name: "broken"}}
	if _, err := RunGrid(nilDist); err == nil {
		t.Error("nil model dist should error")
	}

	badBase := ok
	badBase.Base.Workers = 0
	badBase.Models = []GridModel{{Name: "exp", Dist: avail}}
	if _, err := RunGrid(badBase); err == nil {
		t.Error("invalid base should error")
	}
}

// TestRunGridTraceDeterminism extends the determinism contract to the
// trace export: with a tracer attached, the serialized Chrome trace is
// byte-identical at any pool width (each engine emits on its own
// task-indexed pid, on the simulation clock).
func TestRunGridTraceDeterminism(t *testing.T) {
	render := func(maxProcs int) []byte {
		tr := obs.NewTracer(obs.TracerOptions{FullFidelity: true})
		cfg := testGridConfig(2, maxProcs)
		cfg.Base.Trace = tr
		if _, err := RunGrid(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, wide := render(1), render(8)
	if len(serial) == 0 || !bytes.Contains(serial, []byte("transfer.checkpoint")) {
		t.Fatalf("trace missing transfer spans: %d bytes", len(serial))
	}
	if !bytes.Equal(serial, wide) {
		t.Error("trace export depends on pool width")
	}
}
