package parallel

import (
	"math"
	"math/bits"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// Worker states, packed into hotWorker.state.
const (
	wRecovering uint8 = iota
	wWorking
	wTransferring // checkpoint upload
	wQueued       // waiting for the transfer token (StaggerToken)
)

// hotWorker flag bits, packed into hotWorker.flags.
const (
	fWantRecovery uint8 = 1 << iota // queued transfer is a recovery (no work at stake)
	fPredTrue                       // a true alarm fired this period
	fMigrating                      // current transfer is a migration
	fProactive                      // current transfer was alarm-triggered
)

// hotWorker is the per-worker state the event loop touches on every
// event, packed to exactly one 64-byte cache line so processing an
// event costs one line fill instead of a stride across parallel
// slices. Cold per-worker state (predictor alarm lists, schedule
// hints) lives in structure-of-arrays form on the shard instead.
type hotWorker struct {
	availStart  float64 // when the current availability began
	failAt      float64 // when the owner reclaims the machine
	workEnd     float64 // when the current interval completes (wWorking)
	topt        float64 // current interval length
	target      float64 // cumulative service mark at which the transfer completes
	started     float64 // transfer start time
	queuedSince float64 // queue bookkeeping (StaggerToken)
	queueSeq    uint32  // bumped per enqueue; stale FIFO entries are skipped
	xferGen     uint16  // bumped per transfer start; stale ring entries are skipped
	state       uint8
	flags       uint8
}

// shard is one sub-engine: a contiguous range of workers with its own
// hot-state slab and wall-clock sub-heaps. Shards partition by id
// (shard = id >> shift), so a shard's slab and heaps stay
// cache-resident while the coordinator works through a burst of events
// in its region of the id space, and sift depth is log4 of the shard
// width instead of log2 of the whole herd.
//
// The wall calendar splits by event kind, by update rate: failH holds
// every worker keyed by its failure time and is touched only when a
// period ends (a handful of times per worker per day), and predH holds
// pending predictor alarms (non-reactive policies only). The high-rate
// class — work-interval completions, one per commit cycle — lives in
// the engine's global timing wheel (wheel.go) instead of a comparison
// heap, so the per-cycle calendar cost is O(1) splices rather than
// full-depth sifts, and the tournament over shards is only consulted
// for the rare fail/pred candidates. cand caches the root minimum; the
// tournament is only touched when it changes.
type shard struct {
	base  int // global id of local index 0
	ws    []hotWorker
	failH eventHeap // all workers: failure time (kindFail)
	predH eventHeap // pending alarms (kindPred; non-reactive policies)
	cand  heapNode  // cached min of the two roots (id is shard-local)
	hints []int32   // per-worker Schedule.LookupFrom hint
	// Predictor bookkeeping (nil unless Config.Predict enabled).
	alarms   [][]predict.Event // this availability period's alarms
	alarmIdx []int32           // next alarm to fire
}

// candidate returns the shard's earliest fail-or-alarm event. failH is
// never empty (every worker always has a pending failure), so the
// shard always has a candidate.
func (sh *shard) candidate() heapNode {
	c := sh.failH.nodes[0]
	if len(sh.predH.nodes) > 0 && nodeLess(sh.predH.nodes[0], c) {
		c = sh.predH.nodes[0]
	}
	return c
}

type queueEntry struct{ id, seq int }

// ringEntry is one in-flight transfer in the service-coordinate FIFO.
type ringEntry struct {
	target float64 // cumulative service mark at which the transfer completes
	id     int32
	gen    uint16 // hotWorker.xferGen at start; mismatch = aborted (stale)
	_      uint16
}

// defaultShardSize is the auto shard width: 256 workers keep a shard's
// hot slab (16 KiB) plus sub-heaps L1-resident, while the tournament
// stays small (a 10⁶-worker herd is ~4k shards, a 64 KiB heap). The
// width is a pure function of the worker count — never of GOMAXPROCS —
// so auto-sharded results are identical on every machine.
const defaultShardSize = 256

// shardWidth returns the power-of-two workers-per-shard for a run.
// Shards <= 0 selects the default width; an explicit shard count is
// served by the smallest power-of-two width that needs at most that
// many shards (Shards=1 therefore yields exactly one sub-engine — the
// unsharded calendar).
func shardWidth(workers, shards int) int {
	if shards <= 0 {
		return defaultShardSize
	}
	per := (workers + shards - 1) / shards
	width := 1
	for width < per {
		width <<= 1
	}
	return width
}

// engine is the sharded event-calendar simulation state. Transfers
// progress under processor sharing, tracked in "service" units: svc is
// the cumulative MB a hypothetical always-active transfer would have
// received since t=0, advancing at LinkMBps/max(1, nActive). A
// transfer starting at service mark s completes at mark s +
// CheckpointMB regardless of how the rate changes in between, so
// completion order is fixed at start time — and because every image is
// the same size, completion marks are monotone in start order, which
// reduces the whole transfer calendar to a FIFO ring with O(1) pushes
// and pops (entries from aborted transfers are skipped by generation
// check).
//
// The coordinator is serial: shards are a data-layout decomposition,
// not concurrent actors. Every event — including every draw from the
// single RNG stream and every add into the floating-point service and
// accounting state — happens in the one global (time, kind, id) order,
// which is how results stay bit-identical for any shard count and any
// GOMAXPROCS (DESIGN.md §14).
type engine struct {
	cfg        Config
	rng        *rand.Rand
	res        Result
	sched      *markov.Schedule
	memoryless bool
	fastOK     bool    // single-interval memoryless plan: skip Lookup entirely
	fastT      float64 // the interval served by the fast path
	solo       float64
	mb         float64 // CheckpointMB

	shards []shard
	shift  uint // shard = id >> shift
	mask   int  // local = id & mask

	tourney eventHeap  // over shards, keyed by each shard's cached candidate
	wheel   *workWheel // working workers keyed by interval completion

	ring  []ringEntry // in-flight transfers, FIFO in the service coordinate
	rHead int

	pred      *predict.Predictor // nil = prediction off
	prng      *rand.Rand         // predictor's private stream (predict.StreamSeed)
	predInCal bool               // alarms enter the calendar (non-reactive policy)

	svc     float64 // cumulative per-transfer service (MB)
	svcAt   float64 // wall-clock time svc was advanced to
	nActive int     // concurrent transfers (recoveries included)
	rateNow float64 // LinkMBps/max(1, nActive), refreshed when nActive moves

	lastMulti float64 // last instant the link was shared; seeds collision counting

	queue []queueEntry // token-policy FIFO
	qHead int

	xferSum   float64 // streaming mean of completed transfer durations
	xferCount int

	svcClamps int // transfer timestamps pinned to now by the last-ulp guard

	tr  *obs.Tracer // nil = tracing off
	pid uint64      // trace lane (Config.TracePid, default 1)

	now float64
}

// wref resolves a global worker id to its shard and hot record.
func (e *engine) wref(id int) (*shard, *hotWorker) {
	sh := &e.shards[id>>e.shift]
	return sh, &sh.ws[id&e.mask]
}

// updateCand refreshes shard s's cached candidate and, only when it
// changed, its tournament entry. Most mutations (a workH insert above
// the root, an alarm consumed behind a nearer failure) leave the
// candidate alone and skip the tournament entirely.
func (e *engine) updateCand(s int) {
	sh := &e.shards[s]
	c := sh.candidate()
	if c == sh.cand {
		return
	}
	sh.cand = c
	e.tourney.Update(s, c.key, c.kind)
}

// newEngine initializes the simulation state shared by the sharded
// engine and the linear-scan reference engine: workers draw their
// first lifetimes in index order, then initial recoveries start (the
// token policy serializes even these).
func newEngine(cfg Config, sched *markov.Schedule) *engine {
	width := shardWidth(cfg.Workers, cfg.Shards)
	nShards := (cfg.Workers + width - 1) / width
	e := &engine{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		sched:      sched,
		memoryless: dist.IsMemoryless(cfg.ScheduleDist),
		solo:       cfg.CheckpointMB / cfg.LinkMBps,
		mb:         cfg.CheckpointMB,
		shift:      uint(bits.TrailingZeros(uint(width))),
		mask:       width - 1,
		shards:     make([]shard, nShards),
		lastMulti:  math.Inf(-1),
		tr:         cfg.Trace,
		pid:        cfg.TracePid,
	}
	if sched != nil && sched.Len() == 1 && e.memoryless {
		// A memoryless model plans one interval and extends it as the
		// steady state; serving it straight from the plan skips the
		// per-commit Lookup.
		e.fastOK = true
		e.fastT = sched.Intervals[0]
	}
	if e.tr != nil && e.pid == 0 {
		e.pid = 1
	}
	if cfg.Predict.Enabled() {
		// validate() vetted the config; New only fails on invalid input.
		e.pred, _ = predict.New(cfg.Predict)
		e.prng = rand.New(rand.NewSource(predict.StreamSeed(cfg.Seed)))
		e.predInCal = cfg.Policy != predict.PolicyReactive
	}
	for s := range e.shards {
		sh := &e.shards[s]
		sh.base = s * width
		sh.cand.key = math.NaN() // != any real candidate, forcing the first tourney insert
		n := cfg.Workers - sh.base
		if n > width {
			n = width
		}
		sh.ws = make([]hotWorker, n)
		sh.failH.init(n)
		sh.predH.init(n)
		if !e.fastOK {
			sh.hints = make([]int32, n)
		}
		if e.pred != nil {
			sh.alarms = make([][]predict.Event, n)
			sh.alarmIdx = make([]int32, n)
		}
	}
	e.tourney.init(nShards)
	// The wheel's key span bounds workEnd - now: every interval served
	// is a planned interval, the solo-cost fallback, or either of those
	// stretched by up to 30% jitter — all known exactly at this point.
	span := e.solo
	if sched != nil {
		for _, T := range sched.Intervals {
			if T > span {
				span = T
			}
		}
	}
	if cfg.Stagger == StaggerJitter {
		span *= 1.3
	}
	e.wheel = newWorkWheel(cfg.Workers, span)
	e.res.SoloTransferSec = e.solo
	for id := 0; id < cfg.Workers; id++ {
		sh, w := e.wref(id)
		w.failAt = cfg.Avail.Rand(e.rng)
		w.state = wWorking // neutral until startTransfer assigns one
		sh.failH.Update(id&e.mask, w.failAt, kindFail)
	}
	for s := range e.shards {
		e.updateCand(s)
	}
	// Alarm draws come after every lifetime draw, in worker order, from
	// the predictor's own stream — the lifetime stream stays untouched.
	for id := 0; id < cfg.Workers; id++ {
		e.newPeriod(id)
	}
	for id := 0; id < cfg.Workers; id++ {
		e.startTransfer(id, true)
	}
	return e
}

// run drives the event loop: the tournament root names the shard
// holding the earliest failure or alarm, the wheel holds the next
// work-interval completion, the ring head holds the next transfer
// completion, and the earliest of the three (by the global (time,
// kind, id) order) fires.
func (e *engine) run() {
	horizon := e.cfg.Duration
	for {
		if len(e.tourney.nodes) == 0 {
			break
		}
		sh := &e.shards[e.tourney.nodes[0].id]
		c := sh.cand
		id, t, kind := sh.base+int(c.id), c.key, c.kind
		if g, k, ok := e.wheel.minOf(e.now); ok && eventLess(k, kindWork, int(g), t, kind, id) {
			id, t, kind = int(g), k, kindWork
		}
		if re, ok := e.ringHead(); ok {
			// Compare the transfer candidate in the service coordinate —
			// (t - svcAt)·rate is monotone in t — so the division that
			// converts a completion mark to wall time is paid only when
			// the transfer actually wins the selection. Wall candidates
			// never carry kindXfer, so a tie in marks goes to the
			// transfer exactly when its kind orders first.
			take := false
			if re.target <= e.svc {
				take = eventLess(e.now, kindXfer, int(re.id), t, kind, id)
			} else if svcT := e.svc + (t-e.svcAt)*e.rateNow; re.target != svcT {
				take = re.target < svcT
			} else {
				take = kindXfer < kind
			}
			if take {
				xt := e.svcAt + (re.target-e.svc)/e.rateNow
				if xt < e.now {
					xt = e.now // guard the last-ulp of service arithmetic
					e.svcClamps++
				}
				id, t, kind = int(re.id), xt, kindXfer
			}
		}
		if t >= horizon {
			break
		}
		e.fire(id, kind, t)
	}
}

// ringHead returns the oldest live in-flight transfer, permanently
// skipping entries whose transfer was aborted (generation mismatch or
// a worker no longer on the link). Amortized O(1): every entry is
// pushed and skipped at most once.
func (e *engine) ringHead() (ringEntry, bool) {
	for e.rHead < len(e.ring) {
		re := e.ring[e.rHead]
		_, w := e.wref(int(re.id))
		if w.xferGen == re.gen && (w.state == wTransferring || w.state == wRecovering) {
			return re, true
		}
		e.rHead++
	}
	return ringEntry{}, false
}

// ringPush appends a started transfer, compacting the consumed prefix
// once it dominates the slice so ring memory stays proportional to the
// live transfer count.
func (e *engine) ringPush(re ringEntry) {
	if e.rHead > 1024 && e.rHead*2 >= len(e.ring) {
		n := copy(e.ring, e.ring[e.rHead:])
		e.ring = e.ring[:n]
		e.rHead = 0
	}
	e.ring = append(e.ring, re)
}

// ringPop consumes the fired transfer's entry (and any stale entries
// queued ahead of it, which monotone completion marks guarantee were
// aborted earlier).
func (e *engine) ringPop(id int) {
	for e.rHead < len(e.ring) {
		re := e.ring[e.rHead]
		e.rHead++
		if int(re.id) == id {
			_, w := e.wref(id)
			if re.gen == w.xferGen {
				return
			}
		}
	}
}

// movedMB reports how much of w's in-flight transfer has crossed the
// link, given the current cumulative service mark.
func (e *engine) movedMB(w *hotWorker) float64 {
	left := w.target - e.svc
	if left < 0 {
		left = 0
	}
	if left > e.mb {
		left = e.mb
	}
	return e.mb - left
}

// traceTransfer emits the span of a transfer that just ended — torn by
// a failure or run to completion — on the simulation clock.
func (e *engine) traceTransfer(id int, w *hotWorker, outcome string) {
	name := "transfer.checkpoint"
	if w.state == wRecovering {
		name = "transfer.recovery"
	}
	if w.flags&fMigrating != 0 {
		name = "transfer.migrate"
	}
	e.tr.SpanAt(e.pid, uint64(id)+1, name, w.started, e.now-w.started,
		obs.AttrFloat("mb", e.movedMB(w)),
		obs.AttrStr("outcome", outcome),
		obs.AttrBool("collided", e.lastMulti >= w.started))
}

// predTid is the predictor's trace lane for worker id: the alarm lanes
// sit in a band above the per-worker transfer lanes.
func (e *engine) predTid(id int) uint64 {
	return uint64(e.cfg.Workers) + uint64(id) + 1
}

// newPeriod draws the predictor alarms for id's freshly started
// availability period and schedules the first one. A disabled
// predictor draws nothing.
func (e *engine) newPeriod(id int) {
	sh, w := e.wref(id)
	w.flags &^= fPredTrue
	if e.pred == nil {
		return
	}
	l := id & e.mask
	sh.alarms[l] = e.pred.PeriodEvents(w.failAt-w.availStart, e.prng)
	sh.alarmIdx[l] = 0
	e.schedAlarm(id)
}

// schedAlarm refreshes id's calendar entry for its next pending alarm.
// Under the reactive policy alarms never enter the calendar: nothing
// acts on them, so they are settled in bulk when the failure lands —
// which keeps every clock advance, and therefore every float in the
// service arithmetic, bit-identical to a run with no predictor at all.
func (e *engine) schedAlarm(id int) {
	if !e.predInCal {
		return
	}
	sh, w := e.wref(id)
	l := id & e.mask
	if ai := int(sh.alarmIdx[l]); ai < len(sh.alarms[l]) {
		sh.predH.Update(l, w.availStart+sh.alarms[l][ai].At, kindPred)
	} else {
		sh.predH.Remove(l)
	}
	e.updateCand(id >> e.shift)
}

// countAlarm settles one fired alarm in the books and on the trace.
func (e *engine) countAlarm(id int, ev predict.Event) {
	e.res.Predictions++
	_, w := e.wref(id)
	if ev.True {
		w.flags |= fPredTrue
	} else {
		e.res.PredFalse++
	}
	if e.tr != nil {
		at := w.availStart + ev.At
		e.tr.EventAt(e.pid, e.predTid(id), "predict.fired", at, obs.AttrBool("true", ev.True))
		if !ev.True {
			e.tr.EventAt(e.pid, e.predTid(id), "predict.false", at)
		}
	}
}

// firePred processes a predictor alarm. The alarm always counts; under
// the proactive and migrate policies it additionally interrupts an
// in-flight work interval (the worker cannot tell true alarms from
// false ones — that is what precision costs) and ships the image, as a
// checkpoint that commits the truncated interval or as a migration off
// the doomed machine. Workers mid-recovery, mid-transfer or queued have
// nothing new to save and let the alarm pass.
func (e *engine) firePred(id int) {
	sh, w := e.wref(id)
	l := id & e.mask
	ev := sh.alarms[l][sh.alarmIdx[l]]
	sh.alarmIdx[l]++
	e.schedAlarm(id)
	e.countAlarm(id, ev)
	if e.cfg.Policy == predict.PolicyReactive || w.state != wWorking {
		return
	}
	w.topt = e.now - (w.workEnd - w.topt) // truncate to work done so far
	if e.cfg.Policy == predict.PolicyMigrate {
		w.flags |= fMigrating
	} else {
		w.flags |= fProactive
	}
	e.startTransfer(id, false)
}

// fire advances the clock to t and processes the selected event.
func (e *engine) fire(id int, kind uint8, t float64) {
	e.advance(t)
	switch kind {
	case kindFail:
		e.fail(id)
	case kindXfer:
		e.finishTransfer(id)
	case kindWork:
		e.startTransfer(id, false)
	case kindPred:
		e.firePred(id)
	}
	if e.nActive > 1 {
		e.lastMulti = e.now
	}
}

// finish closes the books, flushes the run's local tallies to the
// registry in a handful of atomic adds (heap-op counters are summed
// across shards first — one flush per run, not per shard or per
// event), and returns the result.
func (e *engine) finish() Result {
	total := float64(e.cfg.Workers) * e.cfg.Duration
	e.res.Efficiency = e.res.CommittedWork / total
	if e.xferCount > 0 {
		e.res.MeanTransferSec = e.xferSum / float64(e.xferCount)
	}
	e.tr.SpanAt(e.pid, 0, "run", 0, e.cfg.Duration,
		obs.AttrInt("workers", int64(e.cfg.Workers)),
		obs.AttrStr("stagger", e.cfg.Stagger.String()),
		obs.AttrFloat("efficiency", e.res.Efficiency),
		obs.AttrInt("commits", int64(e.res.Commits)),
		obs.AttrInt("failures", int64(e.res.Failures)))
	hops := e.tourney.ops
	for s := range e.shards {
		sh := &e.shards[s]
		hops += sh.failH.ops + sh.predH.ops
	}
	metrics.runs.Inc()
	metrics.heapOps.Add(hops)
	metrics.fallbacks.Add(uint64(e.res.ScheduleFallbacks))
	metrics.svcResets.Add(uint64(e.svcClamps))
	metrics.linkPeak.SetMax(int64(e.res.MaxConcurrent))
	if e.pred != nil {
		predict.Metrics.Fired.Add(uint64(e.res.Predictions))
		predict.Metrics.Hits.Add(uint64(e.res.PredHits))
		predict.Metrics.False.Add(uint64(e.res.PredFalse))
		predict.Metrics.Missed.Add(uint64(e.res.PredMissed))
		predict.Metrics.ProactiveCheckpoints.Add(uint64(e.res.ProactiveCheckpoints))
		predict.Metrics.Migrations.Add(uint64(e.res.Migrations))
	}
	return e.res
}

// rate is the per-transfer processor-sharing rate in MB/s.
func (e *engine) rate() float64 { return e.rateNow }

// setRate refreshes the cached rate; callers invoke it after every
// nActive change so the hot paths divide by it without recomputing.
// The expression matches LinkMBps / max(1, nActive) bit for bit.
func (e *engine) setRate() {
	if e.nActive > 1 {
		e.rateNow = e.cfg.LinkMBps / float64(e.nActive)
	} else {
		e.rateNow = e.cfg.LinkMBps
	}
}

// advance moves the clock to t, accruing service at the rate that has
// been in effect since the last event.
func (e *engine) advance(t float64) {
	if e.nActive > 0 {
		e.svc += (t - e.svcAt) * e.rateNow
	}
	e.svcAt = t
	e.now = t
}

// intervalAt serves the next work interval for a worker whose
// availability period has reached the given age, threading the
// worker's interval hint so consecutive commits skip the binary
// search.
func (e *engine) intervalAt(sh *shard, l int, age float64) float64 {
	T := e.solo
	switch {
	case e.fastOK:
		T = e.fastT
	case e.sched != nil:
		t, idx, extended, ok := e.sched.LookupFrom(age, int(sh.hints[l]))
		sh.hints[l] = int32(idx)
		switch {
		case !ok:
			e.res.ScheduleFallbacks++
		case extended && !e.memoryless:
			T = t
			e.res.ScheduleFallbacks++
		default:
			T = t
		}
	default:
		e.res.ScheduleFallbacks++
	}
	if e.cfg.Stagger == StaggerJitter {
		T *= 1 + 0.3*e.rng.Float64()
	}
	return T
}

// startTransfer either begins the transfer or, under the token policy
// with a busy link, parks the worker in the FIFO queue. Either way the
// worker stops working, so its interval entry (if any) leaves the
// wheel. Neither path touches the fail or alarm calendars, so the
// tournament is not consulted.
func (e *engine) startTransfer(id int, isRecovery bool) {
	_, w := e.wref(id)
	e.wheel.remove(id)
	if e.cfg.Stagger == StaggerToken && e.nActive > 0 {
		w.state = wQueued
		w.queuedSince = e.now
		w.queueSeq++
		if isRecovery {
			w.flags |= fWantRecovery
		} else {
			w.flags &^= fWantRecovery
		}
		e.queue = append(e.queue, queueEntry{id, int(w.queueSeq)})
		return
	}
	if isRecovery {
		w.state = wRecovering
	} else {
		w.state = wTransferring
	}
	w.started = e.now
	w.target = e.svc + e.mb
	w.xferGen++
	e.nActive++
	e.setRate()
	if e.nActive > e.res.MaxConcurrent {
		e.res.MaxConcurrent = e.nActive
	}
	if e.nActive > 1 {
		e.lastMulti = e.now
	}
	e.ringPush(ringEntry{target: w.target, id: int32(id), gen: w.xferGen})
}

// dequeue hands the free token to the longest-waiting queued worker
// (StaggerToken only). Entries whose worker failed while queued are
// stale (the failure re-enqueued it with a new sequence number) and
// are skipped.
func (e *engine) dequeue() {
	if e.cfg.Stagger != StaggerToken {
		return
	}
	for e.qHead < len(e.queue) {
		qe := e.queue[e.qHead]
		e.qHead++
		_, w := e.wref(qe.id)
		if w.state != wQueued || int(w.queueSeq) != qe.seq {
			continue
		}
		e.res.QueueWaitSec += e.now - w.queuedSince
		e.startTransfer(qe.id, w.flags&fWantRecovery != 0)
		return
	}
	e.queue = e.queue[:0]
	e.qHead = 0
}

func (e *engine) finishTransfer(id int) {
	sh, w := e.wref(id)
	l := id & e.mask
	if e.tr != nil {
		e.traceTransfer(id, w, "done")
	}
	e.res.MBMoved += e.mb
	e.xferSum += e.now - w.started
	e.xferCount++
	if e.lastMulti >= w.started {
		e.res.Collisions++
	}
	if w.state == wTransferring {
		e.res.CommittedWork += w.topt
		e.res.Commits++
	}
	e.ringPop(id)
	e.nActive--
	e.setRate()
	if w.flags&fMigrating != 0 {
		// Migration landed: the process leaves the doomed machine for a
		// fresh one. The abandoned period's pending alarms die with it
		// (no eviction is experienced there), the destination draws its
		// own lifetime and alarms, and the process recovers there.
		w.flags &^= fMigrating
		e.res.Migrations++
		e.res.MigrationMB += e.mb
		w.availStart = e.now
		w.failAt = e.now + e.cfg.Avail.Rand(e.rng)
		sh.failH.Update(l, w.failAt, kindFail)
		e.updateCand(id >> e.shift)
		e.newPeriod(id)
		e.dequeue()
		e.startTransfer(id, true)
		return
	}
	if w.flags&fProactive != 0 {
		w.flags &^= fProactive
		e.res.ProactiveCheckpoints++
	}
	// Recovery or checkpoint done: begin the next work interval.
	age := e.now - w.availStart
	w.topt = e.intervalAt(sh, l, age)
	w.state = wWorking
	w.workEnd = e.now + w.topt
	e.wheel.insert(id, w.workEnd)
	e.dequeue()
}

func (e *engine) fail(id int) {
	sh, w := e.wref(id)
	l := id & e.mask
	e.res.Failures++
	if e.tr != nil {
		if w.state == wTransferring || w.state == wRecovering {
			e.traceTransfer(id, w, "interrupted")
		}
		e.tr.EventAt(e.pid, uint64(id)+1, "fail", e.now,
			obs.AttrFloat("age", e.now-w.availStart))
	}
	heldLink := false
	switch w.state {
	case wWorking:
		e.res.LostWork += w.topt - (w.workEnd - e.now)
		e.wheel.remove(id)
	case wTransferring:
		e.res.LostWork += w.topt
		e.res.MBMoved += e.movedMB(w)
		heldLink = true
	case wRecovering:
		e.res.MBMoved += e.movedMB(w)
		heldLink = true
	case wQueued:
		e.res.QueueWaitSec += e.now - w.queuedSince
		if w.flags&fWantRecovery == 0 {
			e.res.LostWork += w.topt // interval done but never stored
		}
	}
	if heldLink {
		// The ring entry goes stale: the restart below either bumps the
		// generation (immediate new transfer) or parks the worker in a
		// non-link state, and ringHead skips it either way.
		e.nActive--
		e.setRate()
	}
	// Settle the predictor's books for the period that just ended:
	// alarms scheduled at the eviction instant itself still fired, and
	// the eviction is a hit or a miss depending on whether a true alarm
	// preceded it.
	if e.pred != nil {
		for ; int(sh.alarmIdx[l]) < len(sh.alarms[l]); sh.alarmIdx[l]++ {
			e.countAlarm(id, sh.alarms[l][sh.alarmIdx[l]])
		}
		if w.flags&fPredTrue != 0 {
			e.res.PredHits++
			if e.tr != nil {
				e.tr.EventAt(e.pid, e.predTid(id), "predict.hit", e.now)
			}
		} else {
			e.res.PredMissed++
			if e.tr != nil {
				e.tr.EventAt(e.pid, e.predTid(id), "predict.miss", e.now)
			}
		}
	}
	w.flags &^= fMigrating | fProactive
	// The machine comes back immediately in a fresh availability
	// period (busy gaps affect neither the link nor efficiency-of-
	// occupied-time accounting) and the process restarts with a
	// recovery.
	w.state = wWorking // neutral until startTransfer assigns one
	w.availStart = e.now
	w.failAt = e.now + e.cfg.Avail.Rand(e.rng)
	sh.failH.Update(l, w.failAt, kindFail)
	e.updateCand(id >> e.shift)
	e.newPeriod(id)
	if heldLink {
		// The token is free now; waiting workers go first, and the
		// failed process joins the back of the queue.
		e.dequeue()
	}
	e.startTransfer(id, true)
}
