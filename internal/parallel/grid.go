package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/predict"
	"github.com/cycleharvest/ckptsched/internal/stats"
)

// GridModel names one availability-model column of a sweep grid.
type GridModel struct {
	Name string
	Dist dist.Distribution
}

// GridPolicy names one predictor/policy column of a sweep grid: a
// predictor quality paired with the policy that acts on it. The zero
// value (disabled predictor, reactive policy) is the paper's baseline.
type GridPolicy struct {
	Name    string
	Policy  predict.Policy
	Predict predict.Config
}

// GridConfig parameterizes RunGrid: the cross product of availability
// models, stagger policies and independent seeds, evaluated against
// one shared base configuration.
type GridConfig struct {
	// Base is the per-cell template; its ScheduleDist, Stagger and
	// Seed fields are overwritten per cell. Every other field — Shards
	// included — flows to every cell unchanged, so a grid sweeps one
	// engine layout across models and policies (and, per the sharding
	// contract, the Shards value cannot change any cell's numbers).
	Base Config
	// Models are the schedule models to compare (Avail in Base stays
	// the true law; each model drives only the schedules).
	Models []GridModel
	// Staggers are the coordination policies to compare.
	Staggers []StaggerPolicy
	// Policies are the predictor/policy pairs to compare. Empty means
	// one implicit reactive baseline with prediction off — the flat
	// task indexing (and therefore every per-replicate seed) is then
	// exactly what it was before the axis existed.
	Policies []GridPolicy
	// Seeds is the number of independent replicates per (model,
	// stagger) cell; default 1. Replicate seeds derive from Seed via a
	// splitmix64 round per flat task index — the same recipe as
	// live.RunCampaign — so every replicate has a decorrelated RNG
	// stream that depends only on (Seed, index), never on which pool
	// worker ran it or when.
	Seeds int
	// Seed is the base seed the per-replicate streams derive from.
	Seed int64
	// MaxProcs bounds the worker pool running cells concurrently;
	// default runtime.GOMAXPROCS(0).
	MaxProcs int
}

// Cell is one (model, policy, stagger) grid cell with its per-seed
// results.
type Cell struct {
	Model string
	// Policy names the GridPolicy this cell ran under ("" when the
	// grid has no policy axis).
	Policy  string
	Stagger StaggerPolicy
	// Results is indexed by replicate (seed index).
	Results []Result
}

// Metric aggregates f over the cell's replicates into a mean and a
// 95% Student-t half-width (zero with fewer than two replicates).
func (c *Cell) Metric(f func(Result) float64) stats.CI {
	xs := make([]float64, len(c.Results))
	for i, r := range c.Results {
		xs[i] = f(r)
	}
	ci, err := stats.MeanCI(xs, 0.95)
	if err != nil {
		return stats.CI{Mean: stats.Mean(xs), Level: 0.95, N: len(xs)}
	}
	return ci
}

// Efficiency is the cell's mean efficiency with its 95% CI.
func (c *Cell) Efficiency() stats.CI {
	return c.Metric(func(r Result) float64 { return r.Efficiency })
}

// Grid is the result of RunGrid, cells ordered model-major, then
// policy, then stagger — the row order of the ckpt-parallel table.
type Grid struct {
	Cells []Cell
	Seeds int
}

// gridSeed derives the private RNG seed of flat task index idx from
// the grid seed via a splitmix64 round (the live.RunCampaign recipe),
// decorrelating replicate streams from each other and from the base
// seed's own sequence.
func gridSeed(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// RunGrid evaluates every (model, stagger, seed) cell of the grid on a
// bounded worker pool. Each model's checkpoint schedule is built once,
// sequentially, and shared read-only by all of that model's cells;
// each replicate then simulates on its own splitmix64-derived RNG
// stream and writes into its preallocated slot, so the returned grid
// is byte-identical for a fixed GridConfig at any GOMAXPROCS or
// MaxProcs setting.
func RunGrid(cfg GridConfig) (*Grid, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("parallel: grid needs at least one model")
	}
	if len(cfg.Staggers) == 0 {
		return nil, errors.New("parallel: grid needs at least one stagger policy")
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	maxProcs := cfg.MaxProcs
	if maxProcs <= 0 {
		maxProcs = runtime.GOMAXPROCS(0)
	}

	// An empty policy axis degenerates to one implicit reactive
	// baseline so the flat task indexing — and every derived seed —
	// matches the pre-axis grid exactly.
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = []GridPolicy{{}}
	}
	for _, gp := range policies {
		if err := gp.Predict.Validate(); err != nil {
			return nil, fmt.Errorf("parallel: grid policy %q: %w", gp.Name, err)
		}
	}

	// Validate once up front with the first model so a broken Base
	// surfaces as one error instead of a per-cell failure race.
	scheds := make([]*markov.Schedule, len(cfg.Models))
	for i, m := range cfg.Models {
		if m.Dist == nil {
			return nil, fmt.Errorf("parallel: grid model %q has no distribution", m.Name)
		}
		c := cfg.Base
		c.ScheduleDist = m.Dist
		if err := c.validate(); err != nil {
			return nil, err
		}
		scheds[i] = scheduleFor(c)
	}

	g := &Grid{Seeds: cfg.Seeds}
	for _, m := range cfg.Models {
		for _, gp := range policies {
			for _, pol := range cfg.Staggers {
				g.Cells = append(g.Cells, Cell{
					Model:   m.Name,
					Policy:  gp.Name,
					Stagger: pol,
					Results: make([]Result, cfg.Seeds),
				})
			}
		}
	}

	nTasks := len(g.Cells) * cfg.Seeds
	if maxProcs > nTasks {
		maxProcs = nTasks
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	for p := 0; p < maxProcs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task := int(next.Add(1)) - 1
				if task >= nTasks {
					return
				}
				ci, rep := task/cfg.Seeds, task%cfg.Seeds
				pi := (ci / len(cfg.Staggers)) % len(policies)
				mi := ci / (len(cfg.Staggers) * len(policies))
				c := cfg.Base
				c.ScheduleDist = cfg.Models[mi].Dist
				c.Stagger = g.Cells[ci].Stagger
				c.Predict = policies[pi].Predict
				c.Policy = policies[pi].Policy
				c.Seed = gridSeed(cfg.Seed, task)
				// One trace lane per flat task: pid depends only on the
				// task index, and each engine emits single-threaded, so
				// the sorted export is byte-identical at any MaxProcs.
				c.TracePid = uint64(task) + 1
				r, err := runScheduled(c, scheds[mi])
				if err != nil {
					errOnce.Do(func() { runErr = err })
					continue
				}
				g.Cells[ci].Results[rep] = r
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return g, nil
}
