package parallel

// Event kinds order simultaneous events: an eviction kills the process
// before any same-instant completion is credited (the engine's
// failure-dominates rule), and a transfer completion beats a work-interval
// completion so the link frees up before a new transfer claims it.
// Predictor alarms fire last at an instant: a coincident failure means
// the warning came too late (the alarm is settled as fired-but-unacted
// when the failure is processed), and a coincident completion settles
// the books before the alarm interrupts anything. Remaining ties break
// by worker index, matching the old engine's worker-order batch firing.
const (
	kindFail uint8 = iota
	kindXfer
	kindWork
	kindPred
)

// eventLess is the total order on events: time, then kind, then worker
// index. Both the heap engine and the linear-scan reference
// implementation select events with exactly this comparison, so the
// two stay bit-for-bit interchangeable.
func eventLess(t1 float64, k1 uint8, id1 int, t2 float64, k2 uint8, id2 int) bool {
	if t1 != t2 {
		return t1 < t2
	}
	if k1 != k2 {
		return k1 < k2
	}
	return id1 < id2
}

// eventHeap is an indexed binary min-heap over worker ids, ordered by
// (key, kind, id) via eventLess. The index (pos) gives O(log n)
// decrease-key, increase-key and remove by worker id — the operations
// a discrete-event calendar needs when a failure reschedules a
// worker's pending event or cancels its in-flight transfer.
//
// The engine runs two instances: one keyed by wall-clock time (per
// worker, the earlier of its failure and work-interval completion) and
// one keyed by cumulative processor-sharing service (per in-flight
// transfer, the service mark at which it completes — invariant under
// link-rate changes, which is what makes per-event cost O(log W)).
type eventHeap struct {
	ids  []int     // heap slot -> worker id
	pos  []int     // worker id -> heap slot, -1 if absent
	key  []float64 // worker id -> sort key (seconds or MB of service)
	kind []uint8   // worker id -> event kind
	ops  uint64    // Update/Remove mutations, flushed to obs by finish
}

func newEventHeap(n int) *eventHeap {
	h := &eventHeap{
		ids:  make([]int, 0, n),
		pos:  make([]int, n),
		key:  make([]float64, n),
		kind: make([]uint8, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *eventHeap) Len() int { return len(h.ids) }

func (h *eventHeap) Contains(id int) bool { return h.pos[id] >= 0 }

// Min returns the earliest event without removing it.
func (h *eventHeap) Min() (id int, key float64, kind uint8, ok bool) {
	if len(h.ids) == 0 {
		return 0, 0, 0, false
	}
	id = h.ids[0]
	return id, h.key[id], h.kind[id], true
}

// Update inserts id with the given key, or repositions it if already
// present (covers both decrease-key and increase-key).
func (h *eventHeap) Update(id int, key float64, kind uint8) {
	h.ops++
	h.key[id] = key
	h.kind[id] = kind
	if i := h.pos[id]; i >= 0 {
		if !h.up(i) {
			h.down(i)
		}
		return
	}
	h.ids = append(h.ids, id)
	h.pos[id] = len(h.ids) - 1
	h.up(len(h.ids) - 1)
}

// Remove deletes id from the heap; absent ids are a no-op.
func (h *eventHeap) Remove(id int) {
	i := h.pos[id]
	if i < 0 {
		return
	}
	h.ops++
	last := len(h.ids) - 1
	h.swap(i, last)
	h.ids = h.ids[:last]
	h.pos[id] = -1
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.ids[i], h.ids[j]
	return eventLess(h.key[a], h.kind[a], a, h.key[b], h.kind[b], b)
}

func (h *eventHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = i
	h.pos[h.ids[j]] = j
}

// up sifts slot i toward the root, reporting whether it moved.
func (h *eventHeap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts slot i toward the leaves.
func (h *eventHeap) down(i int) {
	n := len(h.ids)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			return
		}
		h.swap(i, child)
		i = child
	}
}
