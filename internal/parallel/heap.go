package parallel

// Event kinds order simultaneous events: an eviction kills the process
// before any same-instant completion is credited (the engine's
// failure-dominates rule), and a transfer completion beats a work-interval
// completion so the link frees up before a new transfer claims it.
// Predictor alarms fire last at an instant: a coincident failure means
// the warning came too late (the alarm is settled as fired-but-unacted
// when the failure is processed), and a coincident completion settles
// the books before the alarm interrupts anything. Remaining ties break
// by worker index, matching the old engine's worker-order batch firing.
const (
	kindFail uint8 = iota
	kindXfer
	kindWork
	kindPred
)

// eventLess is the total order on events: time, then kind, then worker
// index. The sharded engine and the linear-scan reference
// implementation select events with exactly this comparison, so the
// two stay bit-for-bit interchangeable.
func eventLess(t1 float64, k1 uint8, id1 int, t2 float64, k2 uint8, id2 int) bool {
	if t1 != t2 {
		return t1 < t2
	}
	if k1 != k2 {
		return k1 < k2
	}
	return id1 < id2
}

// heapNode is one calendar entry, packed so a sift touches a single
// 16-byte record per level instead of three parallel slices: four
// sibling nodes share one cache line, which is what makes the 4-ary
// layout pay — the widest node fan-in whose sibling scan still costs
// one line fill.
type heapNode struct {
	key  float64
	id   int32
	kind uint8
	_    [3]byte
}

// nodeLess applies eventLess to two packed nodes.
func nodeLess(a, b heapNode) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.id < b.id
}

// eventHeap is an indexed 4-ary min-heap over worker ids, ordered by
// (key, kind, id) via eventLess. The index (pos) gives O(log n)
// decrease-key, increase-key and remove by worker id — the operations
// a discrete-event calendar needs when a failure reschedules a
// worker's pending event or cancels its in-flight transfer.
//
// The sharded engine runs one instance per shard, keyed by wall-clock
// time (per worker, the earliest of its failure, work-interval
// completion and pending predictor alarm), plus one tournament
// instance over the shards themselves, keyed by each shard's root.
// Ids are shard-local in the former and shard indices in the latter;
// because shards cover contiguous ascending worker ranges, both id
// spaces break ties in global worker order.
type eventHeap struct {
	nodes []heapNode
	pos   []int32 // id -> slot, -1 if absent
	ops   uint64  // Update/Remove mutations, flushed to obs once per run
}

// init readies a zero eventHeap for ids in [0, n).
func (h *eventHeap) init(n int) {
	h.nodes = make([]heapNode, 0, n)
	h.pos = make([]int32, n)
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func newEventHeap(n int) *eventHeap {
	h := &eventHeap{}
	h.init(n)
	return h
}

func (h *eventHeap) Len() int { return len(h.nodes) }

func (h *eventHeap) Contains(id int) bool { return h.pos[id] >= 0 }

// Min returns the earliest event without removing it.
func (h *eventHeap) Min() (id int, key float64, kind uint8, ok bool) {
	if len(h.nodes) == 0 {
		return 0, 0, 0, false
	}
	n := h.nodes[0]
	return int(n.id), n.key, n.kind, true
}

// Update inserts id with the given key, or repositions it if already
// present (covers both decrease-key and increase-key).
func (h *eventHeap) Update(id int, key float64, kind uint8) {
	h.ops++
	if i := h.pos[id]; i >= 0 {
		h.nodes[i].key = key
		h.nodes[i].kind = kind
		if !h.up(int(i)) {
			h.down(int(i))
		}
		return
	}
	h.nodes = append(h.nodes, heapNode{key: key, id: int32(id), kind: kind})
	i := len(h.nodes) - 1
	h.pos[id] = int32(i)
	h.up(i)
}

// Remove deletes id from the heap; absent ids are a no-op.
func (h *eventHeap) Remove(id int) {
	i := int(h.pos[id])
	if i < 0 {
		return
	}
	h.ops++
	last := len(h.nodes) - 1
	if i != last {
		h.nodes[i] = h.nodes[last]
		h.pos[h.nodes[i].id] = int32(i)
	}
	h.nodes = h.nodes[:last]
	h.pos[id] = -1
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

// up sifts slot i toward the root with a hole (the displaced node is
// written once at its final slot), reporting whether it moved.
func (h *eventHeap) up(i int) bool {
	n := h.nodes[i]
	moved := false
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(n, h.nodes[p]) {
			break
		}
		h.nodes[i] = h.nodes[p]
		h.pos[h.nodes[i].id] = int32(i)
		i = p
		moved = true
	}
	if moved {
		h.nodes[i] = n
		h.pos[n.id] = int32(i)
	}
	return moved
}

// down sifts slot i toward the leaves, scanning the (at most) four
// children — one cache line of siblings — per level.
func (h *eventHeap) down(i int) {
	n := h.nodes[i]
	size := len(h.nodes)
	moved := false
	for {
		c := i<<2 + 1
		if c >= size {
			break
		}
		end := c + 4
		if end > size {
			end = size
		}
		best := c
		for j := c + 1; j < end; j++ {
			if nodeLess(h.nodes[j], h.nodes[best]) {
				best = j
			}
		}
		if !nodeLess(h.nodes[best], n) {
			break
		}
		h.nodes[i] = h.nodes[best]
		h.pos[h.nodes[i].id] = int32(i)
		i = best
		moved = true
	}
	if moved {
		h.nodes[i] = n
		h.pos[n.id] = int32(i)
	}
}
