package parallel

import (
	"math"
	"math/rand"
	"testing"
)

// popAll drains the heap via Min+Remove, returning ids in order.
func popAll(h *eventHeap) []int {
	var out []int
	for {
		id, _, _, ok := h.Min()
		if !ok {
			return out
		}
		h.Remove(id)
		out = append(out, id)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := newEventHeap(5)
	h.Update(0, 30, kindWork)
	h.Update(1, 10, kindFail)
	h.Update(2, 20, kindXfer)
	h.Update(3, 5, kindWork)
	h.Update(4, 15, kindFail)
	want := []int{3, 1, 4, 2, 0}
	got := popAll(h)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestHeapDecreaseKey(t *testing.T) {
	h := newEventHeap(4)
	for i := range 4 {
		h.Update(i, float64(10+i), kindFail)
	}
	// Decrease the last worker's key below everyone else.
	h.Update(3, 1, kindFail)
	if id, key, _, _ := h.Min(); id != 3 || key != 1 {
		t.Fatalf("after decrease-key Min = (%d, %g), want (3, 1)", id, key)
	}
	// Increase it back past the rest.
	h.Update(3, 99, kindFail)
	got := popAll(h)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after increase-key pop order = %v, want %v", got, want)
		}
	}
}

func TestHeapRemove(t *testing.T) {
	h := newEventHeap(6)
	for i := range 6 {
		h.Update(i, float64(i), kindFail)
	}
	h.Remove(0) // root
	h.Remove(3) // middle
	h.Remove(5) // leaf
	h.Remove(5) // absent: no-op
	if h.Contains(0) || h.Contains(3) || h.Contains(5) {
		t.Fatal("removed ids still present")
	}
	got := popAll(h)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("pop = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop = %v, want %v", got, want)
		}
	}
}

// TestHeapSimultaneousEvents pins the failure-dominates tie-break: at
// one instant, failures fire before transfer completions, transfer
// completions before work completions, and same-kind ties fire in
// worker-index order.
func TestHeapSimultaneousEvents(t *testing.T) {
	h := newEventHeap(6)
	h.Update(0, 42, kindWork)
	h.Update(1, 42, kindFail)
	h.Update(2, 42, kindXfer)
	h.Update(3, 42, kindFail)
	h.Update(4, 42, kindXfer)
	h.Update(5, 42, kindWork)
	want := []int{1, 3, 2, 4, 0, 5}
	got := popAll(h)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("simultaneous-event order = %v, want %v", got, want)
		}
	}
}

// TestHeapRandomOps drives the heap with random update/remove
// operations against a naive model and checks Min agrees after every
// step — the invariant the DES engine relies on.
func TestHeapRandomOps(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(17))
	h := newEventHeap(n)
	key := make([]float64, n)
	kind := make([]uint8, n)
	present := make([]bool, n)

	modelMin := func() (int, bool) {
		best := -1
		for i := range n {
			if !present[i] {
				continue
			}
			if best < 0 || eventLess(key[i], kind[i], i, key[best], kind[best], best) {
				best = i
			}
		}
		return best, best >= 0
	}

	for step := range 5000 {
		id := rng.Intn(n)
		switch rng.Intn(4) {
		case 0: // remove
			h.Remove(id)
			present[id] = false
		default: // insert or rekey (decrease and increase both exercised)
			k := math.Floor(rng.Float64()*50) / 2 // coarse grid to force ties
			kd := uint8(rng.Intn(3))
			h.Update(id, k, kd)
			key[id], kind[id], present[id] = k, kd, true
		}
		wantID, wantOK := modelMin()
		gotID, gotKey, gotKind, gotOK := h.Min()
		if gotOK != wantOK {
			t.Fatalf("step %d: Min ok = %v, want %v", step, gotOK, wantOK)
		}
		if !wantOK {
			continue
		}
		if gotID != wantID || gotKey != key[wantID] || gotKind != kind[wantID] {
			t.Fatalf("step %d: Min = (%d, %g, %d), want (%d, %g, %d)",
				step, gotID, gotKey, gotKind, wantID, key[wantID], kind[wantID])
		}
		if h.Len() != countTrue(present) {
			t.Fatalf("step %d: Len = %d, want %d", step, h.Len(), countTrue(present))
		}
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
