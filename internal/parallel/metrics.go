package parallel

import "github.com/cycleharvest/ckptsched/internal/obs"

// metrics holds the package's observability hooks. All fields are
// nil-safe obs metrics, flushed once per simulation in engine.finish —
// the event loop itself only bumps plain engine-local integers, so the
// per-event cost is unchanged whether instrumentation is on or off
// (the gated BenchmarkParallelRun budget is ≤2%).
var metrics struct {
	// runs counts completed simulations (heap and reference engines).
	runs *obs.Counter
	// heapOps counts indexed-heap Update/Remove mutations across both
	// calendars — the per-event work the O(log W) engine claim rests on.
	heapOps *obs.Counter
	// fallbacks mirrors Result.ScheduleFallbacks: intervals not served
	// from the planned schedule.
	fallbacks *obs.Counter
	// svcResets counts virtual-service clock clamps: transfer
	// completions whose service-arithmetic timestamp landed a last-ulp
	// before the current clock and were pinned to now.
	svcResets *obs.Counter
	// linkPeak is the high-water mark of concurrent transfers on the
	// shared link across all runs.
	linkPeak *obs.Gauge
}

// Instrument points the package's simulation metrics at r (DESIGN.md
// §11 lists the names). Call it before any simulations start —
// typically from main — and do not call it concurrently with Run or
// RunGrid. Instrument(nil) turns instrumentation off.
func Instrument(r *obs.Registry) {
	metrics.runs = r.Counter("parallel_runs_total",
		"Completed parallel-job simulations.")
	metrics.heapOps = r.Counter("parallel_heap_ops_total",
		"Event-calendar heap mutations (Update and Remove) across both calendars.")
	metrics.fallbacks = r.Counter("parallel_schedule_fallbacks_total",
		"Work intervals not served from the planned schedule (degenerate model or past horizon).")
	metrics.svcResets = r.Counter("parallel_virtual_service_resets_total",
		"Transfer completion times clamped to the current clock (last-ulp service arithmetic).")
	metrics.linkPeak = r.Gauge("parallel_link_concurrency_peak",
		"Peak number of simultaneous transfers sharing the link across all runs.")
}
