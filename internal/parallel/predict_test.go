package parallel

import (
	"reflect"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/predict"
)

func predictBase(seed int64) Config {
	return Config{
		Workers:      16,
		Avail:        stable(),
		ScheduleDist: stable(),
		LinkMBps:     5,
		CheckpointMB: 500,
		Duration:     6 * 3600,
		Seed:         seed,
	}
}

// Setting a policy with the predictor disabled must leave every Result
// field bit-identical to the baseline: no predictor stream exists, so
// no draw order changes.
func TestParallelDisabledPredictorChangesNothing(t *testing.T) {
	base, err := Run(predictBase(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []predict.Policy{predict.PolicyProactive, predict.PolicyMigrate} {
		cfg := predictBase(3)
		cfg.Policy = policy
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("policy %v with disabled predictor diverged:\nbase %+v\ngot  %+v", policy, base, got)
		}
	}
}

// The heap engine and the linear-scan reference must stay bit-for-bit
// interchangeable with the predictor calendar in play.
func TestPredictEngineMatchesReference(t *testing.T) {
	for _, policy := range []predict.Policy{predict.PolicyReactive, predict.PolicyProactive, predict.PolicyMigrate} {
		for _, stagger := range []StaggerPolicy{StaggerNone, StaggerToken, StaggerJitter} {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := predictBase(seed)
				cfg.Stagger = stagger
				cfg.Policy = policy
				cfg.Predict = predict.Config{Precision: 0.6, Recall: 0.8, LeadSec: 240}
				sched := scheduleFor(cfg)
				got, err := runScheduled(cfg, sched)
				if err != nil {
					t.Fatal(err)
				}
				want, err := runReference(cfg, sched)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%v/%s seed=%d: heap engine diverged from reference:\nheap: %+v\nref:  %+v",
						policy, stagger, seed, got, want)
				}
			}
		}
	}
}

func TestParallelReactiveCountsButDoesNotAct(t *testing.T) {
	base, _ := Run(predictBase(5))
	cfg := predictBase(5)
	cfg.Predict = predict.Config{Precision: 0.5, Recall: 0.8, LeadSec: 300}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reactive alarms never enter the event calendar, so every physics
	// field — not just the headline metrics — stays bit-identical.
	scrubbed := got
	scrubbed.Predictions, scrubbed.PredHits, scrubbed.PredFalse, scrubbed.PredMissed = 0, 0, 0, 0
	if !reflect.DeepEqual(base, scrubbed) {
		t.Errorf("reactive policy changed the physics: base %+v got %+v", base, got)
	}
	if got.Predictions == 0 || got.PredHits == 0 || got.PredFalse == 0 {
		t.Errorf("expected fired/hit/false counts, got %+v", got)
	}
	if got.PredHits+got.PredMissed != got.Failures {
		t.Errorf("hits %d + missed %d != failures %d", got.PredHits, got.PredMissed, got.Failures)
	}
	if got.ProactiveCheckpoints != 0 || got.Migrations != 0 {
		t.Errorf("reactive policy acted: %+v", got)
	}
}

func TestParallelPerfectProactiveDominatesReactive(t *testing.T) {
	base, _ := Run(predictBase(7))
	cfg := predictBase(7)
	cfg.Predict = predict.Perfect(300)
	cfg.Policy = predict.PolicyProactive
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.LostWork >= base.LostWork {
		t.Errorf("proactive lost %g >= reactive lost %g", got.LostWork, base.LostWork)
	}
	if got.ProactiveCheckpoints == 0 {
		t.Error("no proactive checkpoints completed")
	}
	if got.PredMissed != 0 || got.PredFalse != 0 {
		t.Errorf("perfect predictor missed %d / false %d", got.PredMissed, got.PredFalse)
	}
}

func TestParallelMigrateAccountsBytes(t *testing.T) {
	cfg := predictBase(9)
	cfg.Predict = predict.Perfect(300)
	cfg.Policy = predict.PolicyMigrate
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Migrations == 0 {
		t.Fatal("no migrations completed")
	}
	if got.MigrationMB != float64(got.Migrations)*cfg.CheckpointMB {
		t.Errorf("migration MB %g, want %g", got.MigrationMB, float64(got.Migrations)*cfg.CheckpointMB)
	}
	if got.MigrationMB > got.MBMoved {
		t.Errorf("migration MB %g exceeds total moved %g", got.MigrationMB, got.MBMoved)
	}
	// A migrated-away period's eviction is never experienced, so with a
	// perfect predictor most failures are dodged entirely.
	base, _ := Run(predictBase(9))
	if got.Failures >= base.Failures {
		t.Errorf("migrate saw %d failures >= baseline %d", got.Failures, base.Failures)
	}
}

// gridPolicies is the axis the predictor sweep tests share.
func gridPolicies() []GridPolicy {
	return []GridPolicy{
		{Name: "reactive"},
		{Name: "proactive-perfect", Policy: predict.PolicyProactive, Predict: predict.Perfect(300)},
		{Name: "migrate-good", Policy: predict.PolicyMigrate,
			Predict: predict.Config{Precision: 0.85, Recall: 0.8, LeadSec: 240}},
	}
}

// The policy axis must not disturb the flat task indexing: a grid with
// an explicit single reactive entry equals the no-axis grid cell for
// cell, and per-task seeds follow the documented layout.
func TestRunGridPolicyAxisIndexing(t *testing.T) {
	base := GridConfig{
		Base:     predictBase(0),
		Models:   []GridModel{{Name: "exp", Dist: stable()}},
		Staggers: []StaggerPolicy{StaggerNone, StaggerToken},
		Seeds:    2,
		Seed:     42,
	}
	plain, err := RunGrid(base)
	if err != nil {
		t.Fatal(err)
	}
	withAxis := base
	withAxis.Policies = []GridPolicy{{Name: "baseline"}}
	got, err := RunGrid(withAxis)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(plain.Cells) {
		t.Fatalf("cell count %d != %d", len(got.Cells), len(plain.Cells))
	}
	for i := range got.Cells {
		if got.Cells[i].Policy != "baseline" {
			t.Errorf("cell %d policy %q", i, got.Cells[i].Policy)
		}
		if !reflect.DeepEqual(got.Cells[i].Results, plain.Cells[i].Results) {
			t.Errorf("cell %d diverged with explicit baseline axis", i)
		}
	}
}

func TestRunGridPolicyAxisDeterminism(t *testing.T) {
	cfg := GridConfig{
		Base: predictBase(0),
		Models: []GridModel{
			{Name: "exp", Dist: stable()},
		},
		Staggers: []StaggerPolicy{StaggerNone, StaggerToken},
		Policies: gridPolicies(),
		Seeds:    3,
		Seed:     99,
	}
	cfg.MaxProcs = 1
	serial, err := RunGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxProcs = 8
	wide, err := RunGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Error("policy-axis grid not byte-identical across MaxProcs")
	}
	// Row order: model-major, then policy, then stagger.
	wantRows := []struct {
		policy  string
		stagger StaggerPolicy
	}{
		{"reactive", StaggerNone}, {"reactive", StaggerToken},
		{"proactive-perfect", StaggerNone}, {"proactive-perfect", StaggerToken},
		{"migrate-good", StaggerNone}, {"migrate-good", StaggerToken},
	}
	if len(serial.Cells) != len(wantRows) {
		t.Fatalf("got %d cells, want %d", len(serial.Cells), len(wantRows))
	}
	for i, w := range wantRows {
		c := serial.Cells[i]
		if c.Policy != w.policy || c.Stagger != w.stagger {
			t.Errorf("cell %d = (%q, %v), want (%q, %v)", i, c.Policy, c.Stagger, w.policy, w.stagger)
		}
	}
	// The reactive rows see alarms fire (disabled predictor has none)…
	for _, r := range serial.Cells[2].Results {
		if r.Predictions == 0 || r.ProactiveCheckpoints == 0 {
			t.Errorf("proactive-perfect cell inert: %+v", r)
		}
	}
	for _, r := range serial.Cells[4].Results {
		if r.Migrations == 0 {
			t.Errorf("migrate cell never migrated: %+v", r)
		}
	}
}

func TestRunGridRejectsInvalidPolicy(t *testing.T) {
	cfg := GridConfig{
		Base:     predictBase(0),
		Models:   []GridModel{{Name: "exp", Dist: stable()}},
		Staggers: []StaggerPolicy{StaggerNone},
		Policies: []GridPolicy{{Name: "bad", Predict: predict.Config{Precision: 1.5, Recall: 0.5}}},
	}
	if _, err := RunGrid(cfg); err == nil {
		t.Error("invalid grid policy accepted")
	}
}
