package parallel

import (
	"math"

	"github.com/cycleharvest/ckptsched/internal/markov"
)

// runReference is the O(Workers)-per-event twin of Run, retained as
// the oracle for the property tests: it shares the engine's event
// handlers and float arithmetic but selects each next event by brute
// force — a linear scan over every worker's state for the wall-clock
// candidate and over every ring entry for the transfer candidate —
// never consulting the sub-heaps, the tournament or the ring-head
// cursor's skip logic. A bookkeeping bug in the sharded calendar (a
// missed decrease-key, a stale tournament root, a mispopped ring
// entry, a broken tie-break) therefore shows up as a Result divergence
// between Run and runReference on the same seed, while both engines
// stay bit-for-bit identical when the calendar is correct.
//
// Transfer candidates are compared in service space — (target, ring
// position), the FIFO discipline — and only the winner is converted to
// wall-clock time, mirroring the sharded engine so the conversion's
// rounding cannot reorder events between the two. The scan takes the
// minimum completion mark over every live entry rather than trusting
// the ring's FIFO invariant (marks monotone in start order), so the
// invariant itself is under test.
func runReference(cfg Config, sched *markov.Schedule) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	e := newEngine(cfg, sched)
	for {
		// Wall-clock candidates: per worker, the earliest of its
		// failure, (when working) its interval completion and (when
		// alarms are in the calendar) its next predictor alarm — the
		// retime rule, with failure winning exact ties.
		id, t, kind := -1, math.Inf(1), kindFail
		for s := range e.shards {
			sh := &e.shards[s]
			for l := range sh.ws {
				w := &sh.ws[l]
				gid := sh.base + l
				ct, ck := w.failAt, kindFail
				if w.state == wWorking && w.workEnd < w.failAt {
					ct, ck = w.workEnd, kindWork
				}
				if e.predInCal {
					if ai := int(sh.alarmIdx[l]); ai < len(sh.alarms[l]) {
						if at := w.availStart + sh.alarms[l][ai].At; at < ct {
							ct, ck = at, kindPred
						}
					}
				}
				if id < 0 || eventLess(ct, ck, gid, t, kind, id) {
					id, t, kind = gid, ct, ck
				}
			}
		}
		if id < 0 {
			break
		}
		// In-flight transfer with the smallest completion service mark,
		// earliest start winning exact ties.
		best, bTarget := -1, 0.0
		for i := e.rHead; i < len(e.ring); i++ {
			re := e.ring[i]
			_, w := e.wref(int(re.id))
			if w.xferGen != re.gen || (w.state != wTransferring && w.state != wRecovering) {
				continue // aborted transfer: stale entry
			}
			if best < 0 || re.target < bTarget {
				best, bTarget = i, re.target
			}
		}
		if best >= 0 {
			// Service-coordinate comparison, mirroring the sharded
			// engine's selection arithmetic exactly.
			xid := int(e.ring[best].id)
			take := false
			if bTarget <= e.svc {
				take = eventLess(e.now, kindXfer, xid, t, kind, id)
			} else if svcT := e.svc + (t-e.svcAt)*e.rateNow; bTarget != svcT {
				take = bTarget < svcT
			} else {
				take = kindXfer < kind
			}
			if take {
				xt := e.svcAt + (bTarget-e.svc)/e.rateNow
				if xt < e.now {
					xt = e.now
				}
				id, t, kind = xid, xt, kindXfer
			}
		}
		if t >= e.cfg.Duration {
			break
		}
		e.fire(id, kind, t)
	}
	return e.finish(), nil
}
