package parallel

import (
	"math"

	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// runReference is the O(Workers)-per-event twin of Run, retained as
// the oracle for the property tests: it shares the engine's event
// handlers and float arithmetic but selects each next event by linear
// scan over the worker array, never consulting the event heaps. A
// bookkeeping bug in the indexed heaps (a missed decrease-key, a stale
// entry after Remove, a broken tie-break) therefore shows up as a
// Result divergence between Run and runReference on the same seed,
// while both engines stay bit-for-bit identical when the heaps are
// correct.
//
// Transfer candidates are compared in service space — (target, id),
// exactly the xferEv key order — and only the winner is converted to
// wall-clock time, mirroring the heap engine so the conversion's
// rounding cannot reorder events between the two.
func runReference(cfg Config, sched *markov.Schedule) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	e := newEngine(cfg, sched)
	for {
		// Wall-clock candidates: per worker, the earlier of its failure
		// and (when working) its interval completion, failure winning
		// exact ties — the retime rule.
		id, t, kind := -1, math.Inf(1), kindFail
		for i := range e.ws {
			w := &e.ws[i]
			ct, ck := w.failAt, kindFail
			if w.state == wWorking && w.workEnd < w.failAt {
				ct, ck = w.workEnd, kindWork
			}
			if id < 0 || eventLess(ct, ck, i, t, kind, id) {
				id, t, kind = i, ct, ck
			}
		}
		if id < 0 {
			break
		}
		// Pending predictor alarms, compared by wall-clock firing time —
		// the predEv key order. Reactive alarms stay out of the calendar
		// (settled at failure time), mirroring schedAlarm.
		if e.pred != nil && e.cfg.Policy != predict.PolicyReactive {
			for i := range e.ws {
				w := &e.ws[i]
				if w.alarmIdx >= len(w.alarms) {
					continue
				}
				at := w.availStart + w.alarms[w.alarmIdx].At
				if eventLess(at, kindPred, i, t, kind, id) {
					id, t, kind = i, at, kindPred
				}
			}
		}
		// In-flight transfer with the smallest completion service mark.
		xid, xTarget := -1, 0.0
		for i := range e.ws {
			w := &e.ws[i]
			if w.state != wTransferring && w.state != wRecovering {
				continue
			}
			if xid < 0 || w.target < xTarget {
				xid, xTarget = i, w.target
			}
		}
		if xid >= 0 {
			xt := e.svcAt + (xTarget-e.svc)/e.rate()
			if xt < e.now {
				xt = e.now
			}
			if eventLess(xt, kindXfer, xid, t, kind, id) {
				id, t, kind = xid, xt, kindXfer
			}
		}
		if t >= e.cfg.Duration {
			break
		}
		e.fire(id, kind, t)
	}
	return e.finish(), nil
}
