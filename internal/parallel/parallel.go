// Package parallel implements the paper's stated future work (§5.2):
// a model of parallel workloads that captures the interaction between
// colliding checkpoints and checkpoint length.
//
// A parallel job runs one process per machine; all processes share a
// single network path to the checkpoint manager. The link is modeled
// as processor-sharing: k concurrent transfers each progress at 1/k of
// the link capacity, so every collision stretches every in-flight
// transfer. Schedules are computed per process from an availability
// model and a *solo* transfer-cost estimate — exactly what a real
// deployment would measure — so models that checkpoint more often
// (exponential) collide more, lengthening their own transfers beyond
// the cost the schedule assumed. Heavy-tailed models "parallelize the
// overhead by incurring it as lost execution work and not sequential
// network load" (§5.2), which this simulator quantifies.
package parallel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/markov"
)

// StaggerPolicy coordinates the processes' checkpoint transfers over
// the shared link.
type StaggerPolicy int

const (
	// StaggerNone lets every process transfer the moment its interval
	// ends; simultaneous transfers share the link (the uncoordinated
	// baseline).
	StaggerNone StaggerPolicy = iota
	// StaggerToken serializes transfers with a single token: a process
	// whose interval ends while the link is busy waits (idle) in FIFO
	// order and then transfers at full link rate. No collisions, but
	// queueing delay exposes more uncheckpointed work to failures.
	StaggerToken
	// StaggerJitter adds a per-interval random extension of up to 30%
	// of T to each work interval, desynchronizing the herd without any
	// coordination channel.
	StaggerJitter
)

func (p StaggerPolicy) String() string {
	switch p {
	case StaggerNone:
		return "none"
	case StaggerToken:
		return "token"
	case StaggerJitter:
		return "jitter"
	}
	return fmt.Sprintf("stagger(%d)", int(p))
}

// Config parameterizes one parallel-job simulation.
type Config struct {
	// Workers is the number of job processes (one per machine).
	Workers int
	// Avail is the true availability law of each machine.
	Avail dist.Distribution
	// ScheduleDist is the availability model the schedules are
	// computed from (set equal to Avail for a well-specified model, or
	// to a fitted approximation to study mis-specification).
	ScheduleDist dist.Distribution
	// LinkMBps is the shared link capacity in MB/s.
	LinkMBps float64
	// CheckpointMB is the image size each process transfers.
	CheckpointMB float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Stagger selects the checkpoint-coordination policy.
	Stagger StaggerPolicy
	// Seed drives machine lifetimes.
	Seed int64
}

// Result summarizes one simulation.
type Result struct {
	// Efficiency is committed work over total process-time
	// (Workers × Duration).
	Efficiency float64
	// CommittedWork and LostWork are summed over processes (seconds).
	CommittedWork, LostWork float64
	// MBMoved is total network volume (completed + prorated partial
	// transfers).
	MBMoved float64
	// Commits counts completed work+checkpoint cycles; Failures
	// counts evictions.
	Commits, Failures int
	// MeanTransferSec is the mean duration of completed transfers —
	// the solo transfer time is CheckpointMB/LinkMBps; anything above
	// it is collision stretch.
	MeanTransferSec float64
	// SoloTransferSec is the no-contention transfer duration.
	SoloTransferSec float64
	// Collisions counts completed transfers that ever shared the link;
	// MaxConcurrent is the peak number of simultaneous transfers.
	Collisions, MaxConcurrent int
	// QueueWaitSec is total time processes spent waiting for the
	// transfer token (StaggerToken only).
	QueueWaitSec float64
}

// CollisionStretch reports how much collisions lengthened the average
// transfer: MeanTransferSec / SoloTransferSec.
func (r Result) CollisionStretch() float64 {
	if r.SoloTransferSec <= 0 {
		return 0
	}
	return r.MeanTransferSec / r.SoloTransferSec
}

type wstate int

const (
	wRecovering wstate = iota
	wWorking
	wTransferring // checkpoint upload
	wQueued       // waiting for the transfer token (StaggerToken)
)

type worker struct {
	state      wstate
	availStart float64 // when the current availability began
	failAt     float64 // when the owner reclaims the machine
	workEnd    float64 // when the current interval completes (wWorking)
	topt       float64 // current interval length
	bytesLeft  float64 // MB remaining (transfer states)
	totalMB    float64 // MB of the current transfer
	started    float64 // transfer start time
	collided   bool    // transfer ever shared the link
	// Queue bookkeeping (StaggerToken).
	queuedSince  float64
	queueSeq     int
	wantRecovery bool // queued transfer is a recovery (no work at stake)
}

// Run simulates the parallel job.
func Run(cfg Config) (Result, error) {
	if cfg.Workers <= 0 {
		return Result{}, fmt.Errorf("parallel: need workers > 0, got %d", cfg.Workers)
	}
	if cfg.Avail == nil || cfg.ScheduleDist == nil {
		return Result{}, errors.New("parallel: need Avail and ScheduleDist")
	}
	if cfg.LinkMBps <= 0 || cfg.CheckpointMB <= 0 || cfg.Duration <= 0 {
		return Result{}, errors.New("parallel: LinkMBps, CheckpointMB and Duration must be positive")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	solo := cfg.CheckpointMB / cfg.LinkMBps
	// Schedules assume the solo transfer cost, as a real deployment
	// measuring one process at a time would.
	model := markov.Model{
		Avail: cfg.ScheduleDist,
		Costs: markov.Costs{C: solo, R: solo, L: solo},
	}
	toptAt := func(age float64) float64 {
		T, _, err := model.Topt(age, markov.OptimizeOptions{})
		if err != nil {
			return solo // degenerate model: keep minimal progress
		}
		if cfg.Stagger == StaggerJitter {
			T *= 1 + 0.3*rng.Float64()
		}
		return T
	}

	var res Result
	res.SoloTransferSec = solo
	var transferDurations []float64
	queueSeq := 0

	ws := make([]*worker, cfg.Workers)
	now := 0.0

	transferring := func() int {
		n := 0
		for _, w := range ws {
			if w.state == wRecovering || w.state == wTransferring {
				n++
			}
		}
		return n
	}

	// startTransfer either begins the transfer or, under the token
	// policy with a busy link, parks the worker in the queue.
	startTransfer := func(w *worker, at float64, isRecovery bool) {
		if cfg.Stagger == StaggerToken && transferring() > 0 {
			w.state = wQueued
			w.queuedSince = at
			w.queueSeq = queueSeq
			queueSeq++
			w.wantRecovery = isRecovery
			return
		}
		if isRecovery {
			w.state = wRecovering
		} else {
			w.state = wTransferring
		}
		w.bytesLeft = cfg.CheckpointMB
		w.totalMB = cfg.CheckpointMB
		w.started = at
		w.collided = false
	}

	// dequeue hands the free token to the longest-waiting queued
	// worker (StaggerToken only).
	dequeue := func(at float64) {
		if cfg.Stagger != StaggerToken {
			return
		}
		var next *worker
		for _, w := range ws {
			if w.state == wQueued && (next == nil || w.queueSeq < next.queueSeq) {
				next = w
			}
		}
		if next == nil {
			return
		}
		res.QueueWaitSec += at - next.queuedSince
		startTransfer(next, at, next.wantRecovery)
	}

	finishTransfer := func(w *worker, at float64) {
		res.MBMoved += w.totalMB
		transferDurations = append(transferDurations, at-w.started)
		if w.collided {
			res.Collisions++
		}
		if w.state == wTransferring {
			res.CommittedWork += w.topt
			res.Commits++
		}
		// Recovery or checkpoint done: begin the next work interval.
		age := at - w.availStart
		w.topt = toptAt(age)
		w.state = wWorking
		w.workEnd = at + w.topt
		w.collided = false
		dequeue(at)
	}

	fail := func(w *worker, at float64) {
		res.Failures++
		heldToken := false
		switch w.state {
		case wWorking:
			res.LostWork += w.topt - (w.workEnd - at)
		case wTransferring:
			res.LostWork += w.topt
			res.MBMoved += w.totalMB - w.bytesLeft
			heldToken = true
		case wRecovering:
			res.MBMoved += w.totalMB - w.bytesLeft
			heldToken = true
		case wQueued:
			res.QueueWaitSec += at - w.queuedSince
			if !w.wantRecovery {
				res.LostWork += w.topt // interval done but never stored
			}
		}
		// The machine comes back immediately in a fresh availability
		// period (busy gaps affect neither the link nor efficiency-of-
		// occupied-time accounting) and the process restarts with a
		// recovery.
		w.state = wWorking // neutral until startTransfer assigns one
		w.availStart = at
		w.failAt = at + cfg.Avail.Rand(rng)
		if heldToken {
			// The token is free now; waiting workers go first, and the
			// failed process joins the back of the queue.
			dequeue(at)
		}
		startTransfer(w, at, true)
	}

	for i := range ws {
		ws[i] = &worker{
			availStart: 0,
			failAt:     cfg.Avail.Rand(rng),
			state:      wWorking, // neutral until startTransfer assigns one
		}
	}
	// Initial recoveries (the token policy serializes even these).
	for _, w := range ws {
		startTransfer(w, 0, true)
	}

	for now < cfg.Duration {
		n := transferring()
		if n > res.MaxConcurrent {
			res.MaxConcurrent = n
		}
		if n > 1 {
			for _, w := range ws {
				if w.state == wRecovering || w.state == wTransferring {
					w.collided = true
				}
			}
		}
		rate := cfg.LinkMBps / math.Max(1, float64(n)) // MB/s per transfer

		// Next event: earliest of transfer completions, work
		// completions, and failures.
		next := cfg.Duration
		for _, w := range ws {
			switch w.state {
			case wRecovering, wTransferring:
				if t := now + w.bytesLeft/rate; t < next {
					next = t
				}
			case wWorking:
				if w.workEnd < next {
					next = w.workEnd
				}
			}
			if w.failAt < next {
				next = w.failAt
			}
		}
		dt := next - now

		// Drain in-flight transfers.
		for _, w := range ws {
			if w.state == wRecovering || w.state == wTransferring {
				w.bytesLeft -= rate * dt
			}
		}
		now = next
		if now >= cfg.Duration {
			break
		}

		// Fire every event due now (failures dominate simultaneous
		// completions — the eviction kills the process first).
		for _, w := range ws {
			if w.failAt <= now+1e-9 {
				fail(w, now)
				continue
			}
			switch w.state {
			case wRecovering, wTransferring:
				if w.bytesLeft <= 1e-9 {
					finishTransfer(w, now)
				}
			case wWorking:
				if w.workEnd <= now+1e-9 {
					startTransfer(w, now, false)
				}
			}
		}
	}

	total := float64(cfg.Workers) * cfg.Duration
	res.Efficiency = res.CommittedWork / total
	if len(transferDurations) > 0 {
		sum := 0.0
		for _, d := range transferDurations {
			sum += d
		}
		res.MeanTransferSec = sum / float64(len(transferDurations))
	}
	return res, nil
}
