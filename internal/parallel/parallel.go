// Package parallel implements the paper's stated future work (§5.2):
// a model of parallel workloads that captures the interaction between
// colliding checkpoints and checkpoint length.
//
// A parallel job runs one process per machine; all processes share a
// single network path to the checkpoint manager. The link is modeled
// as processor-sharing: k concurrent transfers each progress at 1/k of
// the link capacity, so every collision stretches every in-flight
// transfer. Schedules are computed per process from an availability
// model and a *solo* transfer-cost estimate — exactly what a real
// deployment would measure — so models that checkpoint more often
// (exponential) collide more, lengthening their own transfers beyond
// the cost the schedule assumed. Heavy-tailed models "parallelize the
// overhead by incurring it as lost execution work and not sequential
// network load" (§5.2), which this simulator quantifies.
//
// The simulator is an event-calendar discrete-event engine: an indexed
// min-heap of per-worker events plus a service-mark heap for in-flight
// transfers give O(log Workers) cost per event, so herds of thousands
// of processes simulate in seconds (see DESIGN.md §10). Checkpoint
// intervals come from one markov.Schedule built per availability
// model and shared by every worker, with jitter applied on top.
package parallel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// StaggerPolicy coordinates the processes' checkpoint transfers over
// the shared link.
type StaggerPolicy int

const (
	// StaggerNone lets every process transfer the moment its interval
	// ends; simultaneous transfers share the link (the uncoordinated
	// baseline).
	StaggerNone StaggerPolicy = iota
	// StaggerToken serializes transfers with a single token: a process
	// whose interval ends while the link is busy waits (idle) in FIFO
	// order and then transfers at full link rate. No collisions, but
	// queueing delay exposes more uncheckpointed work to failures.
	StaggerToken
	// StaggerJitter adds a per-interval random extension of up to 30%
	// of T to each work interval, desynchronizing the herd without any
	// coordination channel.
	StaggerJitter
)

func (p StaggerPolicy) String() string {
	switch p {
	case StaggerNone:
		return "none"
	case StaggerToken:
		return "token"
	case StaggerJitter:
		return "jitter"
	}
	return fmt.Sprintf("stagger(%d)", int(p))
}

// Config parameterizes one parallel-job simulation.
type Config struct {
	// Workers is the number of job processes (one per machine).
	Workers int
	// Avail is the true availability law of each machine.
	Avail dist.Distribution
	// ScheduleDist is the availability model the schedules are
	// computed from (set equal to Avail for a well-specified model, or
	// to a fitted approximation to study mis-specification).
	ScheduleDist dist.Distribution
	// LinkMBps is the shared link capacity in MB/s.
	LinkMBps float64
	// CheckpointMB is the image size each process transfers.
	CheckpointMB float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Stagger selects the checkpoint-coordination policy.
	Stagger StaggerPolicy
	// Seed drives machine lifetimes.
	Seed int64
	// Trace, when set, records the run's timeline on the *simulation*
	// clock: one "run" span per engine plus per-worker transfer spans
	// and failure events, all on pid TracePid (tid = worker index + 1).
	// Simulated timestamps and single-goroutine emission make the trace
	// byte-identical at any GOMAXPROCS (DESIGN.md §12).
	Trace *obs.Tracer
	// TracePid is the trace lane for this run (RunGrid assigns the
	// 1-based flat task index; a lone Run defaults to 1).
	TracePid uint64
	// Predict configures the oracle fault predictor (DESIGN.md §13).
	// The zero value disables prediction: no predictor RNG stream is
	// created and results are bit-identical to pre-predictor runs. The
	// predictor draws from a private stream derived from Seed via
	// predict.StreamSeed, so enabling it never perturbs machine
	// lifetimes or jitter draws.
	Predict predict.Config
	// Policy selects how workers act on predictor alarms. Ignored
	// (reactive) when Predict is disabled.
	Policy predict.Policy
}

func (cfg Config) validate() error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("parallel: need workers > 0, got %d", cfg.Workers)
	}
	if cfg.Avail == nil || cfg.ScheduleDist == nil {
		return errors.New("parallel: need Avail and ScheduleDist")
	}
	if cfg.LinkMBps <= 0 || cfg.CheckpointMB <= 0 || cfg.Duration <= 0 {
		return errors.New("parallel: LinkMBps, CheckpointMB and Duration must be positive")
	}
	if err := cfg.Predict.Validate(); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	return nil
}

// Result summarizes one simulation.
type Result struct {
	// Efficiency is committed work over total process-time
	// (Workers × Duration).
	Efficiency float64
	// CommittedWork and LostWork are summed over processes (seconds).
	CommittedWork, LostWork float64
	// MBMoved is total network volume (completed + prorated partial
	// transfers).
	MBMoved float64
	// Commits counts completed work+checkpoint cycles; Failures
	// counts evictions.
	Commits, Failures int
	// MeanTransferSec is the mean duration of completed transfers —
	// the solo transfer time is CheckpointMB/LinkMBps; anything above
	// it is collision stretch.
	MeanTransferSec float64
	// SoloTransferSec is the no-contention transfer duration.
	SoloTransferSec float64
	// Collisions counts completed transfers that ever shared the link;
	// MaxConcurrent is the peak number of simultaneous transfers.
	Collisions, MaxConcurrent int
	// QueueWaitSec is total time processes spent waiting for the
	// transfer token (StaggerToken only).
	QueueWaitSec float64
	// ScheduleFallbacks counts work intervals that could not be served
	// from the planned schedule: the model was degenerate at build
	// time (the interval degrades to the solo transfer cost, keeping
	// minimal progress), or a non-memoryless schedule ran past its
	// planned horizon and extended its final interval. Memoryless
	// models plan a single interval by design; extending it is the
	// steady state, not a fallback.
	ScheduleFallbacks int
	// Predictions counts predictor alarms fired (true and false);
	// PredHits counts failures that arrived with a true alarm raised,
	// PredFalse counts false alarms, and PredMissed counts failures
	// that arrived unwarned. All zero when prediction is disabled.
	Predictions, PredHits, PredFalse, PredMissed int
	// ProactiveCheckpoints counts alarm-triggered checkpoints that
	// completed (PolicyProactive); Migrations counts completed
	// prediction-triggered migrations (PolicyMigrate) and MigrationMB
	// the megabytes they moved (a subset of MBMoved).
	ProactiveCheckpoints, Migrations int
	MigrationMB                      float64
}

// CollisionStretch reports how much collisions lengthened the average
// transfer: MeanTransferSec / SoloTransferSec.
func (r Result) CollisionStretch() float64 {
	if r.SoloTransferSec <= 0 {
		return 0
	}
	return r.MeanTransferSec / r.SoloTransferSec
}

type wstate int

const (
	wRecovering wstate = iota
	wWorking
	wTransferring // checkpoint upload
	wQueued       // waiting for the transfer token (StaggerToken)
)

type worker struct {
	state      wstate
	availStart float64 // when the current availability began
	failAt     float64 // when the owner reclaims the machine
	workEnd    float64 // when the current interval completes (wWorking)
	topt       float64 // current interval length
	target     float64 // cumulative service mark at which the transfer completes
	totalMB    float64 // MB of the current transfer
	started    float64 // transfer start time
	// Queue bookkeeping (StaggerToken).
	queuedSince  float64
	queueSeq     int  // bumped per enqueue; stale FIFO entries are skipped
	wantRecovery bool // queued transfer is a recovery (no work at stake)
	// Predictor bookkeeping (Config.Predict enabled only).
	alarms    []predict.Event // this availability period's alarms
	alarmIdx  int             // next alarm to fire
	predTrue  bool            // a true alarm fired this period
	migrating bool            // current transfer is a migration
	proactive bool            // current transfer was alarm-triggered
}

// movedMB reports how much of w's in-flight transfer has crossed the
// link, given the current cumulative service mark.
func movedMB(w *worker, svc float64) float64 {
	left := w.target - svc
	if left < 0 {
		left = 0
	}
	if left > w.totalMB {
		left = w.totalMB
	}
	return w.totalMB - left
}

// scheduleFor builds the checkpoint schedule shared by every worker of
// a run: one markov.BuildSchedule per (ScheduleDist, Costs) pair, with
// intervals served by Schedule.Lookup at each worker's actual age. A
// nil return means the model was degenerate at age zero; the engine
// then degrades every interval to the solo transfer cost and counts it
// in Result.ScheduleFallbacks.
func scheduleFor(cfg Config) *markov.Schedule {
	solo := cfg.CheckpointMB / cfg.LinkMBps
	model := markov.Model{
		Avail: cfg.ScheduleDist,
		Costs: markov.Costs{C: solo, R: solo, L: solo},
	}
	// Plan out to the simulated horizon: a worker's age never exceeds
	// the run duration, so extensions only happen when MaxIntervals
	// truncates the plan (counted as fallbacks) or the model is
	// memoryless (periodic by design).
	s, err := model.BuildSchedule(0, markov.ScheduleOptions{Horizon: cfg.Duration})
	if err != nil {
		return nil
	}
	return s
}

// Run simulates the parallel job.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	return runScheduled(cfg, scheduleFor(cfg))
}

type queueEntry struct{ id, seq int }

// engine is the event-calendar simulation state. Transfers progress
// under processor sharing, tracked in "service" units: svc is the
// cumulative MB a hypothetical always-active transfer would have
// received since t=0, advancing at LinkMBps/max(1, nActive). A
// transfer starting at service mark s completes at mark s +
// CheckpointMB regardless of how the rate changes in between, so
// completion order is fixed at start time and the service-keyed heap
// never needs rekeying — the rate-change bookkeeping reduces to
// advancing one (svc, svcAt) pair per event.
type engine struct {
	cfg        Config
	rng        *rand.Rand
	res        Result
	sched      *markov.Schedule
	memoryless bool
	solo       float64

	ws []worker

	timeEv *eventHeap // per worker: earlier of failure and work-end (wall clock)
	xferEv *eventHeap // per in-flight transfer: completion service mark
	predEv *eventHeap // per worker: next predictor alarm (wall clock)

	pred *predict.Predictor // nil = prediction off
	prng *rand.Rand         // predictor's private stream (predict.StreamSeed)

	svc     float64 // cumulative per-transfer service (MB)
	svcAt   float64 // wall-clock time svc was advanced to
	nActive int     // concurrent transfers (recoveries included)

	lastMulti float64 // last instant the link was shared; seeds collision counting

	queue []queueEntry // token-policy FIFO
	qHead int

	xferSum   float64 // streaming mean of completed transfer durations
	xferCount int

	svcClamps int // transfer timestamps pinned to now by the last-ulp guard

	tr  *obs.Tracer // nil = tracing off
	pid uint64      // trace lane (Config.TracePid, default 1)

	now float64
}

// traceTransfer emits the span of a transfer that just ended — torn by
// a failure or run to completion — on the simulation clock.
func (e *engine) traceTransfer(id int, w *worker, outcome string) {
	name := "transfer.checkpoint"
	if w.state == wRecovering {
		name = "transfer.recovery"
	}
	if w.migrating {
		name = "transfer.migrate"
	}
	e.tr.SpanAt(e.pid, uint64(id)+1, name, w.started, e.now-w.started,
		obs.AttrFloat("mb", movedMB(w, e.svc)),
		obs.AttrStr("outcome", outcome),
		obs.AttrBool("collided", e.lastMulti >= w.started))
}

// newEngine initializes the simulation state shared by the heap engine
// and the linear-scan reference engine: workers drawn their first
// lifetimes in index order, then initial recoveries started (the token
// policy serializes even these).
func newEngine(cfg Config, sched *markov.Schedule) *engine {
	e := &engine{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		sched:      sched,
		memoryless: dist.IsMemoryless(cfg.ScheduleDist),
		solo:       cfg.CheckpointMB / cfg.LinkMBps,
		ws:         make([]worker, cfg.Workers),
		timeEv:     newEventHeap(cfg.Workers),
		xferEv:     newEventHeap(cfg.Workers),
		predEv:     newEventHeap(cfg.Workers),
		lastMulti:  math.Inf(-1),
		tr:         cfg.Trace,
		pid:        cfg.TracePid,
	}
	if e.tr != nil && e.pid == 0 {
		e.pid = 1
	}
	if cfg.Predict.Enabled() {
		// validate() vetted the config; New only fails on invalid input.
		e.pred, _ = predict.New(cfg.Predict)
		e.prng = rand.New(rand.NewSource(predict.StreamSeed(cfg.Seed)))
	}
	e.res.SoloTransferSec = e.solo
	for i := range e.ws {
		e.ws[i] = worker{
			availStart: 0,
			failAt:     cfg.Avail.Rand(e.rng),
			state:      wWorking, // neutral until startTransfer assigns one
		}
	}
	// Alarm draws come after every lifetime draw, in worker order, from
	// the predictor's own stream — the lifetime stream stays untouched.
	for i := range e.ws {
		e.newPeriod(i)
	}
	for i := range e.ws {
		e.startTransfer(i, true)
	}
	return e
}

// predTid is the predictor's trace lane for worker id: the alarm lanes
// sit in a band above the per-worker transfer lanes.
func (e *engine) predTid(id int) uint64 {
	return uint64(e.cfg.Workers) + uint64(id) + 1
}

// newPeriod draws the predictor alarms for id's freshly started
// availability period and schedules the first one. A disabled predictor
// draws nothing.
func (e *engine) newPeriod(id int) {
	w := &e.ws[id]
	w.predTrue = false
	w.alarms = nil
	w.alarmIdx = 0
	if e.pred == nil {
		return
	}
	w.alarms = e.pred.PeriodEvents(w.failAt-w.availStart, e.prng)
	e.schedAlarm(id)
}

// schedAlarm refreshes id's calendar entry for its next pending alarm.
// Under the reactive policy alarms never enter the calendar: nothing
// acts on them, so they are settled in bulk when the failure lands —
// which keeps every clock advance, and therefore every float in the
// service arithmetic, bit-identical to a run with no predictor at all.
func (e *engine) schedAlarm(id int) {
	if e.cfg.Policy == predict.PolicyReactive {
		return
	}
	w := &e.ws[id]
	if w.alarmIdx < len(w.alarms) {
		e.predEv.Update(id, w.availStart+w.alarms[w.alarmIdx].At, kindPred)
	} else {
		e.predEv.Remove(id)
	}
}

// countAlarm settles one fired alarm in the books and on the trace.
func (e *engine) countAlarm(id int, ev predict.Event) {
	e.res.Predictions++
	if ev.True {
		e.ws[id].predTrue = true
	} else {
		e.res.PredFalse++
	}
	if e.tr != nil {
		at := e.ws[id].availStart + ev.At
		e.tr.EventAt(e.pid, e.predTid(id), "predict.fired", at, obs.AttrBool("true", ev.True))
		if !ev.True {
			e.tr.EventAt(e.pid, e.predTid(id), "predict.false", at)
		}
	}
}

// firePred processes a predictor alarm. The alarm always counts; under
// the proactive and migrate policies it additionally interrupts an
// in-flight work interval (the worker cannot tell true alarms from
// false ones — that is what precision costs) and ships the image, as a
// checkpoint that commits the truncated interval or as a migration off
// the doomed machine. Workers mid-recovery, mid-transfer or queued have
// nothing new to save and let the alarm pass.
func (e *engine) firePred(id int) {
	w := &e.ws[id]
	ev := w.alarms[w.alarmIdx]
	w.alarmIdx++
	e.schedAlarm(id)
	e.countAlarm(id, ev)
	if e.cfg.Policy == predict.PolicyReactive || w.state != wWorking {
		return
	}
	w.topt = e.now - (w.workEnd - w.topt) // truncate to work done so far
	if e.cfg.Policy == predict.PolicyMigrate {
		w.migrating = true
	} else {
		w.proactive = true
	}
	e.startTransfer(id, false)
}

// fire advances the clock to t and processes the selected event.
func (e *engine) fire(id int, kind uint8, t float64) {
	e.advance(t)
	switch kind {
	case kindFail:
		e.fail(id)
	case kindXfer:
		e.finishTransfer(id)
	case kindWork:
		e.startTransfer(id, false)
	case kindPred:
		e.firePred(id)
	}
	if e.nActive > 1 {
		e.lastMulti = e.now
	}
}

// finish closes the books, flushes the run's local tallies to the
// registry in a handful of atomic adds, and returns the result.
func (e *engine) finish() Result {
	total := float64(e.cfg.Workers) * e.cfg.Duration
	e.res.Efficiency = e.res.CommittedWork / total
	if e.xferCount > 0 {
		e.res.MeanTransferSec = e.xferSum / float64(e.xferCount)
	}
	e.tr.SpanAt(e.pid, 0, "run", 0, e.cfg.Duration,
		obs.AttrInt("workers", int64(e.cfg.Workers)),
		obs.AttrStr("stagger", e.cfg.Stagger.String()),
		obs.AttrFloat("efficiency", e.res.Efficiency),
		obs.AttrInt("commits", int64(e.res.Commits)),
		obs.AttrInt("failures", int64(e.res.Failures)))
	metrics.runs.Inc()
	metrics.heapOps.Add(e.timeEv.ops + e.xferEv.ops + e.predEv.ops)
	metrics.fallbacks.Add(uint64(e.res.ScheduleFallbacks))
	metrics.svcResets.Add(uint64(e.svcClamps))
	metrics.linkPeak.SetMax(int64(e.res.MaxConcurrent))
	if e.pred != nil {
		predict.Metrics.Fired.Add(uint64(e.res.Predictions))
		predict.Metrics.Hits.Add(uint64(e.res.PredHits))
		predict.Metrics.False.Add(uint64(e.res.PredFalse))
		predict.Metrics.Missed.Add(uint64(e.res.PredMissed))
		predict.Metrics.ProactiveCheckpoints.Add(uint64(e.res.ProactiveCheckpoints))
		predict.Metrics.Migrations.Add(uint64(e.res.Migrations))
	}
	return e.res
}

// runScheduled runs the heap engine against a prebuilt schedule (which
// RunGrid shares across every cell of one model column).
func runScheduled(cfg Config, sched *markov.Schedule) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	e := newEngine(cfg, sched)
	for {
		id, t, kind, ok := e.timeEv.Min()
		if !ok {
			break
		}
		if aid, at, _, aok := e.predEv.Min(); aok && eventLess(at, kindPred, aid, t, kind, id) {
			id, t, kind = aid, at, kindPred
		}
		if xid, target, _, xok := e.xferEv.Min(); xok {
			xt := e.svcAt + (target-e.svc)/e.rate()
			if xt < e.now {
				xt = e.now // guard the last-ulp of service arithmetic
				e.svcClamps++
			}
			if eventLess(xt, kindXfer, xid, t, kind, id) {
				id, t, kind = xid, xt, kindXfer
			}
		}
		if t >= e.cfg.Duration {
			break
		}
		e.fire(id, kind, t)
	}
	return e.finish(), nil
}

// rate is the per-transfer processor-sharing rate in MB/s.
func (e *engine) rate() float64 {
	return e.cfg.LinkMBps / math.Max(1, float64(e.nActive))
}

// advance moves the clock to t, accruing service at the rate that has
// been in effect since the last event.
func (e *engine) advance(t float64) {
	if e.nActive > 0 {
		e.svc += (t - e.svcAt) * e.rate()
	}
	e.svcAt = t
	e.now = t
}

// retime refreshes id's wall-clock calendar entry: the earlier of its
// failure and (when working) its interval completion, failure winning
// exact ties.
func (e *engine) retime(id int) {
	w := &e.ws[id]
	if w.state == wWorking && w.workEnd < w.failAt {
		e.timeEv.Update(id, w.workEnd, kindWork)
		return
	}
	e.timeEv.Update(id, w.failAt, kindFail)
}

// intervalAt serves the next work interval for a worker whose
// availability period has reached the given age.
func (e *engine) intervalAt(age float64) float64 {
	T := e.solo
	if e.sched != nil {
		t, extended, ok := e.sched.Lookup(age)
		switch {
		case !ok:
			e.res.ScheduleFallbacks++
		case extended && !e.memoryless:
			T = t
			e.res.ScheduleFallbacks++
		default:
			T = t
		}
	} else {
		e.res.ScheduleFallbacks++
	}
	if e.cfg.Stagger == StaggerJitter {
		T *= 1 + 0.3*e.rng.Float64()
	}
	return T
}

// startTransfer either begins the transfer or, under the token policy
// with a busy link, parks the worker in the FIFO queue.
func (e *engine) startTransfer(id int, isRecovery bool) {
	w := &e.ws[id]
	if e.cfg.Stagger == StaggerToken && e.nActive > 0 {
		w.state = wQueued
		w.queuedSince = e.now
		w.queueSeq++
		w.wantRecovery = isRecovery
		e.queue = append(e.queue, queueEntry{id, w.queueSeq})
		e.retime(id)
		return
	}
	if isRecovery {
		w.state = wRecovering
	} else {
		w.state = wTransferring
	}
	w.totalMB = e.cfg.CheckpointMB
	w.started = e.now
	w.target = e.svc + e.cfg.CheckpointMB
	e.nActive++
	if e.nActive > e.res.MaxConcurrent {
		e.res.MaxConcurrent = e.nActive
	}
	if e.nActive > 1 {
		e.lastMulti = e.now
	}
	e.xferEv.Update(id, w.target, kindXfer)
	e.retime(id)
}

// dequeue hands the free token to the longest-waiting queued worker
// (StaggerToken only). Entries whose worker failed while queued are
// stale (the failure re-enqueued it with a new sequence number) and
// are skipped.
func (e *engine) dequeue() {
	if e.cfg.Stagger != StaggerToken {
		return
	}
	for e.qHead < len(e.queue) {
		qe := e.queue[e.qHead]
		e.qHead++
		w := &e.ws[qe.id]
		if w.state != wQueued || w.queueSeq != qe.seq {
			continue
		}
		e.res.QueueWaitSec += e.now - w.queuedSince
		e.startTransfer(qe.id, w.wantRecovery)
		return
	}
	e.queue = e.queue[:0]
	e.qHead = 0
}

func (e *engine) finishTransfer(id int) {
	w := &e.ws[id]
	if e.tr != nil {
		e.traceTransfer(id, w, "done")
	}
	e.res.MBMoved += w.totalMB
	e.xferSum += e.now - w.started
	e.xferCount++
	if e.lastMulti >= w.started {
		e.res.Collisions++
	}
	if w.state == wTransferring {
		e.res.CommittedWork += w.topt
		e.res.Commits++
	}
	e.xferEv.Remove(id)
	e.nActive--
	if w.migrating {
		// Migration landed: the process leaves the doomed machine for a
		// fresh one. The abandoned period's pending alarms die with it
		// (no eviction is experienced there), the destination draws its
		// own lifetime and alarms, and the process recovers there.
		w.migrating = false
		e.res.Migrations++
		e.res.MigrationMB += w.totalMB
		w.availStart = e.now
		w.failAt = e.now + e.cfg.Avail.Rand(e.rng)
		e.newPeriod(id)
		e.dequeue()
		e.startTransfer(id, true)
		return
	}
	if w.proactive {
		w.proactive = false
		e.res.ProactiveCheckpoints++
	}
	// Recovery or checkpoint done: begin the next work interval.
	age := e.now - w.availStart
	w.topt = e.intervalAt(age)
	w.state = wWorking
	w.workEnd = e.now + w.topt
	e.retime(id)
	e.dequeue()
}

func (e *engine) fail(id int) {
	w := &e.ws[id]
	e.res.Failures++
	if e.tr != nil {
		if w.state == wTransferring || w.state == wRecovering {
			e.traceTransfer(id, w, "interrupted")
		}
		e.tr.EventAt(e.pid, uint64(id)+1, "fail", e.now,
			obs.AttrFloat("age", e.now-w.availStart))
	}
	heldLink := false
	switch w.state {
	case wWorking:
		e.res.LostWork += w.topt - (w.workEnd - e.now)
	case wTransferring:
		e.res.LostWork += w.topt
		e.res.MBMoved += movedMB(w, e.svc)
		heldLink = true
	case wRecovering:
		e.res.MBMoved += movedMB(w, e.svc)
		heldLink = true
	case wQueued:
		e.res.QueueWaitSec += e.now - w.queuedSince
		if !w.wantRecovery {
			e.res.LostWork += w.topt // interval done but never stored
		}
	}
	if heldLink {
		e.xferEv.Remove(id)
		e.nActive--
	}
	// Settle the predictor's books for the period that just ended:
	// alarms scheduled at the eviction instant itself still fired, and
	// the eviction is a hit or a miss depending on whether a true alarm
	// preceded it.
	if e.pred != nil {
		for ; w.alarmIdx < len(w.alarms); w.alarmIdx++ {
			e.countAlarm(id, w.alarms[w.alarmIdx])
		}
		if w.predTrue {
			e.res.PredHits++
			if e.tr != nil {
				e.tr.EventAt(e.pid, e.predTid(id), "predict.hit", e.now)
			}
		} else {
			e.res.PredMissed++
			if e.tr != nil {
				e.tr.EventAt(e.pid, e.predTid(id), "predict.miss", e.now)
			}
		}
	}
	w.migrating = false
	w.proactive = false
	// The machine comes back immediately in a fresh availability
	// period (busy gaps affect neither the link nor efficiency-of-
	// occupied-time accounting) and the process restarts with a
	// recovery.
	w.state = wWorking // neutral until startTransfer assigns one
	w.availStart = e.now
	w.failAt = e.now + e.cfg.Avail.Rand(e.rng)
	e.newPeriod(id)
	if heldLink {
		// The token is free now; waiting workers go first, and the
		// failed process joins the back of the queue.
		e.dequeue()
	}
	e.startTransfer(id, true)
}
