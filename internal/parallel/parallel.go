// Package parallel implements the paper's stated future work (§5.2):
// a model of parallel workloads that captures the interaction between
// colliding checkpoints and checkpoint length.
//
// A parallel job runs one process per machine; all processes share a
// single network path to the checkpoint manager. The link is modeled
// as processor-sharing: k concurrent transfers each progress at 1/k of
// the link capacity, so every collision stretches every in-flight
// transfer. Schedules are computed per process from an availability
// model and a *solo* transfer-cost estimate — exactly what a real
// deployment would measure — so models that checkpoint more often
// (exponential) collide more, lengthening their own transfers beyond
// the cost the schedule assumed. Heavy-tailed models "parallelize the
// overhead by incurring it as lost execution work and not sequential
// network load" (§5.2), which this simulator quantifies.
//
// The simulator is a sharded event-calendar discrete-event engine: the
// worker population is partitioned into per-shard sub-heaps (packed
// 64-byte hot records, inline 4-ary heap nodes) merged through a small
// tournament, and the in-flight transfer calendar degenerates to a
// FIFO ring because same-size images complete in start order on the
// processor-shared link. A serial coordinator processes the merged
// event stream, so results are bit-identical for any shard count and
// any GOMAXPROCS; herds of 10⁶ processes simulate a 24 h horizon in
// seconds (see DESIGN.md §14). Checkpoint intervals come from one
// markov.Schedule built per availability model — memoized across runs
// — and shared by every worker, with jitter applied on top.
package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// StaggerPolicy coordinates the processes' checkpoint transfers over
// the shared link.
type StaggerPolicy int

const (
	// StaggerNone lets every process transfer the moment its interval
	// ends; simultaneous transfers share the link (the uncoordinated
	// baseline).
	StaggerNone StaggerPolicy = iota
	// StaggerToken serializes transfers with a single token: a process
	// whose interval ends while the link is busy waits (idle) in FIFO
	// order and then transfers at full link rate. No collisions, but
	// queueing delay exposes more uncheckpointed work to failures.
	StaggerToken
	// StaggerJitter adds a per-interval random extension of up to 30%
	// of T to each work interval, desynchronizing the herd without any
	// coordination channel.
	StaggerJitter
)

func (p StaggerPolicy) String() string {
	switch p {
	case StaggerNone:
		return "none"
	case StaggerToken:
		return "token"
	case StaggerJitter:
		return "jitter"
	}
	return fmt.Sprintf("stagger(%d)", int(p))
}

// Config parameterizes one parallel-job simulation.
type Config struct {
	// Workers is the number of job processes (one per machine).
	Workers int
	// Avail is the true availability law of each machine.
	Avail dist.Distribution
	// ScheduleDist is the availability model the schedules are
	// computed from (set equal to Avail for a well-specified model, or
	// to a fitted approximation to study mis-specification).
	ScheduleDist dist.Distribution
	// LinkMBps is the shared link capacity in MB/s.
	LinkMBps float64
	// CheckpointMB is the image size each process transfers.
	CheckpointMB float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Stagger selects the checkpoint-coordination policy.
	Stagger StaggerPolicy
	// Seed drives machine lifetimes.
	Seed int64
	// Shards selects how many event-calendar sub-engines the worker
	// population partitions across; 0 (the default) sizes shards
	// automatically from the worker count. Sharding is a data-layout
	// decomposition, not a concurrency knob: a serial coordinator
	// merges the sub-calendars in the one global event order, so the
	// Result (and any trace) is bit-identical for every Shards value —
	// including 1, the unsharded engine — at any GOMAXPROCS
	// (DESIGN.md §14). Negative values are rejected.
	Shards int
	// Trace, when set, records the run's timeline on the *simulation*
	// clock: one "run" span per engine plus per-worker transfer spans
	// and failure events, all on pid TracePid (tid = worker index + 1).
	// Simulated timestamps and single-goroutine emission make the trace
	// byte-identical at any GOMAXPROCS (DESIGN.md §12).
	Trace *obs.Tracer
	// TracePid is the trace lane for this run (RunGrid assigns the
	// 1-based flat task index; a lone Run defaults to 1).
	TracePid uint64
	// Predict configures the oracle fault predictor (DESIGN.md §13).
	// The zero value disables prediction: no predictor RNG stream is
	// created and results are bit-identical to pre-predictor runs. The
	// predictor draws from a private stream derived from Seed via
	// predict.StreamSeed, so enabling it never perturbs machine
	// lifetimes or jitter draws.
	Predict predict.Config
	// Policy selects how workers act on predictor alarms. Ignored
	// (reactive) when Predict is disabled.
	Policy predict.Policy
}

func (cfg Config) validate() error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("parallel: need workers > 0, got %d", cfg.Workers)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("parallel: need shards >= 0 (0 = auto), got %d", cfg.Shards)
	}
	if cfg.Avail == nil || cfg.ScheduleDist == nil {
		return errors.New("parallel: need Avail and ScheduleDist")
	}
	if cfg.LinkMBps <= 0 || cfg.CheckpointMB <= 0 || cfg.Duration <= 0 {
		return errors.New("parallel: LinkMBps, CheckpointMB and Duration must be positive")
	}
	if err := cfg.Predict.Validate(); err != nil {
		return fmt.Errorf("parallel: %w", err)
	}
	return nil
}

// Result summarizes one simulation.
type Result struct {
	// Efficiency is committed work over total process-time
	// (Workers × Duration).
	Efficiency float64
	// CommittedWork and LostWork are summed over processes (seconds).
	CommittedWork, LostWork float64
	// MBMoved is total network volume (completed + prorated partial
	// transfers).
	MBMoved float64
	// Commits counts completed work+checkpoint cycles; Failures
	// counts evictions.
	Commits, Failures int
	// MeanTransferSec is the mean duration of completed transfers —
	// the solo transfer time is CheckpointMB/LinkMBps; anything above
	// it is collision stretch.
	MeanTransferSec float64
	// SoloTransferSec is the no-contention transfer duration.
	SoloTransferSec float64
	// Collisions counts completed transfers that ever shared the link;
	// MaxConcurrent is the peak number of simultaneous transfers.
	Collisions, MaxConcurrent int
	// QueueWaitSec is total time processes spent waiting for the
	// transfer token (StaggerToken only).
	QueueWaitSec float64
	// ScheduleFallbacks counts work intervals that could not be served
	// from the planned schedule: the model was degenerate at build
	// time (the interval degrades to the solo transfer cost, keeping
	// minimal progress), or a non-memoryless schedule ran past its
	// planned horizon and extended its final interval. Memoryless
	// models plan a single interval by design; extending it is the
	// steady state, not a fallback.
	ScheduleFallbacks int
	// Predictions counts predictor alarms fired (true and false);
	// PredHits counts failures that arrived with a true alarm raised,
	// PredFalse counts false alarms, and PredMissed counts failures
	// that arrived unwarned. All zero when prediction is disabled.
	Predictions, PredHits, PredFalse, PredMissed int
	// ProactiveCheckpoints counts alarm-triggered checkpoints that
	// completed (PolicyProactive); Migrations counts completed
	// prediction-triggered migrations (PolicyMigrate) and MigrationMB
	// the megabytes they moved (a subset of MBMoved).
	ProactiveCheckpoints, Migrations int
	MigrationMB                      float64
}

// CollisionStretch reports how much collisions lengthened the average
// transfer: MeanTransferSec / SoloTransferSec.
func (r Result) CollisionStretch() float64 {
	if r.SoloTransferSec <= 0 {
		return 0
	}
	return r.MeanTransferSec / r.SoloTransferSec
}

// schedKey identifies one memoizable schedule build: the model value,
// the solo transfer cost (which sets all three of C, R and L) and the
// planning horizon.
type schedKey struct {
	d       dist.Distribution
	solo    float64
	horizon float64
}

// schedCache memoizes scheduleFor across runs. BuildSchedule is
// deterministic and a Schedule is immutable (and safe for concurrent
// Lookup) once built, so two configs with the same comparable model
// value, costs and horizon can share one plan; a build costs tens of
// milliseconds — more than a whole 1024-worker simulation on the
// sharded engine. Bounded by wholesale reset so a sweep over many
// fitted models cannot grow it without limit.
var schedCache struct {
	sync.Mutex
	m map[schedKey]*markov.Schedule
}

const schedCacheMax = 64

// scheduleFor builds (or recalls) the checkpoint schedule shared by
// every worker of a run: one markov.BuildSchedule per (ScheduleDist,
// Costs, Horizon) triple, with intervals served by Schedule.LookupFrom
// at each worker's actual age. A nil return means the model was
// degenerate at age zero; the engine then degrades every interval to
// the solo transfer cost and counts it in Result.ScheduleFallbacks.
// Distribution values that are not comparable (slice-backed models
// like Hyperexponential) skip the cache.
func scheduleFor(cfg Config) *markov.Schedule {
	solo := cfg.CheckpointMB / cfg.LinkMBps
	cacheable := cfg.ScheduleDist != nil && reflect.ValueOf(cfg.ScheduleDist).Comparable()
	var key schedKey
	if cacheable {
		key = schedKey{d: cfg.ScheduleDist, solo: solo, horizon: cfg.Duration}
		schedCache.Lock()
		s, ok := schedCache.m[key]
		schedCache.Unlock()
		if ok {
			return s
		}
	}
	model := markov.Model{
		Avail: cfg.ScheduleDist,
		Costs: markov.Costs{C: solo, R: solo, L: solo},
	}
	// Plan out to the simulated horizon: a worker's age never exceeds
	// the run duration, so extensions only happen when MaxIntervals
	// truncates the plan (counted as fallbacks) or the model is
	// memoryless (periodic by design).
	s, err := model.BuildSchedule(0, markov.ScheduleOptions{Horizon: cfg.Duration})
	if err != nil {
		s = nil // degenerate models are memoized too
	}
	if cacheable {
		schedCache.Lock()
		if schedCache.m == nil || len(schedCache.m) >= schedCacheMax {
			schedCache.m = make(map[schedKey]*markov.Schedule)
		}
		schedCache.m[key] = s
		schedCache.Unlock()
	}
	return s
}

// Run simulates the parallel job.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	return runScheduled(cfg, scheduleFor(cfg))
}

// runScheduled runs the sharded engine against a prebuilt schedule
// (which RunGrid shares across every cell of one model column).
func runScheduled(cfg Config, sched *markov.Schedule) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	e := newEngine(cfg, sched)
	e.run()
	return e.finish(), nil
}
