package parallel

// runLegacy is a verbatim retention of the pre-event-calendar engine —
// O(Workers) scans per event, a per-event transfer drain loop, and a
// cold model.Topt call for every interval of every worker — kept only
// so the characterization tests can quantify how the schedule-reuse
// engine shifts results versus the old per-interval-T_opt path (see
// TestLegacyEquivalence*). Do not use it for anything else; it falls
// over long before realistic herd sizes.

import (
	"math"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/markov"
)

type legacyWorker struct {
	state      uint8
	availStart float64
	failAt     float64
	workEnd    float64
	topt       float64
	bytesLeft  float64
	totalMB    float64
	started    float64
	collided   bool
	// Queue bookkeeping (StaggerToken).
	queuedSince  float64
	queueSeq     int
	wantRecovery bool
}

func runLegacy(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	solo := cfg.CheckpointMB / cfg.LinkMBps
	model := markov.Model{
		Avail: cfg.ScheduleDist,
		Costs: markov.Costs{C: solo, R: solo, L: solo},
	}
	toptAt := func(age float64) float64 {
		T, _, err := model.Topt(age, markov.OptimizeOptions{})
		if err != nil {
			return solo // degenerate model: keep minimal progress
		}
		if cfg.Stagger == StaggerJitter {
			T *= 1 + 0.3*rng.Float64()
		}
		return T
	}

	var res Result
	res.SoloTransferSec = solo
	var transferDurations []float64
	queueSeq := 0

	ws := make([]*legacyWorker, cfg.Workers)
	now := 0.0

	transferring := func() int {
		n := 0
		for _, w := range ws {
			if w.state == wRecovering || w.state == wTransferring {
				n++
			}
		}
		return n
	}

	var startTransfer func(w *legacyWorker, at float64, isRecovery bool)
	startTransfer = func(w *legacyWorker, at float64, isRecovery bool) {
		if cfg.Stagger == StaggerToken && transferring() > 0 {
			w.state = wQueued
			w.queuedSince = at
			w.queueSeq = queueSeq
			queueSeq++
			w.wantRecovery = isRecovery
			return
		}
		if isRecovery {
			w.state = wRecovering
		} else {
			w.state = wTransferring
		}
		w.bytesLeft = cfg.CheckpointMB
		w.totalMB = cfg.CheckpointMB
		w.started = at
		w.collided = false
	}

	dequeue := func(at float64) {
		if cfg.Stagger != StaggerToken {
			return
		}
		var next *legacyWorker
		for _, w := range ws {
			if w.state == wQueued && (next == nil || w.queueSeq < next.queueSeq) {
				next = w
			}
		}
		if next == nil {
			return
		}
		res.QueueWaitSec += at - next.queuedSince
		startTransfer(next, at, next.wantRecovery)
	}

	finishTransfer := func(w *legacyWorker, at float64) {
		res.MBMoved += w.totalMB
		transferDurations = append(transferDurations, at-w.started)
		if w.collided {
			res.Collisions++
		}
		if w.state == wTransferring {
			res.CommittedWork += w.topt
			res.Commits++
		}
		age := at - w.availStart
		w.topt = toptAt(age)
		w.state = wWorking
		w.workEnd = at + w.topt
		w.collided = false
		dequeue(at)
	}

	fail := func(w *legacyWorker, at float64) {
		res.Failures++
		heldToken := false
		switch w.state {
		case wWorking:
			res.LostWork += w.topt - (w.workEnd - at)
		case wTransferring:
			res.LostWork += w.topt
			res.MBMoved += w.totalMB - w.bytesLeft
			heldToken = true
		case wRecovering:
			res.MBMoved += w.totalMB - w.bytesLeft
			heldToken = true
		case wQueued:
			res.QueueWaitSec += at - w.queuedSince
			if !w.wantRecovery {
				res.LostWork += w.topt
			}
		}
		w.state = wWorking
		w.availStart = at
		w.failAt = at + cfg.Avail.Rand(rng)
		if heldToken {
			dequeue(at)
		}
		startTransfer(w, at, true)
	}

	for i := range ws {
		ws[i] = &legacyWorker{
			availStart: 0,
			failAt:     cfg.Avail.Rand(rng),
			state:      wWorking,
		}
	}
	for _, w := range ws {
		startTransfer(w, 0, true)
	}

	for now < cfg.Duration {
		n := transferring()
		if n > res.MaxConcurrent {
			res.MaxConcurrent = n
		}
		if n > 1 {
			for _, w := range ws {
				if w.state == wRecovering || w.state == wTransferring {
					w.collided = true
				}
			}
		}
		rate := cfg.LinkMBps / math.Max(1, float64(n))

		next := cfg.Duration
		for _, w := range ws {
			switch w.state {
			case wRecovering, wTransferring:
				if t := now + w.bytesLeft/rate; t < next {
					next = t
				}
			case wWorking:
				if w.workEnd < next {
					next = w.workEnd
				}
			}
			if w.failAt < next {
				next = w.failAt
			}
		}
		dt := next - now

		for _, w := range ws {
			if w.state == wRecovering || w.state == wTransferring {
				w.bytesLeft -= rate * dt
			}
		}
		now = next
		if now >= cfg.Duration {
			break
		}

		for _, w := range ws {
			if w.failAt <= now+1e-9 {
				fail(w, now)
				continue
			}
			switch w.state {
			case wRecovering, wTransferring:
				if w.bytesLeft <= 1e-9 {
					finishTransfer(w, now)
				}
			case wWorking:
				if w.workEnd <= now+1e-9 {
					startTransfer(w, now, false)
				}
			}
		}
	}

	total := float64(cfg.Workers) * cfg.Duration
	res.Efficiency = res.CommittedWork / total
	if len(transferDurations) > 0 {
		sum := 0.0
		for _, d := range transferDurations {
			sum += d
		}
		res.MeanTransferSec = sum / float64(len(transferDurations))
	}
	return res, nil
}
