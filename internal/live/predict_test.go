package live

import (
	"reflect"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

func predictCampaign(t *testing.T, cfg predict.Config, policy predict.Policy, link ckptnet.Link) *Campaign {
	t.Helper()
	machines, history := testbed(t, 12, 7)
	c, err := RunCampaign(CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            link,
		SamplesPerModel: 3,
		Seed:            7,
		Predict:         cfg,
		Policy:          policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A disabled predictor must leave the campaign bit-identical to one
// that never heard of prediction, whatever the policy says.
func TestCampaignDisabledPredictorChangesNothing(t *testing.T) {
	base := predictCampaign(t, predict.Config{}, predict.PolicyReactive, ckptnet.CampusLink())
	for _, policy := range []predict.Policy{predict.PolicyProactive, predict.PolicyMigrate} {
		got := predictCampaign(t, predict.Config{}, policy, ckptnet.CampusLink())
		if !reflect.DeepEqual(base.Samples, got.Samples) {
			t.Errorf("policy %v with disabled predictor diverged", policy)
		}
	}
}

// Reactive sessions count alarms without acting on them, and the
// physics stay bit-identical: alarm draws come from a private stream
// and reactive alarms change no transfer or schedule decisions.
func TestCampaignReactiveCountsButDoesNotAct(t *testing.T) {
	base := predictCampaign(t, predict.Config{}, predict.PolicyReactive, ckptnet.CampusLink())
	got := predictCampaign(t, predict.Config{Precision: 0.5, Recall: 0.8, LeadSec: 300},
		predict.PolicyReactive, ckptnet.CampusLink())
	fired, hits, falses, missed, proactive, migrations, _ := got.PredictionTotals()
	if fired == 0 || hits == 0 {
		t.Errorf("expected alarms, got fired=%d hits=%d", fired, hits)
	}
	if falses == 0 {
		t.Error("precision 0.5 fired no false alarms")
	}
	if hits+missed != len(got.Samples) {
		t.Errorf("hits %d + missed %d != %d sessions", hits, missed, len(got.Samples))
	}
	if proactive != 0 || migrations != 0 {
		t.Errorf("reactive campaign acted: proactive=%d migrations=%d", proactive, migrations)
	}
	for i := range got.Samples {
		if got.Samples[i].SessionSec != base.Samples[i].SessionSec ||
			got.Samples[i].MBMoved != base.Samples[i].MBMoved ||
			got.Samples[i].CommittedWork != base.Samples[i].CommittedWork {
			t.Fatalf("reactive predictor changed session %d physics", i)
		}
	}
}

func TestCampaignProactivePolicy(t *testing.T) {
	base := predictCampaign(t, predict.Config{}, predict.PolicyReactive, ckptnet.CampusLink())
	got := predictCampaign(t, predict.Perfect(300), predict.PolicyProactive, ckptnet.CampusLink())
	_, hits, falses, missed, proactive, _, _ := got.PredictionTotals()
	if proactive == 0 {
		t.Fatal("no proactive checkpoints committed")
	}
	if falses != 0 || missed != 0 {
		t.Errorf("perfect predictor: false=%d missed=%d", falses, missed)
	}
	if hits != len(got.Samples) {
		t.Errorf("hits %d != %d sessions", hits, len(got.Samples))
	}
	var baseLost, gotLost float64
	for i := range base.Samples {
		baseLost += base.Samples[i].LostWork
		gotLost += got.Samples[i].LostWork
	}
	if gotLost >= baseLost {
		t.Errorf("proactive lost %g >= reactive lost %g", gotLost, baseLost)
	}
}

func TestCampaignMigratePolicy(t *testing.T) {
	got := predictCampaign(t, predict.Perfect(300), predict.PolicyMigrate, ckptnet.CampusLink())
	_, _, _, _, _, migrations, migrationMB := got.PredictionTotals()
	if migrations == 0 {
		t.Fatal("no migrations completed")
	}
	if migrationMB != float64(migrations)*500 {
		t.Errorf("migration MB %g, want %g", migrationMB, float64(migrations)*500)
	}
	var sawMigrated bool
	for _, s := range got.Samples {
		if s.Migrated {
			sawMigrated = true
			if s.Migrations == 0 {
				t.Errorf("migrated sample has no migration count: %+v", s)
			}
			// A migrated session ended before the owner's reclaim.
			if s.SessionSec <= 0 {
				t.Errorf("migrated sample has no session time: %+v", s)
			}
			if s.MigrationMB > s.MBMoved {
				t.Errorf("migration MB %g exceeds session total %g", s.MigrationMB, s.MBMoved)
			}
			// No eviction was experienced: neither hit nor miss.
			if s.PredHits != 0 || s.PredMissed != 0 {
				t.Errorf("migrated sample settled hit/miss: %+v", s)
			}
		}
	}
	if !sawMigrated {
		t.Error("no sample carries the Migrated flag")
	}
}

// Prediction-triggered checkpoints must also work over a chaos link —
// the live acceptance scenario — with migrations surviving retries.
func TestCampaignPredictUnderChaos(t *testing.T) {
	chaos := ckptnet.ChaosLink{
		Inner: ckptnet.CampusLink(),
		Faults: ckptnet.LinkFaultConfig{
			TearProb:   0.20,
			StallProb:  0.10,
			StallSec:   30,
			OutageProb: 0.15,
		},
	}
	got := predictCampaign(t, predict.Config{Precision: 0.85, Recall: 0.8, LeadSec: 240},
		predict.PolicyMigrate, chaos)
	if len(got.Samples) != 12 {
		t.Fatalf("samples = %d, want 12 (no aborted sessions)", len(got.Samples))
	}
	fired, _, _, _, _, migrations, migrationMB := got.PredictionTotals()
	if fired == 0 {
		t.Error("no alarms fired under chaos")
	}
	if migrations == 0 {
		t.Error("no migrations under chaos")
	}
	if migrations > 0 && migrationMB <= 0 {
		t.Error("migrations moved no bytes")
	}
}

func TestCampaignPredictDeterminism(t *testing.T) {
	run := func() *Campaign {
		return predictCampaign(t, predict.Config{Precision: 0.6, Recall: 0.7, LeadSec: 200},
			predict.PolicyMigrate, ckptnet.CampusLink())
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Error("predict campaign not deterministic")
	}
}

func TestCampaignRejectsInvalidPredict(t *testing.T) {
	machines, history := testbed(t, 3, 7)
	_, err := RunCampaign(CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 1,
		Seed:            7,
		Predict:         predict.Config{Precision: -1, Recall: 0.5},
	})
	if err == nil {
		t.Error("invalid predictor config accepted")
	}
}
