// Package live reproduces the paper's §5.2 "live Condor" experiment
// under virtual time: instrumented test processes are repeatedly
// submitted to a (simulated) Condor pool, each one measuring its
// recovery and checkpoint transfer times over a network link, using
// the measured cost to recompute T_opt at every interval, and dying
// without warning when the hosting machine's owner returns.
//
// Unlike the trace-driven simulator (internal/sim), transfer costs
// here are variable (drawn from the link model per transfer, exactly
// as real shared networks behave), schedules are recomputed from
// measured costs, and the per-machine model parameters come from the
// same 18-month trace archive the occupancy monitors collected —
// matching the paper's experimental protocol, including its
// right-censoring artifacts (§5.3).
//
// # Execution model
//
// A campaign runs in two phases. The allocation pre-pass plays the
// pool's discrete-event loop with "ghost" jobs — placeholders that
// occupy machines exactly as the real test processes would but do no
// session work — to learn every sample's placement: (machine, start
// time, T_elapsed, eviction time). This is exact, not approximate: the
// pool draws its RNG only on machine idle/busy transitions, an idle
// period's length is fixed the moment it begins, and a Vanilla job
// holds its machine from placement to owner reclaim, so the machine
// timeline and matchmaking sequence are independent of anything a job
// does between those two instants.
//
// The replay phase then simulates each sample's session — the
// recover/work/checkpoint state machine — on a private virtual clock
// with a private RNG derived from (campaign seed, sample index). The
// sessions share no mutable state, so they run on a bounded worker
// pool; because each task's RNG stream and allocation are fixed ahead
// of time and results land in a pre-sized slice by index, the campaign
// is bit-identical at any GOMAXPROCS and any worker count.
package live

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/forecast"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/predict"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// CampaignConfig drives one live-experiment campaign (one manager
// placement → one table).
type CampaignConfig struct {
	// Machines is the pool.
	Machines []condor.Machine
	// History is the per-machine availability archive used to fit the
	// model a process is told to use (the paper's previous 18 months
	// of monitor data).
	History *trace.Set
	// Link models the path between pool machines and the checkpoint
	// manager (campus vs wide-area).
	Link ckptnet.Link
	// CheckpointMB is the image size (the paper uses 500).
	CheckpointMB float64
	// SamplesPerModel is how many test-process runs to collect per
	// model family.
	SamplesPerModel int
	// MinHistory is the minimum records needed to fit a machine's own
	// trace; machines with less use the pooled trace. Default 25.
	MinHistory int
	// RequiresMB is the job's memory requirement. Default 512 (the
	// paper's test application holds a 500 MB image).
	RequiresMB int
	// HeartbeatSec is the heartbeat period. Default 10.
	HeartbeatSec float64
	// Concurrency keeps this many test processes in flight at once
	// (default 1, the sequential protocol). The paper's overlapping
	// submissions correspond to values above 1.
	Concurrency int
	// UseForecast schedules with NWS-style network-performance
	// predictions (the system the paper describes: availability model
	// + predicted transfer cost) instead of the last measured
	// transfer time (the simpler estimator the paper's live test
	// process uses). The predictor learns from every completed
	// transfer across the whole campaign, since all processes share
	// one path to the manager — which is why forecast campaigns replay
	// their sessions in submission order rather than in parallel.
	UseForecast bool
	// Seed makes the campaign deterministic.
	Seed int64
	// Tracer, when set, records one "session" span per sample (pid =
	// TracePidBase + sample index + 1) with per-interval "topt" events,
	// transfer child spans, and retry/fallback/evicted events — all
	// timestamped on the campaign's virtual clock (allocation start +
	// session time), so the export is byte-identical at any GOMAXPROCS
	// (DESIGN.md §12).
	Tracer *obs.Tracer
	// TracePidBase offsets this campaign's trace lanes so several
	// campaigns can share one tracer without colliding pids.
	TracePidBase uint64
	// Wire, when set, receives every byte that crosses the link, binned
	// by virtual campaign time (allocation start + session time) — the
	// network-overhead-vs-time series the paper plots. ByteSeries bins
	// are commuting integer atomics, so the series is deterministic
	// even when sessions replay in parallel.
	Wire *obs.ByteSeries
	// WireBins, when positive and Wire is nil, has RunCampaign size the
	// series itself: the allocation pre-pass fixes the campaign's
	// virtual span before any session runs, so the bin width is
	// span/WireBins. The filled series comes back on Campaign.Wire.
	WireBins int
	// Delta configures content-addressed delta checkpointing (the
	// ckptnet image store, DESIGN.md §16): after the first full image
	// lands at the manager, each checkpoint ships only the chunks the
	// interval's work dirtied. The zero value disables delta entirely
	// and leaves the campaign bit-identical to earlier builds.
	Delta DeltaPolicy
	// Predict configures the oracle fault predictor (DESIGN.md §13):
	// each session draws its alarms from a private stream derived from
	// (Seed, sample index) via predict.StreamSeed, so enabling
	// prediction never perturbs the session's transfer or chaos draws.
	// The zero value disables prediction entirely.
	Predict predict.Config
	// Policy selects how sessions act on predictor alarms. Ignored
	// (reactive) when Predict is disabled.
	Policy predict.Policy
}

// DeltaPolicy configures delta checkpointing for a campaign. The
// dirtying law matches internal/imagestore: each chunk is touched by
// an independent Poisson process, so after T seconds of uncommitted
// work a fraction 1−exp(−DirtyRate·T) of the image is dirty. Wire
// volume per checkpoint is the dirty chunk count rounded to whole
// chunks — a deterministic function of the session's work history, so
// enabling delta adds no RNG draws and preserves the campaign's
// bit-identical replay contract.
type DeltaPolicy struct {
	// Enabled turns delta checkpointing on.
	Enabled bool
	// ChunkKB is the dedup chunk size in KiB (default 64, matching
	// imagestore.DefaultChunkSize).
	ChunkKB int
	// DirtyRate is the per-chunk dirtying rate in 1/seconds (default
	// 0.002: a chunk's expected untouched lifetime is ~8 minutes).
	DirtyRate float64
	// VariableCost schedules with the interval-dependent cost curve
	// C(T) built from forecast.CostModel over the session's bandwidth
	// estimate, instead of the constant last-measured cost. Requires
	// Enabled.
	VariableCost bool
}

func (c *CampaignConfig) setDefaults() {
	if c.MinHistory <= 0 {
		c.MinHistory = trace.DefaultTrainingSize
	}
	if c.Delta.Enabled {
		if c.Delta.ChunkKB <= 0 {
			c.Delta.ChunkKB = 64
		}
		if c.Delta.DirtyRate <= 0 {
			c.Delta.DirtyRate = 0.002
		}
	}
	if c.RequiresMB <= 0 {
		c.RequiresMB = 512
	}
	if c.HeartbeatSec <= 0 {
		c.HeartbeatSec = 10
	}
	if c.CheckpointMB <= 0 {
		c.CheckpointMB = 500
	}
}

// Sample is one test-process run, the unit the paper's Tables 4 and 5
// aggregate.
type Sample struct {
	// Model is the availability model the process scheduled with.
	Model fit.Model
	// Machine hosted the run.
	Machine string
	// TElapsed is the machine age at process start.
	TElapsed float64
	// SessionSec is the total occupied time (start to eviction).
	SessionSec float64
	// CommittedWork is work time whose checkpoint completed.
	CommittedWork float64
	// LostWork is work time lost to the eviction.
	LostWork float64
	// TransferSec is total time in recovery + checkpoint transfers.
	TransferSec float64
	// MBMoved is the network volume, interrupted transfers prorated.
	MBMoved float64
	// Intervals counts T_opt computations; Checkpoints counts
	// completed checkpoint transfers; Heartbeats counts heartbeat
	// messages.
	Intervals, Checkpoints, Heartbeats int
	// DeltaCheckpoints counts completed checkpoint transfers that
	// shipped as deltas (strictly fewer bytes than the full image);
	// zero unless the campaign enabled DeltaPolicy.
	DeltaCheckpoints int
	// MeasuredCs are the per-transfer measured costs (recovery first).
	MeasuredCs []float64
	// Retries counts transfer attempts re-tried after a torn transfer
	// (chaos campaigns only).
	Retries int
	// Torn counts transfer attempts that died partway.
	Torn int
	// Fallbacks counts intervals scheduled without a fresh T_opt — the
	// manager was unreachable or every transfer retry failed, so the
	// process degraded to its last assigned schedule (or the
	// conservative exponential interval).
	Fallbacks int
	// BackoffSec is total virtual time spent waiting between transfer
	// retries.
	BackoffSec float64
	// Predictions counts predictor alarms fired during the session
	// (true and false); PredHits/PredMissed record whether the eviction
	// arrived warned or unwarned, and PredFalse counts false alarms.
	Predictions, PredHits, PredFalse, PredMissed int
	// ProactiveCkpts counts alarm-triggered checkpoints that committed;
	// Migrations counts completed prediction-triggered migrations and
	// MigrationMB the megabytes they moved (a subset of MBMoved).
	ProactiveCkpts, Migrations int
	MigrationMB                float64
	// Migrated reports that the session ended by migrating off the
	// machine before the owner's reclaim rather than by eviction.
	Migrated bool
}

// Efficiency is the run's committed-work fraction.
func (s Sample) Efficiency() float64 {
	if s.SessionSec <= 0 {
		return 0
	}
	return s.CommittedWork / s.SessionSec
}

// Campaign is the outcome of RunCampaign.
type Campaign struct {
	// Samples holds every run, in submission order.
	Samples []Sample
	// LinkName echoes the link profile.
	LinkName string
	// Wire is the bytes-on-wire time series (nil unless the config set
	// Wire or WireBins).
	Wire *obs.ByteSeries
}

// ByModel groups the samples by model family.
func (c *Campaign) ByModel() map[fit.Model][]Sample {
	out := make(map[fit.Model][]Sample)
	for _, s := range c.Samples {
		out[s.Model] = append(out[s.Model], s)
	}
	return out
}

// ChaosTotals sums the resilience counters across every sample — the
// campaign-level retry/torn/fallback totals the chaos reports print.
// All zero for a campaign run over a fault-free link.
func (c *Campaign) ChaosTotals() (retries, torn, fallbacks int, backoffSec float64) {
	for _, s := range c.Samples {
		retries += s.Retries
		torn += s.Torn
		fallbacks += s.Fallbacks
		backoffSec += s.BackoffSec
	}
	return
}

// PredictionTotals sums the predictor counters across every sample —
// the campaign-level figures the chaos session summary prints. All
// zero for a campaign run without a predictor.
func (c *Campaign) PredictionTotals() (fired, hits, falses, missed, proactive, migrations int, migrationMB float64) {
	for _, s := range c.Samples {
		fired += s.Predictions
		hits += s.PredHits
		falses += s.PredFalse
		missed += s.PredMissed
		proactive += s.ProactiveCkpts
		migrations += s.Migrations
		migrationMB += s.MigrationMB
	}
	return
}

// chaosLink is the fault-injection surface a link may expose beyond
// plain transfer times; ckptnet.ChaosLink implements it. When the
// campaign's Link satisfies it the runner switches into resilient
// mode: transfer attempts may tear and are retried with exponential
// backoff, and a schedule recomputation may find the manager
// unreachable, degrading the process onto its previous schedule.
type chaosLink interface {
	ckptnet.Link
	Attempt(bytes int64, rng *rand.Rand) ckptnet.TransferAttempt
	Unreachable(rng *rand.Rand) bool
	MaxAttempts() int
	BackoffSec(attempt int, rng *rand.Rand) float64
}

// modelFor returns the model family assigned to sample idx: submissions
// rotate across the four families exactly as the paper alternates its
// test processes.
func modelFor(idx int) fit.Model {
	return fit.Models[idx%len(fit.Models)]
}

// taskSeed derives sample idx's private RNG seed from the campaign
// seed via a splitmix64 round, so per-sample streams are decorrelated
// and independent of execution order. This derivation is part of the
// campaign's determinism contract: the sequence of random draws a
// session sees depends only on (Seed, idx), never on which worker ran
// it or when.
func taskSeed(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// RunCampaign executes the live experiment: SamplesPerModel runs for
// each of the four models, rotating model assignment across
// submissions exactly as the paper alternates its test processes.
// With Concurrency > 1, that many test processes are kept in flight
// simultaneously, contending for pool machines the way the paper's
// overlapping submissions did (its per-table total time far exceeds
// the 2-day experimental window).
//
// The campaign is deterministic for a fixed config: the allocation
// pre-pass fixes every sample's placement, and each session replays on
// a private RNG seeded from (Seed, sample index), so the result is
// bit-identical regardless of GOMAXPROCS or scheduling order.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	cfg.setDefaults()
	if len(cfg.Machines) == 0 {
		return nil, errors.New("live: no machines")
	}
	if cfg.History == nil || len(cfg.History.Traces) == 0 {
		return nil, errors.New("live: no availability history")
	}
	if cfg.Link == nil {
		return nil, errors.New("live: no link model")
	}
	if cfg.SamplesPerModel <= 0 {
		return nil, errors.New("live: SamplesPerModel must be positive")
	}
	if err := cfg.Predict.Validate(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if cfg.Delta.VariableCost && !cfg.Delta.Enabled {
		return nil, errors.New("live: Delta.VariableCost requires Delta.Enabled")
	}

	fits, err := newFitCache(cfg.History, cfg.MinHistory)
	if err != nil {
		return nil, err
	}

	allocs, err := planAllocations(cfg, fits)
	if err != nil {
		return nil, err
	}
	if cfg.Wire == nil && cfg.WireBins > 0 {
		span := 0.0
		for _, al := range allocs {
			if al.evictAt > span {
				span = al.evictAt
			}
		}
		if span > 0 {
			cfg.Wire = obs.NewByteSeries(span/float64(cfg.WireBins), cfg.WireBins)
		}
	}

	total := len(allocs)
	samples := make([]Sample, total)
	chaos, _ := cfg.Link.(chaosLink)

	if cfg.UseForecast {
		// The bandwidth predictor learns from every completed transfer
		// across the campaign, coupling the sessions; replay them
		// sequentially in submission order so the learning sequence is
		// well-defined (and still deterministic).
		predictor := forecast.NewBandwidthPredictor()
		for idx := range allocs {
			rng := rand.New(rand.NewSource(taskSeed(cfg.Seed, idx)))
			s, err := runSession(cfg, chaos, fits, predictor, idx, allocs[idx], rng)
			if err != nil {
				return nil, err
			}
			samples[idx] = s
		}
		return &Campaign{LinkName: cfg.Link.Name(), Samples: samples, Wire: cfg.Wire}, nil
	}

	// Sessions are independent: fan out over a bounded worker pool.
	workers := min(runtime.GOMAXPROCS(0), total)
	errs := make([]error, total)
	idxc := make(chan int)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxc {
				rng := rand.New(rand.NewSource(taskSeed(cfg.Seed, idx)))
				samples[idx], errs[idx] = runSession(cfg, chaos, fits, nil, idx, allocs[idx], rng)
			}
		}()
	}
	for idx := range allocs {
		idxc <- idx
	}
	close(idxc)
	wg.Wait()
	// Resolve a failure deterministically: the smallest failing index
	// wins, independent of worker interleaving.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Campaign{LinkName: cfg.Link.Name(), Samples: samples, Wire: cfg.Wire}, nil
}

// allocation is one sample's placement, learned by the pre-pass: which
// machine hosted it, when it started, how long the machine had been
// idle, and when the owner reclaimed it.
type allocation struct {
	machine condor.Machine
	start   float64
	tel     float64
	evictAt float64
}

// planAllocations plays the pool's event loop with ghost jobs to learn
// every sample's (machine, start, T_elapsed, eviction) tuple. Ghosts
// reproduce the real submission protocol exactly — Concurrency jobs in
// flight, each eviction submitting the next pending sample from the
// event loop — and occupy machines from placement to reclaim, which is
// all the pool ever observes of a job. Model fits are validated here
// too (first failing allocation in event order aborts, matching the
// in-loop protocol), so the replay phase cannot fail on fits.
func planAllocations(cfg CampaignConfig, fits *fitCache) ([]allocation, error) {
	pool, err := condor.NewPool(cfg.Machines, cfg.Seed)
	if err != nil {
		return nil, err
	}
	total := cfg.SamplesPerModel * len(fit.Models)
	allocs := make([]allocation, total)
	clock := pool.Clock()

	var (
		nextIdx   int
		completed int
		failErr   error
	)
	var submitNext func() error
	ghost := func(idx int) *condor.Job {
		model := modelFor(idx)
		job := &condor.Job{
			Name:       fmt.Sprintf("testproc-%04d-%s", idx, model),
			RequiresMB: cfg.RequiresMB,
		}
		job.OnStart = func(a condor.Alloc) {
			allocs[idx] = allocation{machine: a.Machine, start: a.Start, tel: a.TElapsed}
			if _, fitErr := fits.fitFor(a.Machine.Name, model); fitErr != nil && failErr == nil {
				// A broken archive is a configuration error; abort with
				// the first allocation that trips over it.
				failErr = fmt.Errorf("live: sample %d (%v): %w", idx, model, fitErr)
			}
		}
		job.OnEvict = func(at float64) {
			allocs[idx].evictAt = at
			completed++
			// Submit the successor from the event loop (pool methods
			// must not be called synchronously from job hooks).
			clock.Schedule(0, func() {
				if err := submitNext(); err != nil && failErr == nil {
					failErr = err
				}
			})
		}
		return job
	}
	submitNext = func() error {
		if nextIdx >= total {
			return nil
		}
		idx := nextIdx
		nextIdx++
		return pool.Submit(ghost(idx))
	}

	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if conc > total {
		conc = total
	}
	for range conc {
		if err := submitNext(); err != nil {
			return nil, err
		}
	}
	for completed < total && failErr == nil {
		if !clock.Step() {
			return nil, errors.New("live: pool ran out of events before the campaign completed")
		}
	}
	if failErr != nil {
		return nil, failErr
	}
	return allocs, nil
}

// runSession simulates one test process's session — the
// recover/work/checkpoint state machine between placement and
// eviction — on a private virtual clock starting at 0 (session times
// are relative; nothing in a session depends on absolute pool time).
// It is the unit of replay-phase parallelism: everything it touches is
// private except the concurrency-safe fit cache and, for forecast
// campaigns, the shared predictor (in which case sessions run
// sequentially). Over a chaosLink the machine gains two extra
// behaviors: torn transfers are retried with exponential backoff
// (phaseBackoff), and manager outages degrade the schedule to the last
// assigned interval instead of aborting.
func runSession(cfg CampaignConfig, chaos chaosLink, fits *fitCache, predictor *forecast.BandwidthPredictor, idx int, al allocation, rng *rand.Rand) (Sample, error) {
	type phase int
	const (
		phaseRecovering phase = iota
		phaseWorking
		phaseCheckpointing
		phaseBackoff
	)

	var (
		s           Sample
		clock       condor.Clock
		evicted     bool
		measuredC   float64
		topt        float64
		pendingWork float64 // work computed but not yet committed by a checkpoint
		ph          phase
		phaseT0     float64 // virtual time the current phase began
		phaseDur    float64 // planned phase duration
		pending     *condor.Event
		migrating   bool // current transfer is a prediction-triggered migration
		predTrue    bool // a true alarm fired this session
		alarmIdx    int  // alarms settled so far (fired or flushed)
	)
	model := modelFor(idx)
	s.Model = model
	s.Machine = al.machine.Name
	s.TElapsed = al.tel
	tel := al.tel
	sessionLen := al.evictAt - al.start
	bytes := int64(cfg.CheckpointMB * ckptnet.MB)

	// Delta checkpointing state: hasBase becomes true once a full image
	// has landed at the manager (the recovery transfer), after which
	// checkpoints ship only dirty chunks. The wire size is a
	// deterministic function of the uncommitted-work window, so the
	// delta path draws exactly the same RNG sequence as the full path.
	var (
		hasBase bool
		fullSec float64 // last measured full-image transfer time (recovery)
	)
	chunkBytes := int64(cfg.Delta.ChunkKB) << 10
	var numChunks int64
	if cfg.Delta.Enabled && chunkBytes > 0 {
		numChunks = (bytes + chunkBytes - 1) / chunkBytes
	}
	// deltaWire is the expected bytes-on-wire for a checkpoint taken
	// after workSec seconds of uncommitted work, rounded to whole
	// chunks (at least one: the manifest always moves something).
	deltaWire := func(workSec float64) int64 {
		f := -math.Expm1(-cfg.Delta.DirtyRate * workSec)
		dirty := int64(math.Round(float64(numChunks) * f))
		if dirty < 1 {
			dirty = 1
		}
		wire := dirty * chunkBytes
		if wire > bytes {
			wire = bytes
		}
		return wire
	}

	d, fitErr := fits.fitFor(al.machine.Name, model)
	if fitErr != nil {
		// Unreachable in practice: the allocation pre-pass validated
		// this exact fit and the cache memoizes it.
		return Sample{}, fmt.Errorf("live: sample %d (%v): %w", idx, model, fitErr)
	}

	// Trace lane: one pid per sample, timestamps on the campaign's
	// virtual axis (allocation start + session-local time).
	tr := cfg.Tracer
	pid := cfg.TracePidBase + uint64(idx) + 1
	abs := func(t float64) float64 { return al.start + t }

	// Oracle fault predictor: this session's alarms come from a private
	// stream derived from (Seed, idx), so the session's transfer and
	// chaos draws on rng are untouched whether or not prediction is on.
	// Predictor events live on their own trace lane (tid 2).
	var pred *predict.Predictor
	var alarms []predict.Event
	if cfg.Predict.Enabled() {
		pred, _ = predict.New(cfg.Predict) // RunCampaign vetted the config
		prng := rand.New(rand.NewSource(predict.StreamSeed(taskSeed(cfg.Seed, idx))))
		alarms = pred.PeriodEvents(sessionLen, prng)
	}
	countAlarm := func(ev predict.Event) {
		s.Predictions++
		if ev.True {
			predTrue = true
		} else {
			s.PredFalse++
		}
		tr.EventAt(pid, 2, "predict.fired", abs(ev.At), obs.AttrBool("true", ev.True))
		if !ev.True {
			tr.EventAt(pid, 2, "predict.false", abs(ev.At))
		}
	}

	planningC := func() float64 {
		if predictor != nil {
			if sec, err := predictor.PredictTransferSec(bytes); err == nil {
				return sec
			}
		}
		return measuredC
	}
	// bandwidthEst anchors the variable-cost curve: the shared forecast
	// when one is running, else the session's own full-image recovery
	// measurement (delta transfer times are the wrong anchor — their
	// size varies with the interval, which is the very thing the curve
	// models).
	bandwidthEst := func() float64 {
		if predictor != nil {
			if bw, err := predictor.Bandwidth(); err == nil {
				return bw
			}
		}
		if fullSec > 0 {
			return float64(bytes) / fullSec
		}
		return 0
	}
	// ageNow is the hosting resource's age: phases are contiguous in
	// virtual time (including retry backoff), so age is always the
	// allocation age plus the session's elapsed time.
	ageNow := func() float64 { return tel + clock.Now() }

	var beginWork func()
	var beginCheckpoint func()
	var doTransfer func(kind phase, attempt int, onDone, onFail func(sec float64))

	// doTransfer moves one checkpoint image over the link. On a clean
	// link it is exactly one draw from the transfer-time model. Over a
	// chaosLink an attempt may tear partway; torn attempts are retried
	// after exponential backoff, up to the link's MaxAttempts, after
	// which onFail degrades the process (sec = the last attempt's
	// estimated full duration, the process's best remaining cost
	// estimate).
	// transferName maps a transfer phase to its trace-span name.
	transferName := func(kind phase) string {
		if kind == phaseRecovering {
			return "transfer.recovery"
		}
		if migrating {
			return "transfer.migrate"
		}
		return "transfer.checkpoint"
	}

	doTransfer = func(kind phase, attempt int, onDone, onFail func(sec float64)) {
		t0 := clock.Now()
		// Size the transfer: checkpoints over an established base ship
		// only the chunks dirtied since the last commit. Retries recompute
		// the same size (pendingWork is untouched during backoff).
		xfer, mb := bytes, cfg.CheckpointMB
		isDelta := false
		if kind == phaseCheckpointing && cfg.Delta.Enabled && hasBase {
			xfer = deltaWire(pendingWork)
			mb = float64(xfer) / ckptnet.MB
			isDelta = xfer < bytes
		}
		committed := func(sec float64) {
			if isDelta {
				s.DeltaCheckpoints++
			}
			if predictor != nil {
				_ = predictor.Observe(xfer, sec) // sized and timed here, so never invalid
			}
			onDone(sec)
		}
		if chaos == nil {
			dur := cfg.Link.TransferTime(xfer, rng)
			ph, phaseT0, phaseDur = kind, t0, dur
			pending = clock.Schedule(dur, func() {
				s.TransferSec += dur
				s.MBMoved += mb
				cfg.Wire.Add(abs(clock.Now()), xfer)
				tr.SpanAt(pid, 1, transferName(kind), abs(t0), dur,
					obs.AttrStr("outcome", "done"), obs.AttrFloat("mb", mb))
				committed(dur)
			})
			return
		}
		a := chaos.Attempt(xfer, rng)
		ph, phaseT0, phaseDur = kind, t0, a.FullSec
		if !a.Torn {
			pending = clock.Schedule(a.Sec, func() {
				s.TransferSec += a.Sec
				s.MBMoved += mb
				cfg.Wire.Add(abs(clock.Now()), xfer)
				tr.SpanAt(pid, 1, transferName(kind), abs(t0), a.Sec,
					obs.AttrStr("outcome", "done"), obs.AttrFloat("mb", mb))
				committed(a.Sec)
			})
			return
		}
		pending = clock.Schedule(a.Sec, func() {
			s.Torn++
			s.TransferSec += a.Sec
			if a.FullSec > 0 {
				s.MBMoved += mb * a.Sec / a.FullSec
				cfg.Wire.Add(abs(clock.Now()), int64(float64(xfer)*a.Sec/a.FullSec+0.5))
			}
			tr.SpanAt(pid, 1, transferName(kind), abs(t0), a.Sec,
				obs.AttrStr("outcome", "torn"), obs.AttrInt("attempt", int64(attempt)))
			tr.EventAt(pid, 1, "torn_frame", abs(clock.Now()),
				obs.AttrInt("attempt", int64(attempt)))
			if attempt >= chaos.MaxAttempts() {
				onFail(a.FullSec)
				return
			}
			s.Retries++
			bo := chaos.BackoffSec(attempt, rng)
			s.BackoffSec += bo
			tr.EventAt(pid, 1, "retry", abs(clock.Now()),
				obs.AttrInt("attempt", int64(attempt)), obs.AttrFloat("backoff_s", bo))
			ph, phaseT0, phaseDur = phaseBackoff, clock.Now(), bo
			pending = clock.Schedule(bo, func() {
				doTransfer(kind, attempt+1, onDone, onFail)
			})
		})
	}

	beginWork = func() {
		age := ageNow()
		planC := planningC()
		degraded := false
		if chaos != nil && chaos.Unreachable(rng) {
			// Manager unreachable: degrade to the last assigned
			// schedule rather than abort; a process that never got one
			// falls back to the conservative exponential interval.
			if topt <= 0 {
				topt = conservativeTopt(fits, cfg.HeartbeatSec, planC, age)
			}
			s.Fallbacks++
			degraded = true
			tr.EventAt(pid, 1, "fallback", abs(clock.Now()),
				obs.AttrStr("cause", "unreachable"), obs.AttrFloat("t_opt", topt))
		} else {
			costs := markov.Costs{C: planC, R: planC, L: planC}
			m := markov.Model{Avail: d, Costs: costs}
			if cfg.Delta.VariableCost {
				// Schedule against the interval-dependent delta cost
				// C(T): a longer interval dirties more chunks and ships
				// more bytes. A nil curve (no bandwidth anchor yet)
				// falls back to the constant measured cost.
				m.CostFn = forecast.CostModel{
					FullBytes: bytes,
					DirtyRate: cfg.Delta.DirtyRate,
				}.Curve(bandwidthEst())
			}
			var err error
			topt, _, err = m.Topt(age, markov.OptimizeOptions{})
			if err != nil {
				// No feasible interval under the planned cost (the model
				// believes restart cannot complete): fall back to a
				// minimal interval so the process keeps making progress.
				topt = planC
			}
		}
		s.Intervals++
		tr.EventAt(pid, 1, "topt", abs(clock.Now()),
			obs.AttrFloat("t_opt", topt),
			obs.AttrFloat("age", age),
			obs.AttrFloat("measured_c", planC),
			obs.AttrBool("fallback", degraded))
		ph, phaseT0, phaseDur = phaseWorking, clock.Now(), topt
		pending = clock.Schedule(topt, beginCheckpoint)
	}

	beginCheckpoint = func() {
		// Work interval finished; heartbeats were sent every
		// HeartbeatSec during it. The interval's work stays pending
		// until a checkpoint transfer commits it.
		s.Heartbeats += int(phaseDur / cfg.HeartbeatSec)
		pendingWork += topt
		doTransfer(phaseCheckpointing, 1, func(sec float64) {
			// Checkpoint committed — including any work a previously
			// abandoned checkpoint left uncommitted.
			s.CommittedWork += pendingWork
			pendingWork = 0
			s.Checkpoints++
			s.MeasuredCs = append(s.MeasuredCs, sec)
			measuredC = sec
			beginWork()
		}, func(est float64) {
			// Checkpoint abandoned after bounded retries: keep
			// computing on the degraded schedule; the work stays
			// pending until the next checkpoint goes through.
			if est > 0 {
				measuredC = est
			}
			s.Fallbacks++
			tr.EventAt(pid, 1, "fallback", abs(clock.Now()),
				obs.AttrStr("cause", "retries-exhausted"))
			beginWork()
		})
	}

	// Schedule the eviction before any session event so that, at equal
	// timestamps, the owner's reclaim outranks session activity (FIFO
	// tie-break) — the same precedence the pool gives it.
	clock.Schedule(sessionLen, func() {
		if pending != nil {
			pending.Cancel()
		}
		at := clock.Now()
		elapsed := at - phaseT0
		switch ph {
		case phaseRecovering, phaseCheckpointing:
			s.TransferSec += elapsed
			if phaseDur > 0 {
				s.MBMoved += cfg.CheckpointMB * elapsed / phaseDur
				cfg.Wire.Add(abs(at), int64(cfg.CheckpointMB*ckptnet.MB*elapsed/phaseDur+0.5))
			}
			if ph == phaseCheckpointing {
				s.LostWork += pendingWork
			}
		case phaseWorking:
			s.LostWork += pendingWork + elapsed
			s.Heartbeats += int(elapsed / cfg.HeartbeatSec)
		case phaseBackoff:
			// Evicted while waiting to retry a transfer: any
			// uncommitted work is lost with the machine.
			s.LostWork += pendingWork
		}
		s.SessionSec = at
		evicted = true
		tr.EventAt(pid, 1, "evicted", abs(at))
		// Settle the predictor's books: alarms due at the eviction
		// instant itself still fired, and the reclaim is a hit or a
		// miss depending on whether a true alarm preceded it.
		if pred != nil {
			for ; alarmIdx < len(alarms); alarmIdx++ {
				countAlarm(alarms[alarmIdx])
			}
			if predTrue {
				s.PredHits++
				tr.EventAt(pid, 2, "predict.hit", abs(at))
			} else {
				s.PredMissed++
				tr.EventAt(pid, 2, "predict.miss", abs(at))
			}
		}
	})

	// Predictor alarms fire as session events; scheduling them after
	// the eviction hook keeps the owner's reclaim first at equal
	// timestamps. An alarm only interrupts a work interval — a process
	// mid-transfer or mid-backoff has nothing new to save — and the
	// process cannot tell true alarms from false ones (that is what
	// precision costs).
	onAlarm := func(ev predict.Event) {
		alarmIdx++
		countAlarm(ev)
		if cfg.Policy == predict.PolicyReactive || ph != phaseWorking {
			return
		}
		elapsed := clock.Now() - phaseT0
		s.Heartbeats += int(elapsed / cfg.HeartbeatSec)
		pendingWork += elapsed
		if pending != nil {
			pending.Cancel()
		}
		migrating = cfg.Policy == predict.PolicyMigrate
		doTransfer(phaseCheckpointing, 1, func(sec float64) {
			s.CommittedWork += pendingWork
			pendingWork = 0
			s.MeasuredCs = append(s.MeasuredCs, sec)
			measuredC = sec
			if migrating {
				// The image is at the destination: the process leaves
				// the doomed machine and the session ends here.
				migrating = false
				s.Migrations++
				s.MigrationMB += cfg.CheckpointMB
				s.Migrated = true
				s.SessionSec = clock.Now()
				return
			}
			s.ProactiveCkpts++
			s.Checkpoints++
			beginWork()
		}, func(est float64) {
			// Retries exhausted shipping the image: the process stays
			// put on its degraded estimate, the work still pending.
			migrating = false
			if est > 0 {
				measuredC = est
			}
			s.Fallbacks++
			tr.EventAt(pid, 1, "fallback", abs(clock.Now()),
				obs.AttrStr("cause", "retries-exhausted"))
			beginWork()
		})
	}
	for _, ev := range alarms {
		clock.Schedule(ev.At, func() { onAlarm(ev) })
	}

	// Initial recovery transfer, timed by the process.
	doTransfer(phaseRecovering, 1, func(sec float64) {
		measuredC = sec
		fullSec = sec
		hasBase = true // the manager holds the full image we just fetched
		s.MeasuredCs = append(s.MeasuredCs, sec)
		beginWork()
	}, func(est float64) {
		// Recovery abandoned after bounded retries: start computing
		// from scratch, estimating the transfer cost from the torn
		// attempts' observed throughput.
		measuredC = est
		beginWork()
	})

	for !evicted && !s.Migrated && clock.Step() {
	}
	if !evicted && !s.Migrated {
		return Sample{}, fmt.Errorf("live: sample %d (%v): session ran out of events before eviction", idx, model)
	}
	if pred != nil {
		predict.Metrics.Fired.Add(uint64(s.Predictions))
		predict.Metrics.Hits.Add(uint64(s.PredHits))
		predict.Metrics.False.Add(uint64(s.PredFalse))
		predict.Metrics.Missed.Add(uint64(s.PredMissed))
		predict.Metrics.ProactiveCheckpoints.Add(uint64(s.ProactiveCkpts))
		predict.Metrics.Migrations.Add(uint64(s.Migrations))
	}
	tr.SpanAt(pid, 1, "session", abs(0), s.SessionSec,
		obs.AttrStr("model", model.String()),
		obs.AttrStr("machine", s.Machine),
		obs.AttrFloat("t_elapsed", s.TElapsed),
		obs.AttrFloat("t_opt", topt),
		obs.AttrFloat("efficiency", s.Efficiency()),
		obs.AttrBool("migrated", s.Migrated),
		obs.AttrInt("intervals", int64(s.Intervals)))
	return s, nil
}

// conservativeTopt is the degraded-mode interval for a process with no
// previously assigned schedule and no reachable manager: T_opt under
// an exponential fit of the pooled availability archive — the
// memoryless, most conservative member of the model family — with the
// best available cost estimate.
func conservativeTopt(fits *fitCache, heartbeatSec, planC, age float64) float64 {
	if d, err := fits.conservative(); err == nil && planC > 0 {
		m := markov.Model{Avail: d, Costs: markov.Costs{C: planC, R: planC, L: planC}}
		if topt, _, err := m.Topt(age, markov.OptimizeOptions{}); err == nil && topt > 0 {
			return topt
		}
	}
	if planC > 0 {
		return planC
	}
	return heartbeatSec
}

// fitCache memoizes per-(machine, model) fits, with a pooled fallback
// for machines lacking history. It wraps the concurrency-safe
// fit.Cache, so replay-phase workers can share it: each (machine,
// model) pair is fitted at most once across the whole campaign, and
// concurrent first requests single-flight instead of refitting.
type fitCache struct {
	history    *trace.Set
	minRecords int
	pooled     []float64
	cache      *fit.Cache
	// conservative() memoizes the exponential fit of the pooled
	// archive, the degraded-mode fallback distribution.
	consOnce sync.Once
	consDist dist.Distribution
	consErr  error
}

func newFitCache(history *trace.Set, minRecords int) (*fitCache, error) {
	var pooled []float64
	for _, name := range history.Machines() {
		pooled = append(pooled, history.Traces[name].Durations()...)
	}
	if len(pooled) == 0 {
		return nil, errors.New("live: empty history")
	}
	return &fitCache{
		history:    history,
		minRecords: minRecords,
		pooled:     pooled,
		cache:      fit.NewCache(),
	}, nil
}

// fitFor returns the fitted distribution for machine under model. Safe
// for concurrent use.
func (fc *fitCache) fitFor(machine string, model fit.Model) (dist.Distribution, error) {
	data := fc.pooled
	if tr, ok := fc.history.Traces[machine]; ok && tr.Len() >= fc.minRecords {
		data = tr.Durations()
	}
	return fc.cache.Fit(machine, model, data)
}

// conservative returns the exponential fit of the pooled archive,
// fitting it on first use. Safe for concurrent use.
func (fc *fitCache) conservative() (dist.Distribution, error) {
	fc.consOnce.Do(func() {
		fc.consDist, fc.consErr = fit.Fit(fit.ModelExponential, fc.pooled)
	})
	return fc.consDist, fc.consErr
}
