// Package live reproduces the paper's §5.2 "live Condor" experiment
// under virtual time: instrumented test processes are repeatedly
// submitted to a (simulated) Condor pool, each one measuring its
// recovery and checkpoint transfer times over a network link, using
// the measured cost to recompute T_opt at every interval, and dying
// without warning when the hosting machine's owner returns.
//
// Unlike the trace-driven simulator (internal/sim), transfer costs
// here are variable (drawn from the link model per transfer, exactly
// as real shared networks behave), schedules are recomputed from
// measured costs, and the per-machine model parameters come from the
// same 18-month trace archive the occupancy monitors collected —
// matching the paper's experimental protocol, including its
// right-censoring artifacts (§5.3).
package live

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/forecast"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// CampaignConfig drives one live-experiment campaign (one manager
// placement → one table).
type CampaignConfig struct {
	// Machines is the pool.
	Machines []condor.Machine
	// History is the per-machine availability archive used to fit the
	// model a process is told to use (the paper's previous 18 months
	// of monitor data).
	History *trace.Set
	// Link models the path between pool machines and the checkpoint
	// manager (campus vs wide-area).
	Link ckptnet.Link
	// CheckpointMB is the image size (the paper uses 500).
	CheckpointMB float64
	// SamplesPerModel is how many test-process runs to collect per
	// model family.
	SamplesPerModel int
	// MinHistory is the minimum records needed to fit a machine's own
	// trace; machines with less use the pooled trace. Default 25.
	MinHistory int
	// RequiresMB is the job's memory requirement. Default 512 (the
	// paper's test application holds a 500 MB image).
	RequiresMB int
	// HeartbeatSec is the heartbeat period. Default 10.
	HeartbeatSec float64
	// Concurrency keeps this many test processes in flight at once
	// (default 1, the sequential protocol). The paper's overlapping
	// submissions correspond to values above 1.
	Concurrency int
	// UseForecast schedules with NWS-style network-performance
	// predictions (the system the paper describes: availability model
	// + predicted transfer cost) instead of the last measured
	// transfer time (the simpler estimator the paper's live test
	// process uses). The predictor learns from every completed
	// transfer across the whole campaign, since all processes share
	// one path to the manager.
	UseForecast bool
	// Seed makes the campaign deterministic.
	Seed int64
}

func (c *CampaignConfig) setDefaults() {
	if c.MinHistory <= 0 {
		c.MinHistory = trace.DefaultTrainingSize
	}
	if c.RequiresMB <= 0 {
		c.RequiresMB = 512
	}
	if c.HeartbeatSec <= 0 {
		c.HeartbeatSec = 10
	}
	if c.CheckpointMB <= 0 {
		c.CheckpointMB = 500
	}
}

// Sample is one test-process run, the unit the paper's Tables 4 and 5
// aggregate.
type Sample struct {
	// Model is the availability model the process scheduled with.
	Model fit.Model
	// Machine hosted the run.
	Machine string
	// TElapsed is the machine age at process start.
	TElapsed float64
	// SessionSec is the total occupied time (start to eviction).
	SessionSec float64
	// CommittedWork is work time whose checkpoint completed.
	CommittedWork float64
	// LostWork is work time lost to the eviction.
	LostWork float64
	// TransferSec is total time in recovery + checkpoint transfers.
	TransferSec float64
	// MBMoved is the network volume, interrupted transfers prorated.
	MBMoved float64
	// Intervals counts T_opt computations; Checkpoints counts
	// completed checkpoint transfers; Heartbeats counts heartbeat
	// messages.
	Intervals, Checkpoints, Heartbeats int
	// MeasuredCs are the per-transfer measured costs (recovery first).
	MeasuredCs []float64
}

// Efficiency is the run's committed-work fraction.
func (s Sample) Efficiency() float64 {
	if s.SessionSec <= 0 {
		return 0
	}
	return s.CommittedWork / s.SessionSec
}

// Campaign is the outcome of RunCampaign.
type Campaign struct {
	// Samples holds every run, in submission order.
	Samples []Sample
	// LinkName echoes the link profile.
	LinkName string
}

// ByModel groups the samples by model family.
func (c *Campaign) ByModel() map[fit.Model][]Sample {
	out := make(map[fit.Model][]Sample)
	for _, s := range c.Samples {
		out[s.Model] = append(out[s.Model], s)
	}
	return out
}

// RunCampaign executes the live experiment: SamplesPerModel runs for
// each of the four models, rotating model assignment across
// submissions exactly as the paper alternates its test processes.
// With Concurrency > 1, that many test processes are kept in flight
// simultaneously, contending for pool machines the way the paper's
// overlapping submissions did (its per-table total time far exceeds
// the 2-day experimental window).
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	cfg.setDefaults()
	if len(cfg.Machines) == 0 {
		return nil, errors.New("live: no machines")
	}
	if cfg.History == nil || len(cfg.History.Traces) == 0 {
		return nil, errors.New("live: no availability history")
	}
	if cfg.Link == nil {
		return nil, errors.New("live: no link model")
	}
	if cfg.SamplesPerModel <= 0 {
		return nil, errors.New("live: SamplesPerModel must be positive")
	}

	pool, err := condor.NewPool(cfg.Machines, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fits, err := newFitCache(cfg.History, cfg.MinHistory)
	if err != nil {
		return nil, err
	}
	var predictor *forecast.BandwidthPredictor
	if cfg.UseForecast {
		predictor = forecast.NewBandwidthPredictor()
	}

	total := cfg.SamplesPerModel * len(fit.Models)
	r := &runner{
		pool:      pool,
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		fits:      fits,
		cfg:       cfg,
		predictor: predictor,
		samples:   make([]Sample, total),
		total:     total,
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if conc > total {
		conc = total
	}
	for range conc {
		if err := r.submitNext(); err != nil {
			return nil, err
		}
	}
	clock := pool.Clock()
	for r.completed < r.total && r.err == nil {
		if !clock.Step() {
			return nil, errors.New("live: pool ran out of events before the campaign completed")
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Campaign{LinkName: cfg.Link.Name(), Samples: r.samples}, nil
}

// runner drives a campaign's test processes through the pool's event
// loop, keeping up to Concurrency of them in flight.
type runner struct {
	pool      *condor.Pool
	rng       *rand.Rand
	fits      *fitCache
	cfg       CampaignConfig
	predictor *forecast.BandwidthPredictor

	samples   []Sample
	total     int
	nextIdx   int
	completed int
	err       error
}

// submitNext queues the next pending test process, if any.
func (r *runner) submitNext() error {
	if r.nextIdx >= r.total {
		return nil
	}
	idx := r.nextIdx
	r.nextIdx++
	model := fit.Models[idx%len(fit.Models)]
	return r.pool.Submit(r.makeJob(idx, model))
}

// fail aborts the campaign from inside the event loop.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// makeJob builds one test process: an event-driven state machine that
// measures its transfers over the link, recomputes T_opt each
// interval, heartbeats while computing, and finalizes its sample on
// eviction.
func (r *runner) makeJob(idx int, model fit.Model) *condor.Job {
	type phase int
	const (
		phaseRecovering phase = iota
		phaseWorking
		phaseCheckpointing
	)

	var (
		s         Sample
		d         dist.Distribution
		start     float64
		age       float64
		measuredC float64
		topt      float64
		ph        phase
		phaseT0   float64 // virtual time the current phase began
		phaseDur  float64 // planned phase duration
		pending   *condor.Event
	)
	s.Model = model
	cfg := r.cfg
	clock := r.pool.Clock()
	bytes := int64(cfg.CheckpointMB * ckptnet.MB)

	finalize := func(sample Sample) {
		r.samples[idx] = sample
		r.completed++
		// Submit the successor from the event loop (pool methods must
		// not be called synchronously from job hooks).
		clock.Schedule(0, func() {
			if err := r.submitNext(); err != nil {
				r.fail(err)
			}
		})
	}

	observe := func(sec float64) {
		if r.predictor != nil {
			r.predictor.Observe(bytes, sec)
		}
	}
	planningC := func() float64 {
		if r.predictor != nil {
			if sec, err := r.predictor.PredictTransferSec(bytes); err == nil {
				return sec
			}
		}
		return measuredC
	}

	var beginWork func()
	var beginCheckpoint func()

	beginWork = func() {
		planC := planningC()
		costs := markov.Costs{C: planC, R: planC, L: planC}
		m := markov.Model{Avail: d, Costs: costs}
		var err error
		topt, _, err = m.Topt(age, markov.OptimizeOptions{})
		if err != nil {
			// No feasible interval under the planned cost (the model
			// believes restart cannot complete): fall back to a
			// minimal interval so the process keeps making progress.
			topt = planC
		}
		s.Intervals++
		ph, phaseT0, phaseDur = phaseWorking, clock.Now(), topt
		pending = clock.Schedule(topt, beginCheckpoint)
	}

	beginCheckpoint = func() {
		// Work interval finished; heartbeats were sent every
		// HeartbeatSec during it.
		s.Heartbeats += int(phaseDur / cfg.HeartbeatSec)
		dur := cfg.Link.TransferTime(bytes, r.rng)
		ph, phaseT0, phaseDur = phaseCheckpointing, clock.Now(), dur
		pending = clock.Schedule(dur, func() {
			// Checkpoint committed.
			s.CommittedWork += topt
			s.Checkpoints++
			s.TransferSec += dur
			s.MBMoved += cfg.CheckpointMB
			s.MeasuredCs = append(s.MeasuredCs, dur)
			measuredC = dur
			observe(dur)
			age += topt + dur
			beginWork()
		})
	}

	job := &condor.Job{
		Name:       fmt.Sprintf("testproc-%04d-%s", idx, model),
		RequiresMB: cfg.RequiresMB,
	}
	job.OnStart = func(a condor.Alloc) {
		s.Machine = a.Machine.Name
		s.TElapsed = a.TElapsed
		start = a.Start
		age = a.TElapsed
		var fitErr error
		d, fitErr = r.fits.fitFor(a.Machine.Name, model)
		if fitErr != nil {
			// Release the machine from the event loop and abort the
			// campaign; a broken archive is a configuration error.
			pending = clock.Schedule(0, func() {
				_ = r.pool.Complete(job)
				r.fail(fmt.Errorf("live: sample %d (%v): %w", idx, model, fitErr))
			})
			return
		}
		// Initial recovery transfer, timed by the process.
		dur := cfg.Link.TransferTime(bytes, r.rng)
		ph, phaseT0, phaseDur = phaseRecovering, clock.Now(), dur
		pending = clock.Schedule(dur, func() {
			measuredC = dur
			observe(dur)
			s.TransferSec += dur
			s.MBMoved += cfg.CheckpointMB
			s.MeasuredCs = append(s.MeasuredCs, dur)
			age += dur
			beginWork()
		})
	}
	job.OnEvict = func(at float64) {
		if pending != nil {
			pending.Cancel()
		}
		elapsed := at - phaseT0
		switch ph {
		case phaseRecovering, phaseCheckpointing:
			s.TransferSec += elapsed
			if phaseDur > 0 {
				s.MBMoved += cfg.CheckpointMB * elapsed / phaseDur
			}
			if ph == phaseCheckpointing {
				s.LostWork += topt
			}
		case phaseWorking:
			s.LostWork += elapsed
			s.Heartbeats += int(elapsed / cfg.HeartbeatSec)
		}
		s.SessionSec = at - start
		finalize(s)
	}
	return job
}

// fitCache memoizes per-(machine, model) fits, with a pooled fallback
// for machines lacking history.
type fitCache struct {
	history    *trace.Set
	minRecords int
	pooled     []float64
	cache      map[string]dist.Distribution
}

func newFitCache(history *trace.Set, minRecords int) (*fitCache, error) {
	var pooled []float64
	for _, name := range history.Machines() {
		pooled = append(pooled, history.Traces[name].Durations()...)
	}
	if len(pooled) == 0 {
		return nil, errors.New("live: empty history")
	}
	return &fitCache{
		history:    history,
		minRecords: minRecords,
		pooled:     pooled,
		cache:      make(map[string]dist.Distribution),
	}, nil
}

// fitFor returns the fitted distribution for machine under model.
func (fc *fitCache) fitFor(machine string, model fit.Model) (dist.Distribution, error) {
	key := machine + "/" + model.String()
	if d, ok := fc.cache[key]; ok {
		return d, nil
	}
	data := fc.pooled
	if tr, ok := fc.history.Traces[machine]; ok && tr.Len() >= fc.minRecords {
		data = tr.Durations()
	}
	d, err := fit.Fit(model, data)
	if err != nil {
		return nil, err
	}
	fc.cache[key] = d
	return d, nil
}

// runOne submits one test process and plays its session to completion
// under the pool's virtual clock. predictor may be nil (schedule with
// the last measured transfer cost).
