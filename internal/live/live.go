// Package live reproduces the paper's §5.2 "live Condor" experiment
// under virtual time: instrumented test processes are repeatedly
// submitted to a (simulated) Condor pool, each one measuring its
// recovery and checkpoint transfer times over a network link, using
// the measured cost to recompute T_opt at every interval, and dying
// without warning when the hosting machine's owner returns.
//
// Unlike the trace-driven simulator (internal/sim), transfer costs
// here are variable (drawn from the link model per transfer, exactly
// as real shared networks behave), schedules are recomputed from
// measured costs, and the per-machine model parameters come from the
// same 18-month trace archive the occupancy monitors collected —
// matching the paper's experimental protocol, including its
// right-censoring artifacts (§5.3).
package live

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/forecast"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// CampaignConfig drives one live-experiment campaign (one manager
// placement → one table).
type CampaignConfig struct {
	// Machines is the pool.
	Machines []condor.Machine
	// History is the per-machine availability archive used to fit the
	// model a process is told to use (the paper's previous 18 months
	// of monitor data).
	History *trace.Set
	// Link models the path between pool machines and the checkpoint
	// manager (campus vs wide-area).
	Link ckptnet.Link
	// CheckpointMB is the image size (the paper uses 500).
	CheckpointMB float64
	// SamplesPerModel is how many test-process runs to collect per
	// model family.
	SamplesPerModel int
	// MinHistory is the minimum records needed to fit a machine's own
	// trace; machines with less use the pooled trace. Default 25.
	MinHistory int
	// RequiresMB is the job's memory requirement. Default 512 (the
	// paper's test application holds a 500 MB image).
	RequiresMB int
	// HeartbeatSec is the heartbeat period. Default 10.
	HeartbeatSec float64
	// Concurrency keeps this many test processes in flight at once
	// (default 1, the sequential protocol). The paper's overlapping
	// submissions correspond to values above 1.
	Concurrency int
	// UseForecast schedules with NWS-style network-performance
	// predictions (the system the paper describes: availability model
	// + predicted transfer cost) instead of the last measured
	// transfer time (the simpler estimator the paper's live test
	// process uses). The predictor learns from every completed
	// transfer across the whole campaign, since all processes share
	// one path to the manager.
	UseForecast bool
	// Seed makes the campaign deterministic.
	Seed int64
}

func (c *CampaignConfig) setDefaults() {
	if c.MinHistory <= 0 {
		c.MinHistory = trace.DefaultTrainingSize
	}
	if c.RequiresMB <= 0 {
		c.RequiresMB = 512
	}
	if c.HeartbeatSec <= 0 {
		c.HeartbeatSec = 10
	}
	if c.CheckpointMB <= 0 {
		c.CheckpointMB = 500
	}
}

// Sample is one test-process run, the unit the paper's Tables 4 and 5
// aggregate.
type Sample struct {
	// Model is the availability model the process scheduled with.
	Model fit.Model
	// Machine hosted the run.
	Machine string
	// TElapsed is the machine age at process start.
	TElapsed float64
	// SessionSec is the total occupied time (start to eviction).
	SessionSec float64
	// CommittedWork is work time whose checkpoint completed.
	CommittedWork float64
	// LostWork is work time lost to the eviction.
	LostWork float64
	// TransferSec is total time in recovery + checkpoint transfers.
	TransferSec float64
	// MBMoved is the network volume, interrupted transfers prorated.
	MBMoved float64
	// Intervals counts T_opt computations; Checkpoints counts
	// completed checkpoint transfers; Heartbeats counts heartbeat
	// messages.
	Intervals, Checkpoints, Heartbeats int
	// MeasuredCs are the per-transfer measured costs (recovery first).
	MeasuredCs []float64
	// Retries counts transfer attempts re-tried after a torn transfer
	// (chaos campaigns only).
	Retries int
	// Torn counts transfer attempts that died partway.
	Torn int
	// Fallbacks counts intervals scheduled without a fresh T_opt — the
	// manager was unreachable or every transfer retry failed, so the
	// process degraded to its last assigned schedule (or the
	// conservative exponential interval).
	Fallbacks int
	// BackoffSec is total virtual time spent waiting between transfer
	// retries.
	BackoffSec float64
}

// Efficiency is the run's committed-work fraction.
func (s Sample) Efficiency() float64 {
	if s.SessionSec <= 0 {
		return 0
	}
	return s.CommittedWork / s.SessionSec
}

// Campaign is the outcome of RunCampaign.
type Campaign struct {
	// Samples holds every run, in submission order.
	Samples []Sample
	// LinkName echoes the link profile.
	LinkName string
}

// ByModel groups the samples by model family.
func (c *Campaign) ByModel() map[fit.Model][]Sample {
	out := make(map[fit.Model][]Sample)
	for _, s := range c.Samples {
		out[s.Model] = append(out[s.Model], s)
	}
	return out
}

// ChaosTotals sums the resilience counters across every sample — the
// campaign-level retry/torn/fallback totals the chaos reports print.
// All zero for a campaign run over a fault-free link.
func (c *Campaign) ChaosTotals() (retries, torn, fallbacks int, backoffSec float64) {
	for _, s := range c.Samples {
		retries += s.Retries
		torn += s.Torn
		fallbacks += s.Fallbacks
		backoffSec += s.BackoffSec
	}
	return
}

// chaosLink is the fault-injection surface a link may expose beyond
// plain transfer times; ckptnet.ChaosLink implements it. When the
// campaign's Link satisfies it the runner switches into resilient
// mode: transfer attempts may tear and are retried with exponential
// backoff, and a schedule recomputation may find the manager
// unreachable, degrading the process onto its previous schedule.
type chaosLink interface {
	ckptnet.Link
	Attempt(bytes int64, rng *rand.Rand) ckptnet.TransferAttempt
	Unreachable(rng *rand.Rand) bool
	MaxAttempts() int
	BackoffSec(attempt int, rng *rand.Rand) float64
}

// RunCampaign executes the live experiment: SamplesPerModel runs for
// each of the four models, rotating model assignment across
// submissions exactly as the paper alternates its test processes.
// With Concurrency > 1, that many test processes are kept in flight
// simultaneously, contending for pool machines the way the paper's
// overlapping submissions did (its per-table total time far exceeds
// the 2-day experimental window).
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	cfg.setDefaults()
	if len(cfg.Machines) == 0 {
		return nil, errors.New("live: no machines")
	}
	if cfg.History == nil || len(cfg.History.Traces) == 0 {
		return nil, errors.New("live: no availability history")
	}
	if cfg.Link == nil {
		return nil, errors.New("live: no link model")
	}
	if cfg.SamplesPerModel <= 0 {
		return nil, errors.New("live: SamplesPerModel must be positive")
	}

	pool, err := condor.NewPool(cfg.Machines, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fits, err := newFitCache(cfg.History, cfg.MinHistory)
	if err != nil {
		return nil, err
	}
	var predictor *forecast.BandwidthPredictor
	if cfg.UseForecast {
		predictor = forecast.NewBandwidthPredictor()
	}

	total := cfg.SamplesPerModel * len(fit.Models)
	r := &runner{
		pool:      pool,
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		fits:      fits,
		cfg:       cfg,
		predictor: predictor,
		samples:   make([]Sample, total),
		total:     total,
	}
	r.chaos, _ = cfg.Link.(chaosLink)
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if conc > total {
		conc = total
	}
	for range conc {
		if err := r.submitNext(); err != nil {
			return nil, err
		}
	}
	clock := pool.Clock()
	for r.completed < r.total && r.err == nil {
		if !clock.Step() {
			return nil, errors.New("live: pool ran out of events before the campaign completed")
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Campaign{LinkName: cfg.Link.Name(), Samples: r.samples}, nil
}

// runner drives a campaign's test processes through the pool's event
// loop, keeping up to Concurrency of them in flight.
type runner struct {
	pool      *condor.Pool
	rng       *rand.Rand
	fits      *fitCache
	cfg       CampaignConfig
	predictor *forecast.BandwidthPredictor
	chaos     chaosLink // non-nil when the link injects faults

	samples   []Sample
	total     int
	nextIdx   int
	completed int
	err       error
}

// submitNext queues the next pending test process, if any.
func (r *runner) submitNext() error {
	if r.nextIdx >= r.total {
		return nil
	}
	idx := r.nextIdx
	r.nextIdx++
	model := fit.Models[idx%len(fit.Models)]
	return r.pool.Submit(r.makeJob(idx, model))
}

// fail aborts the campaign from inside the event loop.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// makeJob builds one test process: an event-driven state machine that
// measures its transfers over the link, recomputes T_opt each
// interval, heartbeats while computing, and finalizes its sample on
// eviction. Over a chaosLink the machine gains two extra behaviors:
// torn transfers are retried with exponential backoff (phaseBackoff),
// and manager outages degrade the schedule to the last assigned
// interval instead of aborting.
func (r *runner) makeJob(idx int, model fit.Model) *condor.Job {
	type phase int
	const (
		phaseRecovering phase = iota
		phaseWorking
		phaseCheckpointing
		phaseBackoff
	)

	var (
		s           Sample
		d           dist.Distribution
		start       float64
		tel         float64
		measuredC   float64
		topt        float64
		pendingWork float64 // work computed but not yet committed by a checkpoint
		ph          phase
		phaseT0     float64 // virtual time the current phase began
		phaseDur    float64 // planned phase duration
		pending     *condor.Event
	)
	s.Model = model
	cfg := r.cfg
	clock := r.pool.Clock()
	bytes := int64(cfg.CheckpointMB * ckptnet.MB)

	finalize := func(sample Sample) {
		r.samples[idx] = sample
		r.completed++
		// Submit the successor from the event loop (pool methods must
		// not be called synchronously from job hooks).
		clock.Schedule(0, func() {
			if err := r.submitNext(); err != nil {
				r.fail(err)
			}
		})
	}

	observe := func(sec float64) {
		if r.predictor != nil {
			r.predictor.Observe(bytes, sec)
		}
	}
	planningC := func() float64 {
		if r.predictor != nil {
			if sec, err := r.predictor.PredictTransferSec(bytes); err == nil {
				return sec
			}
		}
		return measuredC
	}
	// ageNow is the hosting resource's age: phases are contiguous in
	// virtual time (including retry backoff), so age is always the
	// allocation age plus the session's elapsed time.
	ageNow := func() float64 { return tel + (clock.Now() - start) }

	var beginWork func()
	var beginCheckpoint func()
	var doTransfer func(kind phase, attempt int, onDone, onFail func(sec float64))

	// doTransfer moves one checkpoint image over the link. On a clean
	// link it is exactly one draw from the transfer-time model. Over a
	// chaosLink an attempt may tear partway; torn attempts are retried
	// after exponential backoff, up to the link's MaxAttempts, after
	// which onFail degrades the process (sec = the last attempt's
	// estimated full duration, the process's best remaining cost
	// estimate).
	doTransfer = func(kind phase, attempt int, onDone, onFail func(sec float64)) {
		if r.chaos == nil {
			dur := cfg.Link.TransferTime(bytes, r.rng)
			ph, phaseT0, phaseDur = kind, clock.Now(), dur
			pending = clock.Schedule(dur, func() {
				s.TransferSec += dur
				s.MBMoved += cfg.CheckpointMB
				onDone(dur)
			})
			return
		}
		a := r.chaos.Attempt(bytes, r.rng)
		ph, phaseT0, phaseDur = kind, clock.Now(), a.FullSec
		if !a.Torn {
			pending = clock.Schedule(a.Sec, func() {
				s.TransferSec += a.Sec
				s.MBMoved += cfg.CheckpointMB
				onDone(a.Sec)
			})
			return
		}
		pending = clock.Schedule(a.Sec, func() {
			s.Torn++
			s.TransferSec += a.Sec
			if a.FullSec > 0 {
				s.MBMoved += cfg.CheckpointMB * a.Sec / a.FullSec
			}
			if attempt >= r.chaos.MaxAttempts() {
				onFail(a.FullSec)
				return
			}
			s.Retries++
			bo := r.chaos.BackoffSec(attempt, r.rng)
			s.BackoffSec += bo
			ph, phaseT0, phaseDur = phaseBackoff, clock.Now(), bo
			pending = clock.Schedule(bo, func() {
				doTransfer(kind, attempt+1, onDone, onFail)
			})
		})
	}

	beginWork = func() {
		age := ageNow()
		planC := planningC()
		if r.chaos != nil && r.chaos.Unreachable(r.rng) {
			// Manager unreachable: degrade to the last assigned
			// schedule rather than abort; a process that never got one
			// falls back to the conservative exponential interval.
			if topt <= 0 {
				topt = r.conservativeTopt(planC, age)
			}
			s.Fallbacks++
		} else {
			costs := markov.Costs{C: planC, R: planC, L: planC}
			m := markov.Model{Avail: d, Costs: costs}
			var err error
			topt, _, err = m.Topt(age, markov.OptimizeOptions{})
			if err != nil {
				// No feasible interval under the planned cost (the model
				// believes restart cannot complete): fall back to a
				// minimal interval so the process keeps making progress.
				topt = planC
			}
		}
		s.Intervals++
		ph, phaseT0, phaseDur = phaseWorking, clock.Now(), topt
		pending = clock.Schedule(topt, beginCheckpoint)
	}

	beginCheckpoint = func() {
		// Work interval finished; heartbeats were sent every
		// HeartbeatSec during it. The interval's work stays pending
		// until a checkpoint transfer commits it.
		s.Heartbeats += int(phaseDur / cfg.HeartbeatSec)
		pendingWork += topt
		doTransfer(phaseCheckpointing, 1, func(sec float64) {
			// Checkpoint committed — including any work a previously
			// abandoned checkpoint left uncommitted.
			s.CommittedWork += pendingWork
			pendingWork = 0
			s.Checkpoints++
			s.MeasuredCs = append(s.MeasuredCs, sec)
			measuredC = sec
			observe(sec)
			beginWork()
		}, func(est float64) {
			// Checkpoint abandoned after bounded retries: keep
			// computing on the degraded schedule; the work stays
			// pending until the next checkpoint goes through.
			if est > 0 {
				measuredC = est
			}
			s.Fallbacks++
			beginWork()
		})
	}

	job := &condor.Job{
		Name:       fmt.Sprintf("testproc-%04d-%s", idx, model),
		RequiresMB: cfg.RequiresMB,
	}
	job.OnStart = func(a condor.Alloc) {
		s.Machine = a.Machine.Name
		s.TElapsed = a.TElapsed
		start = a.Start
		tel = a.TElapsed
		var fitErr error
		d, fitErr = r.fits.fitFor(a.Machine.Name, model)
		if fitErr != nil {
			// Release the machine from the event loop and abort the
			// campaign; a broken archive is a configuration error.
			pending = clock.Schedule(0, func() {
				_ = r.pool.Complete(job)
				r.fail(fmt.Errorf("live: sample %d (%v): %w", idx, model, fitErr))
			})
			return
		}
		// Initial recovery transfer, timed by the process.
		doTransfer(phaseRecovering, 1, func(sec float64) {
			measuredC = sec
			observe(sec)
			s.MeasuredCs = append(s.MeasuredCs, sec)
			beginWork()
		}, func(est float64) {
			// Recovery abandoned after bounded retries: start computing
			// from scratch, estimating the transfer cost from the torn
			// attempts' observed throughput.
			measuredC = est
			beginWork()
		})
	}
	job.OnEvict = func(at float64) {
		if pending != nil {
			pending.Cancel()
		}
		elapsed := at - phaseT0
		switch ph {
		case phaseRecovering, phaseCheckpointing:
			s.TransferSec += elapsed
			if phaseDur > 0 {
				s.MBMoved += cfg.CheckpointMB * elapsed / phaseDur
			}
			if ph == phaseCheckpointing {
				s.LostWork += pendingWork
			}
		case phaseWorking:
			s.LostWork += pendingWork + elapsed
			s.Heartbeats += int(elapsed / cfg.HeartbeatSec)
		case phaseBackoff:
			// Evicted while waiting to retry a transfer: any
			// uncommitted work is lost with the machine.
			s.LostWork += pendingWork
		}
		s.SessionSec = at - start
		finalize(s)
	}
	return job
}

// conservativeTopt is the degraded-mode interval for a process with no
// previously assigned schedule and no reachable manager: T_opt under
// an exponential fit of the pooled availability archive — the
// memoryless, most conservative member of the model family — with the
// best available cost estimate.
func (r *runner) conservativeTopt(planC, age float64) float64 {
	if d, err := r.fits.conservative(); err == nil && planC > 0 {
		m := markov.Model{Avail: d, Costs: markov.Costs{C: planC, R: planC, L: planC}}
		if topt, _, err := m.Topt(age, markov.OptimizeOptions{}); err == nil && topt > 0 {
			return topt
		}
	}
	if planC > 0 {
		return planC
	}
	return r.cfg.HeartbeatSec
}

// fitCache memoizes per-(machine, model) fits, with a pooled fallback
// for machines lacking history.
type fitCache struct {
	history    *trace.Set
	minRecords int
	pooled     []float64
	cache      map[string]dist.Distribution
	// consDist memoizes the exponential fit of the pooled archive, the
	// degraded-mode fallback distribution.
	consDist dist.Distribution
}

func newFitCache(history *trace.Set, minRecords int) (*fitCache, error) {
	var pooled []float64
	for _, name := range history.Machines() {
		pooled = append(pooled, history.Traces[name].Durations()...)
	}
	if len(pooled) == 0 {
		return nil, errors.New("live: empty history")
	}
	return &fitCache{
		history:    history,
		minRecords: minRecords,
		pooled:     pooled,
		cache:      make(map[string]dist.Distribution),
	}, nil
}

// fitFor returns the fitted distribution for machine under model.
func (fc *fitCache) fitFor(machine string, model fit.Model) (dist.Distribution, error) {
	key := machine + "/" + model.String()
	if d, ok := fc.cache[key]; ok {
		return d, nil
	}
	data := fc.pooled
	if tr, ok := fc.history.Traces[machine]; ok && tr.Len() >= fc.minRecords {
		data = tr.Durations()
	}
	d, err := fit.Fit(model, data)
	if err != nil {
		return nil, err
	}
	fc.cache[key] = d
	return d, nil
}

// conservative returns the exponential fit of the pooled archive,
// fitting it on first use.
func (fc *fitCache) conservative() (dist.Distribution, error) {
	if fc.consDist != nil {
		return fc.consDist, nil
	}
	d, err := fit.Fit(fit.ModelExponential, fc.pooled)
	if err != nil {
		return nil, err
	}
	fc.consDist = d
	return d, nil
}

// runOne submits one test process and plays its session to completion
// under the pool's virtual clock. predictor may be nil (schedule with
// the last measured transfer cost).
