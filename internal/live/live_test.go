package live

import (
	"bytes"
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// testbed builds a small pool plus a monitor-collected history for it.
func testbed(t *testing.T, machines int, seed int64) ([]condor.Machine, *trace.Set) {
	t.Helper()
	ms, err := condor.SyntheticPool(condor.SyntheticPoolConfig{Machines: machines, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := condor.NewPool(ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	set, err := condor.CollectTraces(pool, condor.MonitorConfig{
		Monitors: machines,
		Duration: condor.MonthsSeconds(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms, set
}

func TestRunCampaignBasics(t *testing.T) {
	machines, history := testbed(t, 20, 3)
	camp, err := RunCampaign(CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            ckptnet.CampusLink(),
		CheckpointMB:    500,
		SamplesPerModel: 5,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Samples) != 20 {
		t.Fatalf("samples = %d", len(camp.Samples))
	}
	if camp.LinkName != "campus" {
		t.Errorf("link = %q", camp.LinkName)
	}
	byModel := camp.ByModel()
	for _, m := range fit.Models {
		if len(byModel[m]) != 5 {
			t.Errorf("%v: %d samples, want 5", m, len(byModel[m]))
		}
	}
	for i, s := range camp.Samples {
		if s.SessionSec < 0 {
			t.Errorf("sample %d: negative session %g", i, s.SessionSec)
		}
		if s.Machine == "" {
			t.Errorf("sample %d: no machine", i)
		}
		eff := s.Efficiency()
		if eff < 0 || eff > 1 {
			t.Errorf("sample %d: efficiency %g", i, eff)
		}
		// Time conservation within a session: committed + lost +
		// transfers <= session (heartbeats are free).
		used := s.CommittedWork + s.LostWork + s.TransferSec
		if used > s.SessionSec+1e-6 {
			t.Errorf("sample %d: accounted %g > session %g", i, used, s.SessionSec)
		}
		// Network volume is bounded by completed transfers + at most
		// one partial each way.
		maxMB := float64(s.Checkpoints+2) * 500 * 1.001
		if s.MBMoved > maxMB+500 {
			t.Errorf("sample %d: MB %g exceeds plausible %g", i, s.MBMoved, maxMB)
		}
	}
}

func TestRunCampaignDeterminism(t *testing.T) {
	machines, history := testbed(t, 12, 7)
	run := func() *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            ckptnet.CampusLink(),
			SamplesPerModel: 3,
			Seed:            7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i].SessionSec != b.Samples[i].SessionSec ||
			a.Samples[i].MBMoved != b.Samples[i].MBMoved {
			t.Fatalf("campaign not deterministic at sample %d", i)
		}
	}
}

// TestRunCampaignWireSeries pins the bytes-on-wire series: RunCampaign
// sizes it from the planned span, every completed or partial transfer
// lands in a bin, and the bins are bit-identical across parallel runs
// (integer atomic adds commute, so worker interleaving cannot show).
func TestRunCampaignWireSeries(t *testing.T) {
	machines, history := testbed(t, 12, 7)
	run := func(procs int) *Campaign {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            ckptnet.CampusLink(),
			SamplesPerModel: 3,
			Seed:            7,
			WireBins:        32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := run(runtime.GOMAXPROCS(0))
	if a.Wire == nil {
		t.Fatal("WireBins set but Campaign.Wire is nil")
	}
	if got := len(a.Wire.Bins()); got != 32 {
		t.Fatalf("bins = %d, want 32", got)
	}
	// The series total agrees with the per-sample accounting to within
	// rounding (each partial transfer rounds to whole bytes).
	var sampleMB float64
	for _, s := range a.Samples {
		sampleMB += s.MBMoved
	}
	seriesMB := float64(a.Wire.Total()) / ckptnet.MB
	if d := seriesMB - sampleMB; d > 1 || d < -1 {
		t.Errorf("wire series %.2f MB vs samples %.2f MB", seriesMB, sampleMB)
	}
	b := run(1)
	if !bytes.Equal(fmtBins(a.Wire.Bins()), fmtBins(b.Wire.Bins())) {
		t.Fatalf("wire series not deterministic:\n%v\nvs\n%v", a.Wire.Bins(), b.Wire.Bins())
	}
}

// fmtBins renders bins for byte comparison.
func fmtBins(bins []int64) []byte {
	out, _ := json.Marshal(bins)
	return out
}

// TestRunCampaignTraceDeterminism pins the trace contract: one session
// span per sample on pid = sample index+1, with timestamps on the
// campaign's virtual pool clock, byte-identical at any GOMAXPROCS
// (sessions fan out over a worker pool, but each emits on its own pid).
func TestRunCampaignTraceDeterminism(t *testing.T) {
	machines, history := testbed(t, 12, 7)
	render := func(procs int) []byte {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		tr := obs.NewTracer(obs.TracerOptions{FullFidelity: true})
		_, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            ckptnet.CampusLink(),
			SamplesPerModel: 3,
			Seed:            7,
			Tracer:          tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, wide := render(1), render(8)
	if !bytes.Contains(serial, []byte(`"session"`)) ||
		!bytes.Contains(serial, []byte(`"topt"`)) {
		t.Fatalf("trace missing session/topt records: %d bytes", len(serial))
	}
	if !bytes.Equal(serial, wide) {
		t.Error("trace export depends on GOMAXPROCS")
	}
}

func TestRunCampaignWideAreaCostsMore(t *testing.T) {
	machines, history := testbed(t, 25, 11)
	run := func(link ckptnet.Link) *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            link,
			SamplesPerModel: 8,
			Seed:            11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	campus := run(ckptnet.CampusLink())
	wan := run(ckptnet.WideAreaLink())
	avgEff := func(c *Campaign) float64 {
		sum := 0.0
		for _, s := range c.Samples {
			sum += s.Efficiency()
		}
		return sum / float64(len(c.Samples))
	}
	ce, we := avgEff(campus), avgEff(wan)
	// Slower transfers must cost efficiency, matching Table 4 (avg
	// ≈0.62-0.73 at C≈110) vs Table 5 (≈0.59-0.66 at C≈475).
	if we >= ce {
		t.Errorf("wide-area efficiency %g not below campus %g", we, ce)
	}
	// Mean measured C should approximate the link calibrations.
	meanC := func(c *Campaign) float64 {
		var sum float64
		var n int
		for _, s := range c.Samples {
			for _, v := range s.MeasuredCs {
				sum += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if mc := meanC(campus); math.Abs(mc-110) > 30 {
		t.Errorf("campus mean C = %g, want ≈110", mc)
	}
	if mw := meanC(wan); math.Abs(mw-475) > 120 {
		t.Errorf("wide-area mean C = %g, want ≈475", mw)
	}
}

func TestRunCampaignErrors(t *testing.T) {
	machines, history := testbed(t, 5, 13)
	base := CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 1,
	}
	c := base
	c.Machines = nil
	if _, err := RunCampaign(c); err == nil {
		t.Error("no machines should error")
	}
	c = base
	c.History = nil
	if _, err := RunCampaign(c); err == nil {
		t.Error("no history should error")
	}
	c = base
	c.Link = nil
	if _, err := RunCampaign(c); err == nil {
		t.Error("no link should error")
	}
	c = base
	c.SamplesPerModel = 0
	if _, err := RunCampaign(c); err == nil {
		t.Error("zero samples should error")
	}
}

func TestValidateAgreesLoosely(t *testing.T) {
	machines, history := testbed(t, 25, 17)
	camp, err := RunCampaign(CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 10,
		Seed:            17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Validate(camp, history, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Errorf("%v: no samples", r.Model)
		}
		if r.LiveEfficiency < 0 || r.LiveEfficiency > 1 || r.SimEfficiency < 0 || r.SimEfficiency > 1 {
			t.Errorf("%v: efficiencies out of range: %+v", r.Model, r)
		}
		// §5.3: small discrepancies are expected (variable C/R,
		// censoring), not wild disagreement.
		if math.Abs(r.Delta()) > 0.25 {
			t.Errorf("%v: live %g vs sim %g — divergence too large",
				r.Model, r.LiveEfficiency, r.SimEfficiency)
		}
	}
}

func TestRunCampaignConcurrent(t *testing.T) {
	machines, history := testbed(t, 15, 29)
	run := func(conc int) *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            ckptnet.CampusLink(),
			SamplesPerModel: 6,
			Concurrency:     conc,
			Seed:            29,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	seq := run(1)
	par := run(5)
	if len(par.Samples) != 24 {
		t.Fatalf("samples = %d", len(par.Samples))
	}
	// Every sample completed with a real session on a real machine.
	for i, s := range par.Samples {
		if s.Machine == "" || s.SessionSec <= 0 {
			t.Errorf("sample %d incomplete: %+v", i, s)
		}
		if e := s.Efficiency(); e < 0 || e > 1 {
			t.Errorf("sample %d efficiency %g", i, e)
		}
	}
	// Model rotation preserved.
	byModel := par.ByModel()
	for _, m := range fit.Models {
		if len(byModel[m]) != 6 {
			t.Errorf("%v: %d samples", m, len(byModel[m]))
		}
	}
	// Concurrency is deterministic too.
	par2 := run(5)
	for i := range par.Samples {
		if par.Samples[i].SessionSec != par2.Samples[i].SessionSec {
			t.Fatalf("concurrent campaign not deterministic at %d", i)
		}
	}
	// Overlapping processes occupy the pool more: the concurrent
	// campaign finishes with samples drawn from at least as many
	// distinct machines as the sequential one touched.
	distinct := func(c *Campaign) int {
		set := map[string]bool{}
		for _, s := range c.Samples {
			set[s.Machine] = true
		}
		return len(set)
	}
	if distinct(par) < distinct(seq)/2 {
		t.Errorf("concurrent campaign used implausibly few machines: %d vs %d",
			distinct(par), distinct(seq))
	}
}

func TestRunCampaignWithForecast(t *testing.T) {
	// The NWS-predicted-cost path must run, stay deterministic, and —
	// on the high-variance wide-area link — schedule with smoother
	// cost estimates than the last-measurement path.
	machines, history := testbed(t, 20, 23)
	run := func(useForecast bool) *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            ckptnet.WideAreaLink(),
			SamplesPerModel: 6,
			UseForecast:     useForecast,
			Seed:            23,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	fc := run(true)
	fc2 := run(true)
	for i := range fc.Samples {
		if fc.Samples[i].SessionSec != fc2.Samples[i].SessionSec {
			t.Fatalf("forecast campaign not deterministic at %d", i)
		}
	}
	last := run(false)
	avgEff := func(c *Campaign) float64 {
		sum := 0.0
		for _, s := range c.Samples {
			sum += s.Efficiency()
		}
		return sum / float64(len(c.Samples))
	}
	fe, le := avgEff(fc), avgEff(last)
	if fe <= 0 || fe >= 1 || le <= 0 || le >= 1 {
		t.Fatalf("efficiencies out of range: forecast %g, last %g", fe, le)
	}
	// Both estimators should land in the same ballpark; the forecast
	// path must not collapse (it is the paper's described system).
	if math.Abs(fe-le) > 0.2 {
		t.Errorf("forecast path efficiency %g diverges from last-measurement %g", fe, le)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := Validate(nil, nil, 0); err == nil {
		t.Error("nil campaign should error")
	}
	_, history := testbed(t, 3, 19)
	if _, err := Validate(&Campaign{}, history, 0); err == nil {
		t.Error("empty campaign should error")
	}
}

func TestRunCampaignChaosResilience(t *testing.T) {
	// The issue's acceptance scenario, virtual-time edition: a
	// 20-session campaign over a link that tears transfers and loses
	// the manager must complete every session — degraded, not aborted —
	// and report nonzero resilience counters.
	machines, history := testbed(t, 20, 31)
	chaos := ckptnet.ChaosLink{
		Inner: ckptnet.CampusLink(),
		Faults: ckptnet.LinkFaultConfig{
			TearProb:   0.20,
			StallProb:  0.10,
			StallSec:   30,
			OutageProb: 0.15,
		},
	}
	run := func(link ckptnet.Link) *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            link,
			SamplesPerModel: 5,
			Seed:            31,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	camp := run(chaos)
	if len(camp.Samples) != 20 {
		t.Fatalf("samples = %d, want 20 (no aborted sessions)", len(camp.Samples))
	}
	if camp.LinkName != "campus+chaos" {
		t.Errorf("link = %q", camp.LinkName)
	}
	for i, s := range camp.Samples {
		if s.Machine == "" || s.SessionSec <= 0 {
			t.Errorf("sample %d did not complete: %+v", i, s)
		}
		if e := s.Efficiency(); e < 0 || e > 1 {
			t.Errorf("sample %d efficiency %g", i, e)
		}
		// Time conservation still holds under chaos: committed + lost +
		// transfer time never exceeds the session.
		used := s.CommittedWork + s.LostWork + s.TransferSec
		if used > s.SessionSec+1e-6 {
			t.Errorf("sample %d: accounted %g > session %g", i, used, s.SessionSec)
		}
	}
	retries, torn, fallbacks, backoff := camp.ChaosTotals()
	if torn == 0 {
		t.Error("no torn transfers at TearProb 0.20")
	}
	if retries == 0 || backoff <= 0 {
		t.Errorf("no retry/backoff activity: retries=%d backoff=%g", retries, backoff)
	}
	if fallbacks == 0 {
		t.Error("no schedule fallbacks at OutageProb 0.15")
	}

	// Chaos campaigns are as deterministic as clean ones.
	camp2 := run(chaos)
	for i := range camp.Samples {
		a, b := camp.Samples[i], camp2.Samples[i]
		if a.SessionSec != b.SessionSec || a.Retries != b.Retries ||
			a.Torn != b.Torn || a.Fallbacks != b.Fallbacks || a.BackoffSec != b.BackoffSec {
			t.Fatalf("chaos campaign not deterministic at sample %d", i)
		}
	}

	// A clean link reports zero chaos activity, and injecting faults
	// must not improve efficiency.
	clean := run(ckptnet.CampusLink())
	if r, tn, f, b := clean.ChaosTotals(); r != 0 || tn != 0 || f != 0 || b != 0 {
		t.Errorf("clean campaign has chaos totals: %d %d %d %g", r, tn, f, b)
	}
	avgEff := func(c *Campaign) float64 {
		sum := 0.0
		for _, s := range c.Samples {
			sum += s.Efficiency()
		}
		return sum / float64(len(c.Samples))
	}
	if ce, xe := avgEff(clean), avgEff(camp); xe > ce+0.02 {
		t.Errorf("chaos efficiency %g implausibly above clean %g", xe, ce)
	}
}

// TestRunCampaignGOMAXPROCSDeterminism pins the campaign's parallelism
// contract: because every replay task derives its own RNG stream and
// writes to its own result slot, the campaign is byte-identical no
// matter how many OS threads the worker pool actually gets.
func TestRunCampaignGOMAXPROCSDeterminism(t *testing.T) {
	machines, history := testbed(t, 16, 11)
	cfg := CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            ckptnet.CampusLink(),
		CheckpointMB:    500,
		SamplesPerModel: 4,
		Concurrency:     3,
		Seed:            11,
	}
	runAt := func(procs int) []byte {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		c, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := runAt(1)
	parallel := runAt(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("campaign results differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
}
