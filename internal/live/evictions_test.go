package live

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// flakyBed builds a pool whose idle periods are commonly shorter than
// one checkpoint transfer, so evictions routinely land mid-recovery
// and sessions follow each other back-to-back.
func flakyBed(t *testing.T) ([]condor.Machine, *trace.Set) {
	t.Helper()
	var ms []condor.Machine
	for i := range 10 {
		ms = append(ms, condor.Machine{
			Name:     fmt.Sprintf("flaky-%02d", i),
			MemoryMB: 1024,
			Idle:     dist.NewExponential(1.0 / 240),
			Busy:     dist.NewExponential(1.0 / 900),
		})
	}
	pool, err := condor.NewPool(ms, 17)
	if err != nil {
		t.Fatal(err)
	}
	set, err := condor.CollectTraces(pool, condor.MonitorConfig{
		Monitors: len(ms),
		Duration: condor.MonthsSeconds(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms, set
}

func flakyCampaign(t *testing.T) *Campaign {
	t.Helper()
	machines, history := flakyBed(t)
	camp, err := RunCampaign(CampaignConfig{
		Machines: machines,
		History:  history,
		Link: ckptnet.ChaosLink{
			Inner: ckptnet.CampusLink(),
			Faults: ckptnet.LinkFaultConfig{
				TearProb:   0.35,
				StallProb:  0.10,
				StallSec:   20,
				OutageProb: 0.25,
			},
		},
		SamplesPerModel: 6,
		Seed:            17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

// Back-to-back evictions: with idle periods commonly shorter than a
// transfer, the owner reclaims many sessions while they are still
// recovering (no checkpoint ever commits), and consecutive samples die
// that way in a row. The fallback machinery has to stay consistent
// through it, so the resilience counter totals are pinned exactly —
// the campaign is deterministic, and any drift in the retry, torn
// or fallback bookkeeping shows up here as a changed total.
func TestCampaignBackToBackEvictions(t *testing.T) {
	camp := flakyCampaign(t)
	if len(camp.Samples) != 24 {
		t.Fatalf("samples = %d, want 24", len(camp.Samples))
	}

	// Sessions evicted during recovery: transfer time accrued, but no
	// measured cost, no checkpoint, no committed work.
	recoveryDeaths := 0
	maxStreak, streak := 0, 0
	for i, s := range camp.Samples {
		diedRecovering := len(s.MeasuredCs) == 0 && !s.Migrated
		if diedRecovering {
			recoveryDeaths++
			streak++
			if streak > maxStreak {
				maxStreak = streak
			}
			if s.Checkpoints != 0 || s.CommittedWork != 0 {
				t.Errorf("sample %d died recovering but committed: %+v", i, s)
			}
			if s.TransferSec <= 0 {
				t.Errorf("sample %d died recovering with no transfer time: %+v", i, s)
			}
		} else {
			streak = 0
		}
		if s.SessionSec <= 0 {
			t.Errorf("sample %d has non-positive session: %+v", i, s)
		}
	}
	if recoveryDeaths == 0 {
		t.Fatal("no session was evicted during recovery; the bed is not flaky enough")
	}
	if maxStreak < 2 {
		t.Errorf("longest run of recovery deaths = %d, want back-to-back (>= 2)", maxStreak)
	}

	// The pinned totals. These are determinism anchors: recompute them
	// only when an intentional change to the retry/fallback protocol or
	// the RNG stream discipline shifts them, and say so in the commit.
	retries, torn, fallbacks, backoffSec := camp.ChaosTotals()
	if retries != 12 || torn != 13 || fallbacks != 8 {
		t.Errorf("resilience totals (retries=%d torn=%d fallbacks=%d) drifted from pinned (12, 13, 8)",
			retries, torn, fallbacks)
	}
	if backoffSec <= 0 {
		t.Errorf("no backoff time despite %d retries", retries)
	}
	// Torn attempts split into retried ones and ones that exhausted the
	// attempt budget; the remainder ends in eviction mid-attempt, so
	// torn can exceed retries but never trail them.
	if torn < retries {
		t.Errorf("torn %d < retries %d", torn, retries)
	}
}

func TestCampaignBackToBackDeterminism(t *testing.T) {
	a, b := flakyCampaign(t), flakyCampaign(t)
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Error("flaky campaign not deterministic")
	}
}
