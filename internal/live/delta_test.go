package live

import (
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
)

// totalsOf sums the campaign counters a delta comparison cares about.
func totalsOf(c *Campaign) (mb float64, ckpts, deltas int) {
	for _, s := range c.Samples {
		mb += s.MBMoved
		ckpts += s.Checkpoints
		deltas += s.DeltaCheckpoints
	}
	return
}

// TestRunCampaignDeltaReducesWireBytes pins the ISSUE's acceptance
// criterion at the campaign level: with the same seed and pool, delta
// checkpointing moves strictly fewer megabytes than full-image
// checkpointing, and the savings come from actual delta transfers.
func TestRunCampaignDeltaReducesWireBytes(t *testing.T) {
	machines, history := testbed(t, 16, 11)
	base := CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            ckptnet.CampusLink(),
		CheckpointMB:    500,
		SamplesPerModel: 4,
		Seed:            11,
	}
	full, err := RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	deltaCfg := base
	deltaCfg.Delta = DeltaPolicy{Enabled: true, DirtyRate: 0.001}
	delta, err := RunCampaign(deltaCfg)
	if err != nil {
		t.Fatal(err)
	}

	fullMB, fullCkpts, fullDeltas := totalsOf(full)
	deltaMB, deltaCkpts, deltaDeltas := totalsOf(delta)
	if fullDeltas != 0 {
		t.Errorf("full campaign counted %d delta checkpoints", fullDeltas)
	}
	if fullCkpts == 0 || deltaCkpts == 0 {
		t.Fatalf("degenerate campaigns: %d vs %d checkpoints", fullCkpts, deltaCkpts)
	}
	if deltaDeltas == 0 {
		t.Error("delta campaign shipped no deltas")
	}
	if deltaMB >= fullMB {
		t.Errorf("delta campaign moved %.0f MB, full moved %.0f MB; expected a reduction", deltaMB, fullMB)
	}

	// Work still gets done: sessions commit work at comparable (or
	// better — cheaper checkpoints) efficiency.
	effOf := func(c *Campaign) float64 {
		var work, sess float64
		for _, s := range c.Samples {
			work += s.CommittedWork
			sess += s.SessionSec
		}
		return work / sess
	}
	if effOf(delta) < 0.8*effOf(full) {
		t.Errorf("delta efficiency %.3f collapsed vs full %.3f", effOf(delta), effOf(full))
	}
}

// TestRunCampaignDeltaDeterminism extends the replay contract to the
// delta path: wire sizing is a pure function of the session's work
// history, so two runs of the same config are bit-identical.
func TestRunCampaignDeltaDeterminism(t *testing.T) {
	machines, history := testbed(t, 12, 7)
	run := func(variable bool) *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            ckptnet.CampusLink(),
			SamplesPerModel: 3,
			Seed:            7,
			Delta:           DeltaPolicy{Enabled: true, VariableCost: variable},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for _, variable := range []bool{false, true} {
		a, b := run(variable), run(variable)
		for i := range a.Samples {
			if a.Samples[i].MBMoved != b.Samples[i].MBMoved ||
				a.Samples[i].SessionSec != b.Samples[i].SessionSec ||
				a.Samples[i].DeltaCheckpoints != b.Samples[i].DeltaCheckpoints {
				t.Fatalf("variable=%v: campaign not deterministic at sample %d", variable, i)
			}
		}
	}
}

// TestRunCampaignVariableCostSchedules checks the C(T) curve actually
// reaches the optimizer: scheduling with the interval-dependent cost
// changes the chosen intervals relative to constant-cost delta.
func TestRunCampaignVariableCostSchedules(t *testing.T) {
	machines, history := testbed(t, 12, 5)
	run := func(variable bool) *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Machines:        machines,
			History:         history,
			Link:            ckptnet.CampusLink(),
			CheckpointMB:    500,
			SamplesPerModel: 3,
			Seed:            5,
			Delta:           DeltaPolicy{Enabled: true, DirtyRate: 0.001, VariableCost: variable},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	constC, varC := run(false), run(true)
	same := true
	for i := range constC.Samples {
		if constC.Samples[i].Intervals != varC.Samples[i].Intervals ||
			constC.Samples[i].CommittedWork != varC.Samples[i].CommittedWork {
			same = false
			break
		}
	}
	if same {
		t.Error("variable-cost scheduling produced identical campaigns; curve never reached the optimizer")
	}
	// And it must still commit work.
	var work float64
	for _, s := range varC.Samples {
		work += s.CommittedWork
	}
	if work <= 0 {
		t.Error("variable-cost campaign committed no work")
	}
}

func TestRunCampaignVariableCostRequiresDelta(t *testing.T) {
	machines, history := testbed(t, 8, 3)
	_, err := RunCampaign(CampaignConfig{
		Machines:        machines,
		History:         history,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 1,
		Seed:            3,
		Delta:           DeltaPolicy{VariableCost: true},
	})
	if err == nil {
		t.Fatal("VariableCost without Enabled should be rejected")
	}
}
