package live

import (
	"errors"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/stats"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// ValidationRow compares, for one model family, the efficiency the
// live experiment observed against the efficiency the trace-driven
// simulator predicts when replaying the very sessions the live runs
// experienced — the paper's §5.3 verification step.
type ValidationRow struct {
	Model fit.Model
	// LiveEfficiency is the mean per-sample efficiency observed live.
	LiveEfficiency float64
	// SimEfficiency is the mean efficiency of simulating each sample's
	// session with constant C and R set to the sample's mean measured
	// transfer time.
	SimEfficiency float64
	// Samples is the number of sessions compared.
	Samples int
}

// Delta returns live minus simulated efficiency; the paper attributes
// nonzero deltas to right-censoring (sessions are short) and the
// variability of real transfer costs against the simulator's constant
// C and R.
func (v ValidationRow) Delta() float64 { return v.LiveEfficiency - v.SimEfficiency }

// Validate replays every live sample through the discrete-event
// simulator and reports per-model live-vs-simulated efficiency.
func Validate(c *Campaign, history *trace.Set, minHistory int) ([]ValidationRow, error) {
	if c == nil || len(c.Samples) == 0 {
		return nil, errors.New("live: no samples to validate")
	}
	if minHistory <= 0 {
		minHistory = trace.DefaultTrainingSize
	}
	fits, err := newFitCache(history, minHistory)
	if err != nil {
		return nil, err
	}

	// Campaign-wide mean transfer cost, the fallback for sessions that
	// never completed a transfer.
	var allC []float64
	for _, s := range c.Samples {
		allC = append(allC, s.MeasuredCs...)
	}
	fallbackC := stats.Mean(allC)
	if len(allC) == 0 {
		return nil, errors.New("live: no measured transfer costs")
	}

	var rows []ValidationRow
	for _, model := range fit.Models {
		var liveEffs, simEffs []float64
		for _, s := range c.Samples {
			if s.Model != model || s.SessionSec <= 0 {
				continue
			}
			cMean := fallbackC
			if len(s.MeasuredCs) > 0 {
				cMean = stats.Mean(s.MeasuredCs)
			}
			d, err := fits.fitFor(s.Machine, model)
			if err != nil {
				return nil, err
			}
			costs := markov.Costs{C: cMean, R: cMean, L: cMean}
			m := markov.Model{Avail: d, Costs: costs}
			sched, err := m.BuildSchedule(s.TElapsed+cMean, markov.ScheduleOptions{
				Horizon: s.TElapsed + s.SessionSec + 2*cMean + 1,
			})
			if err != nil {
				// The model believes this session couldn't make
				// progress; score it as zero efficiency, matching what
				// the live run would have been able to commit.
				liveEffs = append(liveEffs, s.Efficiency())
				simEffs = append(simEffs, 0)
				continue
			}
			// The simulator ages from availability start; the live
			// sample started at TElapsed, so shift the planner.
			tel := s.TElapsed
			planner := sim.PlannerFunc(func(age float64) (float64, bool) {
				return sched.IntervalAt(tel + age)
			})
			res, err := sim.Run([]float64{s.SessionSec}, planner, sim.Config{
				Costs:        costs,
				CheckpointMB: 0, // bandwidth not compared here
			})
			if err != nil {
				return nil, err
			}
			liveEffs = append(liveEffs, s.Efficiency())
			simEffs = append(simEffs, res.Efficiency())
		}
		if len(liveEffs) == 0 {
			continue
		}
		rows = append(rows, ValidationRow{
			Model:          model,
			LiveEfficiency: stats.Mean(liveEffs),
			SimEfficiency:  stats.Mean(simEffs),
			Samples:        len(liveEffs),
		})
	}
	return rows, nil
}
