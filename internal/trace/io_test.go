package trace

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadCSVRejectsNonFiniteDurations is the regression test for the
// NaN/Inf hole: strconv.ParseFloat accepts "NaN" and "+Inf", and the
// old `dur < 0` guard is false for NaN, so a corrupt monitor log used
// to poison every downstream fit. The error must carry the line
// number.
func TestReadCSVRejectsNonFiniteDurations(t *testing.T) {
	cases := []struct{ name, in, wantLine string }{
		{"NaN", "m,100,NaN\n", "line 1"},
		{"+Inf", "m,100,+Inf\n", "line 1"},
		{"-Inf", "m,100,-Inf\n", "line 1"},
		{"Inf later row", "m,100,5\nm,200,Inf\n", "line 2"},
		{"NaN with censored", "m,100,nan,1\n", "line 1"},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), "non-finite") || !strings.Contains(err.Error(), c.wantLine) {
			t.Errorf("%s: error %q should mention non-finite duration and %s", c.name, err, c.wantLine)
		}
	}
}

// TestReadCSVHeaderCollision is the regression test for the header
// heuristic: a headerless file whose first machine is literally named
// "machine" must keep its first record. Only the full WriteCSV header
// row is skipped.
func TestReadCSVHeaderCollision(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("machine,100,5\nmachine,300,7\n"))
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := s.Traces["machine"]
	if !ok || tr.Len() != 2 {
		t.Fatalf("machine-named trace lost records: %+v", s.Traces)
	}
	if tr.Records[0].Duration != 5 || tr.Records[1].Duration != 7 {
		t.Errorf("records = %+v", tr.Records)
	}

	// Real headers — with and without the censored column — still skip.
	for _, in := range []string{
		"machine,start_unix,duration_s,censored\nm,100,5,0\n",
		"machine,start_unix,duration_s\nm,100,5\n",
	} {
		s, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Traces) != 1 || s.Traces["m"].Len() != 1 {
			t.Errorf("header not skipped for %q: %+v", in, s.Traces)
		}
	}

	// A partial header-like row is data, and its non-numeric start must
	// error rather than be silently dropped.
	if _, err := ReadCSV(strings.NewReader("machine,start_unix,other\n")); err == nil {
		t.Error("near-header row silently accepted")
	}
}

// TestSaveCSVAtomic verifies the temp-file + rename commit: a write
// that fails mid-stream leaves the previous archive intact and no temp
// litter behind.
func TestSaveCSVAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.csv")

	s := NewSet()
	s.Add("m", Record{Start: ts(10), Duration: 42})
	if err := SaveCSV(path, s); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Fail the write partway through and check nothing changed.
	boom := errors.New("disk full")
	err = saveAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "machine,start_unix,"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("saveAtomic error = %v, want %v", err, boom)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Errorf("failed write tore the archive:\nbefore %q\nafter  %q", before, after)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "traces.csv" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("temp litter left behind: %v", names)
	}

	// A successful save replaces the contents.
	s2 := NewSet()
	s2.Add("n", Record{Start: ts(20), Duration: 7})
	if err := SaveCSV(path, s2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Traces["n"] == nil || got.Traces["n"].Records[0].Duration != 7 {
		t.Errorf("replacement save lost data: %+v", got.Traces)
	}

	// Saving into a missing directory errors without creating files.
	if err := SaveCSV(filepath.Join(dir, "missing", "t.csv"), s); err == nil {
		t.Error("save into missing directory should error")
	}
}
