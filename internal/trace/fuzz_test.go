package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser: arbitrary input must never
// panic, and any successfully parsed set must re-serialize and
// re-parse to identical durations.
func FuzzReadCSV(f *testing.F) {
	f.Add("machine,start_unix,duration_s,censored\nm,100,5,0\n")
	f.Add("m,100,5\n")
	f.Add("m,100,5,1\nm,200,7.5,0\n")
	f.Add("m,abc,5,0\n")
	f.Add("m,100,-5\n")
	f.Add("")
	f.Add(",,,\n")
	f.Add("m,100,5,2\n")

	f.Fuzz(func(t *testing.T, input string) {
		set, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Round trip: what parsed must serialize and parse back to the
		// same observations.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, set); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again.Traces) != len(set.Traces) {
			t.Fatalf("machine count changed: %d vs %d", len(again.Traces), len(set.Traces))
		}
		for name, tr := range set.Traces {
			tr2, ok := again.Traces[name]
			if !ok || tr2.Len() != tr.Len() {
				t.Fatalf("trace %q changed across round trip", name)
			}
			d1, c1 := tr.Observations()
			d2, c2 := tr2.Observations()
			for i := range d1 {
				if d1[i] != d2[i] || c1[i] != c2[i] {
					t.Fatalf("record %d of %q changed: (%g,%v) vs (%g,%v)",
						i, name, d1[i], c1[i], d2[i], c2[i])
				}
			}
		}
	})
}
