// Package trace manages resource-availability traces: the sequences of
// occupancy durations (with UTC timestamps) that the paper's Condor
// occupancy monitor records per machine (§4), the train/test split its
// simulations use (§5.1: "training set containing the first 25 values
// occurring chronologically"), and synthetic trace generation,
// including the paper's reference Weibull(shape 0.43, scale 3409)
// trace of 5000 values.
package trace

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// DefaultTrainingSize is the paper's training-set size: the first 25
// availability durations of each machine.
const DefaultTrainingSize = 25

// Record is one observed availability duration.
type Record struct {
	// Start is when the occupancy began (UTC).
	Start time.Time
	// Duration is how long the resource stayed available, in seconds.
	Duration float64
	// Censored marks a right-censored observation: the resource was
	// still available after Duration seconds when the measurement
	// campaign ended (§5.3 of the paper discusses the bias such
	// censoring introduces). Censoring-aware estimators in
	// internal/fit consume this flag.
	Censored bool
}

// Trace is the availability history of one machine, in chronological
// order.
type Trace struct {
	// Machine names the resource (Condor slot / host name).
	Machine string
	// Records holds the observations, sorted by Start.
	Records []Record
}

// Len returns the number of observations.
func (t *Trace) Len() int { return len(t.Records) }

// Durations returns the availability durations in chronological order
// (censored and uncensored alike; use Observations to distinguish).
func (t *Trace) Durations() []float64 {
	out := make([]float64, len(t.Records))
	for i, r := range t.Records {
		out[i] = r.Duration
	}
	return out
}

// Observations returns the durations and a parallel censored-flag
// slice, the inputs the censoring-aware estimators and the
// Kaplan-Meier curve expect.
func (t *Trace) Observations() (durations []float64, censored []bool) {
	durations = make([]float64, len(t.Records))
	censored = make([]bool, len(t.Records))
	for i, r := range t.Records {
		durations[i] = r.Duration
		censored[i] = r.Censored
	}
	return durations, censored
}

// Append adds an observation, keeping chronological order (records
// arriving out of order are inserted at the right place).
func (t *Trace) Append(r Record) {
	n := len(t.Records)
	if n == 0 || !r.Start.Before(t.Records[n-1].Start) {
		t.Records = append(t.Records, r)
		return
	}
	i := sort.Search(n, func(i int) bool { return t.Records[i].Start.After(r.Start) })
	t.Records = append(t.Records, Record{})
	copy(t.Records[i+1:], t.Records[i:])
	t.Records[i] = r
}

// ErrShortTrace is returned by Split when a trace has no experimental
// observations left after the training prefix.
var ErrShortTrace = errors.New("trace: not enough records to split")

// Split divides the trace into a training prefix of n records and an
// experimental suffix, mirroring the paper's protocol. It errors if
// fewer than n+1 records exist (an empty experimental set would make
// the simulation vacuous).
func (t *Trace) Split(n int) (train, test []float64, err error) {
	if n <= 0 {
		n = DefaultTrainingSize
	}
	if len(t.Records) <= n {
		return nil, nil, fmt.Errorf("%w: %d records, need > %d", ErrShortTrace, len(t.Records), n)
	}
	d := t.Durations()
	return d[:n], d[n:], nil
}

// TotalAvailability returns the sum of all recorded durations in
// seconds.
func (t *Trace) TotalAvailability() float64 {
	sum := 0.0
	for _, r := range t.Records {
		sum += r.Duration
	}
	return sum
}

// Set is a collection of per-machine traces, as gathered from a pool.
type Set struct {
	// Traces maps machine name to its trace.
	Traces map[string]*Trace
}

// NewSet returns an empty trace set.
func NewSet() *Set {
	return &Set{Traces: make(map[string]*Trace)}
}

// Add appends a record for the named machine, creating its trace on
// first use.
func (s *Set) Add(machine string, r Record) {
	tr, ok := s.Traces[machine]
	if !ok {
		tr = &Trace{Machine: machine}
		s.Traces[machine] = tr
	}
	tr.Append(r)
}

// Machines returns the machine names in deterministic (sorted) order.
func (s *Set) Machines() []string {
	names := make([]string, 0, len(s.Traces))
	for name := range s.Traces {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WithAtLeast returns the traces having at least n records, in
// machine-name order — the paper's "machines which the Condor
// scheduler chose to execute our monitoring process on a sufficient
// number of times" filter.
func (s *Set) WithAtLeast(n int) []*Trace {
	var out []*Trace
	for _, name := range s.Machines() {
		if tr := s.Traces[name]; tr.Len() >= n {
			out = append(out, tr)
		}
	}
	return out
}

// GenerateOptions configures synthetic trace generation.
type GenerateOptions struct {
	// Machine names the synthetic resource.
	Machine string
	// N is the number of availability durations to draw.
	N int
	// Avail is the availability-duration distribution.
	Avail dist.Distribution
	// Busy, if non-nil, is the distribution of the busy (owner-
	// reclaimed) gap between availabilities; a nil Busy uses a fixed
	// 60-second gap, which only affects timestamps, not durations.
	Busy dist.Distribution
	// Start is the timestamp of the first availability; zero means
	// 2003-04-01 UTC, the start of the paper's measurement period.
	Start time.Time
	// Seed seeds the deterministic generator.
	Seed int64
}

// Generate draws a synthetic availability trace: N durations from
// Avail, with inter-availability gaps from Busy. The paper's Table 2
// trace is Generate with Avail = Weibull(0.43, 3409) and N = 5000.
func Generate(opts GenerateOptions) (*Trace, error) {
	if opts.N <= 0 {
		return nil, errors.New("trace: Generate needs N > 0")
	}
	if opts.Avail == nil {
		return nil, errors.New("trace: Generate needs an availability distribution")
	}
	if opts.Machine == "" {
		opts.Machine = "synthetic"
	}
	start := opts.Start
	if start.IsZero() {
		start = time.Date(2003, 4, 1, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := &Trace{Machine: opts.Machine}
	now := start
	for range opts.N {
		d := opts.Avail.Rand(rng)
		tr.Records = append(tr.Records, Record{Start: now, Duration: d})
		now = now.Add(time.Duration(d * float64(time.Second)))
		gap := 60.0
		if opts.Busy != nil {
			gap = opts.Busy.Rand(rng)
		}
		now = now.Add(time.Duration(gap * float64(time.Second)))
	}
	return tr, nil
}

// PaperSyntheticTrace reproduces the paper's Table 2 workload: 5000
// availability durations drawn from a Weibull with shape 0.43 and
// scale 3409 (the MLE fit of a machine trace chosen at random).
func PaperSyntheticTrace(seed int64) *Trace {
	tr, err := Generate(GenerateOptions{
		Machine: "paper-weibull-0.43-3409",
		N:       5000,
		Avail:   dist.NewWeibull(0.43, 3409),
		Seed:    seed,
	})
	if err != nil {
		// Unreachable: all options are valid by construction.
		panic(err)
	}
	return tr
}
