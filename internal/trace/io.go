package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// CSV column layout: machine,start_unix_seconds,duration_seconds,
// censored(0|1). The censored column is optional on input for
// compatibility with plain three-column monitor logs. The flat per-record
// format matches what a Condor occupancy monitor naturally emits and
// stays diff-friendly for archival in git.

// WriteCSV writes a trace set as CSV rows (one per record) with a
// header line, machines in sorted order, records in chronological
// order.
func WriteCSV(w io.Writer, s *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"machine", "start_unix", "duration_s", "censored"}); err != nil {
		return err
	}
	for _, name := range s.Machines() {
		for _, r := range s.Traces[name].Records {
			cens := "0"
			if r.Censored {
				cens = "1"
			}
			row := []string{
				name,
				strconv.FormatInt(r.Start.Unix(), 10),
				strconv.FormatFloat(r.Duration, 'g', -1, 64),
				cens,
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace set written by WriteCSV (or any file in the
// same layout; the censored column may be omitted). A header row is
// detected and skipped.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // 3 or 4 columns, validated below
	set := NewSet()
	line := 0
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line+1, err)
		}
		line++
		if len(row) != 3 && len(row) != 4 {
			return nil, fmt.Errorf("trace: csv line %d: want 3 or 4 columns, got %d", line, len(row))
		}
		if line == 1 && isHeader(row) {
			continue // header
		}
		start, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad start %q: %w", line, row[1], err)
		}
		dur, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad duration %q: %w", line, row[2], err)
		}
		if math.IsNaN(dur) || math.IsInf(dur, 0) {
			// ParseFloat happily accepts "NaN" and "+Inf", and dur < 0 is
			// false for NaN — without this check one corrupt monitor row
			// poisons every downstream fit with NaN parameters.
			return nil, fmt.Errorf("trace: csv line %d: non-finite duration %q", line, row[2])
		}
		if dur < 0 {
			return nil, fmt.Errorf("trace: csv line %d: negative duration %g", line, dur)
		}
		cens := false
		if len(row) == 4 {
			switch row[3] {
			case "0", "":
				// uncensored
			case "1":
				cens = true
			default:
				return nil, fmt.Errorf("trace: csv line %d: bad censored flag %q", line, row[3])
			}
		}
		set.Add(row[0], Record{Start: time.Unix(start, 0).UTC(), Duration: dur, Censored: cens})
	}
	return set, nil
}

// isHeader reports whether row is the full WriteCSV header line
// (censored column optional). Requiring every column name to match —
// not just the first — keeps a headerless file whose first machine is
// literally named "machine" from silently losing its first record.
func isHeader(row []string) bool {
	if row[0] != "machine" || row[1] != "start_unix" || row[2] != "duration_s" {
		return false
	}
	return len(row) == 3 || row[3] == "censored"
}

// SaveCSV writes the set to a file path atomically: the rows go to a
// temp file in the same directory, fsynced, then renamed over path, so
// a crash mid-write never leaves a torn trace archive — the same
// commit discipline the checkpoint manager applies to image records.
func SaveCSV(path string, s *Set) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteCSV(w, s) })
}

// saveAtomic commits write's output to path via temp file + rename.
// On any error the previous contents of path are untouched and the
// temp file is removed.
func saveAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable; some
	// filesystems reject fsync on directories, which is fine.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadCSV reads a set from a file path.
func LoadCSV(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
