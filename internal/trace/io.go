package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// CSV column layout: machine,start_unix_seconds,duration_seconds,
// censored(0|1). The censored column is optional on input for
// compatibility with plain three-column monitor logs. The flat per-record
// format matches what a Condor occupancy monitor naturally emits and
// stays diff-friendly for archival in git.

// WriteCSV writes a trace set as CSV rows (one per record) with a
// header line, machines in sorted order, records in chronological
// order.
func WriteCSV(w io.Writer, s *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"machine", "start_unix", "duration_s", "censored"}); err != nil {
		return err
	}
	for _, name := range s.Machines() {
		for _, r := range s.Traces[name].Records {
			cens := "0"
			if r.Censored {
				cens = "1"
			}
			row := []string{
				name,
				strconv.FormatInt(r.Start.Unix(), 10),
				strconv.FormatFloat(r.Duration, 'g', -1, 64),
				cens,
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace set written by WriteCSV (or any file in the
// same layout; the censored column may be omitted). A header row is
// detected and skipped.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // 3 or 4 columns, validated below
	set := NewSet()
	line := 0
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line+1, err)
		}
		line++
		if len(row) != 3 && len(row) != 4 {
			return nil, fmt.Errorf("trace: csv line %d: want 3 or 4 columns, got %d", line, len(row))
		}
		if line == 1 && row[0] == "machine" {
			continue // header
		}
		start, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad start %q: %w", line, row[1], err)
		}
		dur, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad duration %q: %w", line, row[2], err)
		}
		if dur < 0 {
			return nil, fmt.Errorf("trace: csv line %d: negative duration %g", line, dur)
		}
		cens := false
		if len(row) == 4 {
			switch row[3] {
			case "0", "":
				// uncensored
			case "1":
				cens = true
			default:
				return nil, fmt.Errorf("trace: csv line %d: bad censored flag %q", line, row[3])
			}
		}
		set.Add(row[0], Record{Start: time.Unix(start, 0).UTC(), Duration: dur, Censored: cens})
	}
	return set, nil
}

// SaveCSV writes the set to a file path.
func SaveCSV(path string, s *Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSV reads a set from a file path.
func LoadCSV(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
