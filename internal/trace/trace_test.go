package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

func ts(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

func TestAppendKeepsChronologicalOrder(t *testing.T) {
	tr := &Trace{Machine: "m1"}
	tr.Append(Record{Start: ts(100), Duration: 10})
	tr.Append(Record{Start: ts(50), Duration: 5})
	tr.Append(Record{Start: ts(75), Duration: 7})
	tr.Append(Record{Start: ts(200), Duration: 20})
	want := []float64{5, 7, 10, 20}
	got := tr.Durations()
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("durations[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSplit(t *testing.T) {
	tr := &Trace{Machine: "m"}
	for i := range 40 {
		tr.Append(Record{Start: ts(int64(i * 100)), Duration: float64(i)})
	}
	train, test, err := tr.Split(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 25 || len(test) != 15 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	if train[24] != 24 || test[0] != 25 {
		t.Errorf("split boundary wrong: %g / %g", train[24], test[0])
	}
	// Default n.
	train, _, err = tr.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != DefaultTrainingSize {
		t.Errorf("default training size = %d", len(train))
	}
	// Too short.
	short := &Trace{Machine: "s"}
	for i := range 25 {
		short.Append(Record{Start: ts(int64(i)), Duration: 1})
	}
	if _, _, err := short.Split(25); err == nil {
		t.Error("split of 25-record trace with n=25 should error")
	}
}

func TestTotalAvailability(t *testing.T) {
	tr := &Trace{Machine: "m"}
	tr.Append(Record{Start: ts(0), Duration: 10})
	tr.Append(Record{Start: ts(100), Duration: 20.5})
	if got := tr.TotalAvailability(); got != 30.5 {
		t.Errorf("total = %g", got)
	}
}

func TestSetAddAndFilter(t *testing.T) {
	s := NewSet()
	for i := range 30 {
		s.Add("big", Record{Start: ts(int64(i)), Duration: 1})
	}
	for i := range 5 {
		s.Add("small", Record{Start: ts(int64(i)), Duration: 1})
	}
	if got := s.Machines(); len(got) != 2 || got[0] != "big" || got[1] != "small" {
		t.Errorf("machines = %v", got)
	}
	filtered := s.WithAtLeast(10)
	if len(filtered) != 1 || filtered[0].Machine != "big" {
		t.Errorf("WithAtLeast = %v", filtered)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := GenerateOptions{
		N:     100,
		Avail: dist.NewWeibull(0.43, 3409),
		Seed:  5,
	}
	a, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("lengths %d/%d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	// Timestamps strictly increase.
	for i := 1; i < a.Len(); i++ {
		if !a.Records[i].Start.After(a.Records[i-1].Start) {
			t.Errorf("timestamps not increasing at %d", i)
		}
	}
	if a.Machine != "synthetic" {
		t.Errorf("default machine name = %q", a.Machine)
	}
}

func TestGenerateWithBusyGaps(t *testing.T) {
	tr, err := Generate(GenerateOptions{
		N:     50,
		Avail: dist.NewExponential(0.01),
		Busy:  dist.NewExponential(0.001),
		Seed:  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gaps between successive starts must exceed the duration of the
	// earlier record (there is always a busy period).
	for i := 1; i < tr.Len(); i++ {
		gap := tr.Records[i].Start.Sub(tr.Records[i-1].Start).Seconds()
		if gap < tr.Records[i-1].Duration {
			t.Errorf("record %d overlaps previous availability", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenerateOptions{N: 0, Avail: dist.NewExponential(1)}); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := Generate(GenerateOptions{N: 5}); err == nil {
		t.Error("nil distribution should error")
	}
}

func TestPaperSyntheticTrace(t *testing.T) {
	tr := PaperSyntheticTrace(1)
	if tr.Len() != 5000 {
		t.Fatalf("len = %d, want 5000", tr.Len())
	}
	// The sample mean should be near the analytic mean of
	// Weibull(0.43, 3409): β·Γ(1+1/α) ≈ 9147 s.
	want := 3409 * math.Gamma(1+1/0.43)
	got := tr.TotalAvailability() / 5000
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("sample mean %g, want ≈%g", got, want)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add("alpha", Record{Start: ts(1000), Duration: 12.5})
	s.Add("alpha", Record{Start: ts(2000), Duration: 900})
	s.Add("beta", Record{Start: ts(1500), Duration: 3.25})

	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "machine,start_unix,duration_s,censored\n") {
		t.Errorf("missing header: %q", buf.String())
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 2 {
		t.Fatalf("machines = %v", got.Machines())
	}
	a := got.Traces["alpha"]
	if a.Len() != 2 || a.Records[0].Duration != 12.5 || a.Records[1].Duration != 900 {
		t.Errorf("alpha = %+v", a.Records)
	}
	if !a.Records[0].Start.Equal(ts(1000)) {
		t.Errorf("alpha start = %v", a.Records[0].Start)
	}
	b := got.Traces["beta"]
	if b.Len() != 1 || b.Records[0].Duration != 3.25 {
		t.Errorf("beta = %+v", b.Records)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad columns", "a,b\n"},
		{"bad start", "m,xx,5\n"},
		{"bad duration", "m,100,xx\n"},
		{"negative duration", "m,100,-5\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Headerless three-column data parses fine (censored defaults to
	// false).
	s, err := ReadCSV(strings.NewReader("m,100,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Traces["m"].Len() != 1 || s.Traces["m"].Records[0].Censored {
		t.Error("headerless row not parsed")
	}
	// Bad censored flag.
	if _, err := ReadCSV(strings.NewReader("m,100,5,x\n")); err == nil {
		t.Error("bad censored flag should error")
	}
}

func TestCSVCensoredRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add("m", Record{Start: ts(10), Duration: 100})
	s.Add("m", Record{Start: ts(500), Duration: 250, Censored: true})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := got.Traces["m"].Records
	if len(recs) != 2 || recs[0].Censored || !recs[1].Censored {
		t.Errorf("censored flags lost: %+v", recs)
	}
	durs, cens := got.Traces["m"].Observations()
	if durs[1] != 250 || !cens[1] || cens[0] {
		t.Errorf("Observations = %v, %v", durs, cens)
	}
}

func TestSaveLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.csv")
	s := NewSet()
	s.Add("m", Record{Start: ts(10), Duration: 42})
	if err := SaveCSV(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Traces["m"].Records[0].Duration != 42 {
		t.Error("round trip through file failed")
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}
