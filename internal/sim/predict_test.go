package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

func randomTrace(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	d := dist.NewExponential(1.0 / 4000)
	avail := make([]float64, n)
	for i := range avail {
		avail[i] = d.Rand(rng)
	}
	return avail
}

// A disabled predictor must leave every Result field bit-identical to a
// run that never heard of prediction — the determinism contract for the
// whole subsystem.
func TestDisabledPredictorChangesNothing(t *testing.T) {
	avail := randomTrace(7, 200)
	base, err := Run(avail, FixedInterval(600), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []predict.Policy{predict.PolicyReactive, predict.PolicyProactive, predict.PolicyMigrate} {
		c := cfg(100)
		c.Policy = policy
		c.PredictSeed = 99
		got, err := Run(avail, FixedInterval(600), c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("policy %v with disabled predictor diverged:\nbase %+v\ngot  %+v", policy, base, got)
		}
	}
}

func TestReactivePolicyCountsButDoesNotAct(t *testing.T) {
	avail := randomTrace(11, 300)
	base, _ := Run(avail, FixedInterval(600), cfg(100))
	c := cfg(100)
	c.Predict = predict.Config{Precision: 0.5, Recall: 0.8, LeadSec: 300}
	c.PredictSeed = 5
	got, err := Run(avail, FixedInterval(600), c)
	if err != nil {
		t.Fatal(err)
	}
	// The physics are untouched...
	if got.UsefulWork != base.UsefulWork || got.LostWork != base.LostWork ||
		got.MBTransferred != base.MBTransferred || got.Commits != base.Commits {
		t.Errorf("reactive policy changed the run: base %+v got %+v", base, got)
	}
	// ...but the predictor's books are kept.
	if got.Predictions == 0 || got.PredHits == 0 || got.PredFalse == 0 {
		t.Errorf("expected fired/hit/false counts, got %+v", got)
	}
	if got.PredHits+got.PredMissed != len(avail) {
		t.Errorf("hits %d + missed %d != %d periods", got.PredHits, got.PredMissed, len(avail))
	}
	if got.ProactiveCheckpoints != 0 || got.Migrations != 0 {
		t.Errorf("reactive policy acted: %+v", got)
	}
}

// A perfect predictor with a proactive policy must strictly dominate
// the reactive baseline on wasted work: every failure is seen coming
// and a checkpoint lands just before it.
func TestPerfectProactiveDominatesReactive(t *testing.T) {
	avail := randomTrace(13, 500)
	base, _ := Run(avail, FixedInterval(600), cfg(100))
	c := cfg(100)
	c.Predict = predict.Perfect(150) // lead covers C=100 with margin
	c.Policy = predict.PolicyProactive
	got, err := Run(avail, FixedInterval(600), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.LostWork >= base.LostWork {
		t.Errorf("proactive lost %g >= reactive lost %g", got.LostWork, base.LostWork)
	}
	if got.UsefulWork <= base.UsefulWork {
		t.Errorf("proactive useful %g <= reactive useful %g", got.UsefulWork, base.UsefulWork)
	}
	if got.ProactiveCheckpoints == 0 {
		t.Error("no proactive checkpoints taken")
	}
	if got.PredMissed != 0 || got.PredFalse != 0 {
		t.Errorf("perfect predictor missed %d / false %d", got.PredMissed, got.PredFalse)
	}
}

func TestMigratePolicyAccountsMigrations(t *testing.T) {
	avail := randomTrace(17, 500)
	base, _ := Run(avail, FixedInterval(600), cfg(100))
	c := cfg(100)
	c.Predict = predict.Perfect(300)
	c.Policy = predict.PolicyMigrate
	got, err := Run(avail, FixedInterval(600), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	if got.MigrationMB != float64(got.Migrations)*500 {
		t.Errorf("migration MB %g, want %g", got.MigrationMB, float64(got.Migrations)*500)
	}
	if got.MigrationMB > got.MBTransferred {
		t.Errorf("migration MB %g exceeds total %g", got.MigrationMB, got.MBTransferred)
	}
	// Leaving before the eviction means the abandoned tails are not
	// occupied time.
	if got.TotalTime >= base.TotalTime {
		t.Errorf("migrate total %g >= baseline total %g", got.TotalTime, base.TotalTime)
	}
	if got.LostWork >= base.LostWork {
		t.Errorf("migrate lost %g >= reactive lost %g", got.LostWork, base.LostWork)
	}
}

func TestProactiveHandArithmetic(t *testing.T) {
	// One availability of 1000 s, C=R=100, fixed T=600, perfect
	// predictor with 150 s lead. Recovery ends at 100; the interval
	// would run 600..700, but the alarm fires at 850. Timeline:
	// work 100..850 is cut by the alarm — wait, the first interval is
	// 100..700 with checkpoint 700..800 (commit, 600 useful). Next
	// interval starts at 800; alarm at 850 interrupts it with w=50;
	// proactive checkpoint 850..950 commits 50 more. Then 50 s remain:
	// a fresh interval is evicted mid-work (50 lost).
	c := cfg(100)
	c.Predict = predict.Perfect(150)
	c.Policy = predict.PolicyProactive
	res, err := Run([]float64{1000}, FixedInterval(600), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsefulWork != 650 {
		t.Errorf("useful = %g, want 650", res.UsefulWork)
	}
	if res.LostWork != 50 || res.FailedIntervals != 1 {
		t.Errorf("lost=%g failedIntervals=%d, want 50/1", res.LostWork, res.FailedIntervals)
	}
	if res.ProactiveCheckpoints != 1 || res.Commits != 1 {
		t.Errorf("proactive=%d commits=%d, want 1/1", res.ProactiveCheckpoints, res.Commits)
	}
	if res.PredHits != 1 || res.Predictions != 1 {
		t.Errorf("hits=%d fired=%d, want 1/1", res.PredHits, res.Predictions)
	}
	// MB: recovery 500 + commit 500 + proactive 500.
	if res.MBTransferred != 1500 {
		t.Errorf("MB = %g, want 1500", res.MBTransferred)
	}
}

func TestMigrateHandArithmetic(t *testing.T) {
	// Same setup under migration: the alarm at 850 triggers a
	// migration 850..950 committing w=50; the job leaves and the final
	// 50 s tail is not occupied time.
	c := cfg(100)
	c.Predict = predict.Perfect(150)
	c.Policy = predict.PolicyMigrate
	res, err := Run([]float64{1000}, FixedInterval(600), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != 950 {
		t.Errorf("total = %g, want 950", res.TotalTime)
	}
	if res.UsefulWork != 650 || res.LostWork != 0 {
		t.Errorf("useful=%g lost=%g, want 650/0", res.UsefulWork, res.LostWork)
	}
	if res.Migrations != 1 || res.MigrationMB != 500 {
		t.Errorf("migrations=%d mb=%g, want 1/500", res.Migrations, res.MigrationMB)
	}
	// The job never experiences the eviction, so the failure is
	// neither hit nor miss.
	if res.PredHits != 0 || res.PredMissed != 0 {
		t.Errorf("hits=%d missed=%d, want 0/0", res.PredHits, res.PredMissed)
	}
}

func TestZeroRecallPredictorMissesEverything(t *testing.T) {
	avail := randomTrace(23, 100)
	c := cfg(100)
	c.Predict = predict.Config{Precision: 1, Recall: 0, LeadSec: 60}
	c.Policy = predict.PolicyProactive
	got, err := Run(avail, FixedInterval(600), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predictions != 0 || got.PredMissed != len(avail) {
		t.Errorf("fired=%d missed=%d, want 0/%d", got.Predictions, got.PredMissed, len(avail))
	}
}

func TestPredictRunsAreDeterministic(t *testing.T) {
	avail := randomTrace(29, 300)
	c := cfg(100)
	c.Predict = predict.Config{Precision: 0.6, Recall: 0.7, LeadSec: 200}
	c.Policy = predict.PolicyMigrate
	c.PredictSeed = 314
	a, err := Run(avail, FixedInterval(600), c)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(avail, FixedInterval(600), c)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config diverged:\n%+v\n%+v", a, b)
	}
}

func TestInvalidPredictConfigRejected(t *testing.T) {
	c := cfg(100)
	c.Predict = predict.Config{Precision: 1.5, Recall: 0.5}
	if _, err := Run([]float64{1000}, FixedInterval(600), c); err == nil {
		t.Error("invalid predictor config accepted")
	}
}
