// Package sim is the trace-driven discrete-event simulator behind the
// paper's §5.1 evaluation: it replays the recovery–compute–checkpoint
// cycle of a long-running job against a machine's recorded
// availability durations and accounts both time efficiency (Figure 3 /
// Table 1) and network load (Figure 4 / Table 3).
//
// Semantics. Each availability duration is one uninterrupted period of
// machine uptime; the job occupies the machine for the entire period
// (the paper simulates a job that "begins before the first measurement
// … and continues to run after the last"). A period begins with a
// recovery of R seconds (the job restarts from its last stable
// checkpoint), then alternates work intervals — whose lengths come
// from the checkpoint schedule, indexed by machine age — with
// checkpoints of C seconds. Work only becomes useful when the
// checkpoint that follows it completes; a failure mid-interval or
// mid-checkpoint loses the interval. Failures can therefore strike
// during recovery and checkpointing, matching the Markov model's
// assumptions.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// Planner supplies the work-interval length to use when the machine
// has the given age (seconds since it last came up). ok is false when
// the planner cannot produce an interval. *markov.Schedule satisfies
// Planner.
type Planner interface {
	IntervalAt(age float64) (T float64, ok bool)
}

// PlannerFunc adapts a function to the Planner interface.
type PlannerFunc func(age float64) (float64, bool)

// IntervalAt implements Planner.
func (f PlannerFunc) IntervalAt(age float64) (float64, bool) { return f(age) }

// FixedInterval returns a Planner that always uses interval T — the
// classical periodic baseline.
func FixedInterval(T float64) Planner {
	return PlannerFunc(func(float64) (float64, bool) { return T, true })
}

// InterruptedPolicy selects how interrupted (partially completed)
// transfers are charged to the network.
type InterruptedPolicy int

const (
	// InterruptedProrated charges bytes in proportion to the fraction
	// of the transfer completed before the failure (default; a 500 MB
	// checkpoint killed halfway moved ~250 MB through the network).
	InterruptedProrated InterruptedPolicy = iota
	// InterruptedFull charges the full transfer size.
	InterruptedFull
	// InterruptedFree charges nothing.
	InterruptedFree
)

// Config parameterizes one simulation run.
type Config struct {
	// Costs gives the checkpoint and recovery durations (seconds). L
	// is unused by the simulator (it is a property of the analytic
	// model); the simulator's own dynamics capture staleness directly.
	Costs markov.Costs
	// CheckpointMB is the size of one checkpoint or recovery image in
	// megabytes (the paper uses 500).
	CheckpointMB float64
	// Interrupted selects the accounting policy for interrupted
	// transfers.
	Interrupted InterruptedPolicy
	// SkipFirstRecovery, when true, lets the very first availability
	// period begin computing immediately (a job with no prior state).
	// The paper's steady-state accounting keeps it false.
	SkipFirstRecovery bool
	// Trace, when set, records one "period" span per availability
	// duration plus "transfer.recovery"/"transfer.checkpoint" child
	// spans and "evicted" instants, all timestamped on the run's
	// virtual clock (cumulative seconds across periods). Nil disables
	// tracing at zero cost.
	Trace *obs.Tracer
	// TracePid is the trace lane (Chrome trace pid) the run emits on;
	// 0 means lane 1. Concurrent runs over distinct lanes export
	// deterministically.
	TracePid uint64
	// Predict configures the oracle fault predictor (DESIGN.md §13).
	// The zero value disables prediction entirely: no RNG draws happen
	// and results are bit-identical to pre-predictor runs.
	Predict predict.Config
	// Policy selects how the job acts on predictor alarms. Ignored
	// (reactive) when Predict is disabled.
	Policy predict.Policy
	// PredictSeed seeds the predictor's private RNG stream (salted via
	// predict.StreamSeed so it never collides with consumer streams).
	PredictSeed int64
	// History, when set, is scraped on the run's virtual clock: sim_*
	// metrics register on History.Registry() and one window closes at
	// each multiple of the history's window width in simulated seconds
	// (plus a final partial window at the end of the trace). The run is
	// single-threaded, so the exported series is byte-identical at any
	// GOMAXPROCS. Nil disables windowing at zero cost.
	History *obs.History
}

// Result accumulates the outcome of a simulated job.
type Result struct {
	// TotalTime is the total machine-occupied time (sum of the
	// availability durations), seconds.
	TotalTime float64
	// UsefulWork is committed work time, seconds.
	UsefulWork float64
	// LostWork is work performed but lost to failures, seconds.
	LostWork float64
	// RecoveryTime is time spent in recovery transfers (including
	// failed ones), seconds.
	RecoveryTime float64
	// CheckpointTime is time spent in checkpoint transfers (including
	// failed ones), seconds.
	CheckpointTime float64
	// MBTransferred is the network load in megabytes (recoveries +
	// checkpoints, interrupted transfers per the policy).
	MBTransferred float64
	// Commits counts completed work-interval+checkpoint cycles.
	Commits int
	// Recoveries counts successful recoveries; FailedRecoveries
	// counts availability periods too short to finish recovery.
	Recoveries, FailedRecoveries int
	// FailedCheckpoints counts checkpoints interrupted by eviction;
	// FailedIntervals counts work intervals interrupted by eviction.
	FailedCheckpoints, FailedIntervals int
	// Predictions counts predictor alarms fired (true and false);
	// PredHits counts failures that arrived with a true alarm raised,
	// PredFalse counts false alarms, and PredMissed counts failures
	// that arrived unwarned. All zero when prediction is disabled.
	Predictions, PredHits, PredFalse, PredMissed int
	// ProactiveCheckpoints counts checkpoints taken because an alarm
	// fired (PolicyProactive); Migrations counts completed
	// prediction-triggered migrations (PolicyMigrate).
	ProactiveCheckpoints, Migrations int
	// MigrationMB is the megabytes moved by migrations (a subset of
	// MBTransferred). Under PolicyMigrate the abandoned tail of each
	// migrated-away period is subtracted from TotalTime — the job left
	// the machine, so the time was not occupied — which makes the
	// migration's cost exactly one transfer plus the recovery on the
	// destination.
	MigrationMB float64
}

// Efficiency returns UsefulWork/TotalTime, the paper's machine
// utilization metric.
func (r Result) Efficiency() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return r.UsefulWork / r.TotalTime
}

// MBPerHour returns the average network load in megabytes per hour of
// occupied machine time.
func (r Result) MBPerHour() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return r.MBTransferred / (r.TotalTime / 3600)
}

// add merges o into r.
func (r *Result) add(o Result) {
	r.TotalTime += o.TotalTime
	r.UsefulWork += o.UsefulWork
	r.LostWork += o.LostWork
	r.RecoveryTime += o.RecoveryTime
	r.CheckpointTime += o.CheckpointTime
	r.MBTransferred += o.MBTransferred
	r.Commits += o.Commits
	r.Recoveries += o.Recoveries
	r.FailedRecoveries += o.FailedRecoveries
	r.FailedCheckpoints += o.FailedCheckpoints
	r.FailedIntervals += o.FailedIntervals
	r.Predictions += o.Predictions
	r.PredHits += o.PredHits
	r.PredFalse += o.PredFalse
	r.PredMissed += o.PredMissed
	r.ProactiveCheckpoints += o.ProactiveCheckpoints
	r.Migrations += o.Migrations
	r.MigrationMB += o.MigrationMB
}

// ErrNoAvailabilities is returned when Run is given an empty trace.
var ErrNoAvailabilities = errors.New("sim: no availability durations")

// chargeMB returns the megabytes charged for a transfer of size mb
// that ran for elapsed out of want seconds.
func chargeMB(mb, elapsed, want float64, complete bool, policy InterruptedPolicy) float64 {
	if complete {
		return mb
	}
	switch policy {
	case InterruptedFull:
		return mb
	case InterruptedFree:
		return 0
	default:
		if want <= 0 {
			return 0
		}
		return mb * elapsed / want
	}
}

// Run simulates the job over the given availability durations using
// the planner's intervals.
func Run(avail []float64, planner Planner, cfg Config) (Result, error) {
	if len(avail) == 0 {
		return Result{}, ErrNoAvailabilities
	}
	if planner == nil {
		return Result{}, errors.New("sim: nil planner")
	}
	if cfg.CheckpointMB < 0 {
		return Result{}, fmt.Errorf("sim: negative checkpoint size %g", cfg.CheckpointMB)
	}
	var pred *predict.Predictor
	var prng *rand.Rand
	if cfg.Predict.Enabled() {
		p, err := predict.New(cfg.Predict)
		if err != nil {
			return Result{}, err
		}
		pred = p
		prng = rand.New(rand.NewSource(predict.StreamSeed(cfg.PredictSeed)))
	}
	C, R := cfg.Costs.C, cfg.Costs.R
	tr, pid := cfg.Trace, cfg.TracePid
	if tr != nil && pid == 0 {
		pid = 1
	}
	so := newSimObs(cfg.History)
	var res Result
	elapsed := 0.0
	for idx, a := range avail {
		if a < 0 {
			return Result{}, fmt.Errorf("sim: negative availability %g at index %d", a, idx)
		}
		res.TotalTime += a
		start := elapsed
		elapsed += a
		now := start
		if tr != nil {
			tr.SpanAt(pid, 1, "period", start, a, obs.AttrInt("index", int64(idx)))
		}
		age := 0.0
		remaining := a

		// Draw this period's predictor alarms up front (the oracle knows
		// the eviction lands at a). Alarms are consumed in firing order
		// at decision points; predictor events live on trace lane tid 2.
		alarms := pred.PeriodEvents(a, prng)
		ai := 0
		trueFired := false
		migrated := false
		fireAlarm := func(ev predict.Event) {
			res.Predictions++
			if ev.True {
				trueFired = true
			} else {
				res.PredFalse++
			}
			predict.Metrics.Fired.Inc()
			if tr != nil {
				tr.EventAt(pid, 2, "predict.fired", start+ev.At, obs.AttrBool("true", ev.True))
				if !ev.True {
					tr.EventAt(pid, 2, "predict.false", start+ev.At)
				}
			}
			if !ev.True {
				predict.Metrics.False.Inc()
			}
		}
		// endPeriod settles the predictor books when the eviction lands:
		// alarms the job never reached a decision point for still fired,
		// and the failure is a hit or a miss depending on whether a true
		// alarm preceded it. A migrated-away job experiences no eviction.
		endPeriod := func() {
			if pred == nil || migrated {
				return
			}
			for ; ai < len(alarms); ai++ {
				fireAlarm(alarms[ai])
			}
			if trueFired {
				res.PredHits++
				predict.Metrics.Hits.Inc()
				if tr != nil {
					tr.EventAt(pid, 2, "predict.hit", start+a)
				}
			} else {
				res.PredMissed++
				predict.Metrics.Missed.Inc()
				if tr != nil {
					tr.EventAt(pid, 2, "predict.miss", start+a)
				}
			}
		}

		if !(idx == 0 && cfg.SkipFirstRecovery) {
			if remaining < R {
				// Evicted during recovery.
				charged := chargeMB(cfg.CheckpointMB, remaining, R, false, cfg.Interrupted)
				res.RecoveryTime += remaining
				res.FailedRecoveries++
				res.MBTransferred += charged
				so.advanceBefore(elapsed)
				so.addMB(charged)
				so.evict()
				if tr != nil {
					tr.SpanAt(pid, 1, "transfer.recovery", now, remaining,
						obs.AttrStr("outcome", "interrupted"), obs.AttrFloat("mb", charged))
					tr.EventAt(pid, 1, "evicted", start+a)
				}
				endPeriod()
				so.periodEnd(elapsed, &res)
				continue
			}
			res.RecoveryTime += R
			res.Recoveries++
			res.MBTransferred += cfg.CheckpointMB
			so.advanceBefore(now + R)
			so.addMB(cfg.CheckpointMB)
			if tr != nil {
				tr.SpanAt(pid, 1, "transfer.recovery", now, R,
					obs.AttrStr("outcome", "done"), obs.AttrFloat("mb", cfg.CheckpointMB))
			}
			now += R
			remaining -= R
			age += R
		}

		for remaining > 0 {
			T, ok := planner.IntervalAt(age)
			if !ok || T <= 0 {
				return Result{}, fmt.Errorf("sim: planner returned invalid interval %g at age %g", T, age)
			}

			// Settle alarms that fired while the job was busy (mid-recovery
			// or mid-checkpoint). A proactive checkpoint here would commit
			// no new work, so only migration acts; the alarms still count.
			actNow := false
			for ai < len(alarms) && alarms[ai].At <= age {
				fireAlarm(alarms[ai])
				ai++
				if cfg.Policy == predict.PolicyMigrate {
					actNow = true
				}
			}
			// An alarm due mid-interval interrupts the interval at its
			// firing instant under the proactive and migrate policies (the
			// job cannot tell true alarms from false ones — that is what
			// precision costs).
			w := 0.0
			if !actNow && cfg.Policy != predict.PolicyReactive &&
				ai < len(alarms) && alarms[ai].At < age+T {
				w = alarms[ai].At - age
				fireAlarm(alarms[ai])
				ai++
				actNow = true
			}
			if actNow {
				kind := "transfer.checkpoint"
				if cfg.Policy == predict.PolicyMigrate {
					kind = "transfer.migrate"
				}
				switch {
				case remaining >= w+C:
					// The image makes it out before the predicted failure.
					res.UsefulWork += w
					res.CheckpointTime += C
					res.MBTransferred += cfg.CheckpointMB
					so.advanceBefore(now + w + C)
					so.addMB(cfg.CheckpointMB)
					if tr != nil {
						tr.SpanAt(pid, 1, kind, now+w, C,
							obs.AttrStr("outcome", "done"),
							obs.AttrFloat("mb", cfg.CheckpointMB),
							obs.AttrStr("trigger", "predict"))
					}
					if cfg.Policy == predict.PolicyMigrate {
						res.Migrations++
						res.MigrationMB += cfg.CheckpointMB
						predict.Metrics.Migrations.Inc()
						// The job left for a fresher resource: the tail of
						// this period is no longer occupied time, so the
						// migration costs one transfer plus the next
						// period's recovery.
						res.TotalTime -= remaining - (w + C)
						migrated = true
						remaining = 0
					} else {
						res.ProactiveCheckpoints++
						predict.Metrics.ProactiveCheckpoints.Inc()
						now += w + C
						remaining -= w + C
						age += w + C
					}
				case remaining > w:
					// The real eviction lands mid-transfer: the alarm came
					// too late (or the image is too large) to finish.
					partial := remaining - w
					charged := chargeMB(cfg.CheckpointMB, partial, C, false, cfg.Interrupted)
					res.LostWork += w
					res.CheckpointTime += partial
					res.FailedCheckpoints++
					res.MBTransferred += charged
					so.advanceBefore(elapsed)
					so.addMB(charged)
					so.evict()
					if tr != nil {
						tr.SpanAt(pid, 1, kind, now+w, partial,
							obs.AttrStr("outcome", "interrupted"), obs.AttrFloat("mb", charged))
						tr.EventAt(pid, 1, "evicted", start+a)
					}
					remaining = 0
				default:
					// Evicted at the alarm instant itself.
					res.LostWork += w
					res.FailedIntervals++
					so.advanceBefore(elapsed)
					so.evict()
					if tr != nil {
						tr.EventAt(pid, 1, "evicted", start+a)
					}
					remaining = 0
				}
				continue
			}
			switch {
			case remaining >= T+C:
				// Interval and checkpoint both complete.
				res.UsefulWork += T
				res.CheckpointTime += C
				res.MBTransferred += cfg.CheckpointMB
				res.Commits++
				so.advanceBefore(now + T + C)
				so.addMB(cfg.CheckpointMB)
				so.commit()
				if tr != nil {
					tr.SpanAt(pid, 1, "transfer.checkpoint", now+T, C,
						obs.AttrStr("outcome", "done"),
						obs.AttrFloat("mb", cfg.CheckpointMB),
						obs.AttrFloat("t_interval", T))
				}
				now += T + C
				remaining -= T + C
				age += T + C
			case remaining > T:
				// Evicted mid-checkpoint: the interval's work is lost
				// and the partial transfer still crossed the network.
				partial := remaining - T
				charged := chargeMB(cfg.CheckpointMB, partial, C, false, cfg.Interrupted)
				res.LostWork += T
				res.CheckpointTime += partial
				res.FailedCheckpoints++
				res.MBTransferred += charged
				so.advanceBefore(elapsed)
				so.addMB(charged)
				so.evict()
				if tr != nil {
					tr.SpanAt(pid, 1, "transfer.checkpoint", now+T, partial,
						obs.AttrStr("outcome", "interrupted"), obs.AttrFloat("mb", charged))
					tr.EventAt(pid, 1, "evicted", start+a)
				}
				remaining = 0
			default:
				// Evicted mid-computation.
				res.LostWork += remaining
				res.FailedIntervals++
				so.advanceBefore(elapsed)
				so.evict()
				if tr != nil {
					tr.EventAt(pid, 1, "evicted", start+a)
				}
				remaining = 0
			}
			if remaining <= 0 {
				break
			}
		}
		endPeriod()
		so.periodEnd(elapsed, &res)
	}
	so.finish(elapsed)
	return res, nil
}
