package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

func cfg(c float64) Config {
	return Config{
		Costs:        markov.Costs{C: c, R: c, L: c},
		CheckpointMB: 500,
	}
}

func almostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestRunHandArithmetic(t *testing.T) {
	// One availability of 1000 s, C=R=100, fixed T=200.
	// recovery: 100 (500 MB). Then cycles of 300 s (200 work+100 ckpt):
	// 3 full cycles = 900 s, 600 s useful, 3 checkpoints (1500 MB).
	// 0 s remain. Total useful 600/1000.
	res, err := Run([]float64{1000}, FixedInterval(200), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.UsefulWork != 600 || res.Commits != 3 {
		t.Errorf("useful=%g commits=%d", res.UsefulWork, res.Commits)
	}
	if res.RecoveryTime != 100 || res.Recoveries != 1 {
		t.Errorf("recovery=%g n=%d", res.RecoveryTime, res.Recoveries)
	}
	if res.MBTransferred != 2000 {
		t.Errorf("MB = %g, want 2000", res.MBTransferred)
	}
	if got := res.Efficiency(); got != 0.6 {
		t.Errorf("efficiency = %g", got)
	}
}

func TestRunEvictionDuringWork(t *testing.T) {
	// Availability 450: recovery 100, one full cycle 300 (200 useful),
	// then 50 s of work lost.
	res, err := Run([]float64{450}, FixedInterval(200), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.UsefulWork != 200 || res.LostWork != 50 || res.FailedIntervals != 1 {
		t.Errorf("useful=%g lost=%g failed=%d", res.UsefulWork, res.LostWork, res.FailedIntervals)
	}
	// MB: recovery 500 + 1 checkpoint 500.
	if res.MBTransferred != 1000 {
		t.Errorf("MB = %g", res.MBTransferred)
	}
}

func TestRunEvictionDuringCheckpoint(t *testing.T) {
	// Availability 650: recovery 100, cycle 300 commits (200 useful),
	// then 200 work + 50 s into the checkpoint -> evicted. The work is
	// lost, the partial checkpoint moved 500·(50/100) = 250 MB.
	res, err := Run([]float64{650}, FixedInterval(200), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.UsefulWork != 200 || res.LostWork != 200 || res.FailedCheckpoints != 1 {
		t.Errorf("useful=%g lost=%g failedCkpt=%d", res.UsefulWork, res.LostWork, res.FailedCheckpoints)
	}
	if res.MBTransferred != 500+500+250 {
		t.Errorf("MB = %g, want 1250", res.MBTransferred)
	}
	if res.CheckpointTime != 150 {
		t.Errorf("checkpoint time = %g, want 150", res.CheckpointTime)
	}
}

func TestRunEvictionDuringRecovery(t *testing.T) {
	// Availability 40 < R=100: recovery fails, 200 MB prorated.
	res, err := Run([]float64{40}, FixedInterval(200), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRecoveries != 1 || res.Recoveries != 0 {
		t.Errorf("recoveries %d/%d", res.Recoveries, res.FailedRecoveries)
	}
	if res.MBTransferred != 200 {
		t.Errorf("MB = %g, want 200", res.MBTransferred)
	}
	if res.UsefulWork != 0 || res.Efficiency() != 0 {
		t.Error("no work should commit")
	}
}

func TestRunInterruptedPolicies(t *testing.T) {
	run := func(p InterruptedPolicy) Result {
		c := cfg(100)
		c.Interrupted = p
		res, err := Run([]float64{40}, FixedInterval(200), c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got := run(InterruptedProrated).MBTransferred; got != 200 {
		t.Errorf("prorated = %g", got)
	}
	if got := run(InterruptedFull).MBTransferred; got != 500 {
		t.Errorf("full = %g", got)
	}
	if got := run(InterruptedFree).MBTransferred; got != 0 {
		t.Errorf("free = %g", got)
	}
}

func TestRunSkipFirstRecovery(t *testing.T) {
	c := cfg(100)
	c.SkipFirstRecovery = true
	// First availability needs no recovery: 300 s = one full cycle.
	res, err := Run([]float64{300, 300}, FixedInterval(200), c)
	if err != nil {
		t.Fatal(err)
	}
	// Second availability: recovery 100 then 200 work, evicted at
	// exactly the moment work ends (no checkpoint time remains).
	if res.Commits != 1 || res.Recoveries != 1 {
		t.Errorf("commits=%d recoveries=%d", res.Commits, res.Recoveries)
	}
	if res.UsefulWork != 200 {
		t.Errorf("useful = %g", res.UsefulWork)
	}
}

func TestRunExactBoundaries(t *testing.T) {
	// Availability exactly R: recovery completes, nothing else runs,
	// and no failed interval is recorded.
	res, err := Run([]float64{100}, FixedInterval(200), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 || res.FailedIntervals != 0 || res.LostWork != 0 {
		t.Errorf("%+v", res)
	}
	// Availability exactly R+T: the work finishes but no checkpoint
	// time remains — the interval is lost.
	res, err = Run([]float64{300}, FixedInterval(200), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.UsefulWork != 0 || res.LostWork != 200 || res.FailedIntervals != 1 {
		t.Errorf("%+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, FixedInterval(10), cfg(1)); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := Run([]float64{10}, nil, cfg(1)); err == nil {
		t.Error("nil planner should error")
	}
	if _, err := Run([]float64{-3}, FixedInterval(10), cfg(1)); err == nil {
		t.Error("negative availability should error")
	}
	bad := PlannerFunc(func(float64) (float64, bool) { return 0, false })
	if _, err := Run([]float64{500}, bad, cfg(1)); err == nil {
		t.Error("failing planner should error")
	}
	c := cfg(1)
	c.CheckpointMB = -1
	if _, err := Run([]float64{10}, FixedInterval(5), c); err == nil {
		t.Error("negative size should error")
	}
}

func TestRunTimeConservation(t *testing.T) {
	// Property: every simulated second is attributed to exactly one
	// bucket — useful, lost, recovery, or checkpoint.
	rng := rand.New(rand.NewSource(21))
	w := dist.NewWeibull(0.43, 3409)
	f := func(seed int64) bool {
		n := 1 + int(seed%40+40)%40
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = w.Rand(rng)
		}
		res, err := Run(avail, FixedInterval(700), cfg(100))
		if err != nil {
			return false
		}
		sum := res.UsefulWork + res.LostWork + res.RecoveryTime + res.CheckpointTime
		return almostEqual(sum, res.TotalTime, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunBandwidthLowerBound(t *testing.T) {
	// Property: network load is at least one checkpoint per commit and
	// one recovery per successful recovery.
	rng := rand.New(rand.NewSource(22))
	w := dist.NewWeibull(0.43, 3409)
	avail := make([]float64, 200)
	for i := range avail {
		avail[i] = w.Rand(rng)
	}
	res, err := Run(avail, FixedInterval(900), cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	min := float64(res.Commits+res.Recoveries) * 500
	if res.MBTransferred < min {
		t.Errorf("MB %g below lower bound %g", res.MBTransferred, min)
	}
	if res.Efficiency() <= 0 || res.Efficiency() >= 1 {
		t.Errorf("efficiency = %g", res.Efficiency())
	}
}

func TestMBPerHour(t *testing.T) {
	r := Result{TotalTime: 7200, MBTransferred: 1000}
	if got := r.MBPerHour(); got != 500 {
		t.Errorf("MB/hour = %g", got)
	}
	var zero Result
	if zero.MBPerHour() != 0 || zero.Efficiency() != 0 {
		t.Error("zero result should report zeros")
	}
}

func TestRunModelEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := dist.NewWeibull(0.43, 3409)
	all := make([]float64, 250)
	for i := range all {
		all[i] = w.Rand(rng)
	}
	train, test := all[:25], all[25:]
	for _, m := range fit.Models {
		run, err := RunModel(train, test, m, cfg(100))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		eff := run.Result.Efficiency()
		if eff <= 0.2 || eff >= 0.95 {
			t.Errorf("%v: implausible efficiency %g", m, eff)
		}
		if run.Schedule.Len() == 0 {
			t.Errorf("%v: empty schedule", m)
		}
		if run.Schedule.Ages[0] != 100 {
			t.Errorf("%v: schedule anchored at %g, want R=100", m, run.Schedule.Ages[0])
		}
	}
}

func TestRunModelHeavyTailUsesFewerCheckpoints(t *testing.T) {
	// The paper's network-overhead headline: on heavy-tailed traces a
	// hyperexponential schedule transfers substantially less data than
	// an exponential one, at comparable efficiency.
	rng := rand.New(rand.NewSource(33))
	w := dist.NewWeibull(0.43, 3409)
	all := make([]float64, 600)
	for i := range all {
		all[i] = w.Rand(rng)
	}
	train, test := all[:25], all[25:]
	c := cfg(500) // large checkpoints make the contrast sharp
	exp, err := RunModel(train, test, fit.ModelExponential, c)
	if err != nil {
		t.Fatal(err)
	}
	hyp, err := RunModel(train, test, fit.ModelHyperexp2, c)
	if err != nil {
		t.Fatal(err)
	}
	if hyp.Result.MBTransferred >= exp.Result.MBTransferred {
		t.Errorf("hyperexp2 moved %g MB, exponential %g MB — expected savings",
			hyp.Result.MBTransferred, exp.Result.MBTransferred)
	}
	// Efficiencies stay in the same ballpark (within 15 points).
	de := math.Abs(hyp.Result.Efficiency() - exp.Result.Efficiency())
	if de > 0.15 {
		t.Errorf("efficiency gap %g too large (exp %g, hyp %g)",
			de, exp.Result.Efficiency(), hyp.Result.Efficiency())
	}
}

func TestExpectedEfficiencyAgainstSimulation(t *testing.T) {
	// The analytic steady-state efficiency should be loosely
	// predictive of the trace-driven estimate when the trace really
	// does follow the fitted family.
	rng := rand.New(rand.NewSource(35))
	e := dist.NewExponential(1.0 / 9000)
	all := make([]float64, 2000)
	for i := range all {
		all[i] = e.Rand(rng)
	}
	train, test := all[:200], all[200:]
	c := cfg(100)
	want, err := ExpectedEfficiency(train, fit.ModelExponential, c.Costs)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunModel(train, test, fit.ModelExponential, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(want, run.Result.Efficiency(), 0.1) {
		t.Errorf("analytic %g vs simulated %g", want, run.Result.Efficiency())
	}
}

func TestAggregate(t *testing.T) {
	runs := []MachineRun{
		{Result: Result{TotalTime: 10, UsefulWork: 5, MBTransferred: 100, Commits: 1}},
		{Result: Result{TotalTime: 30, UsefulWork: 15, MBTransferred: 300, Commits: 2}},
	}
	total := Aggregate(runs)
	if total.TotalTime != 40 || total.UsefulWork != 20 || total.MBTransferred != 400 || total.Commits != 3 {
		t.Errorf("aggregate = %+v", total)
	}
	if total.Efficiency() != 0.5 {
		t.Errorf("aggregate efficiency = %g", total.Efficiency())
	}
}

// TestRunTrace pins the simulator's trace contract: spans on the
// virtual clock, one period span per availability duration, transfer
// spans inside it, and no behavioral drift when tracing is attached.
func TestRunTrace(t *testing.T) {
	avail := []float64{1000, 45, 400}
	c := cfg(60)
	plain, err := Run(avail, FixedInterval(200), c)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer(obs.TracerOptions{FullFidelity: true})
	c.Trace = tr
	c.TracePid = 7
	traced, err := Run(avail, FixedInterval(200), c)
	if err != nil {
		t.Fatal(err)
	}
	if traced != plain {
		t.Fatalf("tracing changed the result:\nplain:  %+v\ntraced: %+v", plain, traced)
	}

	var periods, ckpts, recs, evicted int
	for _, ev := range tr.Events() {
		if ev.Pid != 7 {
			t.Fatalf("event on pid %d, want 7: %+v", ev.Pid, ev)
		}
		switch ev.Name {
		case "period":
			periods++
		case "transfer.checkpoint":
			ckpts++
		case "transfer.recovery":
			recs++
		case "evicted":
			evicted++
		}
	}
	if periods != len(avail) {
		t.Errorf("period spans = %d, want %d", periods, len(avail))
	}
	if ckpts != traced.Commits+traced.FailedCheckpoints {
		t.Errorf("checkpoint spans = %d, want %d", ckpts, traced.Commits+traced.FailedCheckpoints)
	}
	if recs != traced.Recoveries+traced.FailedRecoveries {
		t.Errorf("recovery spans = %d, want %d", recs, traced.Recoveries+traced.FailedRecoveries)
	}
	if evicted == 0 {
		t.Error("no evicted instants recorded")
	}

	// The trace rides the virtual clock: the last event must not end
	// past the cumulative availability time.
	total := 0.0
	for _, a := range avail {
		total += a
	}
	for _, ev := range tr.Events() {
		if ev.Ts+ev.Dur > total+1e-9 {
			t.Errorf("event past end of virtual time: %+v (total %g)", ev, total)
		}
	}
}
