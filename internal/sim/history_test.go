package sim

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

// histCfg is cfg(100) plus a virtual-clock history.
func histCfg(c, window float64, capacity int) (Config, *obs.History) {
	h := obs.NewHistory(obs.HistoryOptions{
		Registry: obs.NewRegistry(),
		Window:   window,
		Capacity: capacity,
	})
	conf := cfg(c)
	conf.History = h
	return conf, h
}

// TestSimHistoryHandArithmetic replays the TestRunHandArithmetic
// timeline (availability 1000, C=R=100, T=200) against 500 s windows
// and checks each window's series by hand: recovery transfer done at
// 100, commits at 400, 700, 1000 — so window (0,500] carries the
// recovery plus one commit and window (500,1000] two commits.
func TestSimHistoryHandArithmetic(t *testing.T) {
	conf, h := histCfg(100, 500, 8)
	res, err := Run([]float64{1000}, FixedInterval(200), conf)
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	if snap.Windows != 2 {
		t.Fatalf("windows = %d, want 2 (times %v)", snap.Windows, snap.Times)
	}
	if !reflect.DeepEqual(snap.Times, []float64{500, 1000}) {
		t.Fatalf("times = %v", snap.Times)
	}
	// Bytes: window 1 moves recovery 500 MB + commit-at-400 500 MB over
	// 500 s; window 2 moves the commits at 700 and 1000.
	mb := 500 * float64(1<<20)
	wantRate := 2 * mb / 500
	bytes := snap.Counters["sim_bytes_moved_total"]
	if bytes[0] != wantRate || bytes[1] != wantRate {
		t.Errorf("bytes rates = %v, want [%g %g]", bytes, wantRate, wantRate)
	}
	commits := snap.Counters["sim_commits_total"]
	if commits[0] != 1.0/500 || commits[1] != 2.0/500 {
		t.Errorf("commit rates = %v", commits)
	}
	// The final window's gauges carry the period-end progress.
	useful := snap.Gauges["sim_useful_seconds"]
	if useful[1] != res.UsefulWork {
		t.Errorf("useful[-1] = %g, want %g", useful[1], res.UsefulWork)
	}
	eff := snap.Gauges["sim_efficiency"]
	if eff[1] != res.Efficiency() {
		t.Errorf("efficiency[-1] = %g, want %g", eff[1], res.Efficiency())
	}
}

// TestSimHistoryEvictionWindow pins eviction accounting: availability
// 450 loses 50 s of work at t=450, which must land in the window
// closed by the period end — and the final partial window must exist.
func TestSimHistoryEvictionWindow(t *testing.T) {
	conf, h := histCfg(100, 400, 8)
	if _, err := Run([]float64{450}, FixedInterval(200), conf); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	// Boundaries: 400 (regular), 450 (final partial from periodEnd).
	if !reflect.DeepEqual(snap.Times, []float64{400, 450}) {
		t.Fatalf("times = %v", snap.Times)
	}
	ev := snap.Counters["sim_evictions_total"]
	if ev[0] != 0 || ev[1] == 0 {
		t.Errorf("eviction rates = %v, want the eviction in the final window", ev)
	}
}

// TestSimHistoryDeterministic pins the determinism contract from
// DESIGN.md §17: the JSON-encoded history of a fixed workload is
// byte-identical across runs and GOMAXPROCS settings (Run is a single
// goroutine on a virtual clock; bytes are integer-accounted).
func TestSimHistoryDeterministic(t *testing.T) {
	avail := []float64{1000, 450, 650, 2000, 137.5}
	render := func() []byte {
		conf, h := histCfg(100, 300, 16)
		if _, err := Run(avail, FixedInterval(200), conf); err != nil {
			t.Fatal(err)
		}
		var buf []byte
		buf, err := json.Marshal(h.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	base := render()
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		got := render()
		runtime.GOMAXPROCS(old)
		if string(got) != string(base) {
			t.Fatalf("history diverged at GOMAXPROCS=%d:\n%s\nvs\n%s", procs, got, base)
		}
	}
}

// TestSimHistoryOffByDefault: a zero Config records nothing and the
// accounting sites all no-op.
func TestSimHistoryOffByDefault(t *testing.T) {
	if newSimObs(nil) != nil {
		t.Fatal("nil history should give a nil simObs")
	}
	var o *simObs
	o.addMB(5)
	o.commit()
	o.evict()
	o.advanceBefore(10)
	o.advance(10)
	o.periodEnd(10, &Result{})
	o.finish(10)
}

// TestMBBytes pins the MB→bytes conversion used by the wire counter.
func TestMBBytes(t *testing.T) {
	if got := mbBytes(1); got != 1<<20 {
		t.Errorf("mbBytes(1) = %d", got)
	}
	if got := mbBytes(0.5); got != 1<<19 {
		t.Errorf("mbBytes(0.5) = %d", got)
	}
	if got := mbBytes(-3); got != 0 {
		t.Errorf("mbBytes(-3) = %d", got)
	}
}
