package sim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
)

func TestRunVariableConstantSourceMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	w := dist.NewWeibull(0.43, 3409)
	avail := make([]float64, 150)
	for i := range avail {
		avail[i] = w.Rand(rng)
	}
	c := cfg(110)
	planner := FixedInterval(800)
	base, err := Run(avail, planner, c)
	if err != nil {
		t.Fatal(err)
	}
	variable, err := RunVariable(avail, planner, ConstantCosts{C: 110, R: 110}, c)
	if err != nil {
		t.Fatal(err)
	}
	if base != variable {
		t.Errorf("constant-cost RunVariable differs from Run:\n%+v\n%+v", base, variable)
	}
}

func TestRunVariableJitteredCostsBarelyMoveEfficiency(t *testing.T) {
	// Mean-preserving variability of the transfer cost against a
	// schedule planned for the mean: shorter transfers save what
	// longer ones lose, and failure interactions are second-order, so
	// the efficiency shift is tiny — §5.3's conclusion that variable
	// C and R are "not drastically effecting the simulations",
	// reproduced quantitatively.
	rng := rand.New(rand.NewSource(53))
	w := dist.NewWeibull(0.43, 3409)
	avail := make([]float64, 2500)
	for i := range avail {
		avail[i] = w.Rand(rng)
	}
	c := cfg(110)
	planner := FixedInterval(800)
	constant, err := RunVariable(avail, planner, ConstantCosts{C: 110, R: 110}, c)
	if err != nil {
		t.Fatal(err)
	}
	jitterRng := rand.New(rand.NewSource(54))
	jittered, err := RunVariable(avail, planner, LinkCosts{
		TransferTime: func(r *rand.Rand) float64 {
			// Mean-preserving lognormal jitter around 110 s.
			const sigma = 0.5
			return 110 * math.Exp(sigma*r.NormFloat64()-sigma*sigma/2)
		},
		Rng: jitterRng,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	de := math.Abs(constant.Efficiency() - jittered.Efficiency())
	if de > 0.02 {
		t.Errorf("cost variability moved efficiency by %g (constant %g vs jittered %g); §5.3 expects small effects",
			de, constant.Efficiency(), jittered.Efficiency())
	}
	// The runs did differ in their microstructure even though the
	// aggregate barely moved.
	if constant.Commits == jittered.Commits && constant.MBTransferred == jittered.MBTransferred {
		t.Error("jittered run identical to constant run; the cost source is not being used")
	}
}

func TestRunVariableTimeConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	w := dist.NewWeibull(0.43, 3409)
	avail := make([]float64, 300)
	for i := range avail {
		avail[i] = w.Rand(rng)
	}
	src := LinkCosts{
		TransferTime: func(r *rand.Rand) float64 { return 50 + 100*r.Float64() },
		Rng:          rand.New(rand.NewSource(56)),
	}
	res, err := RunVariable(avail, FixedInterval(600), src, cfg(100))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.UsefulWork + res.LostWork + res.RecoveryTime + res.CheckpointTime
	if math.Abs(sum-res.TotalTime) > 1e-6 {
		t.Errorf("time not conserved: %g vs %g", sum, res.TotalTime)
	}
}

func TestRunVariableWithModelSchedule(t *testing.T) {
	// End-to-end: fit, schedule at the mean cost, replay with variable
	// costs.
	rng := rand.New(rand.NewSource(57))
	w := dist.NewWeibull(0.43, 3409)
	all := make([]float64, 300)
	for i := range all {
		all[i] = w.Rand(rng)
	}
	train, test := all[:25], all[25:]
	d, err := fit.Fit(fit.ModelWeibull, train)
	if err != nil {
		t.Fatal(err)
	}
	m := markov.Model{Avail: d, Costs: markov.Costs{C: 110, R: 110, L: 110}}
	sched, err := m.BuildSchedule(110, markov.ScheduleOptions{Horizon: 400000})
	if err != nil {
		t.Fatal(err)
	}
	src := LinkCosts{
		TransferTime: func(r *rand.Rand) float64 { return 110 * (0.8 + 0.4*r.Float64()) },
		Rng:          rand.New(rand.NewSource(58)),
	}
	res, err := RunVariable(test, sched, src, cfg(110))
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency() <= 0.3 || res.Efficiency() >= 0.95 {
		t.Errorf("efficiency = %g", res.Efficiency())
	}
}

func TestRunVariableErrors(t *testing.T) {
	if _, err := RunVariable(nil, FixedInterval(5), ConstantCosts{}, cfg(1)); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := RunVariable([]float64{10}, nil, ConstantCosts{}, cfg(1)); err == nil {
		t.Error("nil planner should error")
	}
	if _, err := RunVariable([]float64{10}, FixedInterval(5), nil, cfg(1)); err == nil {
		t.Error("nil source should error")
	}
	if _, err := RunVariable([]float64{-1}, FixedInterval(5), ConstantCosts{}, cfg(1)); err == nil {
		t.Error("negative availability should error")
	}
	bad := PlannerFunc(func(float64) (float64, bool) { return 0, false })
	if _, err := RunVariable([]float64{500}, bad, ConstantCosts{C: 1, R: 1}, cfg(1)); err == nil {
		t.Error("failing planner should error")
	}
}
