package sim

// Virtual-clock history: when Config.History is set, the run registers
// sim_* metrics on the history's registry and closes its windows at
// fixed boundaries of simulated time — the exact analogue of the
// wall-clock self-scraper in the servers, driven by the event loop
// instead of a ticker. The paper's headline quantity (network overhead
// over time) falls out as the sim_bytes_moved_total rate series.
//
// Determinism is structural: Run is a single goroutine consuming a
// fixed event sequence, every Scrape happens at a virtual timestamp
// computed from that sequence, and bytes are accounted in integer
// units — so the exported series is byte-identical at any GOMAXPROCS
// (pinned by TestSimHistoryDeterministic).

import "github.com/cycleharvest/ckptsched/internal/obs"

// simObs bundles the sim_* metrics with the window-boundary scraper.
// A nil *simObs no-ops everywhere, so Run's accounting sites stay
// unconditional (the same off-switch shape as the rest of obs).
type simObs struct {
	h    *obs.History
	win  float64
	next float64 // next virtual-time window boundary to scrape

	bytes      *obs.Counter
	commits    *obs.Counter
	evictions  *obs.Counter
	useful     *obs.FloatGauge
	efficiency *obs.FloatGauge
}

// mbBytes converts checkpoint megabytes to whole bytes — counters are
// integers, and integer accounting is what keeps series exact.
func mbBytes(mb float64) uint64 {
	if mb <= 0 {
		return 0
	}
	return uint64(mb*(1<<20) + 0.5)
}

// newSimObs primes the history at virtual t=0 and registers the sim_*
// metrics (DESIGN.md §17). Returns nil when h is nil.
func newSimObs(h *obs.History) *simObs {
	if h == nil {
		return nil
	}
	reg := h.Registry()
	o := &simObs{
		h:    h,
		win:  h.Window(),
		next: h.Window(),
		bytes: reg.Counter("sim_bytes_moved_total",
			"Bytes moved over the simulated network (checkpoints, recoveries, migrations)."),
		commits: reg.Counter("sim_commits_total",
			"Completed work-interval+checkpoint cycles."),
		evictions: reg.Counter("sim_evictions_total",
			"Transfers or intervals interrupted by eviction."),
		useful: reg.FloatGauge("sim_useful_seconds",
			"Cumulative committed work time, virtual seconds."),
		efficiency: reg.FloatGauge("sim_efficiency",
			"Running useful-work fraction of elapsed virtual time."),
	}
	h.Scrape(0) // baseline: windows start at virtual zero
	return o
}

// addMB charges a transfer to the wire series.
func (o *simObs) addMB(mb float64) {
	if o == nil {
		return
	}
	o.bytes.Add(mbBytes(mb))
}

func (o *simObs) commit() {
	if o == nil {
		return
	}
	o.commits.Inc()
}

func (o *simObs) evict() {
	if o == nil {
		return
	}
	o.evictions.Inc()
}

// advanceBefore closes every window boundary strictly earlier than t.
// Run calls it with an event's completion time just before accounting
// the event, so an event completing at time t lands in the window
// whose end is the first boundary >= t — never an earlier one.
func (o *simObs) advanceBefore(t float64) {
	if o == nil {
		return
	}
	for o.next < t {
		o.h.Scrape(o.next)
		o.next += o.win
	}
}

// advance closes every boundary up to and including t — the inclusive
// variant periodEnd uses once all of a period's events are accounted.
func (o *simObs) advance(t float64) {
	if o == nil {
		return
	}
	for o.next <= t {
		o.h.Scrape(o.next)
		o.next += o.win
	}
}

// periodEnd refreshes the progress gauges and closes any windows the
// eviction jump crossed.
func (o *simObs) periodEnd(t float64, res *Result) {
	if o == nil {
		return
	}
	o.useful.Set(res.UsefulWork)
	if t > 0 {
		o.efficiency.Set(res.UsefulWork / t)
	}
	o.advance(t)
}

// finish closes the final partial window so the last events are never
// silently dropped from the series (a no-op when t already sits on a
// scraped boundary — Scrape ignores non-advancing timestamps).
func (o *simObs) finish(t float64) {
	if o == nil {
		return
	}
	o.h.Scrape(t)
}
