package sim

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
)

// MachineRun is the outcome of simulating one machine under one model.
type MachineRun struct {
	Machine  string
	Model    fit.Model
	Result   Result
	Schedule *markov.Schedule
}

// RunModel fits the given model family to the training durations,
// builds the checkpoint schedule the system would use on that machine
// (anchored at age R, the machine age when recovery completes and the
// first work interval begins), and replays the experimental durations
// through it. This is exactly the paper's per-machine simulation
// protocol: "use each training set to calculate MLE parameters … then
// simulate a job" over the remaining values.
func RunModel(train, test []float64, model fit.Model, cfg Config) (MachineRun, error) {
	d, err := fit.Fit(model, train)
	if err != nil {
		return MachineRun{}, fmt.Errorf("sim: fit %v: %w", model, err)
	}
	return RunFitted(d, model, test, cfg)
}

// RunFitted is RunModel with the fitting stage factored out: it builds
// the schedule and replays the experimental durations for an
// already-estimated availability distribution. The fit-once sweep in
// internal/experiments uses it to share one fit.Cache entry across the
// whole checkpoint-duration axis; the result is identical to RunModel
// on the same fit.
func RunFitted(d dist.Distribution, model fit.Model, test []float64, cfg Config) (MachineRun, error) {
	m := markov.Model{Avail: d, Costs: cfg.Costs}

	// Plan at least as far as the longest availability period so the
	// schedule never falls back to extending its last interval within
	// observed uptimes.
	maxAvail := 0.0
	for _, a := range test {
		if a > maxAvail {
			maxAvail = a
		}
	}
	sched, err := m.BuildSchedule(cfg.Costs.R, markov.ScheduleOptions{
		Horizon: maxAvail + cfg.Costs.R + cfg.Costs.C + 1,
	})
	if err != nil {
		return MachineRun{}, fmt.Errorf("sim: schedule %v: %w", model, err)
	}
	res, err := Run(test, sched, cfg)
	if err != nil {
		return MachineRun{}, err
	}
	return MachineRun{Model: model, Result: res, Schedule: sched}, nil
}

// ExpectedEfficiency returns the analytic steady-state efficiency the
// Markov model predicts for this machine/model/cost combination: the
// reciprocal of the overhead ratio Γ/T at T_opt for a fresh resource
// (§5.1: "the expected efficiency is just the reciprocal of the
// quantity Γ … evaluated at T_opt").
func ExpectedEfficiency(train []float64, model fit.Model, costs markov.Costs) (float64, error) {
	d, err := fit.Fit(model, train)
	if err != nil {
		return 0, err
	}
	m := markov.Model{Avail: d, Costs: costs}
	_, ratio, err := m.Topt(costs.R, markov.OptimizeOptions{})
	if err != nil {
		return 0, err
	}
	return 1 / ratio, nil
}

// Aggregate sums per-machine results into a pool-wide Result.
func Aggregate(runs []MachineRun) Result {
	var total Result
	for _, r := range runs {
		total.add(r.Result)
	}
	return total
}
