package sim

import (
	"errors"
	"math/rand"
)

// CostSource supplies per-transfer checkpoint/recovery durations. The
// §5.3 validation notes that "the Markov model uses constant values of
// C and R while in reality these values are variable"; this interface
// lets the simulator replay that reality. ckptnet.Link composes
// naturally: draw a transfer time per checkpoint image.
type CostSource interface {
	// NextRecovery returns the duration of the next recovery transfer.
	NextRecovery() float64
	// NextCheckpoint returns the duration of the next checkpoint
	// transfer.
	NextCheckpoint() float64
}

// ConstantCosts is the fixed-cost source matching the plain simulator.
type ConstantCosts struct {
	C, R float64
}

// NextRecovery implements CostSource.
func (c ConstantCosts) NextRecovery() float64 { return c.R }

// NextCheckpoint implements CostSource.
func (c ConstantCosts) NextCheckpoint() float64 { return c.C }

// LinkCosts draws each transfer duration from a link model, the way
// the live system experiences them.
type LinkCosts struct {
	// TransferTime mirrors ckptnet.Link.TransferTime for one image.
	TransferTime func(rng *rand.Rand) float64
	// Rng drives the draws.
	Rng *rand.Rand
}

// NextRecovery implements CostSource.
func (l LinkCosts) NextRecovery() float64 { return l.TransferTime(l.Rng) }

// NextCheckpoint implements CostSource.
func (l LinkCosts) NextCheckpoint() float64 { return l.TransferTime(l.Rng) }

// RunVariable simulates the job with per-transfer costs drawn from
// source, while the planner's schedule was computed for whatever
// constant cost the caller assumed — exactly the mismatch between the
// analytic model and the live system. Accounting matches Run: work
// commits only when its checkpoint completes, interrupted transfers
// charge prorated bytes.
func RunVariable(avail []float64, planner Planner, source CostSource, cfg Config) (Result, error) {
	if len(avail) == 0 {
		return Result{}, ErrNoAvailabilities
	}
	if planner == nil {
		return Result{}, errors.New("sim: nil planner")
	}
	if source == nil {
		return Result{}, errors.New("sim: nil cost source")
	}
	var res Result
	for idx, a := range avail {
		if a < 0 {
			return Result{}, errors.New("sim: negative availability")
		}
		res.TotalTime += a
		age := 0.0
		remaining := a

		if !(idx == 0 && cfg.SkipFirstRecovery) {
			r := source.NextRecovery()
			if remaining < r {
				res.RecoveryTime += remaining
				res.FailedRecoveries++
				res.MBTransferred += chargeMB(cfg.CheckpointMB, remaining, r, false, cfg.Interrupted)
				continue
			}
			res.RecoveryTime += r
			res.Recoveries++
			res.MBTransferred += cfg.CheckpointMB
			remaining -= r
			age += r
		}

		for remaining > 0 {
			T, ok := planner.IntervalAt(age)
			if !ok || T <= 0 {
				return Result{}, errors.New("sim: planner returned invalid interval")
			}
			c := source.NextCheckpoint()
			switch {
			case remaining >= T+c:
				res.UsefulWork += T
				res.CheckpointTime += c
				res.MBTransferred += cfg.CheckpointMB
				res.Commits++
				remaining -= T + c
				age += T + c
			case remaining > T:
				partial := remaining - T
				res.LostWork += T
				res.CheckpointTime += partial
				res.FailedCheckpoints++
				res.MBTransferred += chargeMB(cfg.CheckpointMB, partial, c, false, cfg.Interrupted)
				remaining = 0
			default:
				res.LostWork += remaining
				res.FailedIntervals++
				remaining = 0
			}
		}
	}
	return res, nil
}
