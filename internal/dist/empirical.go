package dist

import (
	"fmt"
	"math/rand"
	"sort"
)

// Empirical is the empirical distribution of an observed sample. It is
// used for goodness-of-fit testing (Kolmogorov-Smirnov distance to a
// fitted model) and for trace bootstrapping in the simulators.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds the empirical distribution of sample. The input
// slice is copied. It panics on an empty sample.
func NewEmpirical(sample []float64) *Empirical {
	if len(sample) == 0 {
		panic("dist: empirical distribution needs a non-empty sample")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &Empirical{sorted: s}
}

// N returns the sample size.
func (e *Empirical) N() int { return len(e.sorted) }

// CDF returns the fraction of the sample <= x.
func (e *Empirical) CDF(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	// Advance over ties so that CDF is right-continuous.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Survival returns 1 - CDF(x).
func (e *Empirical) Survival(x float64) float64 { return 1 - e.CDF(x) }

// PDF is not defined for an empirical distribution; it returns 0. The
// type intentionally does not satisfy Distribution's contract of a
// density — it is a CDF-only object.
func (e *Empirical) PDF(float64) float64 { return 0 }

// Quantile returns the p-th order statistic (type-1 quantile).
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	switch {
	case p <= 0:
		return e.sorted[0]
	case p >= 1:
		return e.sorted[n-1]
	}
	i := int(p * float64(n))
	if i >= n {
		i = n - 1
	}
	return e.sorted[i]
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 {
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Rand draws uniformly from the sample (bootstrap sampling).
func (e *Empirical) Rand(rng *rand.Rand) float64 {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// KSDistance returns the Kolmogorov-Smirnov statistic
// sup_x |F_n(x) − F(x)| between the empirical CDF and a model CDF.
func (e *Empirical) KSDistance(model Distribution) float64 {
	n := float64(len(e.sorted))
	maxD := 0.0
	for i, x := range e.sorted {
		fm := model.CDF(x)
		lo := float64(i) / n // empirical CDF just below x
		hi := float64(i+1) / n
		if d := fm - lo; d > maxD {
			maxD = d
		}
		if d := hi - fm; d > maxD {
			maxD = d
		}
	}
	return maxD
}

// String returns a short human-readable description.
func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d)", len(e.sorted))
}
