package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogNormalKnownValues(t *testing.T) {
	l := NewLogNormal(0, 1)
	// Median is e^µ = 1.
	if got := l.CDF(1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(median) = %g", got)
	}
	if got := l.Quantile(0.5); !almostEqual(got, 1, 1e-9) {
		t.Errorf("median = %g", got)
	}
	// Mean = e^{1/2}.
	if got := l.Mean(); !almostEqual(got, math.Exp(0.5), 1e-12) {
		t.Errorf("mean = %g", got)
	}
	// Var = (e−1)e.
	if got := l.Var(); !almostEqual(got, (math.E-1)*math.E, 1e-12) {
		t.Errorf("var = %g", got)
	}
	// PDF at the median: 1/(1·1·√2π).
	if got := l.PDF(1); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("PDF(1) = %g", got)
	}
	if l.PDF(0) != 0 || l.CDF(-1) != 0 || l.Survival(0) != 1 {
		t.Error("edge behavior at x<=0 wrong")
	}
}

func TestLogNormalPartialMomentFormula(t *testing.T) {
	l := NewLogNormal(6.5, 1.2)
	for _, x := range []float64{10, 300, 5000, 1e6} {
		got := l.PartialMoment(x)
		want := NumericPartialMoment(l, x)
		if !almostEqual(got, want, 1e-6) {
			t.Errorf("PartialMoment(%g) = %g, quadrature %g", x, got, want)
		}
	}
	// Converges to the mean.
	if got := l.PartialMoment(1e12); !almostEqual(got, l.Mean(), 1e-6) {
		t.Errorf("PM(huge) = %g, mean %g", got, l.Mean())
	}
}

func TestLogNormalSurvivalIntegral(t *testing.T) {
	l := NewLogNormal(6.5, 1.2)
	// SurvivalIntegral(0) = Mean.
	if got := l.SurvivalIntegral(0); !almostEqual(got, l.Mean(), 1e-12) {
		t.Errorf("SI(0) = %g, mean %g", got, l.Mean())
	}
	// MRL via the closed form must match the generic conditional-mean
	// route at several ages.
	for _, age := range []float64{100, 1000, 20000} {
		mrl := MeanResidualLife(l, age)
		c := NewConditional(l, age)
		// Direct numeric check through the conditional quantile range.
		hi := c.Quantile(1 - 1e-10)
		const steps = 400000
		h := hi / steps
		direct := 0.0
		for i := 0; i < steps; i++ {
			direct += c.Survival((float64(i) + 0.5) * h)
		}
		direct *= h
		if !almostEqual(mrl, direct, 1e-2) {
			t.Errorf("age %g: MRL %g vs direct %g", age, mrl, direct)
		}
	}
}

func TestLogNormalQuantileRoundTrip(t *testing.T) {
	l := NewLogNormal(5, 0.8)
	for _, p := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
		x := l.Quantile(p)
		if got := l.CDF(x); !almostEqual(got, p, 1e-10) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestLogNormalSampling(t *testing.T) {
	l := NewLogNormal(6, 0.7)
	rng := rand.New(rand.NewSource(12))
	const n = 300000
	sum := 0.0
	for range n {
		v := l.Rand(rng)
		if v <= 0 {
			t.Fatal("non-positive variate")
		}
		sum += v
	}
	if got := sum / n; !almostEqual(got, l.Mean(), 0.02) {
		t.Errorf("sample mean %g, analytic %g", got, l.Mean())
	}
}

func TestLogNormalIncreasingThenDecreasingHazard(t *testing.T) {
	// Lognormal hazard rises to a peak then falls — unlike any Weibull
	// — which is why it behaves differently in model selection.
	l := NewLogNormal(0, 1)
	h1 := Hazard(l, 0.2)
	h2 := Hazard(l, 1.0)
	h3 := Hazard(l, 50.0)
	if !(h2 > h1) || !(h3 < h2) {
		t.Errorf("hazard shape wrong: %g, %g, %g", h1, h2, h3)
	}
}

func TestLogNormalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("sigma=0 should panic")
		}
	}()
	NewLogNormal(0, 0)
}

func TestLogNormalWorksInConditional(t *testing.T) {
	c := NewConditional(NewLogNormal(6.5, 1.2), 2000)
	pm := c.PartialMoment(500)
	want := NumericPartialMoment(c, 500)
	if !almostEqual(pm, want, 1e-5) {
		t.Errorf("conditional PM = %g, quadrature %g", pm, want)
	}
}
