// Package dist implements the availability-duration distributions the
// paper fits to Condor occupancy data: exponential, Weibull, and
// k-phase hyperexponential (Eqs. 1-7), together with the
// future-lifetime (age-conditioned) distributions of §3.3 (Eqs. 8-10).
//
// Beyond the textbook density/distribution functions, every family
// exposes the closed-form partial moment ∫₀ˣ t·f(t) dt that the Markov
// model's expected-cost terms K02 and K22 require (§3.5); having it in
// closed form is what makes schedule optimization fast enough to run
// once per work interval.
package dist

import (
	"math"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/mathx"
)

// Distribution is a continuous nonnegative lifetime distribution.
//
// Implementations must be immutable after construction and safe for
// concurrent use.
type Distribution interface {
	// PDF evaluates the probability density function f(x).
	PDF(x float64) float64
	// CDF evaluates the cumulative distribution function F(x).
	CDF(x float64) float64
	// Survival evaluates 1 - F(x), computed to avoid cancellation
	// where the family permits.
	Survival(x float64) float64
	// Quantile returns inf{x : F(x) >= p} for p in [0, 1).
	Quantile(p float64) float64
	// Mean returns E[X].
	Mean() float64
	// PartialMoment returns ∫₀ˣ t·f(t) dt, the unnormalized
	// contribution of lifetimes up to x to the mean.
	PartialMoment(x float64) float64
	// Rand draws one variate using rng.
	Rand(rng *rand.Rand) float64
	// Name identifies the family (e.g. "weibull").
	Name() string
}

// Varer is implemented by distributions that expose their variance in
// closed form.
type Varer interface {
	Var() float64
}

// Memoryless is an optional capability interface. A distribution whose
// future-lifetime law is independent of age — the exponential family —
// reports it by returning true. Wrappers that preserve the law (e.g.
// Conditional) delegate to their base; wrappers that do not implement
// the interface simply never claim the property, which is the safe
// default.
//
// Consumers must detect the capability through IsMemoryless rather
// than by inspecting Name(), so renaming a family or interposing a
// wrapper cannot silently change scheduling behavior.
type Memoryless interface {
	Memoryless() bool
}

// IsMemoryless reports whether d declares itself memoryless via the
// Memoryless capability interface.
func IsMemoryless(d Distribution) bool {
	m, ok := d.(Memoryless)
	return ok && m.Memoryless()
}

// quantileByBisection inverts a CDF numerically. It is the generic
// fallback used by families without a closed-form quantile.
func quantileByBisection(cdf func(float64) float64, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, 1.0
	for cdf(hi) < p {
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for range 200 {
		mid := 0.5 * (lo + hi)
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*math.Max(1, hi) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// NumericPartialMoment computes ∫₀ˣ t·f(t) dt numerically. It exists
// as an oracle for property tests and as a fallback for distributions
// without closed-form partial moments.
//
// It uses integration by parts, ∫₀ˣ t f(t) dt = x·F(x) − ∫₀ˣ F(t) dt,
// so only the bounded, monotone CDF is integrated (the density may be
// singular at the origin for Weibull shapes < 1), and it splits the
// range at quantiles so that mass concentrated far from x is resolved.
func NumericPartialMoment(d Distribution, x float64) float64 {
	if x <= 0 {
		return 0
	}
	intF := 0.0
	prev := 0.0
	fx := d.CDF(x)
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		if p >= fx {
			break
		}
		q := d.Quantile(p)
		if q >= x {
			break
		}
		intF += mathx.SimpsonAdaptive(d.CDF, prev, q, 1e-12*math.Max(1, q-prev))
		prev = q
	}
	intF += mathx.SimpsonAdaptive(d.CDF, prev, x, 1e-12*math.Max(1, x-prev))
	return x*fx - intF
}

// SurvivalIntegraler is implemented by distributions that can evaluate
// ∫ₓ^∞ S(u) du in closed form. The integral equals E[(X−x)⁺] and gives
// a cancellation-free route to the mean residual life.
type SurvivalIntegraler interface {
	SurvivalIntegral(x float64) float64
}

// MeanResidualLife returns E[X - t | X > t], the expected remaining
// lifetime of a resource that has already been available for t
// seconds. For heavy-tailed families this grows with t, which is the
// mechanism behind the paper's aperiodic schedules.
func MeanResidualLife(d Distribution, t float64) float64 {
	s := d.Survival(t)
	if s <= 0 {
		return 0
	}
	if si, ok := d.(SurvivalIntegraler); ok {
		return si.SurvivalIntegral(t) / s
	}
	// Numeric fallback: integrate the conditional survival over
	// quantile segments, with an exponential-tail correction beyond
	// the highest quantile.
	c := NewConditional(d, t)
	integral := 0.0
	prev := 0.0
	const pMax = 1 - 1e-10
	for _, p := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 0.9999, pMax} {
		q := c.Quantile(p)
		if math.IsInf(q, 1) || q <= prev {
			continue
		}
		integral += mathx.SimpsonAdaptive(c.Survival, prev, q, 1e-12*math.Max(1, q-prev))
		prev = q
	}
	if h := Hazard(d, t+prev); h > 0 && !math.IsInf(h, 1) {
		integral += c.Survival(prev) / h
	}
	return integral
}

// Hazard returns the hazard rate f(t)/S(t), the instantaneous failure
// intensity at age t.
func Hazard(d Distribution, t float64) float64 {
	s := d.Survival(t)
	if s <= 0 {
		return math.Inf(1)
	}
	return d.PDF(t) / s
}
