package dist

import (
	"math"
	"math/rand"
	"testing"
)

func testMixture() Mixture {
	return NewMixture(
		[]float64{0.6, 0.4},
		[]Distribution{
			NewExponential(1.0 / 300), // interactive gaps, mean 5 min
			NewWeibull(0.7, 4*3600),   // overnight stretches
		},
	)
}

func TestMixtureBasicIdentities(t *testing.T) {
	m := testMixture()
	for _, x := range []float64{1, 100, 5000, 100000} {
		if got := m.CDF(x) + m.Survival(x); !almostEqual(got, 1, 1e-12) {
			t.Errorf("CDF+Survival at %g = %g", x, got)
		}
	}
	wantMean := 0.6*300 + 0.4*4*3600*math.Gamma(1+1/0.7)
	if got := m.Mean(); !almostEqual(got, wantMean, 1e-12) {
		t.Errorf("Mean = %g, want %g", got, wantMean)
	}
}

func TestMixturePartialMomentMatchesQuadrature(t *testing.T) {
	m := testMixture()
	for _, x := range []float64{50, 1000, 40000} {
		got := m.PartialMoment(x)
		want := NumericPartialMoment(m, x)
		if !almostEqual(got, want, 1e-5) {
			t.Errorf("PartialMoment(%g) = %g, quadrature %g", x, got, want)
		}
	}
}

func TestMixtureQuantileRoundTrip(t *testing.T) {
	m := testMixture()
	for _, p := range []float64{0.05, 0.4, 0.6, 0.95} {
		x := m.Quantile(p)
		if got := m.CDF(x); !almostEqual(got, p, 1e-7) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	if m.Quantile(0) != 0 || !math.IsInf(m.Quantile(1), 1) {
		t.Error("quantile edges wrong")
	}
}

func TestMixtureSurvivalIntegralConsistent(t *testing.T) {
	m := testMixture()
	// MRL via SurvivalIntegral must match direct numeric integration
	// of the conditional survival.
	for _, age := range []float64{0, 200, 10000} {
		mrl := MeanResidualLife(m, age)
		c := NewConditional(m, age)
		// Direct: ∫ survival via quadrature over quantile range.
		hi := c.Quantile(1 - 1e-9)
		direct := 0.0
		const steps = 200000
		h := hi / steps
		for i := 0; i < steps; i++ {
			direct += c.Survival((float64(i) + 0.5) * h)
		}
		direct *= h
		if !almostEqual(mrl, direct, 5e-3) {
			t.Errorf("age %g: MRL %g vs direct %g", age, mrl, direct)
		}
	}
}

func TestMixtureBimodalMRLGrows(t *testing.T) {
	// The defining behavior: once a machine survives the interactive
	// regime, expected remaining life jumps toward the long component.
	m := testMixture()
	early := MeanResidualLife(m, 0)
	late := MeanResidualLife(m, 3600)
	if late <= early {
		t.Errorf("MRL did not grow: %g -> %g", early, late)
	}
}

func TestMixtureSampling(t *testing.T) {
	m := testMixture()
	rng := rand.New(rand.NewSource(8))
	const n = 200000
	sum := 0.0
	for range n {
		v := m.Rand(rng)
		if v < 0 {
			t.Fatal("negative variate")
		}
		sum += v
	}
	if got := sum / n; !almostEqual(got, m.Mean(), 0.05) {
		t.Errorf("sample mean %g, analytic %g", got, m.Mean())
	}
}

func TestMixtureName(t *testing.T) {
	if got := testMixture().Name(); got != "mixture(exponential+weibull)" {
		t.Errorf("Name = %q", got)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []struct {
		name string
		w    []float64
		c    []Distribution
	}{
		{"empty", nil, nil},
		{"mismatch", []float64{1}, []Distribution{NewExponential(1), NewExponential(2)}},
		{"negative", []float64{-1, 2}, []Distribution{NewExponential(1), NewExponential(2)}},
		{"nil component", []float64{1, 1}, []Distribution{NewExponential(1), nil}},
		{"zero weights", []float64{0, 0}, []Distribution{NewExponential(1), NewExponential(2)}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			NewMixture(c.w, c.c)
		}()
	}
}

func TestMixtureConditionalWorks(t *testing.T) {
	// Mixtures must compose with the future-lifetime machinery used by
	// the Markov model.
	m := testMixture()
	c := NewConditional(m, 1800)
	if got := c.CDF(0); got != 0 {
		t.Errorf("conditional CDF(0) = %g", got)
	}
	pm := c.PartialMoment(600)
	want := NumericPartialMoment(c, 600)
	if !almostEqual(pm, want, 1e-5) {
		t.Errorf("conditional PM = %g, quadrature %g", pm, want)
	}
}
