package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Mixture is a finite mixture of arbitrary component lifetime
// distributions. Desktop availability is naturally multi-modal —
// short interactive-use gaps mixed with long overnight and weekend
// stretches — and a mixture of a short-scale and a long-scale
// component reproduces that bimodality, which none of the single
// parametric families can. The synthetic Condor pool uses mixtures for
// exactly this reason.
//
// All quantities are closed-form weighted sums of the component
// quantities, so mixtures are as cheap inside the Markov model as the
// primitive families.
type Mixture struct {
	W          []float64 // normalized weights
	Components []Distribution
}

// NewMixture builds a mixture with the given weights (normalized
// internally). It panics on structural errors, matching the other
// constructors in this package.
func NewMixture(w []float64, components []Distribution) Mixture {
	if len(w) == 0 || len(w) != len(components) {
		panic(fmt.Sprintf("dist: mixture needs matching non-empty weights and components, got %d and %d", len(w), len(components)))
	}
	sum := 0.0
	for i, v := range w {
		if v < 0 {
			panic(fmt.Sprintf("dist: mixture weight %d is negative: %g", i, v))
		}
		if components[i] == nil {
			panic(fmt.Sprintf("dist: mixture component %d is nil", i))
		}
		sum += v
	}
	if !(sum > 0) {
		panic("dist: mixture weights sum to zero")
	}
	nw := make([]float64, len(w))
	for i := range w {
		nw[i] = w[i] / sum
	}
	nc := make([]Distribution, len(components))
	copy(nc, components)
	return Mixture{W: nw, Components: nc}
}

// PDF implements Distribution.
func (m Mixture) PDF(x float64) float64 {
	sum := 0.0
	for i := range m.W {
		sum += m.W[i] * m.Components[i].PDF(x)
	}
	return sum
}

// CDF implements Distribution.
func (m Mixture) CDF(x float64) float64 {
	sum := 0.0
	for i := range m.W {
		sum += m.W[i] * m.Components[i].CDF(x)
	}
	return sum
}

// Survival implements Distribution.
func (m Mixture) Survival(x float64) float64 {
	sum := 0.0
	for i := range m.W {
		sum += m.W[i] * m.Components[i].Survival(x)
	}
	return sum
}

// Quantile implements Distribution by numeric inversion.
func (m Mixture) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return quantileByBisection(m.CDF, p)
}

// Mean implements Distribution.
func (m Mixture) Mean() float64 {
	sum := 0.0
	for i := range m.W {
		sum += m.W[i] * m.Components[i].Mean()
	}
	return sum
}

// PartialMoment implements Distribution.
func (m Mixture) PartialMoment(x float64) float64 {
	sum := 0.0
	for i := range m.W {
		sum += m.W[i] * m.Components[i].PartialMoment(x)
	}
	return sum
}

// SurvivalIntegral implements SurvivalIntegraler when every component
// does; otherwise it falls back to the numeric route via
// MeanResidualLife on the offending component.
func (m Mixture) SurvivalIntegral(x float64) float64 {
	sum := 0.0
	for i := range m.W {
		if si, ok := m.Components[i].(SurvivalIntegraler); ok {
			sum += m.W[i] * si.SurvivalIntegral(x)
		} else {
			c := m.Components[i]
			sum += m.W[i] * MeanResidualLife(c, x) * c.Survival(x)
		}
	}
	return sum
}

// Rand implements Distribution: pick a component, draw from it.
func (m Mixture) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	idx := len(m.W) - 1
	for i, w := range m.W {
		acc += w
		if u < acc {
			idx = i
			break
		}
	}
	return m.Components[idx].Rand(rng)
}

// Name implements Distribution.
func (m Mixture) Name() string {
	parts := make([]string, len(m.Components))
	for i, c := range m.Components {
		parts[i] = c.Name()
	}
	return "mixture(" + strings.Join(parts, "+") + ")"
}
