package dist_test

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// ExampleConditional shows the future-lifetime distribution at work:
// the heavy-tailed Weibull the paper measured has a decreasing hazard,
// so the longer a machine has been up, the longer it is expected to
// stay up — the mechanism behind aperiodic schedules.
func ExampleConditional() {
	machine := dist.NewWeibull(0.43, 3409)
	for _, age := range []float64{0, 3600, 24 * 3600} {
		c := dist.NewConditional(machine, age)
		fmt.Printf("after %5.1f h up: P(survive 1 more hour) = %.2f, expected remaining life %5.1f h\n",
			age/3600, c.Survival(3600), c.Mean()/3600)
	}
	// Output:
	// after   0.0 h up: P(survive 1 more hour) = 0.36, expected remaining life   2.6 h
	// after   1.0 h up: P(survive 1 more hour) = 0.70, expected remaining life   5.9 h
	// after  24.0 h up: P(survive 1 more hour) = 0.93, expected remaining life  18.8 h
}

// ExampleMixture models the bimodality of real desktop idle times:
// short interactive gaps mixed with long overnight stretches.
func ExampleMixture() {
	desktop := dist.NewMixture(
		[]float64{0.6, 0.4},
		[]dist.Distribution{
			dist.NewExponential(1.0 / 300), // 5-minute interactive gaps
			dist.NewWeibull(0.7, 4*3600),   // multi-hour overnight stretches
		},
	)
	fmt.Printf("median %.0f s, mean %.0f s — the tail dominates the mean\n",
		desktop.Quantile(0.5), desktop.Mean())
	// Output:
	// median 450 s, mean 7471 s — the tail dominates the mean
}
