package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Hyperexponential is a finite mixture of exponentials (Eqs. 5-7):
//
//	f(x) = Σᵢ pᵢ λᵢ e^(-λᵢ x),  Σᵢ pᵢ = 1, λᵢ > 0.
//
// A k-phase hyperexponential has 2k-1 free parameters. Mixtures with
// widely separated rates mimic heavy tails over several decades, which
// is why the paper's 2- and 3-phase fits track desktop availability so
// much better than a single exponential.
type Hyperexponential struct {
	P      []float64 // mixing probabilities, sum to 1
	Lambda []float64 // per-phase rates
}

// NewHyperexponential returns a hyperexponential with the given mixing
// probabilities and rates. The probabilities are normalized to sum to
// 1. It panics on structural errors (empty, mismatched lengths,
// non-positive rates, negative weights); use fit.HyperexpEM for
// data-driven construction.
func NewHyperexponential(p, lambda []float64) Hyperexponential {
	if len(p) == 0 || len(p) != len(lambda) {
		panic(fmt.Sprintf("dist: hyperexponential needs matching non-empty p and lambda, got %d and %d", len(p), len(lambda)))
	}
	sum := 0.0
	for i := range p {
		if p[i] < 0 {
			panic(fmt.Sprintf("dist: hyperexponential weight %d is negative: %g", i, p[i]))
		}
		if !(lambda[i] > 0) {
			panic(fmt.Sprintf("dist: hyperexponential rate %d must be positive: %g", i, lambda[i]))
		}
		sum += p[i]
	}
	if !(sum > 0) {
		panic("dist: hyperexponential weights sum to zero")
	}
	np := make([]float64, len(p))
	nl := make([]float64, len(lambda))
	for i := range p {
		np[i] = p[i] / sum
	}
	copy(nl, lambda)
	return Hyperexponential{P: np, Lambda: nl}
}

// Phases returns the number of mixture phases k.
func (h Hyperexponential) Phases() int { return len(h.P) }

// PDF implements Distribution.
func (h Hyperexponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	sum := 0.0
	for i := range h.P {
		sum += h.P[i] * h.Lambda[i] * math.Exp(-h.Lambda[i]*x)
	}
	return sum
}

// CDF implements Distribution.
func (h Hyperexponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - h.Survival(x)
}

// Survival implements Distribution: Σᵢ pᵢ e^(-λᵢ x).
func (h Hyperexponential) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	sum := 0.0
	for i := range h.P {
		sum += h.P[i] * math.Exp(-h.Lambda[i]*x)
	}
	return sum
}

// Quantile implements Distribution by numeric inversion (no closed
// form exists for k > 1).
func (h Hyperexponential) Quantile(p float64) float64 {
	if len(h.P) == 1 {
		return Exponential{Lambda: h.Lambda[0]}.Quantile(p)
	}
	return quantileByBisection(h.CDF, p)
}

// Mean implements Distribution: Σᵢ pᵢ/λᵢ.
func (h Hyperexponential) Mean() float64 {
	sum := 0.0
	for i := range h.P {
		sum += h.P[i] / h.Lambda[i]
	}
	return sum
}

// Var returns the variance 2Σᵢ pᵢ/λᵢ² − (Σᵢ pᵢ/λᵢ)².
func (h Hyperexponential) Var() float64 {
	m := h.Mean()
	m2 := 0.0
	for i := range h.P {
		m2 += 2 * h.P[i] / (h.Lambda[i] * h.Lambda[i])
	}
	return m2 - m*m
}

// PartialMoment implements Distribution as the weighted sum of
// per-phase exponential partial moments.
func (h Hyperexponential) PartialMoment(x float64) float64 {
	if x <= 0 {
		return 0
	}
	sum := 0.0
	for i := range h.P {
		inv := 1 / h.Lambda[i]
		sum += h.P[i] * (inv - math.Exp(-h.Lambda[i]*x)*(x+inv))
	}
	return sum
}

// SurvivalIntegral implements SurvivalIntegraler:
// Σᵢ pᵢ e^(-λᵢx)/λᵢ.
func (h Hyperexponential) SurvivalIntegral(x float64) float64 {
	if x < 0 {
		x = 0
	}
	sum := 0.0
	for i := range h.P {
		sum += h.P[i] * math.Exp(-h.Lambda[i]*x) / h.Lambda[i]
	}
	return sum
}

// Rand implements Distribution: pick a phase, then draw from it.
func (h Hyperexponential) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	phase := len(h.P) - 1
	for i, p := range h.P {
		acc += p
		if u < acc {
			phase = i
			break
		}
	}
	return rng.ExpFloat64() / h.Lambda[phase]
}

// Name implements Distribution.
func (h Hyperexponential) Name() string {
	return fmt.Sprintf("hyperexp%d", len(h.P))
}

// Memoryless implements the Memoryless capability: a one-phase
// hyperexponential degenerates to a plain exponential; genuine
// mixtures are age-dependent (their hazard decreases with age).
func (h Hyperexponential) Memoryless() bool { return len(h.P) == 1 }

// String returns a short human-readable description.
func (h Hyperexponential) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hyperexp%d(", len(h.P))
	for i := range h.P {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "p=%.4g:λ=%.6g", h.P[i], h.Lambda[i])
	}
	b.WriteString(")")
	return b.String()
}
