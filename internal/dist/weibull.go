package dist

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cycleharvest/ckptsched/internal/mathx"
)

// Weibull is the two-parameter Weibull distribution (Eqs. 3-4):
//
//	f(x) = (α/β)(x/β)^(α-1) e^(-(x/β)^α),  F(x) = 1 - e^(-(x/β)^α),
//
// with shape α > 0 and scale β > 0. Shapes below 1 — the regime the
// paper measures for desktop availability (e.g. α = 0.43) — give a
// decreasing hazard rate: the longer a machine has been available, the
// longer it is expected to remain available.
type Weibull struct {
	Shape float64 // α
	Scale float64 // β
}

// NewWeibull returns a Weibull distribution with the given shape and
// scale. It panics on non-positive parameters.
func NewWeibull(shape, scale float64) Weibull {
	if !(shape > 0) || !(scale > 0) {
		panic(fmt.Sprintf("dist: weibull parameters must be positive, got shape=%g scale=%g", shape, scale))
	}
	return Weibull{Shape: shape, Scale: scale}
}

// PDF implements Distribution.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case w.Shape < 1:
			return math.Inf(1)
		case w.Shape == 1:
			return 1 / w.Scale
		default:
			return 0
		}
	}
	z := x / w.Scale
	return w.Shape / w.Scale * math.Pow(z, w.Shape-1) * math.Exp(-math.Pow(z, w.Shape))
}

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

// Survival implements Distribution.
func (w Weibull) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// Quantile implements Distribution.
func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
}

// Mean implements Distribution: β·Γ(1 + 1/α).
func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// Var returns the variance β²[Γ(1+2/α) − Γ(1+1/α)²].
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	return w.Scale * w.Scale * (g2 - g1*g1)
}

// PartialMoment implements Distribution. Substituting u = (t/β)^α,
//
//	∫₀ˣ t f(t) dt = β · γ(1 + 1/α, (x/β)^α)
//
// where γ is the lower incomplete gamma function, evaluated through the
// regularized form P(a, z)·Γ(a).
func (w Weibull) PartialMoment(x float64) float64 {
	if x <= 0 {
		return 0
	}
	a := 1 + 1/w.Shape
	z := math.Pow(x/w.Scale, w.Shape)
	return w.Scale * mathx.GammaP(a, z) * math.Gamma(a)
}

// SurvivalIntegral implements SurvivalIntegraler. Substituting
// z = (u/β)^α,
//
//	∫ₓ^∞ e^(-(u/β)^α) du = (β/α)·Γ(1/α)·Q(1/α, (x/β)^α)
//
// with Q the regularized upper incomplete gamma function.
func (w Weibull) SurvivalIntegral(x float64) float64 {
	if x < 0 {
		x = 0
	}
	a := 1 / w.Shape
	z := math.Pow(x/w.Scale, w.Shape)
	return w.Scale * a * math.Gamma(a) * mathx.GammaQ(a, z)
}

// Rand implements Distribution by inversion.
func (w Weibull) Rand(rng *rand.Rand) float64 {
	// Use 1-U to keep the argument of Log away from 0 when U == 0.
	u := rng.Float64()
	return w.Scale * math.Pow(-math.Log1p(-u), 1/w.Shape)
}

// Name implements Distribution.
func (w Weibull) Name() string { return "weibull" }

// String returns a short human-readable description.
func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(shape=%.6g, scale=%.6g)", w.Shape, w.Scale)
}
