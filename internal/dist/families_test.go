package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialKnownValues(t *testing.T) {
	e := NewExponential(2)
	if got := e.PDF(0); got != 2 {
		t.Errorf("PDF(0) = %g, want 2", got)
	}
	if got := e.CDF(math.Ln2 / 2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(ln2/2) = %g, want 0.5", got)
	}
	if got := e.Mean(); got != 0.5 {
		t.Errorf("Mean = %g, want 0.5", got)
	}
	if got := e.Var(); got != 0.25 {
		t.Errorf("Var = %g, want 0.25", got)
	}
	// ∫₀^∞ t·2e^{-2t} dt = 1/2; at x=∞ the partial moment is the mean.
	if got := e.PartialMoment(1e9); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("PartialMoment(inf) = %g, want 0.5", got)
	}
}

func TestExponentialMemoryless(t *testing.T) {
	e := NewExponential(0.003)
	f := func(age, x float64) bool {
		age = math.Abs(math.Mod(age, 1e5))
		x = math.Abs(math.Mod(x, 1e4))
		c := NewConditional(e, age)
		return almostEqual(c.CDF(x), e.CDF(x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewExponential(0) should panic")
		}
	}()
	NewExponential(0)
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w := NewWeibull(1, 50)
	e := NewExponential(1.0 / 50)
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1e4))
		return almostEqual(w.CDF(x), e.CDF(x), 1e-12) &&
			almostEqual(w.PDF(x+1e-9), e.PDF(x+1e-9), 1e-9) &&
			almostEqual(w.PartialMoment(x), e.PartialMoment(x), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !almostEqual(w.Mean(), e.Mean(), 1e-12) {
		t.Errorf("weibull(1,50) mean %g vs exp mean %g", w.Mean(), e.Mean())
	}
}

func TestWeibullFutureLifetimeFormula(t *testing.T) {
	// Eq. 9: (F_W)_t(x) = 1 − e^{(t/β)^α − ((t+x)/β)^α}.
	// (The paper prints the second exponent as (x/β)^α, but for the
	// conditional survival S(t+x)/S(t) the argument must be t+x; with
	// x alone the expression is not a distribution function in x.)
	w := NewWeibull(0.43, 3409)
	f := func(age, x float64) bool {
		age = math.Abs(math.Mod(age, 5e4))
		x = math.Abs(math.Mod(x, 5e4))
		c := NewConditional(w, age)
		a, b := w.Shape, w.Scale
		want := 1 - math.Exp(math.Pow(age/b, a)-math.Pow((age+x)/b, a))
		return almostEqual(c.CDF(x), want, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeibullPDFAtZero(t *testing.T) {
	if got := NewWeibull(0.5, 10).PDF(0); !math.IsInf(got, 1) {
		t.Errorf("shape<1 PDF(0) = %g, want +Inf", got)
	}
	if got := NewWeibull(1, 10).PDF(0); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("shape=1 PDF(0) = %g, want 0.1", got)
	}
	if got := NewWeibull(2, 10).PDF(0); got != 0 {
		t.Errorf("shape>1 PDF(0) = %g, want 0", got)
	}
}

func TestWeibullPaperMachineMoments(t *testing.T) {
	// The machine the paper reports: shape 0.43, scale 3409.
	w := NewWeibull(0.43, 3409)
	// Mean = β·Γ(1+1/0.43) = 3409·Γ(3.3256...)
	want := 3409 * math.Gamma(1+1/0.43)
	if got := w.Mean(); !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	if w.Mean() < 3409 {
		t.Error("heavy-tailed mean should exceed the scale parameter")
	}
	med := w.Quantile(0.5)
	if med >= w.Mean() {
		t.Errorf("heavy tail: median %g should be far below mean %g", med, w.Mean())
	}
}

func TestHyperexpSinglePhaseIsExponential(t *testing.T) {
	h := NewHyperexponential([]float64{1}, []float64{0.02})
	e := NewExponential(0.02)
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1e4))
		return almostEqual(h.CDF(x), e.CDF(x), 1e-12) &&
			almostEqual(h.PartialMoment(x), e.PartialMoment(x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !almostEqual(h.Quantile(0.3), e.Quantile(0.3), 1e-9) {
		t.Error("single-phase quantile mismatch")
	}
}

func TestHyperexpNormalizesWeights(t *testing.T) {
	h := NewHyperexponential([]float64{2, 2}, []float64{1, 2})
	if !almostEqual(h.P[0], 0.5, 1e-15) || !almostEqual(h.P[1], 0.5, 1e-15) {
		t.Errorf("weights not normalized: %v", h.P)
	}
}

func TestHyperexpMeanVar(t *testing.T) {
	h := NewHyperexponential([]float64{0.25, 0.75}, []float64{0.1, 0.01})
	wantMean := 0.25/0.1 + 0.75/0.01
	if got := h.Mean(); !almostEqual(got, wantMean, 1e-12) {
		t.Errorf("Mean = %g, want %g", got, wantMean)
	}
	wantM2 := 2 * (0.25/(0.1*0.1) + 0.75/(0.01*0.01))
	if got := h.Var(); !almostEqual(got, wantM2-wantMean*wantMean, 1e-12) {
		t.Errorf("Var = %g, want %g", got, wantM2-wantMean*wantMean)
	}
	// Hyperexponentials always have coefficient of variation >= 1.
	if h.Var() < h.Mean()*h.Mean() {
		t.Error("hyperexponential CV must be >= 1")
	}
}

func TestHyperexpFutureLifetimeFormula(t *testing.T) {
	// Eq. 10 with the same t+x reading as Eq. 9:
	// (F_H)_t(x) = 1 − Σp_i e^{-λ_i(t+x)} / Σp_i e^{-λ_i t}.
	h := NewHyperexponential([]float64{0.6, 0.4}, []float64{0.01, 0.0002})
	f := func(age, x float64) bool {
		age = math.Abs(math.Mod(age, 2e4))
		x = math.Abs(math.Mod(x, 2e4))
		c := NewConditional(h, age)
		num, den := 0.0, 0.0
		for i := range h.P {
			num += h.P[i] * math.Exp(-h.Lambda[i]*(age+x))
			den += h.P[i] * math.Exp(-h.Lambda[i]*age)
		}
		return almostEqual(c.CDF(x), 1-num/den, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHyperexpConditionalShiftsTowardSlowPhase(t *testing.T) {
	// As a hyperexponential ages, surviving mass concentrates in the
	// slow phase, so the mean residual life must increase toward the
	// slow phase mean.
	h := NewHyperexponential([]float64{0.9, 0.1}, []float64{0.1, 0.001})
	m0 := MeanResidualLife(h, 0)
	m1 := MeanResidualLife(h, 100)
	m2 := MeanResidualLife(h, 5000)
	if !(m0 < m1 && m1 < m2) {
		t.Errorf("MRL not increasing: %g, %g, %g", m0, m1, m2)
	}
	if m2 > 1/0.001+1 {
		t.Errorf("MRL %g exceeded slow-phase mean %g", m2, 1/0.001)
	}
}

func TestHyperexpPanics(t *testing.T) {
	cases := []struct {
		name      string
		p, lambda []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []float64{1}, []float64{1, 2}},
		{"negative weight", []float64{-1, 2}, []float64{1, 2}},
		{"zero rate", []float64{0.5, 0.5}, []float64{1, 0}},
		{"zero weights", []float64{0, 0}, []float64{1, 2}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			NewHyperexponential(c.p, c.lambda)
		}()
	}
}

func TestConditionalAgeZeroIsBase(t *testing.T) {
	for _, base := range []Distribution{
		NewExponential(0.01),
		NewWeibull(0.7, 500),
		NewHyperexponential([]float64{0.5, 0.5}, []float64{0.01, 0.001}),
	} {
		c := NewConditional(base, 0)
		for _, x := range []float64{0.5, 30, 700} {
			if !almostEqual(c.CDF(x), base.CDF(x), 1e-12) {
				t.Errorf("%s: conditional at age 0 differs at %g", base.Name(), x)
			}
			if !almostEqual(c.PartialMoment(x), base.PartialMoment(x), 1e-10) {
				t.Errorf("%s: conditional PM at age 0 differs at %g", base.Name(), x)
			}
		}
	}
}

func TestConditionalNegativeAgeClamped(t *testing.T) {
	c := NewConditional(NewExponential(1), -5)
	if c.Age != 0 {
		t.Errorf("negative age not clamped: %g", c.Age)
	}
}

func TestConditionalQuantileRoundTrip(t *testing.T) {
	c := NewConditional(NewWeibull(0.43, 3409), 2500)
	for _, p := range []float64{0.05, 0.3, 0.5, 0.8, 0.99} {
		x := c.Quantile(p)
		if got := c.CDF(x); !almostEqual(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestConditionalRandSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConditional(NewWeibull(0.43, 3409), 1000)
	const n = 100000
	sum := 0.0
	for range n {
		sum += c.Rand(rng)
	}
	if got := sum / n; !almostEqual(got, c.Mean(), 0.1) {
		t.Errorf("conditional sample mean %g, analytic %g", got, c.Mean())
	}
}

func TestEmpiricalCDFAndKS(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 2, 5})
	if e.N() != 5 {
		t.Errorf("N = %d", e.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.6}, {4, 0.8}, {5, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); !almostEqual(got, c.want, 1e-15) {
			t.Errorf("CDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if got := e.Mean(); !almostEqual(got, 2.6, 1e-12) {
		t.Errorf("Mean = %g, want 2.6", got)
	}
	// KS distance to the exponential that matches the sample mean.
	d := e.KSDistance(NewExponential(1 / 2.6))
	if d <= 0 || d >= 1 {
		t.Errorf("KS distance out of range: %g", d)
	}
	// KS of a perfectly fitting model on a huge sample is small.
	rng := rand.New(rand.NewSource(1))
	w := NewWeibull(0.8, 100)
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = w.Rand(rng)
	}
	if d := NewEmpirical(sample).KSDistance(w); d > 0.02 {
		t.Errorf("KS of true model = %g, want < 0.02", d)
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30, 40})
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %g", got)
	}
	if got := e.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %g", got)
	}
	if got := e.Quantile(0.5); got != 30 {
		t.Errorf("Quantile(0.5) = %g, want 30", got)
	}
}

func TestEmpiricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEmpirical(nil) should panic")
		}
	}()
	NewEmpirical(nil)
}
