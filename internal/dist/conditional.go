package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Conditional is the future-lifetime distribution F_t of §3.3 (Eq. 8):
// the distribution of the remaining lifetime X - t of a resource that
// has already been available for t = Age seconds,
//
//	F_t(x) = (F(t+x) − F(t)) / (1 − F(t)).
//
// For an exponential base this collapses to the base distribution
// (memorylessness); for Weibull and hyperexponential bases it is the
// quantity that turns a single optimal interval into an aperiodic
// schedule.
type Conditional struct {
	Base Distribution
	Age  float64
}

// NewConditional returns the future-lifetime distribution of base at
// the given age. A negative age is treated as zero. If the base
// survival at age is zero the resulting distribution is degenerate at
// zero (the resource is already certain to have failed); callers in
// the Markov model guard against this case explicitly.
func NewConditional(base Distribution, age float64) Conditional {
	if age < 0 {
		age = 0
	}
	return Conditional{Base: base, Age: age}
}

// PDF implements Distribution: f(t+x)/S(t).
func (c Conditional) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	s := c.Base.Survival(c.Age)
	if s <= 0 {
		return 0
	}
	return c.Base.PDF(c.Age+x) / s
}

// CDF implements Distribution (Eq. 8).
func (c Conditional) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	s := c.Base.Survival(c.Age)
	if s <= 0 {
		return 1
	}
	return 1 - c.Base.Survival(c.Age+x)/s
}

// Survival implements Distribution: S(t+x)/S(t).
func (c Conditional) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	s := c.Base.Survival(c.Age)
	if s <= 0 {
		return 0
	}
	return c.Base.Survival(c.Age+x) / s
}

// Quantile implements Distribution via the base quantile:
// F_t^{-1}(p) = F^{-1}(F(t) + p·S(t)) − t.
func (c Conditional) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	s := c.Base.Survival(c.Age)
	if s <= 0 {
		return 0
	}
	return c.Base.Quantile(c.Base.CDF(c.Age)+p*s) - c.Age
}

// Mean implements Distribution: the mean residual life at Age.
func (c Conditional) Mean() float64 {
	return MeanResidualLife(c.Base, c.Age)
}

// PartialMoment implements Distribution in closed form through the
// base partial moment:
//
//	∫₀ˣ u f_t(u) du = [PM(t+x) − PM(t) − t(F(t+x) − F(t))] / S(t).
func (c Conditional) PartialMoment(x float64) float64 {
	if x <= 0 {
		return 0
	}
	s := c.Base.Survival(c.Age)
	if s <= 0 {
		return 0
	}
	dF := c.Base.CDF(c.Age+x) - c.Base.CDF(c.Age)
	return (c.Base.PartialMoment(c.Age+x) - c.Base.PartialMoment(c.Age) - c.Age*dF) / s
}

// SurvivalIntegral implements SurvivalIntegraler when the base does:
// ∫ₓ^∞ S(t+u)/S(t) du = SI_base(t+x)/S(t). Without base support it
// falls back to 0-age semantics via the package helper.
func (c Conditional) SurvivalIntegral(x float64) float64 {
	if x < 0 {
		x = 0
	}
	s := c.Base.Survival(c.Age)
	if s <= 0 {
		return 0
	}
	if si, ok := c.Base.(SurvivalIntegraler); ok {
		return si.SurvivalIntegral(c.Age+x) / s
	}
	// ∫ₓ^∞ S(t+u)/S(t) du = MRL_base(t+x) · S(t+x)/S(t).
	return MeanResidualLife(c.Base, c.Age+x) * c.Survival(x)
}

// Rand implements Distribution by inverse-transform sampling of the
// conditional law.
func (c Conditional) Rand(rng *rand.Rand) float64 {
	return c.Quantile(rng.Float64())
}

// Name implements Distribution.
func (c Conditional) Name() string {
	return fmt.Sprintf("%s|age=%g", c.Base.Name(), c.Age)
}

// Memoryless implements the Memoryless capability by delegating to the
// base: conditioning a memoryless law on age reproduces the law itself,
// so the wrapper preserves (and must report) the property.
func (c Conditional) Memoryless() bool { return IsMemoryless(c.Base) }
