package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// testFamilies returns one representative of each family plus
// conditioned variants, covering heavy and light tails.
func testFamilies() []Distribution {
	return []Distribution{
		NewExponential(0.001),
		NewExponential(2.5),
		NewWeibull(0.43, 3409), // the paper's measured machine
		NewWeibull(1.7, 100),
		NewHyperexponential([]float64{0.6, 0.4}, []float64{0.01, 0.0001}),
		NewHyperexponential([]float64{0.5, 0.3, 0.2}, []float64{0.05, 0.002, 0.00008}),
		NewConditional(NewWeibull(0.43, 3409), 500),
		NewConditional(NewHyperexponential([]float64{0.7, 0.3}, []float64{0.02, 0.0005}), 1200),
		NewLogNormal(6.5, 1.2),
		NewConditional(NewLogNormal(6.5, 1.2), 800),
		NewMixture([]float64{0.6, 0.4}, []Distribution{
			NewExponential(1.0 / 300),
			NewWeibull(0.7, 4*3600),
		}),
	}
}

func TestCDFBasicShape(t *testing.T) {
	for _, d := range testFamilies() {
		if got := d.CDF(0); got != 0 {
			t.Errorf("%s: CDF(0) = %g, want 0", d.Name(), got)
		}
		if got := d.CDF(-5); got != 0 {
			t.Errorf("%s: CDF(-5) = %g, want 0", d.Name(), got)
		}
		if got := d.CDF(math.Inf(1)); !almostEqual(got, 1, 1e-12) {
			t.Errorf("%s: CDF(+Inf) = %g, want 1", d.Name(), got)
		}
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, d := range testFamilies() {
		d := d
		f := func(x1, x2 float64) bool {
			x1 = math.Abs(math.Mod(x1, 1e6))
			x2 = math.Abs(math.Mod(x2, 1e6))
			lo, hi := math.Min(x1, x2), math.Max(x1, x2)
			c1, c2 := d.CDF(lo), d.CDF(hi)
			return c1 >= 0 && c2 <= 1 && c1 <= c2+1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestSurvivalComplementsCDF(t *testing.T) {
	for _, d := range testFamilies() {
		d := d
		f := func(x float64) bool {
			x = math.Abs(math.Mod(x, 1e5))
			return almostEqual(d.CDF(x)+d.Survival(x), 1, 1e-10)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestPDFNonNegative(t *testing.T) {
	for _, d := range testFamilies() {
		d := d
		f := func(x float64) bool {
			x = math.Abs(math.Mod(x, 1e5)) + 1e-9
			return d.PDF(x) >= 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	// Integrate the density between interior quantiles (the density
	// may be singular at the origin, and a fixed grid cannot span the
	// huge dynamic ranges of the heavy-tailed families); the integral
	// must recover the CDF increment.
	for _, d := range testFamilies() {
		for _, span := range [][2]float64{{0.2, 0.5}, {0.5, 0.8}, {0.1, 0.9}} {
			a, b := d.Quantile(span[0]), d.Quantile(span[1])
			got := quadrature(d.PDF, a, b)
			want := d.CDF(b) - d.CDF(a)
			if !almostEqual(got, want, 1e-5) {
				t.Errorf("%s: ∫pdf over q[%g,%g] = %g, ΔCDF = %g", d.Name(), span[0], span[1], got, want)
			}
		}
	}
}

// quadrature is a plain composite Simpson integration used only by the
// tests (independent of mathx so that dist tests don't assume the
// production quadrature is correct).
func quadrature(f func(float64) float64, a, b float64) float64 {
	const n = 20000
	h := (b - a) / n
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 0 {
			sum += 2 * f(x)
		} else {
			sum += 4 * f(x)
		}
	}
	return sum * h / 3
}

func TestQuantileInvertsCDF(t *testing.T) {
	for _, d := range testFamilies() {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			if got := d.CDF(x); !almostEqual(got, p, 1e-6) {
				t.Errorf("%s: CDF(Quantile(%g)) = %g", d.Name(), p, got)
			}
		}
		if got := d.Quantile(0); got != 0 {
			t.Errorf("%s: Quantile(0) = %g, want 0", d.Name(), got)
		}
		if got := d.Quantile(1); !math.IsInf(got, 1) {
			t.Errorf("%s: Quantile(1) = %g, want +Inf", d.Name(), got)
		}
	}
}

func TestPartialMomentMatchesQuadrature(t *testing.T) {
	for _, d := range testFamilies() {
		for _, x := range []float64{0.5, 10, 300, 8000} {
			got := d.PartialMoment(x)
			want := NumericPartialMoment(d, x)
			if !almostEqual(got, want, 1e-5) {
				t.Errorf("%s: PartialMoment(%g) = %g, quadrature %g", d.Name(), x, got, want)
			}
		}
		if got := d.PartialMoment(0); got != 0 {
			t.Errorf("%s: PartialMoment(0) = %g, want 0", d.Name(), got)
		}
		if got := d.PartialMoment(-3); got != 0 {
			t.Errorf("%s: PartialMoment(-3) = %g, want 0", d.Name(), got)
		}
	}
}

func TestPartialMomentConvergesToMean(t *testing.T) {
	for _, d := range testFamilies() {
		// At a very high quantile the partial moment accounts for
		// nearly the entire mean.
		x := d.Quantile(1 - 1e-9)
		if math.IsInf(x, 1) {
			continue
		}
		got := d.PartialMoment(x)
		if !almostEqual(got, d.Mean(), 1e-3) {
			t.Errorf("%s: PartialMoment(q(1-1e-9)) = %g, mean %g", d.Name(), got, d.Mean())
		}
	}
}

func TestPartialMomentMonotone(t *testing.T) {
	for _, d := range testFamilies() {
		d := d
		f := func(x1, x2 float64) bool {
			x1 = math.Abs(math.Mod(x1, 1e5))
			x2 = math.Abs(math.Mod(x2, 1e5))
			lo, hi := math.Min(x1, x2), math.Max(x1, x2)
			return d.PartialMoment(lo) <= d.PartialMoment(hi)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestRandMatchesMeanAndCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range testFamilies() {
		const n = 200000
		sum := 0.0
		below := 0
		med := d.Quantile(0.5)
		for range n {
			v := d.Rand(rng)
			if v < 0 {
				t.Fatalf("%s: negative variate %g", d.Name(), v)
			}
			sum += v
			if v <= med {
				below++
			}
		}
		mean := sum / n
		// Heavy-tailed families converge slowly; compare loosely.
		if !almostEqual(mean, d.Mean(), 0.15) {
			t.Errorf("%s: sample mean %g, analytic %g", d.Name(), mean, d.Mean())
		}
		frac := float64(below) / n
		if math.Abs(frac-0.5) > 0.01 {
			t.Errorf("%s: fraction below median = %g", d.Name(), frac)
		}
	}
}

func TestMeanResidualLife(t *testing.T) {
	// Exponential: constant MRL = 1/λ at every age.
	e := NewExponential(0.01)
	for _, age := range []float64{0, 10, 1000, 50000} {
		if got := MeanResidualLife(e, age); !almostEqual(got, 100, 1e-8) {
			t.Errorf("exp MRL at age %g = %g, want 100", age, got)
		}
	}
	// Heavy-tailed Weibull: MRL grows with age.
	w := NewWeibull(0.43, 3409)
	prev := MeanResidualLife(w, 0)
	for _, age := range []float64{100, 1000, 10000, 100000} {
		cur := MeanResidualLife(w, age)
		if cur <= prev {
			t.Errorf("weibull(0.43) MRL not increasing: MRL(%g)=%g <= %g", age, cur, prev)
		}
		prev = cur
	}
	// Light-tailed Weibull: MRL shrinks with age.
	w2 := NewWeibull(2, 100)
	if MeanResidualLife(w2, 500) >= MeanResidualLife(w2, 10) {
		t.Error("weibull(2) MRL should decrease with age")
	}
}

func TestHazardShapes(t *testing.T) {
	// Exponential hazard is constant λ.
	e := NewExponential(0.25)
	for _, x := range []float64{0.1, 1, 10} {
		if got := Hazard(e, x); !almostEqual(got, 0.25, 1e-10) {
			t.Errorf("exp hazard at %g = %g", x, got)
		}
	}
	// Weibull shape<1 hazard decreases.
	w := NewWeibull(0.5, 100)
	if Hazard(w, 100) >= Hazard(w, 1) {
		t.Error("weibull(0.5) hazard should decrease")
	}
	// Weibull shape>1 hazard increases.
	w2 := NewWeibull(3, 100)
	if Hazard(w2, 100) <= Hazard(w2, 1) {
		t.Error("weibull(3) hazard should increase")
	}
}
