package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// LogNormal is the lognormal distribution: ln X ~ N(Mu, Sigma²). It is
// a standard comparator in the availability-modeling literature the
// paper reviews (long-tailed but with all moments finite) and rounds
// out the model-selection tooling; the paper's four tabulated families
// remain exponential, Weibull and the hyperexponentials.
type LogNormal struct {
	Mu    float64 // mean of ln X
	Sigma float64 // standard deviation of ln X, > 0
}

// NewLogNormal returns a lognormal distribution. It panics on
// non-positive sigma.
func NewLogNormal(mu, sigma float64) LogNormal {
	if !(sigma > 0) {
		panic(fmt.Sprintf("dist: lognormal sigma must be positive, got %g", sigma))
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// stdNormalCDF is Φ, the standard normal CDF.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// stdNormalQuantile is Φ⁻¹.
func stdNormalQuantile(p float64) float64 {
	return -math.Sqrt2 * math.Erfinv(1-2*p)
}

// z standardizes ln x.
func (l LogNormal) z(x float64) float64 {
	return (math.Log(x) - l.Mu) / l.Sigma
}

// PDF implements Distribution.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := l.z(x)
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Distribution.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stdNormalCDF(l.z(x))
}

// Survival implements Distribution.
func (l LogNormal) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return stdNormalCDF(-l.z(x))
}

// Quantile implements Distribution.
func (l LogNormal) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*stdNormalQuantile(p))
}

// Mean implements Distribution: e^(µ+σ²/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Var returns (e^(σ²)−1)·e^(2µ+σ²).
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// PartialMoment implements Distribution in closed form:
//
//	∫₀ˣ t f(t) dt = e^(µ+σ²/2) · Φ((ln x − µ − σ²)/σ).
func (l LogNormal) PartialMoment(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return l.Mean() * stdNormalCDF(l.z(x)-l.Sigma)
}

// SurvivalIntegral implements SurvivalIntegraler:
//
//	∫ₓ^∞ S(u) du = E[(X−x)⁺] = e^(µ+σ²/2)·Φ(σ−z) − x·Φ(−z),  z = (ln x − µ)/σ.
func (l LogNormal) SurvivalIntegral(x float64) float64 {
	if x <= 0 {
		return l.Mean() - math.Max(x, 0)
	}
	z := l.z(x)
	return l.Mean()*stdNormalCDF(l.Sigma-z) - x*stdNormalCDF(-z)
}

// Rand implements Distribution.
func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Name implements Distribution.
func (l LogNormal) Name() string { return "lognormal" }

// String returns a short human-readable description.
func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(µ=%.6g, σ=%.6g)", l.Mu, l.Sigma)
}
