package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the exponential distribution with rate λ (Eqs. 1-2):
//
//	f(x) = λ e^(-λx),  F(x) = 1 - e^(-λx).
//
// Its memoryless property means the future-lifetime distribution
// equals the original for every age, so an exponential model yields a
// single periodic checkpoint interval.
type Exponential struct {
	Lambda float64
}

// NewExponential returns an exponential distribution with rate lambda.
// It panics if lambda <= 0; use fit.Exponential for data-driven
// construction with error reporting.
func NewExponential(lambda float64) Exponential {
	if !(lambda > 0) {
		panic(fmt.Sprintf("dist: exponential rate must be positive, got %g", lambda))
	}
	return Exponential{Lambda: lambda}
}

// PDF implements Distribution.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*x)
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// -expm1(-λx) avoids cancellation for small λx.
	return -math.Expm1(-e.Lambda * x)
}

// Survival implements Distribution.
func (e Exponential) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-e.Lambda * x)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Lambda
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Var returns the variance 1/λ².
func (e Exponential) Var() float64 { return 1 / (e.Lambda * e.Lambda) }

// PartialMoment implements Distribution:
//
//	∫₀ˣ t λ e^(-λt) dt = 1/λ − e^(-λx)(x + 1/λ).
func (e Exponential) PartialMoment(x float64) float64 {
	if x <= 0 {
		return 0
	}
	inv := 1 / e.Lambda
	return inv - math.Exp(-e.Lambda*x)*(x+inv)
}

// SurvivalIntegral implements SurvivalIntegraler:
// ∫ₓ^∞ e^(-λu) du = e^(-λx)/λ.
func (e Exponential) SurvivalIntegral(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-e.Lambda*x) / e.Lambda
}

// Rand implements Distribution.
func (e Exponential) Rand(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Lambda
}

// Name implements Distribution.
func (e Exponential) Name() string { return "exponential" }

// Memoryless implements the Memoryless capability: the exponential is
// the unique memoryless continuous lifetime law.
func (e Exponential) Memoryless() bool { return true }

// String returns a short human-readable description.
func (e Exponential) String() string {
	return fmt.Sprintf("Exponential(λ=%.6g)", e.Lambda)
}
