// Package experiments regenerates every table and figure in the
// paper's evaluation (§5): the trace-driven efficiency and bandwidth
// sweeps (Figure 3 / Table 1, Figure 4 / Table 3), the known-truth
// synthetic-Weibull study (Table 2), the live-system campaigns with
// campus and wide-area checkpoint managers (Tables 4 and 5), and the
// simulation-vs-live validation (§5.3).
//
// The workload substitutes a simulated Condor pool for the paper's
// UW–Madison deployment: a heterogeneous synthetic pool is monitored
// by occupancy sensors for a configurable number of virtual months,
// and every experiment downstream consumes only the resulting
// per-machine availability traces — the same interface the paper's
// pipeline has to its measured data.
package experiments

import (
	"errors"
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// WorkloadConfig sizes the shared dataset.
type WorkloadConfig struct {
	// Machines is the synthetic pool size. Default 80.
	Machines int
	// Monitors is how many occupancy sensors to run. Default:
	// Machines (full coverage; use fewer to exercise undersampling).
	Monitors int
	// Months is the measurement-campaign length in 30-day months.
	// Default 18, the paper's period.
	Months float64
	// MinRecords filters machines to those with enough observations
	// to split into 25 training + ≥1 experimental values. Default 60
	// so experimental sets are meaningful.
	MinRecords int
	// DiurnalAmplitude, when positive, gives the pool a time-of-day
	// idle modulation (nonstationary traces; see condor.Machine).
	DiurnalAmplitude float64
	// Seed makes the workload deterministic.
	Seed int64
}

func (c *WorkloadConfig) setDefaults() {
	if c.Machines <= 0 {
		c.Machines = 80
	}
	if c.Monitors <= 0 {
		c.Monitors = c.Machines
	}
	if c.Months <= 0 {
		c.Months = 18
	}
	if c.MinRecords <= trace.DefaultTrainingSize {
		c.MinRecords = 60
	}
}

// MachineData is one machine's split trace.
type MachineData struct {
	Machine string
	Train   []float64
	Test    []float64
}

// Workload is the shared dataset all experiments draw from.
type Workload struct {
	// Machines is the synthetic pool specification.
	Machines []condor.Machine
	// History is the full monitor-collected trace set.
	History *trace.Set
	// Data lists the machines passing the MinRecords filter, each
	// split into the paper's first-25 training prefix and the
	// experimental remainder.
	Data []MachineData
}

// NewWorkload builds the shared dataset: generate the pool, run the
// occupancy-monitor campaign, filter and split the traces.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) {
	cfg.setDefaults()
	machines, err := condor.SyntheticPool(condor.SyntheticPoolConfig{
		Machines:         cfg.Machines,
		DiurnalAmplitude: cfg.DiurnalAmplitude,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	pool, err := condor.NewPool(machines, cfg.Seed)
	if err != nil {
		return nil, err
	}
	history, err := condor.CollectTraces(pool, condor.MonitorConfig{
		Monitors: cfg.Monitors,
		Duration: condor.MonthsSeconds(cfg.Months),
	})
	if err != nil {
		return nil, err
	}
	w := &Workload{Machines: machines, History: history}
	for _, tr := range history.WithAtLeast(cfg.MinRecords) {
		train, test, err := tr.Split(trace.DefaultTrainingSize)
		if err != nil {
			return nil, fmt.Errorf("experiments: splitting %s: %w", tr.Machine, err)
		}
		w.Data = append(w.Data, MachineData{Machine: tr.Machine, Train: train, Test: test})
	}
	if len(w.Data) == 0 {
		return nil, errors.New("experiments: no machine passed the record-count filter; lengthen the campaign")
	}
	return w, nil
}

// PaperCTimes are the checkpoint/recovery durations swept by Figures
// 3-4 and Tables 1 and 3.
var PaperCTimes = []float64{50, 100, 200, 250, 400, 500, 750, 1000, 1250, 1500}

// PaperCheckpointMB is the checkpoint image size used throughout the
// paper's network-load results.
const PaperCheckpointMB = 500
