package experiments

import (
	"errors"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/live"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// DeltaConfig parameterizes the delta-checkpointing experiment: the
// same live campaign three times with the same seed — full-image
// checkpoints, delta checkpoints with constant-cost scheduling, and
// delta checkpoints with the variable cost curve C(T) driving the
// interval optimizer — so the bytes-on-wire reduction and the
// scheduling effect are each directly measurable.
type DeltaConfig struct {
	// Workload supplies machines and history.
	Workload *Workload
	// Link is the link profile (default campus).
	Link ckptnet.Link
	// SamplesPerModel defaults to 5 (a 20-session campaign).
	SamplesPerModel int
	// DirtyRate is the per-chunk dirtying rate for the delta campaigns
	// (default 0.001: ~17-minute expected chunk lifetime, so typical
	// intervals dirty a minority of the image).
	DirtyRate float64
	// Seed keeps all three campaigns paired.
	Seed int64
	// Tracer, when set, records all three campaigns: full on lanes
	// starting at TracePidBase, delta one TraceCampaignStride up,
	// delta+variable-C two strides up.
	Tracer *obs.Tracer
	// TracePidBase is the first campaign's lane base.
	TracePidBase uint64
	// WireBins sizes the per-campaign bytes-on-wire time series
	// (default 48 bins over the campaign's virtual span).
	WireBins int
}

// DeltaResult compares the three paired campaigns.
type DeltaResult struct {
	LinkName  string
	DirtyRate float64
	// Full, Delta, and VarCost are the per-model tables of the three
	// campaigns.
	Full, Delta, VarCost *LiveTable
	// Campaign-wide aggregates: mean per-sample efficiency, bandwidth
	// consumption rate, and total megabytes on the wire.
	FullEfficiency, DeltaEfficiency, VarCostEfficiency float64
	FullMBPerHour, DeltaMBPerHour, VarCostMBPerHour    float64
	FullMB, DeltaMB, VarCostMB                         float64
	// DeltaCheckpoints and VarCostCheckpoints count checkpoint
	// transfers that actually shipped as deltas in each delta campaign.
	DeltaCheckpoints, VarCostCheckpoints int
	// Sessions is the number of completed sessions per campaign.
	Sessions int
	// FullWire, DeltaWire and VarCostWire are the three campaigns'
	// bytes-on-wire time series — network overhead vs virtual time,
	// the figure the paper's bandwidth argument is about.
	FullWire, DeltaWire, VarCostWire *obs.ByteSeries
}

// SavingsPct is the delta campaign's bytes-on-wire saving relative to
// full-image checkpointing, in percent.
func (r *DeltaResult) SavingsPct() float64 {
	if r.FullMB <= 0 {
		return 0
	}
	return 100 * (1 - r.DeltaMB/r.FullMB)
}

// VarCostSavingsPct is the variable-cost campaign's saving relative to
// full-image checkpointing, in percent.
func (r *DeltaResult) VarCostSavingsPct() float64 {
	if r.FullMB <= 0 {
		return 0
	}
	return 100 * (1 - r.VarCostMB/r.FullMB)
}

// RunDelta runs the three paired campaigns and aggregates the
// comparison.
func RunDelta(cfg DeltaConfig) (*DeltaResult, error) {
	if cfg.Workload == nil {
		return nil, errors.New("experiments: delta experiment needs a workload")
	}
	if cfg.Link == nil {
		cfg.Link = ckptnet.CampusLink()
	}
	if cfg.SamplesPerModel <= 0 {
		cfg.SamplesPerModel = 5
	}
	if cfg.DirtyRate <= 0 {
		cfg.DirtyRate = 0.001
	}
	if cfg.WireBins <= 0 {
		cfg.WireBins = 48
	}

	runOne := func(name string, lane uint64, delta live.DeltaPolicy) (*LiveTable, *live.Campaign, error) {
		return RunLiveTable(name, LiveCampaignConfig{
			Workload:        cfg.Workload,
			Link:            cfg.Link,
			SamplesPerModel: cfg.SamplesPerModel,
			Seed:            cfg.Seed,
			Tracer:          cfg.Tracer,
			TracePidBase:    cfg.TracePidBase + lane*TraceCampaignStride,
			Delta:           delta,
			WireBins:        cfg.WireBins,
		})
	}
	fullTable, fullCamp, err := runOne("full", 0, live.DeltaPolicy{})
	if err != nil {
		return nil, err
	}
	deltaTable, deltaCamp, err := runOne("delta", 1,
		live.DeltaPolicy{Enabled: true, DirtyRate: cfg.DirtyRate})
	if err != nil {
		return nil, err
	}
	varTable, varCamp, err := runOne("delta+variable-C", 2,
		live.DeltaPolicy{Enabled: true, DirtyRate: cfg.DirtyRate, VariableCost: true})
	if err != nil {
		return nil, err
	}

	res := &DeltaResult{
		LinkName:  cfg.Link.Name(),
		DirtyRate: cfg.DirtyRate,
		Full:      fullTable,
		Delta:     deltaTable,
		VarCost:   varTable,
		Sessions:  len(fullCamp.Samples),
	}
	res.FullEfficiency, res.FullMBPerHour = campaignAggregates(fullCamp)
	res.DeltaEfficiency, res.DeltaMBPerHour = campaignAggregates(deltaCamp)
	res.VarCostEfficiency, res.VarCostMBPerHour = campaignAggregates(varCamp)
	res.FullMB, _ = campaignWire(fullCamp)
	res.DeltaMB, res.DeltaCheckpoints = campaignWire(deltaCamp)
	res.VarCostMB, res.VarCostCheckpoints = campaignWire(varCamp)
	res.FullWire = fullCamp.Wire
	res.DeltaWire = deltaCamp.Wire
	res.VarCostWire = varCamp.Wire
	return res, nil
}

// campaignWire sums the campaign's bytes-on-wire (megabytes) and its
// delta-checkpoint count.
func campaignWire(c *live.Campaign) (mb float64, deltas int) {
	for _, s := range c.Samples {
		mb += s.MBMoved
		deltas += s.DeltaCheckpoints
	}
	return
}
