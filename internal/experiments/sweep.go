package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/stats"
)

// Sweep holds the per-machine outcomes of the C-time × model grid
// behind Figures 3-4 and Tables 1 and 3.
type Sweep struct {
	// CTimes is the checkpoint-duration axis.
	CTimes []float64
	// Machines lists machine names, aligning the per-machine slices.
	Machines []string
	// Efficiency[model][ci][mi] is machine mi's utilization at
	// CTimes[ci] under the model's schedule.
	Efficiency map[fit.Model][][]float64
	// MB[model][ci][mi] is the corresponding network load in
	// megabytes.
	MB map[fit.Model][][]float64
}

// RunSweep simulates every machine in the workload under every model
// at every checkpoint duration. Work is spread across CPUs: each
// (machine, C) pair is an independent task (the hpc-parallel sweet
// spot — coarse tasks, no shared mutable state, results written to
// pre-sized slices).
//
// Each (machine, model) pair is fitted exactly once, through a shared
// fit.Cache keyed by machine name, and the fitted distribution is
// reused across the entire checkpoint-duration axis via sim.RunFitted.
// The cache is single-flight, so even when several workers reach the
// same machine at different C values simultaneously the EM fit runs
// once and everyone else blocks on it; the fit itself is deterministic,
// so the results are identical to the refit-every-time protocol.
func RunSweep(w *Workload, ctimes []float64, checkpointMB float64) (*Sweep, error) {
	if len(ctimes) == 0 {
		ctimes = PaperCTimes
	}
	if checkpointMB <= 0 {
		checkpointMB = PaperCheckpointMB
	}
	s := &Sweep{
		CTimes:     ctimes,
		Efficiency: make(map[fit.Model][][]float64),
		MB:         make(map[fit.Model][][]float64),
	}
	for _, m := range w.Data {
		s.Machines = append(s.Machines, m.Machine)
	}
	for _, model := range fit.Models {
		s.Efficiency[model] = grid(len(ctimes), len(w.Data))
		s.MB[model] = grid(len(ctimes), len(w.Data))
	}

	fits := fit.NewCache()
	type task struct {
		ci, mi int
	}
	tasks := make(chan task)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				md := w.Data[t.mi]
				costs := markov.Costs{C: ctimes[t.ci], R: ctimes[t.ci], L: ctimes[t.ci]}
				for _, model := range fit.Models {
					fail := func(err error) {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("experiments: %s C=%g %v: %w",
								md.Machine, ctimes[t.ci], model, err)
						}
						mu.Unlock()
					}
					d, err := fits.Fit(md.Machine, model, md.Train)
					if err != nil {
						fail(fmt.Errorf("fit: %w", err))
						continue
					}
					run, err := sim.RunFitted(d, model, md.Test, sim.Config{
						Costs:        costs,
						CheckpointMB: checkpointMB,
					})
					if err != nil {
						fail(err)
						continue
					}
					s.Efficiency[model][t.ci][t.mi] = run.Result.Efficiency()
					s.MB[model][t.ci][t.mi] = run.Result.MBTransferred
				}
			}
		}()
	}
	for ci := range ctimes {
		for mi := range w.Data {
			tasks <- task{ci, mi}
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

func grid(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i], backing = backing[:cols], backing[cols:]
	}
	return out
}

// Cell is one table entry: a mean with its 95% confidence interval and
// the significance letters of models whose values are statistically
// significantly smaller (paper notation).
type Cell struct {
	CI      stats.CI
	Smaller []fit.Model
}

// Letters renders the significance annotation, e.g. "(e,w,2)".
func (c Cell) Letters() string {
	if len(c.Smaller) == 0 {
		return ""
	}
	out := "("
	for i, m := range c.Smaller {
		if i > 0 {
			out += ","
		}
		out += m.Letter()
	}
	return out + ")"
}

// Table is a rendered CTime × model grid of Cells (Tables 1 and 3).
type Table struct {
	Name   string
	CTimes []float64
	Cells  map[fit.Model][]Cell // Cells[model][ci]
}

// Alpha is the significance level of the paper's paired t-tests.
const Alpha = 0.05

// buildTable turns per-machine values into CI cells with significance
// letters, using two-sided paired t-tests between every model pair at
// each checkpoint duration.
func buildTable(name string, ctimes []float64, values map[fit.Model][][]float64) (*Table, error) {
	t := &Table{Name: name, CTimes: ctimes, Cells: make(map[fit.Model][]Cell)}
	for _, m := range fit.Models {
		t.Cells[m] = make([]Cell, len(ctimes))
	}
	for ci := range ctimes {
		for _, m := range fit.Models {
			ci95, err := stats.MeanCI(values[m][ci], 0.95)
			if err != nil {
				return nil, fmt.Errorf("experiments: CI for %v at C=%g: %w", m, ctimes[ci], err)
			}
			cell := Cell{CI: ci95}
			for _, other := range fit.Models {
				if other == m {
					continue
				}
				if stats.SignificantlyGreater(values[m][ci], values[other][ci], Alpha) {
					cell.Smaller = append(cell.Smaller, other)
				}
			}
			t.Cells[m][ci] = cell
		}
	}
	return t, nil
}

// Table1 builds the paper's Table 1: 95% confidence intervals for mean
// efficiency at each checkpoint duration, with significance letters.
func (s *Sweep) Table1() (*Table, error) {
	return buildTable("Table 1: mean efficiency (95% CI)", s.CTimes, s.Efficiency)
}

// Table3 builds the paper's Table 3: 95% confidence intervals for mean
// bandwidth (megabytes) at each checkpoint duration.
func (s *Sweep) Table3() (*Table, error) {
	return buildTable("Table 3: mean bandwidth, MB (95% CI)", s.CTimes, s.MB)
}

// Series is one model's mean curve over the CTime axis (Figures 3-4).
type Series struct {
	Model fit.Model
	Mean  []float64
}

// Figure3 returns the mean-efficiency curves of Figure 3.
func (s *Sweep) Figure3() []Series {
	return s.curves(s.Efficiency)
}

// Figure4 returns the mean-bandwidth curves of Figure 4.
func (s *Sweep) Figure4() []Series {
	return s.curves(s.MB)
}

func (s *Sweep) curves(values map[fit.Model][][]float64) []Series {
	var out []Series
	for _, m := range fit.Models {
		means := make([]float64, len(s.CTimes))
		for ci := range s.CTimes {
			means[ci] = stats.Mean(values[m][ci])
		}
		out = append(out, Series{Model: m, Mean: means})
	}
	return out
}
