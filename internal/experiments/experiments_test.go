package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/stats"
)

// sharedWorkload is built once; experiments tests are read-only users.
var sharedWorkload *Workload

func workload(t *testing.T) *Workload {
	t.Helper()
	if sharedWorkload == nil {
		w, err := NewWorkload(WorkloadConfig{
			Machines: 30,
			Months:   8,
			Seed:     2005,
		})
		if err != nil {
			t.Fatal(err)
		}
		sharedWorkload = w
	}
	return sharedWorkload
}

func TestNewWorkloadBasics(t *testing.T) {
	w := workload(t)
	if len(w.Machines) != 30 {
		t.Fatalf("machines = %d", len(w.Machines))
	}
	if len(w.Data) == 0 {
		t.Fatal("no machines passed the filter")
	}
	for _, d := range w.Data {
		if len(d.Train) != 25 {
			t.Errorf("%s: train size %d", d.Machine, len(d.Train))
		}
		if len(d.Test) < 35 {
			t.Errorf("%s: test size %d below MinRecords-25", d.Machine, len(d.Test))
		}
	}
}

func TestNewWorkloadTooShortCampaign(t *testing.T) {
	_, err := NewWorkload(WorkloadConfig{Machines: 3, Months: 0.001, Seed: 1})
	if err == nil {
		t.Error("microscopic campaign should produce no usable traces")
	}
}

func TestRunSweepShapes(t *testing.T) {
	w := workload(t)
	s, err := RunSweep(w, []float64{50, 500}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CTimes) != 2 || len(s.Machines) != len(w.Data) {
		t.Fatalf("sweep dims: %d ctimes, %d machines", len(s.CTimes), len(s.Machines))
	}
	for _, m := range fit.Models {
		for ci := range s.CTimes {
			for mi := range s.Machines {
				eff := s.Efficiency[m][ci][mi]
				if eff < 0 || eff > 1 {
					t.Errorf("%v C=%g machine %d: efficiency %g", m, s.CTimes[ci], mi, eff)
				}
				if mb := s.MB[m][ci][mi]; mb < 0 {
					t.Errorf("%v: negative MB %g", m, mb)
				}
			}
		}
	}

	// Paper shape 1: efficiency decreases as checkpoints get costlier.
	for _, m := range fit.Models {
		e50 := stats.Mean(s.Efficiency[m][0])
		e500 := stats.Mean(s.Efficiency[m][1])
		if e500 >= e50 {
			t.Errorf("%v: efficiency did not fall with C (%g -> %g)", m, e50, e500)
		}
	}
	// Paper shape 2: bandwidth falls with C (fewer checkpoints fit).
	for _, m := range fit.Models {
		b50 := stats.Mean(s.MB[m][0])
		b500 := stats.Mean(s.MB[m][1])
		if b500 >= b50 {
			t.Errorf("%v: bandwidth did not fall with C (%g -> %g)", m, b50, b500)
		}
	}
	// Paper headline: the 2-phase hyperexponential consumes
	// substantially less bandwidth than the exponential at large C.
	exp500 := stats.Mean(s.MB[fit.ModelExponential][1])
	hyp500 := stats.Mean(s.MB[fit.ModelHyperexp2][1])
	if hyp500 >= exp500 {
		t.Errorf("hyperexp2 bandwidth %g not below exponential %g at C=500", hyp500, exp500)
	}
	// And the efficiencies stay comparable (paper: small differences).
	expEff := stats.Mean(s.Efficiency[fit.ModelExponential][1])
	hypEff := stats.Mean(s.Efficiency[fit.ModelHyperexp2][1])
	if math.Abs(expEff-hypEff) > 0.15 {
		t.Errorf("efficiency gap too large: exp %g vs hyp2 %g", expEff, hypEff)
	}

	// Tables build from the sweep.
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{t1, t3} {
		for _, m := range fit.Models {
			if len(tab.Cells[m]) != 2 {
				t.Fatalf("%s: wrong cell count", tab.Name)
			}
			for ci, cell := range tab.Cells[m] {
				if cell.CI.HalfWidth <= 0 || cell.CI.N != len(w.Data) {
					t.Errorf("%s %v C=%g: bad CI %+v", tab.Name, m, tab.CTimes[ci], cell.CI)
				}
				// Letters must be consistent: a listed model's mean is
				// strictly below this cell's mean.
				for _, other := range cell.Smaller {
					otherMean := tab.Cells[other][ci].CI.Mean
					if otherMean >= cell.CI.Mean {
						t.Errorf("%s %v C=%g: letter %v inconsistent (%g >= %g)",
							tab.Name, m, tab.CTimes[ci], other, otherMean, cell.CI.Mean)
					}
				}
			}
		}
	}

	// Figures carry the same means.
	f3 := s.Figure3()
	if len(f3) != 4 || len(f3[0].Mean) != 2 {
		t.Fatalf("figure3 dims wrong")
	}
	for _, series := range f3 {
		for ci, mean := range series.Mean {
			if math.Abs(mean-t1.Cells[series.Model][ci].CI.Mean) > 1e-12 {
				t.Errorf("figure3 and table1 disagree for %v", series.Model)
			}
		}
	}
	if len(s.Figure4()) != 4 {
		t.Error("figure4 missing series")
	}

	// Renderers produce plausible text.
	txt := RenderTable(t1, 3)
	if !strings.Contains(txt, "CTime") || !strings.Contains(txt, "±") {
		t.Errorf("rendered table 1:\n%s", txt)
	}
	fig := RenderFigure("Figure 3", s.CTimes, f3, 3)
	if !strings.Contains(fig, "Exp.") {
		t.Errorf("rendered figure:\n%s", fig)
	}
	csv := FigureCSV(s.CTimes, f3)
	if !strings.HasPrefix(csv, "ctime,exponential,weibull,hyperexp2,hyperexp3\n") {
		t.Errorf("figure CSV header wrong:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(s.CTimes)+1 {
		t.Errorf("figure CSV rows = %d, want %d", got, len(s.CTimes)+1)
	}
}

func TestRunTable2(t *testing.T) {
	res, err := RunTable2(Table2Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Efficiency <= 0 || c.Efficiency >= 1 {
			t.Errorf("%v C=%g all=%v: efficiency %g", c.Model, c.CTime, c.FitOnAll, c.Efficiency)
		}
	}
	// Weibull uses the true model, so its two fit-size columns match.
	for _, ct := range []float64{50, 500} {
		all, _ := res.Cell(fit.ModelWeibull, ct, true)
		f25, _ := res.Cell(fit.ModelWeibull, ct, false)
		if all.Efficiency != f25.Efficiency {
			t.Errorf("weibull truth cells differ at C=%g: %g vs %g", ct, all.Efficiency, f25.Efficiency)
		}
	}
	// Paper shape: every model lands near the optimal Weibull — model
	// mismatch costs only a few points of efficiency.
	for _, ct := range []float64{50, 500} {
		truth, _ := res.Cell(fit.ModelWeibull, ct, true)
		for _, m := range fit.Models {
			for _, all := range []bool{true, false} {
				cell, ok := res.Cell(m, ct, all)
				if !ok {
					t.Fatalf("missing cell %v C=%g all=%v", m, ct, all)
				}
				if truth.Efficiency-cell.Efficiency > 0.08 {
					t.Errorf("%v C=%g all=%v: %g lags truth %g by more than 8 points",
						m, ct, all, cell.Efficiency, truth.Efficiency)
				}
			}
		}
	}
	// C=50 efficiencies dominate C=500 ones.
	e50, _ := res.Cell(fit.ModelExponential, 50, true)
	e500, _ := res.Cell(fit.ModelExponential, 500, true)
	if e500.Efficiency >= e50.Efficiency {
		t.Error("efficiency should fall from C=50 to C=500")
	}
	txt := RenderTable2(res)
	if !strings.Contains(txt, "C=500 F25") {
		t.Errorf("rendered table 2:\n%s", txt)
	}
}

func TestRunSensitivityStudy(t *testing.T) {
	res, err := RunSensitivity(SensitivityConfig{N: 1500, Seed: 2005})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 { // 4 models × 3 perturbation levels
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Baseline <= 0 || c.Baseline >= 1 {
			t.Errorf("%v: baseline %g", c.Model, c.Baseline)
		}
		// Worst-case never exceeds baseline, and losses stay bounded
		// (the paper's schedules are robust to parameter error).
		if c.Worst > c.Baseline {
			t.Errorf("%v@%g: worst %g above baseline %g", c.Model, c.Perturbation, c.Worst, c.Baseline)
		}
		if c.Loss() > 0.15 {
			t.Errorf("%v@%g: implausibly large loss %g", c.Model, c.Perturbation, c.Loss())
		}
	}
	// Losses grow (weakly) with the perturbation magnitude.
	for _, m := range fit.Models {
		c10, _ := res.Cell(m, 0.10)
		c50, _ := res.Cell(m, 0.50)
		if c50.Worst > c10.Worst+1e-9 {
			t.Errorf("%v: worst at ±50%% (%g) better than at ±10%% (%g)", m, c50.Worst, c10.Worst)
		}
	}
	out := RenderSensitivity(res)
	if !strings.Contains(out, "baseline") {
		t.Errorf("rendered sensitivity:\n%s", out)
	}
}

func TestRunCensoringStudy(t *testing.T) {
	res, err := RunCensoring(CensoringConfig{Machines: 25, ShortDays: 0.5, Seed: 2005})
	if err != nil {
		t.Fatal(err)
	}
	if res.CensoredFraction <= 0 || res.CensoredFraction > 0.5 {
		t.Errorf("censored fraction = %g", res.CensoredFraction)
	}
	for _, c := range res.Cells {
		if c.Efficiency <= 0 || c.Efficiency >= 1 || c.MB <= 0 || c.Machines == 0 {
			t.Errorf("bad cell %+v", c)
		}
	}
	// The reference (18-month training) must beat every short-window
	// strategy on efficiency for the exponential and Weibull models.
	for _, m := range []fit.Model{fit.ModelExponential, fit.ModelWeibull} {
		ref, ok := res.Cell(CensorLongTrain, m)
		if !ok {
			t.Fatalf("missing reference cell for %v", m)
		}
		for _, s := range []CensoringStrategy{CensorDrop, CensorNaive, CensorAware} {
			c, ok := res.Cell(s, m)
			if !ok {
				t.Fatalf("missing cell %v/%v", s, m)
			}
			if c.Efficiency > ref.Efficiency+0.02 {
				t.Errorf("%v/%v: short-window fit (%g) should not beat the reference (%g)",
					s, m, c.Efficiency, ref.Efficiency)
			}
		}
		// Censoring-awareness must recover efficiency relative to
		// dropping the censored observations.
		aware, _ := res.Cell(CensorAware, m)
		drop, _ := res.Cell(CensorDrop, m)
		if aware.Efficiency <= drop.Efficiency {
			t.Errorf("%v: censoring-aware (%g) should beat drop-censored (%g)",
				m, aware.Efficiency, drop.Efficiency)
		}
	}
	out := RenderCensoring(res)
	if !strings.Contains(out, "censoring-aware") || !strings.Contains(out, "long-train") {
		t.Errorf("rendered censoring study:\n%s", out)
	}
	// Strategy names.
	if CensorDrop.String() != "drop-censored" || CensoringStrategy(9).String() != "strategy(9)" {
		t.Error("strategy strings wrong")
	}
}

func TestRunLiveTablesAndValidation(t *testing.T) {
	w := workload(t)
	campusTable, campusCamp, err := RunLiveTable("Table 4: campus manager", LiveCampaignConfig{
		Workload:        w,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 8,
		Seed:            41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(campusTable.Rows) != 4 {
		t.Fatalf("rows = %d", len(campusTable.Rows))
	}
	if math.Abs(campusTable.MeanC-110) > 35 {
		t.Errorf("campus mean C = %g, want ≈110", campusTable.MeanC)
	}
	for _, r := range campusTable.Rows {
		if r.Samples != 8 {
			t.Errorf("%v: %d samples", r.Model, r.Samples)
		}
		if r.AvgEfficiency < 0 || r.AvgEfficiency > 1 {
			t.Errorf("%v: efficiency %g", r.Model, r.AvgEfficiency)
		}
		if r.TotalTime <= 0 || r.MBUsed <= 0 {
			t.Errorf("%v: degenerate row %+v", r.Model, r)
		}
	}
	txt := RenderLiveTable(campusTable)
	if !strings.Contains(txt, "MB/Hour") {
		t.Errorf("rendered live table:\n%s", txt)
	}

	v, err := RunValidation(w, campusCamp)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != 4 {
		t.Fatalf("validation rows = %d", len(v.Rows))
	}
	vtxt := RenderValidation(v)
	if !strings.Contains(vtxt, "Delta") {
		t.Errorf("rendered validation:\n%s", vtxt)
	}
	stxt := RenderSamples(campusCamp.Samples)
	if !strings.Contains(stxt, "machine") {
		t.Errorf("rendered samples:\n%s", stxt)
	}

	// Errors.
	if _, _, err := RunLiveTable("x", LiveCampaignConfig{}); err == nil {
		t.Error("missing workload should error")
	}
	if _, err := RunValidation(nil, campusCamp); err == nil {
		t.Error("nil workload should error")
	}
	if _, err := RunValidation(w, nil); err == nil {
		t.Error("nil campaign should error")
	}
}

func TestRunChaosExperiment(t *testing.T) {
	w := workload(t)
	r, err := RunChaos(ChaosConfig{
		Workload:        w,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 2,
		Seed:            99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sessions != 8 {
		t.Fatalf("sessions = %d", r.Sessions)
	}
	if r.Clean == nil || r.Chaos == nil {
		t.Fatal("missing tables")
	}
	if r.CleanEfficiency <= 0 || r.CleanEfficiency > 1 || r.ChaosEfficiency < 0 || r.ChaosEfficiency > 1 {
		t.Errorf("efficiencies out of range: %g vs %g", r.CleanEfficiency, r.ChaosEfficiency)
	}
	if r.Retries+r.Torn+r.Fallbacks == 0 {
		t.Error("chaos campaign reported no resilience activity")
	}
	// The third, prediction-enabled campaign: alarms fired, sessions
	// settled, and any completed migration carries its bytes.
	if r.Predict == nil {
		t.Fatal("missing prediction-enabled table")
	}
	if r.PredFired == 0 {
		t.Error("predict campaign fired no alarms")
	}
	if r.PredictEfficiency <= 0 || r.PredictEfficiency > 1 {
		t.Errorf("predict efficiency out of range: %g", r.PredictEfficiency)
	}
	if r.Migrations > 0 && r.MigrationMB <= 0 {
		t.Error("migrations moved no bytes")
	}
	out := RenderChaos(r)
	for _, want := range []string{"Chaos experiment", "Efficiency", "MB/hour", "retries", "torn transfers", "fallbacks",
		"chaos+predict", "Prediction (", "migrations moving"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Default fault mix kicks in when unset; the experiment must also
	// refuse a nil workload.
	if _, err := RunChaos(ChaosConfig{}); err == nil {
		t.Error("nil workload should error")
	}
}
