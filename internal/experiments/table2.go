package experiments

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// Table2Config parameterizes the known-truth synthetic study.
type Table2Config struct {
	// Shape and Scale are the generating Weibull's parameters; zeros
	// mean the paper's 0.43 / 3409.
	Shape, Scale float64
	// N is the synthetic trace length; zero means the paper's 5000.
	N int
	// CTimes are the checkpoint costs; empty means the paper's
	// {50, 500}.
	CTimes []float64
	// Seed makes the trace deterministic.
	Seed int64
}

func (c *Table2Config) setDefaults() {
	if c.Shape <= 0 {
		c.Shape = 0.43
	}
	if c.Scale <= 0 {
		c.Scale = 3409
	}
	if c.N <= 0 {
		c.N = 5000
	}
	if len(c.CTimes) == 0 {
		c.CTimes = []float64{50, 500}
	}
}

// Table2Cell is one efficiency entry of Table 2.
type Table2Cell struct {
	Model      fit.Model
	CTime      float64
	FitOnAll   bool // true = fit on all N points, false = first 25
	Efficiency float64
}

// Table2Result is the full grid plus the generating parameters.
type Table2Result struct {
	Shape, Scale float64
	N            int
	Cells        []Table2Cell
}

// Cell looks up one entry.
func (t *Table2Result) Cell(m fit.Model, ctime float64, all bool) (Table2Cell, bool) {
	for _, c := range t.Cells {
		if c.Model == m && c.CTime == ctime && c.FitOnAll == all {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// RunTable2 reproduces the paper's Table 2: a 5000-value availability
// trace is drawn from a known heavy-tailed Weibull; the simulation is
// repeated with each model fitted on all values and on only the first
// 25. The Weibull row uses the exact generating parameters ("precisely
// the same model that was used to generate the artificial trace"), so
// its schedule is optimal and the others quantify the efficiency cost
// of model mismatch.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	cfg.setDefaults()
	truth := dist.NewWeibull(cfg.Shape, cfg.Scale)
	tr, err := trace.Generate(trace.GenerateOptions{
		Machine: "table2-synthetic",
		N:       cfg.N,
		Avail:   truth,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	durations := tr.Durations()
	first25 := durations[:trace.DefaultTrainingSize]

	res := &Table2Result{Shape: cfg.Shape, Scale: cfg.Scale, N: cfg.N}
	// Fit-once: the training sets do not depend on the checkpoint cost,
	// so each (model, training-set) pair is fitted a single time and
	// shared across the C-time axis through the cache.
	fits := fit.NewCache()
	fitFor := func(model fit.Model, all bool) (dist.Distribution, error) {
		if model == fit.ModelWeibull {
			return truth, nil // the exact generating model
		}
		if all {
			return fits.Fit("all", model, durations)
		}
		return fits.Fit("first25", model, first25)
	}
	for _, ctime := range cfg.CTimes {
		costs := markov.Costs{C: ctime, R: ctime, L: ctime}
		simCfg := sim.Config{Costs: costs, CheckpointMB: PaperCheckpointMB}
		for _, model := range fit.Models {
			for _, all := range []bool{true, false} {
				d, err := fitFor(model, all)
				if err != nil {
					return nil, fmt.Errorf("experiments: table2 fit %v: %w", model, err)
				}
				eff, err := simulateWith(d, durations, simCfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: table2 sim %v C=%g: %w", model, ctime, err)
				}
				res.Cells = append(res.Cells, Table2Cell{
					Model: model, CTime: ctime, FitOnAll: all, Efficiency: eff,
				})
			}
		}
	}
	return res, nil
}

// simulateWith replays the full trace under a schedule built from d.
func simulateWith(d dist.Distribution, durations []float64, cfg sim.Config) (float64, error) {
	m := markov.Model{Avail: d, Costs: cfg.Costs}
	maxAvail := 0.0
	for _, a := range durations {
		if a > maxAvail {
			maxAvail = a
		}
	}
	sched, err := m.BuildSchedule(cfg.Costs.R, markov.ScheduleOptions{
		Horizon: maxAvail + cfg.Costs.R + cfg.Costs.C + 1,
	})
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(durations, sched, cfg)
	if err != nil {
		return 0, err
	}
	return res.Efficiency(), nil
}
