package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func smallPrediction(t *testing.T, maxProcs int) *PredictionResult {
	t.Helper()
	r, err := RunPrediction(PredictionConfig{
		Workers:  8,
		Hours:    8,
		Seeds:    2,
		Seed:     42,
		MaxProcs: maxProcs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunPredictionSweep(t *testing.T) {
	r := smallPrediction(t, 0)
	if got, want := len(r.Grid.Cells), 3*5; got != want {
		t.Fatalf("cells = %d, want %d", got, want)
	}

	// The acceptance invariant: perfect-predictor proactive strictly
	// beats the reactive baseline on wasted work, in every model.
	bad, err := r.DominanceViolations()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Errorf("dominance violated for models %v", bad)
	}

	// Policy cells actually exercised their policies.
	for _, model := range []string{"exponential", "weibull", "hyperexp2"} {
		c, err := r.Cell(model, "migrate-good")
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range c.Results {
			if res.Migrations == 0 {
				t.Errorf("%s migrate cell never migrated: %+v", model, res)
			}
			if res.MigrationMB > res.MBMoved {
				t.Errorf("%s migration MB exceeds total: %+v", model, res)
			}
		}
		reactive, err := r.Cell(model, "reactive")
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range reactive.Results {
			if res.Predictions != 0 || res.Migrations != 0 || res.ProactiveCheckpoints != 0 {
				t.Errorf("%s reactive cell has predictor activity: %+v", model, res)
			}
		}
	}

	out, err := RenderPrediction(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fault prediction", "proactive-perfect", "migrate-good",
		"lost work", "migr MB", "beats the reactive baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, out)
		}
	}
	if _, err := RenderPrediction(nil); err == nil {
		t.Error("nil result should error")
	}
}

// The sweep inherits RunGrid's determinism: byte-identical at any
// pool width.
func TestRunPredictionDeterministic(t *testing.T) {
	serial := smallPrediction(t, 1)
	wide := smallPrediction(t, 8)
	if !reflect.DeepEqual(serial.Grid, wide.Grid) {
		t.Error("prediction sweep differs across MaxProcs")
	}
}
