package experiments

import (
	"strings"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
)

func TestRunDeltaExperiment(t *testing.T) {
	w := workload(t)
	r, err := RunDelta(DeltaConfig{
		Workload:        w,
		Link:            ckptnet.CampusLink(),
		SamplesPerModel: 2,
		Seed:            42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sessions != 8 {
		t.Fatalf("sessions = %d", r.Sessions)
	}
	if r.Full == nil || r.Delta == nil || r.VarCost == nil {
		t.Fatal("missing tables")
	}
	// The acceptance criterion: delta reduces bytes-on-wire vs full at
	// comparable efficiency.
	if r.DeltaMB >= r.FullMB {
		t.Errorf("delta moved %.0f MB, full moved %.0f MB; expected a reduction", r.DeltaMB, r.FullMB)
	}
	// Variable-C is NOT required to move fewer bytes than full: the
	// curve makes short intervals cheap in *time*, so the optimizer may
	// checkpoint much more often — trading wire volume for efficiency.
	if r.VarCostMB <= 0 {
		t.Errorf("variable-C campaign moved no bytes")
	}
	if r.DeltaCheckpoints == 0 || r.VarCostCheckpoints == 0 {
		t.Errorf("delta campaigns shipped no deltas: %d, %d", r.DeltaCheckpoints, r.VarCostCheckpoints)
	}
	for name, eff := range map[string]float64{
		"full":    r.FullEfficiency,
		"delta":   r.DeltaEfficiency,
		"varcost": r.VarCostEfficiency,
	} {
		if eff <= 0 || eff > 1 {
			t.Errorf("%s efficiency out of range: %g", name, eff)
		}
	}
	if r.DeltaEfficiency < 0.8*r.FullEfficiency {
		t.Errorf("delta efficiency %.3f collapsed vs full %.3f", r.DeltaEfficiency, r.FullEfficiency)
	}
	if r.SavingsPct() <= 0 || r.SavingsPct() >= 100 {
		t.Errorf("savings = %.1f%%", r.SavingsPct())
	}

	// The wire series must exist for all three campaigns and agree with
	// the sample-sum accounting to within bin rounding (every Add rounds
	// fractional transfers to whole bytes).
	if r.FullWire == nil || r.DeltaWire == nil || r.VarCostWire == nil {
		t.Fatal("missing wire series")
	}
	fullMB := float64(r.FullWire.Total()) / ckptnet.MB
	if diff := fullMB - r.FullMB; diff > 1 || diff < -1 {
		t.Errorf("wire series total %.1f MB, samples sum %.1f MB", fullMB, r.FullMB)
	}
	deltaMB := float64(r.DeltaWire.Total()) / ckptnet.MB
	if deltaMB >= fullMB {
		t.Errorf("delta wire series %.1f MB not below full %.1f MB", deltaMB, fullMB)
	}

	out := RenderDelta(r)
	for _, want := range []string{"Delta experiment", "Bytes on wire", "Delta checkpoints",
		"delta+variable-C", "Wire savings vs full", "Network overhead vs time"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	if _, err := RunDelta(DeltaConfig{}); err == nil {
		t.Error("nil workload should error")
	}
}
