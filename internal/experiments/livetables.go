package experiments

import (
	"errors"

	"github.com/cycleharvest/ckptsched/internal/ckptnet"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/live"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/predict"
	"github.com/cycleharvest/ckptsched/internal/stats"
)

// LiveRow is one row of Table 4 or Table 5: per-model aggregates of a
// live campaign.
type LiveRow struct {
	Model fit.Model
	// AvgEfficiency is the mean per-sample efficiency.
	AvgEfficiency float64
	// TotalTime is the summed session time (seconds).
	TotalTime float64
	// MBUsed is the summed network volume (megabytes).
	MBUsed float64
	// MBPerHour is MBUsed per hour of TotalTime.
	MBPerHour float64
	// Samples is the run count.
	Samples int
}

// LiveTable is a rendered live-experiment table plus campaign
// metadata.
type LiveTable struct {
	Name string
	// MeanC is the campaign-wide mean measured transfer cost, the
	// number that picks which simulation row (Table 1/3) each live
	// table is comparable to (≈110 s campus, ≈475 s wide-area).
	MeanC float64
	Rows  []LiveRow
}

// LiveCampaignConfig parameterizes Tables 4 and 5.
type LiveCampaignConfig struct {
	// Workload supplies machines and history.
	Workload *Workload
	// Link selects the manager placement: ckptnet.CampusLink() for
	// Table 4, ckptnet.WideAreaLink() for Table 5.
	Link ckptnet.Link
	// SamplesPerModel defaults to 85, the ballpark of the paper's
	// Table 4 sample sizes.
	SamplesPerModel int
	// Concurrency keeps that many test processes in flight (default 1,
	// the sequential protocol; the paper's total times suggest ~4
	// overlapping processes, at the cost of noisier per-model
	// aggregates).
	Concurrency int
	// Seed makes the campaign deterministic.
	Seed int64
	// Tracer, when set, passes through to live.CampaignConfig: one
	// session span per sample on pid = TracePidBase + index + 1.
	Tracer *obs.Tracer
	// TracePidBase separates this campaign's trace lanes from other
	// campaigns sharing the tracer (use multiples of TraceCampaignStride).
	TracePidBase uint64
	// Predict and Policy enable the fault predictor for every session
	// of the campaign (both pass through to live.CampaignConfig).
	Predict predict.Config
	Policy  predict.Policy
	// Delta enables content-addressed delta checkpointing for every
	// session of the campaign (passes through to live.CampaignConfig).
	Delta live.DeltaPolicy
	// WireBins, when positive, records the campaign's bytes-on-wire as
	// a time series with this many bins (returned on Campaign.Wire).
	WireBins int
}

// TraceCampaignStride is the pid-lane stride callers should leave
// between campaigns that share one tracer; it bounds a campaign to
// 65535 samples, far above any paper table.
const TraceCampaignStride = 1 << 16

// RunLiveTable runs one live campaign and aggregates it into table
// rows. It also returns the raw campaign for validation.
func RunLiveTable(name string, cfg LiveCampaignConfig) (*LiveTable, *live.Campaign, error) {
	if cfg.Workload == nil {
		return nil, nil, errors.New("experiments: live table needs a workload")
	}
	if cfg.SamplesPerModel <= 0 {
		cfg.SamplesPerModel = 85
	}
	camp, err := live.RunCampaign(live.CampaignConfig{
		Machines:        cfg.Workload.Machines,
		History:         cfg.Workload.History,
		Link:            cfg.Link,
		CheckpointMB:    PaperCheckpointMB,
		SamplesPerModel: cfg.SamplesPerModel,
		Concurrency:     cfg.Concurrency,
		Seed:            cfg.Seed,
		Tracer:          cfg.Tracer,
		TracePidBase:    cfg.TracePidBase,
		Predict:         cfg.Predict,
		Policy:          cfg.Policy,
		Delta:           cfg.Delta,
		WireBins:        cfg.WireBins,
	})
	if err != nil {
		return nil, nil, err
	}
	table := &LiveTable{Name: name}
	var allC []float64
	byModel := camp.ByModel()
	for _, m := range fit.Models {
		samples := byModel[m]
		if len(samples) == 0 {
			continue
		}
		var effs []float64
		row := LiveRow{Model: m, Samples: len(samples)}
		for _, s := range samples {
			effs = append(effs, s.Efficiency())
			row.TotalTime += s.SessionSec
			row.MBUsed += s.MBMoved
			allC = append(allC, s.MeasuredCs...)
		}
		row.AvgEfficiency = stats.Mean(effs)
		if row.TotalTime > 0 {
			row.MBPerHour = row.MBUsed / (row.TotalTime / 3600)
		}
		table.Rows = append(table.Rows, row)
	}
	if len(allC) > 0 {
		table.MeanC = stats.Mean(allC)
	}
	return table, camp, nil
}

// ValidationResult pairs the §5.3 validation rows with the campaign
// they validate.
type ValidationResult struct {
	LinkName string
	Rows     []live.ValidationRow
}

// RunValidation replays a live campaign through the simulator.
func RunValidation(w *Workload, camp *live.Campaign) (*ValidationResult, error) {
	if w == nil || camp == nil {
		return nil, errors.New("experiments: validation needs a workload and a campaign")
	}
	rows, err := live.Validate(camp, w.History, 0)
	if err != nil {
		return nil, err
	}
	return &ValidationResult{LinkName: camp.LinkName, Rows: rows}, nil
}

// ChaosConfig parameterizes the fault-injected live campaign the
// -chaos experiment runs: the same campaign twice, once over the clean
// link and once under fault injection, so the resilience layer's
// overhead is directly measurable.
type ChaosConfig struct {
	// Workload supplies machines and history.
	Workload *Workload
	// Link is the clean link profile (default campus).
	Link ckptnet.Link
	// Faults selects the injected fault mix. The zero value gets a
	// representative mix: 10% torn transfers, 10% manager outages, and
	// occasional 30 s stalls.
	Faults ckptnet.LinkFaultConfig
	// SamplesPerModel defaults to 5 (a 20-session campaign, the
	// acceptance scenario's size).
	SamplesPerModel int
	// Seed makes both campaigns deterministic and keeps them paired.
	Seed int64
	// Tracer, when set, records all three campaigns: the clean twin on
	// lanes starting at TracePidBase, the fault-injected one a
	// TraceCampaignStride above it, the prediction-enabled one two
	// strides up.
	Tracer *obs.Tracer
	// TracePidBase is the first campaign's lane base.
	TracePidBase uint64
	// Predict is the predictor quality of the third, prediction-enabled
	// chaos campaign. The zero value gets a representative good
	// predictor (precision 0.85, recall 0.8, 240 s lead).
	Predict predict.Config
	// Policy is the third campaign's prediction policy (default
	// migrate, the paper's minimum-overhead response).
	Policy predict.Policy
}

// ChaosResult compares a clean campaign against its fault-injected
// twin and a prediction-enabled triplet.
type ChaosResult struct {
	LinkName string
	// Clean and Chaos are the per-model tables of the two campaigns;
	// Predict is the third campaign — the same fault-injected link with
	// the fault predictor driving the Policy below.
	Clean, Chaos, Predict *LiveTable
	// PredictConfig and Policy record what the third campaign ran.
	PredictConfig predict.Config
	Policy        predict.Policy
	// CleanEfficiency and ChaosEfficiency are campaign-wide mean
	// per-sample efficiencies; PredictEfficiency is the third
	// campaign's.
	CleanEfficiency, ChaosEfficiency, PredictEfficiency float64
	// CleanMBPerHour and ChaosMBPerHour are campaign-wide bandwidth
	// consumption rates; PredictMBPerHour is the third campaign's.
	CleanMBPerHour, ChaosMBPerHour, PredictMBPerHour float64
	// Retries, Torn, and Fallbacks are the chaos campaign's resilience
	// totals; BackoffSec is total virtual time spent waiting between
	// retries.
	Retries, Torn, Fallbacks int
	BackoffSec               float64
	// PredFired, PredHits, PredFalse and PredMissed are the third
	// campaign's predictor score card; Migrations and MigrationMB count
	// its completed prediction-triggered migrations and the bytes they
	// moved.
	PredFired, PredHits, PredFalse, PredMissed int
	Migrations                                 int
	MigrationMB                                float64
	// Sessions is the number of completed sessions in each campaign.
	Sessions int
}

// EfficiencyDelta is chaos minus clean efficiency (expected negative:
// injected faults cost committed work).
func (r *ChaosResult) EfficiencyDelta() float64 {
	return r.ChaosEfficiency - r.CleanEfficiency
}

// BandwidthDelta is chaos minus clean MB/hour.
func (r *ChaosResult) BandwidthDelta() float64 {
	return r.ChaosMBPerHour - r.CleanMBPerHour
}

// RunChaos runs the paired clean/fault-injected campaigns and reports
// the overhead and bandwidth deltas plus the resilience totals.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Workload == nil {
		return nil, errors.New("experiments: chaos experiment needs a workload")
	}
	if cfg.Link == nil {
		cfg.Link = ckptnet.CampusLink()
	}
	if cfg.SamplesPerModel <= 0 {
		cfg.SamplesPerModel = 5
	}
	zero := ckptnet.LinkFaultConfig{}
	if cfg.Faults == zero {
		cfg.Faults = ckptnet.LinkFaultConfig{
			TearProb:   0.10,
			StallProb:  0.05,
			StallSec:   30,
			OutageProb: 0.10,
		}
	}

	cleanTable, cleanCamp, err := RunLiveTable("clean", LiveCampaignConfig{
		Workload:        cfg.Workload,
		Link:            cfg.Link,
		SamplesPerModel: cfg.SamplesPerModel,
		Seed:            cfg.Seed,
		Tracer:          cfg.Tracer,
		TracePidBase:    cfg.TracePidBase,
	})
	if err != nil {
		return nil, err
	}
	chaosTable, chaosCamp, err := RunLiveTable("chaos", LiveCampaignConfig{
		Workload:        cfg.Workload,
		Link:            ckptnet.ChaosLink{Inner: cfg.Link, Faults: cfg.Faults},
		SamplesPerModel: cfg.SamplesPerModel,
		Seed:            cfg.Seed,
		Tracer:          cfg.Tracer,
		TracePidBase:    cfg.TracePidBase + TraceCampaignStride,
	})
	if err != nil {
		return nil, err
	}
	if !cfg.Predict.Enabled() {
		cfg.Predict = predict.Config{Precision: 0.85, Recall: 0.8, LeadSec: 240}
		if cfg.Policy == predict.PolicyReactive {
			cfg.Policy = predict.PolicyMigrate
		}
	}
	predictTable, predictCamp, err := RunLiveTable("chaos+predict", LiveCampaignConfig{
		Workload:        cfg.Workload,
		Link:            ckptnet.ChaosLink{Inner: cfg.Link, Faults: cfg.Faults},
		SamplesPerModel: cfg.SamplesPerModel,
		Seed:            cfg.Seed,
		Tracer:          cfg.Tracer,
		TracePidBase:    cfg.TracePidBase + 2*TraceCampaignStride,
		Predict:         cfg.Predict,
		Policy:          cfg.Policy,
	})
	if err != nil {
		return nil, err
	}

	res := &ChaosResult{
		LinkName:      cfg.Link.Name(),
		Clean:         cleanTable,
		Chaos:         chaosTable,
		Predict:       predictTable,
		PredictConfig: cfg.Predict,
		Policy:        cfg.Policy,
		Sessions:      len(chaosCamp.Samples),
	}
	res.Retries, res.Torn, res.Fallbacks, res.BackoffSec = chaosCamp.ChaosTotals()
	res.CleanEfficiency, res.CleanMBPerHour = campaignAggregates(cleanCamp)
	res.ChaosEfficiency, res.ChaosMBPerHour = campaignAggregates(chaosCamp)
	res.PredictEfficiency, res.PredictMBPerHour = campaignAggregates(predictCamp)
	res.PredFired, res.PredHits, res.PredFalse, res.PredMissed,
		_, res.Migrations, res.MigrationMB = predictCamp.PredictionTotals()
	return res, nil
}

// campaignAggregates computes the campaign-wide mean efficiency and
// MB/hour.
func campaignAggregates(c *live.Campaign) (eff, mbPerHour float64) {
	var effs []float64
	var mb, sec float64
	for _, s := range c.Samples {
		effs = append(effs, s.Efficiency())
		mb += s.MBMoved
		sec += s.SessionSec
	}
	if len(effs) > 0 {
		eff = stats.Mean(effs)
	}
	if sec > 0 {
		mbPerHour = mb / (sec / 3600)
	}
	return eff, mbPerHour
}
