package experiments

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/condor"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/stats"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// CensoringStrategy is a way of handling right-censored observations
// when fitting from a short monitoring window.
type CensoringStrategy int

const (
	// CensorDrop discards censored observations entirely.
	CensorDrop CensoringStrategy = iota
	// CensorNaive treats censored durations as if they were exact
	// lifetimes (what a pipeline unaware of censoring silently does).
	CensorNaive
	// CensorAware uses the censoring-aware maximum-likelihood / EM
	// estimators.
	CensorAware
	// CensorLongTrain is the reference: the paper's protocol, fitting
	// on the first 25 values of the full-length campaign.
	CensorLongTrain
)

func (s CensoringStrategy) String() string {
	switch s {
	case CensorDrop:
		return "drop-censored"
	case CensorNaive:
		return "naive-exact"
	case CensorAware:
		return "censoring-aware"
	case CensorLongTrain:
		return "long-train (ref)"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// CensoringStrategies lists the strategies in presentation order.
var CensoringStrategies = []CensoringStrategy{
	CensorDrop, CensorNaive, CensorAware, CensorLongTrain,
}

// CensoringConfig parameterizes the censoring-sensitivity study (an
// extension quantifying the §5.3 discussion: short measurement windows
// right-censor availability data and bias naive fits).
type CensoringConfig struct {
	// Machines is the pool size. Default 40.
	Machines int
	// ShortDays is the short monitoring window. Default 1 day.
	ShortDays float64
	// Months is the full campaign used for the reference fit and the
	// experimental replay. Default 18.
	Months float64
	// CTime is the checkpoint/recovery cost for the replay. Default
	// 500 s.
	CTime float64
	// Seed makes the study deterministic.
	Seed int64
}

func (c *CensoringConfig) setDefaults() {
	if c.Machines <= 0 {
		c.Machines = 40
	}
	if c.ShortDays <= 0 {
		c.ShortDays = 1
	}
	if c.Months <= 0 {
		c.Months = 18
	}
	if c.CTime <= 0 {
		c.CTime = 500
	}
}

// CensoringCell aggregates one (strategy, model) combination across
// machines.
type CensoringCell struct {
	Strategy   CensoringStrategy
	Model      fit.Model
	Efficiency float64 // mean across machines
	MB         float64 // mean across machines
	Machines   int
}

// CensoringResult is the study outcome.
type CensoringResult struct {
	Config CensoringConfig
	// CensoredFraction is the fraction of short-window observations
	// that were right-censored.
	CensoredFraction float64
	Cells            []CensoringCell
}

// Cell looks up one entry.
func (r *CensoringResult) Cell(s CensoringStrategy, m fit.Model) (CensoringCell, bool) {
	for _, c := range r.Cells {
		if c.Strategy == s && c.Model == m {
			return c, true
		}
	}
	return CensoringCell{}, false
}

// RunCensoring measures how short, right-censored monitoring windows
// affect schedule quality. The same pool realization is monitored
// twice (identical seeds): once for the full campaign — its first 25
// values per machine give the reference fit, its remainder the replay
// workload — and once for only ShortDays with in-progress occupancies
// recorded as censored. Each censoring strategy fits each model from
// the short window, and every fitted model replays the same
// experimental trace.
func RunCensoring(cfg CensoringConfig) (*CensoringResult, error) {
	cfg.setDefaults()
	machines, err := condor.SyntheticPool(condor.SyntheticPoolConfig{
		Machines: cfg.Machines,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	collect := func(duration float64, censored bool) (*trace.Set, error) {
		pool, err := condor.NewPool(machines, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return condor.CollectTraces(pool, condor.MonitorConfig{
			Monitors:        cfg.Machines,
			Duration:        duration,
			IncludeCensored: censored,
		})
	}
	long, err := collect(condor.MonthsSeconds(cfg.Months), false)
	if err != nil {
		return nil, err
	}
	short, err := collect(cfg.ShortDays*24*3600, true)
	if err != nil {
		return nil, err
	}

	res := &CensoringResult{Config: cfg}
	costs := markov.Costs{C: cfg.CTime, R: cfg.CTime, L: cfg.CTime}
	simCfg := sim.Config{Costs: costs, CheckpointMB: PaperCheckpointMB}
	// Uncensored strategy fits flow through one cache keyed
	// (machine, strategy): every entry is distinct today, but the cache
	// preserves the fit-once contract if the machine loop is ever
	// parallelized or a strategy re-asks for a fit.
	fits := fit.NewCache()

	// Per-(strategy, model) accumulators.
	type key struct {
		s CensoringStrategy
		m fit.Model
	}
	effs := make(map[key][]float64)
	mbs := make(map[key][]float64)
	var censObs, totObs int

	for _, name := range long.Machines() {
		longTr := long.Traces[name]
		shortTr, ok := short.Traces[name]
		if !ok || longTr.Len() <= trace.DefaultTrainingSize+10 || shortTr.Len() < 5 {
			continue
		}
		trainLong, test, err := longTr.Split(trace.DefaultTrainingSize)
		if err != nil {
			continue
		}
		durs, flags := shortTr.Observations()
		for _, f := range flags {
			totObs++
			if f {
				censObs++
			}
		}

		for _, strategy := range CensoringStrategies {
			for _, model := range fit.Models {
				d, err := fitWithStrategy(fits, name, strategy, model, durs, flags, trainLong)
				if err != nil {
					continue // strategy may be infeasible (e.g. drop leaves nothing)
				}
				eff, mb, err := replay(d, test, simCfg)
				if err != nil {
					continue
				}
				k := key{strategy, model}
				effs[k] = append(effs[k], eff)
				mbs[k] = append(mbs[k], mb)
			}
		}
	}
	if totObs > 0 {
		res.CensoredFraction = float64(censObs) / float64(totObs)
	}
	for _, strategy := range CensoringStrategies {
		for _, model := range fit.Models {
			k := key{strategy, model}
			if len(effs[k]) == 0 {
				continue
			}
			res.Cells = append(res.Cells, CensoringCell{
				Strategy:   strategy,
				Model:      model,
				Efficiency: stats.Mean(effs[k]),
				MB:         stats.Mean(mbs[k]),
				Machines:   len(effs[k]),
			})
		}
	}
	if len(res.Cells) == 0 {
		return nil, fmt.Errorf("experiments: censoring study produced no cells; lengthen the windows")
	}
	return res, nil
}

func fitWithStrategy(fits *fit.Cache, machine string, s CensoringStrategy, m fit.Model, durs []float64, flags []bool, trainLong []float64) (dist.Distribution, error) {
	key := machine + "/" + s.String()
	switch s {
	case CensorDrop:
		var kept []float64
		for i, d := range durs {
			if !flags[i] {
				kept = append(kept, d)
			}
		}
		return fits.Fit(key, m, kept)
	case CensorNaive:
		return fits.Fit(key, m, durs)
	case CensorAware:
		// Censoring-aware estimation has its own entry point and stays
		// outside the cache (Cache memoizes the exact-lifetime Fit).
		obs := make([]fit.Observation, len(durs))
		for i := range durs {
			obs[i] = fit.Observation{Value: durs[i], Censored: flags[i]}
		}
		return fit.FitCensored(m, obs)
	case CensorLongTrain:
		return fits.Fit(key, m, trainLong)
	}
	return nil, fmt.Errorf("experiments: unknown strategy %v", s)
}

func replay(d dist.Distribution, test []float64, cfg sim.Config) (eff, mb float64, err error) {
	m := markov.Model{Avail: d, Costs: cfg.Costs}
	maxAvail := 0.0
	for _, a := range test {
		if a > maxAvail {
			maxAvail = a
		}
	}
	sched, err := m.BuildSchedule(cfg.Costs.R, markov.ScheduleOptions{
		Horizon: maxAvail + cfg.Costs.R + cfg.Costs.C + 1,
	})
	if err != nil {
		return 0, 0, err
	}
	res, err := sim.Run(test, sched, cfg)
	if err != nil {
		return 0, 0, err
	}
	return res.Efficiency(), res.MBTransferred, nil
}

// RenderCensoring renders the study as text.
func RenderCensoring(r *CensoringResult) string {
	out := fmt.Sprintf("Censoring sensitivity (extension of §5.3): %g-day window, %.0f%% of observations censored, C=R=%g s\n",
		r.Config.ShortDays, 100*r.CensoredFraction, r.Config.CTime)
	out += fmt.Sprintf("%-18s", "strategy")
	for _, m := range fit.Models {
		out += fmt.Sprintf(" | %-18s", modelHeaders[m])
	}
	out += "\n" + fmt.Sprintf("%-18s", "")
	for range fit.Models {
		out += fmt.Sprintf(" | %8s %9s", "eff", "MB")
	}
	out += "\n"
	for _, s := range CensoringStrategies {
		out += fmt.Sprintf("%-18s", s)
		for _, m := range fit.Models {
			if c, ok := r.Cell(s, m); ok {
				out += fmt.Sprintf(" | %8.3f %9.0f", c.Efficiency, c.MB)
			} else {
				out += fmt.Sprintf(" | %8s %9s", "-", "-")
			}
		}
		out += "\n"
	}
	return out
}
