package experiments

import (
	"fmt"
	"strings"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/live"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// modelHeaders are the column titles in the paper's order.
var modelHeaders = map[fit.Model]string{
	fit.ModelExponential: "Exp.",
	fit.ModelWeibull:     "Weib.",
	fit.ModelHyperexp2:   "2-ph Hyper.",
	fit.ModelHyperexp3:   "3-ph Hyper.",
}

// RenderTable renders a Table 1/3-style grid as fixed-width text.
func RenderTable(t *Table, decimals int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Name)
	fmt.Fprintf(&b, "%-6s", "CTime")
	for _, m := range fit.Models {
		fmt.Fprintf(&b, " | %-26s", modelHeaders[m])
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 6+4*29))
	b.WriteString("\n")
	for ci, c := range t.CTimes {
		fmt.Fprintf(&b, "%-6g", c)
		for _, m := range fit.Models {
			cell := t.Cells[m][ci]
			entry := fmt.Sprintf("%.*f ± %.*f %s",
				decimals, cell.CI.Mean, decimals, cell.CI.HalfWidth, cell.Letters())
			fmt.Fprintf(&b, " | %-26s", strings.TrimSpace(entry))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure renders Figure 3/4-style series as an aligned text
// table (one row per checkpoint duration, one column per model) —
// the numbers a plotting tool would consume.
func RenderFigure(name string, ctimes []float64, series []Series, decimals int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	fmt.Fprintf(&b, "%-6s", "CTime")
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", modelHeaders[s.Model])
	}
	b.WriteString("\n")
	for ci, c := range ctimes {
		fmt.Fprintf(&b, "%-6g", c)
		for _, s := range series {
			fmt.Fprintf(&b, " %14.*f", decimals, s.Mean[ci])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTable2 renders the known-truth synthetic grid in the paper's
// layout (C=50 All, C=50 First-25, C=500 All, C=500 First-25).
func RenderTable2(t *Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: efficiency on synthetic Weibull(shape=%g, scale=%g), n=%d\n",
		t.Shape, t.Scale, t.N)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s\n",
		"Distribution", "C=50 All", "C=50 F25", "C=500 All", "C=500 F25")
	for _, m := range fit.Models {
		fmt.Fprintf(&b, "%-14s", modelHeaders[m])
		for _, ct := range []float64{50, 500} {
			for _, all := range []bool{true, false} {
				if cell, ok := t.Cell(m, ct, all); ok {
					fmt.Fprintf(&b, " %10.3f", cell.Efficiency)
				} else {
					fmt.Fprintf(&b, " %10s", "-")
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderLiveTable renders a Table 4/5-style live-campaign summary.
func RenderLiveTable(t *LiveTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (mean measured C ≈ %.0f s)\n", t.Name, t.MeanC)
	fmt.Fprintf(&b, "%-14s %6s %12s %14s %14s %12s\n",
		"Distribution", "Avg.", "Total Time", "Megabytes", "MB/Hour", "Samples")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %6.3f %12.0f %14.0f %14.0f %12d\n",
			modelHeaders[r.Model], r.AvgEfficiency, r.TotalTime, r.MBUsed, r.MBPerHour, r.Samples)
	}
	return b.String()
}

// RenderValidation renders the §5.3 live-vs-simulation comparison.
func RenderValidation(v *ValidationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Validation (§5.3): live vs simulated efficiency, %s link\n", v.LinkName)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s\n", "Distribution", "Live", "Simulated", "Delta", "Samples")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-14s %10.3f %10.3f %+10.3f %10d\n",
			modelHeaders[r.Model], r.LiveEfficiency, r.SimEfficiency, r.Delta(), r.Samples)
	}
	return b.String()
}

// FigureCSV renders Figure 3/4-style series as plain CSV (one row per
// checkpoint duration) for external plotting tools.
func FigureCSV(ctimes []float64, series []Series) string {
	var b strings.Builder
	b.WriteString("ctime")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Model)
	}
	b.WriteString("\n")
	for ci, c := range ctimes {
		fmt.Fprintf(&b, "%g", c)
		for _, s := range series {
			fmt.Fprintf(&b, ",%g", s.Mean[ci])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderSamples dumps per-sample live records (debugging aid and the
// post-mortem log format the validation consumes).
func RenderSamples(samples []live.Sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-12s %-16s %10s %10s %10s %8s\n",
		"#", "model", "machine", "session", "useful", "MB", "ckpts")
	for i, s := range samples {
		fmt.Fprintf(&b, "%-4d %-12s %-16s %10.0f %10.0f %10.0f %8d\n",
			i, s.Model, s.Machine, s.SessionSec, s.CommittedWork, s.MBMoved, s.Checkpoints)
	}
	return b.String()
}

// RenderDelta renders the delta-checkpointing experiment: full vs
// delta vs delta+variable-C per-model tables, the campaign-level
// bytes-on-wire comparison, and the dedup counters.
func RenderDelta(r *DeltaResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Delta experiment: %d sessions over %s, full vs delta vs delta+variable-C (dirty rate %g/s)\n\n",
		r.Sessions, r.LinkName, r.DirtyRate)
	b.WriteString(RenderLiveTable(r.Full))
	b.WriteString("\n")
	b.WriteString(RenderLiveTable(r.Delta))
	b.WriteString("\n")
	b.WriteString(RenderLiveTable(r.VarCost))
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-24s %12s %12s %14s\n", "Campaign aggregate", "Full", "Delta", "Delta+var-C")
	fmt.Fprintf(&b, "%-24s %12.3f %12.3f %14.3f\n",
		"Efficiency", r.FullEfficiency, r.DeltaEfficiency, r.VarCostEfficiency)
	fmt.Fprintf(&b, "%-24s %12.0f %12.0f %14.0f\n",
		"Bytes on wire (MB)", r.FullMB, r.DeltaMB, r.VarCostMB)
	fmt.Fprintf(&b, "%-24s %12.0f %12.0f %14.0f\n",
		"Bandwidth (MB/hour)", r.FullMBPerHour, r.DeltaMBPerHour, r.VarCostMBPerHour)
	fmt.Fprintf(&b, "%-24s %12s %12d %14d\n",
		"Delta checkpoints", "-", r.DeltaCheckpoints, r.VarCostCheckpoints)
	fmt.Fprintf(&b, "\nWire savings vs full: delta %.1f%%, delta+variable-C %.1f%%\n",
		r.SavingsPct(), r.VarCostSavingsPct())
	if r.FullWire != nil {
		fmt.Fprintf(&b, "\nNetwork overhead vs time (%.0f s bins, MB/s):\n", r.FullWire.Width())
		writeWireRow(&b, "full", r.FullWire)
		writeWireRow(&b, "delta", r.DeltaWire)
		writeWireRow(&b, "delta+var-C", r.VarCostWire)
	}
	return b.String()
}

// writeWireRow renders one campaign's bytes-on-wire series as a
// sparkline with its peak and mean rate.
func writeWireRow(b *strings.Builder, label string, w *obs.ByteSeries) {
	if w == nil {
		return
	}
	rates := w.MBPerSec()
	peak, sum := 0.0, 0.0
	for _, v := range rates {
		if v > peak {
			peak = v
		}
		sum += v
	}
	mean := 0.0
	if len(rates) > 0 {
		mean = sum / float64(len(rates))
	}
	fmt.Fprintf(b, "%-14s %s  peak %.2f  mean %.2f\n",
		label, obs.Sparkline(rates, len(rates)), peak, mean)
}

// RenderChaos renders the fault-injection experiment: clean vs chaos
// vs prediction-enabled per-model tables, the campaign-level deltas,
// the resilience counters, and the third campaign's predictor score
// card with its migration bytes.
func RenderChaos(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos experiment: %d sessions over %s, clean vs fault-injected vs predicted\n\n", r.Sessions, r.LinkName)
	b.WriteString(RenderLiveTable(r.Clean))
	b.WriteString("\n")
	b.WriteString(RenderLiveTable(r.Chaos))
	if r.Predict != nil {
		b.WriteString("\n")
		b.WriteString(RenderLiveTable(r.Predict))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %10s\n", "Campaign aggregate", "Clean", "Chaos", "Delta", "Predicted")
	fmt.Fprintf(&b, "%-24s %10.3f %10.3f %+10.3f %10.3f\n",
		"Efficiency", r.CleanEfficiency, r.ChaosEfficiency, r.EfficiencyDelta(), r.PredictEfficiency)
	fmt.Fprintf(&b, "%-24s %10.0f %10.0f %+10.0f %10.0f\n",
		"Bandwidth (MB/hour)", r.CleanMBPerHour, r.ChaosMBPerHour, r.BandwidthDelta(), r.PredictMBPerHour)
	fmt.Fprintf(&b, "\nResilience: %d retries, %d torn transfers, %d schedule fallbacks, %.0f s in backoff\n",
		r.Retries, r.Torn, r.Fallbacks, r.BackoffSec)
	if r.Predict != nil {
		fmt.Fprintf(&b, "Prediction (%s, policy %s): %d alarms fired (%d hits, %d false, %d missed), %d migrations moving %.0f MB\n",
			r.PredictConfig, r.Policy, r.PredFired, r.PredHits, r.PredFalse, r.PredMissed,
			r.Migrations, r.MigrationMB)
	}
	return b.String()
}
