package experiments

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/core"
	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
	"github.com/cycleharvest/ckptsched/internal/sim"
	"github.com/cycleharvest/ckptsched/internal/trace"
)

// SensitivityConfig parameterizes the parameter-sensitivity study —
// §5.2 raises exactly this concern: "if the models we use are
// sensitive to inaccuracies in the parameters supplied to them, the
// simulation results could be misleading."
type SensitivityConfig struct {
	// Shape, Scale, N: the generating Weibull trace (defaults: the
	// paper's 0.43 / 3409 / 5000).
	Shape, Scale float64
	N            int
	// CTime is the checkpoint/recovery cost. Default 500 s.
	CTime float64
	// Perturbations are the relative parameter errors to test.
	// Default {0.10, 0.25, 0.50}.
	Perturbations []float64
	// Seed drives trace generation.
	Seed int64
}

func (c *SensitivityConfig) setDefaults() {
	if c.Shape <= 0 {
		c.Shape = 0.43
	}
	if c.Scale <= 0 {
		c.Scale = 3409
	}
	if c.N <= 0 {
		c.N = 5000
	}
	if c.CTime <= 0 {
		c.CTime = 500
	}
	if len(c.Perturbations) == 0 {
		c.Perturbations = []float64{0.10, 0.25, 0.50}
	}
}

// SensitivityCell reports, for one model at one perturbation level,
// the worst efficiency over all single-parameter perturbations of the
// fitted model (each parameter scaled by 1±p in turn).
type SensitivityCell struct {
	Model        fit.Model
	Perturbation float64
	// Baseline is the unperturbed fitted model's efficiency.
	Baseline float64
	// Worst is the minimum efficiency across perturbed variants;
	// WorstParam and WorstDir identify the offending parameter.
	Worst      float64
	WorstParam int
	WorstDir   float64 // +p or -p
}

// Loss is the efficiency sacrificed to the worst perturbation.
func (c SensitivityCell) Loss() float64 { return c.Baseline - c.Worst }

// SensitivityResult is the full grid.
type SensitivityResult struct {
	Config SensitivityConfig
	Cells  []SensitivityCell
}

// Cell looks up one entry.
func (r *SensitivityResult) Cell(m fit.Model, p float64) (SensitivityCell, bool) {
	for _, c := range r.Cells {
		if c.Model == m && c.Perturbation == p {
			return c, true
		}
	}
	return SensitivityCell{}, false
}

// RunSensitivity fits each model family to the training prefix of a
// known-truth trace, then perturbs every fitted parameter one at a
// time by ±p and replays the full trace under each perturbed schedule,
// reporting the worst efficiency per (model, p). Rate-like and
// weight-like parameters are perturbed multiplicatively; mixture
// weights are renormalized by the distribution constructor.
func RunSensitivity(cfg SensitivityConfig) (*SensitivityResult, error) {
	cfg.setDefaults()
	truth := dist.NewWeibull(cfg.Shape, cfg.Scale)
	tr, err := trace.Generate(trace.GenerateOptions{
		Machine: "sensitivity",
		N:       cfg.N,
		Avail:   truth,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	durations := tr.Durations()
	train := durations[:trace.DefaultTrainingSize]
	costs := markov.Costs{C: cfg.CTime, R: cfg.CTime, L: cfg.CTime}
	simCfg := sim.Config{Costs: costs, CheckpointMB: PaperCheckpointMB}

	res := &SensitivityResult{Config: cfg}
	// All models share one training prefix; the cache keys it once so a
	// future parallel variant of the perturbation grid keeps the
	// fit-once discipline for free.
	fits := fit.NewCache()
	for _, model := range fit.Models {
		fitted, err := fits.Fit("train", model, train)
		if err != nil {
			return nil, fmt.Errorf("experiments: sensitivity fit %v: %w", model, err)
		}
		_, params, err := core.ParamsOf(fitted)
		if err != nil {
			return nil, err
		}
		baseline, _, err := replay(fitted, durations, simCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: sensitivity baseline %v: %w", model, err)
		}
		for _, p := range cfg.Perturbations {
			cell := SensitivityCell{
				Model: model, Perturbation: p,
				Baseline: baseline, Worst: baseline, WorstParam: -1,
			}
			for i := range params {
				for _, dir := range []float64{+p, -p} {
					perturbed := make([]float64, len(params))
					copy(perturbed, params)
					perturbed[i] *= 1 + dir
					d, err := core.DistFromParams(model, perturbed)
					if err != nil {
						continue // perturbation left the family's domain
					}
					eff, _, err := replay(d, durations, simCfg)
					if err != nil {
						// Degenerate schedule: total failure to make
						// progress counts as zero efficiency.
						eff = 0
					}
					if eff < cell.Worst {
						cell.Worst = eff
						cell.WorstParam = i
						cell.WorstDir = dir
					}
				}
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// RenderSensitivity renders the study as text.
func RenderSensitivity(r *SensitivityResult) string {
	out := fmt.Sprintf("Parameter sensitivity (§5.2 concern): Weibull(%g, %g) trace, C=R=%g s\n",
		r.Config.Shape, r.Config.Scale, r.Config.CTime)
	out += fmt.Sprintf("%-14s %10s", "model", "baseline")
	for _, p := range r.Config.Perturbations {
		out += fmt.Sprintf("  worst@±%-3.0f%%", 100*p)
	}
	out += "\n"
	for _, m := range fit.Models {
		first := true
		for _, p := range r.Config.Perturbations {
			c, ok := r.Cell(m, p)
			if !ok {
				continue
			}
			if first {
				out += fmt.Sprintf("%-14s %10.3f", modelHeaders[m], c.Baseline)
				first = false
			}
			out += fmt.Sprintf("  %11.3f", c.Worst)
		}
		out += "\n"
	}
	return out
}
