package experiments

import (
	"errors"
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/obs"
	"github.com/cycleharvest/ckptsched/internal/parallel"
	"github.com/cycleharvest/ckptsched/internal/predict"
)

// PredictionConfig parameterizes the fault-prediction sweep: a
// predictor-quality × policy × availability-model grid run through the
// parallel engine, comparing proactive checkpointing and migration
// against the paper's reactive baseline.
type PredictionConfig struct {
	// Workers is the parallel job width (default 16).
	Workers int
	// LinkMBps is the shared link capacity (default 5).
	LinkMBps float64
	// CheckpointMB is the image size (default PaperCheckpointMB).
	CheckpointMB float64
	// Hours is the simulated horizon (default 24).
	Hours float64
	// Shape and Scale select the true Weibull availability law
	// (defaults 0.43 / 3409, the paper's pooled fit).
	Shape, Scale float64
	// Seeds is the replicate count per cell (default 5).
	Seeds int
	// Seed is the base seed replicate streams derive from.
	Seed int64
	// MaxProcs bounds the worker pool (default GOMAXPROCS).
	MaxProcs int
	// Policies overrides the predictor/policy axis; empty gets
	// PredictionPolicies().
	Policies []parallel.GridPolicy
	// Tracer, when set, records every cell's engine run.
	Tracer *obs.Tracer
}

// PredictionPolicies is the default predictor-quality × policy axis:
// the reactive baseline, proactive checkpointing under a perfect, a
// good and a poor predictor, and migration under the good predictor.
func PredictionPolicies() []parallel.GridPolicy {
	good := predict.Config{Precision: 0.85, Recall: 0.8, LeadSec: 240}
	poor := predict.Config{Precision: 0.4, Recall: 0.5, LeadSec: 120}
	return []parallel.GridPolicy{
		{Name: "reactive"},
		{Name: "proactive-perfect", Policy: predict.PolicyProactive, Predict: predict.Perfect(300)},
		{Name: "proactive-good", Policy: predict.PolicyProactive, Predict: good},
		{Name: "proactive-poor", Policy: predict.PolicyProactive, Predict: poor},
		{Name: "migrate-good", Policy: predict.PolicyMigrate, Predict: good},
	}
}

// PredictionResult is the sweep output: the raw grid plus the axes
// that shaped it, in row order (model-major, then policy).
type PredictionResult struct {
	Grid     *parallel.Grid
	Models   []parallel.GridModel
	Policies []parallel.GridPolicy
	Workers  int
	Hours    float64
}

// RunPrediction runs the fault-prediction sweep: every distribution
// family the paper fits (exponential, Weibull, 2-phase hyperexponential)
// crossed with every predictor/policy pair, StaggerNone throughout so
// policy effects are not confounded with coordination effects. The
// grid inherits RunGrid's determinism: byte-identical at any MaxProcs
// or GOMAXPROCS.
func RunPrediction(cfg PredictionConfig) (*PredictionResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.LinkMBps <= 0 {
		cfg.LinkMBps = 5
	}
	if cfg.CheckpointMB <= 0 {
		cfg.CheckpointMB = PaperCheckpointMB
	}
	if cfg.Hours <= 0 {
		cfg.Hours = 24
	}
	if cfg.Shape <= 0 {
		cfg.Shape = 0.43
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 3409
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = PredictionPolicies()
	}

	avail := dist.NewWeibull(cfg.Shape, cfg.Scale)
	mean := avail.Mean()
	// The hyperexponential schedule model mixes a short and a long
	// phase around the same mean — the two-phase analogue of the
	// paper's EM fits, without needing a trace to fit against.
	hyper := dist.NewMixture(
		[]float64{0.6, 0.4},
		[]dist.Distribution{
			dist.NewExponential(1 / (0.4 * mean)),
			dist.NewExponential(1 / (1.9 * mean)),
		},
	)
	models := []parallel.GridModel{
		{Name: "exponential", Dist: dist.NewExponential(1 / mean)},
		{Name: "weibull", Dist: avail},
		{Name: "hyperexp2", Dist: hyper},
	}

	grid, err := parallel.RunGrid(parallel.GridConfig{
		Base: parallel.Config{
			Workers:      cfg.Workers,
			Avail:        avail,
			LinkMBps:     cfg.LinkMBps,
			CheckpointMB: cfg.CheckpointMB,
			Duration:     cfg.Hours * 3600,
			Trace:        cfg.Tracer,
		},
		Models:   models,
		Staggers: []parallel.StaggerPolicy{parallel.StaggerNone},
		Policies: policies,
		Seeds:    cfg.Seeds,
		Seed:     cfg.Seed,
		MaxProcs: cfg.MaxProcs,
	})
	if err != nil {
		return nil, err
	}
	return &PredictionResult{
		Grid:     grid,
		Models:   models,
		Policies: policies,
		Workers:  cfg.Workers,
		Hours:    cfg.Hours,
	}, nil
}

// Cell returns the grid cell for (model, policy) — with one stagger
// the policy axis is the only within-model dimension.
func (r *PredictionResult) Cell(model, policy string) (*parallel.Cell, error) {
	for i := range r.Grid.Cells {
		c := &r.Grid.Cells[i]
		if c.Model == model && c.Policy == policy {
			return c, nil
		}
	}
	return nil, fmt.Errorf("experiments: no prediction cell (%q, %q)", model, policy)
}

// DominanceViolations lists the models where perfect-predictor
// proactive checkpointing fails to strictly beat the reactive baseline
// on mean lost work — the sweep's acceptance invariant; an empty
// result means the table's headline claim holds.
func (r *PredictionResult) DominanceViolations() ([]string, error) {
	var bad []string
	for _, m := range r.Models {
		reactive, err := r.Cell(m.Name, "reactive")
		if err != nil {
			return nil, err
		}
		perfect, err := r.Cell(m.Name, "proactive-perfect")
		if err != nil {
			return nil, err
		}
		lost := func(res parallel.Result) float64 { return res.LostWork }
		if perfect.Metric(lost).Mean >= reactive.Metric(lost).Mean {
			bad = append(bad, m.Name)
		}
	}
	return bad, nil
}

// RenderPrediction renders the sweep as a fixed-width table: one row
// per (model, policy), comparing efficiency, wasted work and bytes on
// wire against the reactive baseline, plus the predictor's own score
// card (fired/hit/false) and migration volume.
func RenderPrediction(r *PredictionResult) (string, error) {
	if r == nil || r.Grid == nil {
		return "", errors.New("experiments: nil prediction result")
	}
	out := fmt.Sprintf("Fault prediction: %d workers, %g h horizon, %d seeds (±95%% CI)\n\n",
		r.Workers, r.Hours, r.Grid.Seeds)
	out += fmt.Sprintf("%-12s %-18s %16s %12s %12s %8s %6s %6s %8s %12s\n",
		"model", "policy", "efficiency", "lost work s", "network MB",
		"fired", "hit", "false", "migr", "migr MB")
	mean := func(c *parallel.Cell, f func(parallel.Result) float64) float64 {
		return c.Metric(f).Mean
	}
	for _, m := range r.Models {
		for _, gp := range r.Policies {
			name := gp.Name
			if name == "" {
				name = "reactive"
			}
			c, err := r.Cell(m.Name, gp.Name)
			if err != nil {
				return "", err
			}
			eff := c.Efficiency()
			out += fmt.Sprintf("%-12s %-18s %10.3f±%.3f %12.0f %12.0f %8.0f %6.0f %6.0f %8.0f %12.0f\n",
				m.Name, name, eff.Mean, eff.HalfWidth,
				mean(c, func(res parallel.Result) float64 { return res.LostWork }),
				mean(c, func(res parallel.Result) float64 { return res.MBMoved }),
				mean(c, func(res parallel.Result) float64 { return float64(res.Predictions) }),
				mean(c, func(res parallel.Result) float64 { return float64(res.PredHits) }),
				mean(c, func(res parallel.Result) float64 { return float64(res.PredFalse) }),
				mean(c, func(res parallel.Result) float64 { return float64(res.Migrations) }),
				mean(c, func(res parallel.Result) float64 { return res.MigrationMB }),
			)
		}
	}
	bad, err := r.DominanceViolations()
	if err != nil {
		return "", err
	}
	if len(bad) == 0 {
		out += "\nperfect-predictor proactive beats the reactive baseline on lost work in every model\n"
	} else {
		out += fmt.Sprintf("\nWARNING: perfect-predictor proactive did not beat reactive on lost work for: %v\n", bad)
	}
	return out, nil
}
