package stats

import (
	"errors"
	"math"
	"sort"
)

// KMPoint is one step of a Kaplan-Meier survival curve: the estimated
// probability of surviving beyond Time.
type KMPoint struct {
	Time     float64
	Survival float64
	AtRisk   int // subjects at risk just before Time
	Events   int // failures at Time
}

// KaplanMeier is the product-limit estimator of a survival function
// from right-censored lifetime data — the nonparametric reference the
// censoring-aware parametric fits are judged against.
type KaplanMeier struct {
	points []KMPoint
	n      int
}

// NewKaplanMeier estimates the survival curve from lifetimes and a
// parallel censored flag (censored[i] true means subject i was still
// alive at times[i]). It errors on empty or mismatched input or when
// every observation is censored.
func NewKaplanMeier(times []float64, censored []bool) (*KaplanMeier, error) {
	if len(times) == 0 {
		return nil, errors.New("stats: kaplan-meier needs observations")
	}
	if len(times) != len(censored) {
		return nil, errors.New("stats: kaplan-meier needs matching times and flags")
	}
	type obs struct {
		t float64
		c bool
	}
	all := make([]obs, len(times))
	anyEvent := false
	for i := range times {
		if math.IsNaN(times[i]) || times[i] < 0 {
			return nil, errors.New("stats: kaplan-meier needs finite nonnegative times")
		}
		all[i] = obs{times[i], censored[i]}
		if !censored[i] {
			anyEvent = true
		}
	}
	if !anyEvent {
		return nil, errors.New("stats: kaplan-meier needs at least one event")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })

	km := &KaplanMeier{n: len(all)}
	s := 1.0
	atRisk := len(all)
	i := 0
	for i < len(all) {
		t := all[i].t
		events, censd := 0, 0
		for i < len(all) && all[i].t == t {
			if all[i].c {
				censd++
			} else {
				events++
			}
			i++
		}
		if events > 0 {
			s *= 1 - float64(events)/float64(atRisk)
			km.points = append(km.points, KMPoint{
				Time: t, Survival: s, AtRisk: atRisk, Events: events,
			})
		}
		atRisk -= events + censd
	}
	return km, nil
}

// Survival returns Ŝ(t), the estimated probability of surviving beyond
// t.
func (km *KaplanMeier) Survival(t float64) float64 {
	s := 1.0
	for _, p := range km.points {
		if p.Time > t {
			break
		}
		s = p.Survival
	}
	return s
}

// Median returns the estimated median lifetime: the earliest event
// time with Ŝ(t) <= 0.5, or NaN if the curve never reaches 0.5 (too
// much censoring).
func (km *KaplanMeier) Median() float64 {
	for _, p := range km.points {
		if p.Survival <= 0.5 {
			return p.Time
		}
	}
	return math.NaN()
}

// Points returns the survival-curve steps (event times only).
func (km *KaplanMeier) Points() []KMPoint {
	out := make([]KMPoint, len(km.points))
	copy(out, km.points)
	return out
}

// N returns the number of subjects.
func (km *KaplanMeier) N() int { return km.n }
