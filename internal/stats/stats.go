// Package stats provides the descriptive and inferential statistics
// the paper's evaluation uses: sample summaries, Student-t confidence
// intervals for means, and the two-sided paired t-tests (significance
// level .05) behind the significance letters of Tables 1 and 3.
//
// It replaces the role of the Matlab statistics toolbox in the
// original study; the Student-t distribution is evaluated through the
// regularized incomplete beta function in internal/mathx.
package stats

import (
	"errors"
	"math"
	"sort"

	"github.com/cycleharvest/ckptsched/internal/mathx"
)

// ErrTooFewSamples is returned when an estimator needs more data than
// supplied.
var ErrTooFewSamples = errors.New("stats: too few samples")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN for
// fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean, s/sqrt(n).
func StdErr(xs []float64) float64 {
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the sample median (average of the two central order
// statistics for even n), or NaN for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

// StudentTCDF returns P(T <= t) for a Student-t random variable with
// df degrees of freedom.
func StudentTCDF(t float64, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	half := 0.5 * mathx.BetaInc(df/2, 0.5, x)
	if t > 0 {
		return 1 - half
	}
	return half
}

// StudentTQuantile returns the p-th quantile of the Student-t
// distribution with df degrees of freedom, by monotone bisection of
// the CDF.
func StudentTQuantile(p, df float64) float64 {
	switch {
	case df <= 0 || p <= 0 || p >= 1:
		return math.NaN()
	case p == 0.5:
		return 0
	}
	if p < 0.5 {
		return -StudentTQuantile(1-p, df)
	}
	lo, hi := 0.0, 2.0
	for StudentTCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for range 200 {
		mid := 0.5 * (lo + hi)
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*math.Max(1, hi) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// CI is a two-sided confidence interval for a mean.
type CI struct {
	Mean      float64
	HalfWidth float64 // the ± part
	Level     float64 // e.g. 0.95
	N         int
}

// Lo returns the lower bound of the interval.
func (c CI) Lo() float64 { return c.Mean - c.HalfWidth }

// Hi returns the upper bound of the interval.
func (c CI) Hi() float64 { return c.Mean + c.HalfWidth }

// MeanCI returns the two-sided Student-t confidence interval for the
// mean of xs at the given level (e.g. 0.95 as in the paper's tables).
func MeanCI(xs []float64, level float64) (CI, error) {
	n := len(xs)
	if n < 2 {
		return CI{}, ErrTooFewSamples
	}
	t := StudentTQuantile(0.5+level/2, float64(n-1))
	return CI{
		Mean:      Mean(xs),
		HalfWidth: t * StdErr(xs),
		Level:     level,
		N:         n,
	}, nil
}

// TTestResult reports a paired, two-sided Student-t test.
type TTestResult struct {
	T         float64 // test statistic
	DF        float64 // degrees of freedom (n-1)
	P         float64 // two-sided p-value
	MeanDelta float64 // mean of a[i]-b[i]
}

// PairedTTest performs the two-sided paired t-test of H0: mean(a-b)=0,
// the test the paper applies between each pair of distributions at
// each checkpoint duration. a and b must have equal length >= 2.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.New("stats: paired t-test needs equal-length samples")
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, ErrTooFewSamples
	}
	d := make([]float64, n)
	for i := range a {
		d[i] = a[i] - b[i]
	}
	md := Mean(d)
	se := StdErr(d)
	df := float64(n - 1)
	if se == 0 {
		// All differences identical: either exactly zero (p=1) or a
		// deterministic shift (p=0).
		p := 1.0
		tstat := 0.0
		if md != 0 {
			p = 0
			tstat = math.Inf(sign(md))
		}
		return TTestResult{T: tstat, DF: df, P: p, MeanDelta: md}, nil
	}
	tstat := md / se
	p := 2 * (1 - StudentTCDF(math.Abs(tstat), df))
	if p > 1 {
		p = 1
	}
	return TTestResult{T: tstat, DF: df, P: p, MeanDelta: md}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// SignificantlyGreater reports whether mean(a) is statistically
// significantly greater than mean(b) under a two-sided paired t-test
// at significance level alpha — the criterion for the paper's
// significance letters.
func SignificantlyGreater(a, b []float64, alpha float64) bool {
	r, err := PairedTTest(a, b)
	if err != nil {
		return false
	}
	return r.P < alpha && r.MeanDelta > 0
}

// KSCriticalValue returns the approximate critical value of the
// one-sample Kolmogorov-Smirnov statistic at significance alpha for a
// sample of size n (asymptotic formula c(alpha)/sqrt(n)).
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	c := math.Sqrt(-0.5 * math.Log(alpha/2))
	return c / math.Sqrt(float64(n))
}
