package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	// Sum of squared deviations = 32, n-1 = 7.
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if got := StdErr(xs); !almostEqual(got, math.Sqrt(32.0/7/8), 1e-12) {
		t.Errorf("StdErr = %g", got)
	}
}

func TestMeanEmptyAndVarianceSingle(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %g", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
	// Median must not mutate its input.
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// t=0 is the median for any df.
	for _, df := range []float64{1, 5, 30, 600} {
		if got := StudentTCDF(0, df); got != 0.5 {
			t.Errorf("CDF(0, df=%g) = %g", df, got)
		}
	}
	// df=1 is Cauchy: CDF(1) = 3/4.
	if got := StudentTCDF(1, 1); !almostEqual(got, 0.75, 1e-10) {
		t.Errorf("Cauchy CDF(1) = %g, want 0.75", got)
	}
	// Large df approaches the normal: CDF(1.959964, 1e6) ≈ 0.975.
	if got := StudentTCDF(1.959964, 1e6); !almostEqual(got, 0.975, 1e-4) {
		t.Errorf("t CDF → normal: %g", got)
	}
	// Symmetry.
	if got := StudentTCDF(-2, 7) + StudentTCDF(2, 7); !almostEqual(got, 1, 1e-12) {
		t.Errorf("symmetry violated: %g", got)
	}
}

func TestStudentTQuantileTableValues(t *testing.T) {
	// Standard two-sided 95% critical values (t_{0.975, df}).
	cases := []struct{ df, want float64 }{
		{1, 12.706}, {2, 4.303}, {5, 2.571}, {10, 2.228},
		{30, 2.042}, {100, 1.984}, {600, 1.964},
	}
	for _, c := range cases {
		got := StudentTQuantile(0.975, c.df)
		if !almostEqual(got, c.want, 5e-4) {
			t.Errorf("t_{0.975, %g} = %g, want %g", c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileRoundTrip(t *testing.T) {
	f := func(p, df float64) bool {
		p = 0.01 + 0.98*math.Abs(math.Mod(p, 1))
		df = 1 + math.Abs(math.Mod(df, 200))
		q := StudentTQuantile(p, df)
		return almostEqual(StudentTCDF(q, df), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStudentTQuantileEdge(t *testing.T) {
	if !math.IsNaN(StudentTQuantile(0, 5)) || !math.IsNaN(StudentTQuantile(1, 5)) {
		t.Error("quantile at p∈{0,1} should be NaN")
	}
	if got := StudentTQuantile(0.5, 5); got != 0 {
		t.Errorf("median quantile = %g", got)
	}
	if got := StudentTQuantile(0.025, 10); !almostEqual(got, -2.228, 5e-4) {
		t.Errorf("lower-tail quantile = %g", got)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ci, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != 3 {
		t.Errorf("CI mean = %g", ci.Mean)
	}
	// s = sqrt(2.5), se = sqrt(0.5), t_{0.975,4} = 2.776.
	want := 2.776 * math.Sqrt(0.5)
	if !almostEqual(ci.HalfWidth, want, 1e-3) {
		t.Errorf("CI half width = %g, want %g", ci.HalfWidth, want)
	}
	if !almostEqual(ci.Lo(), 3-want, 1e-3) || !almostEqual(ci.Hi(), 3+want, 1e-3) {
		t.Errorf("CI bounds [%g, %g]", ci.Lo(), ci.Hi())
	}
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Error("MeanCI of one sample should error")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Empirical coverage of the 95% CI on normal-ish data should be
	// close to 95%.
	rng := rand.New(rand.NewSource(11))
	const trials = 2000
	covered := 0
	for range trials {
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = 10 + rng.NormFloat64()*3
		}
		ci, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Lo() <= 10 && 10 <= ci.Hi() {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.93 || cov > 0.97 {
		t.Errorf("CI coverage = %g, want ≈0.95", cov)
	}
}

func TestPairedTTestDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.NormFloat64()
		a[i] = base + 1 // constant shift of 1 with shared noise
		b[i] = base + rng.NormFloat64()*0.1
	}
	r, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 {
		t.Errorf("paired t-test missed an obvious shift: p = %g", r.P)
	}
	if r.MeanDelta < 0.5 {
		t.Errorf("mean delta = %g", r.MeanDelta)
	}
	if !SignificantlyGreater(a, b, 0.05) {
		t.Error("SignificantlyGreater(a, b) should hold")
	}
	if SignificantlyGreater(b, a, 0.05) {
		t.Error("SignificantlyGreater(b, a) should not hold")
	}
}

func TestPairedTTestNull(t *testing.T) {
	// Under H0 the test should rarely reject; check the p-value is
	// approximately uniform by counting rejections at .05 over many
	// repetitions.
	rng := rand.New(rand.NewSource(9))
	const trials = 2000
	rejects := 0
	for range trials {
		a := make([]float64, 15)
		b := make([]float64, 15)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r, err := PairedTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.P < 0.05 {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.08 || rate < 0.02 {
		t.Errorf("null rejection rate = %g, want ≈0.05", rate)
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	// Identical samples: p = 1.
	a := []float64{1, 2, 3}
	r, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 || r.MeanDelta != 0 {
		t.Errorf("identical samples: p=%g delta=%g", r.P, r.MeanDelta)
	}
	// Constant nonzero shift with zero variance: p = 0.
	b := []float64{2, 3, 4}
	r, err = PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 0 || r.MeanDelta != 1 {
		t.Errorf("constant shift: p=%g delta=%g", r.P, r.MeanDelta)
	}
	// Errors.
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("n=1 should error")
	}
}

func TestKSCriticalValue(t *testing.T) {
	// Classic alpha=.05 approximation: 1.358/sqrt(n).
	got := KSCriticalValue(100, 0.05)
	if !almostEqual(got, 1.3581/10, 1e-3) {
		t.Errorf("KS critical value = %g, want ≈0.1358", got)
	}
	if !math.IsNaN(KSCriticalValue(0, 0.05)) {
		t.Error("n=0 should give NaN")
	}
}
