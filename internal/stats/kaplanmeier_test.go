package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKaplanMeierTextbookExample(t *testing.T) {
	// Classic worked example: times 6,6,6,7,10 with censoring at
	// 6(one of three),9,10... use a small hand-checkable set:
	// events at 2 (n=5 at risk) and 5 (n=3 at risk); censored at 3, 6, 6.
	times := []float64{2, 3, 5, 6, 6}
	cens := []bool{false, true, false, true, true}
	km, err := NewKaplanMeier(times, cens)
	if err != nil {
		t.Fatal(err)
	}
	// S(2) = 1 - 1/5 = 0.8. At t=5, at-risk = 3 (after event at 2 and
	// censor at 3): S(5) = 0.8 * (1 - 1/3) = 0.5333...
	if got := km.Survival(2); !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("S(2) = %g, want 0.8", got)
	}
	if got := km.Survival(5); !almostEqual(got, 0.8*2.0/3, 1e-12) {
		t.Errorf("S(5) = %g, want %g", got, 0.8*2.0/3)
	}
	if got := km.Survival(1); got != 1 {
		t.Errorf("S(1) = %g, want 1", got)
	}
	if got := km.Survival(100); !almostEqual(got, 0.8*2.0/3, 1e-12) {
		t.Errorf("S(100) = %g (curve is flat beyond last event)", got)
	}
	if km.N() != 5 || len(km.Points()) != 2 {
		t.Errorf("N=%d points=%d", km.N(), len(km.Points()))
	}
}

func TestKaplanMeierNoCensoringMatchesEmpirical(t *testing.T) {
	times := []float64{10, 20, 30, 40}
	cens := make([]bool, 4)
	km, err := NewKaplanMeier(times, cens)
	if err != nil {
		t.Fatal(err)
	}
	// Without censoring KM is the empirical survival function.
	cases := []struct{ t, want float64 }{
		{5, 1}, {10, 0.75}, {25, 0.5}, {40, 0}, {50, 0},
	}
	for _, c := range cases {
		if got := km.Survival(c.t); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("S(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	// Median convention: inf{t : S(t) <= 0.5}; S(20) = 0.5 exactly.
	if got := km.Median(); got != 20 {
		t.Errorf("median = %g, want 20", got)
	}
}

func TestKaplanMeierRecoversTrueSurvival(t *testing.T) {
	// Exponential lifetimes censored at a fixed horizon: the KM curve
	// must track the true survival inside the horizon.
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	const mean = 1000.0
	const horizon = 1500.0
	times := make([]float64, n)
	cens := make([]bool, n)
	for i := range times {
		v := rng.ExpFloat64() * mean
		if v > horizon {
			times[i], cens[i] = horizon, true
		} else {
			times[i] = v
		}
	}
	km, err := NewKaplanMeier(times, cens)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{100, 500, 1000, 1400} {
		want := math.Exp(-x / mean)
		if got := km.Survival(x); math.Abs(got-want) > 0.02 {
			t.Errorf("S(%g) = %g, true %g", x, got, want)
		}
	}
	med := km.Median()
	if math.Abs(med-mean*math.Ln2) > 40 {
		t.Errorf("median = %g, true %g", med, mean*math.Ln2)
	}
}

func TestKaplanMeierMedianUndefinedUnderHeavyCensoring(t *testing.T) {
	// One early event, everything else censored: the curve never
	// reaches 0.5.
	times := []float64{1, 10, 10, 10, 10, 10}
	cens := []bool{false, true, true, true, true, true}
	km, err := NewKaplanMeier(times, cens)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(km.Median()) {
		t.Errorf("median = %g, want NaN", km.Median())
	}
}

func TestKaplanMeierErrors(t *testing.T) {
	if _, err := NewKaplanMeier(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := NewKaplanMeier([]float64{1}, []bool{true, false}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := NewKaplanMeier([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("all-censored should error")
	}
	if _, err := NewKaplanMeier([]float64{-1}, []bool{false}); err == nil {
		t.Error("negative time should error")
	}
	if _, err := NewKaplanMeier([]float64{math.NaN()}, []bool{false}); err == nil {
		t.Error("NaN time should error")
	}
}
