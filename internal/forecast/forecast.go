// Package forecast predicts network performance to the checkpoint
// storage site, the second input of the paper's scheduling system
// ("we combine this model with predictions of network performance to
// the storage site to compute a checkpoint schedule").
//
// The design follows the Network Weather Service's mixture-of-experts
// scheme (Wolski et al.): a battery of simple forecasters — last
// value, running and sliding means, sliding median, exponential
// smoothing at several gains — each predicts the next measurement;
// the Selector tracks every expert's cumulative error and answers
// with the prediction of the expert that has been most accurate so
// far. On stationary series a mean wins, on regime switches the
// short-memory experts take over, and the user never has to choose.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Forecaster predicts the next value of a series from the values seen
// so far.
type Forecaster interface {
	// Name identifies the forecaster in reports.
	Name() string
	// Update observes the next measurement.
	Update(x float64)
	// Predict forecasts the next measurement. Before any Update it
	// returns NaN.
	Predict() float64
}

// LastValue predicts the most recent measurement.
type LastValue struct {
	last float64
	seen bool
}

// Name implements Forecaster.
func (f *LastValue) Name() string { return "last" }

// Update implements Forecaster.
func (f *LastValue) Update(x float64) { f.last, f.seen = x, true }

// Predict implements Forecaster.
func (f *LastValue) Predict() float64 {
	if !f.seen {
		return math.NaN()
	}
	return f.last
}

// RunningMean predicts the mean of all measurements.
type RunningMean struct {
	sum float64
	n   int
}

// Name implements Forecaster.
func (f *RunningMean) Name() string { return "mean" }

// Update implements Forecaster.
func (f *RunningMean) Update(x float64) { f.sum += x; f.n++ }

// Predict implements Forecaster.
func (f *RunningMean) Predict() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.sum / float64(f.n)
}

// window is a fixed-size ring of recent measurements.
type window struct {
	buf  []float64
	next int
	full bool
}

func newWindow(k int) *window { return &window{buf: make([]float64, k)} }

func (w *window) push(x float64) {
	w.buf[w.next] = x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

func (w *window) values() []float64 {
	if w.full {
		out := make([]float64, len(w.buf))
		copy(out, w.buf)
		return out
	}
	out := make([]float64, w.next)
	copy(out, w.buf[:w.next])
	return out
}

// SlidingMean predicts the mean of the last K measurements.
type SlidingMean struct {
	K int
	w *window
}

// NewSlidingMean returns a sliding-mean forecaster over k values.
func NewSlidingMean(k int) *SlidingMean {
	if k < 1 {
		k = 1
	}
	return &SlidingMean{K: k, w: newWindow(k)}
}

// Name implements Forecaster.
func (f *SlidingMean) Name() string { return fmt.Sprintf("mean%d", f.K) }

// Update implements Forecaster.
func (f *SlidingMean) Update(x float64) { f.w.push(x) }

// Predict implements Forecaster.
func (f *SlidingMean) Predict() float64 {
	vs := f.w.values()
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// SlidingMedian predicts the median of the last K measurements —
// robust to the spikes shared networks produce.
type SlidingMedian struct {
	K int
	w *window
}

// NewSlidingMedian returns a sliding-median forecaster over k values.
func NewSlidingMedian(k int) *SlidingMedian {
	if k < 1 {
		k = 1
	}
	return &SlidingMedian{K: k, w: newWindow(k)}
}

// Name implements Forecaster.
func (f *SlidingMedian) Name() string { return fmt.Sprintf("median%d", f.K) }

// Update implements Forecaster.
func (f *SlidingMedian) Update(x float64) { f.w.push(x) }

// Predict implements Forecaster.
func (f *SlidingMedian) Predict() float64 {
	vs := f.w.values()
	if len(vs) == 0 {
		return math.NaN()
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return 0.5 * (vs[n/2-1] + vs[n/2])
}

// ExpSmooth predicts with exponential smoothing at gain Alpha:
// ŷ ← α·x + (1-α)·ŷ.
type ExpSmooth struct {
	Alpha float64
	yhat  float64
	seen  bool
}

// NewExpSmooth returns an exponential-smoothing forecaster; alpha is
// clamped to (0, 1].
func NewExpSmooth(alpha float64) *ExpSmooth {
	if alpha <= 0 {
		alpha = 0.05
	}
	if alpha > 1 {
		alpha = 1
	}
	return &ExpSmooth{Alpha: alpha}
}

// Name implements Forecaster.
func (f *ExpSmooth) Name() string { return fmt.Sprintf("expsmooth%.2g", f.Alpha) }

// Update implements Forecaster.
func (f *ExpSmooth) Update(x float64) {
	if !f.seen {
		f.yhat, f.seen = x, true
		return
	}
	f.yhat = f.Alpha*x + (1-f.Alpha)*f.yhat
}

// Predict implements Forecaster.
func (f *ExpSmooth) Predict() float64 {
	if !f.seen {
		return math.NaN()
	}
	return f.yhat
}

// Selector is the NWS mixture-of-experts: it scores every expert's
// one-step-ahead predictions by mean absolute error and answers with
// the current best expert's prediction.
type Selector struct {
	experts []Forecaster
	absErr  []float64 // cumulative |error| per expert
	n       int       // scored predictions so far
}

// NewSelector builds a selector over the given experts.
func NewSelector(experts ...Forecaster) (*Selector, error) {
	if len(experts) == 0 {
		return nil, errors.New("forecast: selector needs at least one expert")
	}
	return &Selector{experts: experts, absErr: make([]float64, len(experts))}, nil
}

// DefaultSelector returns the standard expert battery: last value,
// running mean, sliding means and medians over 5/10/30 values, and
// exponential smoothing at gains 0.1 and 0.4.
func DefaultSelector() *Selector {
	s, err := NewSelector(
		&LastValue{},
		&RunningMean{},
		NewSlidingMean(5), NewSlidingMean(10), NewSlidingMean(30),
		NewSlidingMedian(5), NewSlidingMedian(10), NewSlidingMedian(30),
		NewExpSmooth(0.1), NewExpSmooth(0.4),
	)
	if err != nil {
		// Unreachable: the battery is non-empty by construction.
		panic(err)
	}
	return s
}

// Update scores every expert's pending prediction against the new
// measurement, then lets every expert observe it.
func (s *Selector) Update(x float64) {
	for i, e := range s.experts {
		if p := e.Predict(); !math.IsNaN(p) {
			s.absErr[i] += math.Abs(p - x)
		}
	}
	s.n++
	for _, e := range s.experts {
		e.Update(x)
	}
}

// N returns the number of measurements observed.
func (s *Selector) N() int { return s.n }

// Best returns the index and name of the lowest-error expert.
func (s *Selector) Best() (int, string) {
	best := 0
	for i := range s.experts {
		if s.absErr[i] < s.absErr[best] {
			best = i
		}
	}
	return best, s.experts[best].Name()
}

// Predict returns the best expert's forecast and that expert's name.
// Before any measurement it returns NaN.
func (s *Selector) Predict() (float64, string) {
	if s.n == 0 {
		return math.NaN(), ""
	}
	i, name := s.Best()
	return s.experts[i].Predict(), name
}

// MAE returns expert i's mean absolute one-step error so far.
func (s *Selector) MAE(i int) float64 {
	if s.n == 0 || i < 0 || i >= len(s.experts) {
		return math.NaN()
	}
	return s.absErr[i] / float64(s.n)
}

// Experts returns the expert names in index order.
func (s *Selector) Experts() []string {
	out := make([]string, len(s.experts))
	for i, e := range s.experts {
		out[i] = e.Name()
	}
	return out
}
