package forecast_test

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/forecast"
)

// ExampleSelector demonstrates the NWS mixture-of-experts adapting to
// a bandwidth regime switch: after congestion halves the link, the
// short-memory experts take over from the long-run mean.
func ExampleSelector() {
	s := forecast.DefaultSelector()
	for range 200 {
		s.Update(100) // steady 100 units
	}
	before, _ := s.Predict()
	for range 30 {
		s.Update(50) // congestion halves the measurements
	}
	after, _ := s.Predict()
	fmt.Printf("before switch: %.0f, 30 samples after: %.0f\n", before, after)
	// Output:
	// before switch: 100, 30 samples after: 50
}
