package forecast

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLastValue(t *testing.T) {
	var f LastValue
	if !math.IsNaN(f.Predict()) {
		t.Error("empty forecaster should predict NaN")
	}
	f.Update(3)
	f.Update(7)
	if f.Predict() != 7 {
		t.Errorf("predict = %g", f.Predict())
	}
}

func TestRunningMean(t *testing.T) {
	var f RunningMean
	if !math.IsNaN(f.Predict()) {
		t.Error("empty forecaster should predict NaN")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		f.Update(x)
	}
	if f.Predict() != 2.5 {
		t.Errorf("predict = %g", f.Predict())
	}
}

func TestSlidingMeanWindowing(t *testing.T) {
	f := NewSlidingMean(3)
	for _, x := range []float64{10, 10, 10, 1, 1, 1} {
		f.Update(x)
	}
	if f.Predict() != 1 {
		t.Errorf("sliding mean = %g, want 1 (old values evicted)", f.Predict())
	}
	// Partial window.
	g := NewSlidingMean(5)
	g.Update(4)
	g.Update(6)
	if g.Predict() != 5 {
		t.Errorf("partial window mean = %g", g.Predict())
	}
	// k < 1 clamps.
	if NewSlidingMean(0).K != 1 {
		t.Error("k=0 not clamped")
	}
}

func TestSlidingMedianRobustToSpikes(t *testing.T) {
	f := NewSlidingMedian(5)
	for _, x := range []float64{10, 11, 9, 1000, 10} {
		f.Update(x)
	}
	if f.Predict() != 10 {
		t.Errorf("median = %g, want 10 despite the spike", f.Predict())
	}
	// Even-length partial window averages the central pair.
	g := NewSlidingMedian(6)
	for _, x := range []float64{1, 2, 3, 4} {
		g.Update(x)
	}
	if g.Predict() != 2.5 {
		t.Errorf("even median = %g", g.Predict())
	}
}

func TestExpSmooth(t *testing.T) {
	f := NewExpSmooth(0.5)
	f.Update(10)
	if f.Predict() != 10 {
		t.Errorf("first prediction = %g", f.Predict())
	}
	f.Update(20)
	if f.Predict() != 15 {
		t.Errorf("smoothed = %g, want 15", f.Predict())
	}
	// Gain clamping.
	if NewExpSmooth(-1).Alpha <= 0 || NewExpSmooth(5).Alpha != 1 {
		t.Error("alpha not clamped")
	}
}

func TestSelectorPicksMeanOnStationarySeries(t *testing.T) {
	s := DefaultSelector()
	rng := rand.New(rand.NewSource(1))
	for range 2000 {
		s.Update(100 + rng.NormFloat64()*10)
	}
	p, winner := s.Predict()
	if !almostEqual(p, 100, 0.05) {
		t.Errorf("prediction = %g, want ≈100", p)
	}
	// On i.i.d. noise an averaging expert must beat last-value.
	if winner == "last" {
		t.Errorf("winner = %q; last-value cannot win on white noise", winner)
	}
}

func TestSelectorAdaptsToRegimeSwitch(t *testing.T) {
	s := DefaultSelector()
	rng := rand.New(rand.NewSource(2))
	// Long stationary regime at 100, then a switch to 10.
	for range 500 {
		s.Update(100 + rng.NormFloat64())
	}
	for range 200 {
		s.Update(10 + rng.NormFloat64())
	}
	p, _ := s.Predict()
	// The running mean would still predict ≈74; the selector must
	// track the new regime much more closely.
	if p > 30 {
		t.Errorf("prediction = %g after regime switch, want near 10", p)
	}
}

func TestSelectorNearOracleOnStationary(t *testing.T) {
	s := DefaultSelector()
	rng := rand.New(rand.NewSource(3))
	for range 3000 {
		s.Update(50 + rng.NormFloat64()*5)
	}
	best, _ := s.Best()
	bestMAE := s.MAE(best)
	// The selector's winner should be close to the oracle: no expert
	// can have dramatically lower error than the chosen one.
	for i := range s.Experts() {
		if s.MAE(i) < bestMAE-1e-12 {
			t.Errorf("expert %d beats the selected best", i)
		}
	}
	// And the winning MAE is near the theoretical floor for N(0,5)
	// noise: E|X−µ| = 5·sqrt(2/π) ≈ 3.99.
	if bestMAE > 4.6 {
		t.Errorf("best MAE = %g, want ≲ 4.6", bestMAE)
	}
}

func TestSelectorEdgeCases(t *testing.T) {
	if _, err := NewSelector(); err == nil {
		t.Error("empty selector should error")
	}
	s := DefaultSelector()
	if p, _ := s.Predict(); !math.IsNaN(p) {
		t.Error("prediction before data should be NaN")
	}
	if !math.IsNaN(s.MAE(0)) || !math.IsNaN(s.MAE(-1)) {
		t.Error("MAE before data / out of range should be NaN")
	}
	s.Update(5)
	if s.N() != 1 {
		t.Errorf("N = %d", s.N())
	}
	if len(s.Experts()) != 10 {
		t.Errorf("default battery size = %d", len(s.Experts()))
	}
}

func TestBandwidthPredictor(t *testing.T) {
	p := NewBandwidthPredictor()
	if _, err := p.PredictTransferSec(1000); err == nil {
		t.Error("prediction without observations should error")
	}
	// Invalid observations are rejected with the named error and leave
	// the predictor untouched.
	for _, tc := range []struct {
		bytes int64
		sec   float64
	}{
		{0, 10}, {-4, 10}, {100, 0}, {100, -1},
		{100, math.NaN()}, {100, math.Inf(1)}, {100, math.Inf(-1)},
	} {
		err := p.Observe(tc.bytes, tc.sec)
		if err == nil {
			t.Errorf("Observe(%d, %g) accepted an invalid measurement", tc.bytes, tc.sec)
		} else if !errors.Is(err, ErrInvalidObservation) {
			t.Errorf("Observe(%d, %g) error %v is not ErrInvalidObservation", tc.bytes, tc.sec, err)
		}
	}
	if p.N() != 0 {
		t.Errorf("invalid observations counted: %d", p.N())
	}
	if _, err := p.Bandwidth(); err == nil {
		t.Error("Bandwidth without observations should error")
	}
	// Stable 5 MB/s link.
	for range 50 {
		p.Observe(5<<20, 1)
	}
	sec, err := p.PredictTransferSec(500 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sec, 100, 1e-9) {
		t.Errorf("predicted %g s, want 100", sec)
	}
	if p.BestExpert() == "" {
		t.Error("no best expert name")
	}
}

func TestBandwidthPredictorTracksDegradation(t *testing.T) {
	p := NewBandwidthPredictor()
	rng := rand.New(rand.NewSource(4))
	// Campus-quality bandwidth, then congestion halves it.
	for range 100 {
		p.Observe(1<<20, 0.2*(1+0.05*rng.NormFloat64()))
	}
	for range 40 {
		p.Observe(1<<20, 0.4*(1+0.05*rng.NormFloat64()))
	}
	sec, err := p.PredictTransferSec(500 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// New true time is 200 s; the stale estimate would be 100 s.
	if sec < 150 {
		t.Errorf("prediction %g s has not adapted to congestion", sec)
	}
}

func TestForecasterNames(t *testing.T) {
	for _, f := range []Forecaster{
		&LastValue{}, &RunningMean{}, NewSlidingMean(7),
		NewSlidingMedian(7), NewExpSmooth(0.3),
	} {
		if strings.TrimSpace(f.Name()) == "" {
			t.Errorf("%T has empty name", f)
		}
	}
}
