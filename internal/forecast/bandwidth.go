package forecast

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidObservation reports a transfer measurement that cannot be
// turned into a bandwidth sample: a zero, negative, or non-finite
// duration, or a non-positive byte count. Zero durations are the
// classic failure mode — a clock with coarse resolution timing a tiny
// (or fully deduped delta) transfer — and folding them in would launch
// an infinite-bandwidth expert that poisons every later forecast.
var ErrInvalidObservation = errors.New("forecast: invalid transfer observation")

// BandwidthPredictor turns observed transfer measurements into
// predicted transfer times for future checkpoints — the "predictions
// of network performance to the storage site" the scheduling system
// consumes. It forecasts bandwidth (bytes/second) rather than raw
// durations so predictions transfer across image sizes.
type BandwidthPredictor struct {
	sel *Selector
}

// NewBandwidthPredictor returns a predictor backed by the default NWS
// expert battery.
func NewBandwidthPredictor() *BandwidthPredictor {
	return &BandwidthPredictor{sel: DefaultSelector()}
}

// Observe records a completed (or partially completed) transfer of n
// bytes that took sec seconds. Measurements with a zero, negative, or
// non-finite duration — or a non-positive size — are rejected with
// ErrInvalidObservation and leave the predictor untouched.
func (p *BandwidthPredictor) Observe(bytes int64, sec float64) error {
	if bytes <= 0 {
		return fmt.Errorf("%w: %d bytes", ErrInvalidObservation, bytes)
	}
	if sec <= 0 || math.IsInf(sec, 0) || math.IsNaN(sec) {
		return fmt.Errorf("%w: duration %gs", ErrInvalidObservation, sec)
	}
	p.sel.Update(float64(bytes) / sec)
	return nil
}

// N returns the number of observations recorded.
func (p *BandwidthPredictor) N() int { return p.sel.N() }

// PredictTransferSec forecasts how long a transfer of n bytes will
// take. It errors until at least one observation has been recorded.
func (p *BandwidthPredictor) PredictTransferSec(bytes int64) (float64, error) {
	bw, _ := p.sel.Predict()
	if math.IsNaN(bw) || bw <= 0 {
		return 0, errors.New("forecast: no bandwidth observations yet")
	}
	return float64(bytes) / bw, nil
}

// Bandwidth returns the current bandwidth forecast in bytes/second,
// or an error until at least one observation has been recorded.
func (p *BandwidthPredictor) Bandwidth() (float64, error) {
	bw, _ := p.sel.Predict()
	if math.IsNaN(bw) || bw <= 0 {
		return 0, errors.New("forecast: no bandwidth observations yet")
	}
	return bw, nil
}

// BestExpert names the currently winning forecaster.
func (p *BandwidthPredictor) BestExpert() string {
	_, name := p.sel.Best()
	return name
}
