package forecast

import (
	"errors"
	"math"
)

// BandwidthPredictor turns observed transfer measurements into
// predicted transfer times for future checkpoints — the "predictions
// of network performance to the storage site" the scheduling system
// consumes. It forecasts bandwidth (bytes/second) rather than raw
// durations so predictions transfer across image sizes.
type BandwidthPredictor struct {
	sel *Selector
}

// NewBandwidthPredictor returns a predictor backed by the default NWS
// expert battery.
func NewBandwidthPredictor() *BandwidthPredictor {
	return &BandwidthPredictor{sel: DefaultSelector()}
}

// Observe records a completed (or partially completed) transfer of n
// bytes that took sec seconds. Non-positive observations are ignored.
func (p *BandwidthPredictor) Observe(bytes int64, sec float64) {
	if bytes <= 0 || sec <= 0 {
		return
	}
	p.sel.Update(float64(bytes) / sec)
}

// N returns the number of observations recorded.
func (p *BandwidthPredictor) N() int { return p.sel.N() }

// PredictTransferSec forecasts how long a transfer of n bytes will
// take. It errors until at least one observation has been recorded.
func (p *BandwidthPredictor) PredictTransferSec(bytes int64) (float64, error) {
	bw, _ := p.sel.Predict()
	if math.IsNaN(bw) || bw <= 0 {
		return 0, errors.New("forecast: no bandwidth observations yet")
	}
	return float64(bytes) / bw, nil
}

// BestExpert names the currently winning forecaster.
func (p *BandwidthPredictor) BestExpert() string {
	_, name := p.sel.Best()
	return name
}
