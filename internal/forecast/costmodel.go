package forecast

import "math"

// CostModel maps a work-interval length to a predicted checkpoint
// cost C(T) in seconds, for schedulers running delta checkpoints over
// a forecast network. The model is the delta-dirtying law composed
// with a bandwidth forecast:
//
//	wire(T) = FullBytes · (1 − exp(−DirtyRate·T))
//	C(T)    = LatencySec + wire(T) / bandwidth
//
// Each chunk of the image is dirtied by a Poisson process of rate
// DirtyRate, so after T seconds of work a chunk has been touched with
// probability 1 − exp(−DirtyRate·T); summed over the image that is the
// expected delta payload. Short intervals ship small deltas (cheap
// checkpoints), long intervals converge to the full-image cost — the
// interval dependence the constant-C Markov model cannot express.
type CostModel struct {
	// FullBytes is the full checkpoint image size.
	FullBytes int64
	// DirtyRate is the per-chunk dirtying rate in 1/seconds. A rate r
	// means a fraction 1−exp(−r·T) of the image is dirty after T
	// seconds of work. DirtyRateFromFraction converts a measured dirty
	// fraction back to a rate.
	DirtyRate float64
	// LatencySec is the fixed per-checkpoint overhead (quiesce,
	// handshake, manifest exchange) independent of payload size.
	LatencySec float64
	// MinSec floors the curve; defaults to 1e-3 (matching the Markov
	// optimizer's own floor) when zero.
	MinSec float64
}

// DirtyRateFromFraction inverts the dirtying law: given that a
// fraction f of chunks was dirty after interval T, the implied rate is
// −ln(1−f)/T. It returns 0 for unusable inputs (f outside (0,1) or
// non-positive T); f = 1 (everything dirty — no dedup signal) also
// yields 0 so callers fall back to full-image costing.
func DirtyRateFromFraction(f, T float64) float64 {
	if !(f > 0 && f < 1) || !(T > 0) || math.IsInf(T, 0) {
		return 0
	}
	return -math.Log1p(-f) / T
}

// Curve binds the model to a bandwidth forecast (bytes/second) and
// returns the C(T) function, suitable for markov.Model.CostFn. It
// returns nil when the inputs cannot produce a meaningful curve — a
// non-positive or non-finite bandwidth, a non-positive image size, or
// a non-positive dirty rate (no delta signal: cost is genuinely
// constant and the caller should keep the constant-C model).
func (m CostModel) Curve(bandwidth float64) func(T float64) float64 {
	if !(bandwidth > 0) || math.IsInf(bandwidth, 0) {
		return nil
	}
	if m.FullBytes <= 0 || !(m.DirtyRate > 0) || math.IsInf(m.DirtyRate, 0) {
		return nil
	}
	full := float64(m.FullBytes)
	rate := m.DirtyRate
	lat := m.LatencySec
	if lat < 0 || math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	floor := m.MinSec
	if floor <= 0 {
		floor = 1e-3
	}
	return func(T float64) float64 {
		if !(T > 0) {
			return floor
		}
		// -Expm1(-rate*T) = 1 - exp(-rate*T), accurate for small rate*T
		// where the subtraction would cancel.
		wire := full * -math.Expm1(-rate*T)
		c := lat + wire/bandwidth
		if !(c > floor) {
			return floor
		}
		return c
	}
}
