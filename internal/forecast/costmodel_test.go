package forecast

import (
	"math"
	"testing"
)

func TestDirtyRateFromFraction(t *testing.T) {
	// Round trip: rate → fraction → rate.
	rate := 0.002
	T := 300.0
	f := -math.Expm1(-rate * T)
	got := DirtyRateFromFraction(f, T)
	if !almostEqual(got, rate, 1e-12) {
		t.Errorf("round trip rate %v != %v", got, rate)
	}
	for _, tc := range []struct{ f, T float64 }{
		{0, 100}, {-0.5, 100}, {1, 100}, {1.5, 100},
		{0.5, 0}, {0.5, -1}, {0.5, math.Inf(1)},
		{math.NaN(), 100}, {0.5, math.NaN()},
	} {
		if r := DirtyRateFromFraction(tc.f, tc.T); r != 0 {
			t.Errorf("DirtyRateFromFraction(%g, %g) = %v, want 0", tc.f, tc.T, r)
		}
	}
}

func TestCostModelCurve(t *testing.T) {
	m := CostModel{FullBytes: 100 << 20, DirtyRate: 0.001, LatencySec: 2}
	bw := 10.0 * (1 << 20) // 10 MB/s
	fn := m.Curve(bw)
	if fn == nil {
		t.Fatal("valid model returned nil curve")
	}
	fullCost := m.LatencySec + float64(m.FullBytes)/bw // asymptote: 2 + 10 s

	// Monotone nondecreasing in T, always within (0, fullCost].
	prev := 0.0
	for _, T := range []float64{1, 10, 60, 300, 1800, 7200, 86400} {
		c := fn(T)
		if c < prev {
			t.Errorf("C(%g) = %v fell below C(prev) = %v", T, c, prev)
		}
		if !(c > 0) || c > fullCost+1e-9 {
			t.Errorf("C(%g) = %v outside (0, %v]", T, c, fullCost)
		}
		prev = c
	}
	// Long intervals converge to the full-image cost.
	if c := fn(1e7); !almostEqual(c, fullCost, 1e-6) {
		t.Errorf("C(∞) = %v, want %v", c, fullCost)
	}
	// Short intervals approach the fixed latency.
	if c := fn(0.001); c > m.LatencySec+0.01 {
		t.Errorf("C(0.001) = %v, want ≈ latency %v", c, m.LatencySec)
	}
	// Degenerate T hits the floor, never zero or negative.
	for _, T := range []float64{0, -5, math.NaN()} {
		if c := fn(T); !(c > 0) {
			t.Errorf("C(%g) = %v not positive", T, c)
		}
	}
}

func TestCostModelCurveFloor(t *testing.T) {
	// A tiny image over a fast link would cost ~1e-7 s; the curve must
	// clamp to the floor so the Markov bracket geometry stays sound.
	m := CostModel{FullBytes: 100, DirtyRate: 0.001}
	fn := m.Curve(1 << 30)
	if fn == nil {
		t.Fatal("nil curve")
	}
	if c := fn(10); c != 1e-3 {
		t.Errorf("sub-floor cost = %v, want clamped 1e-3", c)
	}
	m.MinSec = 0.5
	if c := m.Curve(1 << 30)(10); c != 0.5 {
		t.Errorf("custom floor ignored: %v", c)
	}
}

func TestCostModelCurveRejectsDegenerateInputs(t *testing.T) {
	base := CostModel{FullBytes: 1 << 20, DirtyRate: 0.001}
	for name, tc := range map[string]struct {
		m  CostModel
		bw float64
	}{
		"zero bandwidth":     {base, 0},
		"negative bandwidth": {base, -1},
		"inf bandwidth":      {base, math.Inf(1)},
		"nan bandwidth":      {base, math.NaN()},
		"zero image":         {CostModel{FullBytes: 0, DirtyRate: 0.001}, 1e6},
		"zero rate":          {CostModel{FullBytes: 1 << 20, DirtyRate: 0}, 1e6},
		"nan rate":           {CostModel{FullBytes: 1 << 20, DirtyRate: math.NaN()}, 1e6},
	} {
		if fn := tc.m.Curve(tc.bw); fn != nil {
			t.Errorf("%s: expected nil curve", name)
		}
	}
}
