// Package predict implements an oracle-backed fault predictor for the
// availability processes the simulators and live campaigns already
// own. The paper's policies are purely reactive — a checkpoint
// schedule is chosen and failures are discovered when they land — but
// Aupy, Robert and Vivien ("Impact of fault prediction on
// checkpointing strategies", PAPERS.md) show that even an imperfect
// predictor changes the optimal policy, and Cappello, Casanova and
// Robert ("Checkpointing vs. Migration for Post-Petascale Machines")
// show that moving a job off a doomed resource can beat checkpointing
// in place. This package supplies the predictor both results assume:
// tunable precision, recall and lead time, driven off the true failure
// instants the simulation engines know exactly (the oracle).
//
// # Semantics
//
// A predictor observes one availability period at a time. The period
// ends in a failure (an owner reclaim) at periodLen seconds.
//
//   - With probability Recall the failure is predicted: a true alarm
//     fires LeadSec seconds before the failure (clamped to the period
//     start when the period is shorter than the lead time — the
//     predictor still warns, just with less notice).
//   - False alarms fire at a rate that makes the realized precision
//     match Precision in expectation: the expected false-alarm count
//     per period is Recall·(1−Precision)/Precision, drawn Poisson and
//     placed uniformly over the period. Precision 1 means no false
//     alarms; lower precision buys more of them at the same recall.
//
// Every draw comes from an rng the caller supplies, so consumers keep
// the repo's determinism contract (DESIGN.md §12): each simulation or
// session derives a private splitmix64 stream for its predictor, draws
// happen in a fixed order, and a disabled predictor draws nothing —
// leaving pre-existing RNG streams bit-identical.
package predict

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config parameterizes the oracle predictor. The zero value disables
// prediction (Enabled reports false and PeriodEvents returns nil
// without drawing).
type Config struct {
	// Precision is the fraction of fired alarms that are true, in
	// (0, 1]. Lower precision adds false alarms at fixed recall.
	Precision float64
	// Recall is the fraction of failures that receive a true alarm,
	// in [0, 1].
	Recall float64
	// LeadSec is the warning the predictor gives: a true alarm fires
	// this many seconds before the failure it predicts.
	LeadSec float64
}

// Enabled reports whether the configuration describes an active
// predictor (any field set).
func (c Config) Enabled() bool {
	return c.Precision != 0 || c.Recall != 0 || c.LeadSec != 0
}

// Validate checks the configuration. The zero (disabled) value is
// valid; an enabled predictor needs Precision in (0, 1], Recall in
// [0, 1] and a non-negative finite lead time.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if math.IsNaN(c.Precision) || c.Precision <= 0 || c.Precision > 1 {
		return fmt.Errorf("predict: precision %g outside (0, 1]", c.Precision)
	}
	if math.IsNaN(c.Recall) || c.Recall < 0 || c.Recall > 1 {
		return fmt.Errorf("predict: recall %g outside [0, 1]", c.Recall)
	}
	if math.IsNaN(c.LeadSec) || math.IsInf(c.LeadSec, 0) || c.LeadSec < 0 {
		return fmt.Errorf("predict: lead time %g s must be finite and non-negative", c.LeadSec)
	}
	return nil
}

// String renders the configuration compactly ("p0.85/r0.80/lead240s",
// or "off" when disabled).
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	return fmt.Sprintf("p%.2f/r%.2f/lead%gs", c.Precision, c.Recall, c.LeadSec)
}

// Perfect returns the ideal predictor: every failure predicted, no
// false alarms, the given lead time.
func Perfect(leadSec float64) Config {
	return Config{Precision: 1, Recall: 1, LeadSec: leadSec}
}

// Event is one alarm within an availability period.
type Event struct {
	// At is the alarm instant, in seconds after the period began.
	At float64
	// True reports whether the alarm predicts the period's real
	// failure (false = false alarm).
	True bool
}

// Predictor draws per-period alarm sequences under a validated
// configuration. It is stateless and safe for concurrent use; all
// randomness comes from the rng each call supplies.
type Predictor struct {
	cfg Config
}

// New returns a predictor for cfg, or an error when cfg is invalid or
// disabled.
func New(cfg Config) (*Predictor, error) {
	if !cfg.Enabled() {
		return nil, errors.New("predict: disabled configuration (zero value)")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{cfg: cfg}, nil
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// PeriodEvents draws the alarms for one availability period of the
// given length whose failure strikes at its end, sorted by firing
// time. A nil receiver or a non-positive period returns nil without
// drawing. The draw order is fixed — one uniform for the recall
// Bernoulli, one Poisson sequence for the false-alarm count, then one
// uniform per false alarm — so a fixed rng stream yields a fixed alarm
// sequence regardless of the caller's concurrency.
func (p *Predictor) PeriodEvents(periodLen float64, rng *rand.Rand) []Event {
	if p == nil || periodLen <= 0 {
		return nil
	}
	var evs []Event
	if rng.Float64() < p.cfg.Recall {
		at := periodLen - p.cfg.LeadSec
		if at < 0 {
			at = 0
		}
		evs = append(evs, Event{At: at, True: true})
	}
	// Expected false alarms per period keep TP/(TP+FP) = Precision:
	// recall·(1−precision)/precision.
	if fa := p.cfg.Recall * (1 - p.cfg.Precision) / p.cfg.Precision; fa > 0 {
		for range poisson(fa, rng) {
			evs = append(evs, Event{At: periodLen * rng.Float64()})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		// A true alarm outranks a coincident false one.
		return evs[i].True && !evs[j].True
	})
	return evs
}

// poisson draws a Poisson variate with the given mean (Knuth's
// product-of-uniforms method; means here are O(1), so the loop is
// short).
func poisson(mean float64, rng *rand.Rand) int {
	l := math.Exp(-mean)
	k, prod := 0, 1.0
	for {
		prod *= rng.Float64()
		if prod <= l {
			return k
		}
		k++
	}
}

// Policy selects how a job acts on predictor alarms.
type Policy int

const (
	// PolicyReactive ignores alarms: the paper's baseline. Alarms are
	// still counted and traced, so the predictor's quality is
	// measurable without acting on it.
	PolicyReactive Policy = iota
	// PolicyProactive takes a checkpoint the moment an alarm fires —
	// committing the work done so far in the current interval — then
	// resumes the normal Markov schedule.
	PolicyProactive
	// PolicyMigrate transfers the image to a fresher resource instead
	// of checkpointing in place: the job leaves the doomed machine
	// once the transfer completes, paying transfer + recovery
	// (ckptnet-accounted) to escape the predicted failure.
	PolicyMigrate
)

func (p Policy) String() string {
	switch p {
	case PolicyReactive:
		return "reactive"
	case PolicyProactive:
		return "proactive"
	case PolicyMigrate:
		return "migrate"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a policy name as the CLIs spell it.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reactive":
		return PolicyReactive, nil
	case "proactive":
		return PolicyProactive, nil
	case "migrate":
		return PolicyMigrate, nil
	}
	return 0, fmt.Errorf("predict: unknown policy %q (want reactive, proactive or migrate)", s)
}

// StreamSeed derives the predictor's private RNG seed from a base seed
// via a salted splitmix64 round — the live.RunCampaign / parallel
// recipe — so predictor draws never perturb the consumer's existing
// streams and stay decorrelated from them.
func StreamSeed(seed int64) int64 {
	z := uint64(seed) ^ 0x7072656469637431 // "predict1"
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
